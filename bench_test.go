package clr

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design decisions called out in DESIGN.md
// and microbenches of the core substrates. Each experiment bench
// renders its table/figure once (visible with `go test -bench . -v`)
// and reports the headline quantity via b.ReportMetric, so trends can
// be compared against EXPERIMENTS.md without re-reading logs.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"clrdse/internal/core"
	"clrdse/internal/dse"
	"clrdse/internal/experiments"
	"clrdse/internal/fleet"
	"clrdse/internal/ga"
	"clrdse/internal/lifetime"
	"clrdse/internal/mapping"
	"clrdse/internal/pareto"
	"clrdse/internal/relmodel"
	"clrdse/internal/rng"
	"clrdse/internal/runtime"
	"clrdse/internal/schedule"
	"clrdse/internal/taskgraph"
)

// benchScale is a miniature of the paper's setup so every bench
// completes in seconds; cmd/experiments regenerates the full-scale
// numbers.
func benchScale() experiments.Scale {
	s := experiments.QuickScale()
	s.TaskSizes = []int{10, 20}
	s.SimCycles = 20_000
	s.PretrainCycles = 20_000
	s.Reps = 1
	return s
}

func benchLab(b *testing.B) *experiments.Lab {
	b.Helper()
	return experiments.NewLab(benchScale())
}

func mean(rows []experiments.TableRow, col int) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.Values[col]
	}
	return sum / float64(len(rows))
}

// --- Experiment benches (one per table/figure) -----------------------

func BenchmarkFig1Motivation(b *testing.B) {
	lab := benchLab(b)
	for i := 0; i < b.N; i++ {
		r, err := lab.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
			last := r.Systems[len(r.Systems)-1]
			if last.FixedEnergyMJ > 0 {
				b.ReportMetric(100*(last.FixedEnergyMJ-last.AvgEnergyMJ)/last.FixedEnergyMJ, "%Javg-saving-CLR2")
			}
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	lab := benchLab(b)
	for i := 0; i < b.N; i++ {
		r, err := lab.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(mean(r.Rows, 0), "%migration-cost-reduction")
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	lab := benchLab(b)
	for i := 0; i < b.N; i++ {
		r, err := lab.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
			extra := 0
			for _, p := range r.Points {
				if p.FromReD {
					extra++
				}
			}
			b.ReportMetric(float64(extra), "extra-points")
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	lab := benchLab(b)
	for i := 0; i < b.N; i++ {
		r, err := lab.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(float64(r.BaseD.Reconfigs), "BaseD-reconfigs")
			b.ReportMetric(float64(r.ReD.Reconfigs), "ReD-reconfigs")
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	lab := benchLab(b)
	for i := 0; i < b.N; i++ {
		r, err := lab.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(mean(r.Rows, 0), "%dRC-reduction")
			b.ReportMetric(mean(r.Rows, 1), "%energy-increase")
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	lab := benchLab(b)
	for i := 0; i < b.N; i++ {
		r, err := lab.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
			s := r.Series[0]
			b.ReportMetric(s.RelEnergy[len(s.RelEnergy)-1], "rel-energy-at-pRC1")
			b.ReportMetric(s.RelDRC[0], "rel-dRC-at-pRC0")
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	lab := benchLab(b)
	for i := 0; i < b.N; i++ {
		r, err := lab.Table6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(mean(r.Rows, 0), "%dRC-reduction-pRC0")
			b.ReportMetric(mean(r.Rows, 1), "%energy-reduction-pRC1")
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	lab := benchLab(b)
	for i := 0; i < b.N; i++ {
		r, err := lab.Table7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.Render())
			b.ReportMetric(mean(r.Rows, 0), "%dRC-reduction-AuRA")
			b.ReportMetric(mean(r.Rows, 1), "%energy-reduction-AuRA")
		}
	}
}

// --- Ablation benches -------------------------------------------------

// benchSystem builds one cached 20-task system for the ablations.
func benchSystem(b *testing.B) (*experiments.Lab, *dse.Problem, *dse.Database, *dse.Database) {
	b.Helper()
	lab := benchLab(b)
	sys, err := lab.System(20, false)
	if err != nil {
		b.Fatal(err)
	}
	return lab, sys.Problem, sys.BaseD, sys.ReD
}

// BenchmarkAblationReDTolerance sweeps the ReD degradation tolerance:
// a wider tolerance admits more (cheaper) additional points at a
// larger QoS sacrifice.
func BenchmarkAblationReDTolerance(b *testing.B) {
	_, prob, base, _ := benchSystem(b)
	for i := 0; i < b.N; i++ {
		for _, tol := range []float64{0.05, 0.10, 0.20} {
			red, err := dse.RunReD(prob, base, dse.ReDParams{
				Tolerance:       tol,
				GA:              ga.Params{PopSize: 16, Generations: 6, Seed: 9},
				MaxExtraPerSeed: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("tolerance=%.2f -> %d extra points", tol, len(red.ReDPoints()))
			}
		}
	}
}

// BenchmarkAblationTrigger compares the always vs on-violation
// adaptation triggers on the same database and event stream.
func BenchmarkAblationTrigger(b *testing.B) {
	lab, prob, _, red := benchSystem(b)
	for i := 0; i < b.N; i++ {
		for _, trig := range []runtime.Trigger{runtime.TriggerAlways, runtime.TriggerOnViolation} {
			m, err := runtime.Simulate(runtime.Params{
				DB: red, Space: prob.Space, PRC: 1,
				Cycles: lab.Scale.SimCycles, Seed: 17, Trigger: trig,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("trigger=%v reconfigs=%d totalDRC=%.2f avgJ=%.2f",
					trig, m.Reconfigs, m.TotalDRC, m.AvgEnergyMJ)
			}
		}
	}
}

// BenchmarkAblationAuRAPrior compares the cold-start agent (uniform
// zero values) against the stay-put prior and offline pretraining.
func BenchmarkAblationAuRAPrior(b *testing.B) {
	lab, prob, _, red := benchSystem(b)
	run := func(ag *runtime.Agent) *runtime.Metrics {
		m, err := runtime.Simulate(runtime.Params{
			DB: red, Space: prob.Space, PRC: 0.5,
			Cycles: lab.Scale.SimCycles, Seed: 19,
			Trigger: runtime.TriggerOnViolation, Agent: ag,
		})
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	for i := 0; i < b.N; i++ {
		cold := runtime.NewAgent(red.Len(), 0.9)
		prior := runtime.NewAgentForDB(red, 0.9, 0)
		pre := runtime.NewAgentForDB(red, 0.9, 0)
		if err := pre.Pretrain(runtime.Params{
			DB: red, Space: prob.Space, PRC: 0.5, Trigger: runtime.TriggerOnViolation,
		}, lab.Scale.PretrainCycles, 23); err != nil {
			b.Fatal(err)
		}
		mc, mp, mt := run(cold), run(prior), run(pre)
		if i == 0 {
			b.Logf("cold:     J=%.2f dRC=%.4f", mc.AvgEnergyMJ, mc.AvgDRC)
			b.Logf("prior:    J=%.2f dRC=%.4f", mp.AvgEnergyMJ, mp.AvgDRC)
			b.Logf("pretrain: J=%.2f dRC=%.4f", mt.AvgEnergyMJ, mt.AvgDRC)
		}
	}
}

// BenchmarkAblationConstraintHandling compares constraint-dominated
// NSGA-II against an unconstrained run followed by post-filtering,
// demonstrating why infeasible points need the Figure 4a treatment.
func BenchmarkAblationConstraintHandling(b *testing.B) {
	lab := benchLab(b)
	app, err := lab.App(20)
	if err != nil {
		b.Fatal(err)
	}
	space := &mapping.Space{Graph: app, Platform: benchPlatform(), Catalogue: relmodel.DefaultCatalogue()}
	ev := &schedule.Evaluator{Space: space, Env: relmodel.DefaultEnv()}
	smax, fmin := app.PeriodMs, 0.90
	constrained := func(m *mapping.Mapping) ([]float64, float64, any) {
		res, err := ev.Evaluate(m)
		if err != nil {
			b.Fatal(err)
		}
		v := 0.0
		if res.MakespanMs > smax {
			v += (res.MakespanMs - smax) / smax
		}
		if res.Reliability < fmin {
			v += fmin - res.Reliability
		}
		return []float64{res.EnergyMJ, res.MakespanMs}, v, res
	}
	unconstrained := func(m *mapping.Mapping) ([]float64, float64, any) {
		objs, _, res := constrained(m)
		return objs, 0, res
	}
	count := func(obj ga.Objective) int {
		e := &ga.Engine{Space: space, Eval: obj, Params: ga.Params{PopSize: 20, Generations: 8, Seed: 29}}
		pop, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for _, ind := range pop.ParetoFront() {
			res := ind.Payload.(*schedule.Result)
			if res.MakespanMs <= smax && res.Reliability >= fmin {
				n++
			}
		}
		return n
	}
	for i := 0; i < b.N; i++ {
		nc, nu := count(constrained), count(unconstrained)
		if i == 0 {
			b.Logf("feasible front points: constraint-dominated=%d unconstrained+filter=%d", nc, nu)
			b.ReportMetric(float64(nc), "constrained-feasible")
			b.ReportMetric(float64(nu), "unconstrained-feasible")
		}
	}
}

func benchPlatform() *Platform { return DefaultPlatform() }

// --- Substrate microbenches -------------------------------------------

func BenchmarkScheduleEvaluate(b *testing.B) {
	plat := DefaultPlatform()
	g, err := taskgraph.Generate(taskgraph.GenParams{Seed: 71, NumTasks: 50}, plat)
	if err != nil {
		b.Fatal(err)
	}
	space := &mapping.Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()}
	ev := &schedule.Evaluator{Space: space, Env: relmodel.DefaultEnv()}
	m := space.Random(rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Evaluate(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDRC(b *testing.B) {
	plat := DefaultPlatform()
	g, err := taskgraph.Generate(taskgraph.GenParams{Seed: 72, NumTasks: 50}, plat)
	if err != nil {
		b.Fatal(err)
	}
	space := &mapping.Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()}
	r := rng.New(2)
	x, y := space.Random(r), space.Random(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space.DRC(x, y)
	}
}

func BenchmarkHypervolume3D(b *testing.B) {
	r := rng.New(3)
	pts := make([][]float64, 30)
	for i := range pts {
		pts[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
	}
	ref := []float64{1, 1, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pareto.Hypervolume(pts, ref)
	}
}

func BenchmarkGAGeneration(b *testing.B) {
	plat := DefaultPlatform()
	g, err := taskgraph.Generate(taskgraph.GenParams{Seed: 73, NumTasks: 30}, plat)
	if err != nil {
		b.Fatal(err)
	}
	space := &mapping.Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()}
	ev := &schedule.Evaluator{Space: space, Env: relmodel.DefaultEnv()}
	obj := func(m *mapping.Mapping) ([]float64, float64, any) {
		res, err := ev.Evaluate(m)
		if err != nil {
			b.Fatal(err)
		}
		return []float64{res.EnergyMJ, res.MakespanMs}, 0, res
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &ga.Engine{Space: space, Eval: obj, Params: ga.Params{PopSize: 30, Generations: 1, Seed: int64(i)}}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuntimeSimulation(b *testing.B) {
	lab := benchLab(b)
	sys, err := lab.System(20, false)
	if err != nil {
		b.Fatal(err)
	}
	db := sys.Database()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := sys.RuntimeParams(db, 0.5, int64(i))
		p.Cycles = 100_000
		if _, err := runtime.Simulate(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTaskGraphGeneration(b *testing.B) {
	plat := DefaultPlatform()
	for i := 0; i < b.N; i++ {
		if _, err := taskgraph.Generate(taskgraph.GenParams{Seed: int64(i), NumTasks: 100}, plat); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBigDB builds a synthetic n-point database over a 40-task
// application: random valid mappings carrying their real schedule
// metrics, so decisions see the same feasibility spread a DSE product
// would, at a database size a bench-scale exploration cannot reach.
func benchBigDB(b *testing.B, n int) (*dse.Database, *mapping.Space) {
	b.Helper()
	plat := DefaultPlatform()
	g, err := taskgraph.Generate(taskgraph.GenParams{Seed: 81, NumTasks: 40}, plat)
	if err != nil {
		b.Fatal(err)
	}
	space := &mapping.Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()}
	ev := &schedule.Evaluator{Space: space, Env: relmodel.DefaultEnv()}
	r := rng.New(5)
	db := &dse.Database{Name: "bench"}
	for db.Len() < n {
		m := space.Random(r)
		res, err := ev.Evaluate(m)
		if err != nil {
			b.Fatal(err)
		}
		db.Points = append(db.Points, &dse.DesignPoint{
			ID:          db.Len(),
			M:           m,
			MakespanMs:  res.MakespanMs,
			Reliability: res.Reliability,
			EnergyMJ:    res.EnergyMJ,
			PeakPowerW:  res.PeakPowerW,
			MTTFMs:      res.MTTFMs,
		})
	}
	return db, space
}

// BenchmarkDecide measures the uRA decision hot path in isolation on
// an N=80 database: one Manager, TriggerAlways, so every event runs
// the full feasibility filter + RET scoring loop of Algorithm 1.
func BenchmarkDecide(b *testing.B) {
	db, space := benchBigDB(b, 80)
	model := runtime.ModelFromDatabase(db)
	src := rng.New(9)
	boot := model.Sample(src)
	mgr, err := runtime.NewManager(runtime.ManagerParams{
		DB: db, Space: space, PRC: 0.5, Trigger: runtime.TriggerAlways,
	}, boot)
	if err != nil {
		b.Fatal(err)
	}
	stream := model.Stream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr.OnQoSChange(stream.Next(src))
	}
}

// BenchmarkShadowDecide measures Continuous ReD's dual-serve overhead
// on the registry decide path: the same N=80 database and event model
// as BenchmarkDecide, once without a candidate (plain) and once with a
// candidate installed so every decision is additionally shadow-scored.
//
// Target: shadow stays within 25% of plain in steady state so that
// dual-serving is cheap enough to leave on for a whole validation
// window. The uRA shadow memo (see fleet.shadowScore) delivers that
// when the incoming spec repeats — the "steady" variant, which drives
// a persisting spec, exercises the memo's hit path. The "shadow"
// variant drives the full stochastic event model, where every fresh
// spec costs a genuine second decision; its overhead is bounded by the
// model's spec-persistence, not by the memo (measured ≈1.5x at the
// model's default persistence).
func BenchmarkShadowDecide(b *testing.B) {
	db, space := benchBigDB(b, 80)
	model := runtime.ModelFromDatabase(db)
	run := func(b *testing.B, withCandidate, steady bool) {
		reg, err := NewFleetRegistry([]NamedDatabase{{Name: "red", DB: db, Space: space}}, 4)
		if err != nil {
			b.Fatal(err)
		}
		src := rng.New(9)
		boot := model.Sample(src)
		if _, err := reg.Register(FleetDeviceParams{
			ID: "bench", Database: "red", PRC: 0.5,
			Trigger: runtime.TriggerAlways, Initial: boot,
		}); err != nil {
			b.Fatal(err)
		}
		if withCandidate {
			cand := *db
			cand.Version = 1
			if err := reg.ProposeDatabase("red", &cand); err != nil {
				b.Fatal(err)
			}
		}
		stream := model.Stream()
		spec := stream.Next(src)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !steady {
				spec = stream.Next(src)
			}
			if _, err := reg.Decide("bench", spec); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("plain", func(b *testing.B) { run(b, false, false) })
	b.Run("shadow", func(b *testing.B) { run(b, true, false) })
	b.Run("plain-steady", func(b *testing.B) { run(b, false, true) })
	b.Run("steady", func(b *testing.B) { run(b, true, true) })
}

// BenchmarkCohortPrior measures the cold-start decide path under
// cohort inheritance on the N=80 database: each iteration registers a
// fresh AuRA device — whose agent is seeded from the cohort's
// published value table at registration — and fires its first QoS
// event. The "bare" variant is the same path with no table published;
// the gate keeps prior application (two value-vector copies plus the
// binding checks) negligible next to registration and the decision
// itself.
func BenchmarkCohortPrior(b *testing.B) {
	db, space := benchBigDB(b, 80)
	model := runtime.ModelFromDatabase(db)
	run := func(b *testing.B, seeded bool) {
		reg, err := NewFleetRegistry([]NamedDatabase{{Name: "red", DB: db, Space: space}}, 4)
		if err != nil {
			b.Fatal(err)
		}
		if seeded {
			_, fp, err := reg.ActiveSnapshot("red")
			if err != nil {
				b.Fatal(err)
			}
			vt := &runtime.ValueTable{
				Version: 1, Epoch: 1, Gamma: 0.8,
				DBVersion: db.Version, DBFingerprint: fp,
				Devices: 8, Events: 512,
				VR:     make([]float64, db.Len()),
				VD:     make([]float64, db.Len()),
				Visits: make([]int, db.Len()),
			}
			for i, p := range db.Points {
				vt.VR[i] = -p.EnergyMJ * 3
				vt.VD[i] = 1.5
				vt.Visits[i] = 10
			}
			if err := reg.PublishValueTable("red", vt); err != nil {
				b.Fatal(err)
			}
		}
		src := rng.New(9)
		boot := model.Sample(src)
		stream := model.Stream()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := fmt.Sprintf("cold-%d", i)
			if _, err := reg.Register(FleetDeviceParams{
				ID: id, Database: "red", PRC: 0.5, Gamma: 0.8,
				Trigger: runtime.TriggerAlways, Initial: boot,
			}); err != nil {
				b.Fatal(err)
			}
			if _, err := reg.Decide(id, stream.Next(src)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, false) })
	b.Run("seeded", func(b *testing.B) { run(b, true) })
}

// BenchmarkReD measures the reconfiguration-cost-aware stage end to
// end: every fitness evaluation computes an average reconfiguration
// distance against the stored set.
func BenchmarkReD(b *testing.B) {
	_, prob, base, _ := benchSystem(b)
	for i := 0; i < b.N; i++ {
		if _, err := dse.RunReD(prob, base, dse.ReDParams{
			GA:              ga.Params{PopSize: 16, Generations: 8, Seed: 5},
			MaxExtraPerSeed: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetDecisionThroughput measures the decision service
// end-to-end: an in-process HTTP server over a real loopback socket,
// parallel clients each owning one registered device and firing QoS
// events as fast as the service answers them. The reported ns/op is
// the full network round-trip per decision.
func BenchmarkFleetDecisionThroughput(b *testing.B) {
	_, prob, _, red := benchSystem(b)
	benchFleetThroughput(b, red, prob.Space)
}

// BenchmarkFleetDecisionThroughputLargeDB is the same service bench on
// an N=80 database — the regime where per-decision work is dominated
// by the feasibility filter and dRC scoring rather than HTTP overhead.
func BenchmarkFleetDecisionThroughputLargeDB(b *testing.B) {
	db, space := benchBigDB(b, 80)
	benchFleetThroughput(b, db, space)
}

func benchFleetThroughput(b *testing.B, db *dse.Database, space *mapping.Space) {
	b.Helper()
	srv, err := NewFleetServer(FleetServerConfig{
		Databases: []NamedDatabase{{Name: "red", DB: db, Space: space}},
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256

	minS, maxS, minF, maxF := NamedDatabase{Name: "red", DB: db, Space: space}.Envelope()
	boot := QoSSpec{SMaxMs: maxS, FMin: minF}
	model := runtime.QoSModel{
		MeanS: (minS + maxS) / 2, StdS: (maxS - minS) / 4,
		MeanF: (minF + maxF) / 2, StdF: (maxF - minF) / 4,
		Rho: -0.3, Persist: 0.6,
		LoS: minS, HiS: maxS * 1.05, LoF: minF * 0.98, HiF: maxF,
	}

	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := worker.Add(1)
		src := rng.New(100 + id)
		stream := model.Stream()
		reg := map[string]any{
			"id": fmt.Sprintf("bench-%d", id), "database": "red", "prc": 0.5,
			"trigger": "on-violation",
			"initial": map[string]float64{"s_max_ms": boot.SMaxMs, "f_min": boot.FMin},
		}
		if err := postBenchJSON(client, ts.URL+"/v1/devices", reg); err != nil {
			b.Error(err)
			return
		}
		url := fmt.Sprintf("%s/v1/devices/bench-%d/qos", ts.URL, id)
		for pb.Next() {
			spec := stream.Next(src)
			body := map[string]float64{"s_max_ms": spec.SMaxMs, "f_min": spec.FMin}
			if err := postBenchJSON(client, url, body); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(srv.Registry().DecisionCount()), "decisions")
}

// BenchmarkFleetBatchThroughput measures the batched serving path on
// the same database and event model as BenchmarkFleetDecisionThroughput:
// each parallel worker owns one registered device, accumulates 64
// events, and posts them as one binary batch
// (POST /v1/devices:decide-batch, application/x-clr-bin). The
// reported ns/op is the amortised per-event cost, directly comparable
// to the single-event bench's per-round-trip figure.
func BenchmarkFleetBatchThroughput(b *testing.B) {
	const batchSize = 64
	_, prob, _, red := benchSystem(b)
	srv, err := NewFleetServer(FleetServerConfig{
		Databases: []NamedDatabase{{Name: "red", DB: red, Space: prob.Space}},
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256

	minS, maxS, minF, maxF := NamedDatabase{Name: "red", DB: red, Space: prob.Space}.Envelope()
	boot := QoSSpec{SMaxMs: maxS, FMin: minF}
	model := runtime.QoSModel{
		MeanS: (minS + maxS) / 2, StdS: (maxS - minS) / 4,
		MeanF: (minF + maxF) / 2, StdF: (maxF - minF) / 4,
		Rho: -0.3, Persist: 0.6,
		LoS: minS, HiS: maxS * 1.05, LoF: minF * 0.98, HiF: maxF,
	}

	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := worker.Add(1)
		src := rng.New(200 + id)
		stream := model.Stream()
		dev := fmt.Sprintf("bench-batch-%d", id)
		reg := map[string]any{
			"id": dev, "database": "red", "prc": 0.5,
			"trigger": "on-violation",
			"initial": map[string]float64{"s_max_ms": boot.SMaxMs, "f_min": boot.FMin},
		}
		if err := postBenchJSON(client, ts.URL+"/v1/devices", reg); err != nil {
			b.Error(err)
			return
		}
		url := ts.URL + "/v1/devices:decide-batch"
		events := make([]fleet.BatchEventJSON, 0, batchSize)
		var body, respBuf []byte
		var results []fleet.BatchResultJSON
		var seq uint64
		flush := func() error {
			var err error
			if body, err = fleet.AppendBatchRequest(body[:0], events); err != nil {
				return err
			}
			resp, err := client.Post(url, fleet.BinContentType, bytes.NewReader(body))
			if err != nil {
				return err
			}
			respBuf, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("batch: status %s", resp.Status)
			}
			if results, err = fleet.DecodeBatchResponse(respBuf, results[:0]); err != nil {
				return err
			}
			for i := range results {
				if results[i].Status != http.StatusOK {
					return fmt.Errorf("batch slot %d: status %d: %s", i, results[i].Status, results[i].Error)
				}
			}
			events = events[:0]
			return nil
		}
		for pb.Next() {
			spec := stream.Next(src)
			seq++
			events = append(events, fleet.BatchEventJSON{
				Device: dev, Seq: seq,
				QoSSpecJSON: fleet.QoSSpecJSON{SMaxMs: spec.SMaxMs, FMin: spec.FMin},
			})
			if len(events) == batchSize {
				if err := flush(); err != nil {
					b.Error(err)
					return
				}
			}
		}
		if len(events) > 0 {
			if err := flush(); err != nil {
				b.Error(err)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(srv.Registry().DecisionCount()), "decisions")
}

// postBenchJSON posts and drains one request for the fleet benchmark.
func postBenchJSON(client *http.Client, url string, body any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s: status %s", url, resp.Status)
	}
	return nil
}

// BenchmarkAblationStorageBudget sweeps the pruning budget of the
// paper's storage-constraint concern: how much run-time quality a
// smaller stored database costs.
func BenchmarkAblationStorageBudget(b *testing.B) {
	lab, prob, _, red := benchSystem(b)
	for i := 0; i < b.N; i++ {
		for _, budget := range []int{red.Len(), red.Len() / 2, red.Len() / 4, 4} {
			db := red
			if budget < red.Len() {
				var err error
				db, err = dse.Prune(red, budget, false)
				if err != nil {
					b.Fatal(err)
				}
			}
			m, err := runtime.Simulate(runtime.Params{
				DB: db, Space: prob.Space, PRC: 1,
				Cycles: lab.Scale.SimCycles, Seed: 37,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("budget=%3d points: avgJ=%.2f avgDRC=%.4f violations=%d",
					db.Len(), m.AvgEnergyMJ, m.AvgDRC, m.ViolationEvents)
			}
		}
	}
}

// BenchmarkAblationLifetimeObjective compares the plain DSE against
// the MTTF-extended objective the paper sketches in Section 4.1.
func BenchmarkAblationLifetimeObjective(b *testing.B) {
	lab := benchLab(b)
	app, err := lab.App(20)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, lifetime := range []bool{false, true} {
			prob := &dse.Problem{
				Space: &mapping.Space{
					Graph:     app,
					Platform:  DefaultPlatform(),
					Catalogue: relmodel.DefaultCatalogue(),
				},
				Env:      relmodel.DefaultEnv(),
				SMaxMs:   app.PeriodMs,
				FMin:     0.90,
				Lifetime: lifetime,
			}
			db, err := dse.RunBase(prob, ga.Params{PopSize: 24, Generations: 10, Seed: 41})
			if err != nil {
				b.Fatal(err)
			}
			bestMTTF, bestJ := 0.0, 0.0
			for _, p := range db.Points {
				if p.MTTFMs > bestMTTF {
					bestMTTF = p.MTTFMs
				}
				if bestJ == 0 || p.EnergyMJ < bestJ {
					bestJ = p.EnergyMJ
				}
			}
			if i == 0 {
				b.Logf("lifetime=%v: %d points, best MTTF %.3g ms, best J %.2f mJ",
					lifetime, db.Len(), bestMTTF, bestJ)
			}
		}
	}
}

// BenchmarkAblationHeuristicSeeding compares random-only GA
// initialisation against injecting the constructive heuristics.
func BenchmarkAblationHeuristicSeeding(b *testing.B) {
	lab := benchLab(b)
	app, err := lab.App(20)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, seeded := range []bool{false, true} {
			sys, err := core.Build(app, core.Options{
				Seed:           51,
				StageOne:       ga.Params{PopSize: 24, Generations: 10},
				SkipReD:        true,
				HeuristicSeeds: seeded,
			})
			if err != nil {
				b.Fatal(err)
			}
			bestJ, bestS := 0.0, 0.0
			for _, p := range sys.BaseD.Points {
				if bestJ == 0 || p.EnergyMJ < bestJ {
					bestJ = p.EnergyMJ
				}
				if bestS == 0 || p.MakespanMs < bestS {
					bestS = p.MakespanMs
				}
			}
			if i == 0 {
				b.Logf("heuristic-seeds=%v: front=%d bestJ=%.2f bestS=%.2f",
					seeded, sys.BaseD.Len(), bestJ, bestS)
			}
		}
	}
}

// BenchmarkAblationLifetimeUsage compares mission lifetime under a
// frugal dynamic-CLR usage mix against pinning the most protected
// configuration — the wear argument for lifetime-aware adaptation.
func BenchmarkAblationLifetimeUsage(b *testing.B) {
	lab, prob, _, red := benchSystem(b)
	_ = lab
	// Usage mixes: uniform over the stored points (dynamic) vs the
	// single most reliable point (pinned worst case).
	var pinned *dse.DesignPoint
	for _, p := range red.Points {
		if pinned == nil || p.Reliability > pinned.Reliability {
			pinned = p
		}
	}
	for i := 0; i < b.N; i++ {
		dyn, err := lifetime.Simulate(lifetime.UsageFromDatabasePoints(red.Mappings()),
			lifetime.Params{Space: prob.Space, Samples: 1000, Seed: 61})
		if err != nil {
			b.Fatal(err)
		}
		fix, err := lifetime.Simulate([]lifetime.Usage{{M: pinned.M, Weight: 1}},
			lifetime.Params{Space: prob.Space, Samples: 1000, Seed: 61})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("dynamic mix: mission loss %.3g ms (%.1f failures survived)",
				dyn.MeanMissionLossMs, dyn.FailuresSurvived)
			b.Logf("pinned max-F: mission loss %.3g ms (%.1f failures survived)",
				fix.MeanMissionLossMs, fix.FailuresSurvived)
			b.ReportMetric(dyn.MeanMissionLossMs/fix.MeanMissionLossMs, "lifetime-ratio")
		}
	}
}

// BenchmarkAblationCrossover compares the recombination operators on
// the stage-1 exploration at equal budget.
func BenchmarkAblationCrossover(b *testing.B) {
	lab := benchLab(b)
	app, err := lab.App(20)
	if err != nil {
		b.Fatal(err)
	}
	space := &mapping.Space{Graph: app, Platform: DefaultPlatform(), Catalogue: relmodel.DefaultCatalogue()}
	ev := &schedule.Evaluator{Space: space, Env: relmodel.DefaultEnv()}
	obj := func(m *mapping.Mapping) ([]float64, float64, any) {
		res, err := ev.Evaluate(m)
		if err != nil {
			b.Fatal(err)
		}
		return []float64{res.EnergyMJ, res.MakespanMs}, 0, res
	}
	ref := []float64{1e6, 1e6}
	for i := 0; i < b.N; i++ {
		for _, kind := range []ga.CrossoverKind{ga.CrossoverUniform, ga.CrossoverOnePoint, ga.CrossoverTwoPoint} {
			e := &ga.Engine{Space: space, Eval: obj, Params: ga.Params{
				PopSize: 24, Generations: 12, Seed: 71, Crossover: kind,
			}}
			pop, err := e.Run()
			if err != nil {
				b.Fatal(err)
			}
			var objs [][]float64
			for _, ind := range pop.ParetoFront() {
				objs = append(objs, ind.Objs)
			}
			if i == 0 {
				b.Logf("%-9v front=%2d HV=%.4g", kind, len(objs), pareto.Hypervolume(objs, ref))
			}
		}
	}
}

// BenchmarkAblationSurvival compares NSGA-II crowding truncation
// against SMS-EMOA-style hyper-volume-contribution truncation — the
// literal reading of the paper's Eq. (5).
func BenchmarkAblationSurvival(b *testing.B) {
	lab := benchLab(b)
	app, err := lab.App(20)
	if err != nil {
		b.Fatal(err)
	}
	space := &mapping.Space{Graph: app, Platform: DefaultPlatform(), Catalogue: relmodel.DefaultCatalogue()}
	ev := &schedule.Evaluator{Space: space, Env: relmodel.DefaultEnv()}
	obj := func(m *mapping.Mapping) ([]float64, float64, any) {
		res, err := ev.Evaluate(m)
		if err != nil {
			b.Fatal(err)
		}
		return []float64{res.EnergyMJ, res.MakespanMs}, 0, res
	}
	ref := []float64{1e6, 1e6}
	for i := 0; i < b.N; i++ {
		for _, survival := range []ga.SurvivalKind{ga.SurvivalCrowding, ga.SurvivalHypervolume} {
			e := &ga.Engine{Space: space, Eval: obj, Params: ga.Params{
				PopSize: 24, Generations: 12, Seed: 73, Survival: survival,
			}}
			pop, err := e.Run()
			if err != nil {
				b.Fatal(err)
			}
			var objs [][]float64
			for _, ind := range pop.ParetoFront() {
				objs = append(objs, ind.Objs)
			}
			if i == 0 {
				b.Logf("%-11v front=%2d HV=%.6g", survival, len(objs), pareto.Hypervolume(objs, ref))
			}
		}
	}
}

// BenchmarkAblationContention quantifies how much the paper's
// additive communication-latency abstraction underestimates makespans
// versus a shared-interconnect model, on the same stored points.
func BenchmarkAblationContention(b *testing.B) {
	_, prob, base, _ := benchSystem(b)
	bus := &schedule.Evaluator{Space: prob.Space, Env: prob.Env, ContentionAware: true}
	plain := &schedule.Evaluator{Space: prob.Space, Env: prob.Env}
	for i := 0; i < b.N; i++ {
		worst, sum := 0.0, 0.0
		for _, pt := range base.Points {
			rp, err := plain.Evaluate(pt.M)
			if err != nil {
				b.Fatal(err)
			}
			rb, err := bus.Evaluate(pt.M)
			if err != nil {
				b.Fatal(err)
			}
			gap := rb.MakespanMs/rp.MakespanMs - 1
			sum += gap
			if gap > worst {
				worst = gap
			}
		}
		if i == 0 {
			b.Logf("contention vs additive makespan: mean +%.1f%%, worst +%.1f%% over %d points",
				100*sum/float64(base.Len()), 100*worst, base.Len())
			b.ReportMetric(100*sum/float64(base.Len()), "%mean-makespan-underestimate")
		}
	}
}
