// Package clr is the public API of the library: a from-scratch Go
// implementation of the hybrid agent-based design methodology for
// dynamic cross-layer reliability (CLR) in heterogeneous MPSoC-based
// embedded systems from Sahoo, Veeravalli and Kumar, DAC 2019.
//
// The methodology has two halves:
//
//   - Design time — a genetic-algorithm multi-objective exploration
//     finds the Pareto set of CLR-integrated task mappings (per task:
//     PE binding, implementation, per-layer reliability method,
//     schedule priority) w.r.t. energy, makespan and functional
//     reliability; a second, reconfiguration-cost-aware stage (ReD)
//     adds non-dominant points that are cheap to reach from the stored
//     set.
//   - Run time — on each discrete QoS-requirement change, a manager
//     picks the stored point maximising
//     RET(p) = pRC*norm(R(p)) - (1-pRC)*norm(dRC(p)) over the feasible
//     points (uRA), optionally replacing the instantaneous scores with
//     reinforcement-learned state values initialised by offline
//     Monte-Carlo simulation (AuRA).
//
// Quick start:
//
//	app := clr.JPEGEncoder(clr.DefaultPlatform())
//	sys, err := clr.Build(app, clr.Options{Seed: 1})
//	if err != nil { ... }
//	params := sys.RuntimeParams(sys.Database(), 0.5, 42)
//	metrics, err := clr.Simulate(params)
//
// All heavy lifting lives in the internal packages; this package
// re-exports the stable surface. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for the paper-reproduction results.
package clr

import (
	"io"

	"clrdse/internal/core"
	"clrdse/internal/dse"
	"clrdse/internal/experiments"
	"clrdse/internal/faultsim"
	"clrdse/internal/fleet"
	fleetclient "clrdse/internal/fleet/client"
	"clrdse/internal/ga"
	"clrdse/internal/lifetime"
	"clrdse/internal/mapping"
	"clrdse/internal/platform"
	"clrdse/internal/relmodel"
	"clrdse/internal/runtime"
	"clrdse/internal/schedule"
	"clrdse/internal/taskgraph"
)

// Architecture model (paper Section 3.1).
type (
	// Platform is the heterogeneous MPSoC model: PEs of several types
	// plus partially reconfigurable regions.
	Platform = platform.Platform
	// PEType describes one class of processing element (speed, power,
	// soft-error masking factor, aging profile).
	PEType = platform.PEType
	// PE is one processing element instance.
	PE = platform.PE
	// PRR is a partially reconfigurable region hosting accelerators.
	PRR = platform.PRR
)

// Application model (paper Section 3.2).
type (
	// Graph is a periodic application task graph.
	Graph = taskgraph.Graph
	// Task is one task node with its implementation set.
	Task = taskgraph.Task
	// Edge is a data dependency with communication time.
	Edge = taskgraph.Edge
	// Impl is one implementation of a task for one PE type.
	Impl = taskgraph.Impl
	// GenParams parameterises the TGFF-style synthetic generator.
	GenParams = taskgraph.GenParams
	// TGFFOptions configures the TGFF file parser.
	TGFFOptions = taskgraph.TGFFOptions
)

// Cross-layer reliability model (paper Section 3.3, Table 2).
type (
	// Catalogue is the per-layer set of reliability methods.
	Catalogue = relmodel.Catalogue
	// Method is one fault-mitigation technique.
	Method = relmodel.Method
	// RelConfig selects one method per layer for a task.
	RelConfig = relmodel.Config
	// Env is the fault-rate and aging environment.
	Env = relmodel.Env
	// TaskMetrics are the task-level Table 2 metrics.
	TaskMetrics = relmodel.TaskMetrics
)

// Configurations and scheduling (paper Sections 3.4-3.5, Table 3).
type (
	// Mapping is one CLR-integrated task-mapping configuration X_i.
	Mapping = mapping.Mapping
	// Gene is the per-task slice of a Mapping.
	Gene = mapping.Gene
	// Space binds a graph, platform and catalogue into one problem.
	Space = mapping.Space
	// ReconfigCost decomposes the reconfiguration cost dRC.
	ReconfigCost = mapping.ReconfigCost
	// Action is one imperative reconfiguration step of a plan.
	Action = mapping.Action
	// ActionKind classifies reconfiguration steps.
	ActionKind = mapping.ActionKind
	// ScheduleResult carries the schedule and system-level metrics.
	ScheduleResult = schedule.Result
	// ScheduleEvaluator computes schedules for mappings.
	ScheduleEvaluator = schedule.Evaluator
)

// Design-time exploration (paper Section 4.2).
type (
	// Problem is a design-time DSE instance.
	Problem = dse.Problem
	// DesignPoint is one stored configuration with metrics.
	DesignPoint = dse.DesignPoint
	// Database is an ordered set of stored design points.
	Database = dse.Database
	// ReDParams configures the reconfiguration-cost-aware stage.
	ReDParams = dse.ReDParams
	// GAParams configures the evolutionary engine (crossover 0.7,
	// mutation 0.03, tournament 5 by default, as in the paper).
	GAParams = ga.Params
)

// Run-time adaptation (paper Section 4.3).
type (
	// QoSSpec is one (S_SPEC, F_SPEC) requirement.
	QoSSpec = runtime.QoSSpec
	// QoSModel generates the QoS-variation process.
	QoSModel = runtime.QoSModel
	// RuntimeParams configures one run-time simulation.
	RuntimeParams = runtime.Params
	// RuntimeMetrics summarises a simulation run.
	RuntimeMetrics = runtime.Metrics
	// TraceEntry records one discrete event.
	TraceEntry = runtime.TraceEntry
	// Trigger selects when the manager re-optimises.
	Trigger = runtime.Trigger
	// Policy selects the candidate-scoring rule.
	Policy = runtime.Policy
	// Agent is the AuRA reinforcement-learning agent.
	Agent = runtime.Agent
	// Regime is one phase of a scripted operating scenario.
	Regime = runtime.Regime
	// Scenario is a timeline of operating regimes (the intro's
	// satellite mission profile).
	Scenario = runtime.Scenario
	// Battery couples energy consumption to run-time policy.
	Battery = runtime.Battery
	// ScenarioParams configures a scripted simulation.
	ScenarioParams = runtime.ScenarioParams
	// ScenarioMetrics extends RuntimeMetrics with per-regime and
	// battery accounting.
	ScenarioMetrics = runtime.ScenarioMetrics
	// Manager is the embeddable run-time controller.
	Manager = runtime.Manager
	// ManagerParams configures a Manager.
	ManagerParams = runtime.ManagerParams
	// Decision is a Manager's reaction to one QoS change, including
	// the imperative reconfiguration plan.
	Decision = runtime.Decision
)

// Trigger and selection policies.
const (
	// TriggerAlways re-optimises on every QoS event.
	TriggerAlways = runtime.TriggerAlways
	// TriggerOnViolation re-optimises only when the current
	// configuration violates the new specification.
	TriggerOnViolation = runtime.TriggerOnViolation
	// PolicyRET is Algorithm 1's weighted uRA/AuRA score.
	PolicyRET = runtime.PolicyRET
	// PolicyHypervolume is the purely performance-oriented baseline.
	PolicyHypervolume = runtime.PolicyHypervolume
)

// Hybrid methodology (paper Section 4, Figure 3).
type (
	// System is a built instance: problem + stored databases.
	System = core.System
	// Options configures the design-time stage.
	Options = core.Options
)

// DefaultPlatform returns the paper's evaluation platform: 5 PEs of 3
// types (differing in masking factor) plus 3 PRRs.
func DefaultPlatform() *Platform { return platform.Default() }

// LargePlatform returns a 10-processor/5-PRR variant of the default
// platform for headroom studies.
func LargePlatform() *Platform { return platform.Large() }

// ReadSpecsCSV loads a QoS-specification sequence for
// RuntimeParams.Replay (accepts WriteTraceCSV output directly).
func ReadSpecsCSV(r io.Reader) ([]QoSSpec, error) { return runtime.ReadSpecsCSV(r) }

// RemovePE models a permanent PE fault by returning a reduced copy of
// the platform.
func RemovePE(p *Platform, peID int) (*Platform, error) { return platform.RemovePE(p, peID) }

// DefaultCatalogue returns the fine-grained CLR method space (CLR2).
func DefaultCatalogue() *Catalogue { return relmodel.DefaultCatalogue() }

// CoarseCatalogue returns the reduced CLR space (CLR1).
func CoarseCatalogue() *Catalogue { return relmodel.CoarseCatalogue() }

// HWOnlyCatalogue returns the single-layer hardware-only baseline.
func HWOnlyCatalogue() *Catalogue { return relmodel.HWOnlyCatalogue() }

// ExtendedCatalogue returns a broader method space than the paper's
// (180 per-task configurations) for granularity studies.
func ExtendedCatalogue() *Catalogue { return relmodel.ExtendedCatalogue() }

// DefaultEnv returns the evaluation fault/aging environment.
func DefaultEnv() Env { return relmodel.DefaultEnv() }

// Generate builds a TGFF-style synthetic application for the platform.
func Generate(p GenParams, plat *Platform) (*Graph, error) { return taskgraph.Generate(p, plat) }

// JPEGEncoder returns the 11-task/13-edge JPEG encoder of Figure 2b.
func JPEGEncoder(plat *Platform) *Graph { return taskgraph.JPEGEncoder(plat) }

// Build runs the full design-time flow (stage-1 MOEA + ReD) and
// returns the deployable System.
func Build(app *Graph, opts Options) (*System, error) { return core.Build(app, opts) }

// RunBase executes only the stage-1 system-level MOEA.
func RunBase(p *Problem, params GAParams) (*Database, error) { return dse.RunBase(p, params) }

// RunReD executes the reconfiguration-cost-aware stage on top of an
// existing database.
func RunReD(p *Problem, base *Database, rp ReDParams) (*Database, error) {
	return dse.RunReD(p, base, rp)
}

// Prune shrinks a database to a storage budget, keeping the QoS
// envelope and the highest hyper-volume-contribution points — the
// storage-constraint mitigation the paper's conclusion calls for.
func Prune(db *Database, maxPoints int, csp bool) (*Database, error) {
	return dse.Prune(db, maxPoints, csp)
}

// ReadDatabase loads a deployed design-point database from JSON and
// validates it against the space. Databases are written with
// (*Database).WriteFile.
func ReadDatabase(path string, space *Space) (*Database, error) {
	return dse.ReadDatabase(path, space)
}

// Simulate runs the discrete-event run-time adaptation simulation.
func Simulate(p RuntimeParams) (*RuntimeMetrics, error) { return runtime.Simulate(p) }

// SimulateScenario runs a scripted mission profile (regimes, optional
// battery coupling) through the run-time manager.
func SimulateScenario(p ScenarioParams) (*ScenarioMetrics, error) {
	return runtime.SimulateScenario(p)
}

// NewManager boots the embeddable run-time controller into the best
// feasible stored point for the initial specification.
func NewManager(p ManagerParams, initial QoSSpec) (*Manager, error) {
	return runtime.NewManager(p, initial)
}

// ParseTGFF reads an application from a file in the format of the TGFF
// tool the paper generated its workloads with.
func ParseTGFF(r io.Reader, plat *Platform, opts TGFFOptions) (*Graph, error) {
	return taskgraph.ParseTGFF(r, plat, opts)
}

// NewAgent returns a raw AuRA agent with uniform (zero) value
// functions for n design points.
func NewAgent(n int, gamma float64) *Agent { return runtime.NewAgent(n, gamma) }

// NewAgentForDB returns an AuRA agent whose value functions start from
// the stay-put prior for the database's points.
func NewAgentForDB(db *Database, gamma float64, eventsPerEpisode int) *Agent {
	return runtime.NewAgentForDB(db, gamma, eventsPerEpisode)
}

// ReadAgent loads a persisted agent (see (*Agent).WriteFile) for a
// database of n design points.
func ReadAgent(path string, n int) (*Agent, error) { return runtime.ReadAgent(path, n) }

// ModelFromDatabase derives a QoS-variation model spanned by the
// database's design points.
func ModelFromDatabase(db *Database) QoSModel { return runtime.ModelFromDatabase(db) }

// Fleet decision service: one network-facing process hosting the
// run-time layer for many devices (POST a QoS change, get back the
// decision and reconfiguration plan).
type (
	// FleetServer is the HTTP/JSON decision service.
	FleetServer = fleet.Server
	// FleetServerConfig configures a FleetServer.
	FleetServerConfig = fleet.ServerConfig
	// FleetRegistry is the sharded, concurrency-safe device registry
	// behind the server (also usable in-process without HTTP).
	FleetRegistry = fleet.Registry
	// NamedDatabase is one decision basis devices register against.
	NamedDatabase = fleet.NamedDatabase
	// FleetDeviceParams configures one registered device.
	FleetDeviceParams = fleet.DeviceParams
	// FleetLoadParams configures the load generator.
	FleetLoadParams = fleetclient.LoadParams
	// FleetLoadReport summarises a load-generation run.
	FleetLoadReport = fleetclient.LoadReport
	// FleetClient is the resilient fleet API client: retries with
	// capped backoff and jitter, per-attempt deadlines, per-endpoint
	// circuit breakers, exactly-once QoS events.
	FleetClient = fleetclient.Client
	// FleetClientConfig configures a FleetClient.
	FleetClientConfig = fleetclient.Config
	// FleetBatcher coalesces single QoS events from many submitters
	// into batch decide calls (build one with FleetClient.NewBatcher).
	FleetBatcher = fleetclient.Batcher
	// FleetBatchEvent is one QoS event inside a batch decide request.
	FleetBatchEvent = fleet.BatchEventJSON
	// FleetBatchResult is one event's outcome inside a batch response.
	FleetBatchResult = fleet.BatchResultJSON
)

// NewFleetServer validates the databases and builds the decision
// service; start it with Run (signal-aware) or Serve.
func NewFleetServer(cfg FleetServerConfig) (*FleetServer, error) { return fleet.NewServer(cfg) }

// NewFleetRegistry builds the sharded device registry without the
// HTTP front, for embedding the fleet manager in another server.
func NewFleetRegistry(dbs []NamedDatabase, shards int) (*FleetRegistry, error) {
	return fleet.NewRegistry(dbs, shards)
}

// RunFleetLoad drives a running fleet server with synthetic QoS
// traffic and reports throughput and latency quantiles.
func RunFleetLoad(p FleetLoadParams) (*FleetLoadReport, error) { return fleetclient.RunLoad(p) }

// NewFleetClient builds the resilient fleet API client.
func NewFleetClient(cfg FleetClientConfig) *FleetClient { return fleetclient.New(cfg) }

// Lifetime / aging (the paper's sketched MTTF extension).
type (
	// LifetimeUsage is one configuration's share of mission time.
	LifetimeUsage = lifetime.Usage
	// LifetimeParams configures a mission-lifetime Monte-Carlo.
	LifetimeParams = lifetime.Params
	// LifetimeResult reports first-failure and mission-loss horizons.
	LifetimeResult = lifetime.Result
)

// Wear computes the per-PE stress-adjusted Weibull scale under a usage
// profile.
func Wear(usage []LifetimeUsage, space *Space, env Env) ([]float64, error) {
	return lifetime.Wear(usage, space, env)
}

// SimulateLifetime samples permanent PE failures from stress-adjusted
// Weibull aging and reports how long the mission survives.
func SimulateLifetime(usage []LifetimeUsage, p LifetimeParams) (*LifetimeResult, error) {
	return lifetime.Simulate(usage, p)
}

// Fault injection (model validation).
type (
	// FaultParams configures a fault-injection campaign.
	FaultParams = faultsim.Params
	// FaultResult reports empirical vs analytical behaviour.
	FaultResult = faultsim.Result
)

// InjectFaults executes a mapped application under sampled upsets and
// compares the empirical error rates, times and energies against the
// analytical Table 2/3 models.
func InjectFaults(m *Mapping, p FaultParams) (*FaultResult, error) {
	return faultsim.Run(m, p)
}

// Experiment access: Lab caches design-time builds and regenerates the
// paper's tables and figures.
type (
	// Lab is the experiment harness.
	Lab = experiments.Lab
	// Scale selects experiment fidelity.
	Scale = experiments.Scale
)

// NewLab returns an experiment harness at the given scale.
func NewLab(s Scale) *Lab { return experiments.NewLab(s) }

// QuickScale returns the reduced experiment setup (tests/benchmarks).
func QuickScale() Scale { return experiments.QuickScale() }

// FullScale approximates the paper's experimental setup.
func FullScale() Scale { return experiments.FullScale() }
