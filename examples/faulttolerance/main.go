// Fault tolerance: the paper's internal-change scenario. A permanent
// fault takes a processing element out of service, and a harsher
// radiation environment quadruples the SEU rate; each is handled as a
// separate instance of the methodology — the design-time exploration
// re-runs on the reduced platform / new environment and produces a
// fresh database for the run-time manager.
//
// The example shows: (1) the healthy system, (2) the system after
// losing its fastest core, (3) the system under 4x lambda_SEU, and the
// graceful degradation of the achievable QoS envelope across them,
// plus AuRA-based adaptation on the degraded system.
package main

import (
	"fmt"
	"log"
	"math"

	clr "clrdse"
)

func describe(name string, sys *clr.System) {
	db := sys.Database()
	minJ, maxF, minS := math.Inf(1), 0.0, math.Inf(1)
	for _, p := range db.Points {
		minJ = math.Min(minJ, p.EnergyMJ)
		maxF = math.Max(maxF, p.Reliability)
		minS = math.Min(minS, p.MakespanMs)
	}
	fmt.Printf("%-22s %3d points | best J %8.2f mJ | best F %.4f | best S %7.2f ms\n",
		name, db.Len(), minJ, maxF, minS)
}

func main() {
	plat := clr.DefaultPlatform()
	app, err := clr.Generate(clr.GenParams{Seed: 5, NumTasks: 25}, plat)
	if err != nil {
		log.Fatal(err)
	}
	opts := clr.Options{
		Seed:     3,
		StageOne: clr.GAParams{PopSize: 40, Generations: 25},
	}

	healthy, err := clr.Build(app, opts)
	if err != nil {
		log.Fatal(err)
	}
	describe("healthy", healthy)

	// Permanent fault: PE 0 is the only fast out-of-order core. If any
	// task's sole implementation targets that core type, the rebuild
	// is rejected with a clear infeasibility error instead of
	// producing a broken database; with this application every task
	// has an alternative, so the rebuild succeeds at reduced capacity.
	if lost, err := healthy.RebuildWithoutPE(0); err != nil {
		fmt.Printf("%-22s rebuild rejected: %v\n", "PE0 failed", err)
	} else {
		describe("PE0 failed", lost)
	}

	// PE 2 is one of two identical mid cores, so its loss degrades
	// capacity but always keeps every task runnable; the methodology
	// re-runs as a new instance on the reduced platform.
	degraded, err := healthy.RebuildWithoutPE(2)
	if err != nil {
		log.Fatal(err)
	}
	describe("PE2 failed", degraded)

	// External change: the SEU rate quadruples (e.g. solar activity).
	env := clr.DefaultEnv()
	env.LambdaSEUPerMs *= 4
	harsh, err := healthy.RebuildWithEnv(env)
	if err != nil {
		log.Fatal(err)
	}
	describe("4x SEU rate", harsh)

	// Run-time adaptation continues on the degraded system, with an
	// AuRA agent pre-trained offline on the expected QoS variation.
	db := degraded.Database()
	ag, err := degraded.PretrainedAgent(db, 0.9, 0.5, 200_000, 11)
	if err != nil {
		log.Fatal(err)
	}
	p := degraded.RuntimeParams(db, 0.5, 13)
	p.Cycles = 300_000
	p.Trigger = clr.TriggerOnViolation
	p.Agent = ag
	m, err := clr.Simulate(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndegraded-system mission (AuRA, on-violation): %d events, %d reconfigs, avg dRC %.4f ms, avg energy %.2f mJ\n",
		m.Events, m.Reconfigs, m.AvgDRC, m.AvgEnergyMJ)
	if m.ViolationEvents > 0 {
		fmt.Printf("QoS unsatisfiable at %d events — the reduced platform cannot always meet the healthy envelope\n",
			m.ViolationEvents)
	}
}
