// TGFF interoperability: bring a workload produced by the actual TGFF
// tool (the generator the paper's evaluation uses) into the full
// pipeline — parse the file, run the hybrid design-time exploration,
// and simulate run-time adaptation.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	clr "clrdse"
)

func main() {
	path := filepath.Join("examples", "tgff", "workload.tgff")
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	plat := clr.DefaultPlatform()
	app, err := clr.ParseTGFF(f, plat, clr.TGFFOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	st := app.Stats()
	fmt.Printf("parsed %s: %d tasks, %d edges, period %.0f ms\n", app.Name, st.Tasks, st.Edges, app.PeriodMs)
	fmt.Printf("depth %d, width %d, %d implementations (%d accelerator)\n\n",
		st.Depth, st.Width, st.Impls, st.AccelImpls)

	sys, err := clr.Build(app, clr.Options{
		Seed:           12,
		HeuristicSeeds: true,
		StageOne:       clr.GAParams{PopSize: 40, Generations: 25},
	})
	if err != nil {
		log.Fatal(err)
	}
	db := sys.Database()
	fmt.Printf("design-time: %d stored points (%d from ReD)\n", db.Len(), len(db.ReDPoints()))

	p := sys.RuntimeParams(db, 0.5, 13)
	p.Cycles = 200_000
	m, err := clr.Simulate(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run-time: %d events, %d reconfigs, avg dRC %.4f ms, avg energy %.2f mJ/cycle\n",
		m.Events, m.Reconfigs, m.AvgDRC, m.AvgEnergyMJ)
}
