// Quickstart: build a small application, run the hybrid design-time
// exploration, and simulate run-time adaptation to changing QoS
// requirements — the whole methodology in ~40 lines.
package main

import (
	"fmt"
	"log"

	clr "clrdse"
)

func main() {
	// 1. An application: 20 synthetic tasks on the default 5-PE/3-PRR
	//    heterogeneous platform.
	plat := clr.DefaultPlatform()
	app, err := clr.Generate(clr.GenParams{Seed: 42, NumTasks: 20}, plat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application: %d tasks, period %.1f ms\n", app.NumTasks(), app.PeriodMs)

	// 2. Design time: stage-1 MOEA finds the Pareto front of
	//    CLR-integrated mappings; the ReD stage adds cheap-to-reach
	//    points for efficient run-time adaptation.
	sys, err := clr.Build(app, clr.Options{
		Seed:     1,
		StageOne: clr.GAParams{PopSize: 40, Generations: 25},
	})
	if err != nil {
		log.Fatal(err)
	}
	db := sys.Database()
	fmt.Printf("stored design points: %d (%d from the ReD stage)\n",
		db.Len(), len(db.ReDPoints()))

	// 3. Run time: QoS requirements change at random instants; the
	//    manager switches between stored points, trading energy
	//    against reconfiguration cost via pRC.
	for _, prc := range []float64{0, 0.5, 1} {
		p := sys.RuntimeParams(db, prc, 7)
		p.Cycles = 200_000
		m, err := clr.Simulate(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pRC=%.1f: %4d reconfigs, avg dRC %.4f ms, avg energy %.1f mJ\n",
			prc, m.Reconfigs, m.AvgDRC, m.AvgEnergyMJ)
	}
}
