// JPEG encoder granularity study: the Figure 1 motivation on the
// Figure 2b application. Three reliability spaces are explored on the
// same 11-task JPEG encoder —
//
//	HW-Only: all fault mitigation at the hardware layer,
//	CLR1:    a coarse cross-layer space (one method per layer),
//	CLR2:    the full fine-grained cross-layer space
//
// — and all three are then judged against the *same* distribution of
// acceptable application error rates: the fixed worst-case
// configuration (<= 2% error at all times) versus dynamic adaptation
// (always run the cheapest stored point meeting the current bound).
// The expected ordering is the paper's: J_avg(HW-Only) > J_avg(CLR1) >
// J_avg(CLR2), and dynamic beats fixed for every space.
package main

import (
	"fmt"
	"log"
	"math"

	clr "clrdse"
)

func main() {
	app := clr.JPEGEncoder(clr.DefaultPlatform())
	fmt.Printf("JPEG encoder: %d tasks, %d edges (Figure 2b)\n\n", app.NumTasks(), len(app.Edges))

	// A 10x SEU environment pushes the unprotected configurations into
	// the multi-percent error regime the paper's Figure 1 spans; at
	// the default rate this small application is reliable enough that
	// the granularity differences between the spaces barely show.
	env := clr.DefaultEnv()
	env.LambdaSEUPerMs *= 10

	spaces := []struct {
		name string
		cat  *clr.Catalogue
	}{
		{"HW-Only", clr.HWOnlyCatalogue()},
		{"CLR1", clr.CoarseCatalogue()},
		{"CLR2", clr.DefaultCatalogue()},
	}
	var fronts [][]*clr.DesignPoint
	for i, sp := range spaces {
		sys, err := clr.Build(app, clr.Options{
			Seed:           int64(100 + i),
			Catalogue:      sp.cat,
			Env:            env,
			FMin:           0.80,
			HeuristicSeeds: true,
			StageOne:       clr.GAParams{PopSize: 80, Generations: 60},
			SkipReD:        true,
		})
		if err != nil {
			log.Fatal(err)
		}
		db := sys.Database()
		fronts = append(fronts, db.Points)
		fmt.Printf("%s: %d per-task configurations, %d stored design points\n",
			sp.name, sp.cat.NumConfigs(), db.Len())
		lo, hi := 1.0, 0.0
		minJ := math.Inf(1)
		for _, p := range db.Points {
			e := 1 - p.Reliability
			lo = math.Min(lo, e)
			hi = math.Max(hi, e)
			minJ = math.Min(minJ, p.EnergyMJ)
		}
		fmt.Printf("   error-rate range %.3f%% .. %.3f%%, cheapest point %.2f mJ\n\n",
			100*lo, 100*hi, minJ)
	}

	// Common requirement distribution: acceptable error rate sampled
	// between the 2% worst case and the loosest bound any space spans.
	const maxErr = 0.02
	hi := maxErr
	for _, pts := range fronts {
		for _, p := range pts {
			hi = math.Max(hi, 1-p.Reliability)
		}
	}
	cheapestMeeting := func(pts []*clr.DesignPoint, bound float64) float64 {
		best := math.Inf(1)
		for _, p := range pts {
			if 1-p.Reliability <= bound && p.EnergyMJ < best {
				best = p.EnergyMJ
			}
		}
		return best
	}
	mostReliable := func(pts []*clr.DesignPoint) float64 {
		best := pts[0]
		for _, p := range pts {
			if p.Reliability > best.Reliability {
				best = p
			}
		}
		return best.EnergyMJ
	}

	const samples = 4000
	fmt.Printf("%-8s %22s %12s\n", "system", "fixed(<=2% error)", "dynamic")
	for k, sp := range spaces {
		pts := fronts[k]
		fixed := cheapestMeeting(pts, maxErr)
		fixedNote := ""
		if math.IsInf(fixed, 1) {
			fixed = mostReliable(pts)
			fixedNote = " (2% unreachable)"
		}
		total := 0.0
		for i := 0; i < samples; i++ {
			// Deterministic stratified sweep over the bound range.
			bound := maxErr + (hi-maxErr)*float64(i)/float64(samples-1)
			e := cheapestMeeting(pts, bound)
			if math.IsInf(e, 1) {
				e = mostReliable(pts)
			}
			total += e
		}
		fmt.Printf("%-8s %18.2f mJ%s %9.2f mJ\n", sp.name, fixed, fixedNote, total/samples)
	}
	fmt.Println("\nfiner CLR spaces store cheaper worst-case configurations and track")
	fmt.Println("relaxed requirements further down the energy curve (Figure 1's J_avg bars)")
}
