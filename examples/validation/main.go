// Model validation: every number the design-time exploration and the
// run-time manager rely on comes from the closed-form task metrics of
// the paper's Table 2. This example fault-injects actual executions —
// sampling raw upsets, hardware masking, information-redundancy
// correction and temporal re-execution event by event — and compares
// the measured behaviour against the analytical models for a design
// point straight out of a real DSE run.
package main

import (
	"fmt"
	"log"

	clr "clrdse"
)

func main() {
	app := clr.JPEGEncoder(clr.DefaultPlatform())
	sys, err := clr.Build(app, clr.Options{
		Seed:     4,
		StageOne: clr.GAParams{PopSize: 32, Generations: 15},
		SkipReD:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	db := sys.Database()
	point := db.Points[db.Len()/2]
	fmt.Printf("injecting design point %d: S=%.1f ms, F=%.5f, J=%.1f mJ\n",
		point.ID, point.MakespanMs, point.Reliability, point.EnergyMJ)

	// A harsh radiation environment makes the error statistics
	// measurable with a modest number of runs.
	env := clr.DefaultEnv()
	env.LambdaSEUPerMs *= 20

	res, err := clr.InjectFaults(point.M, clr.FaultParams{
		Space: sys.Problem.Space,
		Env:   env,
		Runs:  50_000,
		Seed:  5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-5s %-22s %12s %12s %12s %12s\n",
		"task", "mechanisms", "emp ErrProb", "ana ErrProb", "emp AvgExT", "ana AvgExT")
	for _, tk := range res.Tasks {
		mech := fmt.Sprintf("%d struck/%d hw/%d asw/%d retry",
			tk.RawUpsets, tk.MaskedHW, tk.CorrectedASW, tk.Detected)
		fmt.Printf("%-5d %-22s %12.5f %12.5f %12.3f %12.3f\n",
			tk.Task, mech, tk.EmpiricalErrProb, tk.Analytic.ErrProb,
			tk.EmpiricalAvgExTMs, tk.Analytic.AvgExTMs)
	}
	fmt.Printf("\napplication: F empirical %.5f vs analytic %.5f | J empirical %.2f vs analytic %.2f mJ\n",
		res.EmpiricalReliability, res.AnalyticReliability,
		res.EmpiricalEnergyMJ, res.AnalyticEnergyMJ)
	fmt.Printf("worst per-task gaps: ErrProb %.5f, AvgExT %.3f%%\n",
		res.MaxTaskErrProbGap(), 100*res.MaxTaskTimeGapFraction())
	fmt.Printf("makespan: analytic (avg durations) %.2f ms | empirical mean %.2f ms | p95 %.2f ms\n",
		res.AnalyticMakespanMs, res.EmpiricalMeanMakespanMs, res.P95MakespanMs)
	fmt.Println("(the empirical mean sits above the analytic value by Jensen's inequality:")
	fmt.Println(" Table 3's S_app schedules *average* durations, a mild lower bound)")
}
