// Deployment: embedding the run-time manager in a control loop. The
// other examples *simulate* the environment; this one shows the API a
// real system integrator calls — build the database at design time,
// ship it, boot a Manager, and hand it every QoS change as it happens.
// Each decision comes back with the imperative reconfiguration plan
// (bitstream loads first, then binary copies, then the free steps), so
// the platform layer can execute it verbatim.
package main

import (
	"fmt"
	"log"
	"math"

	clr "clrdse"
)

func main() {
	// Design time (on the workstation): explore, prune to the target's
	// storage budget, and persist the database.
	app, err := clr.Generate(clr.GenParams{Seed: 12, NumTasks: 20}, clr.DefaultPlatform())
	if err != nil {
		log.Fatal(err)
	}
	sys, err := clr.Build(app, clr.Options{
		Seed:           6,
		HeuristicSeeds: true,
		StageOne:       clr.GAParams{PopSize: 40, Generations: 25},
	})
	if err != nil {
		log.Fatal(err)
	}
	db, err := clr.Prune(sys.Database(), 16, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shipping database: %d stored points (pruned from %d)\n",
		db.Len(), sys.Database().Len())

	// Deployment (on the target): boot the manager into the initial
	// operating requirements.
	minS, maxS, minF, maxF := math.Inf(1), 0.0, 1.0, 0.0
	for _, p := range db.Points {
		minS = math.Min(minS, p.MakespanMs)
		maxS = math.Max(maxS, p.MakespanMs)
		minF = math.Min(minF, p.Reliability)
		maxF = math.Max(maxF, p.Reliability)
	}
	mgr, err := clr.NewManager(clr.ManagerParams{
		DB:      db,
		Space:   sys.Problem.Space,
		PRC:     0.4,
		Trigger: clr.TriggerOnViolation,
	}, clr.QoSSpec{SMaxMs: maxS, FMin: minF})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted at point %d (S=%.1f ms, F=%.4f, J=%.1f mJ)\n\n",
		mgr.Current(), mgr.CurrentPoint().MakespanMs,
		mgr.CurrentPoint().Reliability, mgr.CurrentPoint().EnergyMJ)

	// The control loop: operating requirements change; the manager
	// decides and hands back the plan.
	changes := []struct {
		why  string
		spec clr.QoSSpec
	}{
		{"entering target area: tighten reliability", clr.QoSSpec{SMaxMs: maxS, FMin: maxF * 0.99995}},
		{"frame-rate burst: tighten deadline", clr.QoSSpec{SMaxMs: (minS + maxS) / 2, FMin: minF}},
		{"battery saver: relax everything", clr.QoSSpec{SMaxMs: maxS, FMin: minF}},
		{"both tight (may be unsatisfiable)", clr.QoSSpec{SMaxMs: minS, FMin: maxF}},
	}
	for _, c := range changes {
		d := mgr.OnQoSChange(c.spec)
		fmt.Printf("%-45s -> %s\n", c.why, d.Describe())
		for _, a := range d.Plan {
			fmt.Printf("    %s\n", a)
		}
	}
}
