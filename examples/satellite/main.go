// Satellite surveillance: the paper's motivating scenario, run through
// the library's scripted-scenario engine. A satellite's
// image-processing pipeline must keep operating perpetually while its
// battery level swings with sunlight exposure and its acceptable error
// rate swings with the terrain under surveillance:
//
//   - eclipse/ocean — no solar harvest, relaxed accuracy;
//   - sunlit/ocean  — full harvest, moderate demands;
//   - sunlit/target — full harvest, the tightest reliability bound.
//
// The run-time manager tracks each regime's QoS process, and the
// battery coupling triggers the paper's "conserve energy at the cost
// of higher application error rate" behaviour whenever the state of
// charge sags below the low watermark. The example contrasts the
// adaptive mission with pinning the worst-case configuration.
package main

import (
	"fmt"
	"log"
	"math"

	clr "clrdse"
)

func main() {
	plat := clr.DefaultPlatform()
	app, err := clr.Generate(clr.GenParams{Seed: 9, NumTasks: 30}, plat)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := clr.Build(app, clr.Options{
		Seed:     2,
		FMin:     0.85,
		StageOne: clr.GAParams{PopSize: 48, Generations: 30},
	})
	if err != nil {
		log.Fatal(err)
	}
	db := sys.Database()
	fmt.Printf("mission database: %d stored configurations\n", db.Len())

	// Derive the mission regimes from the database's QoS envelope.
	minS, maxS := math.Inf(1), 0.0
	minF, maxF := 1.0, 0.0
	minJ := math.Inf(1)
	for _, p := range db.Points {
		minS = math.Min(minS, p.MakespanMs)
		maxS = math.Max(maxS, p.MakespanMs)
		minF = math.Min(minF, p.Reliability)
		maxF = math.Max(maxF, p.Reliability)
		minJ = math.Min(minJ, p.EnergyMJ)
	}
	spec := func(sMax, fMin float64) clr.QoSModel {
		return clr.QoSModel{
			MeanS: sMax, StdS: sMax / 50, MeanF: fMin, StdF: 0.0005, Persist: 0.5,
			LoS: minS, HiS: maxS * 1.05, LoF: math.Max(0, minF-0.01), HiF: maxF,
		}
	}
	orbit := clr.Scenario{
		Repeat: true,
		Regimes: []clr.Regime{
			{Name: "eclipse/ocean", DurationCycles: 40_000, QoS: spec(maxS, minF), HarvestMJPerCycle: 0},
			{Name: "sunlit/ocean", DurationCycles: 30_000, QoS: spec((minS+maxS)/2, (minF+maxF)/2), HarvestMJPerCycle: 2.8 * minJ},
			{Name: "sunlit/target", DurationCycles: 30_000, QoS: spec(maxS, maxF*0.9999), HarvestMJPerCycle: 2.8 * minJ},
		},
	}
	battery := &clr.Battery{
		CapacityMJ: minJ * 80_000, // most of an orbit of frugal processing
		RelaxF:     0.01,
	}

	params := clr.ScenarioParams{
		Params:   sys.RuntimeParams(db, 0.5, 17),
		Scenario: orbit,
		Battery:  battery,
	}
	params.Cycles = 1_000_000 // ten orbits
	params.Trigger = clr.TriggerOnViolation

	m, err := clr.SimulateScenario(params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-15s %12s %10s %10s %12s\n", "regime", "cycles", "events", "reconfigs", "J/cycle (mJ)")
	for _, rm := range m.PerRegime {
		fmt.Printf("%-15s %12.0f %10d %10d %12.2f\n",
			rm.Name, rm.Cycles, rm.Events, rm.Reconfigs, rm.EnergyMJ/rm.Cycles)
	}
	fmt.Printf("\nmission totals: %d events, %d reconfigs, avg dRC %.4f ms, avg energy %.2f mJ/cycle\n",
		m.Events, m.Reconfigs, m.AvgDRC, m.AvgEnergyMJ)
	fmt.Printf("battery: min SoC %.0f%%, final SoC %.0f%%, %d low-power events, %.0f unpowered cycles\n",
		100*m.MinSoC, 100*m.FinalSoC, m.LowPowerEvents, m.DepletedCycles)

	// Baseline: pin the worst-case configuration (meets the tightest
	// regime at all times) and never adapt.
	pinned := math.Inf(1)
	for _, p := range db.Points {
		if p.Feasible(maxS, maxF*0.9999) && p.EnergyMJ < pinned {
			pinned = p.EnergyMJ
		}
	}
	if math.IsInf(pinned, 1) {
		log.Fatal("no stored point satisfies the tightest regime")
	}
	fmt.Printf("\nfixed worst-case configuration: %.2f mJ/cycle -> dynamic CLR saves %.1f%%\n",
		pinned, 100*(pinned-m.AvgEnergyMJ)/pinned)
}
