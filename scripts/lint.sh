#!/usr/bin/env sh
# lint.sh — run the full static-analysis gate locally, in the same
# order CI's lint job does:
#
#   1. go vet               (stock correctness checks)
#   2. staticcheck          (if installed; CI installs it pinned)
#   3. govulncheck          (if installed; CI installs it pinned;
#                            skipped in -fast mode)
#   4. clrlint              (the repo's own determinism/concurrency
#                            contracts, ten analyzers — see DESIGN.md
#                            §7 and §13; warm runs replay from the
#                            per-package fact cache)
#
# Usage: scripts/lint.sh [-fast]
#
#   -fast   skip govulncheck (it re-scans the vuln DB every run and
#           dominates wall-clock; the inner loop wants vet+clrlint)
#
# staticcheck and govulncheck are skipped with a notice when the
# binary is absent, so the script is useful in offline containers;
# clrlint builds from ./cmd/clrlint and always runs. Any failing step
# fails the script.
set -eu
cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
	case "$arg" in
	-fast) fast=1 ;;
	*)
		echo "usage: scripts/lint.sh [-fast]" >&2
		exit 2
		;;
	esac
done

echo "==> go vet"
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
	echo "==> staticcheck"
	staticcheck ./...
else
	echo "==> staticcheck not installed; skipping (CI runs it pinned)"
fi

if [ "$fast" = 1 ]; then
	echo "==> govulncheck skipped (-fast)"
elif command -v govulncheck >/dev/null 2>&1; then
	echo "==> govulncheck"
	govulncheck ./...
else
	echo "==> govulncheck not installed; skipping (CI runs it pinned)"
fi

echo "==> clrlint"
go run ./cmd/clrlint ./...

echo "lint: all gates passed"
