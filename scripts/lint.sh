#!/usr/bin/env sh
# lint.sh — run the full static-analysis gate locally, in the same
# order CI's lint job does:
#
#   1. go vet               (stock correctness checks)
#   2. staticcheck          (if installed; CI installs it pinned)
#   3. govulncheck          (if installed; CI installs it pinned)
#   4. clrlint              (the repo's own determinism/concurrency
#                            contracts: detrand, maporder, lockheld,
#                            ctxflow, metricname — see DESIGN.md §7)
#
# staticcheck and govulncheck are skipped with a notice when the
# binary is absent, so the script is useful in offline containers;
# clrlint builds from ./cmd/clrlint and always runs. Any failing step
# fails the script.
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
	echo "==> staticcheck"
	staticcheck ./...
else
	echo "==> staticcheck not installed; skipping (CI runs it pinned)"
fi

if command -v govulncheck >/dev/null 2>&1; then
	echo "==> govulncheck"
	govulncheck ./...
else
	echo "==> govulncheck not installed; skipping (CI runs it pinned)"
fi

echo "==> clrlint"
go run ./cmd/clrlint ./...

echo "lint: all gates passed"
