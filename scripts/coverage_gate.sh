#!/usr/bin/env sh
# coverage_gate.sh — run the test suite with coverage and ratchet the
# total against the committed baseline.
#
# Usage:
#   scripts/coverage_gate.sh            # compare against the baseline
#   scripts/coverage_gate.sh --update   # rewrite the baseline instead
#
# The baseline lives in scripts/coverage_base.txt (a single number,
# percent). The gate fails if the measured total statement coverage
# drops more than 1 point below it — enough slack that incidental
# refactors pass, tight enough that a PR cannot silently land a large
# untested subsystem. PRs that raise coverage should re-run with
# --update and commit the new baseline.
set -eu
cd "$(dirname "$0")/.."

base_file="scripts/coverage_base.txt"
profile="${COVER_PROFILE:-/tmp/clrdse-cover.out}"

go test -short -count=1 -coverprofile="$profile" ./... >/dev/null
total=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
echo "total coverage: ${total}%"

if [ "${1:-}" = "--update" ]; then
	printf '%s\n' "$total" >"$base_file"
	echo "baseline updated: $base_file = ${total}%"
	exit 0
fi

if [ ! -e "$base_file" ]; then
	echo "no baseline at $base_file; run scripts/coverage_gate.sh --update" >&2
	exit 1
fi
base=$(cat "$base_file")
echo "baseline:       ${base}%"

awk -v total="$total" -v base="$base" 'BEGIN {
	if (total + 1.0 < base) {
		printf "FAIL: coverage %.1f%% is more than 1 point below the %.1f%% baseline\n", total, base
		exit 1
	}
	if (total > base) {
		printf "coverage improved (%.1f%% > %.1f%%); consider scripts/coverage_gate.sh --update\n", total, base
	} else {
		printf "OK: coverage within 1 point of the baseline\n"
	}
}'
