#!/usr/bin/env sh
# bench.sh — run the repo benchmarks and record machine-readable
# results for regression tracking.
#
# Usage:
#   scripts/bench.sh                 # hot-path set, label "run"
#   scripts/bench.sh 'BenchmarkReD$' optimized
#
# Runs `go test -run=NONE -bench=<regex> -benchmem -count=5 .` and
# writes BENCH_<n>.json (first unused n) in the repo root: one run
# object with the given label and, per benchmark, the median ns/op,
# B/op and allocs/op across the five samples. The schema matches the
# committed BENCH_1.json, which pairs the pre-optimisation baseline
# with the first optimised run.
set -eu
cd "$(dirname "$0")/.."

pat="${1:-BenchmarkDRC\$|BenchmarkDecide\$|BenchmarkReD\$|BenchmarkFleetDecisionThroughput\$|BenchmarkFleetDecisionThroughputLargeDB\$}"
label="${2:-run}"

out=$(go test -run=NONE -bench="$pat" -benchmem -count=5 .)
printf '%s\n' "$out"

n=1
while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
file="BENCH_${n}.json"

printf '%s\n' "$out" | awk -v label="$label" '
function median(s,    a, n, i, j, t) {
	n = split(s, a, " ")
	for (i = 1; i < n; i++)
		for (j = i + 1; j <= n; j++)
			if (a[j] + 0 < a[i] + 0) { t = a[i]; a[i] = a[j]; a[j] = t }
	return a[int((n + 1) / 2)]
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
	if (!(name in seen)) { order[++k] = name; seen[name] = 1 }
	ns[name] = ns[name] " " $3
	bo[name] = bo[name] " " $5
	ao[name] = ao[name] " " $7
}
END {
	printf "{\n  \"runs\": [\n    {\n      \"label\": \"%s\",\n      \"benchmarks\": [\n", label
	for (i = 1; i <= k; i++) {
		nm = order[i]
		printf "        {\"name\": \"%s\", \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			nm, median(ns[nm]), median(bo[nm]), median(ao[nm]), (i < k ? "," : "")
	}
	printf "      ]\n    }\n  ]\n}\n"
}' >"$file"

echo "wrote $file"
