#!/usr/bin/env sh
# bench.sh — run the repo benchmarks and record machine-readable
# results for regression tracking.
#
# Usage:
#   scripts/bench.sh                          # hot-path set, label "run"
#   scripts/bench.sh 'BenchmarkReD$' optimized
#   scripts/bench.sh 'BenchmarkDecide$' ci-smoke 15   # gate at 15%
#
# Runs `go test -run=NONE -bench=<regex> -benchmem -count=5 .` and
# writes BENCH_<n>.json (first unused n) in the repo root: one run
# object with the given label and, per benchmark, the median ns/op,
# B/op and allocs/op across the five samples. The schema matches the
# committed BENCH_1.json, which pairs the pre-optimisation baseline
# with the first optimised run.
#
# After writing, the new medians are diffed against the latest
# previously committed BENCH_<n>.json (the last run object in it):
# any benchmark whose median ns/op regressed by more than 20% prints a
# WARNING, and B/op and allocs/op shifts beyond the same threshold
# print warnings of their own (allocation deltas are deterministic, so
# they catch a hot-path allocation creeping back even when the timing
# noise hides it). Warnings alone do not fail the script — benchmarks
# on shared CI runners are noisy — but they make regressions visible
# in the log.
#
# A third argument turns the diff into a regression GATE: any
# benchmark whose median ns/op regressed by more than that percentage
# fails the script with exit 1 (CI uses 15). The gate threshold should
# sit above the runner noise floor but below "someone put an
# allocation back on the hot path". In gate mode, a benchmark present
# in the baseline but absent from this run also fails — provided the
# current -bench pattern selects its name — so deleting or renaming a
# gated benchmark cannot silently shrink the gate set.
set -eu
cd "$(dirname "$0")/.."

pat="${1:-BenchmarkDRC\$|BenchmarkDecide\$|BenchmarkReD\$|BenchmarkFleetDecisionThroughput\$|BenchmarkFleetDecisionThroughputLargeDB\$|BenchmarkFleetBatchThroughput\$|BenchmarkShadowDecide\$}"
label="${2:-run}"
gate="${3:-0}" # max tolerated ns/op regression in percent; 0 = warn only

out=$(go test -run=NONE -bench="$pat" -benchmem -count=5 .)
printf '%s\n' "$out"

n=1
while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
file="BENCH_${n}.json"

printf '%s\n' "$out" | awk -v label="$label" '
function median(s,    a, n, i, j, t) {
	n = split(s, a, " ")
	for (i = 1; i < n; i++)
		for (j = i + 1; j <= n; j++)
			if (a[j] + 0 < a[i] + 0) { t = a[i]; a[i] = a[j]; a[j] = t }
	return a[int((n + 1) / 2)]
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
	if (!(name in seen)) { order[++k] = name; seen[name] = 1 }
	# Locate columns by their unit, not position: benchmarks that
	# b.ReportMetric custom units (e.g. "decisions") shift the fields.
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns[name] = ns[name] " " $i
		else if ($(i + 1) == "B/op") bo[name] = bo[name] " " $i
		else if ($(i + 1) == "allocs/op") ao[name] = ao[name] " " $i
	}
}
END {
	printf "{\n  \"runs\": [\n    {\n      \"label\": \"%s\",\n      \"benchmarks\": [\n", label
	for (i = 1; i <= k; i++) {
		nm = order[i]
		printf "        {\"name\": \"%s\", \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			nm, median(ns[nm]), median(bo[nm]), median(ao[nm]), (i < k ? "," : "")
	}
	printf "      ]\n    }\n  ]\n}\n"
}' >"$file"

echo "wrote $file"

# Diff the new medians against the latest previous results file: the
# last run object of BENCH_<n-1>.json (later runs supersede earlier
# ones in the same file).
prev=$((n - 1))
if [ "$prev" -ge 1 ] && [ -e "BENCH_${prev}.json" ]; then
	echo "comparing against BENCH_${prev}.json ..."
	# Extract "name ns_per_op b_per_op allocs_per_op" rows; for
	# duplicates (one per run object) the last occurrence wins.
	pairs() {
		tr ',' '\n' <"$1" | tr -d ' "{}[]' | awk -F: '
			$1 == "name" { nm = $2 }
			$1 == "ns_per_op" && nm != "" { ns[nm] = $2 }
			$1 == "b_per_op" && nm != "" { bo[nm] = $2 }
			$1 == "allocs_per_op" && nm != "" { ao[nm] = $2 }
			END { for (nm in ns) print nm, ns[nm], bo[nm], ao[nm] }'
	}
	pairs "BENCH_${prev}.json" >/tmp/bench_prev.$$
	pairs "$file" >/tmp/bench_new.$$
	status=0
	awk -v prevfile="BENCH_${prev}.json" -v gate="$gate" -v pat="$pat" '
		NR == FNR { prev[$1] = $2; pbo[$1] = $3; pao[$1] = $4; next }
		{ cur[$1] = 1 }
		($1 in prev) && prev[$1] > 0 {
			ratio = $2 / prev[$1]
			printf "  %-45s %12.0f -> %12.0f ns/op (%+.1f%%)\n", $1, prev[$1], $2, (ratio - 1) * 100
			if (gate + 0 > 0 && ratio > 1 + gate / 100) {
				printf "FAIL: %s regressed %.1f%% vs %s (%.0f -> %.0f ns/op, gate %s%%)\n", \
					$1, (ratio - 1) * 100, prevfile, prev[$1], $2, gate
				bad = 1
			} else if (ratio > 1.2) {
				printf "WARNING: %s regressed %.1f%% vs %s (%.0f -> %.0f ns/op)\n", \
					$1, (ratio - 1) * 100, prevfile, prev[$1], $2
			}
			# B/op and allocs/op shifts are warn-only, never gated: they
			# are deterministic, so any change is worth a line in the log,
			# but a deliberate memory/time trade must not fail CI.
			if (pbo[$1] > 0 && $3 / pbo[$1] > 1.2)
				printf "WARNING: %s B/op grew %.1f%% vs %s (%.0f -> %.0f B/op)\n", \
					$1, ($3 / pbo[$1] - 1) * 100, prevfile, pbo[$1], $3
			if (pao[$1] > 0 && $4 / pao[$1] > 1.2)
				printf "WARNING: %s allocs/op grew %.1f%% vs %s (%.0f -> %.0f allocs/op)\n", \
					$1, ($4 / pao[$1] - 1) * 100, prevfile, pao[$1], $4
		}
		END {
			# A benchmark that was in the baseline but produced no samples
			# this run is the worst kind of regression: a deleted or renamed
			# benchmark silently shrinks the gate set, and every later run
			# passes vacuously. Only names the current -bench pattern selects
			# are expected, though — the baseline may hold a wider set than
			# this invocation runs, so match each root segment (the name up
			# to the first "/", covering sub-benchmarks) against the pattern
			# before demanding it.
			for (nm in prev) {
				root = nm
				sub(/\/.*/, "", root)
				if (root !~ pat) continue
				if (!(nm in cur)) {
					if (gate + 0 > 0) {
						printf "FAIL: %s present in %s but missing from this run (deleted or renamed?)\n", nm, prevfile
						bad = 1
					} else {
						printf "WARNING: %s present in %s but missing from this run\n", nm, prevfile
					}
				}
			}
			exit bad
		}' /tmp/bench_prev.$$ /tmp/bench_new.$$ || status=$?
	rm -f /tmp/bench_prev.$$ /tmp/bench_new.$$
	if [ "$status" -ne 0 ]; then
		echo "bench regression gate failed (threshold ${gate}%)"
		rm -f "$file" # a gated run is a probe, not a new baseline
		exit 1
	fi
fi
