module clrdse

go 1.24
