module clrdse

go 1.22
