package clr_test

import (
	"fmt"

	clr "clrdse"
)

// The canonical flow: design-time exploration followed by run-time
// adaptation on the JPEG encoder of the paper's Figure 2b.
func Example() {
	app := clr.JPEGEncoder(clr.DefaultPlatform())
	sys, err := clr.Build(app, clr.Options{
		Seed:     1,
		StageOne: clr.GAParams{PopSize: 24, Generations: 10},
		SkipReD:  true,
	})
	if err != nil {
		panic(err)
	}
	p := sys.RuntimeParams(sys.Database(), 0.5, 42)
	p.Cycles = 10_000
	m, err := clr.Simulate(p)
	if err != nil {
		panic(err)
	}
	fmt.Println("stored points  >", sys.Database().Len() > 0)
	fmt.Println("events         >", m.Events > 0)
	fmt.Println("energy positive>", m.AvgEnergyMJ > 0)
	// Output:
	// stored points  > true
	// events         > true
	// energy positive> true
}

// Generating a synthetic application the way the paper's evaluation
// does (TGFF-style, 10-100 tasks).
func ExampleGenerate() {
	app, err := clr.Generate(clr.GenParams{Seed: 7, NumTasks: 25}, clr.DefaultPlatform())
	if err != nil {
		panic(err)
	}
	fmt.Println(app.NumTasks(), "tasks, DAG valid:", app.Validate() == nil)
	// Output: 25 tasks, DAG valid: true
}

// The three reliability spaces of the paper's Figure 1.
func ExampleDefaultCatalogue() {
	fmt.Println("HW-Only:", clr.HWOnlyCatalogue().NumConfigs(), "configs per task")
	fmt.Println("CLR1:   ", clr.CoarseCatalogue().NumConfigs(), "configs per task")
	fmt.Println("CLR2:   ", clr.DefaultCatalogue().NumConfigs(), "configs per task")
	// Output:
	// HW-Only: 3 configs per task
	// CLR1:    8 configs per task
	// CLR2:    48 configs per task
}

// Pricing a reconfiguration between two stored configurations
// (Section 3.5's dRC): re-ordering and CLR changes are free, moving
// binaries and bitstreams is not.
func ExampleSpace_DRC() {
	plat := clr.DefaultPlatform()
	app := clr.JPEGEncoder(plat)
	space := &clr.Space{Graph: app, Platform: plat, Catalogue: clr.DefaultCatalogue()}
	a := space.HeuristicMinEnergy(clr.DefaultEnv())
	b := a.Clone()
	for i := range b.Genes {
		b.Genes[i].Prio++ // re-ordering only
	}
	fmt.Println("reorder-only dRC:", space.DRC(a, b).Total())
	// Output: reorder-only dRC: 0
}

// Embedding the run-time manager in a control loop: every QoS change
// yields a decision with a concrete reconfiguration plan.
func ExampleNewManager() {
	app := clr.JPEGEncoder(clr.DefaultPlatform())
	sys, err := clr.Build(app, clr.Options{
		Seed:     2,
		StageOne: clr.GAParams{PopSize: 20, Generations: 8},
		SkipReD:  true,
	})
	if err != nil {
		panic(err)
	}
	db := sys.Database()
	q := clr.ModelFromDatabase(db)
	mgr, err := clr.NewManager(clr.ManagerParams{
		DB:      db,
		Space:   sys.Problem.Space,
		PRC:     0.5,
		Trigger: clr.TriggerOnViolation,
	}, clr.QoSSpec{SMaxMs: q.HiS, FMin: q.LoF})
	if err != nil {
		panic(err)
	}
	d := mgr.OnQoSChange(clr.QoSSpec{SMaxMs: q.HiS, FMin: q.LoF})
	fmt.Println("stayed put on an unchanged loose spec:", !d.Reconfigured)
	// Output: stayed put on an unchanged loose spec: true
}

// Scripting a mission profile with regimes and a battery.
func ExampleSimulateScenario() {
	app := clr.JPEGEncoder(clr.DefaultPlatform())
	sys, err := clr.Build(app, clr.Options{
		Seed:     3,
		StageOne: clr.GAParams{PopSize: 20, Generations: 8},
		SkipReD:  true,
	})
	if err != nil {
		panic(err)
	}
	db := sys.Database()
	q := clr.ModelFromDatabase(db)
	p := clr.ScenarioParams{
		Params: sys.RuntimeParams(db, 0.5, 4),
		Scenario: clr.Scenario{
			Repeat: true,
			Regimes: []clr.Regime{
				{Name: "day", DurationCycles: 3000, QoS: q, HarvestMJPerCycle: 500},
				{Name: "night", DurationCycles: 3000, QoS: q},
			},
		},
	}
	p.Cycles = 12_000
	m, err := clr.SimulateScenario(p)
	if err != nil {
		panic(err)
	}
	fmt.Println("regimes tracked:", len(m.PerRegime))
	fmt.Println("events simulated:", m.Events > 0)
	// Output:
	// regimes tracked: 2
	// events simulated: true
}
