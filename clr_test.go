package clr

import (
	"strings"
	"testing"
)

// The facade test exercises the full public flow end to end: build an
// application, run the hybrid design-time exploration, then simulate
// run-time adaptation with and without an agent.
func TestPublicAPIEndToEnd(t *testing.T) {
	app := JPEGEncoder(DefaultPlatform())
	sys, err := Build(app, Options{
		Seed:     7,
		StageOne: GAParams{PopSize: 24, Generations: 10},
		ReD:      ReDParams{GA: GAParams{PopSize: 16, Generations: 6}, MaxExtraPerSeed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := sys.Database()
	if db.Len() == 0 {
		t.Fatal("empty database")
	}

	p := sys.RuntimeParams(db, 0.5, 11)
	p.Cycles = 20_000
	m, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.Events == 0 || m.AvgEnergyMJ <= 0 {
		t.Fatalf("degenerate metrics: %+v", m)
	}

	ag, err := sys.PretrainedAgent(db, 0.8, 0.5, 10_000, 13)
	if err != nil {
		t.Fatal(err)
	}
	p.Agent = ag
	if _, err := Simulate(p); err != nil {
		t.Fatal(err)
	}
}

func TestPublicGenerators(t *testing.T) {
	plat := DefaultPlatform()
	g, err := Generate(GenParams{Seed: 3, NumTasks: 15}, plat)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 15 {
		t.Errorf("tasks = %d", g.NumTasks())
	}
	if JPEGEncoder(plat).NumTasks() != 11 {
		t.Error("JPEG graph should have 11 tasks")
	}
	reduced, err := RemovePE(plat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reduced.NumPEs() != plat.NumPEs()-1 {
		t.Error("RemovePE wrong size")
	}
}

func TestPublicCatalogues(t *testing.T) {
	if DefaultCatalogue().NumConfigs() <= CoarseCatalogue().NumConfigs() {
		t.Error("CLR2 should be finer than CLR1")
	}
	if HWOnlyCatalogue().NumConfigs() >= CoarseCatalogue().NumConfigs() {
		t.Error("HW-only should be the smallest space")
	}
	if DefaultEnv().LambdaSEUPerMs <= 0 {
		t.Error("default env has no fault rate")
	}
}

func TestPublicLab(t *testing.T) {
	if QuickScale().Name != "quick" || FullScale().Name != "full" {
		t.Error("scale names changed")
	}
	s := QuickScale()
	s.TaskSizes = []int{10}
	lab := NewLab(s)
	tbl, err := lab.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestPublicScenarioAndFaultInjection(t *testing.T) {
	app := JPEGEncoder(DefaultPlatform())
	sys, err := Build(app, Options{
		Seed:           21,
		HeuristicSeeds: true,
		StageOne:       GAParams{PopSize: 20, Generations: 8},
		SkipReD:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := sys.Database()
	q := ModelFromDatabase(db)
	sc := Scenario{
		Repeat: true,
		Regimes: []Regime{
			{Name: "a", DurationCycles: 2000, QoS: q, HarvestMJPerCycle: 1000},
			{Name: "b", DurationCycles: 2000, QoS: q},
		},
	}
	p := ScenarioParams{Params: sys.RuntimeParams(db, 0.5, 22), Scenario: sc}
	p.Cycles = 20_000
	m, err := SimulateScenario(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.Events == 0 || len(m.PerRegime) != 2 {
		t.Fatalf("scenario metrics degenerate: %+v", m.Metrics)
	}

	fr, err := InjectFaults(db.Points[0].M, FaultParams{
		Space: sys.Problem.Space, Runs: 2000, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Runs != 2000 || len(fr.Tasks) != app.NumTasks() {
		t.Fatalf("fault result degenerate: %d runs, %d tasks", fr.Runs, len(fr.Tasks))
	}
}

func TestPublicTGFFAndExtendedCatalogue(t *testing.T) {
	src := "@TASK_GRAPH 0 {\nTASK a TYPE 0\nTASK b TYPE 1\nARC x FROM a TO b TYPE 0\n}\n"
	g, err := ParseTGFF(strings.NewReader(src), DefaultPlatform(), TGFFOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 2 {
		t.Errorf("tgff tasks = %d", g.NumTasks())
	}
	if ExtendedCatalogue().NumConfigs() <= DefaultCatalogue().NumConfigs() {
		t.Error("extended catalogue should be larger than default")
	}
}

func TestPublicLifetimeAndPlatforms(t *testing.T) {
	plat := LargePlatform()
	if plat.NumPEs() <= DefaultPlatform().NumPEs() {
		t.Error("large platform should have more PEs")
	}
	app, err := Generate(GenParams{Seed: 31, NumTasks: 15}, plat)
	if err != nil {
		t.Fatal(err)
	}
	space := &Space{Graph: app, Platform: plat, Catalogue: DefaultCatalogue()}
	usage := []LifetimeUsage{{M: space.HeuristicMinEnergy(DefaultEnv()), Weight: 1}}
	etas, err := Wear(usage, space, DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(etas) != plat.NumPEs() {
		t.Errorf("etas = %d", len(etas))
	}
	res, err := SimulateLifetime(usage, LifetimeParams{Space: space, Samples: 200, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanMissionLossMs <= 0 {
		t.Error("no lifetime estimate")
	}
}

func TestPublicDSEStagesAndReplay(t *testing.T) {
	app, err := Generate(GenParams{Seed: 33, NumTasks: 12}, DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	prob := &Problem{
		Space:  &Space{Graph: app, Platform: DefaultPlatform(), Catalogue: DefaultCatalogue()},
		Env:    DefaultEnv(),
		SMaxMs: app.PeriodMs,
		FMin:   0.9,
	}
	base, err := RunBase(prob, GAParams{PopSize: 16, Generations: 6, Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	red, err := RunReD(prob, base, ReDParams{GA: GAParams{PopSize: 12, Generations: 4, Seed: 35}, MaxExtraPerSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if red.Len() < base.Len() {
		t.Error("ReD lost points")
	}
	pruned, err := Prune(red, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Len() > 5 {
		t.Error("prune ignored budget")
	}

	specs, err := ReadSpecsCSV(strings.NewReader("100,0.9\n120,0.92\n"))
	if err != nil {
		t.Fatal(err)
	}
	p := RuntimeParams{DB: pruned, Space: prob.Space, PRC: 1, Cycles: 5000, Seed: 36, Replay: specs}
	if _, err := Simulate(p); err != nil {
		t.Fatal(err)
	}
}
