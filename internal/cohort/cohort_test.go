package cohort

import (
	"testing"

	"clrdse/internal/dse"
	"clrdse/internal/evolve"
	"clrdse/internal/obs"
	"clrdse/internal/runtime"
)

func entry(device string, seq uint64, to int, drc, s, f float64) obs.Entry {
	return obs.Entry{Device: device, Seq: seq, To: to, DRCMs: drc, SpecSMaxMs: s, SpecFMin: f}
}

func testDB(n int) *dse.Database {
	db := &dse.Database{Name: "t"}
	for i := 0; i < n; i++ {
		db.Points = append(db.Points, &dse.DesignPoint{ID: i, EnergyMJ: float64(i+1) * 1.5})
	}
	return db
}

func TestQoSFingerprint(t *testing.T) {
	a := entry("d0", 1, 0, 0, 3.5, 0.9)
	b := entry("d0", 2, 1, 2, 4.0, 0.95)
	c := entry("d1", 1, 0, 0, 3.5, 0.9) // same cell as a, other device

	cases := []struct {
		name    string
		entries []obs.Entry
		same    []obs.Entry // expected to fingerprint identically
		differ  bool        // when set, `same` must differ instead
	}{
		{
			name:    "order independent",
			entries: []obs.Entry{a, b},
			same:    []obs.Entry{b, a},
		},
		{
			name:    "counts excluded: repeats of a cell do not move the key",
			entries: []obs.Entry{a, b},
			same:    []obs.Entry{a, a, c, b},
		},
		{
			name:    "degraded entries excluded",
			entries: []obs.Entry{a, b},
			same: append([]obs.Entry{a, b},
				obs.Entry{Device: "d2", Degraded: true, SpecSMaxMs: 9.9, SpecFMin: 0.1}),
		},
		{
			name:    "pre-spec entries excluded",
			entries: []obs.Entry{a, b},
			same:    append([]obs.Entry{a, b}, entry("d2", 1, 0, 0, 0, 0)),
		},
		{
			name:    "sub-quantum jitter lands in the same cell",
			entries: []obs.Entry{a},
			same:    []obs.Entry{entry("d0", 1, 0, 0, 3.5+evolve.SpecQuantum/4, 0.9-evolve.SpecQuantum/4)},
		},
		{
			name:    "a full quantum apart is a different regime",
			entries: []obs.Entry{a},
			same:    []obs.Entry{entry("d0", 1, 0, 0, 3.5+evolve.SpecQuantum, 0.9)},
			differ:  true,
		},
		{
			name:    "new cell moves the key",
			entries: []obs.Entry{a},
			same:    []obs.Entry{a, b},
			differ:  true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, want := QoSFingerprint(tc.same), QoSFingerprint(tc.entries)
			if tc.differ && got == want {
				t.Error("fingerprints equal, want different")
			}
			if !tc.differ && got != want {
				t.Errorf("fingerprints differ: %016x vs %016x", got, want)
			}
		})
	}
	if QoSFingerprint(nil) != QoSFingerprint([]obs.Entry{{Degraded: true, SpecSMaxMs: 1, SpecFMin: 1}}) {
		t.Error("empty support sets fingerprint differently")
	}
}

func TestAggregateOrderIndependent(t *testing.T) {
	db := testDB(4)
	es := []obs.Entry{
		entry("b", 1, 1, 2.0, 3.5, 0.9),
		entry("a", 1, 0, 0.0, 3.5, 0.9),
		entry("a", 2, 2, 4.0, 4.0, 0.95),
		entry("b", 2, 1, 0.0, 3.5, 0.9),
		entry("a", 3, 2, 0.0, 4.0, 0.95),
	}
	p := AggregateParams{DB: db, DBFingerprint: 7, Gamma: 0.8}
	ref, err := Aggregate(p, es)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Devices != 2 || ref.Events != 5 {
		t.Fatalf("devices=%d events=%d, want 2,5", ref.Devices, ref.Events)
	}
	// Any permutation of the journal snapshot — shard interleaving,
	// time-sorted, reversed — folds to the identical table.
	perms := [][]obs.Entry{
		{es[4], es[3], es[2], es[1], es[0]},
		{es[1], es[0], es[3], es[2], es[4]},
		{es[2], es[4], es[0], es[1], es[3]},
	}
	want := ref.Fingerprint()
	for i, perm := range perms {
		got, err := Aggregate(p, perm)
		if err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint() != want {
			t.Errorf("permutation %d changed the aggregate: %016x vs %016x", i, got.Fingerprint(), want)
		}
	}
}

func TestAggregateFiltersIneligible(t *testing.T) {
	db := testDB(3)
	db.Version = 2
	es := []obs.Entry{
		func() obs.Entry { e := entry("a", 1, 1, 0, 3, 0.9); e.DBVersion = 2; return e }(),
		func() obs.Entry { e := entry("a", 2, 1, 0, 3, 0.9); e.DBVersion = 1; return e }(), // other version
		func() obs.Entry { e := entry("b", 1, 0, 0, 3, 0.9); e.DBVersion = 2; e.Degraded = true; return e }(),
		func() obs.Entry { e := entry("c", 1, 99, 0, 3, 0.9); e.DBVersion = 2; return e }(), // out of range
	}
	tab, err := Aggregate(AggregateParams{DB: db, Gamma: 0.5}, es)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Devices != 1 || tab.Events != 1 {
		t.Errorf("devices=%d events=%d, want 1,1 (only the matching real decision)", tab.Devices, tab.Events)
	}
	if got := EligibleEvents(es, 2, db.Len()); got != 1 {
		t.Errorf("EligibleEvents = %d, want 1", got)
	}
	if _, err := Aggregate(AggregateParams{DB: db, Gamma: 0.5}, nil); err != ErrNoEvidence {
		t.Errorf("empty journal: err = %v, want ErrNoEvidence", err)
	}
}

func TestAggregateMatchesSingleDeviceReplay(t *testing.T) {
	// With one device, the aggregate must equal that device's own
	// replayed agent: the merge is a weighted mean over one term.
	db := testDB(3)
	es := []obs.Entry{
		entry("solo", 1, 0, 0, 3, 0.9),
		entry("solo", 2, 1, 2.5, 3, 0.9),
		entry("solo", 3, 1, 0, 3, 0.9),
		entry("solo", 4, 2, 1.0, 4, 0.95),
	}
	tab, err := Aggregate(AggregateParams{DB: db, Gamma: 0.7}, es)
	if err != nil {
		t.Fatal(err)
	}
	ag := runtime.NewAgent(db.Len(), 0.7)
	for i, e := range es {
		if err := ag.Observe(e.To, -db.Points[e.To].EnergyMJ, e.DRCMs, float64(i+1)*100); err != nil {
			t.Fatal(err)
		}
	}
	ag.Flush()
	for s := 0; s < db.Len(); s++ {
		if tab.VR[s] != ag.VR[s] || tab.VD[s] != ag.VD[s] || tab.Visits[s] != ag.Visits(s) {
			t.Fatalf("state %d: aggregate (%v,%v,%d) vs direct replay (%v,%v,%d)",
				s, tab.VR[s], tab.VD[s], tab.Visits[s], ag.VR[s], ag.VD[s], ag.Visits(s))
		}
	}
}

func TestAggregateMergesAcrossDevices(t *testing.T) {
	// Two devices visiting the same state contribute a visit-weighted
	// mean; a state only one device visited carries that device's
	// value unchanged.
	db := testDB(2)
	es := []obs.Entry{
		entry("a", 1, 0, 0, 3, 0.9),
		entry("b", 1, 0, 0, 3, 0.9),
		entry("b", 2, 1, 1.0, 4, 0.95),
	}
	tab, err := Aggregate(AggregateParams{DB: db, Gamma: 0}, es)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Visits[0] != 2 || tab.Visits[1] != 1 {
		t.Fatalf("visits = %v, want [2 1]", tab.Visits)
	}
	// Gamma 0, so each visit's return is its immediate reward: both
	// devices saw VR[0] = -Energy[0], and only b saw state 1.
	if tab.VR[0] != -db.Points[0].EnergyMJ {
		t.Errorf("VR[0] = %v, want %v", tab.VR[0], -db.Points[0].EnergyMJ)
	}
	if tab.VR[1] != -db.Points[1].EnergyMJ || tab.VD[1] != 1.0 {
		t.Errorf("state 1 = (%v,%v), want (%v,1)", tab.VR[1], tab.VD[1], -db.Points[1].EnergyMJ)
	}
	if tab.Gamma != 0 || tab.DBVersion != db.Version {
		t.Error("table lost its bindings")
	}
}

func TestAggregateRejectsBadParams(t *testing.T) {
	if _, err := Aggregate(AggregateParams{DB: nil, Gamma: 0.5}, nil); err == nil {
		t.Error("accepted nil database")
	}
	if _, err := Aggregate(AggregateParams{DB: testDB(2), Gamma: 1.0}, nil); err == nil {
		t.Error("accepted gamma >= 1")
	}
}
