package cohort

// The background cohort-learning loop. A Worker drives one database
// cohort through the publish cycle:
//
//	window filling --boundary--> aggregate --changed+agree--> publish
//	                                  |
//	                                  +------unchanged-------> wait
//
// Each Step is one publish attempt: it counts the cohort's eligible
// journaled decisions against the deterministic epoch schedule and,
// once the next epoch's boundary is crossed, folds the journal into an
// aggregated value table and publishes it as the next table version.
// Publishing itself lives in the fleet registry; the worker only
// decides when to invoke it — the same division of labour as
// evolve.Worker, whose Agreement/Reconcile cluster hooks this worker
// mirrors for value tables.

import (
	"context"
	"errors"
	"log/slog"
	"time"

	"clrdse/internal/dse"
	"clrdse/internal/fleet"
	"clrdse/internal/obs"
	"clrdse/internal/runtime"
)

// Registry is the slice of *fleet.Registry the worker drives. An
// interface so tests can script cohort state without a full fleet.
type Registry interface {
	ActiveSnapshot(name string) (db *dse.Database, fp uint64, err error)
	DecisionsForDatabase(name string, limit int) []obs.Entry
	PublishValueTable(name string, t *runtime.ValueTable) error
	ValueTableStatus(name string) (fleet.ValueTableStatus, error)
}

// Worker periodically aggregates and publishes one cohort's value
// table.
type Worker struct {
	// Registry is the fleet being served; Database names the cohort.
	Registry Registry
	Database string
	// Gamma is the discount factor the cohort learns under; devices
	// whose agents run a different gamma ignore the published tables.
	Gamma float64
	// MeanInterArrivalCycles calibrates the replayed episode clock
	// (0 selects the paper's 100); it must match the devices' own
	// calibration for the aggregate to mean the same thing.
	MeanInterArrivalCycles float64
	// Schedule is the deterministic epoch clock gating publishes.
	Schedule Schedule
	// MinDevices is how many devices must have contributed eligible
	// decisions before a table is published (0 selects 1).
	MinDevices int
	// Interval is the tick period of Run (0 selects 1 minute).
	Interval time.Duration
	// Agreement, when non-nil, gates publishing on external consensus
	// — the cluster layer's "every alive peer holds the same value
	// table" check. Returning false defers the publish to a later
	// tick; an error is logged and also defers.
	Agreement func(ctx context.Context, database string) (bool, error)
	// Reconcile, when non-nil, runs first on every Step — the cluster
	// layer's catch-up hook (CatchUpValueTables): publishes are not
	// atomic across nodes, so a peer can publish first, after which
	// this node's Agreement stays false forever unless it adopts the
	// winner's table. Reconcile returning true means a table was
	// adopted; the step then ends (cohort state just changed under us)
	// and the next tick resumes from the adopted version. An error is
	// logged, never fatal.
	Reconcile func(ctx context.Context, database string) (bool, error)
	// Logger receives state-transition lines (nil selects the default).
	Logger *slog.Logger
}

func (w *Worker) log() *slog.Logger {
	if w.Logger != nil {
		return w.Logger
	}
	return slog.Default()
}

func (w *Worker) minDevices() int {
	if w.MinDevices <= 0 {
		return 1
	}
	return w.MinDevices
}

// Step attempts one publish for the cohort. Expected non-publishes
// (epoch window still filling, too few contributing devices,
// aggregate unchanged since the last publish, cluster not yet in
// agreement) return a nil error.
func (w *Worker) Step(ctx context.Context) error {
	if w.Reconcile != nil {
		adopted, err := w.Reconcile(ctx, w.Database)
		switch {
		case err != nil:
			w.log().WarnContext(ctx, "cohort: value-table catch-up failed", "db", w.Database, "err", err)
		case adopted:
			w.log().InfoContext(ctx, "cohort: adopted a peer's value table; resuming from it next tick",
				"db", w.Database)
			return nil
		}
	}
	st, err := w.Registry.ValueTableStatus(w.Database)
	if err != nil {
		return err
	}
	db, fp, err := w.Registry.ActiveSnapshot(w.Database)
	if err != nil {
		return err
	}
	entries := w.Registry.DecisionsForDatabase(w.Database, 0)
	eligible := EligibleEvents(entries, db.Version, db.Len())
	nextEpoch := st.Epoch + 1
	if boundary := w.Schedule.Boundary(nextEpoch); eligible < boundary {
		return nil // epoch window still filling
	}
	table, err := Aggregate(AggregateParams{
		DB:                     db,
		DBFingerprint:          fp,
		Gamma:                  w.Gamma,
		MeanInterArrivalCycles: w.MeanInterArrivalCycles,
	}, entries)
	if errors.Is(err, ErrNoEvidence) {
		return nil // all journaled decisions predate the active version
	}
	if err != nil {
		return err
	}
	if table.Devices < w.minDevices() {
		w.log().DebugContext(ctx, "cohort: too few contributing devices",
			"db", w.Database, "devices", table.Devices, "min", w.minDevices())
		return nil
	}
	table.Version = st.Version + 1
	table.Epoch = nextEpoch
	if st.HasTable && table.Fingerprint() == st.Fingerprint {
		// Same content as the active table: nothing worth a version
		// bump. The epoch stays open until the aggregate moves.
		w.log().DebugContext(ctx, "cohort: aggregate unchanged", "db", w.Database, "version", st.Version)
		return nil
	}
	if w.Agreement != nil {
		ok, err := w.Agreement(ctx, w.Database)
		if err != nil {
			w.log().WarnContext(ctx, "cohort: cluster table agreement check failed; deferring publish",
				"db", w.Database, "err", err)
			return nil
		}
		if !ok {
			w.log().InfoContext(ctx, "cohort: cluster not in table agreement; deferring publish",
				"db", w.Database, "version", table.Version)
			return nil
		}
	}
	if err := w.Registry.PublishValueTable(w.Database, table); err != nil {
		// A concurrent publish (another worker, a cluster adoption) can
		// outdate the version between status and install; the next tick
		// re-aggregates against the new state. A database swap between
		// snapshot and publish surfaces as skew the same way.
		if errors.Is(err, fleet.ErrValueTableVersion) || errors.Is(err, fleet.ErrValueTableSkew) {
			w.log().InfoContext(ctx, "cohort: publish outdated by concurrent change", "db", w.Database, "err", err)
			return nil
		}
		return err
	}
	w.log().InfoContext(ctx, "cohort: value table published",
		"db", w.Database, "version", table.Version, "epoch", table.Epoch,
		"devices", table.Devices, "events", table.Events)
	return nil
}

// Run steps the worker every Interval until ctx is cancelled. Step
// errors are logged, never fatal: the loop is a background optimiser,
// and serving must not depend on it.
func (w *Worker) Run(ctx context.Context) {
	interval := w.Interval
	if interval <= 0 {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := w.Step(ctx); err != nil {
				w.log().WarnContext(ctx, "cohort: step failed", "db", w.Database, "err", err)
			}
		}
	}
}
