package cohort

import "testing"

func TestScheduleDeterministic(t *testing.T) {
	a := Schedule{Seed: 42, BaseEvents: 100, Jitter: 0.3}
	b := Schedule{Seed: 42, BaseEvents: 100, Jitter: 0.3}
	for e := uint64(1); e <= 20; e++ {
		if a.EpochLen(e) != b.EpochLen(e) {
			t.Fatalf("epoch %d length differs across identical schedules", e)
		}
	}
	c := Schedule{Seed: 43, BaseEvents: 100, Jitter: 0.3}
	same := true
	for e := uint64(1); e <= 20; e++ {
		if a.EpochLen(e) != c.EpochLen(e) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 20-epoch schedules")
	}
}

func TestScheduleBounds(t *testing.T) {
	s := Schedule{Seed: 7, BaseEvents: 100, Jitter: 0.25}
	for e := uint64(1); e <= 200; e++ {
		n := s.EpochLen(e)
		if n < 75 || n > 125 {
			t.Fatalf("epoch %d length %d outside jitter band [75,125]", e, n)
		}
	}
	// Defaults: base 256, jitter 0.25; negative jitter disables it.
	d := Schedule{Seed: 1}
	if n := d.EpochLen(1); n < 192 || n > 320 {
		t.Errorf("default epoch length %d outside [192,320]", n)
	}
	fixed := Schedule{Seed: 1, BaseEvents: 50, Jitter: -1}
	for e := uint64(1); e <= 5; e++ {
		if fixed.EpochLen(e) != 50 {
			t.Error("negative jitter should pin epochs to BaseEvents")
		}
	}
}

func TestScheduleBoundaryMonotone(t *testing.T) {
	s := Schedule{Seed: 11, BaseEvents: 64, Jitter: 0.5}
	if s.Boundary(0) != 0 {
		t.Error("Boundary(0) != 0")
	}
	prev := 0
	for e := uint64(1); e <= 50; e++ {
		b := s.Boundary(e)
		if b <= prev {
			t.Fatalf("Boundary(%d)=%d not strictly above Boundary(%d)=%d", e, b, e-1, prev)
		}
		if b != prev+s.EpochLen(e) {
			t.Fatalf("Boundary(%d) inconsistent with EpochLen", e)
		}
		prev = b
	}
}

func TestEpochFor(t *testing.T) {
	s := Schedule{Seed: 3, BaseEvents: 40, Jitter: 0.2}
	for e := uint64(0); e <= 10; e++ {
		b := s.Boundary(e)
		if got := s.EpochFor(b); got != e {
			t.Errorf("EpochFor(Boundary(%d)=%d) = %d", e, b, got)
		}
		if e > 0 {
			if got := s.EpochFor(b - 1); got != e-1 {
				t.Errorf("EpochFor(%d) = %d, want %d", b-1, got, e-1)
			}
		}
	}
	if s.EpochFor(0) != 0 {
		t.Error("EpochFor(0) != 0")
	}
}
