package cohort

import "clrdse/internal/rng"

// Schedule is the deterministic epoch clock: epoch E (1-based) closes
// — and its value table becomes publishable — once the cohort has
// journaled Boundary(E) eligible decisions. Epoch lengths are jittered
// around BaseEvents by a seeded draw from internal/rng, so a fleet of
// nodes sharing (Seed, BaseEvents, Jitter) computes identical
// boundaries without coordination, while the jitter keeps cohorts
// from all publishing on the same beat. The schedule is stateless:
// published tables carry their epoch index, so a restarted worker
// resumes the schedule from the table it finds installed.
type Schedule struct {
	// Seed roots the jitter stream. Same seed, same boundaries,
	// forever — this is what lets journal replays attribute every
	// decision to the table version that must have produced it.
	Seed int64
	// BaseEvents is the nominal epoch length in eligible journaled
	// decisions (0 selects 256).
	BaseEvents int
	// Jitter is the fractional half-width of the per-epoch length
	// jitter in [0,1) (0 selects 0.25; negative disables jitter).
	Jitter float64
}

func (s *Schedule) base() int {
	if s.BaseEvents <= 0 {
		return 256
	}
	return s.BaseEvents
}

func (s *Schedule) jitter() float64 {
	if s.Jitter < 0 {
		return 0
	}
	if s.Jitter == 0 {
		return 0.25
	}
	return s.Jitter
}

// EpochLen returns the length of epoch (1-based) in eligible events:
// BaseEvents plus a seeded jitter drawn from the epoch's own split
// stream, never below 1. A pure function of (Seed, BaseEvents,
// Jitter, epoch).
func (s *Schedule) EpochLen(epoch uint64) int {
	base := s.base()
	span := int(float64(base) * s.jitter())
	if span == 0 {
		return base
	}
	// Each epoch owns a split stream: lengths are independent of how
	// many earlier epochs anyone computed.
	d := rng.New(s.Seed).Split(int64(epoch)).IntRange(-span, span)
	n := base + d
	if n < 1 {
		n = 1
	}
	return n
}

// Boundary returns the cumulative eligible-event count at which epoch
// (1-based) closes; Boundary(0) is 0. Strictly increasing in epoch.
func (s *Schedule) Boundary(epoch uint64) int {
	total := 0
	for e := uint64(1); e <= epoch; e++ {
		total += s.EpochLen(e)
	}
	return total
}

// EpochFor returns the latest closed epoch after `events` eligible
// journaled decisions: the largest E with Boundary(E) <= events.
func (s *Schedule) EpochFor(events int) uint64 {
	var epoch uint64
	total := 0
	for {
		next := total + s.EpochLen(epoch+1)
		if next > events {
			return epoch
		}
		total = next
		epoch++
	}
}
