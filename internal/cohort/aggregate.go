package cohort

import (
	"errors"
	"fmt"
	"sort"

	"clrdse/internal/dse"
	"clrdse/internal/obs"
	"clrdse/internal/runtime"
)

// ErrNoEvidence reports a journal with no eligible decisions for the
// database version being aggregated — an expected state on a fresh
// cohort, not a fault.
var ErrNoEvidence = errors.New("cohort: no eligible journaled decisions to aggregate")

// AggregateParams configures one aggregation pass.
type AggregateParams struct {
	// DB is the active database the journal entries were scored
	// against; its Version selects the eligible entries (point IDs are
	// only meaningful within one database version) and its points'
	// stored energy reconstructs the performance reward.
	DB *dse.Database
	// DBFingerprint is the serving database's content fingerprint
	// (fleet.NamedDatabase.Fingerprint) — the first half of the cohort
	// key, stamped into the table so a prior can never be applied
	// across a database swap.
	DBFingerprint uint64
	// Gamma is the discount factor the cohort learns under.
	Gamma float64
	// MeanInterArrivalCycles calibrates the replayed episode clock,
	// exactly as runtime.Manager does per decision (0 selects 100).
	MeanInterArrivalCycles float64
	// EpisodeCycles overrides the agents' episode length (0 keeps the
	// runtime default).
	EpisodeCycles float64
}

// Aggregate folds a journal snapshot into one cohort value table. Per
// device, the eligible entries (real decisions scored against DB's
// version) are replayed in sequence order through a detached
// runtime.Agent — the same step the live manager took, reconstructed
// from the journal: reward -EnergyMJ of the chosen point, cost the
// recorded dRC, episode clock advanced by the mean inter-arrival time.
// The per-device value functions are then merged with visit-weighted
// means in sorted device order, so the result is independent of entry
// interleaving across journal shards and of how devices are
// discovered. The returned table is unversioned (Version and Epoch
// zero); the publisher stamps them.
func Aggregate(p AggregateParams, entries []obs.Entry) (*runtime.ValueTable, error) {
	if p.DB == nil || p.DB.Len() == 0 {
		return nil, fmt.Errorf("cohort: empty database")
	}
	if p.Gamma < 0 || p.Gamma >= 1 {
		return nil, fmt.Errorf("cohort: gamma %v outside [0,1)", p.Gamma)
	}
	mean := p.MeanInterArrivalCycles
	if mean == 0 {
		mean = 100
	}
	n := p.DB.Len()

	// Group the eligible entries per device. Degraded answers never
	// stepped an agent; entries scored against another database
	// version index a different state space.
	byDevice := make(map[string][]obs.Entry)
	for _, e := range entries {
		if e.Degraded || e.DBVersion != p.DB.Version {
			continue
		}
		if e.To < 0 || e.To >= n {
			continue
		}
		byDevice[e.Device] = append(byDevice[e.Device], e)
	}
	if len(byDevice) == 0 {
		return nil, ErrNoEvidence
	}
	devices := make([]string, 0, len(byDevice))
	for d := range byDevice {
		devices = append(devices, d)
	}
	sort.Strings(devices)

	// Replay each device's decisions through its own detached agent,
	// then merge with visit-weighted running means in sorted device
	// order. Sequential merge order is fixed, so float accumulation is
	// reproducible despite FP non-associativity.
	//
	// Unvisited states keep the same truncated-horizon stay-put prior a
	// live agent boots with (runtime.NewAgentForDB): the table is
	// applied to devices wholesale, so a zero baseline would make every
	// state the cohort never visited look better (VR 0) than the states
	// it actually learned (VR < 0), biasing seeded devices toward
	// unexplored configurations. The first real visit replaces the
	// prior either way (every-visit MC at alpha = 1/visits).
	eventsPerEpisode := 0
	if p.EpisodeCycles > 0 {
		eventsPerEpisode = int(p.EpisodeCycles / mean)
	}
	prior := runtime.NewAgentForDB(p.DB, p.Gamma, eventsPerEpisode).Snapshot()
	table := &runtime.ValueTable{
		Gamma:          p.Gamma,
		DBVersion:      p.DB.Version,
		DBFingerprint:  p.DBFingerprint,
		QoSFingerprint: QoSFingerprint(entries),
		VR:             prior.VR,
		VD:             prior.VD,
		Visits:         make([]int, n),
	}
	for _, dev := range devices {
		es := byDevice[dev]
		sort.Slice(es, func(i, j int) bool { return es[i].Seq < es[j].Seq })
		ag := runtime.NewAgent(n, p.Gamma)
		if p.EpisodeCycles > 0 {
			ag.EpisodeCycles = p.EpisodeCycles
		}
		for i, e := range es {
			// Mirror Manager.OnQoSChangeObserved's agent step: the
			// event counter advances first, so the clock is 1-based.
			t := float64(i+1) * mean
			if err := ag.Observe(e.To, -p.DB.Points[e.To].EnergyMJ, e.DRCMs, t); err != nil {
				return nil, fmt.Errorf("cohort: device %s: %w", dev, err)
			}
		}
		ag.Flush()
		snap := ag.Snapshot()
		for s := 0; s < n; s++ {
			w := snap.Visits[s]
			if w == 0 {
				continue
			}
			total := table.Visits[s] + w
			fw := float64(w) / float64(total)
			table.VR[s] += fw * (snap.VR[s] - table.VR[s])
			table.VD[s] += fw * (snap.VD[s] - table.VD[s])
			table.Visits[s] = total
		}
		table.Devices++
		table.Events += len(es)
	}

	// Shrinkage prior for the cost dimension: states the cohort never
	// visited inherit the visit-weighted mean VD of the states it did.
	// A zero VD baseline would be systematically optimistic — every
	// unexplored configuration would look churn-free next to the
	// explored ones, and a seeded agent would rotate through unexplored
	// states chasing that phantom (re-running, fleet-wide, exactly the
	// exploration the cohort already paid for). Absent state-specific
	// evidence, the cohort-wide mean continuation cost is the neutral
	// estimate; a device's own first visit replaces it (alpha = 1).
	var meanVD, weight float64
	for s := 0; s < n; s++ {
		if table.Visits[s] > 0 {
			w := float64(table.Visits[s])
			weight += w
			meanVD += w / weight * (table.VD[s] - meanVD)
		}
	}
	for s := 0; s < n; s++ {
		if table.Visits[s] == 0 {
			table.VD[s] = meanVD
		}
	}
	return table, nil
}

// EligibleEvents counts the journal entries Aggregate would fold for
// the given database version: the epoch schedule's clock.
func EligibleEvents(entries []obs.Entry, dbVersion uint64, states int) int {
	count := 0
	for _, e := range entries {
		if e.Degraded || e.DBVersion != dbVersion {
			continue
		}
		if e.To < 0 || e.To >= states {
			continue
		}
		count++
	}
	return count
}
