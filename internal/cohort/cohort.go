// Package cohort implements fleet-scale shared value learning: the
// cohort-AuRA counterpart of the per-device agent of Section 4.3.2.
// Devices that serve the same design-point database under the same
// observed QoS regime form a cohort; the cohort's journaled decisions
// are folded into one aggregated value table (VR, VD per stored design
// point), published on a deterministic epoch schedule, and injected
// back into the devices' agents as prior knowledge. A cold-start
// device then inherits what its cohort already learned instead of
// running offline Monte-Carlo from scratch.
//
// Everything here is deterministic: a cohort key, an epoch boundary
// and an aggregated table are pure functions of (database, journal
// entries, configuration, seed). Aggregation replays journaled
// decisions in sorted (device, seq) order through detached
// runtime.Agent instances and merges them with visit-weighted means in
// sorted device order, so the result is independent of journal shard
// interleaving and map iteration order — the same discipline that
// makes internal/evolve's proposals byte-reproducible.
package cohort

import (
	"hash/fnv"
	"sort"

	"clrdse/internal/evolve"
	"clrdse/internal/obs"
)

// Key identifies a cohort: the devices that share learned value
// knowledge. Two devices are cohort-mates when they serve databases
// with identical content (same fingerprint — version numbers alone can
// collide across divergent nodes) and observe the same quantised
// QoS-event regime.
type Key struct {
	// DBFingerprint is the content fingerprint of the serving database
	// (fleet.NamedDatabase.Fingerprint).
	DBFingerprint uint64 `json:"db_fingerprint"`
	// QoSFingerprint is the quantised support-set fingerprint of the
	// observed QoS-event distribution (see QoSFingerprint).
	QoSFingerprint uint64 `json:"qos_fingerprint"`
}

// QoSFingerprint hashes the *support set* of the observed QoS-event
// distribution: the sorted distinct quantised (S_SPEC, F_MIN) cells,
// on exactly the grid internal/evolve histograms them (one quantiser,
// one notion of "same specification"). Counts are deliberately
// excluded — the fingerprint identifies the regime a cohort operates
// in, and must stay stable as traffic accumulates within that regime
// rather than change with every journaled event. Degraded answers and
// pre-spec-recording entries (both spec fields zero) are skipped, as
// in evolve.Observe; the result is independent of entry order.
func QoSFingerprint(entries []obs.Entry) uint64 {
	type cell struct{ s, f int64 }
	seen := make(map[cell]bool)
	for _, e := range entries {
		if e.Degraded || (e.SpecSMaxMs == 0 && e.SpecFMin == 0) {
			continue
		}
		seen[cell{evolve.Quantise(e.SpecSMaxMs), evolve.Quantise(e.SpecFMin)}] = true
	}
	cells := make([]cell, 0, len(seen))
	for c := range seen {
		cells = append(cells, c)
	}
	// Sorted cells make the hash independent of map iteration order.
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].s != cells[j].s {
			return cells[i].s < cells[j].s
		}
		return cells[i].f < cells[j].f
	})
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	word(uint64(len(cells)))
	for _, c := range cells {
		word(uint64(c.s))
		word(uint64(c.f))
	}
	return h.Sum64()
}
