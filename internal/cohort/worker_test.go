package cohort

import (
	"context"
	"errors"
	"testing"

	"clrdse/internal/dse"
	"clrdse/internal/fleet"
	"clrdse/internal/obs"
	"clrdse/internal/runtime"
)

// fakeRegistry scripts cohort state without a full fleet, mirroring
// the evolve worker's test double.
type fakeRegistry struct {
	db        *dse.Database
	fp        uint64
	entries   []obs.Entry
	active    *runtime.ValueTable
	published []*runtime.ValueTable
	pubErr    error
}

func (f *fakeRegistry) ActiveSnapshot(string) (*dse.Database, uint64, error) {
	return f.db, f.fp, nil
}

func (f *fakeRegistry) DecisionsForDatabase(string, int) []obs.Entry { return f.entries }

func (f *fakeRegistry) PublishValueTable(_ string, t *runtime.ValueTable) error {
	if f.pubErr != nil {
		return f.pubErr
	}
	f.published = append(f.published, t)
	f.active = t
	return nil
}

func (f *fakeRegistry) ValueTableStatus(string) (fleet.ValueTableStatus, error) {
	st := fleet.ValueTableStatus{Database: "t"}
	if f.active != nil {
		st.HasTable = true
		st.Version = f.active.Version
		st.Epoch = f.active.Epoch
		st.Fingerprint = f.active.Fingerprint()
	}
	return st, nil
}

func workerFixture(events int) (*Worker, *fakeRegistry) {
	db := testDB(3)
	reg := &fakeRegistry{db: db, fp: 0xabc}
	for i := 0; i < events; i++ {
		reg.entries = append(reg.entries,
			entry("d", uint64(i+1), i%db.Len(), float64(i%2), 3.5, 0.9))
	}
	return &Worker{
		Registry: reg,
		Database: "t",
		Gamma:    0.6,
		Schedule: Schedule{Seed: 5, BaseEvents: 10, Jitter: -1},
	}, reg
}

func TestWorkerPublishesOnEpochBoundary(t *testing.T) {
	w, reg := workerFixture(9)
	ctx := context.Background()
	if err := w.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if len(reg.published) != 0 {
		t.Fatal("published before the epoch boundary (9 < 10 events)")
	}
	reg.entries = append(reg.entries, entry("d", 10, 1, 0, 3.5, 0.9))
	if err := w.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if len(reg.published) != 1 {
		t.Fatal("no publish at the epoch boundary")
	}
	got := reg.published[0]
	if got.Version != 1 || got.Epoch != 1 {
		t.Errorf("first publish stamped v%d epoch %d, want v1 epoch 1", got.Version, got.Epoch)
	}
	if got.DBFingerprint != reg.fp || got.Gamma != 0.6 {
		t.Error("publish lost its bindings")
	}
	// Same journal, next tick: aggregate unchanged, no re-publish.
	if err := w.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if len(reg.published) != 1 {
		t.Error("re-published an unchanged aggregate")
	}
	// Epoch 2 closes after 10 more eligible events: version advances.
	for i := 11; i <= 20; i++ {
		reg.entries = append(reg.entries, entry("d", uint64(i), i%3, 1.5, 4.0, 0.95))
	}
	if err := w.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if len(reg.published) != 2 {
		t.Fatal("no publish at the second epoch boundary")
	}
	if got := reg.published[1]; got.Version != 2 || got.Epoch != 2 {
		t.Errorf("second publish stamped v%d epoch %d, want v2 epoch 2", got.Version, got.Epoch)
	}
}

func TestWorkerMinDevices(t *testing.T) {
	w, reg := workerFixture(12)
	w.MinDevices = 2
	if err := w.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(reg.published) != 0 {
		t.Error("published with one contributing device, MinDevices=2")
	}
}

func TestWorkerAgreementGatesPublish(t *testing.T) {
	w, reg := workerFixture(12)
	agree := false
	w.Agreement = func(context.Context, string) (bool, error) { return agree, nil }
	ctx := context.Background()
	if err := w.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if len(reg.published) != 0 {
		t.Error("published without cluster agreement")
	}
	agree = true
	if err := w.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if len(reg.published) != 1 {
		t.Error("agreement satisfied but no publish")
	}
}

func TestWorkerReconcileShortCircuits(t *testing.T) {
	w, reg := workerFixture(12)
	w.Reconcile = func(context.Context, string) (bool, error) { return true, nil }
	if err := w.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(reg.published) != 0 {
		t.Error("step continued past an adopting reconcile")
	}
}

func TestWorkerTreatsConcurrentPublishAsBenign(t *testing.T) {
	w, reg := workerFixture(12)
	reg.pubErr = fleet.ErrValueTableVersion
	if err := w.Step(context.Background()); err != nil {
		t.Fatalf("version race should be benign, got %v", err)
	}
	reg.pubErr = errors.New("boom")
	if err := w.Step(context.Background()); err == nil {
		t.Error("real publish error swallowed")
	}
}
