package ga

import (
	"testing"

	"clrdse/internal/mapping"
	"clrdse/internal/pareto"
	"clrdse/internal/platform"
	"clrdse/internal/relmodel"
	"clrdse/internal/rng"
	"clrdse/internal/schedule"
	"clrdse/internal/taskgraph"
)

// testProblem returns a small CLR mapping problem with an energy/
// makespan bi-objective and a loose makespan constraint.
func testProblem(t *testing.T, n int) (*mapping.Space, Objective) {
	t.Helper()
	plat := platform.Default()
	g, err := taskgraph.Generate(taskgraph.GenParams{Seed: 31, NumTasks: n}, plat)
	if err != nil {
		t.Fatal(err)
	}
	space := &mapping.Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()}
	ev := &schedule.Evaluator{Space: space, Env: relmodel.DefaultEnv()}
	obj := func(m *mapping.Mapping) ([]float64, float64, any) {
		res, err := ev.Evaluate(m)
		if err != nil {
			t.Fatalf("objective: %v", err)
		}
		violation := 0.0
		if res.MakespanMs > g.PeriodMs {
			violation = res.MakespanMs - g.PeriodMs
		}
		return []float64{res.EnergyMJ, res.MakespanMs}, violation, res
	}
	return space, obj
}

func smallParams(seed int64) Params {
	return Params{PopSize: 24, Generations: 12, Seed: seed}
}

func TestRunProducesFeasibleFront(t *testing.T) {
	space, obj := testProblem(t, 20)
	e := &Engine{Space: space, Eval: obj, Params: smallParams(1)}
	pop, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	front := pop.ParetoFront()
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	for _, ind := range front {
		if !ind.Feasible() {
			t.Error("infeasible individual on front")
		}
		if err := space.Validate(ind.M); err != nil {
			t.Errorf("front individual invalid: %v", err)
		}
		if ind.Payload == nil {
			t.Error("payload not propagated")
		}
	}
}

func TestFrontIsMutuallyNonDominated(t *testing.T) {
	space, obj := testProblem(t, 25)
	e := &Engine{Space: space, Eval: obj, Params: smallParams(2)}
	pop, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	front := pop.ParetoFront()
	for i := range front {
		for j := range front {
			if i != j && pareto.Dominates(front[i].Objs, front[j].Objs) {
				t.Fatalf("front member %d dominates member %d", i, j)
			}
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	space, obj := testProblem(t, 15)
	run := func() []*Individual {
		e := &Engine{Space: space, Eval: obj, Params: smallParams(7)}
		pop, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return pop.ParetoFront()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("front sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].M.Equal(b[i].M) {
			t.Fatal("same seed produced different fronts")
		}
	}
}

func TestEvolutionImprovesOverRandom(t *testing.T) {
	space, obj := testProblem(t, 30)
	// Best random energy over the same evaluation budget.
	r := rng.New(3)
	budget := 24 * 13
	bestRandom := 0.0
	for i := 0; i < budget; i++ {
		objs, v, _ := obj(space.Random(r))
		if v > 0 {
			continue
		}
		if bestRandom == 0 || objs[0] < bestRandom {
			bestRandom = objs[0]
		}
	}
	e := &Engine{Space: space, Eval: obj, Params: smallParams(3)}
	pop, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	bestGA := 0.0
	for _, ind := range pop.ParetoFront() {
		if bestGA == 0 || ind.Objs[0] < bestGA {
			bestGA = ind.Objs[0]
		}
	}
	if bestGA >= bestRandom {
		t.Errorf("GA best energy %v should beat random search %v", bestGA, bestRandom)
	}
}

func TestSeedsEnterPopulation(t *testing.T) {
	space, obj := testProblem(t, 12)
	seed := space.Random(rng.New(9))
	captured := false
	wrapped := func(m *mapping.Mapping) ([]float64, float64, any) {
		if m.Equal(seed) {
			captured = true
		}
		return obj(m)
	}
	e := &Engine{Space: space, Eval: wrapped, Params: Params{
		PopSize: 10, Generations: 1, Seed: 4, Seeds: []*mapping.Mapping{seed},
	}}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !captured {
		t.Error("seed genome never evaluated")
	}
}

func TestConstraintDominationPrefersFeasible(t *testing.T) {
	// With a tight makespan constraint, the final population should
	// still contain feasible individuals if any exist, and the front
	// should satisfy the constraint.
	plat := platform.Default()
	g, err := taskgraph.Generate(taskgraph.GenParams{Seed: 32, NumTasks: 15, PeriodSlack: 0.6}, plat)
	if err != nil {
		t.Fatal(err)
	}
	space := &mapping.Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()}
	ev := &schedule.Evaluator{Space: space, Env: relmodel.DefaultEnv()}
	obj := func(m *mapping.Mapping) ([]float64, float64, any) {
		res, err := ev.Evaluate(m)
		if err != nil {
			t.Fatalf("objective: %v", err)
		}
		v := 0.0
		if res.MakespanMs > g.PeriodMs {
			v = res.MakespanMs - g.PeriodMs
		}
		return []float64{res.EnergyMJ}, v, res
	}
	e := &Engine{Space: space, Eval: obj, Params: Params{PopSize: 30, Generations: 25, Seed: 5}}
	pop, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, ind := range pop.ParetoFront() {
		res := ind.Payload.(*schedule.Result)
		if res.MakespanMs > g.PeriodMs {
			t.Errorf("front member violates makespan: %v > %v", res.MakespanMs, g.PeriodMs)
		}
	}
}

func TestOnGenerationCallback(t *testing.T) {
	space, obj := testProblem(t, 10)
	var gens []int
	e := &Engine{Space: space, Eval: obj, Params: smallParams(6), OnGeneration: func(s GenStats) {
		gens = append(gens, s.Generation)
		if s.FeasibleCount > 0 && len(s.BestObjs) != 2 {
			t.Errorf("BestObjs = %v, want 2 objectives", s.BestObjs)
		}
	}}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(gens) != 12 {
		t.Errorf("callback fired %d times, want 12", len(gens))
	}
}

func TestParamValidation(t *testing.T) {
	space, obj := testProblem(t, 5)
	bad := []Params{
		{PopSize: 1, Generations: 1},
		{PopSize: 4, Generations: -1},
		{PopSize: 4, Generations: 1, CrossoverProb: 1.5},
		{PopSize: 4, Generations: 1, MutationProb: -0.2},
		{PopSize: 4, Generations: 1, TournamentSize: -2},
	}
	for i, p := range bad {
		e := &Engine{Space: space, Eval: obj, Params: p}
		if _, err := e.Run(); err == nil {
			t.Errorf("case %d: Run accepted bad params %+v", i, p)
		}
	}
	e := &Engine{Space: space, Params: smallParams(1)}
	if _, err := e.Run(); err == nil {
		t.Error("Run accepted nil objective")
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	p := Params{}.withDefaults()
	if p.CrossoverProb != 0.7 {
		t.Errorf("default crossover = %v, want 0.7", p.CrossoverProb)
	}
	if p.MutationProb != 0.03 {
		t.Errorf("default mutation = %v, want 0.03", p.MutationProb)
	}
	if p.TournamentSize != 5 {
		t.Errorf("default tournament = %d, want 5", p.TournamentSize)
	}
}

func TestBetterOrdering(t *testing.T) {
	feasGood := &Individual{Violation: 0, rank: 0, crowd: 2}
	feasBad := &Individual{Violation: 0, rank: 1, crowd: 5}
	infeasLow := &Individual{Violation: 1}
	infeasHigh := &Individual{Violation: 9}
	if !better(feasGood, feasBad) {
		t.Error("lower rank should win")
	}
	if !better(feasBad, infeasLow) {
		t.Error("feasible should beat infeasible")
	}
	if !better(infeasLow, infeasHigh) {
		t.Error("lower violation should win among infeasible")
	}
	crowded := &Individual{Violation: 0, rank: 0, crowd: 1}
	if !better(feasGood, crowded) {
		t.Error("higher crowding should win at equal rank")
	}
}

func TestAllGenomesRemainValidThroughEvolution(t *testing.T) {
	space, obj := testProblem(t, 18)
	checked := 0
	wrapped := func(m *mapping.Mapping) ([]float64, float64, any) {
		if err := space.Validate(m); err != nil {
			t.Fatalf("engine produced invalid genome: %v", err)
		}
		checked++
		return obj(m)
	}
	e := &Engine{Space: space, Eval: wrapped, Params: smallParams(8)}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if checked < 24*13 {
		t.Errorf("only %d evaluations observed", checked)
	}
}

func TestConvergenceTracking(t *testing.T) {
	space, obj := testProblem(t, 20)
	ref := []float64{1e6, 1e6} // loose reference above any (J, S)
	var hvs []float64
	e := &Engine{Space: space, Eval: obj, Params: Params{PopSize: 30, Generations: 20, Seed: 11},
		OnGeneration: func(s GenStats) {
			if s.FrontSize != len(s.FrontObjs) {
				t.Fatalf("gen %d: FrontSize %d != len(FrontObjs) %d", s.Generation, s.FrontSize, len(s.FrontObjs))
			}
			hvs = append(hvs, pareto.Hypervolume(s.FrontObjs, ref))
		}}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hvs) != 20 {
		t.Fatalf("tracked %d generations", len(hvs))
	}
	// Elitist NSGA-II: the final front's hyper-volume should not fall
	// below the first generation's.
	if hvs[len(hvs)-1] < hvs[0] {
		t.Errorf("hyper-volume regressed: %v -> %v", hvs[0], hvs[len(hvs)-1])
	}
	// And should strictly improve at some point.
	improved := false
	for i := 1; i < len(hvs); i++ {
		if hvs[i] > hvs[0] {
			improved = true
		}
	}
	if !improved {
		t.Error("hyper-volume never improved over 20 generations")
	}
}

func TestParallelEvaluationBitIdentical(t *testing.T) {
	space, obj := testProblem(t, 20)
	run := func(workers int) []*Individual {
		p := smallParams(13)
		p.Workers = workers
		e := &Engine{Space: space, Eval: obj, Params: p}
		pop, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return pop.ParetoFront()
	}
	serial := run(0)
	parallel := run(4)
	if len(serial) != len(parallel) {
		t.Fatalf("front sizes differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !serial[i].M.Equal(parallel[i].M) {
			t.Fatal("parallel evaluation changed the result")
		}
		for k := range serial[i].Objs {
			if serial[i].Objs[k] != parallel[i].Objs[k] {
				t.Fatal("parallel evaluation changed objective values")
			}
		}
	}
}

func TestCrossoverKinds(t *testing.T) {
	space, _ := testProblem(t, 20)
	r := rng.New(41)
	for _, kind := range []CrossoverKind{CrossoverUniform, CrossoverOnePoint, CrossoverTwoPoint} {
		a, b := space.Random(r), space.Random(r)
		ac, bc := a.Clone(), b.Clone()
		crossover(ac, bc, r, kind)
		// Gene multiset preserved per position: each position holds the
		// genes of a and b in some order.
		for i := range ac.Genes {
			ok := (ac.Genes[i] == a.Genes[i] && bc.Genes[i] == b.Genes[i]) ||
				(ac.Genes[i] == b.Genes[i] && bc.Genes[i] == a.Genes[i])
			if !ok {
				t.Fatalf("%v: position %d lost genes", kind, i)
			}
		}
	}
	if CrossoverOnePoint.String() != "one-point" || CrossoverKind(9).String() == "" {
		t.Error("CrossoverKind.String mismatch")
	}
}

func TestOnePointCrossoverIsContiguousSuffix(t *testing.T) {
	space, _ := testProblem(t, 25)
	r := rng.New(42)
	a, b := space.Random(r), space.Random(r)
	ac, bc := a.Clone(), b.Clone()
	crossover(ac, bc, r, CrossoverOnePoint)
	_ = bc
	// After the first swapped position, everything must be swapped.
	swapping := false
	for i := range ac.Genes {
		swapped := ac.Genes[i] == b.Genes[i] && a.Genes[i] != b.Genes[i]
		same := ac.Genes[i] == a.Genes[i]
		if swapping && !swapped && !same {
			t.Fatalf("position %d in unexpected state", i)
		}
		if swapped {
			swapping = true
		} else if swapping && same && a.Genes[i] != b.Genes[i] {
			t.Fatalf("gap in suffix swap at %d", i)
		}
	}
}

func TestEngineRunsWithEachCrossover(t *testing.T) {
	space, obj := testProblem(t, 15)
	for _, kind := range []CrossoverKind{CrossoverUniform, CrossoverOnePoint, CrossoverTwoPoint} {
		p := Params{PopSize: 16, Generations: 5, Seed: 43, Crossover: kind}
		e := &Engine{Space: space, Eval: obj, Params: p}
		pop, err := e.Run()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(pop.ParetoFront()) == 0 {
			t.Errorf("%v: empty front", kind)
		}
	}
}

func TestHypervolumeSurvivalRuns(t *testing.T) {
	space, obj := testProblem(t, 20)
	p := Params{PopSize: 20, Generations: 10, Seed: 51, Survival: SurvivalHypervolume}
	e := &Engine{Space: space, Eval: obj, Params: p}
	pop, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	front := pop.ParetoFront()
	if len(front) == 0 {
		t.Fatal("empty front under hypervolume survival")
	}
	for i := range front {
		for j := range front {
			if i != j && pareto.Dominates(front[i].Objs, front[j].Objs) {
				t.Fatal("front not mutually non-dominated")
			}
		}
	}
	if SurvivalHypervolume.String() != "hypervolume" || SurvivalKind(9).String() == "" {
		t.Error("SurvivalKind.String mismatch")
	}
}

func TestSurvivalKindsProduceComparableQuality(t *testing.T) {
	// The two survival rules should land in the same quality ballpark
	// at equal budget (neither catastrophically worse).
	space, obj := testProblem(t, 20)
	ref := []float64{1e6, 1e6}
	hv := func(survival SurvivalKind) float64 {
		p := Params{PopSize: 24, Generations: 12, Seed: 52, Survival: survival}
		e := &Engine{Space: space, Eval: obj, Params: p}
		pop, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		var objs [][]float64
		for _, ind := range pop.ParetoFront() {
			objs = append(objs, ind.Objs)
		}
		return pareto.Hypervolume(objs, ref)
	}
	a, b := hv(SurvivalCrowding), hv(SurvivalHypervolume)
	if a <= 0 || b <= 0 {
		t.Fatalf("degenerate hyper-volumes %v/%v", a, b)
	}
	if ratio := a / b; ratio < 0.95 || ratio > 1.05 {
		t.Errorf("survival rules diverge: crowding HV %v vs hypervolume HV %v", a, b)
	}
}

func TestIGDConvergesTowardFinalFront(t *testing.T) {
	// The per-generation fronts should approach the final front in
	// (normalised) IGD terms: the last quarter of the run must sit
	// closer than the first quarter on average.
	space, obj := testProblem(t, 20)
	var history [][][]float64
	e := &Engine{Space: space, Eval: obj, Params: Params{PopSize: 30, Generations: 24, Seed: 61},
		OnGeneration: func(s GenStats) {
			cp := make([][]float64, len(s.FrontObjs))
			for i, o := range s.FrontObjs {
				cp[i] = append([]float64(nil), o...)
			}
			history = append(history, cp)
		}}
	pop, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var final [][]float64
	for _, ind := range pop.ParetoFront() {
		final = append(final, ind.Objs)
	}
	// Normalise everything with the union extent so IGD mixes ms and
	// mJ sensibly.
	var union [][]float64
	union = append(union, final...)
	for _, f := range history {
		union = append(union, f...)
	}
	norm := pareto.Normalize(union)
	normFinal := norm[:len(final)]
	idx := len(final)
	igd := make([]float64, len(history))
	for g, f := range history {
		igd[g] = pareto.IGD(norm[idx:idx+len(f)], normFinal)
		idx += len(f)
	}
	quarter := len(igd) / 4
	early, late := 0.0, 0.0
	for i := 0; i < quarter; i++ {
		early += igd[i]
		late += igd[len(igd)-1-i]
	}
	if late >= early {
		t.Errorf("IGD did not improve: early avg %v, late avg %v", early/float64(quarter), late/float64(quarter))
	}
}
