// Package ga implements the genetic-algorithm machinery the paper's
// design-time DSE is built on (the role DEAP/PYGMO play in the
// authors' Python implementation): an NSGA-II-style multi-objective
// evolutionary engine over CLR-integrated task-mapping genomes, with
// the paper's operator parameters — crossover probability 0.7,
// per-gene mutation probability 0.03, tournament selection with 5
// individuals (Section 5.1).
//
// Constraints are handled by constraint-domination, the selection-side
// equivalent of Figure 4a's negative hyper-volume fitness for
// infeasible points: any feasible individual beats any infeasible one,
// infeasible individuals are ordered by total violation, and feasible
// individuals are ordered by Pareto rank then crowding distance.
package ga

import (
	"fmt"
	"math"
	"sync"

	"clrdse/internal/mapping"
	"clrdse/internal/pareto"
	"clrdse/internal/rng"
)

// Objective evaluates a genome and returns its objective vector (all
// minimised), its total constraint violation (0 when feasible) and an
// arbitrary payload cached on the individual (typically the schedule
// result, so downstream stages need not re-evaluate).
type Objective func(m *mapping.Mapping) (objs []float64, violation float64, payload any)

// Individual is one member of the population.
type Individual struct {
	// M is the genome.
	M *mapping.Mapping
	// Objs is the minimised objective vector.
	Objs []float64
	// Violation is the total constraint violation (0 = feasible).
	Violation float64
	// Payload is whatever the Objective attached.
	Payload any

	rank  int
	crowd float64
}

// Feasible reports whether the individual satisfies all constraints.
func (ind *Individual) Feasible() bool { return ind.Violation == 0 }

// Params are the engine's knobs. Zero values select the paper's
// settings where the paper specifies one.
type Params struct {
	// PopSize is the population size (0 selects 80).
	PopSize int
	// Generations is the number of generations (0 selects 60).
	Generations int
	// CrossoverProb is the per-pair crossover probability
	// (0 selects the paper's 0.7).
	CrossoverProb float64
	// MutationProb is the per-gene mutation probability
	// (0 selects the paper's 0.03).
	MutationProb float64
	// TournamentSize is the selection tournament size
	// (0 selects the paper's 5).
	TournamentSize int
	// Seed drives all randomness.
	Seed int64
	// Seeds are genomes injected into the initial population (cloned);
	// the ReD stage seeds each sub-optimisation from a Pareto point.
	Seeds []*mapping.Mapping
	// Workers evaluates genomes concurrently on up to this many
	// goroutines (0/1 = serial). Results are bit-identical to serial
	// runs — genome creation stays sequential, only the (pure)
	// objective calls fan out — but the Objective must be safe for
	// concurrent use.
	Workers int
	// Crossover selects the recombination operator (default uniform).
	Crossover CrossoverKind
	// Survival selects how a split front is truncated (default
	// crowding distance, the NSGA-II rule).
	Survival SurvivalKind
}

// SurvivalKind selects the truncation rule for the last front that
// does not fit into the next generation.
type SurvivalKind int

const (
	// SurvivalCrowding keeps the least-crowded members (NSGA-II).
	SurvivalCrowding SurvivalKind = iota
	// SurvivalHypervolume keeps the members with the largest exclusive
	// hyper-volume contribution (SMS-EMOA style) — the literal reading
	// of the paper's Eq. (5), which maximises the summed hyper-volume
	// of the stored collection. The reference point is the pool's
	// per-objective worst value plus a margin.
	SurvivalHypervolume
)

func (k SurvivalKind) String() string {
	switch k {
	case SurvivalCrowding:
		return "crowding"
	case SurvivalHypervolume:
		return "hypervolume"
	default:
		return fmt.Sprintf("SurvivalKind(%d)", int(k))
	}
}

// CrossoverKind selects the recombination operator.
type CrossoverKind int

const (
	// CrossoverUniform exchanges each task gene independently with
	// probability 1/2 (the default; strongest mixing).
	CrossoverUniform CrossoverKind = iota
	// CrossoverOnePoint splits the genome at one random task index.
	CrossoverOnePoint
	// CrossoverTwoPoint exchanges a random contiguous gene segment,
	// preserving locality at both genome ends.
	CrossoverTwoPoint
)

func (k CrossoverKind) String() string {
	switch k {
	case CrossoverUniform:
		return "uniform"
	case CrossoverOnePoint:
		return "one-point"
	case CrossoverTwoPoint:
		return "two-point"
	default:
		return fmt.Sprintf("CrossoverKind(%d)", int(k))
	}
}

func (p Params) withDefaults() Params {
	if p.PopSize == 0 {
		p.PopSize = 80
	}
	if p.Generations == 0 {
		p.Generations = 60
	}
	if p.CrossoverProb == 0 {
		p.CrossoverProb = 0.7
	}
	if p.MutationProb == 0 {
		p.MutationProb = 0.03
	}
	if p.TournamentSize == 0 {
		p.TournamentSize = 5
	}
	return p
}

func (p Params) validate() error {
	switch {
	case p.PopSize < 2:
		return fmt.Errorf("ga: PopSize must be >= 2, got %d", p.PopSize)
	case p.Generations < 1:
		return fmt.Errorf("ga: Generations must be >= 1, got %d", p.Generations)
	case p.CrossoverProb < 0 || p.CrossoverProb > 1:
		return fmt.Errorf("ga: CrossoverProb out of range: %v", p.CrossoverProb)
	case p.MutationProb < 0 || p.MutationProb > 1:
		return fmt.Errorf("ga: MutationProb out of range: %v", p.MutationProb)
	case p.TournamentSize < 1:
		return fmt.Errorf("ga: TournamentSize must be >= 1, got %d", p.TournamentSize)
	}
	return nil
}

// GenStats summarises one generation for progress reporting and
// convergence tracking.
type GenStats struct {
	Generation    int
	FeasibleCount int
	FrontSize     int
	BestObjs      []float64 // per-objective minimum among feasible
	// FrontObjs are the objective vectors of the feasible first front,
	// for hyper-volume/IGD convergence curves.
	FrontObjs [][]float64
}

// Engine runs the evolutionary optimisation.
type Engine struct {
	// Space defines the genome structure (graph, platform, catalogue).
	Space *mapping.Space
	// Eval scores genomes.
	Eval Objective
	// Params are the GA settings.
	Params Params
	// OnGeneration, if non-nil, is invoked after every generation.
	OnGeneration func(GenStats)
}

// Run evolves the population and returns the final one.
func (e *Engine) Run() (*Population, error) {
	p := e.Params.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	if e.Eval == nil {
		return nil, fmt.Errorf("ga: nil Objective")
	}
	r := rng.New(p.Seed)

	var genomes []*mapping.Mapping
	for _, s := range p.Seeds {
		if len(genomes) == p.PopSize {
			break
		}
		genomes = append(genomes, s.Clone())
	}
	for len(genomes) < p.PopSize {
		genomes = append(genomes, e.Space.Random(r))
	}
	pop := e.evalAll(genomes, p.Workers)
	rank(pop)

	for gen := 0; gen < p.Generations; gen++ {
		genomes = genomes[:0]
		for len(genomes) < p.PopSize {
			a := e.tournament(pop, r, p.TournamentSize)
			b := e.tournament(pop, r, p.TournamentSize)
			ca, cb := a.M.Clone(), b.M.Clone()
			if r.Bool(p.CrossoverProb) {
				crossover(ca, cb, r, p.Crossover)
			}
			e.mutate(ca, r, p.MutationProb)
			e.mutate(cb, r, p.MutationProb)
			e.Space.Repair(ca, r)
			e.Space.Repair(cb, r)
			genomes = append(genomes, ca)
			if len(genomes) < p.PopSize {
				genomes = append(genomes, cb)
			}
		}
		offspring := e.evalAll(genomes, p.Workers)
		pop = environmentalSelect(append(pop, offspring...), p.PopSize, p.Survival)
		if e.OnGeneration != nil {
			e.OnGeneration(stats(gen, pop))
		}
	}
	return &Population{Individuals: pop}, nil
}

// evalAll scores the genomes, fanning the objective calls out over the
// configured worker count. Output order (and therefore every
// downstream decision) is independent of scheduling.
func (e *Engine) evalAll(genomes []*mapping.Mapping, workers int) []*Individual {
	out := make([]*Individual, len(genomes))
	if workers <= 1 {
		for i, m := range genomes {
			out[i] = e.newIndividual(m)
		}
		return out
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, m := range genomes {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, m *mapping.Mapping) {
			defer wg.Done()
			out[i] = e.newIndividual(m)
			<-sem
		}(i, m)
	}
	wg.Wait()
	return out
}

func (e *Engine) newIndividual(m *mapping.Mapping) *Individual {
	objs, violation, payload := e.Eval(m)
	return &Individual{M: m, Objs: objs, Violation: violation, Payload: payload}
}

// tournament picks the best of k random individuals under
// constraint-dominated comparison.
func (e *Engine) tournament(pop []*Individual, r *rng.Source, k int) *Individual {
	best := pop[r.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[r.Intn(len(pop))]
		if better(c, best) {
			best = c
		}
	}
	return best
}

// better implements the constraint-dominated comparison used by both
// tournaments and environmental selection.
func better(a, b *Individual) bool {
	switch {
	case a.Feasible() && !b.Feasible():
		return true
	case !a.Feasible() && b.Feasible():
		return false
	case !a.Feasible(): // both infeasible
		return a.Violation < b.Violation
	case a.rank != b.rank:
		return a.rank < b.rank
	default:
		return a.crowd > b.crowd
	}
}

// crossover recombines two genomes in place with the selected
// operator.
func crossover(a, b *mapping.Mapping, r *rng.Source, kind CrossoverKind) {
	n := len(a.Genes)
	if n == 0 {
		return
	}
	swap := func(lo, hi int) {
		for t := lo; t < hi; t++ {
			a.Genes[t], b.Genes[t] = b.Genes[t], a.Genes[t]
		}
	}
	switch kind {
	case CrossoverOnePoint:
		swap(r.Intn(n), n)
	case CrossoverTwoPoint:
		i, j := r.Intn(n), r.Intn(n)
		if i > j {
			i, j = j, i
		}
		swap(i, j+1)
	default: // uniform
		for t := range a.Genes {
			if r.Bool(0.5) {
				a.Genes[t], b.Genes[t] = b.Genes[t], a.Genes[t]
			}
		}
	}
}

// mutate perturbs each gene with the configured probability: one of
// the gene's fields (binding+impl, CLR layer, or priority) is
// re-randomised.
func (e *Engine) mutate(m *mapping.Mapping, r *rng.Source, prob float64) {
	n := e.Space.Graph.NumTasks()
	for t := range m.Genes {
		if !r.Bool(prob) {
			continue
		}
		g := &m.Genes[t]
		switch r.Intn(4) {
		case 0: // re-bind: new runnable implementation and compatible PE
			runnable := e.Space.RunnableImpls(t)
			g.Impl = runnable[r.Intn(len(runnable))]
			pes := e.Space.CompatiblePEs(t, g.Impl)
			g.PE = pes[r.Intn(len(pes))]
		case 1: // new CLR configuration for one random layer
			switch r.Intn(3) {
			case 0:
				g.CLR.HW = r.Intn(len(e.Space.Catalogue.HW))
			case 1:
				g.CLR.SSW = r.Intn(len(e.Space.Catalogue.SSW))
			default:
				g.CLR.ASW = r.Intn(len(e.Space.Catalogue.ASW))
			}
		case 2: // new priority
			g.Prio = r.Intn(4 * n)
		case 3: // move to another compatible PE, keep impl
			pes := e.Space.CompatiblePEs(t, g.Impl)
			g.PE = pes[r.Intn(len(pes))]
		}
	}
}

// rank assigns Pareto ranks and crowding distances. Infeasible
// individuals all receive a rank worse than any feasible one.
func rank(pop []*Individual) {
	var feasible []*Individual
	for _, ind := range pop {
		if ind.Feasible() {
			feasible = append(feasible, ind)
		}
	}
	if len(feasible) > 0 {
		objs := make([][]float64, len(feasible))
		for i, ind := range feasible {
			objs[i] = ind.Objs
		}
		fronts := pareto.Sort(objs)
		for fr, members := range fronts {
			crowd := pareto.Crowding(objs, members)
			for _, i := range members {
				feasible[i].rank = fr
				feasible[i].crowd = crowd[i]
			}
		}
	}
	worst := len(pop) + 1
	for _, ind := range pop {
		if !ind.Feasible() {
			ind.rank = worst
			ind.crowd = -ind.Violation // less violated = preferred
		}
	}
}

// environmentalSelect ranks the merged parent+offspring pool and keeps
// the best n under constraint-domination, truncating the split front
// by the selected survival rule.
func environmentalSelect(pool []*Individual, n int, survival SurvivalKind) []*Individual {
	rank(pool)
	if survival == SurvivalHypervolume {
		applyHypervolumeCrowd(pool)
	}
	// Partition: feasible by (rank, crowd), then infeasible by
	// violation. A simple sort under better() is not a strict weak
	// order across ranks+crowding, so sort explicitly.
	sorted := make([]*Individual, len(pool))
	copy(sorted, pool)
	// Insertion-style comparator: feasibility, rank, crowding.
	lessIdx := func(a, b *Individual) bool {
		switch {
		case a.Feasible() != b.Feasible():
			return a.Feasible()
		case !a.Feasible():
			return a.Violation < b.Violation
		case a.rank != b.rank:
			return a.rank < b.rank
		case a.crowd != b.crowd:
			return a.crowd > b.crowd
		default:
			return false
		}
	}
	sortSlice(sorted, lessIdx)
	return sorted[:n]
}

func sortSlice(xs []*Individual, less func(a, b *Individual) bool) {
	// Simple stable merge sort to avoid importing sort with closure
	// allocations in the hot path; population sizes are small.
	if len(xs) < 2 {
		return
	}
	mid := len(xs) / 2
	left := append([]*Individual(nil), xs[:mid]...)
	right := append([]*Individual(nil), xs[mid:]...)
	sortSlice(left, less)
	sortSlice(right, less)
	i, j := 0, 0
	for k := range xs {
		switch {
		case i < len(left) && (j >= len(right) || !less(right[j], left[i])):
			xs[k] = left[i]
			i++
		default:
			xs[k] = right[j]
			j++
		}
	}
}

// applyHypervolumeCrowd overwrites the feasible individuals' crowding
// values with their exclusive hyper-volume contributions per front, so
// the shared (rank, crowd) ordering implements SMS-EMOA-style
// truncation.
func applyHypervolumeCrowd(pool []*Individual) {
	byRank := map[int][]*Individual{}
	for _, ind := range pool {
		if ind.Feasible() {
			byRank[ind.rank] = append(byRank[ind.rank], ind)
		}
	}
	for _, members := range byRank {
		objs := make([][]float64, len(members))
		for i, ind := range members {
			objs[i] = ind.Objs
		}
		ref := make([]float64, len(objs[0]))
		for d := range ref {
			worst := math.Inf(-1)
			for _, o := range objs {
				worst = math.Max(worst, o[d])
			}
			span := math.Abs(worst)
			if span == 0 {
				span = 1
			}
			ref[d] = worst + 0.05*span
		}
		contrib := pareto.Contribution(objs, ref)
		for i, ind := range members {
			ind.crowd = contrib[i]
		}
	}
}

func stats(gen int, pop []*Individual) GenStats {
	s := GenStats{Generation: gen}
	for _, ind := range pop {
		if !ind.Feasible() {
			continue
		}
		s.FeasibleCount++
		if ind.rank == 0 {
			s.FrontSize++
			s.FrontObjs = append(s.FrontObjs, ind.Objs)
		}
		if s.BestObjs == nil {
			s.BestObjs = append([]float64(nil), ind.Objs...)
		} else {
			for i, v := range ind.Objs {
				s.BestObjs[i] = math.Min(s.BestObjs[i], v)
			}
		}
	}
	return s
}

// Population is the result of a run.
type Population struct {
	Individuals []*Individual
}

// ParetoFront returns the feasible first-front individuals,
// de-duplicated by genome key.
func (p *Population) ParetoFront() []*Individual {
	var feasible []*Individual
	for _, ind := range p.Individuals {
		if ind.Feasible() {
			feasible = append(feasible, ind)
		}
	}
	if len(feasible) == 0 {
		return nil
	}
	objs := make([][]float64, len(feasible))
	for i, ind := range feasible {
		objs[i] = ind.Objs
	}
	var front []*Individual
	seen := map[string]bool{}
	for _, i := range pareto.NonDominated(objs) {
		key := feasible[i].M.Key()
		if !seen[key] {
			seen[key] = true
			front = append(front, feasible[i])
		}
	}
	return front
}
