package obs

import (
	"context"
	"io"
	"log/slog"
)

// Handler wraps a slog.Handler and stamps every record whose context
// carries a trace ID with a trace_id attribute, so one grep over the
// service log reconstructs a request's whole story. Share one wrapped
// handler across the process — server, registry, commands — and every
// layer's lines correlate for free.
type Handler struct {
	inner slog.Handler
}

// NewHandler wraps inner with trace stamping. Idempotent: an inner
// that already stamps is returned unchanged, so a command logger
// passed into the server is not double-wrapped (which would emit
// trace_id twice per line).
func NewHandler(inner slog.Handler) *Handler {
	if h, ok := inner.(*Handler); ok {
		return h
	}
	return &Handler{inner: inner}
}

// Enabled defers to the wrapped handler.
func (h *Handler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle appends trace_id from ctx (when present) and delegates.
func (h *Handler) Handle(ctx context.Context, r slog.Record) error {
	if id := TraceIDFrom(ctx); id != "" {
		r.AddAttrs(slog.String("trace_id", string(id)))
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs wraps the delegate's WithAttrs result.
func (h *Handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &Handler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup wraps the delegate's WithGroup result.
func (h *Handler) WithGroup(name string) slog.Handler {
	return &Handler{inner: h.inner.WithGroup(name)}
}

// NewLogger builds the stack's shared logger shape: a text handler on
// w, wrapped with trace stamping. Commands use it so their lines
// carry the same trace_id attribute the server's do.
func NewLogger(w io.Writer) *slog.Logger {
	return slog.New(NewHandler(slog.NewTextHandler(w, nil)))
}
