package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestTraceIDValidation(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"0123456789abcdef", true},
		{"ffffffffffffffff", true},
		{"", false},
		{"0123456789abcde", false},   // short
		{"0123456789abcdef0", false}, // long
		{"0123456789ABCDEF", false},  // uppercase
		{"0123456789abcdeg", false},  // non-hex
		{"0123 56789abcdef", false},  // space
	}
	for _, c := range cases {
		id, err := ParseTraceID(c.in)
		if c.ok && (err != nil || id != TraceID(c.in)) {
			t.Errorf("ParseTraceID(%q) = %q, %v; want ok", c.in, id, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseTraceID(%q) accepted; want error", c.in)
		}
	}
}

func TestMinterDeterministicAndDistinct(t *testing.T) {
	a, b := NewMinter(42), NewMinter(42)
	seen := make(map[TraceID]bool)
	for i := 0; i < 100; i++ {
		ida, idb := a.Mint(), b.Mint()
		if ida != idb {
			t.Fatalf("mint %d: same seed diverged: %q vs %q", i, ida, idb)
		}
		if !ida.IsValid() {
			t.Fatalf("mint %d: invalid ID %q", i, ida)
		}
		if seen[ida] {
			t.Fatalf("mint %d: duplicate ID %q", i, ida)
		}
		seen[ida] = true
	}
	if other := NewMinter(43).Mint(); seen[other] {
		t.Errorf("different seed repeated an ID: %q", other)
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if id := TraceIDFrom(ctx); id != "" {
		t.Fatalf("empty context has trace ID %q", id)
	}
	want := NewMinter(1).Mint()
	ctx = WithTrace(ctx, want)
	if got := TraceIDFrom(ctx); got != want {
		t.Fatalf("TraceIDFrom = %q, want %q", got, want)
	}
}

// fakeClock ticks a fixed step per reading, so span durations are
// exact and the test needs no sleeping.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func TestTraceSpans(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	tr := NewTrace("0123456789abcdef", clk.now)
	if tr.ID() != "0123456789abcdef" {
		t.Fatalf("ID = %q", tr.ID())
	}
	end := tr.Stage(StageFilter)
	end()
	func() {
		defer tr.Stage(StageScore)()
	}()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	for i, name := range []string{StageFilter, StageScore} {
		if spans[i].Name != name {
			t.Errorf("span %d = %q, want %q", i, spans[i].Name, name)
		}
		if spans[i].Seconds != 0.001 {
			t.Errorf("span %q = %v s, want 0.001", name, spans[i].Seconds)
		}
	}
	if s, ok := tr.Seconds(StageScore); !ok || s != 0.001 {
		t.Errorf("Seconds(score) = %v, %v", s, ok)
	}
	if _, ok := tr.Seconds(StageAgent); ok {
		t.Error("Seconds(agent_update) found a span that never ran")
	}
}

func TestNewTraceNilClock(t *testing.T) {
	tr := NewTrace("0123456789abcdef", nil)
	tr.Stage(StageFilter)()
	if s, ok := tr.Seconds(StageFilter); !ok || s < 0 {
		t.Errorf("real-clock span = %v, %v", s, ok)
	}
}

func TestHandlerStampsTraceID(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf)

	ctx := WithTrace(context.Background(), "00000000deadbeef")
	log.InfoContext(ctx, "traced line", "k", "v")
	log.Info("untraced line")

	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "trace_id=00000000deadbeef") {
		t.Errorf("traced line missing trace_id: %s", lines[0])
	}
	if strings.Contains(lines[1], "trace_id") {
		t.Errorf("untraced line has trace_id: %s", lines[1])
	}
}

func TestHandlerWithAttrsAndGroupKeepStamping(t *testing.T) {
	var buf bytes.Buffer
	base := NewHandler(slog.NewTextHandler(&buf, nil))
	log := slog.New(base).With("svc", "fleet").WithGroup("req")

	ctx := WithTrace(context.Background(), "00000000deadbeef")
	log.InfoContext(ctx, "line", "k", "v")
	if out := buf.String(); !strings.Contains(out, "trace_id=00000000deadbeef") ||
		!strings.Contains(out, "svc=fleet") {
		t.Errorf("derived logger lost stamping or attrs: %s", out)
	}
	if !base.Enabled(context.Background(), slog.LevelInfo) {
		t.Error("Enabled(Info) = false")
	}
}

func TestNewHandlerIdempotent(t *testing.T) {
	var b strings.Builder
	h := NewHandler(slog.NewTextHandler(&b, nil))
	if NewHandler(h) != h {
		t.Error("NewHandler re-wrapped an already-stamping handler")
	}
	// The real-world shape: a command's NewLogger handler passed back
	// into NewHandler by the server must stamp trace_id exactly once.
	log := slog.New(NewHandler(NewLogger(&b).Handler()))
	ctx := WithTrace(context.Background(), TraceID("00000000deadbeef"))
	log.InfoContext(ctx, "request")
	if got := strings.Count(b.String(), "trace_id="); got != 1 {
		t.Errorf("trace_id stamped %d times, want exactly 1: %s", got, b.String())
	}
}
