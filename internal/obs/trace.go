package obs

// Stage names of the decide path, in execution order. The runtime
// layer reports spans under these names; the fleet layer feeds them
// into the clr_decision_stage_seconds histograms.
const (
	// StageFilter is the feasibility filter over the stored database.
	StageFilter = "filter"
	// StageScore is the uRA/AuRA (or hypervolume) scoring pass.
	StageScore = "score"
	// StageSwitch is building the imperative reconfiguration plan.
	StageSwitch = "switch"
	// StageAgent is the AuRA agent's online value update.
	StageAgent = "agent_update"
)

// Stages lists the decide-path stage names in execution order.
func Stages() []string {
	return []string{StageFilter, StageScore, StageSwitch, StageAgent}
}

// Span is one timed stage of a trace.
type Span struct {
	// Name is the stage name (StageFilter, ...).
	Name string `json:"name"`
	// Seconds is the stage's wall-clock duration.
	Seconds float64 `json:"seconds"`
}

// Trace accumulates the spans of one decision under one trace ID. It
// is not safe for concurrent use: one trace belongs to one request,
// which runs the decide path sequentially. The zero Trace is not
// usable; build one with NewTrace.
type Trace struct {
	id    TraceID
	clock Clock
	spans []Span
}

// NewTrace opens a trace. A nil clock selects NowClock.
func NewTrace(id TraceID, clock Clock) *Trace {
	if clock == nil {
		clock = NowClock
	}
	return &Trace{id: id, clock: clock, spans: make([]Span, 0, 4)}
}

// ID returns the trace's ID.
func (t *Trace) ID() TraceID { return t.id }

// Reset discards the ended spans, keeping the ID, clock and span
// storage: a batch run can time each event on one trace instead of
// allocating one per event. The caller must have copied out any spans
// it still needs (Spans returns the trace's own storage).
func (t *Trace) Reset() { t.spans = t.spans[:0] }

// Stage opens a span and returns the closure that ends it. The
// canonical shapes are
//
//	defer t.Stage(obs.StageScore)()
//
// for a span covering the rest of the function, or
//
//	end := t.Stage(obs.StageFilter)
//	... the stage ...
//	end()
//
// for a span covering a region. Every started span must be ended —
// the tracectx analyzer flags a discarded end closure. Stage
// implements the runtime layer's StageRecorder contract.
func (t *Trace) Stage(name string) func() {
	start := t.clock()
	return func() {
		t.spans = append(t.spans, Span{
			Name:    name,
			Seconds: t.clock().Sub(start).Seconds(),
		})
	}
}

// Spans returns the ended spans in end order. The returned slice is
// the trace's own storage; callers must not retain it past the
// trace's lifetime.
func (t *Trace) Spans() []Span { return t.spans }

// Seconds returns the duration of the named stage, or 0 with false
// when the stage never ended.
func (t *Trace) Seconds(name string) (float64, bool) {
	for _, s := range t.spans {
		if s.Name == name {
			return s.Seconds, true
		}
	}
	return 0, false
}
