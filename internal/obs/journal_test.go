package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestJournalWraparound(t *testing.T) {
	cases := []struct {
		name      string
		cap       int
		appends   int
		wantLen   int
		wantFirst uint64 // Seq of the oldest retained entry
	}{
		{"empty", 4, 0, 0, 0},
		{"partial", 4, 3, 3, 1},
		{"exact", 4, 4, 4, 1},
		{"wrap by one", 4, 5, 4, 2},
		{"wrap twice", 4, 12, 4, 9},
		{"cap one", 1, 7, 1, 7},
		{"default cap", 0, 3, 3, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			j := NewJournal(c.cap)
			if c.cap > 0 && j.Cap() != c.cap {
				t.Fatalf("Cap = %d, want %d", j.Cap(), c.cap)
			}
			if c.cap <= 0 && j.Cap() != DefaultJournalCap {
				t.Fatalf("Cap = %d, want default %d", j.Cap(), DefaultJournalCap)
			}
			for i := 1; i <= c.appends; i++ {
				j.Append(&Entry{Device: "d", Seq: uint64(i)})
			}
			if j.Total() != uint64(c.appends) {
				t.Fatalf("Total = %d, want %d", j.Total(), c.appends)
			}
			got := j.Snapshot()
			if len(got) != c.wantLen {
				t.Fatalf("Snapshot len = %d, want %d", len(got), c.wantLen)
			}
			for i, e := range got {
				if want := c.wantFirst + uint64(i); e.Seq != want {
					t.Errorf("entry %d Seq = %d, want %d (append order lost)", i, e.Seq, want)
				}
			}
		})
	}
}

// TestJournalConcurrent hammers a small ring with parallel writers
// while readers snapshot continuously; under -race this proves the
// lock-free claims, and afterwards the quiesced snapshot must hold
// exactly the last Cap entries with no tears.
func TestJournalConcurrent(t *testing.T) {
	const (
		writers    = 8
		perWriter  = 500
		capacity   = 64
		readerScan = 200
	)
	j := NewJournal(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dev := fmt.Sprintf("dev-%d", w)
			for i := 1; i <= perWriter; i++ {
				j.Append(&Entry{Device: dev, Seq: uint64(i), From: w, To: i})
			}
		}(w)
	}
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for n := 0; n < readerScan; n++ {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range j.Snapshot() {
					// A torn entry would mix fields of two writers.
					if e.Device == "" || e.Seq == 0 {
						t.Error("torn or zero entry observed")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()

	if j.Total() != writers*perWriter {
		t.Fatalf("Total = %d, want %d", j.Total(), writers*perWriter)
	}
	snap := j.Snapshot()
	if len(snap) != capacity {
		t.Fatalf("quiesced snapshot len = %d, want %d", len(snap), capacity)
	}
	for _, e := range snap {
		if e.Device == "" || e.Seq == 0 || e.Seq > perWriter {
			t.Errorf("corrupt quiesced entry: %+v", e)
		}
	}
}

// TestJournalExactlyOnceUnderCap: as long as the ring never wraps,
// every append is retained exactly once — the property the obs-gate
// asserts over a soak run.
func TestJournalExactlyOnceUnderCap(t *testing.T) {
	const writers, perWriter = 4, 100
	j := NewJournal(writers * perWriter)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dev := fmt.Sprintf("dev-%d", w)
			for i := 1; i <= perWriter; i++ {
				j.Append(&Entry{Device: dev, Seq: uint64(i)})
			}
		}(w)
	}
	wg.Wait()
	counts := make(map[string]int)
	for _, e := range j.Snapshot() {
		counts[fmt.Sprintf("%s/%d", e.Device, e.Seq)]++
	}
	if len(counts) != writers*perWriter {
		t.Fatalf("retained %d distinct decisions, want %d", len(counts), writers*perWriter)
	}
	for k, n := range counts {
		if n != 1 {
			t.Errorf("decision %s retained %d times, want exactly once", k, n)
		}
	}
}
