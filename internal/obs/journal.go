package obs

import (
	"sync/atomic"
)

// Entry is one explained decision: everything needed to reconstruct
// after the fact which point was chosen and why. The wire shape is
// flat snake_case JSON, same as the v1 API.
type Entry struct {
	// TraceID correlates the entry with the request's log lines.
	TraceID TraceID `json:"trace_id"`
	// Device and Seq identify the QoS event ((device, seq) is unique
	// per real decision; degraded answers may repeat a seq).
	Device string `json:"device"`
	Seq    uint64 `json:"seq"`
	// UnixNanos is the decision instant on the journal's clock.
	UnixNanos int64 `json:"unix_nanos"`
	// From is the seed point (the configuration in force before the
	// decision); To is the chosen point.
	From int `json:"from"`
	To   int `json:"to"`
	// Reconfigured, Violated, Degraded mirror the decision outcome.
	Reconfigured bool `json:"reconfigured"`
	Violated     bool `json:"violated"`
	Degraded     bool `json:"degraded"`
	// Candidates is the feasible-point count the scorer saw;
	// Infeasible is how many stored points the filter rejected.
	Candidates int `json:"candidates"`
	Infeasible int `json:"infeasible"`
	// Score is the chosen point's selection score (RET for the RET
	// policy, swept area for hypervolume; 0 when no scoring ran).
	Score float64 `json:"score"`
	// DRCMs is the transition's total reconfiguration cost.
	DRCMs float64 `json:"drc_ms"`
	// DBVersion is the design-point database version the decision was
	// scored against (0 for the design-time original). Point IDs in
	// From/To are only meaningful relative to this version.
	DBVersion uint64 `json:"db_version,omitempty"`
	// SpecSMaxMs and SpecFMin record the QoS specification the event
	// carried — the observed (S_SPEC, F_SPEC) sample the Continuous-ReD
	// worker folds into its empirical event distribution.
	SpecSMaxMs float64 `json:"spec_s_max_ms,omitempty"`
	SpecFMin   float64 `json:"spec_f_min,omitempty"`
	// VTVersion is the cohort value-table version the device's agent
	// was last seeded from when this decision was scored (0: never
	// seeded — per-device learning only, or uRA with no agent at all).
	VTVersion uint64 `json:"vt_version,omitempty"`
	// Stages are the decide path's per-stage latencies.
	Stages []Span `json:"stages,omitempty"`
}

// DefaultJournalCap is the per-shard ring capacity when the caller
// does not choose one: large enough that a soak's full decision
// history fits, small enough to be negligible memory per shard.
const DefaultJournalCap = 4096

// Journal is a fixed-capacity decision ring with lock-free reads and
// writes: an appender claims a slot with one atomic add and publishes
// an immutable *Entry with one atomic store; readers only load. When
// the ring wraps, the oldest entries are overwritten — the journal is
// a flight recorder, not a durable log. A Snapshot taken while
// writers are active sees each slot atomically (never a torn entry)
// but may straddle a wrap; quiesced, it is exactly the last
// min(Total, Cap) entries in append order.
type Journal struct {
	slots []atomic.Pointer[Entry]
	next  atomic.Uint64
}

// NewJournal builds a journal with the given capacity (<= 0 selects
// DefaultJournalCap).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{slots: make([]atomic.Pointer[Entry], capacity)}
}

// Cap returns the ring capacity.
func (j *Journal) Cap() int { return len(j.slots) }

// Total returns how many entries were ever appended (not how many
// are retained; retained is min(Total, Cap)).
func (j *Journal) Total() uint64 { return j.next.Load() }

// Append publishes the entry. The journal owns e from here on; the
// caller must not mutate it afterwards.
func (j *Journal) Append(e *Entry) {
	n := j.next.Add(1) - 1
	j.slots[n%uint64(len(j.slots))].Store(e)
}

// Snapshot copies the retained entries, oldest first. It never
// blocks writers.
func (j *Journal) Snapshot() []Entry {
	total := j.next.Load()
	n := total
	if n > uint64(len(j.slots)) {
		n = uint64(len(j.slots))
	}
	out := make([]Entry, 0, n)
	start := total - n
	for i := uint64(0); i < n; i++ {
		if e := j.slots[(start+i)%uint64(len(j.slots))].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}
