// Package obs is the fleet's observability substrate: request trace
// IDs, per-stage decision spans, a structured decision journal, and a
// log/slog handler that stamps every log line with the trace it
// belongs to. It is deliberately standard-library-only, like the rest
// of the serving stack, and deliberately deterministic-friendly: time
// comes from an injected clock and trace IDs from a seeded minter, so
// the chaos soak can run with tracing on and still assert
// byte-identical decisions against a fault-free reference.
//
// The lifecycle is: the edge (HTTP handler, client call root, or a
// command's main) obtains a TraceID — accepted from the X-Clr-Trace-Id
// header or minted — and attaches it to the context with WithTrace.
// Everything downstream reads it with TraceIDFrom; nothing mid-stack
// mints a fresh ID (the tracectx analyzer enforces this). The decide
// path opens a Trace, times its stages through the StageRecorder
// contract, and lands one journal Entry per decision in the shard's
// ring buffer, where /debug/decisions can read it back.
package obs

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying a request's trace ID.
const TraceHeader = "X-Clr-Trace-Id"

// TraceID identifies one request end to end: 16 lowercase hex digits
// (64 bits). The zero value means "no trace".
type TraceID string

// IsValid reports whether the ID is 16 lowercase hex digits.
func (id TraceID) IsValid() bool {
	if len(id) != 16 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ParseTraceID validates a wire-format trace ID.
func ParseTraceID(s string) (TraceID, error) {
	id := TraceID(s)
	if !id.IsValid() {
		return "", fmt.Errorf("obs: invalid trace ID %q (want 16 lowercase hex digits)", s)
	}
	return id, nil
}

// ctxKey keys the trace ID in a context.
type ctxKey struct{}

// WithTrace returns a context carrying the trace ID. Call it at the
// edge only — the HTTP middleware, a client call root, or main — and
// thread the context everywhere else.
func WithTrace(ctx context.Context, id TraceID) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// TraceIDFrom returns the context's trace ID, or "" when the context
// carries none.
func TraceIDFrom(ctx context.Context) TraceID {
	id, _ := ctx.Value(ctxKey{}).(TraceID)
	return id
}

// Minter produces trace IDs deterministically from a seed: the n-th
// ID minted from a given seed is always the same, which keeps traced
// soak runs reproducible. It is safe for concurrent use (one atomic
// add per ID).
type Minter struct {
	seed uint64
	n    atomic.Uint64
}

// NewMinter builds a minter. Seed 0 is as good as any other; two
// minters with the same seed emit the same ID sequence.
func NewMinter(seed int64) *Minter {
	return &Minter{seed: splitmix(uint64(seed) ^ 0x9e3779b97f4a7c15)}
}

// Mint returns the next trace ID in the seeded sequence.
func (m *Minter) Mint() TraceID {
	n := m.n.Add(1)
	return TraceID(fmt.Sprintf("%016x", splitmix(m.seed+n*0xbf58476d1ce4e5b9)))
}

// splitmix is the splitmix64 finaliser: a cheap, well-distributed
// mixing of a counter into 64 bits.
func splitmix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Clock supplies the current time; injected so traces built inside
// deterministic tests can use a fake clock. NowClock is the
// production default.
type Clock func() time.Time

// NowClock reads the wall clock.
func NowClock() time.Time { return time.Now() }
