package mapping

// Concrete reconfiguration plans. The simulator only needs the scalar
// dRC of a transition, but a deployed run-time manager must hand the
// platform an imperative action list: which binaries to copy where,
// which bitstreams to stream into which PRRs, which tasks merely
// change their reliability configuration or schedule position. Diff
// derives that list from two configurations, consistent with the cost
// model of DRC (Section 3.5).

import (
	"fmt"
	"sort"
)

// ActionKind classifies one reconfiguration step.
type ActionKind int

const (
	// ActionCopyBinary copies a task's software binary into a PE's
	// local memory (Section 3.5 modes 3/4).
	ActionCopyBinary ActionKind = iota
	// ActionLoadBitstream streams an accelerator circuit into a PRR.
	ActionLoadBitstream
	// ActionSetCLR re-parameterises a task's per-layer reliability
	// methods (free: no data movement).
	ActionSetCLR
	// ActionReorder changes a task's schedule priority (free).
	ActionReorder
)

func (k ActionKind) String() string {
	switch k {
	case ActionCopyBinary:
		return "copy-binary"
	case ActionLoadBitstream:
		return "load-bitstream"
	case ActionSetCLR:
		return "set-clr"
	case ActionReorder:
		return "reorder"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is one imperative reconfiguration step.
type Action struct {
	// Kind selects the step type.
	Kind ActionKind
	// Task is the affected task (-1 for pure bitstream loads).
	Task int
	// PE is the destination PE for binary copies and the PRR-backed
	// PE for bitstream loads; -1 otherwise.
	PE int
	// PRR is the reconfigured region for bitstream loads; -1 otherwise.
	PRR int
	// Bitstream is the circuit ID for bitstream loads; -1 otherwise.
	Bitstream int
	// CostMs is the step's contribution to dRC (0 for free steps).
	CostMs float64
}

// String renders the action for logs.
func (a Action) String() string {
	switch a.Kind {
	case ActionCopyBinary:
		return fmt.Sprintf("copy-binary task=%d -> PE%d (%.3f ms)", a.Task, a.PE, a.CostMs)
	case ActionLoadBitstream:
		return fmt.Sprintf("load-bitstream %d -> PRR%d (%.3f ms)", a.Bitstream, a.PRR, a.CostMs)
	case ActionSetCLR:
		return fmt.Sprintf("set-clr task=%d", a.Task)
	case ActionReorder:
		return fmt.Sprintf("reorder task=%d", a.Task)
	default:
		return a.Kind.String()
	}
}

// Diff returns the imperative plan that takes the system from
// configuration `from` to configuration `to`, ordered bitstream loads
// first (longest latency, so they overlap with binary copies on real
// hardware), then binary copies, then the free steps. The sum of the
// actions' CostMs equals DRC(from, to).Total(). Plans sit on the
// decision hot path of deployed managers, so the resident-set scan
// reuses pooled scratch and the returned slice is sized exactly.
func (s *Space) Diff(from, to *Mapping) []Action {
	nPRR := len(s.Platform.PRRs)
	sc := drcScratchPool.Get().(*drcScratch)
	sc.reset(nPRR)
	s.residentInto(from, sc.from)
	s.residentInto(to, sc.to)

	// Size the plan before building it.
	nBits, nCopies, nFrees := 0, 0, 0
	for prr := 0; prr < nPRR; prr++ {
		for _, bs := range sc.to[prr] {
			if !containsInt(sc.from[prr], bs) {
				nBits++
			}
		}
	}
	for t := range to.Genes {
		gf, gt := from.Genes[t], to.Genes[t]
		if (gf.PE != gt.PE || gf.Impl != gt.Impl) && s.Graph.Tasks[t].Impls[gt.Impl].BitstreamID < 0 {
			nCopies++
		}
		if gf.CLR != gt.CLR {
			nFrees++
		}
		if gf.Prio != gt.Prio {
			nFrees++
		}
	}
	if nBits+nCopies+nFrees == 0 {
		drcScratchPool.Put(sc)
		return nil
	}
	actions := make([]Action, 0, nBits+nCopies+nFrees)

	// Bitstream loads: newly demanded circuits per PRR, in circuit-ID
	// order within each region.
	for prr := 0; prr < nPRR; prr++ {
		sc.bits = sc.bits[:0]
		for _, bs := range sc.to[prr] {
			if !containsInt(sc.from[prr], bs) {
				sc.bits = append(sc.bits, bs)
			}
		}
		sort.Ints(sc.bits)
		for _, bs := range sc.bits {
			actions = append(actions, Action{
				Kind:      ActionLoadBitstream,
				Task:      -1,
				PE:        prrPE(s, prr),
				PRR:       prr,
				Bitstream: bs,
				CostMs:    s.Platform.BitstreamLoadMs(s.Platform.PRRs[prr].BitstreamKB),
			})
		}
	}
	drcScratchPool.Put(sc)

	// Binary copies, then the free per-task steps.
	for t := range to.Genes {
		gf, gt := from.Genes[t], to.Genes[t]
		if gf.PE == gt.PE && gf.Impl == gt.Impl {
			continue
		}
		im := &s.Graph.Tasks[t].Impls[gt.Impl]
		if im.BitstreamID < 0 {
			actions = append(actions, Action{
				Kind:      ActionCopyBinary,
				Task:      t,
				PE:        gt.PE,
				PRR:       -1,
				Bitstream: -1,
				CostMs:    s.Platform.BinaryMigrationMs(im.BinaryKB),
			})
		}
	}
	for t := range to.Genes {
		gf, gt := from.Genes[t], to.Genes[t]
		if gf.CLR != gt.CLR {
			actions = append(actions, Action{Kind: ActionSetCLR, Task: t, PE: -1, PRR: -1, Bitstream: -1})
		}
		if gf.Prio != gt.Prio {
			actions = append(actions, Action{Kind: ActionReorder, Task: t, PE: -1, PRR: -1, Bitstream: -1})
		}
	}
	return actions
}

// prrPE returns the PE backed by the given PRR, or -1.
func prrPE(s *Space, prr int) int {
	for _, pe := range s.Platform.PEs {
		if pe.PRR == prr {
			return pe.ID
		}
	}
	return -1
}

// PlanCost sums the actions' costs.
func PlanCost(actions []Action) float64 {
	total := 0.0
	for _, a := range actions {
		total += a.CostMs
	}
	return total
}
