// Package mapping defines the CLR-integrated task-mapping
// configuration X_i of the paper's Section 4.1 — the decision vector
// the design-time GA evolves and the run-time manager switches between
// — together with the reconfiguration model of Section 3.5 that prices
// the transition between two configurations (dRC).
//
// For every task the configuration fixes Psi_t = M_t x C_t:
//
//	M_t = (PE binding, implementation choice, schedule position)
//	C_t = (HW method, SSW method, ASW method)
//
// Reconfiguration cost follows the paper's locality argument: each PE
// has enough local memory for the binaries of the tasks mapped on it,
// so re-ordering tasks on a PE or changing a CLR configuration is
// free; re-binding a task to a new PE copies its implementation binary
// across the interconnect, and changing the accelerator hosted by a
// partially reconfigurable region streams a new bitstream through the
// configuration port.
package mapping

import (
	"fmt"
	"strconv"

	"clrdse/internal/platform"
	"clrdse/internal/relmodel"
	"clrdse/internal/rng"
	"clrdse/internal/taskgraph"
)

// Gene is the per-task slice of a configuration.
type Gene struct {
	// PE is the ID of the processing element the task is bound to.
	PE int
	// Impl indexes the task's implementation set; the implementation's
	// PE type must match the bound PE's type.
	Impl int
	// CLR selects the per-layer reliability methods for the task.
	CLR relmodel.Config
	// Prio is the task's list-scheduling priority (higher runs
	// earlier among ready tasks); it encodes the ordering part Q_t of
	// the mapping space.
	Prio int
}

// Mapping is one complete CLR-integrated task-mapping configuration
// X_i: one gene per task, indexed by task ID.
type Mapping struct {
	Genes []Gene
}

// Clone returns a deep copy.
func (m *Mapping) Clone() *Mapping {
	return &Mapping{Genes: append([]Gene(nil), m.Genes...)}
}

// Key returns a canonical string identifying the mapping, used to
// de-duplicate design points. Priorities are included because they
// change the schedule and therefore the metrics. Keys sit on the
// evaluation-memoisation hot path, so the rendering avoids fmt.
func (m *Mapping) Key() string {
	b := make([]byte, 0, 16*len(m.Genes))
	for i := range m.Genes {
		g := &m.Genes[i]
		b = strconv.AppendInt(b, int64(g.PE), 10)
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(g.Impl), 10)
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(g.CLR.HW), 10)
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(g.CLR.SSW), 10)
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(g.CLR.ASW), 10)
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(g.Prio), 10)
		b = append(b, '|')
	}
	return string(b)
}

// Equal reports whether two mappings are identical gene-for-gene.
func (m *Mapping) Equal(o *Mapping) bool {
	if len(m.Genes) != len(o.Genes) {
		return false
	}
	for i := range m.Genes {
		if m.Genes[i] != o.Genes[i] {
			return false
		}
	}
	return true
}

// Space bundles the problem instance a mapping belongs to; it is
// shared by validation, random generation, repair and costing.
type Space struct {
	Graph     *taskgraph.Graph
	Platform  *platform.Platform
	Catalogue *relmodel.Catalogue
}

// Validate checks that the mapping is executable: one gene per task,
// PE and implementation indices in range, implementation targets the
// bound PE's type, and the CLR configuration is within the catalogue.
func (s *Space) Validate(m *Mapping) error {
	if len(m.Genes) != s.Graph.NumTasks() {
		return fmt.Errorf("mapping: %d genes for %d tasks", len(m.Genes), s.Graph.NumTasks())
	}
	for t, g := range m.Genes {
		if g.PE < 0 || g.PE >= s.Platform.NumPEs() {
			return fmt.Errorf("mapping: task %d bound to unknown PE %d", t, g.PE)
		}
		impls := s.Graph.Tasks[t].Impls
		if g.Impl < 0 || g.Impl >= len(impls) {
			return fmt.Errorf("mapping: task %d uses unknown impl %d", t, g.Impl)
		}
		if impls[g.Impl].PEType != s.Platform.PEs[g.PE].Type {
			return fmt.Errorf("mapping: task %d impl %d targets PE type %d but PE %d is type %d",
				t, g.Impl, impls[g.Impl].PEType, g.PE, s.Platform.PEs[g.PE].Type)
		}
		if !g.CLR.Valid(s.Catalogue) {
			return fmt.Errorf("mapping: task %d has CLR config %+v outside the catalogue", t, g.CLR)
		}
	}
	return nil
}

// CompatiblePEs returns the PE IDs on which the given implementation
// of the given task can run.
func (s *Space) CompatiblePEs(task, impl int) []int {
	return s.Platform.PEsOfType(s.Graph.Tasks[task].Impls[impl].PEType)
}

// RunnableImpls returns the indices of the task's implementations that
// have at least one compatible PE on the platform. On a degraded
// platform (a failed PE removing the last instance of a type) some
// implementations become unrunnable and must be skipped.
func (s *Space) RunnableImpls(task int) []int {
	var out []int
	for i := range s.Graph.Tasks[task].Impls {
		if len(s.CompatiblePEs(task, i)) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// Check reports whether every task has at least one runnable
// implementation, i.e. whether any valid mapping exists at all.
func (s *Space) Check() error {
	for t := range s.Graph.Tasks {
		if len(s.RunnableImpls(t)) == 0 {
			return fmt.Errorf("mapping: task %d has no implementation runnable on platform %q", t, s.Platform.Name)
		}
	}
	return nil
}

// Random generates a uniformly random valid mapping: for each task it
// picks an implementation, then a PE of the matching type, a CLR
// configuration and a priority.
func (s *Space) Random(r *rng.Source) *Mapping {
	n := s.Graph.NumTasks()
	m := &Mapping{Genes: make([]Gene, n)}
	for t := 0; t < n; t++ {
		s.randomizeGene(m, t, r)
		m.Genes[t].Prio = r.Intn(4 * n)
	}
	return m
}

// randomizeGene assigns a random valid (impl, PE, CLR) triple to task
// t, leaving Prio untouched. It panics if the task has no runnable
// implementation; callers gate on Check.
func (s *Space) randomizeGene(m *Mapping, t int, r *rng.Source) {
	runnable := s.RunnableImpls(t)
	if len(runnable) == 0 {
		panic(fmt.Sprintf("mapping: task %d has no runnable implementation (call Space.Check first)", t))
	}
	impl := runnable[r.Intn(len(runnable))]
	pes := s.CompatiblePEs(t, impl)
	m.Genes[t].Impl = impl
	m.Genes[t].PE = pes[r.Intn(len(pes))]
	m.Genes[t].CLR = relmodel.ConfigFromIndex(r.Intn(s.Catalogue.NumConfigs()), s.Catalogue)
}

// Repair makes a possibly-invalid mapping valid in place with minimal
// disturbance: out-of-range indices are clamped, and an impl/PE type
// mismatch is resolved by re-binding the task to a random compatible
// PE (keeping the implementation choice, which crossover meant to
// preserve).
func (s *Space) Repair(m *Mapping, r *rng.Source) {
	for t := range m.Genes {
		g := &m.Genes[t]
		impls := s.Graph.Tasks[t].Impls
		if g.Impl < 0 || g.Impl >= len(impls) || len(s.CompatiblePEs(t, g.Impl)) == 0 {
			runnable := s.RunnableImpls(t)
			g.Impl = runnable[r.Intn(len(runnable))]
		}
		if g.CLR.HW < 0 || g.CLR.HW >= len(s.Catalogue.HW) {
			g.CLR.HW = r.Intn(len(s.Catalogue.HW))
		}
		if g.CLR.SSW < 0 || g.CLR.SSW >= len(s.Catalogue.SSW) {
			g.CLR.SSW = r.Intn(len(s.Catalogue.SSW))
		}
		if g.CLR.ASW < 0 || g.CLR.ASW >= len(s.Catalogue.ASW) {
			g.CLR.ASW = r.Intn(len(s.Catalogue.ASW))
		}
		if g.PE < 0 || g.PE >= s.Platform.NumPEs() ||
			impls[g.Impl].PEType != s.Platform.PEs[g.PE].Type {
			pes := s.CompatiblePEs(t, g.Impl)
			g.PE = pes[r.Intn(len(pes))]
		}
		if g.Prio < 0 {
			g.Prio = -g.Prio
		}
	}
}
