package mapping

import (
	"testing"

	"clrdse/internal/relmodel"
	"clrdse/internal/rng"
)

func TestHeuristicsProduceValidMappings(t *testing.T) {
	s := testSpace(t, 35)
	env := relmodel.DefaultEnv()
	for name, m := range map[string]*Mapping{
		"eft":       s.HeuristicEFT(env),
		"minenergy": s.HeuristicMinEnergy(env),
		"maxrel":    s.HeuristicMaxRel(env),
	} {
		if err := s.Validate(m); err != nil {
			t.Errorf("%s heuristic invalid: %v", name, err)
		}
	}
}

func TestHeuristicsDeterministic(t *testing.T) {
	s := testSpace(t, 20)
	env := relmodel.DefaultEnv()
	if !s.HeuristicEFT(env).Equal(s.HeuristicEFT(env)) {
		t.Error("EFT heuristic not deterministic")
	}
	if !s.HeuristicMinEnergy(env).Equal(s.HeuristicMinEnergy(env)) {
		t.Error("min-energy heuristic not deterministic")
	}
}

func TestHeuristicMinEnergyUnprotected(t *testing.T) {
	s := testSpace(t, 15)
	m := s.HeuristicMinEnergy(relmodel.DefaultEnv())
	for tk, g := range m.Genes {
		if g.CLR != (relmodel.Config{}) {
			t.Errorf("task %d carries protection %+v in min-energy heuristic", tk, g.CLR)
		}
	}
}

func TestHeuristicMaxRelFullyProtected(t *testing.T) {
	s := testSpace(t, 15)
	m := s.HeuristicMaxRel(relmodel.DefaultEnv())
	want := relmodel.Config{
		HW:  len(s.Catalogue.HW) - 1,
		SSW: len(s.Catalogue.SSW) - 1,
		ASW: len(s.Catalogue.ASW) - 1,
	}
	for tk, g := range m.Genes {
		if g.CLR != want {
			t.Errorf("task %d CLR = %+v, want strongest %+v", tk, g.CLR, want)
		}
	}
}

func TestHeuristicMinEnergyBeatsRandomOnEnergy(t *testing.T) {
	s := testSpace(t, 30)
	env := relmodel.DefaultEnv()
	taskEnergy := func(m *Mapping) float64 {
		sum := 0.0
		for tk, g := range m.Genes {
			im := &s.Graph.Tasks[tk].Impls[g.Impl]
			pt := s.Platform.TypeOf(g.PE)
			met := relmodel.Evaluate(im, pt, g.CLR, s.Catalogue, env)
			sum += met.AvgExTMs * met.PowerW
		}
		return sum
	}
	h := taskEnergy(s.HeuristicMinEnergy(env))
	r := rng.New(3)
	for i := 0; i < 30; i++ {
		if got := taskEnergy(s.Random(r)); got < h {
			t.Fatalf("random mapping %d beat min-energy heuristic: %v < %v", i, got, h)
		}
	}
}

func TestHeuristicMaxRelBeatsRandomOnError(t *testing.T) {
	s := testSpace(t, 25)
	env := relmodel.DefaultEnv()
	worstErr := func(m *Mapping) float64 {
		worst := 0.0
		for tk, g := range m.Genes {
			im := &s.Graph.Tasks[tk].Impls[g.Impl]
			pt := s.Platform.TypeOf(g.PE)
			met := relmodel.Evaluate(im, pt, g.CLR, s.Catalogue, env)
			if met.ErrProb > worst {
				worst = met.ErrProb
			}
		}
		return worst
	}
	h := worstErr(s.HeuristicMaxRel(env))
	r := rng.New(4)
	for i := 0; i < 30; i++ {
		if got := worstErr(s.Random(r)); got < h {
			t.Fatalf("random mapping %d beat max-rel heuristic: %v < %v", i, got, h)
		}
	}
}

func TestHeuristicEFTRespectsAvailability(t *testing.T) {
	// EFT must never pick an unrunnable implementation.
	s := testSpace(t, 40)
	m := s.HeuristicEFT(relmodel.DefaultEnv())
	for tk, g := range m.Genes {
		ok := false
		for _, impl := range s.RunnableImpls(tk) {
			if impl == g.Impl {
				ok = true
			}
		}
		if !ok {
			t.Errorf("task %d uses unrunnable impl %d", tk, g.Impl)
		}
	}
}

func TestHeuristicEFTBeatsRandomOnMakespan(t *testing.T) {
	// EFT greedily minimises finish times, so its serial-estimate-free
	// schedule should beat random mappings' makespans. Compare via the
	// same greedy finish computation it optimises (avoid importing the
	// scheduler here): total finish of the last task in topo order.
	s := testSpace(t, 30)
	env := relmodel.DefaultEnv()
	eft := s.HeuristicEFT(env)
	finish := func(m *Mapping) float64 {
		order, err := s.Graph.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		peAvail := make([]float64, s.Platform.NumPEs())
		done := make([]float64, s.Graph.NumTasks())
		preds := s.Graph.Preds()
		worst := 0.0
		for _, tk := range order {
			g := m.Genes[tk]
			ready := 0.0
			for _, eid := range preds[tk] {
				e := s.Graph.Edges[eid]
				arr := done[e.Src]
				if m.Genes[e.Src].PE != g.PE {
					arr += e.CommTimeMs
				}
				if arr > ready {
					ready = arr
				}
			}
			if peAvail[g.PE] > ready {
				ready = peAvail[g.PE]
			}
			im := &s.Graph.Tasks[tk].Impls[g.Impl]
			met := relmodel.Evaluate(im, s.Platform.TypeOf(g.PE), g.CLR, s.Catalogue, env)
			done[tk] = ready + met.AvgExTMs
			peAvail[g.PE] = done[tk]
			if done[tk] > worst {
				worst = done[tk]
			}
		}
		return worst
	}
	h := finish(eft)
	r := rng.New(8)
	beaten := 0
	for i := 0; i < 20; i++ {
		if finish(s.Random(r)) > h {
			beaten++
		}
	}
	if beaten < 18 {
		t.Errorf("EFT beat only %d/20 random mappings on makespan", beaten)
	}
}
