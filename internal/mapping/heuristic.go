package mapping

// Constructive heuristics: deterministic initial mappings in the
// classic task-mapping tradition, used to seed the GA population so
// the evolutionary search starts from sensible corners of the space
// instead of purely random genomes.
//
//   - HeuristicEFT        — earliest-finish-time list mapping (greedy
//     makespan), no CLR protection.
//   - HeuristicMinEnergy  — every task on its cheapest (impl, PE) by
//     energy, no CLR protection.
//   - HeuristicMaxRel     — every task on its best-masking PE with the
//     strongest CLR configuration.
//
// All three return valid mappings; priorities encode the topological
// order so the list scheduler reproduces the construction order.

import (
	"math"

	"clrdse/internal/relmodel"
)

// HeuristicEFT builds an earliest-finish-time mapping: tasks in
// topological order greedily pick the (implementation, PE) pair that
// finishes soonest given current PE availability and cross-PE
// communication delays. CLR layers stay at "none".
func (s *Space) HeuristicEFT(env relmodel.Env) *Mapping {
	g := s.Graph
	n := g.NumTasks()
	m := &Mapping{Genes: make([]Gene, n)}
	order, err := g.TopoOrder()
	if err != nil {
		panic("mapping: HeuristicEFT on cyclic graph: " + err.Error())
	}
	peAvail := make([]float64, s.Platform.NumPEs())
	finish := make([]float64, n)
	preds := g.Preds()

	for rank, t := range order {
		bestPE, bestImpl := -1, -1
		bestFinish := math.Inf(1)
		for _, impl := range s.RunnableImpls(t) {
			im := &g.Tasks[t].Impls[impl]
			for _, pe := range s.CompatiblePEs(t, impl) {
				ready := 0.0
				for _, eid := range preds[t] {
					e := g.Edges[eid]
					arrive := finish[e.Src]
					if m.Genes[e.Src].PE != pe {
						arrive += e.CommTimeMs
					}
					ready = math.Max(ready, arrive)
				}
				start := math.Max(ready, peAvail[pe])
				pt := s.Platform.TypeOf(pe)
				met := relmodel.Evaluate(im, pt, relmodel.Config{}, s.Catalogue, env)
				if f := start + met.AvgExTMs; f < bestFinish {
					bestFinish, bestPE, bestImpl = f, pe, impl
				}
			}
		}
		m.Genes[t] = Gene{PE: bestPE, Impl: bestImpl, Prio: n - rank}
		finish[t] = bestFinish
		peAvail[bestPE] = bestFinish
	}
	return m
}

// HeuristicMinEnergy maps every task to its lowest-energy
// (implementation, PE-type) option with no CLR protection; among PEs
// of the chosen type, load is balanced round-robin by task ID.
func (s *Space) HeuristicMinEnergy(env relmodel.Env) *Mapping {
	return s.greedyPerTask(env, func(met relmodel.TaskMetrics) float64 {
		return met.AvgExTMs * met.PowerW
	}, relmodel.Config{})
}

// HeuristicMaxRel maps every task to its lowest-error option under the
// catalogue's strongest CLR configuration (last method of each layer).
func (s *Space) HeuristicMaxRel(env relmodel.Env) *Mapping {
	strongest := relmodel.Config{
		HW:  len(s.Catalogue.HW) - 1,
		SSW: len(s.Catalogue.SSW) - 1,
		ASW: len(s.Catalogue.ASW) - 1,
	}
	return s.greedyPerTask(env, func(met relmodel.TaskMetrics) float64 {
		return met.ErrProb
	}, strongest)
}

// greedyPerTask scores every (impl, PE) option of every task with the
// given cost function under the given CLR configuration and picks the
// minimum, distributing ties and same-type PEs by task index.
func (s *Space) greedyPerTask(env relmodel.Env, cost func(relmodel.TaskMetrics) float64, cfg relmodel.Config) *Mapping {
	g := s.Graph
	n := g.NumTasks()
	m := &Mapping{Genes: make([]Gene, n)}
	for t := 0; t < n; t++ {
		bestImpl, bestType := -1, -1
		bestCost := math.Inf(1)
		for _, impl := range s.RunnableImpls(t) {
			im := &g.Tasks[t].Impls[impl]
			pt := &s.Platform.Types[im.PEType]
			met := relmodel.Evaluate(im, pt, cfg, s.Catalogue, env)
			if c := cost(met); c < bestCost {
				bestCost, bestImpl, bestType = c, impl, im.PEType
			}
		}
		pes := s.Platform.PEsOfType(bestType)
		m.Genes[t] = Gene{
			PE:   pes[t%len(pes)],
			Impl: bestImpl,
			CLR:  cfg,
			Prio: n - t,
		}
	}
	return m
}
