package mapping

import (
	"strings"
	"testing"
	"testing/quick"

	"clrdse/internal/platform"
	"clrdse/internal/relmodel"
	"clrdse/internal/rng"
	"clrdse/internal/taskgraph"
)

func testSpace(t *testing.T, n int) *Space {
	t.Helper()
	plat := platform.Default()
	g, err := taskgraph.Generate(taskgraph.GenParams{Seed: 11, NumTasks: n}, plat)
	if err != nil {
		t.Fatal(err)
	}
	return &Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()}
}

func TestRandomMappingsAreValid(t *testing.T) {
	s := testSpace(t, 40)
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		if err := s.Validate(s.Random(r)); err != nil {
			t.Fatalf("random mapping %d invalid: %v", i, err)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	s := testSpace(t, 20)
	a := s.Random(rng.New(5))
	b := s.Random(rng.New(5))
	if !a.Equal(b) {
		t.Error("same seed produced different mappings")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := testSpace(t, 10)
	m := s.Random(rng.New(2))
	c := m.Clone()
	c.Genes[0].PE = -99
	if m.Genes[0].PE == -99 {
		t.Error("Clone shares gene storage")
	}
	if !m.Equal(m.Clone()) {
		t.Error("Clone not equal to original")
	}
}

func TestKeyDistinguishesMappings(t *testing.T) {
	s := testSpace(t, 10)
	r := rng.New(3)
	m := s.Random(r)
	o := m.Clone()
	if m.Key() != o.Key() {
		t.Error("equal mappings have different keys")
	}
	o.Genes[4].Prio++
	if m.Key() == o.Key() {
		t.Error("priority change did not change key")
	}
}

func TestValidateRejections(t *testing.T) {
	s := testSpace(t, 10)
	r := rng.New(4)
	cases := []struct {
		name    string
		mutate  func(*Mapping)
		wantSub string
	}{
		{"gene count", func(m *Mapping) { m.Genes = m.Genes[:5] }, "genes"},
		{"bad pe", func(m *Mapping) { m.Genes[0].PE = 99 }, "unknown PE"},
		{"bad impl", func(m *Mapping) { m.Genes[0].Impl = 42 }, "unknown impl"},
		{"bad clr", func(m *Mapping) { m.Genes[0].CLR.HW = 17 }, "catalogue"},
		{"type mismatch", func(m *Mapping) {
			// Bind task 0 to a PE whose type does not match its impl.
			im := s.Graph.Tasks[0].Impls[m.Genes[0].Impl]
			for pe := 0; pe < s.Platform.NumPEs(); pe++ {
				if s.Platform.PEs[pe].Type != im.PEType {
					m.Genes[0].PE = pe
					return
				}
			}
			t.Skip("no incompatible PE available")
		}, "type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := s.Random(r)
			tc.mutate(m)
			err := s.Validate(m)
			if err == nil {
				t.Fatal("Validate accepted broken mapping")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestRepairFixesArbitraryDamage(t *testing.T) {
	s := testSpace(t, 30)
	r := rng.New(6)
	for i := 0; i < 100; i++ {
		m := s.Random(r)
		// Inflict random damage.
		for k := 0; k < 5; k++ {
			g := &m.Genes[r.Intn(len(m.Genes))]
			switch r.Intn(5) {
			case 0:
				g.PE = r.Intn(20) - 5
			case 1:
				g.Impl = r.Intn(10) - 3
			case 2:
				g.CLR.HW = r.Intn(12) - 3
			case 3:
				g.CLR.ASW = -1
			case 4:
				g.Prio = -5
			}
		}
		s.Repair(m, r)
		if err := s.Validate(m); err != nil {
			t.Fatalf("repair left mapping invalid: %v", err)
		}
	}
}

func TestRepairPreservesValidGenes(t *testing.T) {
	s := testSpace(t, 15)
	r := rng.New(7)
	m := s.Random(r)
	before := m.Clone()
	s.Repair(m, r)
	if !m.Equal(before) {
		t.Error("Repair modified an already-valid mapping")
	}
}

func TestCompatiblePEsMatchTypes(t *testing.T) {
	s := testSpace(t, 25)
	for tsk := range s.Graph.Tasks {
		for i, im := range s.Graph.Tasks[tsk].Impls {
			pes := s.CompatiblePEs(tsk, i)
			if len(pes) == 0 {
				t.Fatalf("task %d impl %d has no compatible PEs", tsk, i)
			}
			for _, pe := range pes {
				if s.Platform.PEs[pe].Type != im.PEType {
					t.Fatalf("CompatiblePEs returned PE %d of wrong type", pe)
				}
			}
		}
	}
}

func TestDRCZeroForIdentical(t *testing.T) {
	s := testSpace(t, 30)
	m := s.Random(rng.New(8))
	c := s.DRC(m, m)
	if c.Total() != 0 || c.MigratedTasks != 0 || c.ReloadedPRRs != 0 {
		t.Errorf("DRC(m,m) = %+v, want zero", c)
	}
}

func TestDRCFreeModes(t *testing.T) {
	s := testSpace(t, 30)
	m := s.Random(rng.New(9))
	// Mode 1: re-ordering execution (priority changes) is free.
	o := m.Clone()
	for t := range o.Genes {
		o.Genes[t].Prio += 7
	}
	if c := s.DRC(m, o); c.Total() != 0 {
		t.Errorf("priority-only change cost %+v, want 0", c)
	}
	// Mode 2: changing CLR configuration is free.
	o = m.Clone()
	for t := range o.Genes {
		o.Genes[t].CLR = relmodel.Config{HW: 1, SSW: 1, ASW: 1}
	}
	if c := s.DRC(m, o); c.Total() != 0 {
		t.Errorf("CLR-only change cost %+v, want 0", c)
	}
}

func TestDRCCountsBinaryMigration(t *testing.T) {
	s := testSpace(t, 30)
	r := rng.New(10)
	m := s.Random(r)
	// Find a software task with at least two compatible PEs and move it.
	for tsk := range m.Genes {
		g := m.Genes[tsk]
		im := &s.Graph.Tasks[tsk].Impls[g.Impl]
		if im.BitstreamID >= 0 {
			continue
		}
		pes := s.CompatiblePEs(tsk, g.Impl)
		if len(pes) < 2 {
			continue
		}
		o := m.Clone()
		for _, pe := range pes {
			if pe != g.PE {
				o.Genes[tsk].PE = pe
				break
			}
		}
		c := s.DRC(m, o)
		want := s.Platform.BinaryMigrationMs(im.BinaryKB)
		if c.BinaryMigrationMs != want || c.MigratedTasks != 1 {
			t.Fatalf("DRC = %+v, want binary migration %v for 1 task", c, want)
		}
		if c.BitstreamMs != 0 {
			t.Fatalf("software move should not reload bitstreams: %+v", c)
		}
		return
	}
	t.Skip("no movable software task in fixture")
}

func TestDRCCountsBitstreamReload(t *testing.T) {
	plat := platform.Default()
	cat := relmodel.DefaultCatalogue()
	// Two tasks, each with one software impl and one accel impl with
	// different bitstreams.
	accelType := 3
	g := &taskgraph.Graph{
		Name: "accel-pair",
		Tasks: []taskgraph.Task{
			{ID: 0, Name: "a", Criticality: 0.5, Impls: []taskgraph.Impl{
				{ID: 0, PEType: 1, BaseExTimeMs: 10, BasePowerW: 1, BinaryKB: 40, BitstreamID: -1},
				{ID: 1, PEType: accelType, BaseExTimeMs: 5, BasePowerW: 1.5, BitstreamID: 7},
			}},
			{ID: 1, Name: "b", Criticality: 0.5, Impls: []taskgraph.Impl{
				{ID: 0, PEType: 1, BaseExTimeMs: 10, BasePowerW: 1, BinaryKB: 40, BitstreamID: -1},
				{ID: 1, PEType: accelType, BaseExTimeMs: 5, BasePowerW: 1.5, BitstreamID: 8},
			}},
		},
		Edges:    []taskgraph.Edge{{ID: 0, Src: 0, Dst: 1, CommTimeMs: 1}},
		PeriodMs: 100,
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := &Space{Graph: g, Platform: plat, Catalogue: cat}

	sw := &Mapping{Genes: []Gene{{PE: 1, Impl: 0}, {PE: 2, Impl: 0}}}
	accel := &Mapping{Genes: []Gene{{PE: 5, Impl: 1}, {PE: 6, Impl: 1}}}
	if err := s.Validate(sw); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(accel); err != nil {
		t.Fatal(err)
	}

	c := s.DRC(sw, accel)
	wantBits := 2 * plat.BitstreamLoadMs(plat.PRRs[0].BitstreamKB)
	if c.BitstreamMs != wantBits || c.ReloadedPRRs != 2 {
		t.Errorf("sw->accel DRC = %+v, want 2 bitstream loads (%v ms)", c, wantBits)
	}
	if c.BinaryMigrationMs != 0 {
		t.Errorf("accelerator impls should not add binary migration: %+v", c)
	}

	// Going back costs the two software binary copies instead.
	back := s.DRC(accel, sw)
	if back.BitstreamMs != 0 {
		t.Errorf("accel->sw should not load bitstreams: %+v", back)
	}
	wantBin := 2 * plat.BinaryMigrationMs(40)
	if back.BinaryMigrationMs != wantBin {
		t.Errorf("accel->sw binary cost = %v, want %v", back.BinaryMigrationMs, wantBin)
	}

	// Swapping which PRR hosts which circuit reloads both PRRs.
	swapped := &Mapping{Genes: []Gene{{PE: 6, Impl: 1}, {PE: 5, Impl: 1}}}
	if err := s.Validate(swapped); err != nil {
		t.Fatal(err)
	}
	c = s.DRC(accel, swapped)
	if c.ReloadedPRRs != 2 {
		t.Errorf("PRR swap reloads = %d, want 2", c.ReloadedPRRs)
	}
}

func TestAvgDRCTo(t *testing.T) {
	s := testSpace(t, 20)
	r := rng.New(12)
	m := s.Random(r)
	if got := s.AvgDRCTo(m, nil); got != 0 {
		t.Errorf("AvgDRCTo empty set = %v, want 0", got)
	}
	if got := s.AvgDRCTo(m, []*Mapping{m.Clone()}); got != 0 {
		t.Errorf("AvgDRCTo self = %v, want 0", got)
	}
	set := []*Mapping{s.Random(r), s.Random(r), s.Random(r)}
	avg := s.AvgDRCTo(m, set)
	if avg <= 0 {
		t.Errorf("AvgDRCTo random set = %v, want positive", avg)
	}
	sum := 0.0
	for _, o := range set {
		sum += (s.DRC(m, o).Total() + s.DRC(o, m).Total()) / 2
	}
	if want := sum / 3; want != avg {
		t.Errorf("AvgDRCTo = %v, want %v", avg, want)
	}
}

// Property: DRC is non-negative, zero on identity, and the free modes
// (priority / CLR changes) never add cost, for arbitrary random pairs.
func TestQuickDRCInvariants(t *testing.T) {
	s := testSpace(t, 25)
	r := rng.New(13)
	f := func(seed uint32) bool {
		rr := rng.New(int64(seed))
		a, b := s.Random(rr), s.Random(rr)
		c := s.DRC(a, b)
		if c.Total() < 0 || c.BinaryMigrationMs < 0 || c.BitstreamMs < 0 {
			return false
		}
		if s.DRC(a, a).Total() != 0 {
			return false
		}
		// Adding CLR/prio noise on top of b changes nothing.
		b2 := b.Clone()
		for t := range b2.Genes {
			b2.Genes[t].Prio = rr.Intn(100)
		}
		return s.DRC(a, b2).Total() == c.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	_ = r
}

// Property: repaired random damage always validates.
func TestQuickRepairAlwaysValid(t *testing.T) {
	s := testSpace(t, 15)
	f := func(seed uint32, damage []uint16) bool {
		r := rng.New(int64(seed))
		m := s.Random(r)
		for _, d := range damage {
			if len(m.Genes) == 0 {
				break
			}
			g := &m.Genes[int(d)%len(m.Genes)]
			g.PE = int(d%23) - 4
			g.Impl = int(d%7) - 2
			g.CLR.SSW = int(d % 11)
		}
		s.Repair(m, r)
		return s.Validate(m) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRunnableImplsAndCheck(t *testing.T) {
	s := testSpace(t, 20)
	if err := s.Check(); err != nil {
		t.Fatalf("full platform should be feasible: %v", err)
	}
	for tsk := range s.Graph.Tasks {
		runnable := s.RunnableImpls(tsk)
		if len(runnable) == 0 {
			t.Fatalf("task %d unrunnable on full platform", tsk)
		}
		for _, i := range runnable {
			if len(s.CompatiblePEs(tsk, i)) == 0 {
				t.Fatalf("RunnableImpls returned impl without PEs")
			}
		}
	}
}

func TestCheckDetectsUnrunnableTask(t *testing.T) {
	plat := platform.Default()
	g := &taskgraph.Graph{
		Name: "orphan",
		Tasks: []taskgraph.Task{{
			ID: 0, Name: "a", Criticality: 1,
			// PEType 9 does not exist on the platform.
			Impls: []taskgraph.Impl{{ID: 0, PEType: 9, BaseExTimeMs: 1, BasePowerW: 1, BitstreamID: -1}},
		}},
		PeriodMs: 10,
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := &Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()}
	if err := s.Check(); err == nil {
		t.Error("Check accepted an unrunnable task")
	}
}

func TestRandomOnDegradedPlatform(t *testing.T) {
	// Remove one of the duplicated mid cores: every task must remain
	// runnable and random mappings must stay valid.
	plat, err := platform.RemovePE(platform.Default(), 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := taskgraph.Generate(taskgraph.GenParams{Seed: 77, NumTasks: 30}, platform.Default())
	if err != nil {
		t.Fatal(err)
	}
	s := &Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()}
	if err := s.Check(); err != nil {
		t.Skipf("degraded platform infeasible for this app: %v", err)
	}
	r := rng.New(4)
	for i := 0; i < 50; i++ {
		if err := s.Validate(s.Random(r)); err != nil {
			t.Fatalf("random mapping invalid on degraded platform: %v", err)
		}
	}
}

func TestRepairRebindsUnrunnableImpl(t *testing.T) {
	// Craft a mapping pointing at an impl whose PE type vanished.
	full := platform.Default()
	g, err := taskgraph.Generate(taskgraph.GenParams{Seed: 78, NumTasks: 15}, full)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := platform.RemovePE(full, 0) // only perf core gone
	if err != nil {
		t.Fatal(err)
	}
	s := &Space{Graph: g, Platform: reduced, Catalogue: relmodel.DefaultCatalogue()}
	if err := s.Check(); err != nil {
		t.Skipf("app needs the perf core: %v", err)
	}
	r := rng.New(5)
	m := s.Random(r)
	s.Repair(m, r)
	if err := s.Validate(m); err != nil {
		t.Fatalf("repair failed on degraded platform: %v", err)
	}
}
