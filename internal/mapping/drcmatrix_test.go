package mapping

import (
	"sync"
	"testing"

	"clrdse/internal/rng"
)

// randomMappings draws n valid mappings from the space.
func randomMappings(s *Space, n int, seed int64) []*Mapping {
	r := rng.New(seed)
	ms := make([]*Mapping, n)
	for i := range ms {
		ms[i] = s.Random(r)
	}
	return ms
}

func TestDRCTotalMatchesDRC(t *testing.T) {
	s := testSpace(t, 30)
	ms := randomMappings(s, 20, 17)
	for i, from := range ms {
		for j, to := range ms {
			want := s.DRC(from, to).Total()
			got := s.DRCTotal(from, to)
			if got != want {
				t.Fatalf("DRCTotal(%d,%d) = %v, DRC().Total() = %v (must be bit-identical)", i, j, want, got)
			}
		}
	}
}

func TestDRCMatrixMatchesDirect(t *testing.T) {
	s := testSpace(t, 25)
	ms := randomMappings(s, 15, 23)
	m := NewDRCMatrix(s, ms)
	if m.Len() != len(ms) {
		t.Fatalf("Len() = %d, want %d", m.Len(), len(ms))
	}
	for i := range ms {
		if d := m.Total(i, i); d != 0 {
			t.Errorf("Total(%d,%d) = %v, want 0 (nothing moves)", i, i, d)
		}
		for j := range ms {
			want := s.DRC(ms[i], ms[j]).Total()
			if got := m.Total(i, j); got != want {
				t.Fatalf("matrix entry (%d,%d) = %v, direct DRC total = %v", i, j, got, want)
			}
		}
	}
}

func TestDRCCacheMatchesDirect(t *testing.T) {
	s := testSpace(t, 25)
	set := randomMappings(s, 10, 29)
	cache := NewDRCCache(s, set)
	probes := randomMappings(s, 12, 31)
	for i, m := range probes {
		want := s.AvgDRCTo(m, set)
		if got := cache.AvgDRC(m); got != want {
			t.Fatalf("cached AvgDRC(probe %d) = %v, direct = %v", i, got, want)
		}
		// Memoised second call must return the identical value.
		if got := cache.AvgDRC(m); got != want {
			t.Fatalf("memoised AvgDRC(probe %d) = %v, direct = %v", i, got, want)
		}
	}
}

// TestDRCCacheConcurrent exercises the cache from many goroutines so
// `go test -race` can certify the locking; every reader must observe
// the direct value.
func TestDRCCacheConcurrent(t *testing.T) {
	s := testSpace(t, 20)
	set := randomMappings(s, 8, 37)
	cache := NewDRCCache(s, set)
	probes := randomMappings(s, 6, 41)
	want := make([]float64, len(probes))
	for i, m := range probes {
		want[i] = s.AvgDRCTo(m, set)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for i, m := range probes {
					if got := cache.AvgDRC(m); got != want[i] {
						t.Errorf("concurrent AvgDRC(probe %d) = %v, want %v", i, got, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestDiffStableAcrossCalls guards the pooled-scratch rewrite of Diff:
// repeated diffs of the same pair must produce identical plans (the
// pool must never leak state between calls).
func TestDiffStableAcrossCalls(t *testing.T) {
	s := testSpace(t, 30)
	ms := randomMappings(s, 8, 43)
	for i, from := range ms {
		for j, to := range ms {
			first := s.Diff(from, to)
			again := s.Diff(from, to)
			if len(first) != len(again) {
				t.Fatalf("diff(%d,%d) length changed across calls: %d vs %d", i, j, len(first), len(again))
			}
			for k := range first {
				if first[k] != again[k] {
					t.Fatalf("diff(%d,%d) action %d changed across calls: %v vs %v", i, j, k, first[k], again[k])
				}
			}
			if i == j && first != nil {
				t.Fatalf("diff(%d,%d) of identical mappings = %v, want nil", i, j, first)
			}
		}
	}
}
