package mapping

// Precomputed and memoised forms of the reconfiguration cost dRC.
//
// The pairwise dRC structure of a frozen database is static: once the
// design-time stage ships a set of configurations, the cost of moving
// between any two of them never changes. Both hot paths of the system
// funnel through these values — the run-time manager scores every
// feasible stored point against the current one on every QoS event,
// and the ReD stage computes average reconfiguration distances to the
// stored set inside every fitness evaluation — so this file provides
//
//   - DRCTotal: an allocation-free scalar fast path, bit-identical to
//     DRC(from, to).Total(), for callers that never look at the cost
//     decomposition;
//   - DRCMatrix: the |DB|x|DB| table of totals, precomputed once per
//     database and shared read-only by any number of managers;
//   - DRCCache: a lazily-memoised average-distance cache for
//     configurations outside the database (ReD candidates).

import (
	"sync"
)

// drcScratch holds the per-PRR resident-bitstream work lists reused
// across DRCTotal and Diff calls, replacing the per-call map
// allocations of the full DRC path.
type drcScratch struct {
	from, to [][]int
	// bits is a per-PRR work list for newly demanded circuits (Diff).
	bits []int
}

var drcScratchPool = sync.Pool{New: func() any { return new(drcScratch) }}

func (sc *drcScratch) reset(nPRR int) {
	for len(sc.from) < nPRR {
		sc.from = append(sc.from, nil)
	}
	for len(sc.to) < nPRR {
		sc.to = append(sc.to, nil)
	}
	for i := 0; i < nPRR; i++ {
		sc.from[i] = sc.from[i][:0]
		sc.to[i] = sc.to[i][:0]
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// residentInto collects, per PRR index, the distinct bitstream IDs the
// mapping demands, appending into the caller's scratch lists. It is
// the allocation-free counterpart of residentBitstreams.
func (s *Space) residentInto(m *Mapping, res [][]int) {
	for t := range m.Genes {
		g := &m.Genes[t]
		im := &s.Graph.Tasks[t].Impls[g.Impl]
		if im.BitstreamID < 0 {
			continue
		}
		prr := s.Platform.PEs[g.PE].PRR
		if prr >= 0 && !containsInt(res[prr], im.BitstreamID) {
			res[prr] = append(res[prr], im.BitstreamID)
		}
	}
}

// DRCTotal returns DRC(from, to).Total() without materialising the
// ReconfigCost decomposition or the per-PRR resident-set maps. The
// two partial sums are accumulated in exactly the order DRC uses (the
// bitstream term adds one identical constant per newly demanded
// circuit of each PRR, so set-iteration order cannot change the
// float64 result), making the returned scalar bit-identical to the
// full path. Steady-state calls allocate nothing.
func (s *Space) DRCTotal(from, to *Mapping) float64 {
	binMs := 0.0
	for t := range to.Genes {
		gf, gt := from.Genes[t], to.Genes[t]
		if gf.PE == gt.PE && gf.Impl == gt.Impl {
			continue
		}
		im := &s.Graph.Tasks[t].Impls[gt.Impl]
		if im.BitstreamID < 0 {
			binMs += s.Platform.BinaryMigrationMs(im.BinaryKB)
		}
	}
	nPRR := len(s.Platform.PRRs)
	if nPRR == 0 {
		return binMs
	}
	sc := drcScratchPool.Get().(*drcScratch)
	sc.reset(nPRR)
	s.residentInto(from, sc.from)
	s.residentInto(to, sc.to)
	bitMs := 0.0
	for prr := 0; prr < nPRR; prr++ {
		loadMs := s.Platform.BitstreamLoadMs(s.Platform.PRRs[prr].BitstreamKB)
		for _, bs := range sc.to[prr] {
			if !containsInt(sc.from[prr], bs) {
				bitMs += loadMs
			}
		}
	}
	drcScratchPool.Put(sc)
	return binMs + bitMs
}

// DRCMatrix holds the scalar reconfiguration cost between every
// ordered pair of a frozen set of mappings — typically a deployed
// design-point database. It is built once and immutable afterwards,
// so any number of goroutines (one manager per fleet device) may read
// it without synchronisation.
type DRCMatrix struct {
	n      int
	totals []float64 // row-major: totals[from*n+to]
}

// NewDRCMatrix precomputes the |maps|^2 pairwise totals. Every entry
// is bit-identical to Space.DRC(maps[from], maps[to]).Total().
func NewDRCMatrix(s *Space, maps []*Mapping) *DRCMatrix {
	n := len(maps)
	m := &DRCMatrix{n: n, totals: make([]float64, n*n)}
	for i, from := range maps {
		row := m.totals[i*n : (i+1)*n]
		for j, to := range maps {
			if i == j {
				continue // dRC(x, x) = 0: nothing moves
			}
			row[j] = s.DRCTotal(from, to)
		}
	}
	return m
}

// Len returns the number of mappings the matrix covers.
func (m *DRCMatrix) Len() int { return m.n }

// Total returns the precomputed dRC of switching from stored point
// `from` to stored point `to`.
func (m *DRCMatrix) Total(from, to int) float64 { return m.totals[from*m.n+to] }

// DRCCache memoises average reconfiguration distances from arbitrary
// (typically out-of-database) configurations to a frozen stored set,
// keyed by the configuration's canonical Key. GAs re-evaluate cloned
// genomes every generation; the cache collapses those duplicates to
// one distance computation each. Safe for concurrent use.
type DRCCache struct {
	space *Space
	set   []*Mapping
	mu    sync.Mutex
	avg   map[string]float64
}

// NewDRCCache builds an empty cache over the stored set.
func NewDRCCache(s *Space, set []*Mapping) *DRCCache {
	return &DRCCache{space: s, set: set, avg: make(map[string]float64)}
}

// AvgDRC returns Space.AvgDRCTo(m, set), computing it at most once per
// distinct genome.
func (c *DRCCache) AvgDRC(m *Mapping) float64 {
	key := m.Key()
	c.mu.Lock()
	v, ok := c.avg[key]
	c.mu.Unlock()
	if ok {
		return v
	}
	v = c.space.AvgDRCTo(m, c.set)
	c.mu.Lock()
	c.avg[key] = v
	c.mu.Unlock()
	return v
}
