package mapping

// This file implements the reconfiguration model of the paper's
// Section 3.5. Of the four dynamic-adaptation modes, (1) re-ordering
// tasks on a PE and (2) changing per-layer CLR configurations are free
// (binaries stay resident in local memory); (3) changing a task's
// implementation and (4) changing its task-to-PE binding copy binaries
// to the destination PE, and moving accelerator work between circuits
// additionally re-loads PRR bitstreams through the configuration port.

// ReconfigCost is the decomposition of dRC between two configurations,
// in milliseconds of reconfiguration activity. The scalar dRC used by
// the optimisers and the run-time manager is Total().
type ReconfigCost struct {
	// BinaryMigrationMs is time spent copying task binaries to PEs
	// that did not previously hold them.
	BinaryMigrationMs float64
	// BitstreamMs is time spent streaming accelerator bitstreams into
	// PRRs whose resident circuit changes.
	BitstreamMs float64
	// MigratedTasks counts tasks whose (PE, implementation) binding
	// changed.
	MigratedTasks int
	// ReloadedPRRs counts PRRs that receive a new bitstream.
	ReloadedPRRs int
}

// Total returns the scalar reconfiguration cost dRC.
func (c ReconfigCost) Total() float64 { return c.BinaryMigrationMs + c.BitstreamMs }

// DRC computes the reconfiguration cost of switching the system from
// configuration `from` to configuration `to`. Both must be valid in
// the space. DRC is not symmetric in general (different binaries move
// in each direction) but is zero iff the bindings and resident
// bitstream sets are unchanged.
func (s *Space) DRC(from, to *Mapping) ReconfigCost {
	var cost ReconfigCost

	// Task binary migration: a task whose PE binding or implementation
	// changed needs its (new) binary present at the (new) PE. Software
	// binaries travel over the interconnect; accelerator "binaries"
	// are the bitstream, accounted for separately below.
	for t := range to.Genes {
		gf, gt := from.Genes[t], to.Genes[t]
		if gf.PE == gt.PE && gf.Impl == gt.Impl {
			continue
		}
		im := &s.Graph.Tasks[t].Impls[gt.Impl]
		if im.BitstreamID < 0 {
			cost.BinaryMigrationMs += s.Platform.BinaryMigrationMs(im.BinaryKB)
			cost.MigratedTasks++
		} else if gf.PE != gt.PE || gf.Impl != gt.Impl {
			cost.MigratedTasks++
		}
	}

	// PRR bitstream reloads: compare the resident circuit of each PRR
	// before and after. A PRR's resident set is the set of bitstream
	// IDs demanded by accelerator tasks bound to the PE it backs; if
	// the configuration time-multiplexes several circuits on one PRR,
	// each *newly demanded* circuit costs one load (the steady-state
	// swapping cost during execution is part of the schedule model,
	// not of dRC).
	fromRes := s.residentBitstreams(from)
	toRes := s.residentBitstreams(to)
	for prr := range s.Platform.PRRs {
		// Every load on one PRR costs the same, so count the newly
		// demanded circuits first and multiply: the float sum is then
		// independent of map iteration order.
		newLoads := 0
		for bs := range toRes[prr] {
			if !fromRes[prr][bs] {
				newLoads++
			}
		}
		cost.BitstreamMs += float64(newLoads) * s.Platform.BitstreamLoadMs(s.Platform.PRRs[prr].BitstreamKB)
		cost.ReloadedPRRs += newLoads
	}
	return cost
}

// residentBitstreams returns, per PRR index, the set of bitstream IDs
// demanded by the mapping.
func (s *Space) residentBitstreams(m *Mapping) []map[int]bool {
	res := make([]map[int]bool, len(s.Platform.PRRs))
	for i := range res {
		res[i] = map[int]bool{}
	}
	for t, g := range m.Genes {
		im := &s.Graph.Tasks[t].Impls[g.Impl]
		if im.BitstreamID < 0 {
			continue
		}
		prr := s.Platform.PEs[g.PE].PRR
		if prr >= 0 {
			res[prr][im.BitstreamID] = true
		}
	}
	return res
}

// AvgDRCTo returns the mean dRC from m to each mapping in the set.
// The ReD optimisation stage uses this as the "average reconfiguration
// distance from the stored design points" objective.
func (s *Space) AvgDRCTo(m *Mapping, set []*Mapping) float64 {
	if len(set) == 0 {
		return 0
	}
	sum := 0.0
	for _, o := range set {
		sum += s.DRCTotal(m, o) + s.DRCTotal(o, m)
	}
	return sum / float64(2*len(set))
}
