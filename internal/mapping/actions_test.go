package mapping

import (
	"math"
	"strings"
	"testing"

	"clrdse/internal/relmodel"
	"clrdse/internal/rng"
)

func TestDiffCostMatchesDRC(t *testing.T) {
	s := testSpace(t, 30)
	r := rng.New(21)
	for i := 0; i < 50; i++ {
		a, b := s.Random(r), s.Random(r)
		plan := s.Diff(a, b)
		want := s.DRC(a, b).Total()
		if got := PlanCost(plan); math.Abs(got-want) > 1e-9 {
			t.Fatalf("plan cost %v != dRC %v", got, want)
		}
	}
}

func TestDiffEmptyForIdentical(t *testing.T) {
	s := testSpace(t, 15)
	m := s.Random(rng.New(22))
	if plan := s.Diff(m, m); len(plan) != 0 {
		t.Errorf("identity diff has %d actions", len(plan))
	}
}

func TestDiffFreeActionsForFreeModes(t *testing.T) {
	s := testSpace(t, 15)
	m := s.Random(rng.New(23))
	o := m.Clone()
	o.Genes[3].Prio += 5
	o.Genes[4].CLR = relmodel.Config{HW: 1, SSW: 1, ASW: 1}
	plan := s.Diff(m, o)
	if len(plan) != 2 {
		t.Fatalf("plan = %v, want exactly reorder + set-clr", plan)
	}
	kinds := map[ActionKind]bool{}
	for _, a := range plan {
		kinds[a.Kind] = true
		if a.CostMs != 0 {
			t.Errorf("free action %v has cost", a)
		}
	}
	if !kinds[ActionReorder] || !kinds[ActionSetCLR] {
		t.Errorf("plan kinds = %v", plan)
	}
}

func TestDiffOrdering(t *testing.T) {
	s := testSpace(t, 30)
	r := rng.New(24)
	for i := 0; i < 20; i++ {
		plan := s.Diff(s.Random(r), s.Random(r))
		stage := 0 // 0=bitstreams, 1=copies, 2=free
		for _, a := range plan {
			var want int
			switch a.Kind {
			case ActionLoadBitstream:
				want = 0
			case ActionCopyBinary:
				want = 1
			default:
				want = 2
			}
			if want < stage {
				t.Fatalf("plan out of order: %v", plan)
			}
			stage = want
		}
	}
}

func TestDiffBitstreamTargets(t *testing.T) {
	s := testSpace(t, 40)
	r := rng.New(25)
	for i := 0; i < 20; i++ {
		a, b := s.Random(r), s.Random(r)
		for _, act := range s.Diff(a, b) {
			switch act.Kind {
			case ActionLoadBitstream:
				if act.PRR < 0 || act.PRR >= len(s.Platform.PRRs) || act.Bitstream < 0 {
					t.Fatalf("bad bitstream action %+v", act)
				}
				if act.PE >= 0 && s.Platform.PEs[act.PE].PRR != act.PRR {
					t.Fatalf("bitstream action PE/PRR mismatch %+v", act)
				}
			case ActionCopyBinary:
				if act.Task < 0 || act.PE < 0 {
					t.Fatalf("bad copy action %+v", act)
				}
				if b.Genes[act.Task].PE != act.PE {
					t.Fatalf("copy action targets wrong PE %+v", act)
				}
			}
		}
	}
}

func TestActionStrings(t *testing.T) {
	for _, a := range []Action{
		{Kind: ActionCopyBinary, Task: 1, PE: 2, CostMs: 0.5},
		{Kind: ActionLoadBitstream, PRR: 1, Bitstream: 3, CostMs: 1},
		{Kind: ActionSetCLR, Task: 4},
		{Kind: ActionReorder, Task: 5},
	} {
		if a.String() == "" || strings.Contains(a.String(), "ActionKind(") {
			t.Errorf("bad string for %+v: %q", a, a.String())
		}
	}
	if !strings.Contains(ActionKind(9).String(), "9") {
		t.Error("unknown kind string")
	}
}
