package taskgraph

import "clrdse/internal/platform"

// JPEGEncoder returns the application of the paper's Figure 2b: a JPEG
// encoder modelled as a task graph with 11 tasks and 13 edges — a
// source/split task S, four parallel block-transform tasks D, five
// entropy-coding tasks H1..H5 (H5 merges the four streams), and a
// final quantize/zigzag/output task QZ.
//
// Implementation sets follow the usual hardware/software split for the
// codec: the data-parallel transform tasks have accelerator
// implementations for the PRR slots (per-task-type bitstreams), while
// the control-heavy entropy coder is software-only. Task-type indices
// are 0=S, 1=D, 2=H, 3=QZ; criticalities weight the merge and output
// stages highest, since an error there corrupts the whole frame.
//
// The plat argument selects PE-type indices for the implementations;
// it must contain at least one processor type (software fallback) and
// may contain reconfigurable types (accelerators).
func JPEGEncoder(plat *platform.Platform) *Graph {
	procTypes := processorTypeIndices(plat)
	if len(procTypes) == 0 {
		panic("taskgraph: JPEGEncoder requires a processor PE type")
	}
	accelTypes := reconfigurableTypeIndices(plat)

	// Software implementation on every processor type; the perf cores
	// trade power for speed via the platform's type factors, while the
	// per-type base times below encode algorithmic variants.
	swImpls := func(baseMs, powerW float64, binKB int) []Impl {
		var impls []Impl
		for i, pt := range procTypes {
			impls = append(impls, Impl{
				ID:           i,
				PEType:       pt,
				BaseExTimeMs: baseMs * (1 + 0.1*float64(i)),
				BasePowerW:   powerW * (1 - 0.05*float64(i)),
				BinaryKB:     binKB,
				BitstreamID:  -1,
			})
		}
		return impls
	}
	withAccel := func(impls []Impl, baseMs, powerW float64, bitstreamID int) []Impl {
		if len(accelTypes) == 0 {
			return impls
		}
		impls = append(impls, Impl{
			ID:           len(impls),
			PEType:       accelTypes[0],
			BaseExTimeMs: baseMs,
			BasePowerW:   powerW,
			BinaryKB:     0,
			BitstreamID:  bitstreamID,
		})
		return impls
	}

	g := &Graph{Name: "jpeg-encoder"}
	add := func(name string, typ int, crit float64, impls []Impl) int {
		id := len(g.Tasks)
		g.Tasks = append(g.Tasks, Task{ID: id, Name: name, Type: typ, Criticality: crit, Impls: impls})
		return id
	}

	s := add("S", 0, 1.2, withAccel(swImpls(8, 0.6, 96), 5, 0.9, 0))
	var d [4]int
	for i := range d {
		d[i] = add("D"+string(rune('1'+i)), 1, 1.0, withAccel(swImpls(20, 0.9, 64), 12, 1.3, 1))
	}
	var h [5]int
	for i := range h {
		h[i] = add("H"+string(rune('1'+i)), 2, 0.8, swImpls(14, 0.7, 112))
	}
	qz := add("QZ", 3, 1.5, withAccel(swImpls(10, 0.8, 80), 6, 1.1, 2))
	g.NormalizeCriticalities()

	addEdge := func(src, dst int, comm float64) {
		g.Edges = append(g.Edges, Edge{ID: len(g.Edges), Src: src, Dst: dst, CommTimeMs: comm})
	}
	for i := range d {
		addEdge(s, d[i], 2.0) // split frame into block streams
	}
	for i := range d {
		addEdge(d[i], h[i], 1.5) // per-stream entropy coding
	}
	for i := 0; i < 4; i++ {
		addEdge(h[i], h[4], 1.0) // H5 merges the four streams
	}
	addEdge(h[4], qz, 2.5) // final quantize/zigzag/output

	// Period sized for ~2x slack over the serial software estimate.
	serial := 0.0
	for i := range g.Tasks {
		serial += g.Tasks[i].Impls[0].BaseExTimeMs
	}
	g.PeriodMs = 1.5 * serial

	if err := g.Validate(); err != nil {
		panic("taskgraph: JPEGEncoder graph invalid: " + err.Error())
	}
	return g
}
