// Package taskgraph implements the application model of the paper's
// Section 3.2: an application is a periodic task graph G_app =
// (T_app, E_app, P_app) whose nodes are tasks and whose directed edges
// carry the data-transfer time between dependent tasks. Each task has a
// type (functionality) and a set of implementations; each
// implementation targets one PE type (general-purpose processor code or
// an accelerator for a reconfigurable-logic slot) and carries the base
// execution time, power, and binary/bitstream footprint from which the
// CLR model derives the task-level metrics of Table 2.
//
// The package also contains a TGFF-style synthetic graph generator
// (gen.go) used for the paper's evaluation (applications of 10 to 100
// tasks), and the concrete JPEG-encoder graph of Figure 2b (jpeg.go).
package taskgraph

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Impl is one implementation of a task: a particular algorithm and
// binary compiled for one PE type (Impl_{t,i} in the paper). For
// accelerator implementations, BitstreamID identifies the accelerator
// circuit so the reconfiguration model can tell whether a PRR already
// holds the right bitstream.
type Impl struct {
	// ID is the implementation's index within its task, dense from 0.
	ID int
	// PEType indexes the platform's PE-type catalogue; the
	// implementation can only run on PEs of this type.
	PEType int
	// BaseExTimeMs is the nominal error-free execution time on a
	// SpeedFactor-1.0 PE of the target type, before CLR overheads.
	BaseExTimeMs float64
	// BasePowerW is the nominal dynamic power drawn while executing,
	// before CLR overheads and the PE type's PowerFactor.
	BasePowerW float64
	// BinaryKB is the size of the binary copied into a PE's local
	// memory when the task is (re-)bound to a PE (0 for accelerator
	// implementations, which live in the bitstream).
	BinaryKB int
	// BitstreamID identifies the accelerator circuit for
	// reconfigurable implementations; -1 for software implementations.
	BitstreamID int
}

// Validate checks the implementation's physical plausibility.
func (im *Impl) Validate() error {
	switch {
	case im.BaseExTimeMs <= 0:
		return fmt.Errorf("taskgraph: impl %d: BaseExTimeMs must be positive, got %v", im.ID, im.BaseExTimeMs)
	case im.BasePowerW <= 0:
		return fmt.Errorf("taskgraph: impl %d: BasePowerW must be positive, got %v", im.ID, im.BasePowerW)
	case im.PEType < 0:
		return fmt.Errorf("taskgraph: impl %d: negative PEType", im.ID)
	case im.BinaryKB < 0:
		return fmt.Errorf("taskgraph: impl %d: negative BinaryKB", im.ID)
	}
	return nil
}

// Task is one node of the task graph: the tuple (ID_t, Type_t, Impl_t)
// of the paper, extended with the normalized criticality zeta_t used in
// the functional-reliability estimate of Table 3.
type Task struct {
	// ID is the task's index, dense from 0.
	ID int
	// Name is a human-readable label for reports and DOT output.
	Name string
	// Type is the task's functionality class; tasks of equal Type share
	// implementation characteristics.
	Type int
	// Criticality is the normalized weight zeta_t of the task in the
	// application-level functional-reliability sum; criticalities over
	// a graph sum to 1.
	Criticality float64
	// Impls is the non-empty set of implementations for the task.
	Impls []Impl
}

// Edge is one directed dependency: the tuple (ID_e, Src_e, Dst_e,
// CommT_e) of the paper.
type Edge struct {
	// ID is the edge's index, dense from 0.
	ID int
	// Src and Dst are task IDs; data flows Src -> Dst.
	Src, Dst int
	// CommTimeMs is the data-transfer time incurred when Src and Dst
	// execute on different PEs; intra-PE communication is free.
	CommTimeMs float64
}

// Graph is the application model G_app.
type Graph struct {
	// Name labels the application.
	Name string
	// Tasks are the nodes, indexed by Task.ID.
	Tasks []Task
	// Edges are the dependencies, indexed by Edge.ID.
	Edges []Edge
	// PeriodMs is the application period P_app: one application
	// execution cycle spans this long.
	PeriodMs float64
}

// NumTasks returns the number of tasks.
func (g *Graph) NumTasks() int { return len(g.Tasks) }

// Validate checks that the graph is a well-formed DAG with dense IDs,
// valid edge endpoints, normalized criticalities and non-empty
// implementation sets.
func (g *Graph) Validate() error {
	if len(g.Tasks) == 0 {
		return fmt.Errorf("taskgraph %q: no tasks", g.Name)
	}
	if g.PeriodMs <= 0 {
		return fmt.Errorf("taskgraph %q: PeriodMs must be positive, got %v", g.Name, g.PeriodMs)
	}
	critSum := 0.0
	for i := range g.Tasks {
		tk := &g.Tasks[i]
		if tk.ID != i {
			return fmt.Errorf("taskgraph %q: task at index %d has ID %d (IDs must be dense)", g.Name, i, tk.ID)
		}
		if len(tk.Impls) == 0 {
			return fmt.Errorf("taskgraph %q: task %d has no implementations", g.Name, tk.ID)
		}
		if tk.Criticality < 0 {
			return fmt.Errorf("taskgraph %q: task %d has negative criticality", g.Name, tk.ID)
		}
		critSum += tk.Criticality
		for j := range tk.Impls {
			if tk.Impls[j].ID != j {
				return fmt.Errorf("taskgraph %q: task %d impl at index %d has ID %d", g.Name, tk.ID, j, tk.Impls[j].ID)
			}
			if err := tk.Impls[j].Validate(); err != nil {
				return fmt.Errorf("taskgraph %q task %d: %w", g.Name, tk.ID, err)
			}
		}
	}
	if critSum < 0.999 || critSum > 1.001 {
		return fmt.Errorf("taskgraph %q: criticalities sum to %v, want 1", g.Name, critSum)
	}
	seen := map[[2]int]bool{}
	for i, e := range g.Edges {
		if e.ID != i {
			return fmt.Errorf("taskgraph %q: edge at index %d has ID %d (IDs must be dense)", g.Name, i, e.ID)
		}
		if e.Src < 0 || e.Src >= len(g.Tasks) || e.Dst < 0 || e.Dst >= len(g.Tasks) {
			return fmt.Errorf("taskgraph %q: edge %d endpoints (%d,%d) out of range", g.Name, e.ID, e.Src, e.Dst)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("taskgraph %q: edge %d is a self-loop on task %d", g.Name, e.ID, e.Src)
		}
		if e.CommTimeMs < 0 {
			return fmt.Errorf("taskgraph %q: edge %d has negative comm time", g.Name, e.ID)
		}
		key := [2]int{e.Src, e.Dst}
		if seen[key] {
			return fmt.Errorf("taskgraph %q: duplicate edge %d->%d", g.Name, e.Src, e.Dst)
		}
		seen[key] = true
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Preds returns, per task ID, the IDs of the incoming edges.
func (g *Graph) Preds() [][]int {
	in := make([][]int, len(g.Tasks))
	for _, e := range g.Edges {
		in[e.Dst] = append(in[e.Dst], e.ID)
	}
	return in
}

// Succs returns, per task ID, the IDs of the outgoing edges.
func (g *Graph) Succs() [][]int {
	out := make([][]int, len(g.Tasks))
	for _, e := range g.Edges {
		out[e.Src] = append(out[e.Src], e.ID)
	}
	return out
}

// TopoOrder returns a topological order of the task IDs, or an error
// if the graph contains a cycle. The order is deterministic (Kahn's
// algorithm with a FIFO frontier seeded in ID order).
func (g *Graph) TopoOrder() ([]int, error) {
	indeg := make([]int, len(g.Tasks))
	succ := make([][]int, len(g.Tasks))
	for _, e := range g.Edges {
		indeg[e.Dst]++
		succ[e.Src] = append(succ[e.Src], e.Dst)
	}
	var frontier []int
	for id := range g.Tasks {
		if indeg[id] == 0 {
			frontier = append(frontier, id)
		}
	}
	order := make([]int, 0, len(g.Tasks))
	for len(frontier) > 0 {
		id := frontier[0]
		frontier = frontier[1:]
		order = append(order, id)
		for _, d := range succ[id] {
			indeg[d]--
			if indeg[d] == 0 {
				frontier = append(frontier, d)
			}
		}
	}
	if len(order) != len(g.Tasks) {
		return nil, fmt.Errorf("taskgraph %q: dependency cycle detected", g.Name)
	}
	return order, nil
}

// Depths returns, per task, the length (in edges) of the longest path
// from any source task. Sources have depth 0.
func (g *Graph) Depths() []int {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err) // callers validate first
	}
	depth := make([]int, len(g.Tasks))
	preds := g.Preds()
	for _, id := range order {
		for _, eid := range preds[id] {
			e := g.Edges[eid]
			if depth[e.Src]+1 > depth[id] {
				depth[id] = depth[e.Src] + 1
			}
		}
	}
	return depth
}

// NormalizeCriticalities rescales task criticalities to sum to 1.
// It panics if the current sum is non-positive.
func (g *Graph) NormalizeCriticalities() {
	sum := 0.0
	for i := range g.Tasks {
		sum += g.Tasks[i].Criticality
	}
	if sum <= 0 {
		panic("taskgraph: cannot normalize non-positive criticality sum")
	}
	for i := range g.Tasks {
		g.Tasks[i].Criticality /= sum
	}
}

// DOT renders the graph in Graphviz format, one node per task labelled
// with its name and criticality, edges labelled with comm time.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", g.Name)
	for i := range g.Tasks {
		tk := &g.Tasks[i]
		fmt.Fprintf(&b, "  t%d [label=\"%s\\nzeta=%.3f impls=%d\"];\n", tk.ID, tk.Name, tk.Criticality, len(tk.Impls))
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  t%d -> t%d [label=\"%.1f\"];\n", e.Src, e.Dst, e.CommTimeMs)
	}
	b.WriteString("}\n")
	return b.String()
}

// WriteFile stores the graph as indented JSON.
func (g *Graph) WriteFile(path string) error {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return fmt.Errorf("taskgraph: marshal %q: %w", g.Name, err)
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads a graph from JSON and validates it.
func ReadFile(path string) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g Graph
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("taskgraph: parse %s: %w", path, err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// Stats summarises a graph's structure for reports.
type Stats struct {
	// Tasks and Edges are the node/edge counts.
	Tasks, Edges int
	// Depth is the longest path length in edges.
	Depth int
	// Width is the largest antichain approximation: the maximum number
	// of tasks sharing the same depth level.
	Width int
	// AvgDegree is the mean in-degree of non-source tasks.
	AvgDegree float64
	// Impls is the total number of implementations across tasks.
	Impls int
	// AccelImpls counts accelerator implementations.
	AccelImpls int
	// SerialMs is the sum of first-implementation base times: a serial
	// execution estimate.
	SerialMs float64
}

// Stats computes the summary. The graph must be a valid DAG.
func (g *Graph) Stats() Stats {
	s := Stats{Tasks: len(g.Tasks), Edges: len(g.Edges)}
	depths := g.Depths()
	levelCount := map[int]int{}
	for _, d := range depths {
		if d > s.Depth {
			s.Depth = d
		}
		levelCount[d]++
		if levelCount[d] > s.Width {
			s.Width = levelCount[d]
		}
	}
	nonSource := 0
	for _, eids := range g.Preds() {
		if len(eids) > 0 {
			nonSource++
			s.AvgDegree += float64(len(eids))
		}
	}
	if nonSource > 0 {
		s.AvgDegree /= float64(nonSource)
	}
	for i := range g.Tasks {
		s.Impls += len(g.Tasks[i].Impls)
		for _, im := range g.Tasks[i].Impls {
			if im.BitstreamID >= 0 {
				s.AccelImpls++
			}
		}
		s.SerialMs += g.Tasks[i].Impls[0].BaseExTimeMs
	}
	return s
}
