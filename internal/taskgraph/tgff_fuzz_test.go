package taskgraph

import (
	"strings"
	"testing"

	"clrdse/internal/platform"
)

// FuzzParseTGFF asserts the parser never panics and that any
// successfully parsed graph validates.
func FuzzParseTGFF(f *testing.F) {
	f.Add(sampleTGFF)
	f.Add("@TASK_GRAPH 0 {\nTASK a TYPE 0\n}\n")
	f.Add("@TASK_GRAPH 0 {\nTASK a TYPE 0\nTASK b TYPE 1\nARC x FROM a TO b TYPE 0\n}\n@COMM 0 {\n0 2.5\n}\n")
	f.Add("@HYPERPERIOD 100\n@TASK_GRAPH 0 {\nPERIOD bad\n}\n")
	f.Add("")
	f.Add("@")
	f.Add("# only a comment\n")
	f.Add("@TASK_GRAPH 0 {\nARC x FROM ghost TO ghost2 TYPE 0\n}\n")
	plat := platform.Default()
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseTGFF(strings.NewReader(src), plat, TGFFOptions{Seed: 1})
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser returned invalid graph: %v", err)
		}
	})
}
