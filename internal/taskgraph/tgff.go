package taskgraph

// Parser for the file format emitted by TGFF, "Task Graphs For Free"
// (Dick, Rhodes, Wolf — the generator the paper uses for its synthetic
// applications). A .tgff file contains @TASK_GRAPH blocks with TASK
// and ARC statements and @table blocks giving per-task-type attribute
// values:
//
//	@TASK_GRAPH 0 {
//	  PERIOD 300
//	  TASK t0_0 TYPE 2
//	  TASK t0_1 TYPE 7
//	  ARC a0_0 FROM t0_0 TO t0_1 TYPE 1
//	}
//	@COMM 0 {
//	  # type  exec_time
//	  0       48.5
//	  ...
//	}
//
// ParseTGFF understands the structural subset relevant here: the first
// @TASK_GRAPH block (or a selected index), its PERIOD, TASK and ARC
// statements, and up to two attribute tables — one keyed by task type
// (execution time), one by arc type (communication time). Attribute
// tables are matched by name; see TGFFOptions. Implementations for the
// parsed tasks are synthesised per task type with the table's
// execution time as the software base time, exactly as the built-in
// generator does, so parsed graphs drop into the same DSE pipeline.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"clrdse/internal/platform"
	"clrdse/internal/rng"
)

// TGFFOptions selects which pieces of a .tgff file to use and how to
// synthesise implementations for the parsed tasks.
type TGFFOptions struct {
	// GraphIndex selects the @TASK_GRAPH block (0 = first).
	GraphIndex int
	// TaskTimeTable is the name of the @table holding per-task-type
	// execution times ("" matches the first table whose name is not
	// the arc table's).
	TaskTimeTable string
	// ArcTimeTable is the name of the @table holding per-arc-type
	// communication times ("" matches a table named COMM if present,
	// otherwise arcs get DefaultCommMs).
	ArcTimeTable string
	// DefaultCommMs is used when no arc table applies (0 selects 1.0).
	DefaultCommMs float64
	// Seed drives the synthesised implementation attributes (power,
	// binary size, accelerator availability).
	Seed int64
	// AccelProb is the probability a task type gets an accelerator
	// implementation (negative disables, 0 selects 0.5).
	AccelProb float64
}

// ParseTGFF reads a TGFF file and builds an application graph for the
// platform.
func ParseTGFF(r io.Reader, plat *platform.Platform, opts TGFFOptions) (*Graph, error) {
	if opts.DefaultCommMs == 0 {
		opts.DefaultCommMs = 1.0
	}
	if opts.AccelProb == 0 {
		opts.AccelProb = 0.5
	}

	f, err := scanTGFF(r)
	if err != nil {
		return nil, err
	}
	if opts.GraphIndex < 0 || opts.GraphIndex >= len(f.graphs) {
		return nil, fmt.Errorf("taskgraph: tgff graph index %d out of range (%d graphs)", opts.GraphIndex, len(f.graphs))
	}
	tg := f.graphs[opts.GraphIndex]

	taskTimes := f.pickTable(opts.TaskTimeTable, opts.ArcTimeTable)
	arcTimes := f.table(opts.ArcTimeTable)
	if arcTimes == nil && opts.ArcTimeTable == "" {
		arcTimes = f.table("COMM")
	}

	procTypes := processorTypeIndices(plat)
	if len(procTypes) == 0 {
		return nil, fmt.Errorf("taskgraph: platform %q has no processor PE types", plat.Name)
	}
	accelTypes := reconfigurableTypeIndices(plat)
	attrRNG := rng.New(opts.Seed)

	if len(tg.tasks) == 0 {
		return nil, fmt.Errorf("taskgraph: tgff graph %q has no TASK statements", tg.name)
	}
	g := &Graph{Name: "tgff-" + tg.name}
	nameToID := make(map[string]int, len(tg.tasks))
	// Synthesise one implementation template set per distinct type.
	tpls := map[int][]implTemplate{}
	for _, tk := range tg.tasks {
		if _, ok := nameToID[tk.name]; ok {
			return nil, fmt.Errorf("taskgraph: tgff duplicate task %q", tk.name)
		}
		baseMs := 10.0
		if taskTimes != nil {
			if v, ok := taskTimes[tk.typ]; ok {
				baseMs = v
			}
		}
		if _, ok := tpls[tk.typ]; !ok {
			gp := GenParams{}
			p := gp.withDefaults()
			p.AccelProb = opts.AccelProb
			base := implTemplate{
				peType:      procTypes[attrRNG.Intn(len(procTypes))],
				exTimeMs:    baseMs,
				powerW:      attrRNG.Range(0.3, 1.2),
				binaryKB:    attrRNG.IntRange(16, 128),
				bitstreamID: -1,
			}
			set := []implTemplate{base}
			for _, pt := range procTypes {
				if pt != base.peType && attrRNG.Bool(p.ExtraImplProb) {
					set = append(set, implTemplate{
						peType:      pt,
						exTimeMs:    baseMs * attrRNG.Range(0.85, 1.25),
						powerW:      base.powerW * attrRNG.Range(0.85, 1.25),
						binaryKB:    attrRNG.IntRange(16, 128),
						bitstreamID: -1,
					})
				}
			}
			if len(accelTypes) > 0 && opts.AccelProb > 0 && attrRNG.Bool(opts.AccelProb) {
				set = append(set, implTemplate{
					peType:      accelTypes[attrRNG.Intn(len(accelTypes))],
					exTimeMs:    baseMs * attrRNG.Range(0.7, 1.0),
					powerW:      base.powerW * attrRNG.Range(1.1, 1.5),
					bitstreamID: tk.typ,
				})
			}
			tpls[tk.typ] = set
		}
		id := len(g.Tasks)
		nameToID[tk.name] = id
		task := Task{ID: id, Name: tk.name, Type: tk.typ, Criticality: 1}
		for i, tpl := range tpls[tk.typ] {
			task.Impls = append(task.Impls, Impl{
				ID:           i,
				PEType:       tpl.peType,
				BaseExTimeMs: tpl.exTimeMs,
				BasePowerW:   tpl.powerW,
				BinaryKB:     tpl.binaryKB,
				BitstreamID:  tpl.bitstreamID,
			})
		}
		g.Tasks = append(g.Tasks, task)
	}
	g.NormalizeCriticalities()

	for _, arc := range tg.arcs {
		src, ok := nameToID[arc.from]
		if !ok {
			return nil, fmt.Errorf("taskgraph: tgff arc %q references unknown task %q", arc.name, arc.from)
		}
		dst, ok := nameToID[arc.to]
		if !ok {
			return nil, fmt.Errorf("taskgraph: tgff arc %q references unknown task %q", arc.name, arc.to)
		}
		comm := opts.DefaultCommMs
		if arcTimes != nil {
			if v, ok := arcTimes[arc.typ]; ok {
				comm = v
			}
		}
		g.Edges = append(g.Edges, Edge{ID: len(g.Edges), Src: src, Dst: dst, CommTimeMs: comm})
	}

	if tg.period > 0 {
		g.PeriodMs = tg.period
	} else {
		serial := 0.0
		for i := range g.Tasks {
			serial += g.Tasks[i].Impls[0].BaseExTimeMs
		}
		g.PeriodMs = 1.25 * serial
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("taskgraph: tgff graph invalid: %w", err)
	}
	return g, nil
}

// --- low-level file scanning -----------------------------------------

type tgffTask struct {
	name string
	typ  int
}

type tgffArc struct {
	name, from, to string
	typ            int
}

type tgffGraph struct {
	name   string
	period float64
	tasks  []tgffTask
	arcs   []tgffArc
}

type tgffFile struct {
	graphs []*tgffGraph
	tables map[string]map[int]float64
	order  []string // table names in appearance order
}

func (f *tgffFile) table(name string) map[int]float64 {
	if name == "" {
		return nil
	}
	return f.tables[name]
}

// pickTable returns the named task-time table, or the first table that
// is not the arc table when unnamed.
func (f *tgffFile) pickTable(name, arcName string) map[int]float64 {
	if name != "" {
		return f.tables[name]
	}
	for _, n := range f.order {
		if n != arcName && !(arcName == "" && n == "COMM") {
			return f.tables[n]
		}
	}
	return nil
}

func scanTGFF(r io.Reader) (*tgffFile, error) {
	f := &tgffFile{tables: map[string]map[int]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	var curGraph *tgffGraph
	var curTable map[int]float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		switch {
		case strings.HasPrefix(text, "@"):
			curGraph, curTable = nil, nil
			fields := strings.Fields(strings.TrimPrefix(text, "@"))
			if len(fields) == 0 {
				return nil, fmt.Errorf("taskgraph: tgff line %d: empty block header", line)
			}
			name := fields[0]
			if strings.EqualFold(name, "TASK_GRAPH") {
				idx := ""
				if len(fields) > 1 {
					idx = fields[1]
				}
				curGraph = &tgffGraph{name: idx}
				f.graphs = append(f.graphs, curGraph)
			} else if name != "HYPERPERIOD" { // attribute table
				curTable = map[int]float64{}
				f.tables[name] = curTable
				f.order = append(f.order, name)
			}
		case curGraph != nil && strings.HasPrefix(text, "}"):
			curGraph = nil
		case curTable != nil && strings.HasPrefix(text, "}"):
			curTable = nil
		case curGraph != nil:
			if err := parseGraphLine(curGraph, text); err != nil {
				return nil, fmt.Errorf("taskgraph: tgff line %d: %w", line, err)
			}
		case curTable != nil:
			if err := parseTableLine(curTable, text); err != nil {
				return nil, fmt.Errorf("taskgraph: tgff line %d: %w", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.graphs) == 0 {
		return nil, fmt.Errorf("taskgraph: tgff file contains no @TASK_GRAPH block")
	}
	return f, nil
}

func parseGraphLine(g *tgffGraph, text string) error {
	fields := strings.Fields(text)
	switch strings.ToUpper(fields[0]) {
	case "{":
		return nil
	case "PERIOD":
		if len(fields) < 2 {
			return fmt.Errorf("PERIOD without value")
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return fmt.Errorf("bad PERIOD %q", fields[1])
		}
		g.period = v
	case "TASK":
		// TASK name TYPE k
		if len(fields) < 4 || !strings.EqualFold(fields[2], "TYPE") {
			return fmt.Errorf("malformed TASK statement %q", text)
		}
		typ, err := strconv.Atoi(fields[3])
		if err != nil {
			return fmt.Errorf("bad TASK type %q", fields[3])
		}
		g.tasks = append(g.tasks, tgffTask{name: fields[1], typ: typ})
	case "ARC":
		// ARC name FROM a TO b TYPE k
		kv := map[string]string{}
		for i := 2; i+1 < len(fields); i += 2 {
			kv[strings.ToUpper(fields[i])] = fields[i+1]
		}
		if len(fields) < 8 || kv["FROM"] == "" || kv["TO"] == "" {
			return fmt.Errorf("malformed ARC statement %q", text)
		}
		typ, err := strconv.Atoi(kv["TYPE"])
		if err != nil {
			return fmt.Errorf("bad ARC type %q", kv["TYPE"])
		}
		g.arcs = append(g.arcs, tgffArc{name: fields[1], from: kv["FROM"], to: kv["TO"], typ: typ})
	case "SOFT_DEADLINE", "HARD_DEADLINE":
		// Recognised but unused: deadlines attach to sink tasks.
	default:
		// Unknown statements are skipped for forward compatibility.
	}
	return nil
}

func parseTableLine(t map[int]float64, text string) error {
	fields := strings.Fields(text)
	if fields[0] == "{" {
		return nil
	}
	// Attribute tables list "type value [value...]"; the first value
	// column is used. Header lines (non-numeric) are skipped.
	typ, err := strconv.Atoi(fields[0])
	if err != nil {
		return nil // header or unit row
	}
	if len(fields) < 2 {
		return fmt.Errorf("table row %q has no value", text)
	}
	v, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return fmt.Errorf("bad table value %q", fields[1])
	}
	t[typ] = v
	return nil
}
