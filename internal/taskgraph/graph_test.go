package taskgraph

import (
	"path/filepath"
	"strings"
	"testing"

	"clrdse/internal/platform"
)

func twoTaskGraph() *Graph {
	return &Graph{
		Name: "two",
		Tasks: []Task{
			{ID: 0, Name: "a", Criticality: 0.5, Impls: []Impl{{ID: 0, PEType: 0, BaseExTimeMs: 1, BasePowerW: 1, BinaryKB: 8, BitstreamID: -1}}},
			{ID: 1, Name: "b", Criticality: 0.5, Impls: []Impl{{ID: 0, PEType: 0, BaseExTimeMs: 1, BasePowerW: 1, BinaryKB: 8, BitstreamID: -1}}},
		},
		Edges:    []Edge{{ID: 0, Src: 0, Dst: 1, CommTimeMs: 1}},
		PeriodMs: 10,
	}
}

func TestValidateAcceptsMinimalGraph(t *testing.T) {
	if err := twoTaskGraph().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Graph)
		wantSub string
	}{
		{"no tasks", func(g *Graph) { g.Tasks = nil }, "no tasks"},
		{"bad period", func(g *Graph) { g.PeriodMs = 0 }, "PeriodMs"},
		{"sparse ids", func(g *Graph) { g.Tasks[1].ID = 5 }, "dense"},
		{"no impls", func(g *Graph) { g.Tasks[0].Impls = nil }, "no implementations"},
		{"neg crit", func(g *Graph) { g.Tasks[0].Criticality = -1 }, "negative criticality"},
		{"crit sum", func(g *Graph) { g.Tasks[0].Criticality = 0.9 }, "sum"},
		{"impl id", func(g *Graph) { g.Tasks[0].Impls[0].ID = 3 }, "impl"},
		{"impl time", func(g *Graph) { g.Tasks[0].Impls[0].BaseExTimeMs = 0 }, "BaseExTimeMs"},
		{"impl power", func(g *Graph) { g.Tasks[0].Impls[0].BasePowerW = -1 }, "BasePowerW"},
		{"impl binary", func(g *Graph) { g.Tasks[0].Impls[0].BinaryKB = -1 }, "BinaryKB"},
		{"edge id", func(g *Graph) { g.Edges[0].ID = 2 }, "dense"},
		{"edge range", func(g *Graph) { g.Edges[0].Dst = 9 }, "out of range"},
		{"self loop", func(g *Graph) { g.Edges[0].Dst = 0 }, "self-loop"},
		{"neg comm", func(g *Graph) { g.Edges[0].CommTimeMs = -1 }, "negative comm"},
		{"dup edge", func(g *Graph) {
			g.Edges = append(g.Edges, Edge{ID: 1, Src: 0, Dst: 1, CommTimeMs: 1})
		}, "duplicate"},
		{"cycle", func(g *Graph) {
			g.Edges = append(g.Edges, Edge{ID: 1, Src: 1, Dst: 0, CommTimeMs: 1})
		}, "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := twoTaskGraph()
			tc.mutate(g)
			err := g.Validate()
			if err == nil {
				t.Fatal("Validate accepted broken graph")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g, err := Generate(GenParams{Seed: 1, NumTasks: 40}, platform.Default())
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(g.Tasks))
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges {
		if pos[e.Src] >= pos[e.Dst] {
			t.Fatalf("edge %d->%d violated by topo order", e.Src, e.Dst)
		}
	}
}

func TestDepths(t *testing.T) {
	g := JPEGEncoder(platform.Default())
	d := g.Depths()
	if d[0] != 0 {
		t.Errorf("source depth = %d, want 0", d[0])
	}
	// QZ is the last task and sits behind S -> D -> H -> H5 -> QZ.
	if got := d[len(d)-1]; got != 4 {
		t.Errorf("QZ depth = %d, want 4", got)
	}
}

func TestPredsSuccs(t *testing.T) {
	g := JPEGEncoder(platform.Default())
	preds, succs := g.Preds(), g.Succs()
	if len(preds[0]) != 0 {
		t.Errorf("source has %d preds, want 0", len(preds[0]))
	}
	if len(succs[0]) != 4 {
		t.Errorf("S fan-out = %d, want 4", len(succs[0]))
	}
	// H5 merges four streams.
	h5 := 9
	if len(preds[h5]) != 4 {
		t.Errorf("H5 fan-in = %d, want 4", len(preds[h5]))
	}
}

func TestJPEGShapeMatchesFigure2b(t *testing.T) {
	g := JPEGEncoder(platform.Default())
	if got := len(g.Tasks); got != 11 {
		t.Errorf("JPEG tasks = %d, want 11 (Figure 2b)", got)
	}
	if got := len(g.Edges); got != 13 {
		t.Errorf("JPEG edges = %d, want 13 (Figure 2b)", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("JPEG graph invalid: %v", err)
	}
}

func TestJPEGHasAcceleratorImpls(t *testing.T) {
	g := JPEGEncoder(platform.Default())
	accel := 0
	for i := range g.Tasks {
		for _, im := range g.Tasks[i].Impls {
			if im.BitstreamID >= 0 {
				accel++
			}
		}
	}
	if accel == 0 {
		t.Error("JPEG graph has no accelerator implementations")
	}
	// Entropy coders are software-only.
	for i := 5; i <= 9; i++ {
		for _, im := range g.Tasks[i].Impls {
			if im.BitstreamID >= 0 {
				t.Errorf("task %s should be software-only", g.Tasks[i].Name)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	plat := platform.Default()
	a, err := Generate(GenParams{Seed: 9, NumTasks: 30}, plat)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenParams{Seed: 9, NumTasks: 30}, plat)
	if err != nil {
		t.Fatal(err)
	}
	if a.DOT() != b.DOT() {
		t.Error("same seed produced different graphs")
	}
	c, err := Generate(GenParams{Seed: 10, NumTasks: 30}, plat)
	if err != nil {
		t.Fatal(err)
	}
	if a.DOT() == c.DOT() {
		t.Error("different seeds produced identical graphs")
	}
}

func TestGenerateSizes(t *testing.T) {
	plat := platform.Default()
	for _, n := range []int{1, 10, 50, 100} {
		g, err := Generate(GenParams{Seed: 3, NumTasks: n}, plat)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if g.NumTasks() != n {
			t.Errorf("n=%d: got %d tasks", n, g.NumTasks())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("n=%d: invalid: %v", n, err)
		}
	}
}

func TestGenerateConnectivity(t *testing.T) {
	g, err := Generate(GenParams{Seed: 5, NumTasks: 60}, platform.Default())
	if err != nil {
		t.Fatal(err)
	}
	preds := g.Preds()
	for id := 1; id < g.NumTasks(); id++ {
		if len(preds[id]) == 0 {
			t.Errorf("task %d has no predecessors; generator should connect all non-roots", id)
		}
	}
}

func TestGenerateEverySWTaskRunsOnProcessor(t *testing.T) {
	plat := platform.Default()
	g, err := Generate(GenParams{Seed: 6, NumTasks: 80}, plat)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Tasks {
		ok := false
		for _, im := range g.Tasks[i].Impls {
			if plat.Types[im.PEType].Kind == platform.KindProcessor {
				ok = true
			}
		}
		if !ok {
			t.Errorf("task %d has no software implementation", i)
		}
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	plat := platform.Default()
	cases := []GenParams{
		{Seed: 1, NumTasks: 0},
		{Seed: 1, NumTasks: 5, ExTimeLoMs: 10, ExTimeHiMs: 5},
		{Seed: 1, NumTasks: 5, CommTimeLoMs: -1, CommTimeHiMs: 2},
		{Seed: 1, NumTasks: 5, PowerLoW: 2, PowerHiW: 1},
		{Seed: 1, NumTasks: 5, AccelProb: 1.5},
	}
	for i, p := range cases {
		if _, err := Generate(p, plat); err == nil {
			t.Errorf("case %d: Generate accepted bad params %+v", i, p)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g := JPEGEncoder(platform.Default())
	dot := g.DOT()
	for _, want := range []string{"digraph", "t0 ->", "QZ"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.json")
	g, err := Generate(GenParams{Seed: 2, NumTasks: 25}, platform.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	h, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.DOT() != g.DOT() {
		t.Error("JSON round-trip changed the graph")
	}
}

func TestNormalizeCriticalities(t *testing.T) {
	g := twoTaskGraph()
	g.Tasks[0].Criticality = 3
	g.Tasks[1].Criticality = 1
	g.NormalizeCriticalities()
	if g.Tasks[0].Criticality != 0.75 || g.Tasks[1].Criticality != 0.25 {
		t.Errorf("normalize: got %v, %v", g.Tasks[0].Criticality, g.Tasks[1].Criticality)
	}
}

func TestNormalizeCriticalitiesPanicsOnZeroSum(t *testing.T) {
	g := twoTaskGraph()
	g.Tasks[0].Criticality = 0
	g.Tasks[1].Criticality = 0
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.NormalizeCriticalities()
}

func TestGenerateDegreeBound(t *testing.T) {
	g, err := Generate(GenParams{Seed: 7, NumTasks: 100, MaxInDegree: 2}, platform.Default())
	if err != nil {
		t.Fatal(err)
	}
	for id, eids := range g.Preds() {
		if len(eids) > 2 {
			t.Errorf("task %d in-degree %d exceeds bound 2", id, len(eids))
		}
	}
}

func TestGraphStats(t *testing.T) {
	g := JPEGEncoder(platform.Default())
	s := g.Stats()
	if s.Tasks != 11 || s.Edges != 13 {
		t.Errorf("stats counts = %d/%d", s.Tasks, s.Edges)
	}
	if s.Depth != 4 {
		t.Errorf("depth = %d, want 4 (S->D->H->H5->QZ)", s.Depth)
	}
	if s.Width != 4 {
		t.Errorf("width = %d, want 4 (the D and H levels hold four tasks)", s.Width)
	}
	if s.AccelImpls == 0 {
		t.Error("JPEG should have accelerator impls")
	}
	if s.SerialMs <= 0 || s.AvgDegree <= 0 {
		t.Errorf("degenerate stats %+v", s)
	}
}

func TestGraphStatsChain(t *testing.T) {
	g := twoTaskGraph()
	s := g.Stats()
	if s.Depth != 1 || s.Width != 1 || s.AvgDegree != 1 {
		t.Errorf("chain stats %+v", s)
	}
}
