package taskgraph

import (
	"fmt"

	"clrdse/internal/platform"
	"clrdse/internal/rng"
)

// GenParams parameterises the TGFF-style synthetic application
// generator. The defaults reproduce the flavour of graphs used in the
// paper's evaluation: series-parallel-ish DAGs of 10-100 tasks with
// bounded fan-in/fan-out, several task functionality types, multiple
// implementations per task (software on one or more processor types
// and, for some task types, a hardware accelerator for the PRRs).
type GenParams struct {
	// Seed drives every random decision; equal seeds and params give
	// identical graphs.
	Seed int64
	// NumTasks is the number of task nodes (>= 1).
	NumTasks int
	// NumTaskTypes is the number of distinct functionality classes;
	// 0 selects max(3, NumTasks/4).
	NumTaskTypes int
	// MaxInDegree bounds the number of predecessors of a non-source
	// task (>= 1; 0 selects 3).
	MaxInDegree int
	// ParentWindow bounds how far back (in task IDs) a task may pick
	// its parents, which controls graph depth vs. width (0 selects 6).
	ParentWindow int
	// ExTimeLoMs/ExTimeHiMs bound the base execution time of software
	// implementations (0 selects [5,40] ms).
	ExTimeLoMs, ExTimeHiMs float64
	// CommTimeLoMs/CommTimeHiMs bound edge data-transfer times
	// (0 selects [0.5,4] ms).
	CommTimeLoMs, CommTimeHiMs float64
	// PowerLoW/PowerHiW bound base dynamic power (0 selects [0.3,1.2] W).
	PowerLoW, PowerHiW float64
	// AccelProb is the probability that a task type also has an
	// accelerator implementation targeting the reconfigurable slots
	// (negative selects 0.5; the paper's platform has 3 PRRs that
	// "were used to execute accelerators for the tasks").
	AccelProb float64
	// ExtraImplProb is the probability that a task type carries a
	// software implementation for an additional processor type beyond
	// its first (negative selects 0.7).
	ExtraImplProb float64
	// PeriodSlack scales the application period relative to a serial
	// execution estimate (0 selects 1.25).
	PeriodSlack float64
}

func (p *GenParams) withDefaults() GenParams {
	q := *p
	if q.NumTaskTypes == 0 {
		q.NumTaskTypes = max(3, q.NumTasks/4)
	}
	if q.MaxInDegree == 0 {
		q.MaxInDegree = 3
	}
	if q.ParentWindow == 0 {
		q.ParentWindow = 6
	}
	if q.ExTimeLoMs == 0 && q.ExTimeHiMs == 0 {
		q.ExTimeLoMs, q.ExTimeHiMs = 5, 40
	}
	if q.CommTimeLoMs == 0 && q.CommTimeHiMs == 0 {
		q.CommTimeLoMs, q.CommTimeHiMs = 0.5, 4
	}
	if q.PowerLoW == 0 && q.PowerHiW == 0 {
		q.PowerLoW, q.PowerHiW = 0.3, 1.2
	}
	if q.AccelProb < 0 {
		q.AccelProb = 0.5
	} else if q.AccelProb == 0 {
		q.AccelProb = 0.5
	}
	if q.ExtraImplProb <= 0 {
		q.ExtraImplProb = 0.7
	}
	if q.PeriodSlack == 0 {
		q.PeriodSlack = 1.25
	}
	return q
}

func (p *GenParams) validate() error {
	switch {
	case p.NumTasks < 1:
		return fmt.Errorf("taskgraph: NumTasks must be >= 1, got %d", p.NumTasks)
	case p.ExTimeHiMs < p.ExTimeLoMs || p.ExTimeLoMs <= 0:
		return fmt.Errorf("taskgraph: bad ExTime range [%v,%v]", p.ExTimeLoMs, p.ExTimeHiMs)
	case p.CommTimeHiMs < p.CommTimeLoMs || p.CommTimeLoMs < 0:
		return fmt.Errorf("taskgraph: bad CommTime range [%v,%v]", p.CommTimeLoMs, p.CommTimeHiMs)
	case p.PowerHiW < p.PowerLoW || p.PowerLoW <= 0:
		return fmt.Errorf("taskgraph: bad Power range [%v,%v]", p.PowerLoW, p.PowerHiW)
	case p.AccelProb < 0 || p.AccelProb > 1:
		return fmt.Errorf("taskgraph: AccelProb must be in [0,1], got %v", p.AccelProb)
	}
	return nil
}

// implTemplate is the per-task-type implementation blueprint shared by
// all tasks of that type, mirroring TGFF's type-attribute tables.
type implTemplate struct {
	peType      int
	exTimeMs    float64
	powerW      float64
	binaryKB    int
	bitstreamID int
}

// Generate builds a synthetic application for the given platform.
// Every task is guaranteed at least one software implementation, so
// any task-to-PE mapping problem on the platform's processor PEs is
// satisfiable.
func Generate(p GenParams, plat *platform.Platform) (*Graph, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	src := rng.New(p.Seed)
	structRNG := src.Split(1)
	attrRNG := src.Split(2)

	procTypes := processorTypeIndices(plat)
	if len(procTypes) == 0 {
		return nil, fmt.Errorf("taskgraph: platform %q has no processor PE types", plat.Name)
	}
	accelTypes := reconfigurableTypeIndices(plat)

	// Per-type implementation blueprints.
	templates := make([][]implTemplate, p.NumTaskTypes)
	for ty := range templates {
		templates[ty] = genTemplates(ty, p, attrRNG, procTypes, accelTypes)
	}

	g := &Graph{Name: fmt.Sprintf("synthetic-n%d-s%d", p.NumTasks, p.Seed)}
	for id := 0; id < p.NumTasks; id++ {
		ty := structRNG.Intn(p.NumTaskTypes)
		task := Task{
			ID:          id,
			Name:        fmt.Sprintf("t%d", id),
			Type:        ty,
			Criticality: attrRNG.Range(0.5, 1.5),
		}
		for i, tpl := range templates[ty] {
			task.Impls = append(task.Impls, Impl{
				ID:           i,
				PEType:       tpl.peType,
				BaseExTimeMs: tpl.exTimeMs,
				BasePowerW:   tpl.powerW,
				BinaryKB:     tpl.binaryKB,
				BitstreamID:  tpl.bitstreamID,
			})
		}
		g.Tasks = append(g.Tasks, task)
	}
	g.NormalizeCriticalities()

	// DAG structure: every non-source task picks 1..MaxInDegree
	// distinct parents from a sliding window of earlier tasks, which
	// yields the layered fan-in/fan-out shape TGFF produces.
	edgeID := 0
	for id := 1; id < p.NumTasks; id++ {
		lo := max(0, id-p.ParentWindow)
		nParents := 1
		if id-lo > 1 {
			nParents = structRNG.IntRange(1, min(p.MaxInDegree, id-lo))
		}
		perm := structRNG.Perm(id - lo)
		for k := 0; k < nParents; k++ {
			src := lo + perm[k]
			g.Edges = append(g.Edges, Edge{
				ID:         edgeID,
				Src:        src,
				Dst:        id,
				CommTimeMs: attrRNG.Range(p.CommTimeLoMs, p.CommTimeHiMs),
			})
			edgeID++
		}
	}

	// Period: serial execution estimate with slack, so the platform's
	// parallelism gives genuine schedule headroom.
	serial := 0.0
	for i := range g.Tasks {
		serial += g.Tasks[i].Impls[0].BaseExTimeMs
	}
	g.PeriodMs = p.PeriodSlack * serial

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("taskgraph: generated graph invalid: %w", err)
	}
	return g, nil
}

func genTemplates(taskType int, p GenParams, r *rng.Source, procTypes, accelTypes []int) []implTemplate {
	var tpls []implTemplate
	base := r.Range(p.ExTimeLoMs, p.ExTimeHiMs)
	power := r.Range(p.PowerLoW, p.PowerHiW)

	// First software implementation on a random processor type.
	first := procTypes[r.Intn(len(procTypes))]
	tpls = append(tpls, implTemplate{
		peType:      first,
		exTimeMs:    base,
		powerW:      power,
		binaryKB:    r.IntRange(16, 128),
		bitstreamID: -1,
	})
	// Additional software implementations on other processor types;
	// alternative algorithm variants perturb time and power.
	for _, pt := range procTypes {
		if pt == first {
			continue
		}
		if r.Bool(p.ExtraImplProb) {
			tpls = append(tpls, implTemplate{
				peType:      pt,
				exTimeMs:    base * r.Range(0.85, 1.25),
				powerW:      power * r.Range(0.85, 1.25),
				binaryKB:    r.IntRange(16, 128),
				bitstreamID: -1,
			})
		}
	}
	// Accelerator implementation: markedly faster per unit work but
	// power-hungrier; identified by a per-task-type bitstream.
	if len(accelTypes) > 0 && r.Bool(p.AccelProb) {
		at := accelTypes[r.Intn(len(accelTypes))]
		tpls = append(tpls, implTemplate{
			peType:      at,
			exTimeMs:    base * r.Range(0.7, 1.0), // further divided by the slot's SpeedFactor
			powerW:      power * r.Range(1.1, 1.5),
			binaryKB:    0,
			bitstreamID: taskType,
		})
	}
	return tpls
}

func processorTypeIndices(plat *platform.Platform) []int {
	var idx []int
	for i := range plat.Types {
		if plat.Types[i].Kind == platform.KindProcessor {
			idx = append(idx, i)
		}
	}
	return idx
}

func reconfigurableTypeIndices(plat *platform.Platform) []int {
	var idx []int
	for i := range plat.Types {
		if plat.Types[i].Kind == platform.KindReconfigurable {
			idx = append(idx, i)
		}
	}
	return idx
}
