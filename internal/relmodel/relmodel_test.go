package relmodel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"clrdse/internal/platform"
	"clrdse/internal/taskgraph"
)

var testImpl = taskgraph.Impl{ID: 0, PEType: 1, BaseExTimeMs: 20, BasePowerW: 0.8, BinaryKB: 64, BitstreamID: -1}

func midType() *platform.PEType { return &platform.Default().Types[1] }

func TestCataloguesValid(t *testing.T) {
	for _, c := range []*Catalogue{DefaultCatalogue(), CoarseCatalogue(), HWOnlyCatalogue()} {
		if err := c.Validate(); err != nil {
			t.Errorf("catalogue invalid: %v", err)
		}
	}
}

func TestCatalogueSizes(t *testing.T) {
	if got := DefaultCatalogue().NumConfigs(); got != 3*4*4 {
		t.Errorf("default configs = %d, want 48", got)
	}
	if got := CoarseCatalogue().NumConfigs(); got != 8 {
		t.Errorf("coarse configs = %d, want 8", got)
	}
	if got := HWOnlyCatalogue().NumConfigs(); got != 3 {
		t.Errorf("hw-only configs = %d, want 3", got)
	}
	// CLR2 must be strictly finer than CLR1 (Figure 1's premise).
	if CoarseCatalogue().NumConfigs() >= DefaultCatalogue().NumConfigs() {
		t.Error("CLR1 space should be smaller than CLR2 space")
	}
}

func TestConfigIndexRoundTrip(t *testing.T) {
	cat := DefaultCatalogue()
	for i := 0; i < cat.NumConfigs(); i++ {
		cfg := ConfigFromIndex(i, cat)
		if !cfg.Valid(cat) {
			t.Fatalf("index %d decoded to invalid config %+v", i, cfg)
		}
		if got := cfg.Index(cat); got != i {
			t.Fatalf("round trip %d -> %+v -> %d", i, cfg, got)
		}
	}
}

func TestConfigDescribe(t *testing.T) {
	cat := DefaultCatalogue()
	s := Config{HW: 2, SSW: 1, ASW: 3}.Describe(cat)
	for _, want := range []string{"partial-TMR", "retry-1", "code-tripling"} {
		if !strings.Contains(s, want) {
			t.Errorf("Describe = %q, missing %q", s, want)
		}
	}
}

func TestNoneConfigIsIdentity(t *testing.T) {
	cat := DefaultCatalogue()
	env := DefaultEnv()
	pt := midType()
	m := Evaluate(&testImpl, pt, Config{}, cat, env)
	wantT := testImpl.BaseExTimeMs / pt.SpeedFactor
	if math.Abs(m.MinExTMs-wantT) > 1e-12 {
		t.Errorf("MinExT = %v, want %v", m.MinExTMs, wantT)
	}
	if m.AvgExTMs != m.MinExTMs {
		t.Errorf("no SSW method: AvgExT %v should equal MinExT %v", m.AvgExTMs, m.MinExTMs)
	}
	wantP := testImpl.BasePowerW * pt.PowerFactor
	if math.Abs(m.PowerW-wantP) > 1e-12 {
		t.Errorf("Power = %v, want %v", m.PowerW, wantP)
	}
	wantErr := 1 - math.Exp(-env.LambdaSEUPerMs*wantT*(1-pt.MaskingFactor))
	if math.Abs(m.ErrProb-wantErr) > 1e-12 {
		t.Errorf("ErrProb = %v, want %v", m.ErrProb, wantErr)
	}
}

func TestEveryProtectionReducesError(t *testing.T) {
	cat := DefaultCatalogue()
	env := DefaultEnv()
	pt := midType()
	base := Evaluate(&testImpl, pt, Config{}, cat, env).ErrProb
	for hw := range cat.HW {
		for ssw := range cat.SSW {
			for asw := range cat.ASW {
				cfg := Config{HW: hw, SSW: ssw, ASW: asw}
				if cfg == (Config{}) {
					continue
				}
				m := Evaluate(&testImpl, pt, cfg, cat, env)
				if m.ErrProb >= base {
					t.Errorf("config %s: ErrProb %v >= unprotected %v", cfg.Describe(cat), m.ErrProb, base)
				}
			}
		}
	}
}

func TestEveryProtectionCostsSomething(t *testing.T) {
	cat := DefaultCatalogue()
	env := DefaultEnv()
	pt := midType()
	base := Evaluate(&testImpl, pt, Config{}, cat, env)
	baseEnergy := base.AvgExTMs * base.PowerW
	for i := 1; i < cat.NumConfigs(); i++ {
		cfg := ConfigFromIndex(i, cat)
		m := Evaluate(&testImpl, pt, cfg, cat, env)
		energy := m.AvgExTMs * m.PowerW
		if energy <= baseEnergy {
			t.Errorf("config %s: energy %v <= unprotected %v (no free lunch)", cfg.Describe(cat), energy, baseEnergy)
		}
	}
}

func TestRetryImprovesWithAttempts(t *testing.T) {
	cat := DefaultCatalogue()
	env := DefaultEnv()
	pt := midType()
	r1 := Evaluate(&testImpl, pt, Config{SSW: 1}, cat, env)
	r2 := Evaluate(&testImpl, pt, Config{SSW: 2}, cat, env)
	if r2.ErrProb >= r1.ErrProb {
		t.Errorf("retry-2 ErrProb %v >= retry-1 %v", r2.ErrProb, r1.ErrProb)
	}
	if r2.AvgExTMs < r1.AvgExTMs {
		t.Errorf("retry-2 AvgExT %v < retry-1 %v", r2.AvgExTMs, r1.AvgExTMs)
	}
	if r1.MinExTMs != r2.MinExTMs {
		t.Errorf("retry count should not change MinExT: %v vs %v", r1.MinExTMs, r2.MinExTMs)
	}
}

func TestCheckpointCheaperRestartThanRetry(t *testing.T) {
	cat := DefaultCatalogue()
	env := Env{LambdaSEUPerMs: 0.05, Eta0Ms: 1e9, StressCoeff: 0.1} // high rate to expose re-execution cost
	pt := midType()
	retry := Evaluate(&testImpl, pt, Config{SSW: 2}, cat, env) // retry-2, full restart
	ckpt := Evaluate(&testImpl, pt, Config{SSW: 3}, cat, env)  // checkpoint, partial restart
	retryOver := retry.AvgExTMs/retry.MinExTMs - 1
	ckptOver := ckpt.AvgExTMs/ckpt.MinExTMs - 1
	if ckptOver >= retryOver {
		t.Errorf("checkpoint relative re-exec overhead %v should be < retry %v", ckptOver, retryOver)
	}
}

func TestMaskingFactorMatters(t *testing.T) {
	cat := DefaultCatalogue()
	env := DefaultEnv()
	plat := platform.Default()
	perf := &plat.Types[0] // masking 0.30
	safe := &plat.Types[2] // masking 0.75
	mPerf := Evaluate(&testImpl, perf, Config{}, cat, env)
	mSafe := Evaluate(&testImpl, safe, Config{}, cat, env)
	// The safe core is slower, so exposure time is longer; normalise by
	// comparing per-ms hazard instead of raw ErrProb.
	hazPerf := -math.Log(1-mPerf.ErrProb) / mPerf.MinExTMs
	hazSafe := -math.Log(1-mSafe.ErrProb) / mSafe.MinExTMs
	if hazSafe >= hazPerf {
		t.Errorf("hardened core hazard %v >= perf core hazard %v", hazSafe, hazPerf)
	}
}

func TestStressShrinksEta(t *testing.T) {
	cat := DefaultCatalogue()
	env := DefaultEnv()
	pt := midType()
	plain := Evaluate(&testImpl, pt, Config{}, cat, env)
	tmr := Evaluate(&testImpl, pt, Config{HW: 2}, cat, env)
	if tmr.EtaMs >= plain.EtaMs {
		t.Errorf("TMR eta %v should be < unprotected eta %v", tmr.EtaMs, plain.EtaMs)
	}
	if tmr.MTTFMs >= plain.MTTFMs {
		t.Errorf("TMR MTTF %v should be < unprotected MTTF %v", tmr.MTTFMs, plain.MTTFMs)
	}
}

func TestMTTFUsesBeta(t *testing.T) {
	cat := DefaultCatalogue()
	env := DefaultEnv()
	pt := *midType()
	m := Evaluate(&testImpl, &pt, Config{}, cat, env)
	want := m.EtaMs * math.Gamma(1+1/pt.AgingBeta)
	if math.Abs(m.MTTFMs-want) > 1e-6*want {
		t.Errorf("MTTF = %v, want %v", m.MTTFMs, want)
	}
}

func TestEvaluatePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Evaluate(&testImpl, midType(), Config{HW: 99}, DefaultCatalogue(), DefaultEnv())
}

func TestValidateRejectsBadMethods(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Catalogue)
	}{
		{"empty layer", func(c *Catalogue) { c.SSW = nil }},
		{"wrong layer tag", func(c *Catalogue) { c.HW[1].Layer = LayerASW }},
		{"none not identity", func(c *Catalogue) { c.HW[0].Coverage = 0.5 }},
		{"time factor", func(c *Catalogue) { c.ASW[1].TimeFactor = 0.9 }},
		{"coverage 1", func(c *Catalogue) { c.ASW[1].Coverage = 1.0 }},
		{"neg retries", func(c *Catalogue) { c.SSW[1].Retries = -1 }},
		{"retries no restart", func(c *Catalogue) { c.SSW[1].RestartFraction = 0 }},
		{"empty name", func(c *Catalogue) { c.HW[1].Name = "" }},
		{"neg stress", func(c *Catalogue) { c.HW[1].StressFactor = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := DefaultCatalogue()
			tc.mutate(c)
			if err := c.Validate(); err == nil {
				t.Error("Validate accepted broken catalogue")
			}
		})
	}
}

// Property: ErrProb is always a valid probability, AvgExT >= MinExT > 0
// and Power > 0, for every config in the catalogue and arbitrary
// plausible impl parameters.
func TestQuickMetricInvariants(t *testing.T) {
	cat := DefaultCatalogue()
	env := DefaultEnv()
	plat := platform.Default()
	f := func(timeQ, powQ uint16, cfgIdx uint8, typeIdx uint8) bool {
		im := taskgraph.Impl{
			BaseExTimeMs: 0.1 + float64(timeQ%5000)/10,
			BasePowerW:   0.05 + float64(powQ%200)/100,
			BitstreamID:  -1,
		}
		cfg := ConfigFromIndex(int(cfgIdx)%cat.NumConfigs(), cat)
		pt := &plat.Types[int(typeIdx)%len(plat.Types)]
		m := Evaluate(&im, pt, cfg, cat, env)
		return m.ErrProb >= 0 && m.ErrProb < 1 &&
			m.MinExTMs > 0 && m.AvgExTMs >= m.MinExTMs &&
			m.PowerW > 0 && m.EtaMs > 0 && m.MTTFMs > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: adding protection at any single layer never increases
// ErrProb relative to the unprotected config, for arbitrary impls.
func TestQuickMonotoneProtection(t *testing.T) {
	cat := DefaultCatalogue()
	env := DefaultEnv()
	pt := midType()
	f := func(timeQ uint16) bool {
		im := taskgraph.Impl{
			BaseExTimeMs: 0.5 + float64(timeQ%2000)/20,
			BasePowerW:   0.5,
			BitstreamID:  -1,
		}
		base := Evaluate(&im, pt, Config{}, cat, env).ErrProb
		for hw := range cat.HW {
			if Evaluate(&im, pt, Config{HW: hw}, cat, env).ErrProb > base+1e-15 {
				return false
			}
		}
		for asw := range cat.ASW {
			if Evaluate(&im, pt, Config{ASW: asw}, cat, env).ErrProb > base+1e-15 {
				return false
			}
		}
		for ssw := range cat.SSW {
			if Evaluate(&im, pt, Config{SSW: ssw}, cat, env).ErrProb > base+1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLayerString(t *testing.T) {
	if LayerHW.String() != "HW" || LayerSSW.String() != "SSW" || LayerASW.String() != "ASW" {
		t.Error("Layer.String mismatch")
	}
	if !strings.Contains(Layer(9).String(), "9") {
		t.Error("unknown layer string")
	}
}

func TestExtendedCatalogue(t *testing.T) {
	c := ExtendedCatalogue()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.NumConfigs(); got != 5*6*6 {
		t.Errorf("extended configs = %d, want 180", got)
	}
	// Strictly a superset of the default space.
	d := DefaultCatalogue()
	if len(c.HW) <= len(d.HW) || len(c.SSW) <= len(d.SSW) || len(c.ASW) <= len(d.ASW) {
		t.Error("extended catalogue should extend every layer")
	}
	for i, m := range d.HW {
		if c.HW[i].Name != m.Name {
			t.Error("extended catalogue reordered default HW methods")
		}
	}
	// The extended invariants hold for every new config too.
	env := DefaultEnv()
	pt := midType()
	base := Evaluate(&testImpl, pt, Config{}, c, env)
	for i := 1; i < c.NumConfigs(); i++ {
		cfg := ConfigFromIndex(i, c)
		m := Evaluate(&testImpl, pt, cfg, c, env)
		if m.ErrProb >= base.ErrProb {
			t.Errorf("extended config %s does not reduce error", cfg.Describe(c))
		}
		if m.AvgExTMs*m.PowerW <= base.AvgExTMs*base.PowerW {
			t.Errorf("extended config %s is a free lunch", cfg.Describe(c))
		}
	}
	// Full TMR out-protects partial TMR; RS-code out-protects hamming.
	pTMR := Evaluate(&testImpl, pt, Config{HW: 2}, c, env)
	fTMR := Evaluate(&testImpl, pt, Config{HW: 3}, c, env)
	if fTMR.ErrProb >= pTMR.ErrProb {
		t.Error("full TMR should beat partial TMR on error")
	}
	if fTMR.PowerW <= pTMR.PowerW {
		t.Error("full TMR should cost more power than partial TMR")
	}
}
