package relmodel

// none returns the identity method for a layer.
func none(l Layer) Method {
	return Method{Name: "none", Layer: l, TimeFactor: 1, PowerFactor: 1}
}

// DefaultCatalogue returns the full CLR method catalogue used for the
// fine-grained configuration space the paper calls CLR2. Per layer it
// contains the sample methods of Table 2:
//
//	HW:  circuit hardening, partial TMR
//	SSW: retry (1 and 2 attempts), checkpoint/rollback
//	ASW: checksum-with-recompute, Hamming correction, code tripling
//
// Overhead and coverage numbers are representative first-order values
// chosen so the layers present genuinely different trade-offs: spatial
// redundancy is time-cheap but power-hungry, temporal redundancy is
// average-time-expensive but power-cheap, and information redundancy
// sits between, with the strongest methods costing the most.
func DefaultCatalogue() *Catalogue {
	c := &Catalogue{
		HW: []Method{
			none(LayerHW),
			{
				Name: "harden", Layer: LayerHW,
				TimeFactor: 1.05, PowerFactor: 1.30,
				Coverage: 0.60, StressFactor: 0.20,
			},
			{
				Name: "partial-TMR", Layer: LayerHW,
				TimeFactor: 1.08, PowerFactor: 1.95,
				Coverage: 0.88, StressFactor: 0.50,
			},
		},
		SSW: []Method{
			none(LayerSSW),
			{
				Name: "retry-1", Layer: LayerSSW,
				TimeFactor: 1.03, PowerFactor: 1.02,
				DetectCoverage: 0.92, Retries: 1, RestartFraction: 1.0,
			},
			{
				Name: "retry-2", Layer: LayerSSW,
				TimeFactor: 1.03, PowerFactor: 1.02,
				DetectCoverage: 0.92, Retries: 2, RestartFraction: 1.0,
			},
			{
				Name: "checkpoint", Layer: LayerSSW,
				TimeFactor: 1.12, PowerFactor: 1.05,
				DetectCoverage: 0.97, Retries: 2, RestartFraction: 0.45,
				StressFactor: 0.05,
			},
		},
		ASW: []Method{
			none(LayerASW),
			{
				Name: "checksum", Layer: LayerASW,
				TimeFactor: 1.08, PowerFactor: 1.06,
				Coverage: 0.45,
			},
			{
				Name: "hamming", Layer: LayerASW,
				TimeFactor: 1.20, PowerFactor: 1.12,
				Coverage: 0.72, StressFactor: 0.05,
			},
			{
				Name: "code-tripling", Layer: LayerASW,
				TimeFactor: 1.48, PowerFactor: 1.32,
				Coverage: 0.94, StressFactor: 0.10,
			},
		},
	}
	mustValidate(c)
	return c
}

// CoarseCatalogue returns the reduced configuration space the paper
// calls CLR1: one representative method per layer besides "none", so
// the design-time DSE has fewer, coarser adaptation points (6-ish
// Pareto points vs CLR2's 9 in Figure 1).
func CoarseCatalogue() *Catalogue {
	full := DefaultCatalogue()
	c := &Catalogue{
		HW:  []Method{full.HW[0], full.HW[2]},   // none, partial-TMR
		SSW: []Method{full.SSW[0], full.SSW[2]}, // none, retry-2
		ASW: []Method{full.ASW[0], full.ASW[3]}, // none, code-tripling
	}
	mustValidate(c)
	return c
}

// HWOnlyCatalogue returns the traditional single-layer baseline: all
// mitigation happens at the hardware layer (the "HW-Only" system of
// Figure 1). The software layers offer only the identity method.
func HWOnlyCatalogue() *Catalogue {
	full := DefaultCatalogue()
	c := &Catalogue{
		HW:  full.HW, // none, harden, partial-TMR
		SSW: []Method{none(LayerSSW)},
		ASW: []Method{none(LayerASW)},
	}
	mustValidate(c)
	return c
}

// ExtendedCatalogue returns a broader method space than the paper's
// sample set, for studies of configuration-space granularity beyond
// CLR2 (180 per-task configurations): full TMR and memory scrubbing at
// the hardware layer, a third retry and a light checkpoint variant at
// the system-software layer, and ABFT plus Reed-Solomon-style coding
// at the application layer. As with the default catalogue, numbers are
// representative first-order values exposing distinct trade-offs.
func ExtendedCatalogue() *Catalogue {
	c := DefaultCatalogue()
	c.HW = append(c.HW,
		Method{
			Name: "full-TMR", Layer: LayerHW,
			TimeFactor: 1.12, PowerFactor: 2.90,
			Coverage: 0.97, StressFactor: 0.90,
		},
		Method{
			Name: "scrubbing", Layer: LayerHW,
			TimeFactor: 1.02, PowerFactor: 1.08,
			Coverage: 0.35, StressFactor: 0.05,
		},
	)
	c.SSW = append(c.SSW,
		Method{
			Name: "retry-3", Layer: LayerSSW,
			TimeFactor: 1.03, PowerFactor: 1.02,
			DetectCoverage: 0.92, Retries: 3, RestartFraction: 1.0,
		},
		Method{
			Name: "checkpoint-light", Layer: LayerSSW,
			TimeFactor: 1.06, PowerFactor: 1.03,
			DetectCoverage: 0.90, Retries: 1, RestartFraction: 0.45,
		},
	)
	c.ASW = append(c.ASW,
		Method{
			Name: "abft", Layer: LayerASW,
			TimeFactor: 1.25, PowerFactor: 1.15,
			Coverage: 0.80, StressFactor: 0.05,
		},
		Method{
			Name: "rs-code", Layer: LayerASW,
			TimeFactor: 1.35, PowerFactor: 1.25,
			Coverage: 0.90, StressFactor: 0.08,
		},
	)
	mustValidate(c)
	return c
}

func mustValidate(c *Catalogue) {
	if err := c.Validate(); err != nil {
		panic("relmodel: built-in catalogue invalid: " + err.Error())
	}
}
