// Package relmodel implements the cross-layer reliability (CLR) model
// of the paper's Section 3.3 and Table 2. Fault-mitigation methods are
// organised into three abstraction layers:
//
//   - Hardware (HWRel) — spatial redundancy: partial TMR, circuit
//     hardening.
//   - System software (SSWRel) — temporal redundancy: retry,
//     checkpointing.
//   - Application software (ASWRel) — information redundancy: checksum,
//     Hamming correction, code tripling.
//
// A Config selects one method per layer; varying the selection varies
// the task-level performance metrics of Table 2 — minimum execution
// time MinExT, average execution time AvgExT, probability of error
// during execution ErrProb, mean time to failure MTTF (via the Weibull
// scale parameter eta, a thermal-stress indicator), and average power
// W — which the scheduler aggregates into the system-level QoS metrics
// of Table 3.
//
// The quantitative models follow the first-order composition used by
// the CLRFrame framework the paper builds on: raw single-event-upset
// arrivals are Poisson with rate lambda_SEU, a PE's architectural
// masking factor removes a fraction of strikes, spatial and information
// redundancy each mask/correct a further fraction of the surviving
// errors (multiplicative residual), and temporal redundancy re-executes
// on detection, trading average execution time for residual error
// probability.
package relmodel

import (
	"fmt"
	"math"

	"clrdse/internal/platform"
	"clrdse/internal/taskgraph"
)

// Layer identifies an abstraction layer of the system stack.
type Layer int

const (
	// LayerHW is the hardware layer (spatial redundancy).
	LayerHW Layer = iota
	// LayerSSW is the system-software layer (temporal redundancy).
	LayerSSW
	// LayerASW is the application-software layer (information
	// redundancy).
	LayerASW
)

func (l Layer) String() string {
	switch l {
	case LayerHW:
		return "HW"
	case LayerSSW:
		return "SSW"
	case LayerASW:
		return "ASW"
	default:
		return fmt.Sprintf("Layer(%d)", int(l))
	}
}

// Method is one fault-mitigation technique at one layer.
type Method struct {
	// Name labels the method ("partial-TMR", "retry-2", ...).
	Name string
	// Layer is the abstraction layer the method belongs to.
	Layer Layer
	// TimeFactor multiplies the error-free execution time (spatial
	// voters, encode/decode passes, checkpoint writes).
	TimeFactor float64
	// PowerFactor multiplies dynamic power (replicated logic, extra
	// computation).
	PowerFactor float64
	// Coverage, for HW and ASW methods, is the fraction of surviving
	// errors the method masks or corrects outright.
	Coverage float64
	// DetectCoverage, for SSW methods, is the fraction of erroneous
	// executions the method detects (and therefore re-executes).
	DetectCoverage float64
	// Retries, for SSW methods, is the maximum number of
	// re-executions after a detected error.
	Retries int
	// RestartFraction, for SSW methods, is the cost of one
	// re-execution relative to MinExT: 1.0 for a full retry, less for
	// checkpoint/rollback schemes that resume mid-task.
	RestartFraction float64
	// StressFactor adds to the thermal-stress term that shrinks the
	// Weibull scale parameter eta (spatial redundancy concentrates
	// power and raises local temperature).
	StressFactor float64
}

// Validate checks the method's parameters.
func (m *Method) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("relmodel: method with empty name")
	case m.TimeFactor < 1:
		return fmt.Errorf("relmodel: method %q: TimeFactor must be >= 1, got %v", m.Name, m.TimeFactor)
	case m.PowerFactor < 1 && m.Layer != LayerHW:
		return fmt.Errorf("relmodel: method %q: PowerFactor must be >= 1, got %v", m.Name, m.PowerFactor)
	case m.PowerFactor <= 0:
		return fmt.Errorf("relmodel: method %q: PowerFactor must be positive, got %v", m.Name, m.PowerFactor)
	case m.Coverage < 0 || m.Coverage >= 1:
		return fmt.Errorf("relmodel: method %q: Coverage must be in [0,1), got %v", m.Name, m.Coverage)
	case m.DetectCoverage < 0 || m.DetectCoverage > 1:
		return fmt.Errorf("relmodel: method %q: DetectCoverage must be in [0,1], got %v", m.Name, m.DetectCoverage)
	case m.Retries < 0:
		return fmt.Errorf("relmodel: method %q: negative Retries", m.Name)
	case m.Retries > 0 && m.RestartFraction <= 0:
		return fmt.Errorf("relmodel: method %q: Retries without RestartFraction", m.Name)
	case m.StressFactor < 0:
		return fmt.Errorf("relmodel: method %q: negative StressFactor", m.Name)
	}
	return nil
}

// Catalogue is the per-layer set of available methods. Index 0 of each
// layer must be the "none" method (no redundancy).
type Catalogue struct {
	HW, SSW, ASW []Method
}

// Validate checks the catalogue's structure.
func (c *Catalogue) Validate() error {
	for _, layer := range []struct {
		name    string
		ms      []Method
		layerID Layer
	}{{"HW", c.HW, LayerHW}, {"SSW", c.SSW, LayerSSW}, {"ASW", c.ASW, LayerASW}} {
		if len(layer.ms) == 0 {
			return fmt.Errorf("relmodel: catalogue has no %s methods", layer.name)
		}
		for i := range layer.ms {
			m := &layer.ms[i]
			if m.Layer != layer.layerID {
				return fmt.Errorf("relmodel: %s method %q has layer %v", layer.name, m.Name, m.Layer)
			}
			if err := m.Validate(); err != nil {
				return err
			}
		}
		none := &layer.ms[0]
		if none.Coverage != 0 || none.DetectCoverage != 0 || none.Retries != 0 || none.TimeFactor != 1 || none.PowerFactor != 1 {
			return fmt.Errorf("relmodel: %s method 0 (%q) must be the identity method", layer.name, none.Name)
		}
	}
	return nil
}

// NumConfigs is the size of the per-task CLR configuration space
// C_t = HWRel x SSWRel x ASWRel.
func (c *Catalogue) NumConfigs() int {
	return len(c.HW) * len(c.SSW) * len(c.ASW)
}

// Config selects one method per layer by catalogue index.
type Config struct {
	HW, SSW, ASW int
}

// Valid reports whether the config's indices are within the catalogue.
func (cfg Config) Valid(c *Catalogue) bool {
	return cfg.HW >= 0 && cfg.HW < len(c.HW) &&
		cfg.SSW >= 0 && cfg.SSW < len(c.SSW) &&
		cfg.ASW >= 0 && cfg.ASW < len(c.ASW)
}

// Index flattens the config into [0, NumConfigs()).
func (cfg Config) Index(c *Catalogue) int {
	return (cfg.HW*len(c.SSW)+cfg.SSW)*len(c.ASW) + cfg.ASW
}

// ConfigFromIndex is the inverse of Config.Index.
func ConfigFromIndex(idx int, c *Catalogue) Config {
	asw := idx % len(c.ASW)
	idx /= len(c.ASW)
	ssw := idx % len(c.SSW)
	hw := idx / len(c.SSW)
	return Config{HW: hw, SSW: ssw, ASW: asw}
}

// String renders the config using the catalogue's method names.
func (cfg Config) Describe(c *Catalogue) string {
	return fmt.Sprintf("%s+%s+%s", c.HW[cfg.HW].Name, c.SSW[cfg.SSW].Name, c.ASW[cfg.ASW].Name)
}

// Env bundles the environment parameters that the task-level metrics
// depend on but that are not properties of a single task.
type Env struct {
	// LambdaSEUPerMs is the raw single-event-upset arrival rate seen
	// by a PE, in upsets per millisecond of execution.
	LambdaSEUPerMs float64
	// Eta0Ms is the unstressed Weibull scale parameter (lifetime
	// scale) of a PE, in milliseconds of operation.
	Eta0Ms float64
	// StressCoeff converts watts of task power into relative thermal
	// stress on eta: eta = Eta0 / (1 + StressCoeff * W * (1+sum(StressFactor))).
	StressCoeff float64
}

// DefaultEnv returns the environment used throughout the evaluation:
// an SEU rate high enough that unprotected applications see a few
// percent error rate (the regime of the paper's Figure 1, which spans
// 0-10% application error rate).
func DefaultEnv() Env {
	return Env{
		LambdaSEUPerMs: 2.5e-3,
		Eta0Ms:         5e9, // ~2 months of continuous operation
		StressCoeff:    0.15,
	}
}

// TaskMetrics are the task-level performance metrics of Table 2 for
// one (implementation, PE type, CLR configuration) triple.
type TaskMetrics struct {
	// MinExTMs is the minimum (error-free) execution time.
	MinExTMs float64
	// RawErrProb is the probability that at least one un-masked upset
	// strikes during one execution attempt, before any CLR layer acts
	// (the fault-injection simulator samples against this).
	RawErrProb float64
	// AvgExTMs is the expected execution time including re-executions
	// triggered by the SSW layer.
	AvgExTMs float64
	// ErrProb is the probability that the task's result is erroneous
	// after all three layers have acted.
	ErrProb float64
	// PowerW is the average power drawn while executing.
	PowerW float64
	// EtaMs is the stress-adjusted Weibull scale parameter.
	EtaMs float64
	// MTTFMs is the mean time to failure, eta * Gamma(1 + 1/beta).
	MTTFMs float64
}

// Evaluate computes the Table 2 metrics for executing implementation
// im on a PE of type pt under CLR configuration cfg. It panics if cfg
// is out of range for the catalogue; callers validate configurations
// when decoding genomes.
func Evaluate(im *taskgraph.Impl, pt *platform.PEType, cfg Config, cat *Catalogue, env Env) TaskMetrics {
	if !cfg.Valid(cat) {
		panic(fmt.Sprintf("relmodel: config %+v out of range", cfg))
	}
	hw := &cat.HW[cfg.HW]
	ssw := &cat.SSW[cfg.SSW]
	asw := &cat.ASW[cfg.ASW]

	// Error-free execution time: base time scaled by the PE type's
	// speed, then by each layer's time overhead.
	minExT := im.BaseExTimeMs / pt.SpeedFactor * hw.TimeFactor * ssw.TimeFactor * asw.TimeFactor

	// Average power: base dynamic power scaled by the PE type and each
	// layer's replication/extra-work overhead.
	power := im.BasePowerW * pt.PowerFactor * hw.PowerFactor * ssw.PowerFactor * asw.PowerFactor

	// Raw error probability of one execution attempt: Poisson upsets
	// during MinExT, thinned by the PE's architectural masking.
	exposure := env.LambdaSEUPerMs * minExT * (1 - pt.MaskingFactor)
	pRaw := 1 - math.Exp(-exposure)

	// Spatial (HW) and information (ASW) redundancy each mask/correct
	// a fraction of the surviving errors.
	q := pRaw * (1 - hw.Coverage) * (1 - asw.Coverage)

	// Temporal (SSW) redundancy: an erroneous attempt is detected with
	// probability d and re-executed, up to Retries times. A detected
	// error after the final retry is still an error (fail-stop would
	// be a different QoS metric; the paper counts result correctness).
	d := ssw.DetectCoverage
	k := ssw.Retries
	errProb := q
	avgExT := minExT
	if k > 0 && d > 0 {
		// Probability a given attempt errs and is detected: q*d.
		// Expected number of re-executions: sum_{i=1..k} (q*d)^i.
		qd := q * d
		reexec := 0.0
		pow := 1.0
		for i := 1; i <= k; i++ {
			pow *= qd
			reexec += pow
		}
		avgExT = minExT + minExT*ssw.RestartFraction*reexec
		// Residual error: undetected error on any attempt that ends
		// the sequence, or detected error persisting after the last
		// retry.
		// P(err) = sum_{i=0..k} (qd)^i * q*(1-d) + (qd)^{k+1}
		undetected := 0.0
		pow = 1.0
		for i := 0; i <= k; i++ {
			undetected += pow * q * (1 - d)
			pow *= qd
		}
		errProb = undetected + pow // pow is now (qd)^{k+1}
	}

	// Lifetime: thermal stress from task power (amplified by spatial
	// redundancy's power density) shrinks the Weibull scale parameter.
	stress := 1 + env.StressCoeff*power*(1+hw.StressFactor+ssw.StressFactor+asw.StressFactor)
	eta := env.Eta0Ms / stress
	mttf := eta * math.Gamma(1+1/pt.AgingBeta)

	return TaskMetrics{
		MinExTMs:   minExT,
		RawErrProb: pRaw,
		AvgExTMs:   avgExT,
		ErrProb:    errProb,
		PowerW:     power,
		EtaMs:      eta,
		MTTFMs:     mttf,
	}
}
