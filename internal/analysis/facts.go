package analysis

// Cross-package facts. An analyzer running on package P may export
// typed facts about P's package-level objects (or about P itself);
// when a dependent package Q is analyzed later in the same Session,
// the analyzer imports those facts and reasons across the package
// boundary without re-reading P's syntax. This mirrors the Facts
// mechanism of golang.org/x/tools/go/analysis, narrowed to what a
// single-module lint run needs: facts are keyed by types.Object
// identity (the loader guarantees one *types.Package instance per
// import path within a session) and serialised by object *name* so
// they survive the per-package result cache, where the consumer's
// types.Package for a cached producer comes from export data rather
// than source and object identity does not hold.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// A Fact is a typed datum an analyzer attaches to an object or a
// package. Implementations must be pointers to gob-encodable structs
// and must be registered with RegisterFact before any Session runs
// (conventionally from the analyzer package's init).
type Fact interface {
	// AFact is a marker method; it has no behaviour.
	AFact()
}

var (
	factMu    sync.Mutex
	factTypes = map[string]reflect.Type{}
)

// RegisterFact registers a fact's concrete type for cache
// serialisation under its type name. Safe to call repeatedly with the
// same type; two distinct types sharing a name panic, since the cache
// could then resurrect a fact as the wrong type.
func RegisterFact(f Fact) {
	t := reflect.TypeOf(f)
	if t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis.RegisterFact: fact %T must be a pointer", f))
	}
	name := t.Elem().String()
	factMu.Lock()
	defer factMu.Unlock()
	if prev, ok := factTypes[name]; ok && prev != t {
		panic(fmt.Sprintf("analysis.RegisterFact: name %q registered for both %v and %v", name, prev, t))
	}
	factTypes[name] = t
}

func factTypeName(f Fact) string { return reflect.TypeOf(f).Elem().String() }

type objFactKey struct {
	obj  types.Object
	name string // fact type name
}

type pkgFactKey struct {
	path string
	name string // fact type name
}

// Session carries the cross-package state of one lint run: facts
// exported so far and the module call graph grown one package at a
// time. A Session is single-goroutine; packages must be fed in
// dependency order (dependencies first) for fact importers to see
// their producers' output.
type Session struct {
	// Graph is the intra-module call graph. AddTarget grows it before
	// the package's analyzers run, so an analyzer always sees the
	// nodes of its own package and of every package analyzed earlier.
	Graph *Graph

	objFacts map[objFactKey]Fact
	pkgFacts map[pkgFactKey]Fact
}

// NewSession returns an empty session.
func NewSession() *Session {
	return &Session{
		Graph:    NewGraph(),
		objFacts: make(map[objFactKey]Fact),
		pkgFacts: make(map[pkgFactKey]Fact),
	}
}

// exportObjectFact validates and stores an object fact. Facts may
// only attach to package-level objects (or methods of package-level
// named types): those are the objects a dependent package can name.
func (s *Session) exportObjectFact(obj types.Object, f Fact) {
	if obj == nil || obj.Pkg() == nil {
		panic("analysis: ExportObjectFact on object with no package")
	}
	if _, err := objectFactName(obj); err != nil {
		panic(fmt.Sprintf("analysis: ExportObjectFact: %v", err))
	}
	s.objFacts[objFactKey{obj, factTypeName(f)}] = f
}

func (s *Session) importObjectFact(obj types.Object, f Fact) bool {
	got, ok := s.objFacts[objFactKey{obj, factTypeName(f)}]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

func (s *Session) exportPackageFact(pkg *types.Package, f Fact) {
	s.pkgFacts[pkgFactKey{pkg.Path(), factTypeName(f)}] = f
}

func (s *Session) importPackageFact(path string, f Fact) bool {
	got, ok := s.pkgFacts[pkgFactKey{path, factTypeName(f)}]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// objectFactName renders a fact-bearing object as a stable name:
// "Name" for package-scope objects, "Type.Method" for methods of
// package-level named types. Anything else is not addressable from
// another package and is rejected.
func objectFactName(obj types.Object) (string, error) {
	pkg := obj.Pkg()
	if pkg != nil && obj.Parent() == pkg.Scope() {
		return obj.Name(), nil
	}
	if f, ok := obj.(*types.Func); ok {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + f.Name(), nil
			}
		}
	}
	return "", fmt.Errorf("object %s is not package-level (facts must be nameable by dependents)", obj.Name())
}

// resolveFactObject is the inverse of objectFactName against a
// (possibly export-data-loaded) package.
func resolveFactObject(pkg *types.Package, name string) types.Object {
	if i := indexByte(name, '.'); i >= 0 {
		tobj := pkg.Scope().Lookup(name[:i])
		if tobj == nil {
			return nil
		}
		named, ok := tobj.Type().(*types.Named)
		if !ok {
			return nil
		}
		for m := 0; m < named.NumMethods(); m++ {
			if named.Method(m).Name() == name[i+1:] {
				return named.Method(m)
			}
		}
		return nil
	}
	return pkg.Scope().Lookup(name)
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// EncodedFact is one serialised fact, as stored in the per-package
// result cache.
type EncodedFact struct {
	// Object names the fact's object ("Name" or "Type.Method");
	// empty for a package fact.
	Object string
	// Type is the registered fact type name.
	Type string
	// Data is the gob encoding of the fact struct.
	Data []byte
}

// EncodeFacts serialises every fact attached to pkg or its objects,
// in a deterministic order. Facts of unregistered types are an error:
// they could never be decoded back.
func (s *Session) EncodeFacts(pkg *types.Package) ([]EncodedFact, error) {
	var out []EncodedFact
	for key, f := range s.pkgFacts {
		if key.path != pkg.Path() {
			continue
		}
		ef, err := encodeOne("", f)
		if err != nil {
			return nil, err
		}
		out = append(out, ef)
	}
	for key, f := range s.objFacts {
		if key.obj.Pkg() == nil || key.obj.Pkg().Path() != pkg.Path() {
			continue
		}
		name, err := objectFactName(key.obj)
		if err != nil {
			return nil, err
		}
		ef, err := encodeOne(name, f)
		if err != nil {
			return nil, err
		}
		out = append(out, ef)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return out[i].Type < out[j].Type
	})
	return out, nil
}

func encodeOne(objName string, f Fact) (EncodedFact, error) {
	name := factTypeName(f)
	factMu.Lock()
	_, registered := factTypes[name]
	factMu.Unlock()
	if !registered {
		return EncodedFact{}, fmt.Errorf("fact type %s not registered (call analysis.RegisterFact in the analyzer's init)", name)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).EncodeValue(reflect.ValueOf(f).Elem()); err != nil {
		return EncodedFact{}, fmt.Errorf("encoding fact %s: %w", name, err)
	}
	return EncodedFact{Object: objName, Type: name, Data: buf.Bytes()}, nil
}

// DecodeFacts installs previously serialised facts against pkg —
// typically an export-data-loaded instance of a package whose
// analysis was satisfied from the cache. Facts naming objects that no
// longer resolve are dropped silently: the cache key covers the
// package's own sources and export data, so a dangling name can only
// come from an unexported object that export data omits, which no
// dependent could have imported anyway.
func (s *Session) DecodeFacts(pkg *types.Package, facts []EncodedFact) error {
	for _, ef := range facts {
		factMu.Lock()
		t, ok := factTypes[ef.Type]
		factMu.Unlock()
		if !ok {
			return fmt.Errorf("cached fact type %s is not registered", ef.Type)
		}
		fv := reflect.New(t.Elem())
		if err := gob.NewDecoder(bytes.NewReader(ef.Data)).DecodeValue(fv.Elem()); err != nil {
			return fmt.Errorf("decoding fact %s: %w", ef.Type, err)
		}
		f := fv.Interface().(Fact)
		if ef.Object == "" {
			s.pkgFacts[pkgFactKey{pkg.Path(), ef.Type}] = f
			continue
		}
		obj := resolveFactObject(pkg, ef.Object)
		if obj == nil {
			continue
		}
		s.objFacts[objFactKey{obj, ef.Type}] = f
	}
	return nil
}
