// Package codec seeds wiredrift violations around a small binary
// framing pair (AppendFrame/DecodeFrame): fields missing from the
// encoder, from the decoder (which runs through helper methods, so the
// check must follow the call graph), and from the golden test file.
package codec

// Frame is the top-level wire message.
type Frame struct {
	Seq   uint64
	Flags uint32 // want `wire field Frame\.Flags is not read by the decoder \(Decode\* side\); peers lose it on the wire`
	Note  string // want `wire field Frame\.Note is not written by the encoder \(Append\* side\); the binary framing silently drops it`
	Extra uint16 // want `wire field Frame\.Extra is not covered by any _test\.go fixture in this package; add it to a golden test`
	//lint:allow wiredrift encode-only padding kept so v1 peers can frame; decoders skip it by length
	Legacy uint8
	Body   Payload
	skip   int // unexported: not part of the wire contract
}

// Payload nests inside Frame; wire-struct expansion must reach it.
type Payload struct {
	Data []byte
	Tag  string // want `wire field Payload\.Tag is not read by the decoder \(Decode\* side\); peers lose it on the wire`
}

// AppendFrame writes every field except Note.
func AppendFrame(dst []byte, f *Frame) []byte {
	dst = appendU64(dst, f.Seq)
	dst = appendU64(dst, uint64(f.Flags))
	dst = appendU64(dst, uint64(f.Extra))
	dst = append(dst, f.Legacy)
	dst = appendPayload(dst, &f.Body)
	return dst
}

func appendPayload(dst []byte, p *Payload) []byte {
	dst = append(dst, p.Data...)
	dst = append(dst, p.Tag...)
	return dst
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v))
}

// DecodeFrame reads through binReader helper methods: the encoder/
// decoder closure is computed over static call edges, so mentions in
// frame and payload count for the Decode side.
func DecodeFrame(b []byte) (Frame, error) {
	r := &binReader{b: b}
	return r.frame()
}

type binReader struct {
	b []byte
}

func (r *binReader) frame() (Frame, error) {
	var f Frame
	f.Seq = r.u64()
	f.Note = string(r.bytes())
	f.Extra = uint16(r.u64())
	f.Body = r.payload()
	return f, nil
}

func (r *binReader) payload() Payload {
	var p Payload
	p.Data = r.bytes()
	return p
}

func (r *binReader) u64() uint64 {
	if len(r.b) == 0 {
		return 0
	}
	v := uint64(r.b[0])
	r.b = r.b[1:]
	return v
}

func (r *binReader) bytes() []byte {
	out := r.b
	r.b = nil
	return out
}
