package codec

// golden stands in for the package's byte-level fixtures: the coverage
// rule treats any identifier mentioned in a _test.go file as pinned.
// Extra is deliberately absent.
var golden = Frame{
	Seq:   1,
	Flags: 2,
	Note:  "n",
	Body:  Payload{Data: []byte("d"), Tag: "t"},
}
