package wiredrift_test

import (
	"testing"

	"clrdse/internal/analysis/checktest"
	"clrdse/internal/analysis/wiredrift"
)

func TestWiredrift(t *testing.T) {
	checktest.Run(t, "testdata", wiredrift.Analyzer, "codec")
}
