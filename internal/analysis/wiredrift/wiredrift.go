// Package wiredrift freezes a binary wire format's framing contract
// at the source level: in any package that defines an encoder/decoder
// pair of package-level functions named Append<X> and Decode<X>
// (the fleet CLRB codec's AppendBatchRequest/DecodeBatchRequest
// shape), every exported field of the wire structs those functions
// exchange must be
//
//  1. referenced by the encoder side (Append<X> and everything it
//     statically calls within the package),
//  2. referenced by the decoder side (Decode<X> and its callees —
//     helper methods like (*binReader).decision count, via the call
//     graph), and
//  3. mentioned in at least one _test.go file of the package, the
//     proxy for "a golden fixture pins its bytes".
//
// A field added to a wire struct without all three is exactly how
// codec drift ships: the JSON path picks the field up reflectively,
// the binary path silently drops it, and nodes negotiate CLRB and
// diverge. The analyzer reports the missing side(s) at the field's
// declaration.
//
// Wire structs are discovered from the Append/Decode signatures and
// expanded through exported struct fields (embedded specs, nested
// decision/action payloads) within the defining package.
package wiredrift

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"clrdse/internal/analysis"
)

// Analyzer is the wiredrift check.
var Analyzer = &analysis.Analyzer{
	Name: "wiredrift",
	Doc: "every exported field of a wire struct must be written by the Append* encoder, " +
		"read by the Decode* decoder, and covered by a _test.go fixture",
	Run: run,
}

func run(pass *analysis.Pass) error {
	roots := codecRoots(pass)
	if len(roots.encode) == 0 || len(roots.decode) == 0 {
		return nil // not a codec package
	}
	wire := wireStructs(pass, roots)
	if len(wire) == 0 {
		return nil
	}

	decls := funcDecls(pass)
	encodeUse := closureMentions(pass, decls, roots.encode)
	decodeUse := closureMentions(pass, decls, roots.decode)
	testNames := testFileIdents(pass)

	for _, named := range wire {
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			if f.Embedded() {
				continue // the embedded struct's own fields are checked
			}
			name := named.Obj().Name() + "." + f.Name()
			if !encodeUse[f] {
				pass.Reportf(f.Pos(), "wire field %s is not written by the encoder (Append* side); the binary framing silently drops it", name)
			}
			if !decodeUse[f] {
				pass.Reportf(f.Pos(), "wire field %s is not read by the decoder (Decode* side); peers lose it on the wire", name)
			}
			if testNames != nil && !testNames[f.Name()] {
				pass.Reportf(f.Pos(), "wire field %s is not covered by any _test.go fixture in this package; add it to a golden test", name)
			}
		}
	}
	return nil
}

type codecFns struct {
	encode []*types.Func
	decode []*types.Func
}

// codecRoots pairs package-level Append<X>/Decode<X> functions by
// suffix. Only suffixes present on both sides count: an Append helper
// without a decoder twin is not a wire format.
func codecRoots(pass *analysis.Pass) codecFns {
	appends := map[string]*types.Func{}
	decodes := map[string]*types.Func{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		fn, ok := scope.Lookup(name).(*types.Func)
		if !ok {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue
		}
		if x := strings.TrimPrefix(name, "Append"); x != name && x != "" {
			appends[x] = fn
		}
		if x := strings.TrimPrefix(name, "Decode"); x != name && x != "" {
			decodes[x] = fn
		}
	}
	var out codecFns
	suffixes := make([]string, 0, len(appends))
	for x := range appends {
		suffixes = append(suffixes, x)
	}
	sort.Strings(suffixes)
	for _, x := range suffixes {
		if dec, ok := decodes[x]; ok {
			out.encode = append(out.encode, appends[x])
			out.decode = append(out.decode, dec)
		}
	}
	return out
}

// wireStructs collects the named struct types of this package that
// the codec roots exchange, expanded through exported fields.
func wireStructs(pass *analysis.Pass, roots codecFns) []*types.Named {
	seen := map[*types.Named]bool{}
	var order []*types.Named
	var add func(t types.Type)
	add = func(t types.Type) {
		switch u := t.(type) {
		case *types.Pointer:
			add(u.Elem())
			return
		case *types.Slice:
			add(u.Elem())
			return
		case *types.Array:
			add(u.Elem())
			return
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() != pass.Pkg || seen[named] {
			return
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return
		}
		seen[named] = true
		order = append(order, named)
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Exported() {
				add(f.Type())
			}
		}
	}
	for _, fns := range [][]*types.Func{roots.encode, roots.decode} {
		for _, fn := range fns {
			sig := fn.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len(); i++ {
				add(sig.Params().At(i).Type())
			}
			for i := 0; i < sig.Results().Len(); i++ {
				add(sig.Results().At(i).Type())
			}
		}
	}
	return order
}

// funcDecls maps this package's function objects to their
// declarations.
func funcDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

// closureMentions computes the intra-package static call closure of
// the roots via the session call graph, then records every struct
// field the closure's bodies mention (selector or composite-literal
// key).
func closureMentions(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, roots []*types.Func) map[*types.Var]bool {
	closure := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if closure[fn] || fn.Pkg() != pass.Pkg {
			return
		}
		closure[fn] = true
		node := pass.Session.Graph.Node(fn)
		if node == nil {
			return
		}
		for _, call := range node.Calls {
			visit(call.Callee)
		}
	}
	for _, fn := range roots {
		visit(fn)
	}

	used := map[*types.Var]bool{}
	for fn := range closure {
		fd, ok := decls[fn]
		if !ok {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SelectorExpr:
				if s, ok := pass.TypesInfo.Selections[v]; ok && s.Kind() == types.FieldVal {
					if fo, ok := s.Obj().(*types.Var); ok {
						used[fo] = true
					}
				}
			case *ast.CompositeLit:
				for _, elt := range v.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if id, ok := kv.Key.(*ast.Ident); ok {
						if fo, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
							used[fo] = true
						}
					}
				}
			}
			return true
		})
	}
	return used
}

// testFileIdents parses the package directory's _test.go files
// (syntax only — they may belong to an external test package) and
// returns the set of identifiers they mention. A nil map means the
// directory could not be determined, in which case the coverage rule
// stays silent rather than flagging every field.
func testFileIdents(pass *analysis.Pass) map[string]bool {
	if len(pass.Files) == 0 {
		return nil
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	names := map[string]bool{}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				names[id.Name] = true
			}
			return true
		})
	}
	return names
}
