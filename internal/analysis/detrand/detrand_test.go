package detrand_test

import (
	"testing"

	"clrdse/internal/analysis/checktest"
	"clrdse/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	checktest.Run(t, "testdata", detrand.Analyzer, "dse", "other")
}
