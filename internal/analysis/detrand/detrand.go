// Package detrand forbids ambient nondeterminism in the packages
// whose outputs must be byte-identical across runs and worker counts:
// the design-space exploration and run-time decision layers. Within
// those packages every random draw must flow through
// clrdse/internal/rng (seeded, splittable streams) and every
// timestamp must come from an injected clock, so importing math/rand
// (or math/rand/v2) and reading the wall clock via time.Now or
// time.Since are violations. time.After and friends stay legal: the
// chaos layer sleeps injected latencies without feeding the clock
// back into any decision.
package detrand

import (
	"go/ast"
	"go/types"

	"clrdse/internal/analysis"
)

// DeterministicPackages names the packages (by final import-path
// element) whose behaviour the soak tests pin byte-for-byte.
var DeterministicPackages = map[string]bool{
	"dse":      true,
	"ga":       true,
	"mapping":  true,
	"runtime":  true,
	"pareto":   true,
	"schedule": true,
	"chaos":    true,
	"evolve":   true,
	"cluster":  true,
	"cohort":   true,
}

// forbiddenImports are randomness sources that bypass internal/rng.
var forbiddenImports = map[string]string{
	"math/rand":    "use clrdse/internal/rng (seeded, splittable streams)",
	"math/rand/v2": "use clrdse/internal/rng (seeded, splittable streams)",
}

// forbiddenTimeFuncs read the wall clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
}

// Analyzer is the detrand check.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid math/rand imports and time.Now/time.Since in the deterministic packages " +
		"(dse, ga, mapping, runtime, pareto, schedule, chaos, evolve, cluster, cohort); randomness must come " +
		"from internal/rng and time from an injected clock",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !DeterministicPackages[analysis.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := importPath(imp)
			if why, bad := forbiddenImports[path]; bad {
				pass.Reportf(imp.Pos(), "import of %s is forbidden in deterministic package %s: %s", path, pass.Pkg.Path(), why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if forbiddenTimeFuncs[obj.Name()] {
				pass.Reportf(sel.Pos(), "time.%s is forbidden in deterministic package %s: inject a clock instead of reading wall time", obj.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

func importPath(imp *ast.ImportSpec) string {
	p := imp.Path.Value
	if len(p) >= 2 {
		return p[1 : len(p)-1]
	}
	return p
}
