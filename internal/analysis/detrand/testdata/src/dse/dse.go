// Package dse seeds detrand violations: its import-path base ("dse")
// is in the deterministic set, so ambient randomness and wall-clock
// reads must be flagged.
package dse

import (
	"math/rand" // want `import of math/rand is forbidden in deterministic package dse`
	"time"
)

// Draw uses the global math/rand stream: nondeterministic across runs.
func Draw() int {
	return rand.Int()
}

// Stamp reads the wall clock twice.
func Stamp() time.Duration {
	start := time.Now() // want `time\.Now is forbidden in deterministic package dse`
	_ = start
	return time.Since(start) // want `time\.Since is forbidden in deterministic package dse`
}

// Wait is legal: time.After sleeps but feeds no clock value back into
// the decision state.
func Wait() {
	select {
	case <-time.After(time.Millisecond):
	default:
	}
}

// Budget is legal: durations are plain values, not clock reads.
const Budget = 5 * time.Second

// Allowed shows suppression: a justified //lint:allow comment on the
// line above the violation keeps it out of the report.
func Allowed() time.Time {
	//lint:allow detrand boot banner timestamp never feeds a decision
	return time.Now()
}

// AllowedInline shows same-line suppression.
func AllowedInline() time.Time {
	return time.Now() //lint:allow detrand boot banner timestamp never feeds a decision
}
