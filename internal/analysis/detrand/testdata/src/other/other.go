// Package other is outside the deterministic set: the same constructs
// that are violations in dse are legal here.
package other

import (
	"math/rand"
	"time"
)

// Sample may use ambient randomness: this package makes no
// reproducibility promise.
func Sample() (int, time.Time) {
	return rand.Int(), time.Now()
}
