// Package errdrop flags discarded error results in the state-machine
// and worker layers, where a swallowed error wedges a node instead of
// crashing it: the evolve worker's step loop, the cluster layer's
// health probes and handoff pushes, the fleet serving path, and the
// command-line drivers. A call statement that ignores an error-typed
// result, a `go` statement that launches one, and an assignment that
// sends the error to the blank identifier are all diagnostics; the
// fix is to handle the error, log it with the request's trace
// context, or waive the site with a reasoned //lint:allow errdrop.
//
// Deliberately exempt, to keep the signal high:
//
//   - deferred calls: `defer f.Close()` runs where no handler can do
//     better than ignore (flagging it would train people to write
//     noisy waivers, not better code);
//   - fmt.* printers (their errors are terminal-write failures);
//   - writes to bytes.Buffer and strings.Builder, and to hashers
//     (hash/*, crypto/*) — documented to never fail.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"clrdse/internal/analysis"
)

// Analyzer is the errdrop check.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "flag silently discarded error results (call statements, go statements, blank " +
		"assignments) in worker/cluster/fleet/cmd code; handle, log, or waive with a reason",
	Run: run,
}

// scopePackages names the layers (by final import-path element) where
// a dropped error is a wedge risk. The analysis framework itself and
// the experiment harnesses stay out: their error discipline is the
// Go default, not this contract.
var scopePackages = map[string]bool{
	"evolve":    true,
	"cluster":   true,
	"fleet":     true,
	"client":    true,
	"fleettest": true,
	"clrdse":    true,
	"clrserved": true,
	"clrload":   true,
	"clrchaos":  true,
	"tgffgen":   true,
}

var errType = types.Universe.Lookup("error").Type()

func run(pass *analysis.Pass) error {
	if !scopePackages[analysis.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				checkCallStmt(pass, s.X, "")
			case *ast.GoStmt:
				checkCallStmt(pass, s.Call, " by go statement")
			case *ast.DeferStmt:
				// Deferred cleanup: exempt (see package doc). Still
				// walk the arguments, which evaluate at defer time.
				for _, arg := range s.Call.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						if es, ok := m.(*ast.ExprStmt); ok {
							checkCallStmt(pass, es.X, "")
						}
						return true
					})
				}
				return false
			case *ast.AssignStmt:
				checkBlankAssign(pass, s)
			}
			return true
		})
	}
	return nil
}

// checkCallStmt reports a statement-level call whose results include
// an unreceived error.
func checkCallStmt(pass *analysis.Pass, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	f := analysis.FuncOf(pass.TypesInfo, call)
	if exemptCall(pass, call, f) {
		return
	}
	if !returnsError(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "error result of %s is discarded%s; handle it, log it, or waive with //lint:allow errdrop <reason>",
		calleeName(pass, call, f), how)
}

// checkBlankAssign reports error results assigned to the blank
// identifier — an explicit discard that still deserves a reason.
func checkBlankAssign(pass *analysis.Pass, s *ast.AssignStmt) {
	// Multi-value form: x, _ := f().
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		f := analysis.FuncOf(pass.TypesInfo, call)
		if exemptCall(pass, call, f) {
			return
		}
		tuple, ok := pass.TypesInfo.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(s.Lhs) {
			return
		}
		for i, lhs := range s.Lhs {
			if isBlank(lhs) && types.Identical(tuple.At(i).Type(), errType) {
				pass.Reportf(lhs.Pos(), "error result of %s is assigned to _; handle it, log it, or waive with //lint:allow errdrop <reason>",
					calleeName(pass, call, f))
			}
		}
		return
	}
	// Paired form: _ = f() (and _, _ = f(), g()).
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		if !isBlank(lhs) {
			continue
		}
		call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		f := analysis.FuncOf(pass.TypesInfo, call)
		if exemptCall(pass, call, f) {
			continue
		}
		if !returnsError(pass, call) {
			continue
		}
		pass.Reportf(lhs.Pos(), "error result of %s is assigned to _; handle it, log it, or waive with //lint:allow errdrop <reason>",
			calleeName(pass, call, f))
	}
}

// returnsError reports whether any of the call's results is the
// error type.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if types.Identical(rt.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return t != nil && types.Identical(t, errType)
	}
}

// exemptCall implements the documented exemptions. Beyond the callee
// itself, the receiver expression's static type is classified too:
// writing to a value held as hash.Hash64 resolves the Write method to
// io.Writer (interface embedding), so the callee's own receiver says
// "io" while the value is a hasher.
func exemptCall(pass *analysis.Pass, call *ast.CallExpr, f *types.Func) bool {
	if exemptCallee(f) {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return exemptOwner(named.Obj().Pkg().Path(), named.Obj().Name())
}

// exemptCallee classifies the callee's own receiver type. A nil
// callee (dynamic call through a function value) is not exempt.
func exemptCallee(f *types.Func) bool {
	if f == nil {
		return false
	}
	if f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		return true
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return exemptOwner(named.Obj().Pkg().Path(), named.Obj().Name())
}

// exemptOwner is the receiver-type allowlist: buffer/builder writes
// and hashers are documented never to fail.
func exemptOwner(path, name string) bool {
	switch {
	case path == "bytes" && name == "Buffer":
		return true
	case path == "strings" && name == "Builder":
		return true
	case path == "hash" || strings.HasPrefix(path, "hash/"):
		return true
	case path == "crypto" || strings.HasPrefix(path, "crypto/"):
		return true
	}
	return false
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr, f *types.Func) string {
	if f != nil {
		return f.Name()
	}
	return types.ExprString(call.Fun)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
