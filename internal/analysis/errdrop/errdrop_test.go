package errdrop_test

import (
	"testing"

	"clrdse/internal/analysis/checktest"
	"clrdse/internal/analysis/errdrop"
)

func TestErrdrop(t *testing.T) {
	checktest.Run(t, "testdata", errdrop.Analyzer, "cluster")
}
