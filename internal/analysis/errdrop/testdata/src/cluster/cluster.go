// Package cluster (the testdata twin of the in-scope package name)
// seeds errdrop violations: call statements, go statements and blank
// assignments that discard error results, next to the documented
// exemptions and a justified waiver.
package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
)

func probe() error {
	return errors.New("unreachable")
}

func fetch() (int, error) {
	return 0, errors.New("unreachable")
}

// DropStmt discards at statement level.
func DropStmt() {
	probe() // want `error result of probe is discarded; handle it, log it, or waive with //lint:allow errdrop <reason>`
}

// DropGo launches and forgets.
func DropGo() {
	go probe() // want `error result of probe is discarded by go statement; handle it, log it, or waive`
}

// DropBlank discards explicitly.
func DropBlank() {
	_ = probe() // want `error result of probe is assigned to _; handle it, log it, or waive`
}

// DropPaired discards the error half of a pair.
func DropPaired() int {
	n, _ := fetch() // want `error result of fetch is assigned to _; handle it, log it, or waive`
	return n
}

// Handled is the contract-conformant shape.
func Handled() error {
	if err := probe(); err != nil {
		return fmt.Errorf("cluster: probe: %w", err)
	}
	return nil
}

// Exempt runs through every documented exemption: deferred cleanup,
// fmt printers, buffer/builder writes, hashers (including behind the
// hash.Hash64 interface, where Write resolves to io.Writer).
func Exempt() uint64 {
	defer probe()
	fmt.Println("status")
	var buf bytes.Buffer
	buf.WriteString("a")
	var sb strings.Builder
	sb.WriteString("b")
	h := fnv.New64a()
	h.Write([]byte("key"))
	return h.Sum64()
}

// Waived shows a justified suppression.
func Waived() {
	//lint:allow errdrop best-effort probe; the ring re-probes on the next tick and logs there
	_ = probe()
}
