// Package atomicmix flags struct fields accessed through two
// incompatible disciplines: sync/atomic operations in one place and
// plain reads/writes in another. A field is either always atomic or
// always lock-protected — mixing the two is a data race the race
// detector only catches when the schedule cooperates, and in the
// fleet's degraded-gauge and database-slot patterns it silently
// diverges nodes instead of crashing them.
//
// Two rules:
//
//   - a field passed to a classic sync/atomic function
//     (atomic.LoadUint64(&s.n) …) must never also be read or written
//     directly, anywhere in the module: each package exports the
//     atomic/plain access sets of its own struct fields as a fact,
//     and packages that touch a foreign field are checked against the
//     owner's sets;
//   - a value of wrapper type (atomic.Bool, atomic.Uint64,
//     atomic.Pointer[T] …) must not be copied by assignment — a copy
//     forks the value and both sides keep "atomically" updating their
//     own half.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"clrdse/internal/analysis"
)

// Analyzer is the atomicmix check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "flag struct fields accessed both via sync/atomic and by plain read/write " +
		"(cross-package, via facts), and assignments that copy atomic wrapper values",
	Run: run,
}

// AccessFact records, per package, how the package's own struct
// fields are accessed. Keys are "Type.Field"; values are the position
// of one representative access, for the diagnostic.
type AccessFact struct {
	Atomic map[string]string
	Plain  map[string]string
}

// AFact marks AccessFact as a fact type.
func (*AccessFact) AFact() {}

func init() { analysis.RegisterFact(&AccessFact{}) }

type access struct {
	pos   token.Pos
	field *types.Var
	owner *types.Named
}

func run(pass *analysis.Pass) error {
	var atomics, plains []access
	for _, f := range pass.Files {
		collectAccesses(pass, f, &atomics, &plains)
		checkWrapperCopies(pass, f)
	}

	// In-package mixes: report at the plain site (the atomic site is
	// usually the intended discipline).
	atomicByField := make(map[*types.Var]access)
	for _, a := range atomics {
		if _, ok := atomicByField[a.field]; !ok {
			atomicByField[a.field] = a
		}
	}
	reported := make(map[token.Pos]bool)
	for _, p := range plains {
		if a, ok := atomicByField[p.field]; ok && !reported[p.pos] {
			reported[p.pos] = true
			pass.Reportf(p.pos, "field %s is accessed both atomically (%s) and by plain read/write; pick one discipline",
				fieldKey(p.owner, p.field), pass.Fset.Position(a.pos))
		}
	}

	// Cross-package mixes: check this package's accesses to foreign
	// fields against the owner package's exported sets.
	for _, p := range plains {
		if p.owner.Obj().Pkg() == pass.Pkg {
			continue
		}
		var af AccessFact
		if pass.ImportPackageFact(p.owner.Obj().Pkg().Path(), &af) {
			if at, ok := af.Atomic[fieldKey(p.owner, p.field)]; ok && !reported[p.pos] {
				reported[p.pos] = true
				pass.Reportf(p.pos, "field %s.%s is accessed atomically by its own package (%s) but by plain read/write here; pick one discipline",
					p.owner.Obj().Pkg().Name(), fieldKey(p.owner, p.field), at)
			}
		}
	}
	for _, a := range atomics {
		if a.owner.Obj().Pkg() == pass.Pkg {
			continue
		}
		var af AccessFact
		if pass.ImportPackageFact(a.owner.Obj().Pkg().Path(), &af) {
			if pl, ok := af.Plain[fieldKey(a.owner, a.field)]; ok && !reported[a.pos] {
				reported[a.pos] = true
				pass.Reportf(a.pos, "field %s.%s is accessed by plain read/write in its own package (%s) but atomically here; pick one discipline",
					a.owner.Obj().Pkg().Name(), fieldKey(a.owner, a.field), pl)
			}
		}
	}

	// Export this package's own-field access sets for dependents.
	fact := AccessFact{Atomic: map[string]string{}, Plain: map[string]string{}}
	for _, a := range atomics {
		if a.owner.Obj().Pkg() == pass.Pkg {
			key := fieldKey(a.owner, a.field)
			if _, ok := fact.Atomic[key]; !ok {
				fact.Atomic[key] = pass.Fset.Position(a.pos).String()
			}
		}
	}
	for _, p := range plains {
		if p.owner.Obj().Pkg() == pass.Pkg {
			key := fieldKey(p.owner, p.field)
			if _, ok := fact.Plain[key]; !ok {
				fact.Plain[key] = pass.Fset.Position(p.pos).String()
			}
		}
	}
	if len(fact.Atomic) > 0 || len(fact.Plain) > 0 {
		pass.ExportPackageFact(&fact)
	}
	return nil
}

// collectAccesses classifies every struct-field selector in the file:
// the &s.f argument of a classic sync/atomic function call is an
// atomic access, any other field selector of the same fields' types
// is a plain access. Only fields whose type is one sync/atomic
// operates on (integers, pointers, unsafe.Pointer) are tracked as
// plain accesses, to keep the sets small.
func collectAccesses(pass *analysis.Pass, f *ast.File, atomics, plains *[]access) {
	atomicArgs := make(map[ast.Expr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.FuncOf(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // wrapper methods handled by the copy rule
		}
		for _, arg := range call.Args {
			if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
				atomicArgs[u.X] = true
				if fo, owner := fieldSel(pass, u.X); fo != nil {
					*atomics = append(*atomics, access{u.X.Pos(), fo, owner})
				}
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || atomicArgs[sel] {
			return true
		}
		fo, owner := fieldSel(pass, sel)
		if fo == nil || !atomicCapable(fo.Type()) {
			return true
		}
		*plains = append(*plains, access{sel.Pos(), fo, owner})
		return true
	})
}

// fieldSel resolves a selector to (field, owning named type), or
// (nil, nil) when it is not a struct-field selection on a named type.
func fieldSel(pass *analysis.Pass, e ast.Expr) (*types.Var, *types.Named) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	fo, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, nil
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	return fo, named
}

// atomicCapable limits plain-access tracking to types the classic
// sync/atomic functions operate on.
func atomicCapable(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsInteger != 0 || u.Kind() == types.UnsafePointer
	case *types.Pointer:
		return true
	}
	return false
}

func fieldKey(owner *types.Named, f *types.Var) string {
	return owner.Obj().Name() + "." + f.Name()
}

// checkWrapperCopies flags assignments whose right-hand side copies a
// sync/atomic wrapper value (atomic.Bool, atomic.Pointer[T], …).
// Composite literals of the zero value and pointers to wrappers are
// fine; copying an in-use wrapper forks its state.
func checkWrapperCopies(pass *analysis.Pass, f *ast.File) {
	check := func(rhs ast.Expr) {
		e := ast.Unparen(rhs)
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			return // literals, calls, conversions: not a copy of live state
		}
		t := pass.TypesInfo.TypeOf(e)
		if t == nil {
			return
		}
		named, ok := t.(*types.Named)
		if !ok {
			return
		}
		obj := named.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
			return
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			return
		}
		pass.Reportf(rhs.Pos(), "assignment copies atomic.%s value; atomic wrappers must not be copied after first use (keep a pointer or call Load)",
			obj.Name())
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range v.Rhs {
				check(rhs)
			}
		case *ast.ValueSpec:
			for _, rhs := range v.Values {
				check(rhs)
			}
		}
		return true
	})
}
