// Package amix seeds atomicmix violations: an in-package field touched
// both atomically and plainly, cross-package violations against
// aowner's exported access sets, and copies of atomic wrapper values.
package amix

import (
	"sync/atomic"

	"aowner"
)

// gauge mixes disciplines inside one package.
type gauge struct {
	n uint64
}

// Bump uses the atomic discipline.
func Bump(g *gauge) {
	atomic.AddUint64(&g.n, 1)
}

// Read breaks it with a plain load.
func Read(g *gauge) uint64 {
	return g.n // want `field gauge\.n is accessed both atomically \(.*\) and by plain read/write; pick one discipline`
}

// Stale reads a foreign field whose owner package is atomic-only.
func Stale(c *aowner.Counter) uint64 {
	return c.N // want `field aowner\.Counter\.N is accessed atomically by its own package \(.*\) but by plain read/write here; pick one discipline`
}

// Tighten goes atomic on a foreign field whose owner reads it plainly.
func Tighten(l *aowner.Loose) {
	atomic.AddUint64(&l.M, 1) // want `field aowner\.Loose\.M is accessed by plain read/write in its own package \(.*\) but atomically here; pick one discipline`
}

// slot holds a wrapper value.
type slot struct {
	v atomic.Uint64
}

// Fork copies the wrapper, splitting its state in two.
func Fork(s *slot) {
	cp := s.v // want `assignment copies atomic\.Uint64 value; atomic wrappers must not be copied after first use`
	use(&cp)
}

// ByPointer is the correct shape: the wrapper stays put.
func ByPointer(s *slot) {
	use(&s.v)
}

// Snapshot shows a justified suppression on a copy.
func Snapshot(s *slot) {
	//lint:allow atomicmix one-time copy at construction, before the value is shared
	cp := s.v
	use(&cp)
}

func use(p *atomic.Uint64) {
	p.Load()
}
