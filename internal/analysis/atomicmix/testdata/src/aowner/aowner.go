// Package aowner defines shared state whose access discipline its own
// package fixes: Counter.N is atomic-only, Loose.M is plain-only. The
// package itself is clean; it exists to export an AccessFact that the
// importing fixture package violates.
package aowner

import "sync/atomic"

// Counter is touched only atomically here.
type Counter struct {
	N uint64
}

// Inc is the owner's (atomic) discipline for N.
func Inc(c *Counter) {
	atomic.AddUint64(&c.N, 1)
}

// Loose is touched only by plain reads here.
type Loose struct {
	M uint64
}

// Peek is the owner's (plain) discipline for M.
func Peek(l *Loose) uint64 {
	return l.M
}
