package atomicmix_test

import (
	"testing"

	"clrdse/internal/analysis/atomicmix"
	"clrdse/internal/analysis/checktest"
)

func TestAtomicmix(t *testing.T) {
	// aowner is named too: it must stay diagnostic-free while
	// exporting the AccessFact that amix's cross-package cases consume.
	checktest.Run(t, "testdata", atomicmix.Analyzer, "aowner", "amix")
}
