package maporder_test

import (
	"testing"

	"clrdse/internal/analysis/checktest"
	"clrdse/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	checktest.Run(t, "testdata", maporder.Analyzer, "report", "util")
}
