// Package maporder flags `range` over maps in order-sensitive
// contexts within the packages whose outputs must be byte-stable:
// the deterministic decision layers plus the reporting layers
// (report, plot, experiments) whose CSV/Markdown/SVG artefacts are
// diffed across runs. Go randomises map iteration order on purpose,
// so a map range whose body appends to an outer slice, accumulates
// into an outer float/string, or writes serialized output produces
// run-dependent bytes.
//
// The canonical fix — collect the keys, sort them, iterate the sorted
// slice — is recognised and permitted: a map range whose only effect
// is appending to a slice that is subsequently passed to a sort call
// (sort.Strings, sort.Ints, sort.Slice, slices.Sort*, sort.Sort, ...)
// in the same block is not a violation.
//
// Order-independent bodies are permitted: writes into another map,
// integer counters (x++ or integer +=), min/max tracking, and
// accumulation into an element selected by the loop key (out[k] +=
// v), which commutes across keys.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"clrdse/internal/analysis"
	"clrdse/internal/analysis/detrand"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag range over maps feeding appends, floating-point/string accumulation or serialized " +
		"output in determinism-critical and reporting packages; iterate sorted keys instead",
	Run: run,
}

// reportingPackages extends the deterministic set with the layers
// whose rendered artefacts must be byte-stable.
var reportingPackages = map[string]bool{
	"report":      true,
	"plot":        true,
	"experiments": true,
}

func inScope(pkgPath string) bool {
	base := analysis.PkgBase(pkgPath)
	return detrand.DeterministicPackages[base] || reportingPackages[base]
}

// outputMethods are io-flavoured method names whose invocation inside
// a map range serialises in iteration order.
var outputMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteTo":     true,
	"Encode":      true,
}

// sortFuncs recognise the sorted-keys escape.
var sortFuncs = map[string]bool{
	"sort.Strings":          true,
	"sort.Ints":             true,
	"sort.Float64s":         true,
	"sort.Slice":            true,
	"sort.SliceStable":      true,
	"sort.Sort":             true,
	"sort.Stable":           true,
	"slices.Sort":           true,
	"slices.SortFunc":       true,
	"slices.SortStableFunc": true,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapRange(pass, rs) {
					continue
				}
				checkRange(pass, rs, block.List[i+1:])
			}
			return true
		})
	}
	return nil
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkRange inspects one map-range body; rest is the remainder of
// the enclosing block, scanned for the sorted-keys escape.
func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	keyObj := rangeVarObj(pass, rs.Key)
	var appendDests []types.Object
	appendsOnly := true
	var verdicts []string
	report := func(pos token.Pos, what string) {
		verdicts = append(verdicts, what)
		_ = pos
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ASSIGN, token.DEFINE:
				for _, rhs := range s.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pass, call) {
						continue
					}
					dest := rootObj(pass, s.Lhs[0])
					if dest == nil || declaredWithin(dest, rs) || indexedByKey(pass, s.Lhs[0], keyObj) {
						continue
					}
					appendDests = append(appendDests, dest)
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				lhs := s.Lhs[0]
				dest := rootObj(pass, lhs)
				if dest == nil || declaredWithin(dest, rs) || indexedByKey(pass, lhs, keyObj) {
					return true
				}
				if orderSensitiveType(pass.TypesInfo.TypeOf(lhs)) {
					appendsOnly = false
					report(s.Pos(), "accumulates into "+types.ExprString(lhs)+" (non-associative across orders)")
				}
			}
		case *ast.CallExpr:
			if name, bad := outputCall(pass, s); bad {
				appendsOnly = false
				report(s.Pos(), "writes serialized output via "+name)
			}
		}
		return true
	})

	if len(appendDests) > 0 {
		if !appendsOnly || !allSortedLater(pass, appendDests, rest) {
			report(rs.Pos(), "feeds appends whose final order depends on map iteration")
		}
	}
	if len(verdicts) > 0 {
		pass.Reportf(rs.Pos(), "range over map %s in order-sensitive context (%s); iterate sorted keys instead",
			types.ExprString(rs.X), strings.Join(verdicts, "; "))
	}
}

// rangeVarObj resolves the range key/value variable to its object.
func rangeVarObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// rootObj finds the base identifier's object for expressions like
// x, x.f, x[i], *x.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[v]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// indexedByKey reports whether the destination is an element selected
// by the loop key (out[k] = ... commutes across keys).
func indexedByKey(pass *analysis.Pass, lhs ast.Expr, keyObj types.Object) bool {
	if keyObj == nil {
		return false
	}
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(idx.Index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == keyObj {
				found = true
			}
		}
		return !found
	})
	return found
}

// declaredWithin reports whether obj's declaration lies inside the
// range statement (loop-local state is order-invisible outside).
func declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
}

// orderSensitiveType reports whether += accumulation over the type
// depends on iteration order: floats and complex (non-associative
// rounding) and strings (concatenation order).
func orderSensitiveType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// outputCall reports calls that serialise in iteration order: the fmt
// print family and io-flavoured methods.
func outputCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	if f := analysis.FuncOf(pass.TypesInfo, call); f != nil {
		if f.Pkg() != nil && f.Pkg().Path() == "fmt" && strings.HasPrefix(f.Name(), "Print") {
			return "fmt." + f.Name(), true
		}
		if f.Pkg() != nil && f.Pkg().Path() == "fmt" && strings.HasPrefix(f.Name(), "Fprint") {
			return "fmt." + f.Name(), true
		}
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil && outputMethods[f.Name()] {
			return f.Name(), true
		}
	}
	return "", false
}

// allSortedLater reports whether every append destination is passed
// to a recognised sort call somewhere in the remainder of the block.
func allSortedLater(pass *analysis.Pass, dests []types.Object, rest []ast.Stmt) bool {
	for _, dest := range dests {
		if !sortedLater(pass, dest, rest) {
			return false
		}
	}
	return true
}

func sortedLater(pass *analysis.Pass, dest types.Object, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			f := analysis.FuncOf(pass.TypesInfo, call)
			if f == nil || f.Pkg() == nil || !sortFuncs[f.Pkg().Name()+"."+f.Name()] {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == dest {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
