// Package util is outside both the deterministic and reporting sets:
// map-order-dependent output is legal here.
package util

import "fmt"

// Dump prints in whatever order the runtime picks.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
