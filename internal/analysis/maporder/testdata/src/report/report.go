// Package report seeds maporder violations: its import-path base is
// in the reporting set, so order-sensitive map iteration must be
// flagged while the sorted-keys idiom and order-independent bodies
// stay legal.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// BadAppend feeds an outer slice straight from map order.
func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map m in order-sensitive context \(feeds appends`
		out = append(out, k)
	}
	return out
}

// GoodSortedKeys is the canonical fix: collect, sort, iterate.
func GoodSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return out
}

// GoodSortSlice also sorts the collected keys, via sort.Slice.
func GoodSortSlice(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// BadFloatAccum accumulates floating point in map order: the rounding
// differs between orders.
func BadFloatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `range over map m in order-sensitive context \(accumulates into total`
		total += v
	}
	return total
}

// GoodIntAccum is order-independent: integer addition commutes
// exactly.
func GoodIntAccum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// GoodKeyedAccum commutes across keys: each element accumulates its
// own cell.
func GoodKeyedAccum(m map[string]float64, totals map[string]float64) {
	for k, v := range m {
		totals[k] += v
	}
}

// BadOutput serialises in map order.
func BadOutput(w io.Writer, m map[string]int) {
	for k, v := range m { // want `range over map m in order-sensitive context \(writes serialized output via fmt\.Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// BadBuilder writes through a strings.Builder in map order.
func BadBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `range over map m in order-sensitive context \(writes serialized output via WriteString`
		b.WriteString(k)
	}
	return b.String()
}

// GoodMapToMap writes into another map: no observable order.
func GoodMapToMap(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// GoodLocalAppend appends to a loop-local slice: its order dies with
// the iteration.
func GoodLocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// Allowed shows suppression with a mandatory reason.
func Allowed(m map[string]int) []string {
	var out []string
	//lint:allow maporder single-key map built two lines up, order cannot vary
	for k := range m {
		out = append(out, k)
	}
	return out
}
