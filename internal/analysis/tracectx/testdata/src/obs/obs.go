// Package obs is a stub of the repository's observability package
// for the tracectx goldens: the analyzer scopes itself by package
// base name, so this short-path testdata package matches the same
// contract as the real clrdse/internal/obs.
package obs

import "context"

// TraceID is a stub trace identifier.
type TraceID string

// Minter is a stub deterministic trace-ID minter.
type Minter struct{ n uint64 }

// NewMinter is the stub constructor.
func NewMinter(seed int64) *Minter { return &Minter{} }

// Mint issues the next ID.
func (m *Minter) Mint() TraceID { m.n++; return "0000000000000000" }

// TraceIDFrom adopts the trace riding ctx ("" when absent).
func TraceIDFrom(ctx context.Context) TraceID { return "" }

// ParseTraceID adopts a wire-format trace ID.
func ParseTraceID(s string) (TraceID, error) { return TraceID(s), nil }

// Trace is a stub span recorder.
type Trace struct{}

// NewTrace is the stub constructor.
func NewTrace(id TraceID) *Trace { return &Trace{} }

// Stage opens a span and returns its end closure.
func (t *Trace) Stage(name string) func() { return func() {} }
