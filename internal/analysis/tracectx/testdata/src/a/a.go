// Package a seeds tracectx violations: trace IDs must be adopted
// from the inbound context or header — minted only as an edge
// fallback or at a true root — and every span-start's end closure
// must be called, deferred or handed onward.
package a

import (
	"context"
	"net/http"

	"obs"
)

// --- Rule 1: no mid-stack minting ---

// BadMidStackMint has the caller's context in hand and forks the
// correlation chain anyway.
func BadMidStackMint(ctx context.Context, m *obs.Minter) obs.TraceID {
	return m.Mint() // want `trace ID minted mid-stack`
}

// BadHandlerMint does the same with the request context.
func BadHandlerMint(w http.ResponseWriter, r *http.Request, m *obs.Minter) {
	id := m.Mint() // want `trace ID minted mid-stack`
	_ = id
}

// GoodHeaderEdge adopts the wire header first; minting is the edge
// fallback for requests that arrive without an ID.
func GoodHeaderEdge(w http.ResponseWriter, r *http.Request, m *obs.Minter) {
	id, err := obs.ParseTraceID(r.Header.Get("X-Clr-Trace-Id"))
	if err != nil {
		id = m.Mint()
	}
	_ = id
}

// GoodContextEdge adopts from the context first (the client-side
// idiom: the call becomes the trace edge when the caller supplied no
// ID).
func GoodContextEdge(ctx context.Context, m *obs.Minter) obs.TraceID {
	id := obs.TraceIDFrom(ctx)
	if id == "" {
		id = m.Mint()
	}
	return id
}

// GoodRoot has no inbound context at all: minting is the root.
func GoodRoot(m *obs.Minter) obs.TraceID {
	return m.Mint()
}

// BadClosureMint inherits the handler's context availability.
func BadClosureMint(ctx context.Context, m *obs.Minter) {
	go func() {
		_ = m.Mint() // want `trace ID minted mid-stack`
	}()
}

// AllowedReMint shows suppression with a reason.
func AllowedReMint(ctx context.Context, m *obs.Minter) obs.TraceID {
	//lint:allow tracectx chaos injector deliberately forks the trace per fault
	return m.Mint()
}

// --- Rule 2: spans pair ---

// BadDiscardedSpan drops the end closure on the floor.
func BadDiscardedSpan(t *obs.Trace) {
	t.Stage("filter") // want `result of Stage discarded; the span never ends`
}

// BadBlankSpan assigns the end closure to blank.
func BadBlankSpan(t *obs.Trace) {
	_ = t.Stage("score") // want `end closure of Stage assigned to _`
}

// BadDeferredStart defers the start instead of the end.
func BadDeferredStart(t *obs.Trace) {
	defer t.Stage("switch") // want `defer Stage\(\.\.\.\) starts the span at function exit`
}

// BadNeverEnded binds the closure and never invokes it.
func BadNeverEnded(t *obs.Trace) {
	end := t.Stage("agent_update") // want `end closure end of Stage is never called or deferred`
	_ = end
	end = nil
}

// GoodDeferredEnd is the canonical whole-function span.
func GoodDeferredEnd(t *obs.Trace) {
	defer t.Stage("filter")()
}

// GoodRegionEnd is the canonical region span.
func GoodRegionEnd(t *obs.Trace) {
	end := t.Stage("score")
	end()
}

// GoodDeferredVar defers the bound closure.
func GoodDeferredVar(t *obs.Trace) {
	end := t.Stage("switch")
	defer end()
}

// GoodImmediate starts and ends in one expression (a zero-length
// span; odd, but paired).
func GoodImmediate(t *obs.Trace) {
	t.Stage("filter")()
}

// GoodHandedOnward passes the closure to the code that ends it.
func GoodHandedOnward(t *obs.Trace) {
	end := t.Stage("score")
	finishLater(end)
}

// GoodReturned returns the closure to the caller, who ends it.
func GoodReturned(t *obs.Trace) func() {
	end := t.Stage("switch")
	return end
}

func finishLater(end func()) { end() }
