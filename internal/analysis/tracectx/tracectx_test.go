package tracectx_test

import (
	"testing"

	"clrdse/internal/analysis/checktest"
	"clrdse/internal/analysis/tracectx"
)

func TestTracectx(t *testing.T) {
	checktest.Run(t, "testdata", tracectx.Analyzer, "a")
}
