// Package tracectx enforces the observability contract of the decide
// path (DESIGN.md §8): trace IDs ride the request context from the
// edge, and every started span ends.
//
// Rule 1 — no mid-stack minting. A function that already has a
// context source (a context.Context parameter or an *http.Request)
// received its caller's trace; minting a fresh ID there (obs's
// Minter.Mint) forks the correlation chain, and the decision journal
// ends up with entries no request log line matches. Minting is legal
// only at a trace edge — a function that first tries to adopt the
// inbound ID (obs.ParseTraceID on the wire header, or obs.TraceIDFrom
// on the context) and mints strictly as the fallback — or at a true
// root with no inbound context at all.
//
// Rule 2 — spans pair. The Stage/startSpan idiom returns the closure
// that ends the span; discarding it (expression statement, blank
// assignment, or `defer tr.Stage("x")` without the trailing call
// parentheses) leaves a span open forever, silently losing the stage
// from the journal and the latency histograms. The end closure must
// be called, deferred, or handed onward (argument/return).
package tracectx

import (
	"go/ast"
	"go/types"

	"clrdse/internal/analysis"
)

// Analyzer is the tracectx check.
var Analyzer = &analysis.Analyzer{
	Name: "tracectx",
	Doc: "trace IDs must be adopted from the inbound context/header, never minted mid-stack, " +
		"and every span-start (Stage) must have its end closure called or deferred",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkFunc(pass, fd.Type, fd.Body, false)
		}
	}
	return nil
}

// walkFunc checks one function, then recurses into its closures.
// ctxAvail reports whether an enclosing function already provides a
// context source (a closure can capture it).
func walkFunc(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt, ctxAvail bool) {
	avail := ctxAvail || hasCtxSource(pass, ft)
	// Adoption anywhere in the function (including its closures, which
	// share the edge's locals) licenses its fallback minting.
	adopts := adoptsInbound(pass, body)
	checkBody(pass, body, avail, adopts)
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			walkFunc(pass, fl.Type, fl.Body, avail)
			return false
		}
		return true
	})
}

// checkBody scans one function's own statements (not its closures',
// which walkFunc visits with their own context availability).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, ctxAvail, adopts bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := v.X.(*ast.CallExpr); ok {
				if inner, ok := ast.Unparen(call.Fun).(*ast.CallExpr); ok && isSpanStart(pass, inner) {
					// tr.Stage("x")(): started and immediately ended.
					checkMint(pass, inner, ctxAvail, adopts)
					return false
				}
				if isSpanStart(pass, call) {
					pass.Reportf(call.Pos(), "result of %s discarded; the span never ends — use defer %s(...)() or call the end closure", callName(pass, call), callName(pass, call))
					checkMint(pass, call, ctxAvail, adopts)
					return false
				}
			}
		case *ast.DeferStmt:
			if isSpanStart(pass, v.Call) {
				pass.Reportf(v.Call.Pos(), "defer %s(...) starts the span at function exit and discards its end closure; you want defer %s(...)()", callName(pass, v.Call), callName(pass, v.Call))
				checkMint(pass, v.Call, ctxAvail, adopts)
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isSpanStart(pass, call) {
					continue
				}
				checkMint(pass, call, ctxAvail, adopts)
				if len(v.Lhs) != len(v.Rhs) {
					continue
				}
				id, ok := v.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "end closure of %s assigned to _; the span never ends", callName(pass, call))
					continue
				}
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil && !endClosureResolved(pass, body, obj, id) {
					pass.Reportf(call.Pos(), "end closure %s of %s is never called or deferred; the span never ends", id.Name, callName(pass, call))
				}
			}
		case *ast.CallExpr:
			checkMint(pass, v, ctxAvail, adopts)
		}
		return true
	})
}

// checkMint flags an obs mint call when a context is in scope and the
// function never tries to adopt the inbound trace first.
func checkMint(pass *analysis.Pass, call *ast.CallExpr, ctxAvail, adopts bool) {
	if !ctxAvail || adopts || !isMint(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "trace ID minted mid-stack: this function already has a context; adopt the inbound trace (obs.TraceIDFrom or obs.ParseTraceID) and mint only as the edge fallback")
}

// adoptsInbound reports whether the body consults the inbound trace
// carrier: obs.TraceIDFrom (context) or obs.ParseTraceID (header).
func adoptsInbound(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		f := analysis.FuncOf(pass.TypesInfo, call)
		if f == nil || f.Pkg() == nil || analysis.PkgBase(f.Pkg().Path()) != "obs" {
			return true
		}
		if f.Name() == "TraceIDFrom" || f.Name() == "ParseTraceID" {
			found = true
			return false
		}
		return true
	})
	return found
}

// isMint reports a call of obs's Minter.Mint (matched by package base
// so the checktest stub package matches too).
func isMint(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := analysis.FuncOf(pass.TypesInfo, call)
	return f != nil && f.Pkg() != nil &&
		analysis.PkgBase(f.Pkg().Path()) == "obs" && f.Name() == "Mint"
}

// isSpanStart reports a span-opening call: a callee named Stage,
// StartSpan or startStage whose single result is the end closure
// (func() with no parameters or results).
func isSpanStart(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := analysis.FuncOf(pass.TypesInfo, call)
	if f == nil {
		return false
	}
	switch f.Name() {
	case "Stage", "StartSpan", "startStage":
	default:
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	res, ok := sig.Results().At(0).Type().Underlying().(*types.Signature)
	return ok && res.Params().Len() == 0 && res.Results().Len() == 0
}

// endClosureResolved reports whether the end closure bound to obj is
// ever called, deferred, or handed onward (argument, return value,
// composite literal) after its defining use def.
func endClosureResolved(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	resolved := false
	ast.Inspect(body, func(n ast.Node) bool {
		if resolved {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if fun, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && fun != def && pass.TypesInfo.ObjectOf(fun) == obj {
				resolved = true // end() or defer end()
				return false
			}
			for _, arg := range v.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && id != def && pass.TypesInfo.ObjectOf(id) == obj {
					resolved = true // handed onward
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok && id != def && pass.TypesInfo.ObjectOf(id) == obj {
					resolved = true
					return false
				}
			}
		case *ast.CompositeLit:
			for _, elt := range v.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if id, ok := ast.Unparen(elt).(*ast.Ident); ok && id != def && pass.TypesInfo.ObjectOf(id) == obj {
					resolved = true
					return false
				}
			}
		}
		return true
	})
	return resolved
}

// hasCtxSource reports whether the signature provides a context
// source: a context.Context parameter or an *http.Request.
func hasCtxSource(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isContext(t) || isHTTPRequestPtr(t) {
			return true
		}
	}
	return false
}

// callName renders the callee for diagnostics (method or function
// name; good enough to locate the call).
func callName(pass *analysis.Pass, call *ast.CallExpr) string {
	if f := analysis.FuncOf(pass.TypesInfo, call); f != nil {
		return f.Name()
	}
	return "span start"
}

func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}
