// Package poolsafe machine-checks the sync.Pool discipline the hot
// serving path depends on (the pooled batch planner, codec scratch
// and JSON encoder buffers):
//
//   - an object must not be used after it is returned with Put — the
//     pool may already have handed it to another goroutine;
//   - a pooled object must not escape the function that Get it: not
//     into a goroutine (`go` statement capturing it) and not into a
//     struct field, where it can outlive its pool slot;
//   - a pooled struct type with map-typed fields must have a
//     reset/Reset method that clears every one of them (clear,
//     delete, or reassignment) — truncating slices with [:0] is fine,
//     but map keys from one request must never leak into the next,
//     or two byte-identical requests can diverge on a recycled entry.
//
// The use-after-Put analysis is block-structured like lockheld: a Put
// kills the variable for the statements after it in the same block
// (branches analysed with a copy), and deferred Puts are exempt
// (they run at return, after every use).
package poolsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"clrdse/internal/analysis"
)

// Analyzer is the poolsafe check.
var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc: "enforce sync.Pool discipline: no use after Put, no escape into goroutines or " +
		"struct fields, and reset methods must clear every map field of pooled scratch types",
	Run: run,
}

func run(pass *analysis.Pass) error {
	checkPooledTypes(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// --- pooled type discovery and reset discipline ----------------------

// pooledStructs finds the named struct types of this package that
// travel through a sync.Pool: the pointee of a pool literal's New
// result, or of any Put argument.
func pooledStructs(pass *analysis.Pass) map[*types.Named]token.Pos {
	found := make(map[*types.Named]token.Pos)
	record := func(t types.Type, pos token.Pos) {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() != pass.Pkg {
			return
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			return
		}
		if _, seen := found[named]; !seen {
			found[named] = pos
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CompositeLit:
				if !isSyncPool(pass.TypesInfo.TypeOf(v)) {
					return true
				}
				for _, elt := range v.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if id, ok := kv.Key.(*ast.Ident); !ok || id.Name != "New" {
						continue
					}
					lit, ok := kv.Value.(*ast.FuncLit)
					if !ok {
						continue
					}
					ast.Inspect(lit.Body, func(m ast.Node) bool {
						ret, ok := m.(*ast.ReturnStmt)
						if !ok || len(ret.Results) != 1 {
							return true
						}
						if t := pass.TypesInfo.TypeOf(ret.Results[0]); t != nil {
							record(t, v.Pos())
						}
						return true
					})
				}
			case *ast.CallExpr:
				if pool, name := poolMethod(pass, v); pool && name == "Put" && len(v.Args) == 1 {
					if t := pass.TypesInfo.TypeOf(v.Args[0]); t != nil {
						record(t, v.Pos())
					}
				}
			}
			return true
		})
	}
	return found
}

// checkPooledTypes enforces the reset rule on every pooled struct
// with map fields.
func checkPooledTypes(pass *analysis.Pass) {
	pooled := pooledStructs(pass)
	if len(pooled) == 0 {
		return
	}
	resets := resetMethods(pass)
	for named, pos := range pooled {
		st := named.Underlying().(*types.Struct)
		var mapFields []*types.Var
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if _, isMap := f.Type().Underlying().(*types.Map); isMap {
				mapFields = append(mapFields, f)
			}
		}
		if len(mapFields) == 0 {
			continue
		}
		rd, ok := resets[named]
		if !ok {
			pass.Reportf(pos, "pooled type %s has map fields but no reset/Reset method; stale keys survive reuse", named.Obj().Name())
			continue
		}
		cleared := clearedFields(pass, rd)
		for _, f := range mapFields {
			if !cleared[f] {
				pass.Reportf(rd.Name.Pos(), "reset method of pooled %s does not clear map field %s; stale keys survive reuse",
					named.Obj().Name(), f.Name())
			}
		}
	}
}

// resetMethods maps each named type of the package to its
// reset/Reset method declaration, if any.
func resetMethods(pass *analysis.Pass) map[*types.Named]*ast.FuncDecl {
	out := make(map[*types.Named]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "reset" && fd.Name.Name != "Reset" {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			t := fn.Type().(*types.Signature).Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				out[named] = fd
			}
		}
	}
	return out
}

// clearedFields reports which receiver fields the method body clears:
// as the argument of clear(), the map of delete(), or the target of
// an assignment.
func clearedFields(pass *analysis.Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	cleared := make(map[*types.Var]bool)
	mark := func(e ast.Expr) {
		if f := fieldOf(pass, e); f != nil {
			cleared[f] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && len(v.Args) > 0 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "clear" || id.Name == "delete") {
					mark(v.Args[0])
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				mark(lhs)
			}
		}
		return true
	})
	return cleared
}

// fieldOf resolves a selector expression to the struct field it
// names, or nil.
func fieldOf(pass *analysis.Pass, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	f, _ := s.Obj().(*types.Var)
	return f
}

// --- per-function flow: use-after-Put, goroutine and field escape ----

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	pooledVars := make(map[*types.Var]bool)
	// First pass: which locals come from a pool.Get()?
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) == 0 || len(as.Rhs) == 0 {
			return true
		}
		if !isPoolGet(pass, as.Rhs[0]) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if v := varOf(pass, id); v != nil {
				pooledVars[v] = true
			}
		}
		return true
	})
	if len(pooledVars) == 0 {
		return
	}

	walkStmts(pass, fd.Body.List, pooledVars, map[*types.Var]bool{})

	// Escape checks are flow-insensitive over the whole body.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			if pv := referencedPooled(pass, v.Call, pooledVars); pv != nil {
				pass.Reportf(v.Pos(), "pooled %s escapes into a goroutine started here; it may be reused while the goroutine still runs", pv.Name())
			}
			return false
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				if i >= len(v.Rhs) {
					break
				}
				rhs, ok := ast.Unparen(v.Rhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				rv := varOf(pass, rhs)
				if rv == nil || !pooledVars[rv] {
					continue
				}
				f := fieldOf(pass, lhs)
				if f == nil {
					continue
				}
				// Storing into a field of another pooled object stays
				// inside the same lifetime; anything else escapes.
				if root := rootVar(pass, lhs); root != nil && pooledVars[root] {
					continue
				}
				pass.Reportf(v.Pos(), "pooled %s stored in struct field %s; it can outlive its pool slot", rv.Name(), f.Name())
			}
		}
		return true
	})
}

// walkStmts carries the set of already-Put pooled variables through
// one statement list, reporting any later use.
func walkStmts(pass *analysis.Pass, stmts []ast.Stmt, pooled map[*types.Var]bool, dead map[*types.Var]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if v := putArg(pass, s.X, pooled); v != nil {
				checkDeadUses(pass, s, dead)
				dead[v] = true
				continue
			}
			checkDeadUses(pass, s, dead)
		case *ast.DeferStmt:
			// Deferred Put runs at return, after every use: exempt,
			// and it does not kill the variable for the body.
		case *ast.IfStmt:
			checkDeadUses(pass, s.Cond, dead)
			if s.Init != nil {
				checkDeadUses(pass, s.Init, dead)
			}
			walkStmts(pass, s.Body.List, pooled, copySet(dead))
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					walkStmts(pass, e.List, pooled, copySet(dead))
				case *ast.IfStmt:
					walkStmts(pass, []ast.Stmt{e}, pooled, copySet(dead))
				}
			}
		case *ast.ForStmt:
			checkDeadUses(pass, s.Cond, dead)
			walkStmts(pass, s.Body.List, pooled, copySet(dead))
		case *ast.RangeStmt:
			checkDeadUses(pass, s.X, dead)
			walkStmts(pass, s.Body.List, pooled, copySet(dead))
		case *ast.BlockStmt:
			walkStmts(pass, s.List, pooled, copySet(dead))
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			ast.Inspect(s, func(n ast.Node) bool {
				if cc, ok := n.(*ast.CaseClause); ok {
					walkStmts(pass, cc.Body, pooled, copySet(dead))
					return false
				}
				if cc, ok := n.(*ast.CommClause); ok {
					walkStmts(pass, cc.Body, pooled, copySet(dead))
					return false
				}
				return true
			})
		default:
			checkDeadUses(pass, stmt, dead)
		}
	}
}

func copySet(m map[*types.Var]bool) map[*types.Var]bool {
	cp := make(map[*types.Var]bool, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// checkDeadUses reports references to already-Put variables under
// node. Function literals are skipped (escape is the goroutine rule's
// concern).
func checkDeadUses(pass *analysis.Pass, node ast.Node, dead map[*types.Var]bool) {
	if node == nil || len(dead) == 0 {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v := varOf(pass, id); v != nil && dead[v] {
			pass.Reportf(id.Pos(), "use of pooled %s after Put; the pool may already have handed it to another goroutine", v.Name())
		}
		return true
	})
}

// putArg returns the pooled variable a `pool.Put(v)` statement
// retires, or nil.
func putArg(pass *analysis.Pass, e ast.Expr, pooled map[*types.Var]bool) *types.Var {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	if isPool, name := poolMethod(pass, call); !isPool || name != "Put" {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	if v := varOf(pass, id); v != nil && pooled[v] {
		return v
	}
	return nil
}

// referencedPooled returns a pooled variable referenced anywhere in
// node (a go statement's call, including its closure body), or nil.
func referencedPooled(pass *analysis.Pass, node ast.Node, pooled map[*types.Var]bool) *types.Var {
	var found *types.Var
	ast.Inspect(node, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v := varOf(pass, id); v != nil && pooled[v] {
				found = v
			}
		}
		return true
	})
	return found
}

// --- helpers ---------------------------------------------------------

// isSyncPool reports whether t is sync.Pool (or *sync.Pool).
func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// poolMethod classifies a call as a method on a sync.Pool value,
// returning the method name.
func poolMethod(pass *analysis.Pass, call *ast.CallExpr) (bool, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false, ""
	}
	if t := pass.TypesInfo.TypeOf(sel.X); isSyncPool(t) {
		return true, sel.Sel.Name
	}
	return false, ""
}

// isPoolGet reports whether e is pool.Get() (possibly behind a type
// assertion).
func isPoolGet(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	isPool, name := poolMethod(pass, call)
	return isPool && name == "Get"
}

func varOf(pass *analysis.Pass, id *ast.Ident) *types.Var {
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// rootVar walks to the base identifier of a selector chain.
func rootVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.Ident:
			return varOf(pass, v)
		default:
			return nil
		}
	}
}
