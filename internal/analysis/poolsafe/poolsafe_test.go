package poolsafe_test

import (
	"testing"

	"clrdse/internal/analysis/checktest"
	"clrdse/internal/analysis/poolsafe"
)

func TestPoolsafe(t *testing.T) {
	checktest.Run(t, "testdata", poolsafe.Analyzer, "pool")
}
