// Package pool seeds poolsafe violations: sync.Pool scratch objects
// used after Put, escaping into goroutines or struct fields, and
// pooled types whose reset discipline leaks map keys.
package pool

import "sync"

// scratch is the well-behaved pooled type: its reset clears the map
// and truncates the slice.
type scratch struct {
	keys map[string]int
	buf  []byte
}

func (s *scratch) reset() {
	clear(s.keys)
	s.buf = s.buf[:0]
}

var goodPool = sync.Pool{New: func() any { return new(scratch) }}

// leaky has a map field but no reset/Reset method at all.
type leaky struct {
	seen map[uint64]bool
}

var leakyPool = sync.Pool{New: func() any { return new(leaky) }} // want `pooled type leaky has map fields but no reset/Reset method; stale keys survive reuse`

// halfReset clears one of its two map fields.
type halfReset struct {
	a map[string]int
	b map[string]int
}

var halfPool = sync.Pool{New: func() any { return new(halfReset) }}

func (h *halfReset) Reset() { // want `reset method of pooled halfReset does not clear map field b; stale keys survive reuse`
	clear(h.a)
}

// UseAfterPut touches the object after returning it.
func UseAfterPut() int {
	s := goodPool.Get().(*scratch)
	s.keys["a"] = 1
	goodPool.Put(s)
	return len(s.buf) // want `use of pooled s after Put; the pool may already have handed it to another goroutine`
}

// DoublePut returns the same object twice.
func DoublePut() {
	s := goodPool.Get().(*scratch)
	goodPool.Put(s)
	goodPool.Put(s) // want `use of pooled s after Put`
}

// DeferredPut is the idiomatic shape: Put runs at return, after every
// use.
func DeferredPut() int {
	s := goodPool.Get().(*scratch)
	defer goodPool.Put(s)
	s.keys["a"] = 1
	return len(s.keys)
}

// BranchPut retires the object on one path only; the fall-through path
// still owns it.
func BranchPut(cond bool) {
	s := goodPool.Get().(*scratch)
	if cond {
		goodPool.Put(s)
		return
	}
	s.keys["b"] = 2
	goodPool.Put(s)
}

// GoEscape hands the object to a goroutine that may still be running
// when the pool recycles it.
func GoEscape() {
	s := goodPool.Get().(*scratch)
	go func() { // want `pooled s escapes into a goroutine started here; it may be reused while the goroutine still runs`
		s.keys["x"] = 1
	}()
	goodPool.Put(s)
}

// holder keeps a pooled object beyond its slot.
type holder struct {
	cached *scratch
}

// FieldEscape parks the object in a struct field that outlives it.
func FieldEscape(h *holder) {
	s := goodPool.Get().(*scratch)
	h.cached = s // want `pooled s stored in struct field cached; it can outlive its pool slot`
	goodPool.Put(s)
}

// JoinedEscape shows a justified suppression: the WaitGroup joins the
// goroutine before the Put, so the escape cannot outlive the slot.
func JoinedEscape() {
	s := goodPool.Get().(*scratch)
	var wg sync.WaitGroup
	wg.Add(1)
	//lint:allow poolsafe wg.Wait joins the goroutine before Put, so the escape cannot outlive the pool slot
	go func() {
		defer wg.Done()
		s.keys["y"] = 1
	}()
	wg.Wait()
	goodPool.Put(s)
}
