// Package factcache is the per-package result cache behind
// cmd/clrlint's warm runs. One entry stores everything a later run
// needs from analyzing one package: the post-suppression diagnostics
// (as file/line/column records, so they can be re-printed without
// re-parsing) and the gob-encoded cross-package facts the package's
// analyzers exported (so dependents can still import them when the
// producer's analysis is skipped).
//
// The cache key is a content hash over the toolchain version, the
// enabled analyzer list, the package's import path, its compiler
// export data, its source file contents, and the keys of its
// in-module dependencies. Export data hashes cover the API surface a
// dependent type-checks against; the transitive dep-key chain covers
// fact producers, so editing a package invalidates every dependent's
// entry but leaves unrelated packages warm.
package factcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"clrdse/internal/analysis"
)

// Diag is one cached diagnostic, resolved to a concrete position.
type Diag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Entry is one package's cached analysis result.
type Entry struct {
	// ImportPath records which package produced the entry (for
	// debugging; the key alone identifies it).
	ImportPath string `json:"import_path"`
	// Diags are the post-suppression diagnostics.
	Diags []Diag `json:"diags,omitempty"`
	// Facts are the package's exported facts, ready for
	// Session.DecodeFacts against an export-data-loaded instance.
	Facts []analysis.EncodedFact `json:"facts,omitempty"`
}

// Cache is a directory of JSON entries, one file per key. Reads and
// writes are best-effort from the caller's point of view: a corrupt
// or missing entry is a miss, and Put overwrites atomically via
// rename so a crashed run never leaves a torn entry.
type Cache struct {
	dir string
}

// DefaultDir returns the conventional cache location
// (os.UserCacheDir()/clrlint, falling back to the system temp dir).
func DefaultDir() string {
	if base, err := os.UserCacheDir(); err == nil {
		return filepath.Join(base, "clrlint")
	}
	return filepath.Join(os.TempDir(), "clrlint-cache")
}

// Open creates (if needed) and returns the cache at dir; an empty dir
// selects DefaultDir.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		dir = DefaultDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("factcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".json") }

// Get loads the entry for key; ok is false on miss or corruption.
func (c *Cache) Get(key string) (e Entry, ok bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return Entry{}, false
	}
	if err := json.Unmarshal(data, &e); err != nil {
		return Entry{}, false
	}
	return e, true
}

// Put stores the entry under key.
func (c *Cache) Put(key string, e Entry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("factcache: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "entry-*")
	if err != nil {
		return fmt.Errorf("factcache: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("factcache: writing entry: %w", errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("factcache: %w", err)
	}
	return nil
}

// Key hashes the inputs that determine one package's analysis result:
// literal elements (toolchain version, analyzer names, import path,
// dependency keys) and the contents of files (export data, sources).
// A file that cannot be read makes the key an error rather than a
// silently-wrong hash.
func Key(elems []string, files []string) (string, error) {
	h := sha256.New()
	for _, e := range elems {
		fmt.Fprintf(h, "%d:%s\n", len(e), e)
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			// A vanished file (e.g. export data evicted from the go
			// build cache mid-run) must not alias the key of a run
			// that hashed real content.
			var perr *fs.PathError
			if errors.As(err, &perr) {
				return "", fmt.Errorf("factcache: keying %s: %w", path, err)
			}
			return "", err
		}
		fmt.Fprintf(h, "file:%s\n", filepath.Base(path))
		_, cerr := io.Copy(h, f)
		f.Close()
		if cerr != nil {
			return "", fmt.Errorf("factcache: keying %s: %w", path, cerr)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
