package factcache

import (
	"os"
	"path/filepath"
	"testing"

	"clrdse/internal/analysis"
)

func TestKeySensitivity(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.go")
	if err := os.WriteFile(a, []byte("package a"), 0o666); err != nil {
		t.Fatal(err)
	}
	k1, err := Key([]string{"go1.24", "detrand"}, []string{a})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key([]string{"go1.24", "detrand"}, []string{a})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("identical inputs must produce identical keys")
	}
	if k3, _ := Key([]string{"go1.24", "detrand,maporder"}, []string{a}); k3 == k1 {
		t.Error("changing the analyzer list must change the key")
	}
	if err := os.WriteFile(a, []byte("package a // edited"), 0o666); err != nil {
		t.Fatal(err)
	}
	if k4, _ := Key([]string{"go1.24", "detrand"}, []string{a}); k4 == k1 {
		t.Error("editing a keyed file must change the key")
	}
	if _, err := Key(nil, []string{filepath.Join(dir, "missing.go")}); err == nil {
		t.Error("an unreadable file must fail the key, not silently weaken it")
	}
}

func TestPutGetRoundtrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entry := Entry{
		ImportPath: "clrdse/internal/fleet",
		Diags: []Diag{
			{File: "f.go", Line: 3, Col: 7, Analyzer: "errdrop", Message: "error result discarded"},
		},
		Facts: []analysis.EncodedFact{{Object: "F", Type: "x.fact", Data: []byte{1, 2}}},
	}
	key := "0123456789abcdef0123456789abcdef"
	if _, ok := c.Get(key); ok {
		t.Fatal("Get before Put must miss")
	}
	if err := c.Put(key, entry); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("Get after Put must hit")
	}
	if got.ImportPath != entry.ImportPath || len(got.Diags) != 1 || len(got.Facts) != 1 {
		t.Fatalf("roundtrip lost data: %+v", got)
	}
	if got.Diags[0] != entry.Diags[0] {
		t.Fatalf("diag roundtrip = %+v, want %+v", got.Diags[0], entry.Diags[0])
	}
}

func TestGetMissesOnCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "feedfacefeedfacefeedfacefeedface"
	if err := c.Put(key, Entry{ImportPath: "p"}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no cache files written (err=%v)", err)
	}
	for _, m := range matches {
		if err := os.WriteFile(m, []byte("{not json"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get(key); ok {
		t.Error("corrupt entry must read as a miss, not an error or a hit")
	}
}
