package analysis_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"clrdse/internal/analysis"
)

// parseAndCheck type-checks one in-memory file so Run has a real
// Target to work with.
func parseAndCheck(t *testing.T, src string) analysis.Target {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return analysis.Target{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

// flagCalls reports every call expression, so tests can place findings
// on arbitrary lines.
var flagCalls = &analysis.Analyzer{
	Name: "flagcalls",
	Doc:  "test analyzer: reports every function call",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(call.Pos(), "call found")
				}
				return true
			})
		}
		return nil
	},
}

func lines(t *testing.T, target analysis.Target, diags []analysis.Diagnostic) []int {
	t.Helper()
	out := make([]int, 0, len(diags))
	for _, d := range diags {
		out = append(out, target.Fset.Position(d.Pos).Line)
	}
	return out
}

func TestSuppressionSameLineAndLineAbove(t *testing.T) {
	src := `package p

func g() {}

func f() {
	g() //lint:allow flagcalls same-line waiver
	//lint:allow flagcalls line-above waiver
	g()
	g()
}
`
	target := parseAndCheck(t, src)
	diags, err := analysis.Run([]*analysis.Analyzer{flagCalls}, target)
	if err != nil {
		t.Fatal(err)
	}
	got := lines(t, target, diags)
	// Lines 6 and 8 are waived; only the bare call on line 9 survives.
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("suppression kept lines %v, want [9]", got)
	}
}

func TestSuppressionIsPerAnalyzer(t *testing.T) {
	src := `package p

func g() {}

func f() {
	g() //lint:allow otherchecker not this analyzer
}
`
	target := parseAndCheck(t, src)
	diags, err := analysis.Run([]*analysis.Analyzer{flagCalls}, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("allow for a different analyzer must not suppress; got %d diags", len(diags))
	}
}

func TestMalformedAllowIsReported(t *testing.T) {
	src := `package p

func g() {}

func f() {
	//lint:allow flagcalls
	g()
}
`
	target := parseAndCheck(t, src)
	diags, err := analysis.Run([]*analysis.Analyzer{flagCalls}, target)
	if err != nil {
		t.Fatal(err)
	}
	var sawLintallow, sawCall bool
	for _, d := range diags {
		switch d.Analyzer {
		case "lintallow":
			sawLintallow = true
			if !strings.Contains(d.Message, "reason is mandatory") {
				t.Errorf("lintallow message %q should explain the mandatory reason", d.Message)
			}
		case "flagcalls":
			sawCall = true
		}
	}
	if !sawLintallow {
		t.Error("reason-less //lint:allow must produce a lintallow diagnostic")
	}
	if !sawCall {
		t.Error("reason-less //lint:allow must not suppress the finding it precedes")
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	src := `package p

func g() {}

func f() {
	g()
	g()
	g()
}
`
	target := parseAndCheck(t, src)
	diags, err := analysis.Run([]*analysis.Analyzer{flagCalls}, target)
	if err != nil {
		t.Fatal(err)
	}
	got := lines(t, target, diags)
	if len(got) != 3 {
		t.Fatalf("want 3 diagnostics, got %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("diagnostics out of order: %v", got)
		}
	}
}

func TestFuncOfAndIsPkgFunc(t *testing.T) {
	src := `package p

import "fmt"

type s struct{ hook func() }

func (s) m() {}

func f(v s) {
	fmt.Println()
	v.m()
	v.hook()
}
`
	target := parseAndCheck(t, src)
	var calls []*ast.CallExpr
	ast.Inspect(target.Files[0], func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, c)
		}
		return true
	})
	if len(calls) != 3 {
		t.Fatalf("found %d calls, want 3", len(calls))
	}
	if !analysis.IsPkgFunc(target.Info, calls[0], "fmt", "Println") {
		t.Error("fmt.Println not recognised by IsPkgFunc")
	}
	if f := analysis.FuncOf(target.Info, calls[1]); f == nil || f.Name() != "m" {
		t.Errorf("FuncOf(method call) = %v, want m", f)
	}
	if analysis.IsPkgFunc(target.Info, calls[1], "p", "m") {
		t.Error("IsPkgFunc must reject methods")
	}
	if f := analysis.FuncOf(target.Info, calls[2]); f != nil {
		t.Errorf("FuncOf(dynamic call) = %v, want nil", f)
	}
}

func TestPkgBase(t *testing.T) {
	cases := map[string]string{
		"clrdse/internal/dse": "dse",
		"dse":                 "dse",
		"net/http":            "http",
	}
	for in, want := range cases {
		if got := analysis.PkgBase(in); got != want {
			t.Errorf("PkgBase(%q) = %q, want %q", in, got, want)
		}
	}
}
