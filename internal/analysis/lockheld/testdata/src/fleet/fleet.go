// Package fleet seeds lockheld violations: its path contains "fleet",
// so holding a sync mutex across decide/HTTP/callback boundaries and
// moving lock-bearing structs by value must be flagged.
package fleet

import (
	"net/http"
	"sync"

	"remote"
)

// Device is a decide target.
type Device struct{}

// Decide is a decision boundary: unbounded work.
func (d *Device) Decide() int { return 0 }

// Shard guards a device set; Hook is a callback field.
type Shard struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	Hook func()
	n    int
}

// BadDecideUnderLock holds the shard mutex across a decide call.
func (s *Shard) BadDecideUnderLock(d *Device) {
	s.mu.Lock()
	_ = d.Decide() // want `Decide called while s\.mu is held`
	s.mu.Unlock()
}

// GoodDecideAfterUnlock releases before deciding.
func (s *Shard) GoodDecideAfterUnlock(d *Device) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	_ = d.Decide()
}

// BadDeferHeld holds to function end via defer, so the callback runs
// under the lock.
func (s *Shard) BadDeferHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	s.Hook() // want `function value s\.Hook called while s\.mu is held`
}

// BadHTTPUnderRLock crosses an HTTP boundary under the read lock.
func (s *Shard) BadHTTPUnderRLock() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	_, _ = http.Get("http://localhost/healthz") // want `net/http\.Get called while s\.rw is held`
}

// GoodEarlyUnlockBranch releases inside the branch before deciding.
func (s *Shard) GoodEarlyUnlockBranch(d *Device, dup bool) {
	s.mu.Lock()
	if dup {
		s.mu.Unlock()
		_ = d.Decide()
		return
	}
	s.n++
	s.mu.Unlock()
}

// GoodStaticCallsUnderLock: static non-boundary calls are fine under
// a lock.
func (s *Shard) GoodStaticCallsUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return supporting(s.n)
}

func supporting(n int) int { return n + 1 }

// AllowedUnderLock shows suppression with a mandatory reason.
func (s *Shard) AllowedUnderLock(d *Device) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow lockheld Decide here is a stub that cannot block
	_ = d.Decide()
}

// LockBox carries a mutex; Manager-bearing structs embed it.
type LockBox struct {
	MU sync.Mutex
	V  int
}

// Holder embeds a lock-bearing struct one level down.
type Holder struct {
	Box LockBox
}

// BadByValueParam copies the lock on every call.
func BadByValueParam(b LockBox) int { // want `parameter passes fleet\.LockBox by value`
	return b.V
}

// BadValueReceiver copies the lock on every method call.
func (h Holder) BadValueReceiver() int { // want `receiver passes fleet\.Holder by value`
	return h.Box.V
}

// BadDerefCopy copies the lock out of the pointer.
func BadDerefCopy(p *LockBox) int {
	cp := *p // want `dereference copies fleet\.LockBox, which contains a lock`
	return cp.V
}

// GoodPointerParam moves the lock behind a pointer.
func GoodPointerParam(b *LockBox) int { return b.V }

// GoodPlainStruct has no lock to copy.
type GoodPlainStruct struct{ N int }

// GoodByValue copies no lock.
func GoodByValue(g GoodPlainStruct) int { return g.N }

// BadInterprocDecide reaches a Decide boundary through a local helper:
// the call graph, not the call site, carries the violation.
func (s *Shard) BadInterprocDecide(d *Device) {
	s.mu.Lock()
	decideAll(d) // want `call to decideAll while s\.mu is held reaches Decide; release the lock before crossing the boundary`
	s.mu.Unlock()
}

func decideAll(d *Device) { _ = d.Decide() }

// BadInterprocHTTP reaches an HTTP boundary two static hops away,
// across a package line (refresh → remote.Fetch → net/http.Get).
func (s *Shard) BadInterprocHTTP() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = refresh() // want `call to refresh while s\.mu is held reaches Fetch → net/http\.Get; release the lock before crossing the boundary`
}

func refresh() error { return remote.Fetch() }

// GoodGoLaunchUnderLock: the HTTP hop runs on a fresh goroutine, off
// the lock; only the launch itself happens in the critical section.
func (s *Shard) GoodGoLaunchUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	go background()
}

func background() { _ = remote.Fetch() }

// GoodSpawnHelper mirrors the client batcher: the helper under the
// lock only *launches* the boundary work, so the go edge must not
// count as reaching the boundary.
func (s *Shard) GoodSpawnHelper() {
	s.mu.Lock()
	defer s.mu.Unlock()
	spawn()
}

func spawn() { go background() }
