// Package remote is an out-of-scope helper on the far side of a
// cross-package acquire-then-call chain: lockheld never reports inside
// it, but it still exports a BoundaryFact (and call-graph nodes) so a
// fleet-side caller holding a lock is caught reaching Fetch.
package remote

import "net/http"

// Fetch crosses an HTTP boundary.
func Fetch() error {
	resp, err := http.Get("http://localhost/x")
	if err != nil {
		return err
	}
	return resp.Body.Close()
}
