// Package other is outside the fleet scope: the same constructs are
// legal here (vet's own copylocks still applies in CI, this analyzer
// focuses on the fleet contract).
package other

import "sync"

// Box carries a mutex.
type Box struct {
	MU sync.Mutex
	N  int
}

// ByValue is out of scope for lockheld.
func ByValue(b Box) int { return b.N }
