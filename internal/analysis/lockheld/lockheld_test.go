package lockheld_test

import (
	"testing"

	"clrdse/internal/analysis/checktest"
	"clrdse/internal/analysis/lockheld"
)

func TestLockheld(t *testing.T) {
	// remote is named too: it must stay diagnostic-free (out of scope)
	// while feeding the call graph that fleet's interprocedural cases
	// cross.
	checktest.Run(t, "testdata", lockheld.Analyzer, "fleet", "other", "remote")
}
