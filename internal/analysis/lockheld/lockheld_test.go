package lockheld_test

import (
	"testing"

	"clrdse/internal/analysis/checktest"
	"clrdse/internal/analysis/lockheld"
)

func TestLockheld(t *testing.T) {
	checktest.Run(t, "testdata", lockheld.Analyzer, "fleet", "other")
}
