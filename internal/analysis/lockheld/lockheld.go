// Package lockheld machine-checks the fleet layer's locking
// contract, which the sharded registry's throughput depends on:
//
//   - a shard or registry mutex must never be held across a decision
//     (Decide/DecideCtx), an HTTP boundary (ServeHTTP, net/http
//     calls) or a callback (a call through a function-typed value,
//     such as the DecideHook) — these run for unbounded time and
//     would serialise the whole shard;
//   - types that carry a lock (sync.Mutex and friends, sync/atomic
//     values, or any struct transitively containing one, such as
//     Manager-bearing structs) must move by pointer, never by value.
//
// The held-lock analysis is a per-function, block-structured
// approximation: Lock/RLock on a sync mutex opens a held region that
// the matching Unlock/RUnlock closes; `defer mu.Unlock()` holds to
// the end of the function. Branch bodies are analysed with a copy of
// the held set, and function-literal bodies are skipped (a closure
// may run long after the critical section). That is deliberately
// simpler than a full CFG and errs towards silence, not noise.
//
// Since v2 the boundary rule is interprocedural: at a call site
// inside a held region, the analyzer follows static call edges
// through the session call graph, so a helper that merely *reaches* a
// Decide/HTTP boundary is caught too — across package lines. Each
// package exports a BoundaryFact summarising which of its functions
// reach a boundary; dependents consult the fact when the producer's
// bodies are not in the session (result-cache hit), and the call
// graph otherwise.
package lockheld

import (
	"go/ast"
	"go/types"
	"strings"

	"clrdse/internal/analysis"
)

// Analyzer is the lockheld check.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc: "flag fleet shard/registry mutexes held across Decide/HTTP/callback boundaries " +
		"(directly or transitively via the call graph), and lock-bearing structs passed " +
		"or copied by value",
	Run: run,
}

// BoundaryFact summarises, for one package, which of its functions
// transitively reach a decide/HTTP boundary. Keys are "Name" or
// "Type.Method"; values describe the path for the diagnostic
// ("helper → Decide").
type BoundaryFact struct {
	Funcs map[string]string
}

// AFact marks BoundaryFact as a fact type.
func (*BoundaryFact) AFact() {}

func init() { analysis.RegisterFact(&BoundaryFact{}) }

// boundaryMethods are calls that must not run under a shard or
// registry mutex.
var boundaryMethods = map[string]bool{
	"Decide":    true,
	"DecideCtx": true,
	"ServeHTTP": true,
}

// inScope covers the serving layers where a mutex held across a
// decide/HTTP boundary turns into fleet-wide head-of-line blocking:
// the fleet registry/server packages and the cluster ring router
// (whose forward and handoff hops are HTTP calls).
func inScope(pkgPath string) bool {
	return strings.Contains(pkgPath, "fleet") || strings.Contains(pkgPath, "cluster")
}

func run(pass *analysis.Pass) error {
	rc := &reachChecker{pass: pass, memo: map[string]string{}, visiting: map[string]bool{}}
	// Every package — in scope or not — exports its boundary summary:
	// an out-of-scope helper package can still be the middle of a
	// fleet-side acquire-then-call chain.
	exportBoundaryFact(pass, rc)
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCopies(pass, fd)
			if fd.Body != nil {
				analyzeStmts(pass, rc, fd.Body.List, map[string]bool{})
			}
		}
	}
	return nil
}

// --- interprocedural boundary reachability ---------------------------

// reachChecker answers "does calling f transitively reach a
// decide/HTTP boundary?" over the session call graph, consulting
// imported BoundaryFacts for functions whose bodies the session never
// saw. Edges inside function literals and defer statements are
// excluded, matching the intraprocedural analysis (a closure or
// deferred call does not run inside the critical section the call
// site sits in — or if it does, the intraprocedural walk of that body
// sees it directly).
type reachChecker struct {
	pass     *analysis.Pass
	memo     map[string]string // FuncKey → boundary path ("" = does not reach)
	visiting map[string]bool
}

// directBoundary describes f itself being a boundary, or "".
func directBoundary(f *types.Func) string {
	if boundaryMethods[f.Name()] {
		return f.Name()
	}
	if f.Pkg() != nil && f.Pkg().Path() == "net/http" {
		return "net/http." + f.Name()
	}
	return ""
}

// relName is FuncKey without the package path: "Name" or
// "Type.Method", the key shape BoundaryFact uses.
func relName(f *types.Func) string {
	key := analysis.FuncKey(f)
	if f.Pkg() != nil {
		return strings.TrimPrefix(key, f.Pkg().Path()+".")
	}
	return key
}

// reaches returns the boundary path f's body leads to, if any.
func (rc *reachChecker) reaches(f *types.Func) (string, bool) {
	key := analysis.FuncKey(f)
	if path, ok := rc.memo[key]; ok {
		return path, path != ""
	}
	if rc.visiting[key] {
		return "", false // recursion: the cycle itself adds no boundary
	}
	rc.visiting[key] = true
	defer delete(rc.visiting, key)

	path := ""
	node := rc.pass.Session.Graph.Node(f)
	if node == nil {
		// No body in the session: a cache-skipped module package (ask
		// its exported fact) or an out-of-module function (no edge).
		if f.Pkg() != nil {
			var bf BoundaryFact
			if rc.pass.ImportPackageFact(f.Pkg().Path(), &bf) {
				path = bf.Funcs[relName(f)]
			}
		}
	} else {
		for _, call := range node.Calls {
			if call.InFuncLit || call.Deferred || call.InGo {
				continue
			}
			if d := directBoundary(call.Callee); d != "" {
				path = d
				break
			}
			if sub, ok := rc.reaches(call.Callee); ok {
				path = call.Callee.Name() + " → " + sub
				break
			}
		}
	}
	rc.memo[key] = path
	return path, path != ""
}

// exportBoundaryFact publishes this package's summary for dependents
// (and for cache-warm future runs).
func exportBoundaryFact(pass *analysis.Pass, rc *reachChecker) {
	funcs := map[string]string{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if path, ok := rc.reaches(fn); ok {
				funcs[relName(fn)] = path
			}
		}
	}
	if len(funcs) > 0 {
		pass.ExportPackageFact(&BoundaryFact{Funcs: funcs})
	}
}

// --- held-across-boundary analysis -----------------------------------

// analyzeStmts walks one statement list carrying the set of held lock
// expressions (keyed by their printed receiver, e.g. "sh.mu").
func analyzeStmts(pass *analysis.Pass, rc *reachChecker, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if key, acquired, isLock := lockCall(pass, s.X); isLock {
				if acquired {
					held[key] = true
				} else {
					delete(held, key)
				}
				continue
			}
			checkBoundary(pass, rc, s, held)
		case *ast.DeferStmt:
			if _, acquired, isLock := lockCall(pass, s.Call); isLock && !acquired {
				continue // deferred unlock: held to function end
			}
			// Other deferred calls run at return, where the held set
			// is unknowable without a CFG; stay silent.
		case *ast.GoStmt:
			// The launched call runs on its own goroutine, off this
			// lock; only its arguments evaluate here.
			for _, arg := range s.Call.Args {
				checkBoundary(pass, rc, arg, held)
			}
		case *ast.IfStmt:
			checkBoundary(pass, rc, s.Cond, held)
			if s.Init != nil {
				checkBoundary(pass, rc, s.Init, held)
			}
			analyzeStmts(pass, rc, s.Body.List, copyHeld(held))
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					analyzeStmts(pass, rc, e.List, copyHeld(held))
				case *ast.IfStmt:
					analyzeStmts(pass, rc, []ast.Stmt{e}, copyHeld(held))
				}
			}
		case *ast.ForStmt:
			checkBoundary(pass, rc, s.Cond, held)
			analyzeStmts(pass, rc, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			checkBoundary(pass, rc, s.X, held)
			analyzeStmts(pass, rc, s.Body.List, copyHeld(held))
		case *ast.BlockStmt:
			analyzeStmts(pass, rc, s.List, copyHeld(held))
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			ast.Inspect(s, func(n ast.Node) bool {
				if cc, ok := n.(*ast.CaseClause); ok {
					analyzeStmts(pass, rc, cc.Body, copyHeld(held))
					return false
				}
				if cc, ok := n.(*ast.CommClause); ok {
					analyzeStmts(pass, rc, cc.Body, copyHeld(held))
					return false
				}
				return true
			})
		default:
			checkBoundary(pass, rc, stmt, held)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	cp := make(map[string]bool, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

// lockCall classifies a sync mutex Lock/RLock/Unlock/RUnlock call,
// returning the lock's receiver expression as key.
func lockCall(pass *analysis.Pass, e ast.Expr) (key string, acquired, isLock bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
		return "", false, false
	}
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", false, false
	}
	return types.ExprString(sel.X), name == "Lock" || name == "RLock", true
}

// checkBoundary reports boundary calls inside node while locks are
// held — direct boundaries, static calls that transitively reach one
// through the call graph, and dynamic calls through function values.
// Function-literal bodies are skipped.
func checkBoundary(pass *analysis.Pass, rc *reachChecker, node ast.Node, held map[string]bool) {
	if node == nil || len(held) == 0 {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion, not a call
		}
		locks := heldNames(held)
		if f := analysis.FuncOf(pass.TypesInfo, call); f != nil {
			switch {
			case boundaryMethods[f.Name()]:
				pass.Reportf(call.Pos(), "%s called while %s is held; release the lock before crossing a decide boundary", f.Name(), locks)
			case f.Pkg() != nil && f.Pkg().Path() == "net/http":
				pass.Reportf(call.Pos(), "net/http.%s called while %s is held; release the lock before crossing an HTTP boundary", f.Name(), locks)
			default:
				if path, ok := rc.reaches(f); ok {
					pass.Reportf(call.Pos(), "call to %s while %s is held reaches %s; release the lock before crossing the boundary", f.Name(), locks, path)
				}
			}
			return true
		}
		if isDynamicCall(pass, call) {
			pass.Reportf(call.Pos(), "function value %s called while %s is held; callbacks must not run under a shard/registry lock", types.ExprString(call.Fun), locks)
		}
		return true
	})
}

// isDynamicCall reports calls through function-typed values (hooks,
// callbacks) as opposed to static functions, methods and builtins.
func isDynamicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			return false
		}
	case *ast.SelectorExpr:
		// Method expressions and qualified functions resolve via
		// FuncOf; what is left here is a field or variable selector.
		_ = fun
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return false
	}
	_, isSig := tv.Type.Underlying().(*types.Signature)
	return isSig && tv.Value == nil
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	// Deterministic message for the common single-lock case; multiple
	// held locks sort lexicographically.
	if len(names) > 1 {
		for i := 1; i < len(names); i++ {
			for j := i; j > 0 && names[j] < names[j-1]; j-- {
				names[j], names[j-1] = names[j-1], names[j]
			}
		}
	}
	return strings.Join(names, ", ")
}

// --- lock-copy analysis ----------------------------------------------

// checkCopies flags by-value movement of lock-bearing types through a
// function's signature and through pointer-dereference assignments.
func checkCopies(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			reportIfLockByValue(pass, field.Type, "receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			reportIfLockByValue(pass, field.Type, "parameter")
		}
	}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			reportIfLockByValue(pass, field.Type, "result")
		}
	}
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			star, ok := ast.Unparen(rhs).(*ast.StarExpr)
			if !ok {
				continue
			}
			t := pass.TypesInfo.TypeOf(star)
			if t != nil && containsLock(t, nil) {
				pass.Reportf(rhs.Pos(), "dereference copies %s, which contains a lock; keep it behind a pointer", typeName(t))
			}
		}
		return true
	})
}

func reportIfLockByValue(pass *analysis.Pass, typ ast.Expr, what string) {
	t := pass.TypesInfo.TypeOf(typ)
	if t == nil {
		return
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	if containsLock(t, nil) {
		pass.Reportf(typ.Pos(), "%s passes %s by value, which copies its lock; use a pointer", what, typeName(t))
	}
}

// containsLock walks a type for sync / sync/atomic state that must
// not be copied.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync", "sync/atomic":
				_, isIface := u.Underlying().(*types.Interface)
				return !isIface
			}
		}
		return containsLock(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

func typeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
