// Package analysis is a self-contained, standard-library-only subset
// of the golang.org/x/tools/go/analysis framework: an Analyzer is a
// named check over one type-checked package, a Pass hands it the
// syntax trees and type information, and diagnostics are positioned
// findings. The repository's custom determinism and concurrency
// checks (detrand, maporder, lockheld, ctxflow, metricname) are
// written against this API so they can migrate to the real x/tools
// framework unchanged if the dependency ever becomes available; the
// container this repo builds in has no module proxy access, so the
// framework itself ships here.
//
// Suppression: a diagnostic is suppressed by a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// on the same line as the finding or on the line directly above it.
// The reason is mandatory: an allow comment without one does not
// suppress anything and is itself reported (pseudo-analyzer
// "lintallow"), so every waiver in the tree carries its
// justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single package via the
// Pass and reports findings through pass.Reportf; returning an error
// aborts the whole lint run (reserved for internal failures, not
// findings).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow comments. It must be a lowercase identifier.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
}

// Pass is the input to one analyzer on one package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees (with comments).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression and identifier
	// facts for Files.
	TypesInfo *types.Info
	// Session is the cross-package state of the run: exported facts
	// and the module call graph. Always non-nil (Run creates one per
	// call for legacy single-package use).
	Session *Session

	diags *[]Diagnostic
}

// ExportObjectFact attaches a fact to obj, which must be a
// package-level object of the package under analysis (or a method of
// one of its named types) — the objects a dependent package can name.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	p.Session.exportObjectFact(obj, f)
}

// ImportObjectFact copies the fact of f's type previously exported
// for obj into f, reporting whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	return p.Session.importObjectFact(obj, f)
}

// ExportPackageFact attaches a fact to the package under analysis.
func (p *Pass) ExportPackageFact(f Fact) {
	p.Session.exportPackageFact(p.Pkg, f)
}

// ImportPackageFact copies the fact of f's type previously exported
// for the package at path into f, reporting whether one existed.
func (p *Pass) ImportPackageFact(path string, f Fact) bool {
	return p.Session.importPackageFact(path, f)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Analyzer names the check that produced it.
	Analyzer string
	// Message states the violation.
	Message string
}

// Target bundles the loaded, type-checked package an analyzer suite
// runs over. It is the adapter between this package and whichever
// loader produced the syntax and types (cmd/clrlint's go-list loader,
// or the checktest harness's source loader).
type Target struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run executes every analyzer over the target in a fresh
// single-package session, applies //lint:allow suppression, flags
// malformed allow comments, and returns the surviving diagnostics
// sorted by position. For multi-package runs where analyzers should
// see cross-package facts and the module call graph, create one
// Session, AddTarget each package in dependency order, and call
// RunSession instead.
func Run(analyzers []*Analyzer, t Target) ([]Diagnostic, error) {
	s := NewSession()
	s.AddTarget(t)
	return RunSession(s, analyzers, t)
}

// AddTarget registers a type-checked package with the session,
// growing the call graph. Call it for each package — in dependency
// order, before that package's RunSession — so analyzers on later
// packages can traverse into earlier ones.
func (s *Session) AddTarget(t Target) {
	s.Graph.AddPackage(t)
}

// RunSession executes every analyzer over the target within an
// ongoing session. The target must have been registered with
// AddTarget first.
func RunSession(s *Session, analyzers []*Analyzer, t Target) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      t.Fset,
			Files:     t.Files,
			Pkg:       t.Pkg,
			TypesInfo: t.Info,
			Session:   s,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, t.Pkg.Path(), err)
		}
	}
	allowed, malformed := collectAllows(t.Fset, t.Files)
	kept := diags[:0]
	for _, d := range diags {
		pos := t.Fset.Position(d.Pos)
		if allowed[allowKey{pos.Filename, pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	kept = append(kept, malformed...)
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := t.Fset.Position(kept[i].Pos), t.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

const allowPrefix = "//lint:allow"

// collectAllows scans every comment for //lint:allow directives. A
// well-formed directive ("//lint:allow <analyzer> <reason>")
// suppresses the named analyzer on its own line and the next line; a
// directive missing the analyzer name or the reason is returned as a
// diagnostic instead, so it fails the run rather than silently
// suppressing nothing.
func collectAllows(fset *token.FileSet, files []*ast.File) (map[allowKey]bool, []Diagnostic) {
	allowed := make(map[allowKey]bool)
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lintallow",
						Message:  "malformed //lint:allow: need \"//lint:allow <analyzer> <reason>\" (the reason is mandatory)",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				name := fields[0]
				allowed[allowKey{pos.Filename, pos.Line, name}] = true
				allowed[allowKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
	return allowed, malformed
}

// PkgBase returns the last element of a package import path: the
// analyzers scope themselves by it so that both the real module paths
// ("clrdse/internal/dse") and the short paths the checktest harness
// assigns to testdata packages ("dse") match the same contract.
func PkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// FuncOf resolves a call's callee to the *types.Func it invokes
// (static function, method, or interface method), or nil for dynamic
// calls through function-typed values, conversions and builtins.
func FuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsPkgFunc reports whether the call statically invokes pkgPath.name
// (package-level function, not a method).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := FuncOf(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}
