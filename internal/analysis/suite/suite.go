// Package suite enumerates the repository's analyzers in one place,
// shared by cmd/clrlint and by tests that want to run the whole set.
package suite

import (
	"clrdse/internal/analysis"
	"clrdse/internal/analysis/atomicmix"
	"clrdse/internal/analysis/ctxflow"
	"clrdse/internal/analysis/detrand"
	"clrdse/internal/analysis/errdrop"
	"clrdse/internal/analysis/lockheld"
	"clrdse/internal/analysis/maporder"
	"clrdse/internal/analysis/metricname"
	"clrdse/internal/analysis/poolsafe"
	"clrdse/internal/analysis/tracectx"
	"clrdse/internal/analysis/wiredrift"
)

// All returns the full analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		ctxflow.Analyzer,
		detrand.Analyzer,
		errdrop.Analyzer,
		lockheld.Analyzer,
		maporder.Analyzer,
		metricname.Analyzer,
		poolsafe.Analyzer,
		tracectx.Analyzer,
		wiredrift.Analyzer,
	}
}

// ByName returns the named analyzers, or nil with false if any name
// is unknown.
func ByName(names []string) ([]*analysis.Analyzer, bool) {
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}
