package suite

import "testing"

func TestAllIsCompleteAndNamed(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("All() = %d analyzers, want 10", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"atomicmix", "ctxflow", "detrand", "errdrop", "lockheld", "maporder", "metricname", "poolsafe", "tracectx", "wiredrift"} {
		if !seen[name] {
			t.Errorf("analyzer %q missing from All()", name)
		}
	}
}

func TestByName(t *testing.T) {
	got, ok := ByName([]string{"detrand", "maporder"})
	if !ok || len(got) != 2 {
		t.Fatalf("ByName(detrand,maporder) = %d analyzers, ok=%v", len(got), ok)
	}
	if _, ok := ByName([]string{"nope"}); ok {
		t.Error("ByName(nope) must report failure")
	}
}
