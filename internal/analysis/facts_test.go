package analysis_test

import (
	"testing"

	"go/types"

	"clrdse/internal/analysis"
)

// testFact is a registered fact type for the roundtrip tests.
type testFact struct{ Msg string }

func (*testFact) AFact() {}

func init() { analysis.RegisterFact(&testFact{}) }

const factSrc = `package p

type T struct{}

func (T) M() {}

func F() {}
`

// exportTestFacts attaches one fact to F, one to T.M, and one to the
// package itself.
var exportTestFacts = &analysis.Analyzer{
	Name: "producer",
	Doc:  "test analyzer: exports facts",
	Run: func(pass *analysis.Pass) error {
		scope := pass.Pkg.Scope()
		pass.ExportObjectFact(scope.Lookup("F"), &testFact{Msg: "on F"})
		named := scope.Lookup("T").Type().(*types.Named)
		pass.ExportObjectFact(named.Method(0), &testFact{Msg: "on T.M"})
		pass.ExportPackageFact(&testFact{Msg: "on p"})
		return nil
	},
}

func TestFactsFlowWithinSession(t *testing.T) {
	target := parseAndCheck(t, factSrc)
	session := analysis.NewSession()
	session.AddTarget(target)
	if _, err := analysis.RunSession(session, []*analysis.Analyzer{exportTestFacts}, target); err != nil {
		t.Fatal(err)
	}

	var got []string
	consumer := &analysis.Analyzer{
		Name: "consumer",
		Doc:  "test analyzer: imports facts",
		Run: func(pass *analysis.Pass) error {
			scope := target.Pkg.Scope()
			var tf testFact
			if pass.ImportObjectFact(scope.Lookup("F"), &tf) {
				got = append(got, tf.Msg)
			}
			named := scope.Lookup("T").Type().(*types.Named)
			if pass.ImportObjectFact(named.Method(0), &tf) {
				got = append(got, tf.Msg)
			}
			if pass.ImportPackageFact("p", &tf) {
				got = append(got, tf.Msg)
			}
			return nil
		},
	}
	dep := parseAndCheck(t, "package q\n")
	session.AddTarget(dep)
	if _, err := analysis.RunSession(session, []*analysis.Analyzer{consumer}, dep); err != nil {
		t.Fatal(err)
	}
	want := []string{"on F", "on T.M", "on p"}
	if len(got) != len(want) {
		t.Fatalf("imported facts %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("imported facts %v, want %v", got, want)
		}
	}
}

func TestFactsEncodeDecodeRoundtrip(t *testing.T) {
	// Produce facts against one type-check of the package…
	producerTarget := parseAndCheck(t, factSrc)
	s1 := analysis.NewSession()
	s1.AddTarget(producerTarget)
	if _, err := analysis.RunSession(s1, []*analysis.Analyzer{exportTestFacts}, producerTarget); err != nil {
		t.Fatal(err)
	}
	encoded, err := s1.EncodeFacts(producerTarget.Pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(encoded) != 3 {
		t.Fatalf("EncodeFacts produced %d facts, want 3", len(encoded))
	}

	// …and decode them onto a *different* instance of the same
	// package, the way a cache hit installs facts against export data.
	freshTarget := parseAndCheck(t, factSrc)
	s2 := analysis.NewSession()
	if err := s2.DecodeFacts(freshTarget.Pkg, encoded); err != nil {
		t.Fatal(err)
	}
	var got []string
	consumer := &analysis.Analyzer{
		Name: "consumer",
		Doc:  "test analyzer: imports decoded facts",
		Run: func(pass *analysis.Pass) error {
			scope := freshTarget.Pkg.Scope()
			var tf testFact
			if pass.ImportObjectFact(scope.Lookup("F"), &tf) {
				got = append(got, tf.Msg)
			}
			named := scope.Lookup("T").Type().(*types.Named)
			if pass.ImportObjectFact(named.Method(0), &tf) {
				got = append(got, tf.Msg)
			}
			if pass.ImportPackageFact("p", &tf) {
				got = append(got, tf.Msg)
			}
			return nil
		},
	}
	dep := parseAndCheck(t, "package q\n")
	s2.AddTarget(dep)
	if _, err := analysis.RunSession(s2, []*analysis.Analyzer{consumer}, dep); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "on F" || got[1] != "on T.M" || got[2] != "on p" {
		t.Fatalf("decoded facts %v, want [on F, on T.M, on p]", got)
	}
}

func TestCallGraphLaunchEdges(t *testing.T) {
	const src = `package p

func a() {}

func b() int { return 0 }

func g(int) {}

func f() {
	go a()
	defer a()
	go g(b())
	defer g(b())
}
`
	target := parseAndCheck(t, src)
	session := analysis.NewSession()
	session.AddTarget(target)
	node := session.Graph.NodeByKey("p.f")
	if node == nil {
		t.Fatal("no call-graph node for p.f")
	}
	type edge struct {
		callee       string
		inGo, defrrd bool
	}
	var got []edge
	for _, c := range node.Calls {
		got = append(got, edge{c.Callee.Name(), c.InGo, c.Deferred})
	}
	want := []edge{
		{"a", true, false},  // go a()
		{"a", false, true},  // defer a()
		{"g", true, false},  // go g(...)
		{"b", false, false}, // b() evaluates at the go statement
		{"g", false, true},  // defer g(...)
		{"b", false, false}, // b() evaluates at the defer statement
	}
	if len(got) != len(want) {
		t.Fatalf("edges %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
