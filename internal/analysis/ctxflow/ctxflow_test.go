package ctxflow_test

import (
	"testing"

	"clrdse/internal/analysis/checktest"
	"clrdse/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	checktest.Run(t, "testdata", ctxflow.Analyzer, "a")
}
