// Package ctxflow enforces context plumbing on the request paths:
// a function that already has a context — a context.Context
// parameter, or an *http.Request whose Context() carries the
// caller's deadline — must thread it onward instead of minting a
// fresh root with context.Background() or context.TODO(). Dropping
// the inbound context detaches the decide path from the caller's
// deadline and cancellation, which is exactly what the fleet
// client's per-attempt deadlines and the server's decide timeout
// exist to prevent. Passing a nil context is flagged everywhere.
//
// Legitimate root contexts — main(), detached shutdown drains,
// background loops without an inbound context — are not flagged,
// because those functions have no context parameter to thread.
package ctxflow

import (
	"go/ast"
	"go/types"

	"clrdse/internal/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "HTTP handlers and fleet client calls must thread the inbound context.Context " +
		"(or r.Context()) into decide/request paths instead of calling context.Background()/TODO(), " +
		"and must never pass a nil Context",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkFunc(pass, fd.Type, fd.Body, false)
		}
	}
	return nil
}

// walkFunc scans one function body; ctxAvail reports whether any
// enclosing function already provides a context.
func walkFunc(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt, ctxAvail bool) {
	avail := ctxAvail || hasCtxSource(pass, ft)
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			// A closure inherits its enclosing function's context
			// availability (it can capture the variable).
			walkFunc(pass, v.Type, v.Body, avail)
			return false
		case *ast.CallExpr:
			checkCall(pass, v, avail)
		}
		return true
	})
}

// hasCtxSource reports whether the signature provides a context: a
// context.Context parameter or an *http.Request.
func hasCtxSource(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isContext(t) || isHTTPRequestPtr(t) {
			return true
		}
	}
	return false
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, ctxAvail bool) {
	f := analysis.FuncOf(pass.TypesInfo, call)
	if f == nil {
		return
	}
	if ctxAvail && f.Pkg() != nil && f.Pkg().Path() == "context" && (f.Name() == "Background" || f.Name() == "TODO") {
		pass.Reportf(call.Pos(), "context.%s() inside a function that already has a context; thread the inbound context (or r.Context()) instead", f.Name())
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || id.Name != "nil" {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[arg]; !ok || !tv.IsNil() {
			continue
		}
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok && i >= params.Len()-1 {
				pt = s.Elem()
			}
		}
		if pt != nil && isContext(pt) {
			pass.Reportf(arg.Pos(), "nil passed as context.Context to %s; use the inbound context (or context.Background() at a true root)", f.Name())
		}
	}
}

func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}
