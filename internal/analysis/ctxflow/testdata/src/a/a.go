// Package a seeds ctxflow violations: functions that already carry a
// context (parameter or *http.Request) must thread it instead of
// minting a fresh root, and nil must never be passed as a Context.
package a

import (
	"context"
	"net/http"
)

// DecideCtx is a context-threading callee.
func DecideCtx(ctx context.Context, id string) int {
	_ = ctx
	_ = id
	return 0
}

// BadHandler has the request context in hand and discards it.
func BadHandler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `context\.Background\(\) inside a function that already has a context`
	_ = DecideCtx(ctx, r.URL.Path)
}

// GoodHandler threads r.Context().
func GoodHandler(w http.ResponseWriter, r *http.Request) {
	_ = DecideCtx(r.Context(), r.URL.Path)
}

// BadTODOWithParam has a context parameter and mints a TODO anyway.
func BadTODOWithParam(ctx context.Context) {
	_ = DecideCtx(context.TODO(), "dev0") // want `context\.TODO\(\) inside a function that already has a context`
}

// GoodRoot is a true root: no inbound context, Background is legal.
func GoodRoot() {
	_ = DecideCtx(context.Background(), "dev0")
}

// BadClosure inherits the handler's context availability.
func BadClosure(w http.ResponseWriter, r *http.Request) {
	go func() {
		_ = DecideCtx(context.Background(), "dev0") // want `context\.Background\(\) inside a function that already has a context`
	}()
}

// GoodClosureCapture captures and threads the inbound context.
func GoodClosureCapture(ctx context.Context) {
	go func() {
		_ = DecideCtx(ctx, "dev0")
	}()
}

// BadNilCtx passes nil where a Context is expected; flagged even at a
// root.
func BadNilCtx() {
	_ = DecideCtx(nil, "dev0") // want `nil passed as context\.Context to DecideCtx`
}

// GoodNilElsewhere: nil into a non-context parameter is fine.
func GoodNilElsewhere() {
	takesSlice(nil)
}

func takesSlice(xs []int) { _ = xs }

// AllowedDetachedDrain shows suppression with a reason.
func AllowedDetachedDrain(ctx context.Context) {
	//lint:allow ctxflow shutdown drain must outlive the inbound request
	drain := context.Background()
	_ = DecideCtx(drain, "dev0")
}
