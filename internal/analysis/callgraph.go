package analysis

// A lightweight intra-module call graph, grown one type-checked
// package at a time as the Session walks the module in dependency
// order. Only *static* call edges are recorded — direct calls to
// functions and methods that the type checker resolves to a
// *types.Func. Calls through function values, interface methods whose
// concrete target is unknown, and builtins produce no edge; analyzers
// that care about those (lockheld's callback rule) flag the call site
// itself instead. Edges into packages outside the session (standard
// library, cache-skipped packages) still carry the callee *types.Func
// so analyzers can classify them or fall back to imported facts.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FuncKey renders a function as a stable, session-independent key:
// "pkgpath.Name" for package-level functions, "pkgpath.Type.Method"
// for methods. The key survives the result cache, where two runs see
// different *types.Func instances for the same function.
func FuncKey(f *types.Func) string {
	if f == nil {
		return ""
	}
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Path()
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "." + named.Obj().Name() + "." + f.Name()
		}
	}
	return pkg + "." + f.Name()
}

// A CallSite is one static call edge out of a function body.
type CallSite struct {
	// Callee is the resolved target.
	Callee *types.Func
	// Pos locates the call expression.
	Pos token.Pos
	// InFuncLit marks calls inside a function literal: the closure
	// may run long after (or never within) the enclosing function, so
	// flow-sensitive analyses usually exclude these edges.
	InFuncLit bool
	// Deferred marks the call a defer statement launches at return
	// time (its arguments evaluate synchronously and are recorded as
	// ordinary edges).
	Deferred bool
	// InGo marks the call a go statement launches on a new goroutine
	// (again, argument evaluation stays synchronous).
	InGo bool
}

// A Node is one function with a body seen by the session.
type Node struct {
	// Func is the function object (from its defining package's
	// type-check).
	Func *types.Func
	// Key is FuncKey(Func).
	Key string
	// Calls are the static call edges out of the body, in source
	// order.
	Calls []CallSite
}

// Graph is the session call graph. Nodes are indexed both by object
// identity and by FuncKey, so cross-package lookups work even if a
// caller holds an export-data instance of the callee.
type Graph struct {
	byObj map[*types.Func]*Node
	byKey map[string]*Node
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{byObj: make(map[*types.Func]*Node), byKey: make(map[string]*Node)}
}

// Node resolves a function to its graph node, or nil if the session
// never saw its body (stdlib, cache-skipped package, or declaration
// without a body).
func (g *Graph) Node(f *types.Func) *Node {
	if n := g.byObj[f]; n != nil {
		return n
	}
	return g.byKey[FuncKey(f)]
}

// NodeByKey resolves a FuncKey directly.
func (g *Graph) NodeByKey(key string) *Node { return g.byKey[key] }

// AddPackage walks a type-checked package's declarations and records
// one node per function that has a body. Adding the same package
// twice is harmless (nodes are replaced).
func (g *Graph) AddPackage(t Target) {
	for _, f := range t.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := t.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Func: fn, Key: FuncKey(fn)}
			collectCalls(t.Info, fd.Body, n, false, false)
			g.byObj[fn] = n
			g.byKey[n.Key] = n
		}
	}
}

// collectCalls records static call edges under node, tracking whether
// the walk is inside a function literal or a defer statement.
func collectCalls(info *types.Info, body ast.Node, n *Node, inLit, deferred bool) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			collectCalls(info, v.Body, n, true, deferred)
			return false
		case *ast.DeferStmt:
			collectLaunch(info, v.Call, n, inLit, deferred, true, false)
			return false
		case *ast.GoStmt:
			collectLaunch(info, v.Call, n, inLit, deferred, false, true)
			return false
		case *ast.CallExpr:
			if tv, ok := info.Types[v.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if callee := FuncOf(info, v); callee != nil {
				n.Calls = append(n.Calls, CallSite{Callee: callee, Pos: v.Pos(), InFuncLit: inLit, Deferred: deferred})
			}
		}
		return true
	})
}

// collectLaunch records the call a defer or go statement launches. The
// launched call itself runs later — at function return or on a new
// goroutine — so its edge carries Deferred/InGo; its argument list
// still evaluates at the statement, so calls inside the arguments stay
// ordinary edges. A function-literal callee's body is walked as a
// closure (InFuncLit), matching how it actually runs.
func collectLaunch(info *types.Info, call *ast.CallExpr, n *Node, inLit, deferred bool, isDefer, isGo bool) {
	if tv, ok := info.Types[call.Fun]; !ok || !tv.IsType() {
		if callee := FuncOf(info, call); callee != nil {
			n.Calls = append(n.Calls, CallSite{
				Callee: callee, Pos: call.Pos(),
				InFuncLit: inLit, Deferred: deferred || isDefer, InGo: isGo,
			})
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		collectCalls(info, lit.Body, n, true, deferred)
	}
	for _, arg := range call.Args {
		collectCalls(info, arg, n, inLit, deferred)
	}
}
