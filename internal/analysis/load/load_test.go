package load

import (
	"strings"
	"testing"
)

func TestLoadSinglePackage(t *testing.T) {
	pkgs, err := Load(".", false, "clrdse/internal/analysis/suite")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "clrdse/internal/analysis/suite" {
		t.Errorf("ImportPath = %q", p.ImportPath)
	}
	if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
		t.Fatal("package not type-checked")
	}
	if len(p.TypeErrors) != 0 {
		t.Fatalf("type errors: %v", p.TypeErrors)
	}
	if p.Types.Name() != "suite" {
		t.Errorf("package name = %q", p.Types.Name())
	}
	// The loader must resolve module-internal imports through export
	// data: suite imports the analysis package.
	var sawAnalysis bool
	for _, imp := range p.Types.Imports() {
		if imp.Path() == "clrdse/internal/analysis" {
			sawAnalysis = true
		}
	}
	if !sawAnalysis {
		t.Error("module-internal import not resolved")
	}
}

func TestLoadWithTests(t *testing.T) {
	pkgs, err := Load(".", true, "clrdse/internal/rng")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if len(p.TypeErrors) != 0 {
		t.Fatalf("type errors: %v", p.TypeErrors)
	}
	var sawTest bool
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.File(f.Pos()).Name(), "_test.go") {
			sawTest = true
		}
	}
	if !sawTest {
		t.Error("tests=true did not parse the in-package test files")
	}
}

func TestLoadDefaultsToAllPackages(t *testing.T) {
	pkgs, err := Load("..", false)
	if err != nil {
		t.Fatal(err)
	}
	// "./..." from internal/analysis covers the whole analysis subtree.
	if len(pkgs) < 5 {
		t.Errorf("got %d packages for ./..., want the analysis subtree", len(pkgs))
	}
}

func TestLoadBadPattern(t *testing.T) {
	if _, err := Load(".", false, "clrdse/internal/does-not-exist"); err == nil {
		t.Error("want error for a nonexistent package pattern")
	}
}
