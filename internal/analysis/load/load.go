// Package load turns `go list` package patterns into type-checked
// syntax ready for the analysis framework, using only the standard
// library: `go list -export -deps -json` enumerates the packages and
// materialises compiler export data for every dependency in the build
// cache, and go/importer's gc importer consumes that export data to
// type-check the target packages from source. This is the same
// division of labour as x/tools' go/packages LoadAllSyntax mode,
// reduced to what a single-module lint run needs.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, type-checked target package.
type Package struct {
	// ImportPath is the package's full import path.
	ImportPath string
	// Dir is the directory holding its sources.
	Dir string
	// Fset positions every file in the load.
	Fset *token.FileSet
	// Files are the parsed sources (tests included when requested).
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's facts for Files.
	Info *types.Info
	// TypeErrors collects type-check problems. The load keeps going
	// on type errors so a lint run over a slightly-broken tree still
	// reports what it can; callers decide whether to fail on them.
	TypeErrors []error
}

type listedPackage struct {
	ImportPath  string
	Dir         string
	Name        string
	Export      string
	GoFiles     []string
	TestGoFiles []string
	DepOnly     bool
	Standard    bool
	Error       *struct{ Err string }
}

// Load lists patterns in dir and type-checks every matched package.
// With tests set, in-package _test.go files are parsed and checked as
// part of their package (external _test packages are out of scope for
// this loader). The returned packages are in `go list` order.
func Load(dir string, tests bool, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-export", "-deps"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, "-json=ImportPath,Dir,Name,Export,GoFiles,TestGoFiles,DepOnly,Standard,Error")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		// Test-variant entries ("p [p.test]", "p.test") exist only to
		// pull test-only dependencies into the export closure.
		variant := strings.Contains(p.ImportPath, " [") || strings.HasSuffix(p.ImportPath, ".test")
		if p.Export != "" && !variant {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !variant && p.Name != "" {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := newCachedImporter(fset, dir, exports)
	var pkgs []*Package
	for _, t := range targets {
		files := append([]string(nil), t.GoFiles...)
		if tests {
			files = append(files, t.TestGoFiles...)
		}
		if len(files) == 0 {
			continue
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one package's files.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	p := &Package{ImportPath: importPath, Dir: dir, Fset: fset}
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		p.Files = append(p.Files, f)
	}
	p.Info = NewInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, fset, p.Files, p.Info)
	if err != nil && len(p.TypeErrors) == 0 {
		p.TypeErrors = append(p.TypeErrors, err)
	}
	p.Types = tpkg
	return p, nil
}

// NewInfo allocates the full set of type-checker fact maps the
// analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// cachedImporter resolves imports through compiler export data. Known
// paths come from the initial `go list -deps -export` closure; a miss
// (possible for test-only imports when the closure was listed without
// -test) falls back to one targeted `go list -export` invocation.
type cachedImporter struct {
	gc      types.ImporterFrom
	dir     string
	mu      sync.Mutex
	exports map[string]string
}

func newCachedImporter(fset *token.FileSet, dir string, exports map[string]string) *cachedImporter {
	ci := &cachedImporter{dir: dir, exports: exports}
	ci.gc = importer.ForCompiler(fset, "gc", ci.lookup).(types.ImporterFrom)
	return ci
}

func (ci *cachedImporter) Import(path string) (*types.Package, error) {
	return ci.gc.ImportFrom(path, ci.dir, 0)
}

func (ci *cachedImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	return ci.gc.ImportFrom(path, srcDir, mode)
}

func (ci *cachedImporter) lookup(path string) (io.ReadCloser, error) {
	ci.mu.Lock()
	file, ok := ci.exports[path]
	ci.mu.Unlock()
	if !ok {
		f, err := ci.resolve(path)
		if err != nil {
			return nil, err
		}
		file = f
	}
	return os.Open(file)
}

// resolve fills a cache miss with one targeted go list call.
func (ci *cachedImporter) resolve(path string) (string, error) {
	cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
	cmd.Dir = ci.dir
	out, err := cmd.Output()
	if err != nil {
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return "", fmt.Errorf("no export data for %q: %s", path, bytes.TrimSpace(ee.Stderr))
		}
		return "", fmt.Errorf("no export data for %q: %v", path, err)
	}
	file := string(bytes.TrimSpace(out))
	if file == "" {
		return "", fmt.Errorf("no export data for %q", path)
	}
	ci.mu.Lock()
	ci.exports[path] = file
	ci.mu.Unlock()
	return file, nil
}
