// Package load turns `go list` package patterns into type-checked
// syntax ready for the analysis framework, using only the standard
// library: `go list -export -deps -json` enumerates the packages and
// materialises compiler export data for every dependency in the build
// cache, and go/importer's gc importer consumes that export data to
// type-check the target packages from source. This is the same
// division of labour as x/tools' go/packages LoadAllSyntax mode,
// reduced to what a single-module lint run needs.
//
// Loading is two-phase so the multichecker can interleave a
// per-package result cache: NewLoader lists the targets (metadata
// only, in dependency order), and Check type-checks one target on
// demand. A target that was checked from source is preferred by the
// importer over its export data, so every package in one load session
// shares a single *types.Package instance per import path — the
// object identity the cross-package Facts and call-graph layers rely
// on. Load keeps the original check-everything convenience shape.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded target package. NewLoader fills the metadata
// fields; Check fills Fset/Files/Types/Info.
type Package struct {
	// ImportPath is the package's full import path.
	ImportPath string
	// Dir is the directory holding its sources.
	Dir string
	// GoFiles are the source file names Check parses (tests included
	// when the loader was built with tests=true).
	GoFiles []string
	// ExportFile is the compiler export data for this package in the
	// build cache ("" if go list produced none). Its content hash is
	// the cache key ingredient that invalidates dependents when this
	// package's API changes.
	ExportFile string
	// Imports are the package's direct imports (full import paths).
	Imports []string
	// Fset positions every file in the load.
	Fset *token.FileSet
	// Files are the parsed sources (tests included when requested).
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's facts for Files.
	Info *types.Info
	// TypeErrors collects type-check problems. The load keeps going
	// on type errors so a lint run over a slightly-broken tree still
	// reports what it can; callers decide whether to fail on them.
	TypeErrors []error
}

// Checked reports whether Check ran on the package.
func (p *Package) Checked() bool { return p.Types != nil }

type listedPackage struct {
	ImportPath  string
	Dir         string
	Name        string
	Export      string
	GoFiles     []string
	TestGoFiles []string
	Imports     []string
	DepOnly     bool
	Standard    bool
	Error       *struct{ Err string }
}

// Loader is one load session: the listed targets plus the shared
// file set and importer every Check call feeds.
type Loader struct {
	dir     string
	tests   bool
	fset    *token.FileSet
	imp     *cachedImporter
	targets []*Package
}

// NewLoader lists patterns in dir and prepares the targets for
// type-checking, without checking any of them. The returned targets
// are in `go list -deps` order — dependencies before dependents —
// which is the order cross-package fact producers must run in.
func NewLoader(dir string, tests bool, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-export", "-deps"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, "-json=ImportPath,Dir,Name,Export,GoFiles,TestGoFiles,Imports,DepOnly,Standard,Error")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	ld := &Loader{dir: dir, tests: tests, fset: token.NewFileSet()}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		// Test-variant entries ("p [p.test]", "p.test") exist only to
		// pull test-only dependencies into the export closure.
		variant := strings.Contains(p.ImportPath, " [") || strings.HasSuffix(p.ImportPath, ".test")
		if p.Export != "" && !variant {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !variant && p.Name != "" {
			files := append([]string(nil), p.GoFiles...)
			if tests {
				files = append(files, p.TestGoFiles...)
			}
			if len(files) == 0 {
				continue
			}
			ld.targets = append(ld.targets, &Package{
				ImportPath: p.ImportPath,
				Dir:        p.Dir,
				GoFiles:    files,
				ExportFile: p.Export,
				Imports:    append([]string(nil), p.Imports...),
				Fset:       ld.fset,
			})
		}
	}
	ld.imp = newCachedImporter(ld.fset, dir, exports)
	return ld, nil
}

// Targets returns the matched packages in dependency order
// (dependencies first). Metadata only until Check runs on each.
func (ld *Loader) Targets() []*Package { return ld.targets }

// Check parses and type-checks one target from source and registers
// the result so later targets import this very instance instead of
// its export data.
func (ld *Loader) Check(p *Package) error {
	if p.Checked() {
		return nil
	}
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", name, err)
		}
		p.Files = append(p.Files, f)
	}
	p.Info = NewInfo()
	conf := types.Config{
		Importer: ld.imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	tpkg, err := conf.Check(p.ImportPath, ld.fset, p.Files, p.Info)
	if err != nil && len(p.TypeErrors) == 0 {
		p.TypeErrors = append(p.TypeErrors, err)
	}
	p.Types = tpkg
	ld.imp.registerSource(p.ImportPath, tpkg)
	return nil
}

// Import resolves a package by import path without type-checking it
// from source: a source-checked target if one exists, otherwise its
// export data. The multichecker uses this to resolve cached facts for
// packages whose analysis was skipped.
func (ld *Loader) Import(path string) (*types.Package, error) {
	return ld.imp.ImportFrom(path, ld.dir, 0)
}

// ExportFor returns the known export data file for an import path, or
// "". The multichecker hashes direct imports' export data into each
// package's cache key, so a dependency's API change invalidates
// dependents even when the dependency itself is outside the run.
func (ld *Loader) ExportFor(path string) string {
	ld.imp.mu.Lock()
	defer ld.imp.mu.Unlock()
	return ld.imp.exports[path]
}

// Load lists patterns in dir and type-checks every matched package.
// With tests set, in-package _test.go files are parsed and checked as
// part of their package (external _test packages are out of scope for
// this loader). The returned packages are in dependency order.
func Load(dir string, tests bool, patterns ...string) ([]*Package, error) {
	ld, err := NewLoader(dir, tests, patterns...)
	if err != nil {
		return nil, err
	}
	for _, p := range ld.Targets() {
		if err := ld.Check(p); err != nil {
			return nil, err
		}
	}
	return ld.Targets(), nil
}

// NewInfo allocates the full set of type-checker fact maps the
// analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// cachedImporter resolves imports through compiler export data, with
// source-checked target packages taking precedence so one import path
// maps to one *types.Package instance per load session. Known export
// paths come from the initial `go list -deps -export` closure; a miss
// (possible for test-only imports when the closure was listed without
// -test) falls back to one targeted `go list -export` invocation.
type cachedImporter struct {
	gc      types.ImporterFrom
	dir     string
	mu      sync.Mutex
	exports map[string]string
	source  map[string]*types.Package
}

func newCachedImporter(fset *token.FileSet, dir string, exports map[string]string) *cachedImporter {
	ci := &cachedImporter{dir: dir, exports: exports, source: make(map[string]*types.Package)}
	ci.gc = importer.ForCompiler(fset, "gc", ci.lookup).(types.ImporterFrom)
	return ci
}

func (ci *cachedImporter) registerSource(path string, pkg *types.Package) {
	if pkg == nil {
		return
	}
	ci.mu.Lock()
	ci.source[path] = pkg
	ci.mu.Unlock()
}

func (ci *cachedImporter) Import(path string) (*types.Package, error) {
	return ci.ImportFrom(path, ci.dir, 0)
}

func (ci *cachedImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	ci.mu.Lock()
	src, ok := ci.source[path]
	ci.mu.Unlock()
	if ok {
		return src, nil
	}
	return ci.gc.ImportFrom(path, srcDir, mode)
}

func (ci *cachedImporter) lookup(path string) (io.ReadCloser, error) {
	ci.mu.Lock()
	file, ok := ci.exports[path]
	ci.mu.Unlock()
	if !ok {
		f, err := ci.resolve(path)
		if err != nil {
			return nil, err
		}
		file = f
	}
	return os.Open(file)
}

// resolve fills a cache miss with one targeted go list call.
func (ci *cachedImporter) resolve(path string) (string, error) {
	cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
	cmd.Dir = ci.dir
	out, err := cmd.Output()
	if err != nil {
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return "", fmt.Errorf("no export data for %q: %s", path, bytes.TrimSpace(ee.Stderr))
		}
		return "", fmt.Errorf("no export data for %q: %v", path, err)
	}
	file := string(bytes.TrimSpace(out))
	if file == "" {
		return "", fmt.Errorf("no export data for %q", path)
	}
	ci.mu.Lock()
	ci.exports[path] = file
	ci.mu.Unlock()
	return file, nil
}
