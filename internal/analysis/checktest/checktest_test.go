package checktest

import (
	"go/ast"
	"testing"

	"clrdse/internal/analysis"
)

// flagme reports every call to a function literally named "Flagme".
var flagme = &analysis.Analyzer{
	Name: "flagme",
	Doc:  "test analyzer: reports calls to Flagme",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := analysis.FuncOf(pass.TypesInfo, call); fn != nil && fn.Name() == "Flagme" {
					pass.Reportf(call.Pos(), "call to Flagme")
				}
				return true
			})
		}
		return nil
	},
}

func TestHarnessRoundTrip(t *testing.T) {
	Run(t, "testdata", flagme, "x", "y")
}

func TestParseWant(t *testing.T) {
	cases := []struct {
		comment string
		want    int
		wantErr bool
	}{
		{`// want "one"`, 1, false},
		{"// want `one` \"two\"", 2, false},
		{`// a plain comment`, 0, false},
		{`// want`, 0, true},
		{`// want unquoted`, 0, true},
		{`// want "unterminated`, 0, true},
	}
	for _, c := range cases {
		pats, err := parseWant(c.comment)
		if c.wantErr != (err != nil) {
			t.Errorf("parseWant(%q) err = %v, wantErr = %v", c.comment, err, c.wantErr)
			continue
		}
		if len(pats) != c.want {
			t.Errorf("parseWant(%q) = %d patterns, want %d", c.comment, len(pats), c.want)
		}
	}
}
