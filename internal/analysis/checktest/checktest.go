// Package checktest is the golden-test harness for the repository's
// analyzers, modelled on x/tools' go/analysis/analysistest: each
// analyzer keeps a testdata/src/<pkg> tree of small packages whose
// lines carry `// want "regexp"` expectations, the harness
// type-checks them and asserts that the analyzer reports exactly the
// expected diagnostics — no more, no fewer. Because the framework
// applies //lint:allow suppression before diagnostics reach the
// matcher, a testdata line holding a violation plus a well-formed
// allow comment and no want expectation proves suppression works.
//
// Testdata packages may import each other by the path of their
// directory under testdata/src (GOPATH-style), and may import
// standard-library packages, which are resolved through compiler
// export data via `go list -export`.
package checktest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"clrdse/internal/analysis"
	"clrdse/internal/analysis/load"
)

// Run checks the analyzer against the named packages under
// testdata/src, failing t on any mismatch between reported and
// expected diagnostics.
//
// All named packages — plus any testdata packages they import — run
// inside one analysis session, in dependency order, so cross-package
// facts and call-graph edges flow exactly as they do in a real
// multichecker run. Diagnostics are matched against `// want`
// expectations only for the packages named explicitly; an imported
// helper package runs for its facts alone.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("checktest: %v", err)
	}
	ld := &loader{
		fset:    token.NewFileSet(),
		root:    root,
		module:  moduleDir(t, root),
		pkgs:    make(map[string]*srcPackage),
		exports: make(map[string]string),
	}
	for _, pkg := range pkgs {
		if _, err := ld.load(pkg); err != nil {
			t.Fatalf("checktest: loading %s: %v", pkg, err)
		}
	}

	session := analysis.NewSession()
	diagsByPath := make(map[string][]analysis.Diagnostic)
	for _, path := range ld.depOrder() {
		sp := ld.pkgs[path]
		target := analysis.Target{Fset: ld.fset, Files: sp.files, Pkg: sp.pkg, Info: sp.info}
		session.AddTarget(target)
		diags, err := analysis.RunSession(session, []*analysis.Analyzer{a}, target)
		if err != nil {
			t.Fatalf("checktest: running %s on %s: %v", a.Name, path, err)
		}
		diagsByPath[path] = diags
	}

	for _, pkg := range pkgs {
		sp := ld.pkgs[pkg]
		for _, terr := range sp.typeErrors {
			t.Errorf("checktest: %s: type error: %v", pkg, terr)
		}
		match(t, ld.fset, sp.files, diagsByPath[pkg])
	}
}

// match compares diagnostics against the // want expectations of the
// package's files.
func match(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, perr := parseWant(c.Text)
				if perr != nil {
					pos := fset.Position(c.Pos())
					t.Errorf("%s:%d: %v", pos.Filename, pos.Line, perr)
					continue
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						pos := fset.Position(c.Pos())
						t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
						continue
					}
					k := key{fset.Position(c.Pos()).Filename, fset.Position(c.Pos()).Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
			continue
		}
		wants[k][matched] = nil // consume
	}
	var leftover []string
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				leftover = append(leftover, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re))
			}
		}
	}
	sort.Strings(leftover)
	for _, l := range leftover {
		t.Error(l)
	}
}

// parseWant extracts the quoted regexps from a `// want "..." `...“
// comment, returning nil when the comment is not a want comment.
func parseWant(comment string) ([]string, error) {
	text := strings.TrimPrefix(comment, "//")
	trimmed := strings.TrimSpace(text)
	if !strings.HasPrefix(trimmed, "want ") && trimmed != "want" {
		return nil, nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(trimmed, "want"))
	var patterns []string
	for rest != "" {
		quote := rest[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("malformed want comment near %q: patterns must be quoted", rest)
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("malformed want comment: unterminated %q quote", string(quote))
		}
		patterns = append(patterns, rest[1:1+end])
		rest = strings.TrimSpace(rest[2+end:])
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("malformed want comment: no patterns")
	}
	return patterns, nil
}

// srcPackage is one testdata package loaded from source.
type srcPackage struct {
	pkg        *types.Package
	files      []*ast.File
	info       *types.Info
	typeErrors []error
}

// loader type-checks testdata packages from source, resolving local
// imports recursively and everything else through export data.
type loader struct {
	fset    *token.FileSet
	root    string // testdata/src
	module  string // directory to run `go list` in
	pkgs    map[string]*srcPackage
	exports map[string]string
	gc      types.Importer
}

func (l *loader) load(path string) (*srcPackage, error) {
	if sp, ok := l.pkgs[path]; ok {
		return sp, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	sp := &srcPackage{info: load.NewInfo()}
	l.pkgs[path] = sp // pre-register: import cycles fail in go/types, not here
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		sp.files = append(sp.files, f)
	}
	if len(sp.files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { sp.typeErrors = append(sp.typeErrors, err) },
	}
	pkg, err := conf.Check(path, l.fset, sp.files, sp.info)
	if err != nil && len(sp.typeErrors) == 0 {
		sp.typeErrors = append(sp.typeErrors, err)
	}
	sp.pkg = pkg
	return sp, nil
}

// depOrder returns every loaded testdata package in dependency order
// (imports before importers), alphabetical among independents so test
// failures are stable.
func (l *loader) depOrder() []string {
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var order []string
	state := make(map[string]int) // 0 unseen, 1 visiting, 2 done
	var visit func(string)
	visit = func(p string) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		sp := l.pkgs[p]
		if sp != nil && sp.pkg != nil {
			for _, imp := range sp.pkg.Imports() {
				if _, ok := l.pkgs[imp.Path()]; ok {
					visit(imp.Path())
				}
			}
		}
		state[p] = 2
		order = append(order, p)
	}
	for _, p := range paths {
		visit(p)
	}
	return order
}

// Import resolves an import from a testdata package: sibling testdata
// packages load from source, anything else comes from export data.
func (l *loader) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil && st.IsDir() {
		sp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return sp.pkg, nil
	}
	if l.gc == nil {
		l.gc = importer.ForCompiler(l.fset, "gc", l.lookup)
	}
	return l.gc.Import(path)
}

func (l *loader) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		cmd.Dir = l.module
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("no export data for %q: %v", path, err)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		l.exports[path] = file
	}
	return os.Open(file)
}

// moduleDir walks up from dir to the enclosing go.mod, where `go
// list` invocations for export data must run.
func moduleDir(t *testing.T, dir string) string {
	t.Helper()
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("checktest: no go.mod above %s", dir)
		}
		d = parent
	}
}
