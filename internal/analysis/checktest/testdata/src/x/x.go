// Package x exercises the harness itself: a local sibling import, a
// stdlib import resolved through export data, and want expectations
// consumed by the trivial test analyzer.
package x

import (
	"fmt"

	"y"
)

// Flagme is the call the test analyzer reports.
func Flagme() {}

// Use triggers the analyzer and the imports.
func Use() {
	Flagme() // want `call to Flagme`
	fmt.Println(y.Answer())
}

// Quiet has no expectations.
func Quiet() int { return y.Answer() }
