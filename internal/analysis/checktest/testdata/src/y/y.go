// Package y is imported by x, proving sibling testdata packages load
// from source.
package y

// Answer is a constant answer.
func Answer() int { return 42 }
