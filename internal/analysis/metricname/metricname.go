// Package metricname enforces the repository's metric naming
// contract at every registration call on the fleet metrics registry
// (internal/fleet/metrics.Registry):
//
//   - names are clr_-prefixed snake_case: ^clr_[a-z0-9]+(_[a-z0-9]+)*$,
//     so every series this system exports is recognisable in a shared
//     Prometheus under one namespace;
//   - counters declare monotonicity with a _total suffix;
//   - histograms declare their unit with a base-unit suffix
//     (_seconds, _bytes or _ratio), matching Prometheus conventions;
//   - gauges must not claim _total (they can go down); unit suffixes
//     are recommended but a bare countable-noun gauge (clr_fleet_devices)
//     is legal;
//   - the name and help text must be compile-time string constants,
//     and help must be non-empty.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"clrdse/internal/analysis"
)

// Analyzer is the metricname check.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "metrics registered on the fleet metrics Registry must use clr_* snake_case names, " +
		"counters must end in _total, histograms must declare a unit suffix, and help text is mandatory",
	Run: run,
}

var namePattern = regexp.MustCompile(`^clr_[a-z0-9]+(_[a-z0-9]+)*$`)

// histogramUnits are the accepted base-unit suffixes.
var histogramUnits = []string{"_seconds", "_bytes", "_ratio"}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, ok := registryCall(pass, call)
			if !ok || len(call.Args) < 2 {
				return true
			}
			checkName(pass, call.Args[0], kind)
			checkHelp(pass, call.Args[1], kind)
			return true
		})
	}
	return nil
}

// registryCall classifies a call as Counter/Gauge/Histogram on the
// metrics Registry type.
func registryCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "Counter" && name != "Gauge" && name != "Histogram" {
		return "", false
	}
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != "Registry" || obj.Pkg() == nil || analysis.PkgBase(obj.Pkg().Path()) != "metrics" {
		return "", false
	}
	return name, true
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func checkName(pass *analysis.Pass, arg ast.Expr, kind string) {
	name, ok := constString(pass, arg)
	if !ok {
		pass.Reportf(arg.Pos(), "%s name must be a compile-time constant string so the exported series set is statically known", kind)
		return
	}
	if !namePattern.MatchString(name) {
		pass.Reportf(arg.Pos(), "%s name %q must match clr_* snake_case (%s)", kind, name, namePattern.String())
		return
	}
	switch kind {
	case "Counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(arg.Pos(), "Counter name %q must end in _total to declare monotonicity", name)
		}
	case "Histogram":
		if !hasUnitSuffix(name) {
			pass.Reportf(arg.Pos(), "Histogram name %q must declare its unit with a %s suffix", name, strings.Join(histogramUnits, "/"))
		}
	case "Gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(arg.Pos(), "Gauge name %q must not end in _total (gauges are not monotonic); name the level, not the count of events", name)
		}
	}
}

func hasUnitSuffix(name string) bool {
	for _, u := range histogramUnits {
		if strings.HasSuffix(name, u) {
			return true
		}
	}
	return false
}

func checkHelp(pass *analysis.Pass, arg ast.Expr, kind string) {
	help, ok := constString(pass, arg)
	if !ok {
		pass.Reportf(arg.Pos(), "%s help text must be a compile-time constant string", kind)
		return
	}
	if strings.TrimSpace(help) == "" {
		pass.Reportf(arg.Pos(), "%s help text must not be empty; say what the series measures and in what unit", kind)
	}
}
