package metricname_test

import (
	"testing"

	"clrdse/internal/analysis/checktest"
	"clrdse/internal/analysis/metricname"
)

func TestMetricname(t *testing.T) {
	checktest.Run(t, "testdata", metricname.Analyzer, "b")
}
