// Package b registers metrics on the stub Registry; every naming
// violation here must be flagged.
package b

import "metrics"

func name() string { return "clr_dynamic_total" }

// Register exercises the naming contract.
func Register(r *metrics.Registry) {
	// Good registrations.
	r.Counter("clr_fleet_decisions_total", "Decisions made by the fleet manager.")
	r.Gauge("clr_fleet_devices", "Devices currently registered.")
	r.Histogram("clr_decide_latency_seconds", "Decide latency.", []float64{0.001, 0.01})

	// Bad prefix / casing.
	r.Counter("fleet_decisions_total", "Decisions.") // want `Counter name "fleet_decisions_total" must match clr_\* snake_case`
	r.Gauge("clr_Fleet_devices", "Devices.")         // want `Gauge name "clr_Fleet_devices" must match clr_\* snake_case`

	// Counter without _total.
	r.Counter("clr_fleet_decisions", "Decisions.") // want `Counter name "clr_fleet_decisions" must end in _total`

	// Gauge claiming _total.
	r.Gauge("clr_fleet_devices_total", "Devices.") // want `Gauge name "clr_fleet_devices_total" must not end in _total`

	// Histogram without a unit suffix.
	r.Histogram("clr_decide_latency", "Latency.", nil) // want `Histogram name "clr_decide_latency" must declare its unit`

	// Non-constant name.
	r.Counter(name(), "Dynamic.") // want `Counter name must be a compile-time constant string`

	// Empty help.
	r.Gauge("clr_fleet_backlog", "") // want `Gauge help text must not be empty`

	// Suppressed: scratch series in an experiment harness.
	//lint:allow metricname scratch series used only in a local experiment
	r.Gauge("scratch_backlog", "Scratch.")
}

// Other types named like registrations are ignored.
type fake struct{}

func (fake) Counter(name, help string) {}

// NotARegistry proves the receiver-type gate.
func NotARegistry(f fake) {
	f.Counter("whatever", "fine")
}
