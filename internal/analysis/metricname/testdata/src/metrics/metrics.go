// Package metrics mirrors the internal/fleet/metrics Registry
// surface so the analyzer's receiver-type matching (named Registry in
// a package whose base is "metrics") can be exercised in testdata.
package metrics

// Counter counts monotonically.
type Counter struct{}

// Gauge is a settable level.
type Gauge struct{}

// Histogram buckets observations.
type Histogram struct{}

// Registry registers metric families.
type Registry struct{}

// Counter registers a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *Counter { return &Counter{} }

// Gauge registers a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge { return &Gauge{} }

// Histogram registers a histogram family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return &Histogram{}
}
