package cluster

// Node is the cluster face of one clrserved process: a request router
// in front of the fleet HTTP handler. Every device-scoped request is
// mapped through the ring; requests for devices this node owns fall
// through to the local registry, everything else is forwarded to the
// owner (proxy mode) or answered with a 307 + X-Clr-Redirect
// (redirect mode). Membership is a static peer list with a
// health-driven suspicion overlay: the optional prober flips peers
// dead after consecutive /healthz failures and alive again on
// recovery, and every membership flip triggers a rebalance that hands
// migrated devices to their new owners as journal-replay bundles.

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clrdse/internal/fleet"
	"clrdse/internal/fleet/metrics"
	"clrdse/internal/obs"
)

// Cluster wire headers.
const (
	// NodeHeader names the node that actually served a response, so a
	// client (or the clrload per-node report) can attribute answers.
	NodeHeader = "X-Clr-Node"
	// RedirectHeader carries the owning node's base URL on a 307, so a
	// ring-aware client re-resolves instead of burning retry or
	// breaker budget against a node that no longer owns the device.
	RedirectHeader = "X-Clr-Redirect"
	// ForwardedHeader marks a request that already took its one
	// forward hop; the receiver serves it locally even if its own ring
	// disagrees, so transiently split views cannot loop a request.
	ForwardedHeader = "X-Clr-Forwarded"
	// TokenHeader carries the shared cluster secret on node-to-node
	// and admin requests (handoff, membership) when Config.AuthToken
	// is set.
	TokenHeader = "X-Clr-Cluster-Token"
)

// Peer is one static cluster member.
type Peer struct {
	// ID is the node's stable name ("node-0"); it is what the ring
	// hashes, so it must not change across restarts.
	ID string `json:"id"`
	// URL is the node's base URL ("http://10.0.0.7:8080").
	URL string `json:"url"`
}

// Config configures a cluster node.
type Config struct {
	// Self is this node's ID; it must appear in Peers.
	Self string
	// Peers is the full static membership, self included.
	Peers []Peer
	// VNodes is the virtual-node count per member (0 selects
	// DefaultVNodes). Every node and every ring-aware client must use
	// the same value; it is published on /v1/cluster/ring.
	VNodes int
	// Redirect answers non-owned device requests with 307 +
	// X-Clr-Redirect instead of proxy-forwarding them.
	Redirect bool
	// TraceSeed seeds the trace minter for requests that arrive at
	// this edge without an X-Clr-Trace-Id.
	TraceSeed int64
	// ProbeInterval enables the health prober: every interval each
	// peer's /healthz is checked, and SuspectAfter consecutive
	// failures mark it dead (one success marks it alive again).
	// 0 disables probing — membership then changes only through
	// SetStates / POST /v1/cluster/membership.
	ProbeInterval time.Duration
	// SuspectAfter is the consecutive probe-failure threshold
	// (0 selects 3).
	SuspectAfter int
	// HTTPTimeout bounds forward, handoff and probe requests
	// (0 selects 10s).
	HTTPTimeout time.Duration
	// MaxBodyBytes caps the buffered request body for routing and
	// forwarding (0 selects 1 MiB, matching the fleet server's cap).
	MaxBodyBytes int64
	// AuthToken, when set, gates the node-to-node and admin endpoints
	// (POST /v1/cluster/handoff, /v1/cluster/membership): requests
	// must carry it in the X-Clr-Cluster-Token header, and handoff
	// pushes send it. Every member must share the same value. Empty
	// leaves the endpoints open — acceptable only when the listener
	// is unreachable from outside the cluster network.
	AuthToken string
	// Logger receives structured cluster logs (nil selects
	// slog.Default()).
	Logger *slog.Logger
}

// Node is one cluster member's routing, membership and handoff state.
type Node struct {
	self     string
	vnodes   int
	redirect bool
	maxBody  int64
	token    string
	reg      *fleet.Registry
	httpc    *http.Client
	minter   *obs.Minter
	log      *slog.Logger
	suspect  int

	// draining flips on Leave and never clears: the drain ring no
	// longer contains self, so the router serves a device locally only
	// while it is still registered here (awaiting its handoff) and
	// forwards it to the new owner afterwards.
	draining atomic.Bool

	mu    sync.Mutex
	urls  map[string]string
	alive map[string]bool
	ring  *Ring // over the alive members only

	forwards    *metrics.Counter
	redirects   *metrics.Counter
	forwardErrs *metrics.Counter
	handoffOut  *metrics.Counter
	handoffIn   *metrics.Counter
	handoffDups *metrics.Counter
	handoffErrs *metrics.Counter
	rebalances  *metrics.Counter
	ringVersion *metrics.Gauge
	nodesAlive  *metrics.Gauge
}

// New builds the cluster node in front of the fleet server. All peers
// start alive; the prober (Run) or explicit SetStates calls move them.
func New(cfg Config, srv *fleet.Server) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: empty self node ID")
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3
	}
	if cfg.HTTPTimeout <= 0 {
		cfg.HTTPTimeout = 10 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	n := &Node{
		self:     cfg.Self,
		vnodes:   cfg.VNodes,
		redirect: cfg.Redirect,
		maxBody:  cfg.MaxBodyBytes,
		token:    cfg.AuthToken,
		reg:      srv.Registry(),
		httpc:    &http.Client{Timeout: cfg.HTTPTimeout},
		minter:   obs.NewMinter(cfg.TraceSeed),
		log:      slog.New(obs.NewHandler(cfg.Logger.Handler())),
		suspect:  cfg.SuspectAfter,
		urls:     make(map[string]string, len(cfg.Peers)),
		alive:    make(map[string]bool, len(cfg.Peers)),
	}
	if n.vnodes <= 0 {
		n.vnodes = DefaultVNodes
	}
	for _, p := range cfg.Peers {
		if p.ID == "" || p.URL == "" {
			return nil, fmt.Errorf("cluster: peer with empty ID or URL (%+v)", p)
		}
		if _, dup := n.urls[p.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer ID %q", p.ID)
		}
		n.urls[p.ID] = strings.TrimRight(p.URL, "/")
		n.alive[p.ID] = true
	}
	if _, ok := n.urls[n.self]; !ok {
		return nil, fmt.Errorf("cluster: self %q not in peer list", n.self)
	}
	ring, err := NewRing(n.aliveMembersLocked(), n.vnodes)
	if err != nil {
		return nil, err
	}
	n.ring = ring

	met := srv.Registry().Metrics()
	n.forwards = met.Counter("clr_cluster_forwards_total",
		"Device requests proxied to their owning node.")
	n.redirects = met.Counter("clr_cluster_redirects_total",
		"Device requests answered with 307 + X-Clr-Redirect to the owning node.")
	n.forwardErrs = met.Counter("clr_cluster_forward_errors_total",
		"Forward hops that failed at the transport (answered 502).")
	n.handoffOut = met.Counter("clr_cluster_handoff_devices_total",
		"Devices handed across nodes on rebalance.", "direction", "out")
	n.handoffIn = met.Counter("clr_cluster_handoff_devices_total",
		"Devices handed across nodes on rebalance.", "direction", "in")
	n.handoffDups = met.Counter("clr_cluster_handoff_duplicates_total",
		"Handoff pushes acked as duplicates of an already-committed import.")
	n.handoffErrs = met.Counter("clr_cluster_handoff_errors_total",
		"Device handoffs that failed and were re-imported locally.")
	n.rebalances = met.Counter("clr_cluster_rebalances_total",
		"Membership changes that triggered an ownership rescan.")
	n.ringVersion = met.Gauge("clr_cluster_ring_version",
		"Fingerprint of the alive-member ring (equal values = identical ownership).")
	n.nodesAlive = met.Gauge("clr_cluster_nodes_alive",
		"Cluster members this node currently considers alive.")
	n.ringVersion.Set(int64(ring.Version()))
	n.nodesAlive.Set(int64(len(ring.Members())))
	return n, nil
}

// Self returns this node's ID.
func (n *Node) Self() string { return n.self }

// aliveMembersLocked lists the alive member IDs; n.mu must be held.
func (n *Node) aliveMembersLocked() []string {
	out := make([]string, 0, len(n.alive))
	for id, up := range n.alive {
		if up {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// view snapshots the routing state.
func (n *Node) view() (*Ring, map[string]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring, n.urls
}

// Ring returns the current ring over alive members.
func (n *Node) Ring() *Ring {
	r, _ := n.view()
	return r
}

// Middleware wraps the fleet handler with the cluster router and the
// node-to-node endpoints. Pass it to fleet.Server.Wrap.
func (n *Node) Middleware(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/ring", n.handleRing)
	mux.HandleFunc("GET /v1/cluster/versions", n.handleVersions)
	mux.HandleFunc("GET /v1/cluster/database/{name}", n.handleDatabase)
	mux.HandleFunc("GET /v1/cluster/vtables", n.handleVTables)
	mux.HandleFunc("GET /v1/cluster/vtable/{name}", n.handleVTable)
	mux.HandleFunc("POST /v1/cluster/handoff", n.authed(n.handleHandoff))
	mux.HandleFunc("POST /v1/cluster/membership", n.authed(n.handleMembership))
	mux.Handle("/", n.router(next))
	return mux
}

// authed gates a node-to-node/admin endpoint behind the shared
// cluster token: these endpoints inject device state and flip
// membership, so on a listener reachable beyond the cluster network
// they must not be open. With no token configured the handler is
// passed through unchanged (loopback/dev deployments).
func (n *Node) authed(h http.HandlerFunc) http.HandlerFunc {
	if n.token == "" {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		got := []byte(r.Header.Get(TokenHeader))
		if subtle.ConstantTimeCompare(got, []byte(n.token)) != 1 {
			writeJSON(w, http.StatusForbidden, map[string]string{"error": "cluster: missing or invalid " + TokenHeader})
			return
		}
		h(w, r)
	}
}

// router owns the per-request ownership decision. It is also the
// cluster's trace edge: the inbound X-Clr-Trace-Id is adopted (or one
// is minted as the fallback) before routing, and the forward hop
// carries the header onward, so one trace ID spans edge, forward and
// the owning node's decision journal.
func (n *Node) router(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace, err := obs.ParseTraceID(r.Header.Get(obs.TraceHeader))
		if err != nil {
			trace = n.minter.Mint()
		}
		r = r.WithContext(obs.WithTrace(r.Context(), trace))
		r.Header.Set(obs.TraceHeader, string(trace))

		// Batch decides carry many devices, so ownership is per event,
		// not per request — and deviceFor would misread the ":" suffix
		// as a device ID. Re-bucket before any single-device routing.
		if r.Method == http.MethodPost && r.URL.Path == batchPath {
			n.routeBatch(w, r, next)
			return
		}

		id, body, scoped, err := n.deviceFor(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if !scoped {
			w.Header().Set(NodeHeader, n.self)
			next.ServeHTTP(w, r)
			return
		}
		ring, urls := n.view()
		owner := ring.Owner(id)
		if owner == n.self || r.Header.Get(ForwardedHeader) != "" ||
			(n.draining.Load() && n.reg.Has(id)) {
			// Ours — or a forwarded request, which is served locally
			// even when our ring disagrees (one hop maximum, so a
			// transiently split membership view cannot loop a request)
			// — or a device awaiting its drain handoff, which this
			// node keeps serving until the export; its decisions land
			// in the handoff bundle when its turn comes.
			w.Header().Set(NodeHeader, n.self)
			if body != nil {
				r.Body = io.NopCloser(bytes.NewReader(body))
				r.ContentLength = int64(len(body))
			}
			next.ServeHTTP(w, r)
			return
		}
		if n.redirect {
			n.redirects.Inc()
			w.Header().Set(RedirectHeader, urls[owner])
			w.Header().Set(NodeHeader, n.self)
			http.Redirect(w, r, urls[owner]+r.URL.RequestURI(), http.StatusTemporaryRedirect)
			return
		}
		n.forward(w, r, urls[owner], body)
	})
}

// deviceFor extracts the routing key from a device-scoped request:
// the {id} path segment of /v1/devices/{id}[/...], or the "id" field
// of a POST /v1/devices registration body (which is buffered and
// handed back for replay into the local handler or the forward hop).
func (n *Node) deviceFor(r *http.Request) (id string, body []byte, scoped bool, err error) {
	const prefix = "/v1/devices"
	path := r.URL.Path
	if !strings.HasPrefix(path, prefix) {
		return "", nil, false, nil
	}
	rest := strings.TrimPrefix(path, prefix)
	if rest == "" || rest == "/" {
		if r.Method != http.MethodPost {
			return "", nil, false, nil
		}
		body, err = io.ReadAll(io.LimitReader(r.Body, n.maxBody+1))
		if err != nil {
			return "", nil, false, fmt.Errorf("cluster: reading registration body: %w", err)
		}
		if int64(len(body)) > n.maxBody {
			return "", nil, false, fmt.Errorf("cluster: registration body exceeds %d bytes", n.maxBody)
		}
		var reg struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &reg); err != nil || reg.ID == "" {
			return "", nil, false, fmt.Errorf("cluster: registration body carries no device id")
		}
		return reg.ID, body, true, nil
	}
	seg := strings.TrimPrefix(rest, "/")
	if i := strings.IndexByte(seg, '/'); i >= 0 {
		seg = seg[:i]
	}
	if seg == "" {
		return "", nil, false, nil
	}
	return seg, nil, true, nil
}

// forward proxies the request to the owning node, propagating the
// trace header and marking the hop so the owner serves it even on a
// split view.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, ownerURL string, body []byte) {
	if body == nil && r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, n.maxBody+1))
		if err != nil {
			writeJSON(w, http.StatusBadGateway, map[string]string{"error": "cluster: buffering request body: " + err.Error()})
			return
		}
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, ownerURL+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	req.Header = r.Header.Clone()
	req.Header.Set(ForwardedHeader, n.self)
	resp, err := n.httpc.Do(req)
	if err != nil {
		n.forwardErrs.Inc()
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": "cluster: forward to owner failed: " + err.Error()})
		return
	}
	defer resp.Body.Close()
	n.forwards.Inc()
	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// The owner answered; only the relay to the client broke.
		n.log.WarnContext(r.Context(), "cluster: streaming forwarded response failed", "owner", ownerURL, "err", err)
	}
}

// MemberJSON is one member in the ring document.
type MemberJSON struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
}

// RingJSON is the body of GET /v1/cluster/ring: everything a
// ring-aware client needs to mirror this node's ownership map.
type RingJSON struct {
	Self    string       `json:"self"`
	Version uint32       `json:"version"`
	VNodes  int          `json:"vnodes"`
	Forward string       `json:"forward"`
	Members []MemberJSON `json:"members"`
}

// RingInfo snapshots the node's membership view as the ring document.
func (n *Node) RingInfo() RingJSON {
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := make([]string, 0, len(n.urls))
	for id := range n.urls {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	doc := RingJSON{
		Self:    n.self,
		Version: n.ring.Version(),
		VNodes:  n.vnodes,
		Forward: "proxy",
	}
	if n.redirect {
		doc.Forward = "redirect"
	}
	for _, id := range ids {
		doc.Members = append(doc.Members, MemberJSON{ID: id, URL: n.urls[id], Alive: n.alive[id]})
	}
	return doc
}

func (n *Node) handleRing(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, n.RingInfo())
}

// handleHandoff imports one migrated device's state bundle.
func (n *Node) handleHandoff(w http.ResponseWriter, r *http.Request) {
	var st fleet.DeviceState
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	if err := dec.Decode(&st); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "cluster: decoding handoff bundle: " + err.Error()})
		return
	}
	if err := n.reg.ImportDevice(&st); err != nil {
		if errors.Is(err, fleet.ErrDeviceExists) && n.supersedes(&st) {
			// Duplicate push: an earlier delivery of this bundle
			// already committed here (the exporter's push timed out
			// after the import, or a lost 200 forced a retry). Ack it
			// so the exporter drops its copy instead of re-importing
			// and diverging from this one.
			n.handoffDups.Inc()
			n.log.InfoContext(r.Context(), "duplicate handoff acked", "device", st.Params.ID)
			writeJSON(w, http.StatusOK, map[string]string{"imported": st.Params.ID, "duplicate": "true"})
			return
		}
		status := http.StatusBadRequest
		if errors.Is(err, fleet.ErrDeviceExists) {
			status = http.StatusConflict
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	n.handoffIn.Inc()
	n.log.InfoContext(r.Context(), "device imported", "device", st.Params.ID, "decisions", st.Stats.Decisions)
	writeJSON(w, http.StatusOK, map[string]string{"imported": st.Params.ID})
}

// supersedes reports whether this node's registered copy of the
// bundle's device is at least as advanced as the bundle on every
// monotonic axis (replay-cache sequence, manager event clock,
// decision count). The bundle then duplicates a handoff this node
// already committed — possibly followed by further local decisions —
// and the push is acked rather than rejected, keeping handoff
// idempotent when an ack is lost in flight.
func (n *Node) supersedes(st *fleet.DeviceState) bool {
	cur, err := n.reg.ExportDevice(st.Params.ID)
	if err != nil {
		return false
	}
	return cur.Params.Database == st.Params.Database &&
		cur.LastSeq >= st.LastSeq &&
		cur.Events >= st.Events &&
		cur.Stats.Decisions >= st.Stats.Decisions
}

// MembershipJSON is the body of POST /v1/cluster/membership: the
// admin/test surface for flipping members alive or dead. The prober
// is the production path; this endpoint exists so an operator (or a
// deterministic soak) can drive membership explicitly.
type MembershipJSON struct {
	Alive map[string]bool `json:"alive"`
}

func (n *Node) handleMembership(w http.ResponseWriter, r *http.Request) {
	var body MembershipJSON
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if err := n.SetStates(r.Context(), body.Alive); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, n.RingInfo())
}

// SetStates applies membership flips (id → alive) and, when the alive
// set changed, rebuilds the ring and rebalances: every local device
// whose owner is no longer this node is exported and pushed to its
// new owner. Marking self dead is rejected — a node drains itself
// with Leave, not by suspicion.
func (n *Node) SetStates(ctx context.Context, states map[string]bool) error {
	ids := make([]string, 0, len(states))
	for id := range states {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	n.mu.Lock()
	changed := false
	for _, id := range ids {
		up := states[id]
		if id == n.self && !up {
			n.mu.Unlock()
			return fmt.Errorf("cluster: refusing to mark self %q dead (use Leave)", n.self)
		}
		if _, known := n.alive[id]; !known {
			n.mu.Unlock()
			return fmt.Errorf("cluster: unknown member %q", id)
		}
		if n.alive[id] != up {
			n.alive[id] = up
			changed = true
		}
	}
	if !changed {
		n.mu.Unlock()
		return nil
	}
	ring, err := NewRing(n.aliveMembersLocked(), n.vnodes)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	n.ring = ring
	n.ringVersion.Set(int64(ring.Version()))
	n.nodesAlive.Set(int64(len(ring.Members())))
	n.mu.Unlock()

	n.rebalances.Inc()
	n.log.InfoContext(ctx, "membership changed", "alive", len(ring.Members()), "ring_version", ring.Version())
	return n.Rebalance(ctx)
}

// Rebalance scans the local devices and hands every one this node no
// longer owns to its new owner. A failed push re-imports the device
// locally so no state is ever dropped; the next rebalance retries.
func (n *Node) Rebalance(ctx context.Context) error {
	ring, urls := n.view()
	var firstErr error
	moved := 0
	for _, id := range n.reg.DeviceIDs() {
		owner := ring.Owner(id)
		if owner == n.self {
			continue
		}
		if err := n.handDevice(ctx, id, owner, urls[owner]); err != nil && firstErr == nil {
			firstErr = err
		} else if err == nil {
			moved++
		}
	}
	if moved > 0 {
		n.log.InfoContext(ctx, "rebalance complete", "devices_moved", moved)
	}
	return firstErr
}

// Leave drains this node for shutdown. The ring without self is
// installed first — so while the listener drains, requests for
// already-exported devices forward (or redirect) to their new owners
// instead of 404ing here — and every local device is then handed to
// its owner in that ring. A device still awaiting its handoff keeps
// being served locally (see router's draining check), so in-flight
// traffic survives a rolling restart. The caller then stops serving;
// peers learn of the departure through their probers or an explicit
// membership flip.
func (n *Node) Leave(ctx context.Context) error {
	n.mu.Lock()
	members := n.aliveMembersLocked()
	rest := make([]string, 0, len(members))
	for _, m := range members {
		if m != n.self {
			rest = append(rest, m)
		}
	}
	if len(rest) == 0 {
		n.mu.Unlock()
		return fmt.Errorf("cluster: cannot leave a single-node cluster (no peer to hand devices to)")
	}
	ring, err := NewRing(rest, n.vnodes)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	// draining flips before the ring swap: between the two, requests
	// still route by the old ring (self owns its devices), and after
	// both, non-exported devices are caught by the draining check.
	n.draining.Store(true)
	n.alive[n.self] = false
	n.ring = ring
	n.ringVersion.Set(int64(ring.Version()))
	n.nodesAlive.Set(int64(len(ring.Members())))
	urls := n.urls
	n.mu.Unlock()

	var firstErr error
	moved := 0
	for _, id := range n.reg.DeviceIDs() {
		owner := ring.Owner(id)
		if err := n.handDevice(ctx, id, owner, urls[owner]); err != nil && firstErr == nil {
			firstErr = err
		} else if err == nil {
			moved++
		}
	}
	n.log.InfoContext(ctx, "leave complete", "devices_moved", moved)
	return firstErr
}

// handDevice exports one device and pushes the bundle to its new
// owner, re-importing locally if the push fails.
func (n *Node) handDevice(ctx context.Context, id, owner, ownerURL string) error {
	st, err := n.reg.ExportRemove(id)
	if err != nil {
		return err
	}
	err = n.pushHandoff(ctx, ownerURL, st)
	if err != nil {
		// One immediate retry: the owner acks a duplicate import, so a
		// push that timed out after the owner committed converges here
		// instead of leaving the device active on both nodes.
		err = n.pushHandoff(ctx, ownerURL, st)
	}
	if err != nil {
		n.handoffErrs.Inc()
		if imp := n.reg.ImportDevice(st); imp != nil {
			n.log.ErrorContext(ctx, "handoff failed AND local re-import failed; device state dropped",
				"device", id, "owner", owner, "push_err", err, "import_err", imp)
			return fmt.Errorf("cluster: handoff of %q failed (%v) and re-import failed: %w", id, err, imp)
		}
		n.log.WarnContext(ctx, "handoff failed; device re-imported locally", "device", id, "owner", owner, "err", err)
		return fmt.Errorf("cluster: handoff of %q to %s failed: %w", id, owner, err)
	}
	n.handoffOut.Inc()
	return nil
}

// pushHandoff POSTs one bundle to the owner's handoff endpoint.
func (n *Node) pushHandoff(ctx context.Context, ownerURL string, st *fleet.DeviceState) error {
	b, err := json.Marshal(st)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ownerURL+"/v1/cluster/handoff", bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if n.token != "" {
		req.Header.Set(TokenHeader, n.token)
	}
	resp, err := n.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if rerr != nil {
			body = []byte("(unreadable body: " + rerr.Error() + ")")
		}
		return fmt.Errorf("cluster: handoff rejected: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

// Run drives the health prober until ctx is cancelled. With
// ProbeInterval 0 it returns immediately — membership is then purely
// explicit.
func (n *Node) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		return
	}
	n.mu.Lock()
	peers := make([]string, 0, len(n.urls))
	for id := range n.urls {
		if id != n.self {
			peers = append(peers, id)
		}
	}
	urls := n.urls
	n.mu.Unlock()
	sort.Strings(peers)
	fails := make(map[string]int, len(peers))
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		flips := make(map[string]bool)
		for _, id := range peers {
			if n.probe(ctx, urls[id]) {
				fails[id] = 0
				flips[id] = true
			} else {
				fails[id]++
				if fails[id] >= n.suspect {
					flips[id] = false
				}
			}
		}
		if err := n.SetStates(ctx, flips); err != nil {
			n.log.ErrorContext(ctx, "prober membership update failed", "err", err)
		}
	}
}

// probe checks one peer's liveness.
func (n *Node) probe(ctx context.Context, url string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := n.httpc.Do(req)
	if err != nil {
		return false
	}
	if _, err := io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)); err != nil {
		n.log.DebugContext(ctx, "cluster: probe body drain failed", "url", url, "err", err)
	}
	if err := resp.Body.Close(); err != nil {
		n.log.DebugContext(ctx, "cluster: probe body close failed", "url", url, "err", err)
	}
	return resp.StatusCode == http.StatusOK
}

// writeJSON renders a response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//lint:allow errdrop a response-write failure means the client is gone; there is no one left to tell
	_ = json.NewEncoder(w).Encode(v)
}
