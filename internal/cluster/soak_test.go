package cluster_test

// Multi-node soak: a 3-node in-process cluster serving a device fleet
// through the ring-aware client while a seeded schedule kills and
// restarts nodes between event rounds. The run is deterministic —
// lockstep rounds with barriers, membership changes only at barriers,
// scripted specs — so three hard invariants are asserted exactly:
//
//  1. no device is lost: every device answers every event and ends
//     registered on exactly one node;
//  2. no sequence is answered twice: the union of every node's
//     decision journal holds, after deduplicating the identical
//     copies migration makes, exactly one decision per (device, seq);
//  3. decisions are byte-identical to a single-node reference run of
//     the same scripts — failover is invisible in the answers.

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"clrdse/internal/fleet"
	"clrdse/internal/fleet/client"
	"clrdse/internal/fleet/fleettest"
	"clrdse/internal/rng"
	"clrdse/internal/runtime"
)

const (
	clusterSoakSeed      = 137
	clusterSoakTraceSeed = 21
)

func soakDims(t *testing.T) (devices, rounds int) {
	t.Helper()
	if testing.Short() {
		return 4, 10
	}
	return 6, 24
}

// soakEvent is one membership change scheduled before a round.
type soakEvent struct {
	round   int
	node    int
	restart bool
}

// soakSchedule derives the kill/restart plan from the seed: two
// disruptions, each a kill followed by a restart a few rounds later,
// never touching node 0 in the first disruption's draw space twice in
// a row. Pure function of (seed, rounds, nodes).
func soakSchedule(seed int64, rounds, nodes int) []soakEvent {
	src := rng.New(seed)
	k1 := 1 + src.Intn(nodes-1) // never node 0: the client's first ring fetch target stays up early
	r1 := 1 + src.Intn(rounds/4)
	r1back := r1 + 2 + src.Intn(rounds/4)
	k2 := 1 + src.Intn(nodes-1)
	r2 := r1back + 1 + src.Intn(rounds/4)
	r2back := r2 + 1 + src.Intn(rounds-r2-1)
	return []soakEvent{
		{round: r1, node: k1},
		{round: r1back, node: k1, restart: true},
		{round: r2, node: k2},
		{round: r2back, node: k2, restart: true},
	}
}

// runSoakPass drives every device through its script against the
// cluster in lockstep rounds, applying membership events at the
// barriers, and returns the canonical per-device decision transcripts.
func runSoakPass(t *testing.T, clus *fleettest.Cluster, c *client.Client, scripts [][]runtime.QoSSpec, events []soakEvent) [][]string {
	t.Helper()
	ctx := context.Background()
	devices, rounds := len(scripts), len(scripts[0])
	out := make([][]string, devices)
	for d := range out {
		out[d] = make([]string, rounds)
	}
	for r := 0; r < rounds; r++ {
		for _, ev := range events {
			if ev.round != r {
				continue
			}
			if ev.restart {
				if err := clus.Restart(ctx, ev.node); err != nil {
					t.Fatalf("round %d: restart node %d: %v", r, ev.node, err)
				}
			} else {
				if err := clus.Kill(ctx, ev.node); err != nil {
					t.Fatalf("round %d: kill node %d: %v", r, ev.node, err)
				}
			}
		}
		var wg sync.WaitGroup
		errs := make([]error, devices)
		for d := 0; d < devices; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				spec := scripts[d][r]
				dec, err := c.QoS(ctx, soakDeviceID(d), uint64(r+1),
					fleet.QoSSpecJSON{SMaxMs: spec.SMaxMs, FMin: spec.FMin})
				if err != nil {
					errs[d] = fmt.Errorf("device %d round %d: %w", d, r, err)
					return
				}
				if dec.Degraded {
					errs[d] = fmt.Errorf("device %d round %d: degraded answer during graceful failover", d, r)
					return
				}
				b, err := json.Marshal(dec)
				if err != nil {
					errs[d] = err
					return
				}
				out[d][r] = string(b)
			}(d)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return out
}

func soakDeviceID(d int) string { return fmt.Sprintf("soak-%d", d) }

func registerSoakFleet(t *testing.T, c *client.Client, dbs []fleet.NamedDatabase, devices int) {
	t.Helper()
	ctx := context.Background()
	boot := fleettest.LooseSpec(dbs[0].DB)
	for d := 0; d < devices; d++ {
		_, err := c.Register(ctx, fleet.RegisterRequest{
			ID:       soakDeviceID(d),
			Database: dbs[0].Name,
			PRC:      0.5,
			Gamma:    0.9, // agent state in play: replay must rebuild it
			Trigger:  "on-violation",
			Initial:  fleet.QoSSpecJSON{SMaxMs: boot.SMaxMs, FMin: boot.FMin},
		})
		if err != nil {
			t.Fatalf("register %s: %v", soakDeviceID(d), err)
		}
	}
}

func soakClient(urls []string) *client.Client {
	return client.New(client.Config{
		Targets:        urls,
		MaxAttempts:    6,
		AttemptTimeout: 5 * time.Second,
		JitterSeed:     clusterSoakSeed,
		// Kills are deliberate; an eager breaker would only delay the
		// re-resolution path under test.
		BreakerThreshold: 1 << 20,
	})
}

func TestClusterSoak(t *testing.T) {
	devices, rounds := soakDims(t)
	dbs := fleettest.Databases(t)

	// Scripts are derived before anything runs: both passes see the
	// identical event streams.
	scripts := make([][]runtime.QoSSpec, devices)
	for d := range scripts {
		scripts[d] = fleettest.Script(dbs[0].DB, clusterSoakSeed+int64(d), rounds)
	}

	// Reference pass: one node, no membership events.
	ref, err := fleettest.NewCluster(fleettest.ClusterOptions{
		Nodes: 1, Databases: dbs, TraceSeed: clusterSoakTraceSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refClient := soakClient(ref.URLs())
	registerSoakFleet(t, refClient, dbs, devices)
	want := runSoakPass(t, ref, refClient, scripts, nil)

	// Cluster pass: three nodes, seeded kill/restart mid-schedule.
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{
		Nodes: 3, Databases: dbs, TraceSeed: clusterSoakTraceSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()
	c := soakClient(clus.URLs())
	if err := c.RefreshRing(context.Background()); err != nil {
		t.Fatal(err)
	}
	registerSoakFleet(t, c, dbs, devices)
	events := soakSchedule(clusterSoakSeed, rounds, 3)
	t.Logf("membership schedule: %+v", events)
	got := runSoakPass(t, clus, c, scripts, events)

	// Invariant 3: byte-identical to the single-node reference.
	for d := 0; d < devices; d++ {
		for r := 0; r < rounds; r++ {
			if got[d][r] != want[d][r] {
				t.Errorf("device %d round %d: cluster answer diverged\n cluster: %s\n  single: %s",
					d, r, got[d][r], want[d][r])
			}
		}
	}

	// Invariant 1: no device lost. Every device is registered on
	// exactly one live node with its full decision history.
	total := 0
	owners := make(map[string]int)
	for i, cn := range clus.Nodes {
		if !clus.Alive(i) {
			continue
		}
		reg := cn.Srv.Registry()
		total += reg.Len()
		for d := 0; d < devices; d++ {
			if info, err := reg.Get(soakDeviceID(d)); err == nil {
				owners[soakDeviceID(d)]++
				if info.Stats.Decisions != int64(rounds) {
					t.Errorf("device %d on %s: %d decisions, want %d", d, cn.ID, info.Stats.Decisions, rounds)
				}
			}
		}
	}
	if total != devices {
		t.Errorf("cluster holds %d devices, want %d", total, devices)
	}
	for d := 0; d < devices; d++ {
		if owners[soakDeviceID(d)] != 1 {
			t.Errorf("device %d registered on %d nodes, want exactly 1", d, owners[soakDeviceID(d)])
		}
	}

	// Invariant 2: no sequence answered twice. Migration copies
	// journal entries verbatim, so identical duplicates are expected;
	// after deduplicating them, each (device, seq) must have decided
	// exactly once.
	type key struct {
		device string
		seq    uint64
	}
	unique := make(map[string]bool)
	perSeq := make(map[key]int)
	for _, je := range clus.Journal() {
		if je.Entry.Degraded {
			t.Errorf("degraded journal entry on %s: %+v", je.Node, je.Entry)
			continue
		}
		b, err := json.Marshal(je.Entry)
		if err != nil {
			t.Fatal(err)
		}
		if unique[string(b)] {
			continue // identical copy carried by a migration
		}
		unique[string(b)] = true
		perSeq[key{je.Entry.Device, je.Entry.Seq}]++
	}
	for d := 0; d < devices; d++ {
		for r := 0; r < rounds; r++ {
			k := key{soakDeviceID(d), uint64(r + 1)}
			if perSeq[k] != 1 {
				t.Errorf("(device %s, seq %d): %d distinct decisions, want exactly 1", k.device, k.seq, perSeq[k])
			}
		}
	}
}

// TestClusterRedirectMode exercises the 307 path end to end: a
// redirect-mode cluster, a client whose ring mirror is deliberately
// cold, and the assertion that redirects are followed without
// spending retries.
func TestClusterRedirectMode(t *testing.T) {
	dbs := fleettest.Databases(t)
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{
		Nodes: 3, Databases: dbs, Redirect: true, TraceSeed: clusterSoakTraceSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()

	// No RefreshRing: every call starts at target 0 and must be
	// taught ownership by redirects.
	c := soakClient(clus.URLs())
	registerSoakFleet(t, c, dbs, 4)
	ctx := context.Background()
	script := fleettest.Script(dbs[0].DB, 5, 6)
	for d := 0; d < 4; d++ {
		for i, spec := range script {
			dec, err := c.QoS(ctx, soakDeviceID(d), uint64(i+1),
				fleet.QoSSpecJSON{SMaxMs: spec.SMaxMs, FMin: spec.FMin})
			if err != nil {
				t.Fatalf("device %d event %d: %v", d, i, err)
			}
			if dec.Degraded {
				t.Fatalf("device %d event %d: degraded", d, i)
			}
		}
	}
	st := c.Stats()
	if st.Retries != 0 {
		t.Errorf("redirect following spent %d retries; redirects must not burn retry budget", st.Retries)
	}
	if st.BreakerOpens != 0 {
		t.Errorf("redirect following opened %d breakers", st.BreakerOpens)
	}
}
