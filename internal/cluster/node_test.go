package cluster_test

// Unit surface for the cluster node: configuration validation, the
// admin endpoints (ring document, explicit membership), router edge
// cases (unscoped paths, malformed registrations), forwarding to a
// dead owner, drain/handoff failure recovery, and the health prober's
// suspicion state machine. The soak test covers the happy paths end
// to end; these tests pin the error branches deterministically.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"clrdse/internal/cluster"
	"clrdse/internal/fleet"
	"clrdse/internal/fleet/fleettest"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newFleetServer(t *testing.T) *fleet.Server {
	t.Helper()
	srv, err := fleet.NewServer(fleet.ServerConfig{
		Databases: fleettest.Databases(t),
		Logger:    discardLogger(),
	})
	if err != nil {
		t.Fatalf("fleet server: %v", err)
	}
	return srv
}

// deviceOwnedBy searches for a device ID the given ring assigns to
// the wanted member, so a test can steer a request at (or away from)
// a specific node.
func deviceOwnedBy(t *testing.T, ring *cluster.Ring, prefix, want string) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("%s-%d", prefix, i)
		if ring.Owner(id) == want {
			return id
		}
	}
	t.Fatalf("no device ID owned by %s in 1000 candidates", want)
	return ""
}

func registerBody(t *testing.T, id string) []byte {
	t.Helper()
	dbs := fleettest.Databases(t)
	boot := fleettest.LooseSpec(dbs[0].DB)
	b, err := json.Marshal(fleet.RegisterRequest{
		ID:       id,
		Database: dbs[0].Name,
		PRC:      0.5,
		Trigger:  "on-violation",
		Initial:  fleet.QoSSpecJSON{SMaxMs: boot.SMaxMs, FMin: boot.FMin},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNodeConfigErrors(t *testing.T) {
	srv := newFleetServer(t)
	tests := []struct {
		name string
		cfg  cluster.Config
	}{
		{"empty self", cluster.Config{Peers: []cluster.Peer{{ID: "a", URL: "http://x"}}}},
		{"peer without URL", cluster.Config{Self: "a", Peers: []cluster.Peer{{ID: "a"}}}},
		{"duplicate peer ID", cluster.Config{Self: "a", Peers: []cluster.Peer{
			{ID: "a", URL: "http://x"}, {ID: "a", URL: "http://y"}}}},
		{"self not in peers", cluster.Config{Self: "z", Peers: []cluster.Peer{{ID: "a", URL: "http://x"}}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Logger = discardLogger()
			if _, err := cluster.New(tc.cfg, srv); err == nil {
				t.Fatal("New accepted an invalid config")
			}
		})
	}
}

func TestClusterAdminEndpoints(t *testing.T) {
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{Nodes: 3, TraceSeed: 31})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()

	if self := clus.Nodes[0].Node.Self(); self != "node-0" {
		t.Fatalf("Self() = %q, want node-0", self)
	}
	if vn := clus.Nodes[0].Node.Ring().VNodes(); vn != cluster.DefaultVNodes {
		t.Fatalf("ring VNodes = %d, want default %d", vn, cluster.DefaultVNodes)
	}

	resp, err := http.Get(clus.URLs()[0] + "/v1/cluster/ring")
	if err != nil {
		t.Fatal(err)
	}
	var doc cluster.RingJSON
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.Self != "node-0" || doc.VNodes != cluster.DefaultVNodes || doc.Forward != "proxy" {
		t.Fatalf("ring doc = %+v", doc)
	}
	if len(doc.Members) != 3 {
		t.Fatalf("ring doc lists %d members, want 3", len(doc.Members))
	}
	for _, m := range doc.Members {
		if !m.Alive || m.URL == "" {
			t.Fatalf("member %+v not alive with a URL", m)
		}
	}

	postMembership := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(clus.URLs()[0]+"/v1/cluster/membership", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	readClose := func(r *http.Response) {
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}

	// A valid flip changes the published ring.
	resp = postMembership(`{"alive":{"node-2":false}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("membership flip: status %d", resp.StatusCode)
	}
	var after cluster.RingJSON
	if err := json.NewDecoder(resp.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if after.Version == doc.Version {
		t.Fatal("ring version unchanged after losing a member")
	}
	for _, m := range after.Members {
		if m.ID == "node-2" && m.Alive {
			t.Fatal("node-2 still alive in the ring doc after the flip")
		}
	}
	readClose(postMembership(`{"alive":{"node-2":true}}`))

	// Error surfaces: malformed body, unknown member, self-dead.
	for _, bad := range []string{
		`{"alive":`,
		`{"alive":{"node-9":false}}`,
		`{"alive":{"node-0":false}}`,
	} {
		resp := postMembership(bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("membership %q: status %d, want 400", bad, resp.StatusCode)
		}
		readClose(resp)
	}

	// Handoff endpoint error surfaces: garbage bundle, duplicate device.
	resp, err = http.Post(clus.URLs()[0]+"/v1/cluster/handoff", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage handoff: status %d, want 400", resp.StatusCode)
	}
	readClose(resp)

	ring := clus.Nodes[0].Node.Ring()
	dup := deviceOwnedBy(t, ring, "dup", "node-1")
	resp, err = http.Post(clus.URLs()[0]+"/v1/devices", "application/json", bytes.NewReader(registerBody(t, dup)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register %s: status %d", dup, resp.StatusCode)
	}
	readClose(resp)
	st, err := clus.Nodes[1].Srv.Registry().ExportDevice(dup)
	if err != nil {
		t.Fatal(err)
	}

	// Re-pushing a bundle the node already holds (same state) is acked
	// as a duplicate — the idempotency that lets an exporter whose 200
	// was lost in flight retry instead of re-importing and diverging.
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(clus.URLs()[1]+"/v1/cluster/handoff", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate handoff: status %d, want 200", resp.StatusCode)
	}
	var ack map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack["duplicate"] != "true" {
		t.Fatalf("duplicate handoff ack = %v, want duplicate marker", ack)
	}

	// A bundle claiming state the local copy doesn't have is a genuine
	// conflict: the copies diverged, and silently dropping either one
	// would lose decisions.
	st.Stats.Decisions++
	st.LastSeq, st.HaveLast = 5, true
	b, err = json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(clus.URLs()[1]+"/v1/cluster/handoff", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("diverged handoff: status %d, want 409", resp.StatusCode)
	}
	readClose(resp)
}

func TestRouterUnscopedAndMalformed(t *testing.T) {
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{Nodes: 3, TraceSeed: 37})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()

	// Non-device paths are served locally by whichever node answers.
	resp, err := http.Get(clus.URLs()[1] + "/v1/databases")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("databases: status %d", resp.StatusCode)
	}
	if node := resp.Header.Get(cluster.NodeHeader); node != "node-1" {
		t.Fatalf("unscoped request served by %q, want node-1", node)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Registrations without a parseable device ID are rejected at the
	// edge, before any routing.
	for _, body := range []string{`{"nope":true}`, `{{{`} {
		resp, err := http.Post(clus.URLs()[0]+"/v1/devices", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("register %q: status %d, want 400", body, resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// A device-scoped request lands on its owner no matter the entry
	// node, and the answer names the node that served it.
	ring := clus.Nodes[0].Node.Ring()
	id := deviceOwnedBy(t, ring, "fwd", "node-2")
	resp, err = http.Post(clus.URLs()[0]+"/v1/devices", "application/json", bytes.NewReader(registerBody(t, id)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("forwarded register: status %d", resp.StatusCode)
	}
	if node := resp.Header.Get(cluster.NodeHeader); node != "node-2" {
		t.Fatalf("forwarded register served by %q, want node-2", node)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// ghostCluster builds a live node "a" whose only peer "b" is
// unreachable (a closed loopback port), serving through an httptest
// listener.
func ghostCluster(t *testing.T) (*cluster.Node, *fleet.Server, string) {
	t.Helper()
	srv := newFleetServer(t)
	node, err := cluster.New(cluster.Config{
		Self: "a",
		Peers: []cluster.Peer{
			{ID: "a", URL: "http://127.0.0.1:0"},
			{ID: "b", URL: "http://127.0.0.1:1"},
		},
		HTTPTimeout: 500 * time.Millisecond,
		Logger:      discardLogger(),
	}, srv)
	if err != nil {
		t.Fatal(err)
	}
	srv.Wrap(node.Middleware)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return node, srv, ts.URL
}

func TestForwardToDeadOwnerAnswers502(t *testing.T) {
	node, _, url := ghostCluster(t)
	id := deviceOwnedBy(t, node.Ring(), "dead", "b")
	resp, err := http.Post(url+"/v1/devices", "application/json", bytes.NewReader(registerBody(t, id)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("forward to dead owner: status %d, want 502", resp.StatusCode)
	}
}

func TestLeaveFailuresKeepState(t *testing.T) {
	ctx := context.Background()

	// A single-node cluster has nowhere to drain to.
	srv := newFleetServer(t)
	solo, err := cluster.New(cluster.Config{
		Self:   "only",
		Peers:  []cluster.Peer{{ID: "only", URL: "http://127.0.0.1:0"}},
		Logger: discardLogger(),
	}, srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := solo.Leave(ctx); err == nil {
		t.Fatal("Leave succeeded on a single-node cluster")
	}

	// A failed handoff push re-imports the device locally: draining
	// towards an unreachable peer errors but never drops state.
	node, gsrv, url := ghostCluster(t)
	id := deviceOwnedBy(t, node.Ring(), "keep", "a")
	resp, err := http.Post(url+"/v1/devices", "application/json", bytes.NewReader(registerBody(t, id)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if err := node.Leave(ctx); err == nil {
		t.Fatal("Leave succeeded with an unreachable peer")
	}
	found := false
	for _, d := range gsrv.Registry().DeviceIDs() {
		if d == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("device %s dropped after a failed drain", id)
	}
}

func TestProberFlipsMembership(t *testing.T) {
	var peerOK atomic.Bool
	peerOK.Store(true)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if peerOK.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer peer.Close()

	srv := newFleetServer(t)
	node, err := cluster.New(cluster.Config{
		Self: "a",
		Peers: []cluster.Peer{
			{ID: "a", URL: "http://127.0.0.1:0"},
			{ID: "b", URL: peer.URL},
		},
		SuspectAfter: 2,
		HTTPTimeout:  time.Second,
		Logger:       discardLogger(),
	}, srv)
	if err != nil {
		t.Fatal(err)
	}

	// Interval 0 disables probing entirely.
	node.Run(context.Background(), 0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go node.Run(ctx, 5*time.Millisecond)

	peerAlive := func() bool {
		for _, m := range node.RingInfo().Members {
			if m.ID == "b" {
				return m.Alive
			}
		}
		return false
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		for i := 0; i < 1000; i++ {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("prober never %s", what)
	}

	peerOK.Store(false)
	waitFor("suspected the failing peer", func() bool { return !peerAlive() })
	peerOK.Store(true)
	waitFor("recovered the peer", peerAlive)
}

// TestClusterAuthToken pins the shared-secret gate on the
// node-to-node/admin endpoints: without the token they are 403, with
// it they behave normally, the read-only ring document stays open,
// and the nodes' own handoff pushes clear the gate.
func TestClusterAuthToken(t *testing.T) {
	ctx := context.Background()
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{
		Nodes: 2, TraceSeed: 41, AuthToken: "sesame",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()

	post := func(path, token, body string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, clus.URLs()[0]+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if token != "" {
			req.Header.Set(cluster.TokenHeader, token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	for _, tok := range []string{"", "wrong"} {
		if got := post("/v1/cluster/membership", tok, `{"alive":{"node-1":false}}`); got != http.StatusForbidden {
			t.Fatalf("membership with token %q: status %d, want 403", tok, got)
		}
		if got := post("/v1/cluster/handoff", tok, `{}`); got != http.StatusForbidden {
			t.Fatalf("handoff with token %q: status %d, want 403", tok, got)
		}
	}
	// The right token reaches the handlers (the empty bundle then
	// fails validation, proving the gate passed it through).
	if got := post("/v1/cluster/handoff", "sesame", `{}`); got != http.StatusBadRequest {
		t.Fatalf("authed garbage handoff: status %d, want 400", got)
	}
	if got := post("/v1/cluster/membership", "sesame", `{"alive":{"node-1":false}}`); got != http.StatusOK {
		t.Fatalf("authed membership flip: status %d, want 200", got)
	}
	if got := post("/v1/cluster/membership", "sesame", `{"alive":{"node-1":true}}`); got != http.StatusOK {
		t.Fatalf("authed membership restore: status %d, want 200", got)
	}
	resp, err := http.Get(clus.URLs()[0] + "/v1/cluster/ring")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ring doc behind the gate: status %d, want 200 (read-only stays open)", resp.StatusCode)
	}

	// A real drain: node-1's handoff pushes must carry the token.
	id := deviceOwnedBy(t, clus.Nodes[0].Node.Ring(), "tok", "node-1")
	resp, err = http.Post(clus.URLs()[0]+"/v1/devices", "application/json", bytes.NewReader(registerBody(t, id)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	if err := clus.Kill(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if !clus.Nodes[0].Srv.Registry().Has(id) {
		t.Fatal("device lost draining through the token gate")
	}
}

// TestRebalanceConvergesDuplicateCopies pins the split-import repair:
// a push that times out after the owner committed leaves the device
// active on both nodes (the exporter re-imports on the missed ack).
// The next rebalance must converge — the owner acks the duplicate
// push and the stale copy is dropped — instead of looping
// ExportRemove → 409 → re-import forever.
func TestRebalanceConvergesDuplicateCopies(t *testing.T) {
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{Nodes: 2, TraceSeed: 43})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()

	id := deviceOwnedBy(t, clus.Nodes[0].Node.Ring(), "both", "node-1")
	resp, err := http.Post(clus.URLs()[0]+"/v1/devices", "application/json", bytes.NewReader(registerBody(t, id)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d", resp.StatusCode)
	}

	// Reproduce the double-active state: the owner (node-1) holds the
	// device, and node-0 re-imported the same bundle after a lost ack.
	st, err := clus.Nodes[1].Srv.Registry().ExportDevice(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := clus.Nodes[0].Srv.Registry().ImportDevice(st); err != nil {
		t.Fatal(err)
	}

	if err := clus.Nodes[0].Node.Rebalance(context.Background()); err != nil {
		t.Fatalf("rebalance with a duplicate copy: %v", err)
	}
	if clus.Nodes[0].Srv.Registry().Has(id) {
		t.Fatal("stale copy still active on the non-owner after rebalance")
	}
	if !clus.Nodes[1].Srv.Registry().Has(id) {
		t.Fatal("device missing from its owner after the duplicate ack")
	}
}

// TestLeaveRoutesDrainedDevices pins the drain routing fix: Leave
// installs the ring without self before exporting, so a request for
// an already-handed-off device arriving at the leaver (whose listener
// is still open) forwards to the new owner instead of 404ing.
func TestLeaveRoutesDrainedDevices(t *testing.T) {
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{Nodes: 2, TraceSeed: 47})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()

	id := deviceOwnedBy(t, clus.Nodes[0].Node.Ring(), "drain", "node-0")
	resp, err := http.Post(clus.URLs()[0]+"/v1/devices", "application/json", bytes.NewReader(registerBody(t, id)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d", resp.StatusCode)
	}

	if err := clus.Nodes[0].Node.Leave(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(clus.URLs()[0] + "/v1/devices/" + id)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drained device at the leaver: status %d, want 200 via forward", resp.StatusCode)
	}
	if node := resp.Header.Get(cluster.NodeHeader); node != "node-1" {
		t.Fatalf("drained device served by %q, want node-1", node)
	}
}
