package cluster

import (
	"fmt"
	"testing"
)

// keys generates n distinct device-ID-shaped keys.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("dev-%d", i)
	}
	return out
}

func TestNewRingErrors(t *testing.T) {
	cases := []struct {
		name    string
		members []string
	}{
		{"empty", nil},
		{"duplicate", []string{"a", "b", "a"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewRing(tc.members, 0); err == nil {
				t.Fatalf("NewRing(%v) accepted invalid membership", tc.members)
			}
		})
	}
}

func TestRingOwnershipDeterministic(t *testing.T) {
	// Ownership must be a pure function of the member set: every node
	// and every client derives the same map regardless of the order
	// membership was discovered in.
	orders := [][]string{
		{"node-0", "node-1", "node-2"},
		{"node-2", "node-0", "node-1"},
		{"node-1", "node-2", "node-0"},
	}
	rings := make([]*Ring, len(orders))
	for i, m := range orders {
		r, err := NewRing(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
	}
	for _, k := range keys(500) {
		want := rings[0].Owner(k)
		for i := 1; i < len(rings); i++ {
			if got := rings[i].Owner(k); got != want {
				t.Fatalf("Owner(%q) differs across member orders: %q vs %q", k, want, got)
			}
		}
	}
	if rings[0].Version() != rings[1].Version() || rings[1].Version() != rings[2].Version() {
		t.Fatal("equal member sets produced different ring versions")
	}
}

func TestRingRemovalMovesOnlyDepartedKeys(t *testing.T) {
	// The consistent-hashing contract, exactly: dropping one member
	// reassigns that member's keys and no others. This is what bounds
	// a node failure's blast radius to ~1/N of the fleet.
	cases := []struct {
		name    string
		members []string
		drop    string
	}{
		{"three-drop-mid", []string{"node-0", "node-1", "node-2"}, "node-1"},
		{"three-drop-last", []string{"node-0", "node-1", "node-2"}, "node-2"},
		{"five-drop-one", []string{"a", "b", "c", "d", "e"}, "c"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			full, err := NewRing(tc.members, 0)
			if err != nil {
				t.Fatal(err)
			}
			var rest []string
			for _, m := range tc.members {
				if m != tc.drop {
					rest = append(rest, m)
				}
			}
			reduced, err := NewRing(rest, 0)
			if err != nil {
				t.Fatal(err)
			}
			ks := keys(2000)
			moved := 0
			for _, k := range ks {
				before, after := full.Owner(k), reduced.Owner(k)
				if before == tc.drop {
					moved++
					if after == tc.drop {
						t.Fatalf("key %q still owned by removed member %q", k, tc.drop)
					}
					continue
				}
				if after != before {
					t.Fatalf("key %q moved %q -> %q though %q departed", k, before, after, tc.drop)
				}
			}
			// The departed member's share should be near 1/N — generous
			// bounds, since only gross imbalance matters here.
			frac := float64(moved) / float64(len(ks))
			lo, hi := 0.4/float64(len(tc.members)), 2.0/float64(len(tc.members))
			if frac < lo || frac > hi {
				t.Errorf("removed member owned %.1f%% of keys, want within [%.1f%%, %.1f%%]",
					frac*100, lo*100, hi*100)
			}
			if full.Version() == reduced.Version() {
				t.Error("different member sets share a ring version")
			}
		})
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"node-0", "node-1", "node-2"}
	r, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	ks := keys(3000)
	for _, k := range ks {
		counts[r.Owner(k)]++
	}
	for _, m := range members {
		frac := float64(counts[m]) / float64(len(ks))
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("member %q owns %.1f%% of keys; virtual nodes should keep shares near 33%%", m, frac*100)
		}
	}
}

func TestRingOwners(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(100) {
		pref := r.Owners(k, 5) // capped at member count
		if len(pref) != 3 {
			t.Fatalf("Owners(%q, 5) = %v, want all 3 members", k, pref)
		}
		if pref[0] != r.Owner(k) {
			t.Fatalf("preference list head %q != Owner %q", pref[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range pref {
			if seen[m] {
				t.Fatalf("Owners(%q) repeats member %q", k, m)
			}
			seen[m] = true
		}
	}
}

func TestRingVersionDependsOnVNodes(t *testing.T) {
	a, err := NewRing([]string{"x", "y"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"x", "y"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.Version() == b.Version() {
		t.Fatal("different vnode counts share a ring version (ownership maps differ)")
	}
}
