// Package cluster scales the fleet decision service horizontally: a
// consistent-hash ring maps every device onto one owning clrserved
// node, any node accepts any device's request and forwards (or
// redirects) it to the owner, and membership changes move only the
// departed node's devices — each carried to its new owner as a state
// bundle whose decision journal is replayed through a fresh manager,
// so the sequence-number exactly-once guarantee and the byte-identical
// decision contract survive the move.
//
// The hashing discipline is the same FNV-1a the in-process registry
// uses for its shards, so "device → shard" and "device → node" are two
// levels of one scheme. Virtual nodes smooth the load: each member
// projects VNodes points onto the ring, and a device belongs to the
// first point clockwise from its own hash.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per member when the caller
// does not choose one: enough that a 3-node ring balances within a few
// percent, cheap enough that ring rebuilds are microseconds.
const DefaultVNodes = 64

// ringPoint is one virtual node's position.
type ringPoint struct {
	hash uint32
	node string
}

// Ring is an immutable consistent-hash ring over a set of node IDs.
// Build one with NewRing; rebuild on every membership change (the ring
// is cheap and immutability keeps readers lock-free).
type Ring struct {
	vnodes  int
	points  []ringPoint
	members []string // sorted
}

// NewRing builds a ring over the members with the given virtual-node
// count (<= 0 selects DefaultVNodes). Member order does not matter:
// the ring is a pure function of the member set and vnodes, so every
// node (and every ring-aware client) derives the identical ownership
// map from the identical membership view.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		vnodes:  vnodes,
		members: append([]string(nil), members...),
		points:  make([]ringPoint, 0, len(members)*vnodes),
	}
	sort.Strings(r.members)
	for i := 1; i < len(r.members); i++ {
		if r.members[i] == r.members[i-1] {
			return nil, fmt.Errorf("cluster: duplicate ring member %q", r.members[i])
		}
	}
	for _, m := range r.members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash32(fmt.Sprintf("%s#%d", m, v)), node: m})
		}
	}
	// Ties between distinct members' virtual nodes break on the member
	// name, keeping ownership deterministic even on hash collisions.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// hash32 is the ring's FNV-1a — the same discipline Registry.shardFor
// applies one level down.
func hash32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// Members returns the ring's members, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the member owning the key: the first virtual node
// clockwise from the key's hash.
func (r *Ring) Owner(key string) string {
	return r.points[r.search(hash32(key))].node
}

// Owners returns the first n distinct members clockwise from the key
// — the key's preference list (owner first). n is capped at the
// member count.
func (r *Ring) Owners(key string, n int) []string {
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	i := r.search(hash32(key))
	for len(out) < n {
		node := r.points[i%len(r.points)].node
		if !contains(out, node) {
			out = append(out, node)
		}
		i++
	}
	return out
}

// search finds the index of the first ring point with hash >= h,
// wrapping past the top of the hash space.
func (r *Ring) search(h uint32) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Version fingerprints the ring: the FNV-1a of the sorted member list
// and the vnode count. Two nodes (or a node and a client) with equal
// versions derive identical ownership; the clr_cluster_ring_version
// gauge exports it so an operator can spot a split view at a glance.
func (r *Ring) Version() uint32 {
	h := fnv.New32a()
	for _, m := range r.members {
		h.Write([]byte(m))
		h.Write([]byte{0})
	}
	fmt.Fprintf(h, "#%d", r.vnodes)
	return h.Sum32()
}
