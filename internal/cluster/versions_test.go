package cluster_test

// Version-agreement surface: the /v1/cluster/versions document and
// the VersionsAgree gate the evolve worker consults before a cutover.
// The matrix pinned here: converged cluster agrees; a candidate on
// one node alone still agrees (active versions match); divergent
// candidates or a one-node cutover disagree; convergence restores
// agreement; an unreachable peer is an error, never a verdict.

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"clrdse/internal/cluster"
	"clrdse/internal/dse"
	"clrdse/internal/fleet"
	"clrdse/internal/fleet/fleettest"
)

// candidateAt clones the cohort's database at the given version.
func candidateAt(db *dse.Database, v uint64) *dse.Database {
	c := *db
	c.Version = v
	return &c
}

func TestClusterVersions(t *testing.T) {
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{Nodes: 3, TraceSeed: 47})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()
	dbs := fleettest.Databases(t)
	name := dbs[0].Name
	ctx := context.Background()

	// The published document names the node and lists every cohort at
	// its boot version.
	resp, err := http.Get(clus.Nodes[0].URL + "/v1/cluster/versions")
	if err != nil {
		t.Fatal(err)
	}
	var doc cluster.VersionsJSON
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.Node != "node-0" {
		t.Errorf("versions document names node %q, want node-0", doc.Node)
	}
	found := false
	for _, d := range doc.Databases {
		if d.Database == name {
			found = true
			if d.ActiveVersion != 0 || d.HasCandidate {
				t.Errorf("boot version state = %+v, want active v0 without candidate", d)
			}
		}
	}
	if !found {
		t.Fatalf("versions document %+v misses cohort %q", doc, name)
	}

	agree := func(i int) (bool, error) {
		t.Helper()
		return clus.Nodes[i].Node.VersionsAgree(ctx, name)
	}
	mustAgree := func(i int, want bool, when string) {
		t.Helper()
		ok, err := agree(i)
		if err != nil {
			t.Fatalf("VersionsAgree %s: %v", when, err)
		}
		if ok != want {
			t.Errorf("VersionsAgree %s = %v, want %v", when, ok, want)
		}
	}

	mustAgree(0, true, "on a freshly booted cluster")

	// A candidate installed on one node alone does not block: active
	// versions still match everywhere.
	if err := clus.Nodes[0].Srv.Registry().ProposeDatabase(name, candidateAt(dbs[0].DB, 1)); err != nil {
		t.Fatal(err)
	}
	mustAgree(0, true, "with a candidate on one node only")

	// Divergent candidates block: the nodes would cut over to
	// different versions.
	if err := clus.Nodes[1].Srv.Registry().ProposeDatabase(name, candidateAt(dbs[0].DB, 2)); err != nil {
		t.Fatal(err)
	}
	mustAgree(0, false, "with divergent candidates")
	if err := clus.Nodes[1].Srv.Registry().DropCandidate(name); err != nil {
		t.Fatal(err)
	}

	// One node cutting over alone leaves the cluster split on the
	// active version: both sides must report disagreement.
	if err := clus.Nodes[0].Srv.Registry().CutoverDatabase(name); err != nil {
		t.Fatal(err)
	}
	mustAgree(0, false, "after a one-node cutover (from the new version)")
	mustAgree(1, false, "after a one-node cutover (from the old version)")

	// Convergence restores agreement.
	for i := 1; i < len(clus.Nodes); i++ {
		reg := clus.Nodes[i].Srv.Registry()
		if err := reg.ProposeDatabase(name, candidateAt(dbs[0].DB, 1)); err != nil {
			t.Fatal(err)
		}
		if err := reg.CutoverDatabase(name); err != nil {
			t.Fatal(err)
		}
	}
	mustAgree(0, true, "after every node cut over")

	// An unknown cohort is a local error.
	if _, err := clus.Nodes[0].Node.VersionsAgree(ctx, "no-such-db"); err == nil {
		t.Error("VersionsAgree accepted an unknown database")
	}
}

// TestVersionsAgreeUnreachablePeer pins the error-not-verdict rule: a
// peer that cannot be reached yields an error, because the caller
// cannot distinguish "behind" from "down" and must defer the cutover.
func TestVersionsAgreeUnreachablePeer(t *testing.T) {
	srv, err := fleet.NewServer(fleet.ServerConfig{
		Databases: fleettest.Databases(t),
		Logger:    discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	node, err := cluster.New(cluster.Config{
		Self: "a",
		Peers: []cluster.Peer{
			{ID: "a", URL: "http://127.0.0.1:1"},
			{ID: "b", URL: "http://127.0.0.1:1"}, // closed port
		},
		Logger: discardLogger(),
	}, srv)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := node.VersionsAgree(context.Background(), fleettest.Databases(t)[0].Name)
	if err == nil {
		t.Fatal("VersionsAgree returned a verdict for an unreachable peer")
	}
	if ok {
		t.Error("VersionsAgree reported agreement alongside an error")
	}
}
