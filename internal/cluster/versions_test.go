package cluster_test

// Version-agreement surface: the /v1/cluster/versions document, the
// VersionsAgree gate the evolve worker consults before a cutover, and
// the CatchUpVersions repair path that reconverges a cluster after the
// (non-atomic) gate let one node cut over first. The matrix pinned
// here: converged cluster agrees; a candidate on one node alone still
// agrees (active versions match); divergent candidates — by version
// number or by content fingerprint — or a one-node cutover disagree;
// convergence (explicit or via catch-up) restores agreement; an
// unreachable peer is an error, never a verdict.

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"clrdse/internal/cluster"
	"clrdse/internal/dse"
	"clrdse/internal/fleet"
	"clrdse/internal/fleet/fleettest"
)

// candidateAt clones the cohort's database at the given version.
func candidateAt(db *dse.Database, v uint64) *dse.Database {
	c := *db
	c.Version = v
	return &c
}

func TestClusterVersions(t *testing.T) {
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{Nodes: 3, TraceSeed: 47})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()
	dbs := fleettest.Databases(t)
	name := dbs[0].Name
	ctx := context.Background()

	// The published document names the node and lists every cohort at
	// its boot version.
	resp, err := http.Get(clus.Nodes[0].URL + "/v1/cluster/versions")
	if err != nil {
		t.Fatal(err)
	}
	var doc cluster.VersionsJSON
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.Node != "node-0" {
		t.Errorf("versions document names node %q, want node-0", doc.Node)
	}
	found := false
	for _, d := range doc.Databases {
		if d.Database == name {
			found = true
			if d.ActiveVersion != 0 || d.HasCandidate {
				t.Errorf("boot version state = %+v, want active v0 without candidate", d)
			}
		}
	}
	if !found {
		t.Fatalf("versions document %+v misses cohort %q", doc, name)
	}

	agree := func(i int) (bool, error) {
		t.Helper()
		return clus.Nodes[i].Node.VersionsAgree(ctx, name)
	}
	mustAgree := func(i int, want bool, when string) {
		t.Helper()
		ok, err := agree(i)
		if err != nil {
			t.Fatalf("VersionsAgree %s: %v", when, err)
		}
		if ok != want {
			t.Errorf("VersionsAgree %s = %v, want %v", when, ok, want)
		}
	}

	mustAgree(0, true, "on a freshly booted cluster")

	// A candidate installed on one node alone does not block: active
	// versions still match everywhere.
	if err := clus.Nodes[0].Srv.Registry().ProposeDatabase(name, candidateAt(dbs[0].DB, 1)); err != nil {
		t.Fatal(err)
	}
	mustAgree(0, true, "with a candidate on one node only")

	// Divergent candidates block: the nodes would cut over to
	// different versions.
	if err := clus.Nodes[1].Srv.Registry().ProposeDatabase(name, candidateAt(dbs[0].DB, 2)); err != nil {
		t.Fatal(err)
	}
	mustAgree(0, false, "with divergent candidate versions")
	if err := clus.Nodes[1].Srv.Registry().DropCandidate(name); err != nil {
		t.Fatal(err)
	}

	// Divergent candidate *content* under one shared version number
	// blocks too: each worker proposes from its node-local journal, so
	// two nodes can number different databases active+1 — cutting over
	// would split the cluster while the version numbers still "agree".
	if err := clus.Nodes[1].Srv.Registry().ProposeDatabase(name, candidateAt(dbs[1].DB, 1)); err != nil {
		t.Fatal(err)
	}
	mustAgree(0, false, "with same-version divergent candidates")
	if err := clus.Nodes[1].Srv.Registry().DropCandidate(name); err != nil {
		t.Fatal(err)
	}

	// One node cutting over alone leaves the cluster split on the
	// active version: both sides must report disagreement.
	if err := clus.Nodes[0].Srv.Registry().CutoverDatabase(name); err != nil {
		t.Fatal(err)
	}
	mustAgree(0, false, "after a one-node cutover (from the new version)")
	mustAgree(1, false, "after a one-node cutover (from the old version)")

	// Convergence restores agreement.
	for i := 1; i < len(clus.Nodes); i++ {
		reg := clus.Nodes[i].Srv.Registry()
		if err := reg.ProposeDatabase(name, candidateAt(dbs[0].DB, 1)); err != nil {
			t.Fatal(err)
		}
		if err := reg.CutoverDatabase(name); err != nil {
			t.Fatal(err)
		}
	}
	mustAgree(0, true, "after every node cut over")

	// An unknown cohort is a local error.
	if _, err := clus.Nodes[0].Node.VersionsAgree(ctx, "no-such-db"); err == nil {
		t.Error("VersionsAgree accepted an unknown database")
	}
}

// TestVersionsAgreeUnreachablePeer pins the error-not-verdict rule: a
// peer that cannot be reached yields an error, because the caller
// cannot distinguish "behind" from "down" and must defer the cutover.
func TestVersionsAgreeUnreachablePeer(t *testing.T) {
	srv, err := fleet.NewServer(fleet.ServerConfig{
		Databases: fleettest.Databases(t),
		Logger:    discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	node, err := cluster.New(cluster.Config{
		Self: "a",
		Peers: []cluster.Peer{
			{ID: "a", URL: "http://127.0.0.1:1"},
			{ID: "b", URL: "http://127.0.0.1:1"}, // closed port
		},
		Logger: discardLogger(),
	}, srv)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := node.VersionsAgree(context.Background(), fleettest.Databases(t)[0].Name)
	if err == nil {
		t.Fatal("VersionsAgree returned a verdict for an unreachable peer")
	}
	if ok {
		t.Error("VersionsAgree reported agreement alongside an error")
	}
}

// TestCatchUpAfterSingleNodeCutover pins the repair path for the
// wedge the agreement gate alone cannot prevent: the gate is not
// atomic across nodes, so one node can cut over first — after which
// every peer's VersionsAgree is false forever and all cross-node
// handoffs fail with version skew. A lagging peer must fetch and
// adopt the winner's exact database, restoring agreement.
func TestCatchUpAfterSingleNodeCutover(t *testing.T) {
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{Nodes: 3, TraceSeed: 53})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()
	dbs := fleettest.Databases(t)
	name := dbs[0].Name
	ctx := context.Background()

	reg0 := clus.Nodes[0].Srv.Registry()
	if err := reg0.ProposeDatabase(name, candidateAt(dbs[0].DB, 1)); err != nil {
		t.Fatal(err)
	}
	if err := reg0.CutoverDatabase(name); err != nil {
		t.Fatal(err)
	}
	if ok, err := clus.Nodes[1].Node.VersionsAgree(ctx, name); err != nil || ok {
		t.Fatalf("agreement after one-node cutover = %v, %v; want false", ok, err)
	}

	// The winner has nothing to adopt; the laggers adopt its database.
	if adopted, err := clus.Nodes[0].Node.CatchUpVersions(ctx, name); err != nil || adopted {
		t.Fatalf("winner caught up to itself: adopted=%v err=%v", adopted, err)
	}
	for i := 1; i < len(clus.Nodes); i++ {
		adopted, err := clus.Nodes[i].Node.CatchUpVersions(ctx, name)
		if err != nil {
			t.Fatalf("catch-up on node %d: %v", i, err)
		}
		if !adopted {
			t.Fatalf("node %d did not adopt the winner's database", i)
		}
	}
	want, err := reg0.EvolveStatus(name)
	if err != nil {
		t.Fatal(err)
	}
	for i, cn := range clus.Nodes {
		st, err := cn.Srv.Registry().EvolveStatus(name)
		if err != nil {
			t.Fatal(err)
		}
		if st.ActiveVersion != want.ActiveVersion || st.ActiveFingerprint != want.ActiveFingerprint {
			t.Errorf("node %d active (v%d, %016x), want (v%d, %016x)",
				i, st.ActiveVersion, st.ActiveFingerprint, want.ActiveVersion, want.ActiveFingerprint)
		}
		ok, err := cn.Node.VersionsAgree(ctx, name)
		if err != nil || !ok {
			t.Errorf("agreement from node %d after catch-up = %v, %v; want true", i, ok, err)
		}
		// Catch-up is idempotent once converged.
		if adopted, err := cn.Node.CatchUpVersions(ctx, name); err != nil || adopted {
			t.Errorf("node %d re-adopted after convergence: adopted=%v err=%v", i, adopted, err)
		}
	}
}

// TestCatchUpConvergesDivergentSameVersion: two nodes race through the
// gate and cut over to different databases both numbered v1. The
// content fingerprint is the deterministic tiebreak — every node
// chases the same winner, so one catch-up pass per node reconverges
// the cluster onto one database.
func TestCatchUpConvergesDivergentSameVersion(t *testing.T) {
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{Nodes: 3, TraceSeed: 59})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()
	dbs := fleettest.Databases(t)
	name := dbs[0].Name
	ctx := context.Background()

	// Node 0 and node 1 cut over to divergent v1 databases; node 2
	// stays at v0.
	for i, db := range []*dse.Database{dbs[0].DB, dbs[1].DB} {
		reg := clus.Nodes[i].Srv.Registry()
		if err := reg.ProposeDatabase(name, candidateAt(db, 1)); err != nil {
			t.Fatal(err)
		}
		if err := reg.CutoverDatabase(name); err != nil {
			t.Fatal(err)
		}
	}
	st0, _ := clus.Nodes[0].Srv.Registry().EvolveStatus(name)
	st1, _ := clus.Nodes[1].Srv.Registry().EvolveStatus(name)
	if st0.ActiveFingerprint == st1.ActiveFingerprint {
		t.Fatal("fixture databases share a fingerprint; divergence test is vacuous")
	}
	if ok, err := clus.Nodes[0].Node.VersionsAgree(ctx, name); err != nil || ok {
		t.Fatalf("divergent same-version actives agree = %v, %v; want false", ok, err)
	}
	wantFP := st0.ActiveFingerprint
	if st1.ActiveFingerprint > wantFP {
		wantFP = st1.ActiveFingerprint
	}

	for i, cn := range clus.Nodes {
		if _, err := cn.Node.CatchUpVersions(ctx, name); err != nil {
			t.Fatalf("catch-up on node %d: %v", i, err)
		}
	}
	for i, cn := range clus.Nodes {
		st, err := cn.Srv.Registry().EvolveStatus(name)
		if err != nil {
			t.Fatal(err)
		}
		if st.ActiveVersion != 1 || st.ActiveFingerprint != wantFP {
			t.Errorf("node %d active (v%d, %016x), want (v1, %016x)",
				i, st.ActiveVersion, st.ActiveFingerprint, wantFP)
		}
		ok, err := cn.Node.VersionsAgree(ctx, name)
		if err != nil || !ok {
			t.Errorf("agreement from node %d after tiebreak = %v, %v; want true", i, ok, err)
		}
	}
}
