package cluster

// Database-version agreement. A Continuous-ReD cutover hot-swaps the
// database a cohort serves from; in a cluster a device can be handed
// to any alive peer at any moment, and ImportDevice rejects bundles
// whose producing version is not the importer's active version
// (fleet.ErrVersionSkew). Cutting over one node at a time would turn
// every rebalance during the transition into a skew rejection, so the
// evolve worker gates cutover on VersionsAgree: every alive peer must
// report the same active version for the database (and no peer may be
// mid-transition with a different candidate) before any node swaps.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// DBVersionJSON is one database cohort's version pair as published on
// GET /v1/cluster/versions.
type DBVersionJSON struct {
	Database         string `json:"database"`
	ActiveVersion    uint64 `json:"active_version"`
	HasCandidate     bool   `json:"has_candidate,omitempty"`
	CandidateVersion uint64 `json:"candidate_version,omitempty"`
}

// VersionsJSON is the body of GET /v1/cluster/versions.
type VersionsJSON struct {
	Node      string          `json:"node"`
	Databases []DBVersionJSON `json:"databases"`
}

// VersionsInfo snapshots this node's per-database version state.
func (n *Node) VersionsInfo() VersionsJSON {
	doc := VersionsJSON{Node: n.self}
	for _, st := range n.reg.EvolveStatuses() {
		doc.Databases = append(doc.Databases, DBVersionJSON{
			Database:         st.Database,
			ActiveVersion:    st.ActiveVersion,
			HasCandidate:     st.HasCandidate,
			CandidateVersion: st.CandidateVersion,
		})
	}
	return doc
}

func (n *Node) handleVersions(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, n.VersionsInfo())
}

// VersionsAgree reports whether every alive peer serves the named
// database at this node's active version with a matching candidate
// state. An unreachable peer or a malformed document is an error, not
// a disagreement: the caller cannot distinguish "behind" from "down",
// so it should defer the cutover rather than conclude anything.
func (n *Node) VersionsAgree(ctx context.Context, database string) (bool, error) {
	local, err := n.reg.EvolveStatus(database)
	if err != nil {
		return false, err
	}

	n.mu.Lock()
	peers := n.aliveMembersLocked()
	urls := n.urls
	n.mu.Unlock()

	for _, id := range peers {
		if id == n.self {
			continue
		}
		doc, err := n.fetchVersions(ctx, urls[id])
		if err != nil {
			return false, fmt.Errorf("cluster: versions from %s: %w", id, err)
		}
		found := false
		for _, d := range doc.Databases {
			if d.Database != database {
				continue
			}
			found = true
			if d.ActiveVersion != local.ActiveVersion {
				return false, nil
			}
			// A peer shadowing a different candidate than ours would cut
			// over to a different version; hold until the views converge.
			if d.HasCandidate && local.HasCandidate && d.CandidateVersion != local.CandidateVersion {
				return false, nil
			}
		}
		if !found {
			return false, nil
		}
	}
	return true, nil
}

// fetchVersions GETs one peer's version document.
func (n *Node) fetchVersions(ctx context.Context, url string) (*VersionsJSON, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/cluster/versions", nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var doc VersionsJSON
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}
