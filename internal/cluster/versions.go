package cluster

// Database-version agreement. A Continuous-ReD cutover hot-swaps the
// database a cohort serves from; in a cluster a device can be handed
// to any alive peer at any moment, and ImportDevice rejects bundles
// whose producing version is not the importer's active version
// (fleet.ErrVersionSkew). Cutting over one node at a time would turn
// every rebalance during the transition into a skew rejection, so the
// evolve worker gates cutover on VersionsAgree: every alive peer must
// report the same active version — same number AND same content
// fingerprint, since each node's worker proposes from its node-local
// journal and two nodes can hold divergent databases both numbered
// active+1 — for the database, and no peer may be mid-transition with
// a different candidate, before any node swaps.
//
// The gate alone cannot keep the cluster converged: it is not atomic
// across nodes, so one node can still cut over first (or two nodes can
// race through it), after which every other node's gate fails against
// the winner forever. CatchUpVersions is the repair path — a node that
// observes a peer ahead of it fetches that peer's exact database and
// adopts it, restoring agreement instead of wedging.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"clrdse/internal/dse"
)

// DBVersionJSON is one database cohort's version pair as published on
// GET /v1/cluster/versions. The fingerprints are the content hashes of
// the respective databases (fleet.NamedDatabase.Fingerprint): equal
// version numbers with different fingerprints mean divergent
// databases, not agreement.
type DBVersionJSON struct {
	Database             string `json:"database"`
	ActiveVersion        uint64 `json:"active_version"`
	ActiveFingerprint    uint64 `json:"active_fingerprint"`
	HasCandidate         bool   `json:"has_candidate,omitempty"`
	CandidateVersion     uint64 `json:"candidate_version,omitempty"`
	CandidateFingerprint uint64 `json:"candidate_fingerprint,omitempty"`
}

// VersionsJSON is the body of GET /v1/cluster/versions.
type VersionsJSON struct {
	Node      string          `json:"node"`
	Databases []DBVersionJSON `json:"databases"`
}

// VersionsInfo snapshots this node's per-database version state.
func (n *Node) VersionsInfo() VersionsJSON {
	doc := VersionsJSON{Node: n.self}
	for _, st := range n.reg.EvolveStatuses() {
		doc.Databases = append(doc.Databases, DBVersionJSON{
			Database:             st.Database,
			ActiveVersion:        st.ActiveVersion,
			ActiveFingerprint:    st.ActiveFingerprint,
			HasCandidate:         st.HasCandidate,
			CandidateVersion:     st.CandidateVersion,
			CandidateFingerprint: st.CandidateFingerprint,
		})
	}
	return doc
}

func (n *Node) handleVersions(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, n.VersionsInfo())
}

// VersionsAgree reports whether every alive peer serves the named
// database at this node's active version — number and content
// fingerprint — with a matching candidate state. An unreachable peer
// or a malformed document is an error, not a disagreement: the caller
// cannot distinguish "behind" from "down", so it should defer the
// cutover rather than conclude anything.
func (n *Node) VersionsAgree(ctx context.Context, database string) (bool, error) {
	local, err := n.reg.EvolveStatus(database)
	if err != nil {
		return false, err
	}

	n.mu.Lock()
	peers := n.aliveMembersLocked()
	urls := n.urls
	n.mu.Unlock()

	for _, id := range peers {
		if id == n.self {
			continue
		}
		doc, err := n.fetchVersions(ctx, urls[id])
		if err != nil {
			return false, fmt.Errorf("cluster: versions from %s: %w", id, err)
		}
		found := false
		for _, d := range doc.Databases {
			if d.Database != database {
				continue
			}
			found = true
			if d.ActiveVersion != local.ActiveVersion || d.ActiveFingerprint != local.ActiveFingerprint {
				return false, nil
			}
			// A peer shadowing a different candidate than ours — by
			// version or by content — would cut over to a different
			// database; hold until the views converge.
			if d.HasCandidate && local.HasCandidate &&
				(d.CandidateVersion != local.CandidateVersion || d.CandidateFingerprint != local.CandidateFingerprint) {
				return false, nil
			}
		}
		if !found {
			return false, nil
		}
	}
	return true, nil
}

// fetchVersions GETs one peer's version document.
func (n *Node) fetchVersions(ctx context.Context, url string) (*VersionsJSON, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/cluster/versions", nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var doc VersionsJSON
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// DatabaseJSON is the body of GET /v1/cluster/database/{name}: the
// node's active database for one cohort, with the version/fingerprint
// pair the catch-up path verifies before adopting it.
type DatabaseJSON struct {
	Node        string        `json:"node"`
	Database    string        `json:"database"`
	Version     uint64        `json:"version"`
	Fingerprint uint64        `json:"fingerprint"`
	DB          *dse.Database `json:"db"`
}

func (n *Node) handleDatabase(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	db, fp, err := n.reg.ActiveSnapshot(name)
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, DatabaseJSON{
		Node: n.self, Database: name, Version: db.Version, Fingerprint: fp, DB: db,
	})
}

// fetchDatabase GETs one peer's active database for the cohort.
func (n *Node) fetchDatabase(ctx context.Context, url, name string) (*DatabaseJSON, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/cluster/database/"+name, nil)
	if err != nil {
		return nil, err
	}
	if n.token != "" {
		req.Header.Set(TokenHeader, n.token)
	}
	resp, err := n.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var doc DatabaseJSON
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// winsOver reports whether database state (ver, fp) beats (overVer,
// overFp) in the cluster's deterministic convergence order: higher
// version wins, and between divergent databases sharing a version
// number the larger content fingerprint wins. Any total order works —
// it only has to be the same on every node, so all nodes chase the
// same winner.
func winsOver(ver, fp, overVer, overFp uint64) bool {
	if ver != overVer {
		return ver > overVer
	}
	return fp > overFp
}

// CatchUpVersions reconverges this node's active database for the
// named cohort with the cluster. The cutover gate is not atomic across
// nodes, so a node can find itself behind: a peer cut over first (or
// two peers raced to divergent databases sharing a version number).
// Every such state wedges without repair — the lagging node's
// VersionsAgree stays false forever, deferring its own cutovers, and
// every handoff between the two sides fails with version skew. The
// repair: when any alive peer's active database wins the convergence
// order against ours, fetch that exact database from the peer and
// adopt it (an immediate cutover that drops any local candidate; see
// fleet.AdoptDatabase). It reports whether a database was adopted.
//
// Unreachable peers are skipped, not fatal: catch-up is best-effort
// and re-runs on every evolve tick; a down winner will be re-observed
// once it is back.
func (n *Node) CatchUpVersions(ctx context.Context, database string) (bool, error) {
	local, err := n.reg.EvolveStatus(database)
	if err != nil {
		return false, err
	}

	n.mu.Lock()
	peers := n.aliveMembersLocked()
	urls := n.urls
	n.mu.Unlock()

	bestVer, bestFP := local.ActiveVersion, local.ActiveFingerprint
	bestPeer := ""
	for _, id := range peers {
		if id == n.self {
			continue
		}
		doc, err := n.fetchVersions(ctx, urls[id])
		if err != nil {
			continue
		}
		for _, d := range doc.Databases {
			if d.Database != database {
				continue
			}
			if winsOver(d.ActiveVersion, d.ActiveFingerprint, bestVer, bestFP) {
				bestVer, bestFP, bestPeer = d.ActiveVersion, d.ActiveFingerprint, id
			}
		}
	}
	if bestPeer == "" {
		return false, nil
	}

	doc, err := n.fetchDatabase(ctx, urls[bestPeer], database)
	if err != nil {
		return false, fmt.Errorf("cluster: database from %s: %w", bestPeer, err)
	}
	if doc.DB == nil {
		return false, fmt.Errorf("cluster: database from %s: empty document", bestPeer)
	}
	// The peer may have moved between the two fetches; adopt whatever
	// it serves now as long as it still beats our active state.
	if !winsOver(doc.Version, doc.Fingerprint, local.ActiveVersion, local.ActiveFingerprint) {
		return false, nil
	}
	if err := n.reg.AdoptDatabase(database, doc.DB); err != nil {
		return false, fmt.Errorf("cluster: adopt v%d from %s: %w", doc.Version, bestPeer, err)
	}
	n.log.InfoContext(ctx, "adopted peer database",
		"db", database, "peer", bestPeer,
		"version", doc.Version, "was", local.ActiveVersion)
	return true, nil
}
