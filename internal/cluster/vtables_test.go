package cluster_test

// Value-table agreement surface: the /v1/cluster/vtables document, the
// VTablesAgree gate the cohort worker consults before publishing, and
// the CatchUpVTables repair path that reconverges a cluster after one
// node published first. Pinned matrix: a fresh cluster (no tables
// anywhere) agrees; a one-node publish disagrees from both sides;
// divergent same-version tables disagree on content fingerprint;
// catch-up adopts the winsOver winner everywhere (a node with no table
// treats any published table as the winner) and is idempotent once
// converged; an unreachable peer is an error, never a verdict.

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"clrdse/internal/cluster"
	"clrdse/internal/fleet"
	"clrdse/internal/fleet/fleettest"
	"clrdse/internal/runtime"
)

// boundTable builds a valid value table bound to the registry's active
// database for the cohort, with deterministic synthetic values salted
// so different salts yield different content fingerprints.
func boundTable(t *testing.T, reg *fleet.Registry, name string, version uint64, salt float64) *runtime.ValueTable {
	t.Helper()
	db, fp, err := reg.ActiveSnapshot(name)
	if err != nil {
		t.Fatal(err)
	}
	vt := &runtime.ValueTable{
		Version: version, Epoch: version, Gamma: 0.8,
		DBVersion: db.Version, DBFingerprint: fp,
		Devices: 2, Events: 100,
		VR:     make([]float64, db.Len()),
		VD:     make([]float64, db.Len()),
		Visits: make([]int, db.Len()),
	}
	for i := range vt.VR {
		vt.VR[i] = -float64(i+1)*0.5 - salt
		vt.VD[i] = float64(i) * 0.25
		vt.Visits[i] = 3 + i
	}
	return vt
}

func TestClusterVTables(t *testing.T) {
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{Nodes: 3, TraceSeed: 61})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()
	name := fleettest.Databases(t)[0].Name
	ctx := context.Background()

	// The published document names the node and lists every cohort,
	// with no table at boot.
	resp, err := http.Get(clus.Nodes[0].URL + "/v1/cluster/vtables")
	if err != nil {
		t.Fatal(err)
	}
	var doc cluster.VTablesJSON
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.Node != "node-0" {
		t.Errorf("vtables document names node %q, want node-0", doc.Node)
	}
	found := false
	for _, d := range doc.Databases {
		if d.Database == name {
			found = true
			if d.HasTable || d.Version != 0 {
				t.Errorf("boot vtable state = %+v, want no table", d)
			}
		}
	}
	if !found {
		t.Fatalf("vtables document %+v misses cohort %q", doc, name)
	}

	mustAgree := func(i int, want bool, when string) {
		t.Helper()
		ok, err := clus.Nodes[i].Node.VTablesAgree(ctx, name)
		if err != nil {
			t.Fatalf("VTablesAgree %s: %v", when, err)
		}
		if ok != want {
			t.Errorf("VTablesAgree %s = %v, want %v", when, ok, want)
		}
	}

	mustAgree(0, true, "on a freshly booted cluster")

	// One node publishing alone splits the cluster: both the publisher
	// and a lagging peer must report disagreement.
	v1 := boundTable(t, clus.Nodes[0].Srv.Registry(), name, 1, 0)
	if err := clus.Nodes[0].Srv.Registry().PublishValueTable(name, v1); err != nil {
		t.Fatal(err)
	}
	mustAgree(0, false, "after a one-node publish (from the publisher)")
	mustAgree(1, false, "after a one-node publish (from a lagging peer)")

	// Divergent content under one shared version number disagrees too:
	// each node's worker aggregates its node-local journal, so equal
	// version numbers do not imply equal learned values.
	div := boundTable(t, clus.Nodes[1].Srv.Registry(), name, 1, 7)
	for i := 1; i < len(clus.Nodes); i++ {
		if err := clus.Nodes[i].Srv.Registry().PublishValueTable(name, div); err != nil {
			t.Fatal(err)
		}
	}
	mustAgree(0, false, "with same-version divergent tables")

	// Explicit convergence onto the winsOver winner restores agreement.
	winner := v1
	if div.Fingerprint() > v1.Fingerprint() {
		winner = div
	}
	for i := range clus.Nodes {
		if err := clus.Nodes[i].Srv.Registry().AdoptValueTable(name, winner); err != nil {
			t.Fatal(err)
		}
	}
	mustAgree(0, true, "after every node adopted the same table")

	// An unknown cohort is a local error.
	if _, err := clus.Nodes[0].Node.VTablesAgree(ctx, "no-such-db"); err == nil {
		t.Error("VTablesAgree accepted an unknown database")
	}
}

// TestVTablesAgreeUnreachablePeer pins the error-not-verdict rule: the
// caller cannot distinguish "behind" from "down", so it must defer the
// publish rather than conclude anything.
func TestVTablesAgreeUnreachablePeer(t *testing.T) {
	srv, err := fleet.NewServer(fleet.ServerConfig{
		Databases: fleettest.Databases(t),
		Logger:    discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	node, err := cluster.New(cluster.Config{
		Self: "a",
		Peers: []cluster.Peer{
			{ID: "a", URL: "http://127.0.0.1:1"},
			{ID: "b", URL: "http://127.0.0.1:1"}, // closed port
		},
		Logger: discardLogger(),
	}, srv)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := node.VTablesAgree(context.Background(), fleettest.Databases(t)[0].Name)
	if err == nil {
		t.Fatal("VTablesAgree returned a verdict for an unreachable peer")
	}
	if ok {
		t.Error("VTablesAgree reported agreement alongside an error")
	}
}

// TestCatchUpVTablesAfterSingleNodePublish: one node's worker wins the
// publish race; the others hold no table at all. Catch-up must treat
// the published table as the winner (local (0, 0) loses to any v1),
// fetch the exact table, and adopt it — restoring agreement.
func TestCatchUpVTablesAfterSingleNodePublish(t *testing.T) {
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{Nodes: 3, TraceSeed: 67})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()
	name := fleettest.Databases(t)[0].Name
	ctx := context.Background()

	reg0 := clus.Nodes[0].Srv.Registry()
	v1 := boundTable(t, reg0, name, 1, 0)
	if err := reg0.PublishValueTable(name, v1); err != nil {
		t.Fatal(err)
	}

	// The winner has nothing to adopt; the laggers adopt its table.
	if adopted, err := clus.Nodes[0].Node.CatchUpVTables(ctx, name); err != nil || adopted {
		t.Fatalf("winner caught up to itself: adopted=%v err=%v", adopted, err)
	}
	for i := 1; i < len(clus.Nodes); i++ {
		adopted, err := clus.Nodes[i].Node.CatchUpVTables(ctx, name)
		if err != nil {
			t.Fatalf("catch-up on node %d: %v", i, err)
		}
		if !adopted {
			t.Fatalf("node %d did not adopt the published table", i)
		}
	}
	for i, cn := range clus.Nodes {
		st, err := cn.Srv.Registry().ValueTableStatus(name)
		if err != nil {
			t.Fatal(err)
		}
		if !st.HasTable || st.Version != 1 || st.Fingerprint != v1.Fingerprint() {
			t.Errorf("node %d vtable (has=%v v%d fp %016x), want (v1, %016x)",
				i, st.HasTable, st.Version, st.Fingerprint, v1.Fingerprint())
		}
		ok, err := cn.Node.VTablesAgree(ctx, name)
		if err != nil || !ok {
			t.Errorf("agreement from node %d after catch-up = %v, %v; want true", i, ok, err)
		}
		// Catch-up is idempotent once converged.
		if adopted, err := cn.Node.CatchUpVTables(ctx, name); err != nil || adopted {
			t.Errorf("node %d re-adopted after convergence: adopted=%v err=%v", i, adopted, err)
		}
	}
}

// TestCatchUpVTablesDivergentSameVersion: two nodes' workers publish
// divergent tables both numbered v1. The content fingerprint is the
// deterministic tiebreak — every node chases the same winner.
func TestCatchUpVTablesDivergentSameVersion(t *testing.T) {
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{Nodes: 3, TraceSeed: 71})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()
	name := fleettest.Databases(t)[0].Name
	ctx := context.Background()

	ta := boundTable(t, clus.Nodes[0].Srv.Registry(), name, 1, 0)
	tb := boundTable(t, clus.Nodes[1].Srv.Registry(), name, 1, 13)
	if ta.Fingerprint() == tb.Fingerprint() {
		t.Fatal("salted tables share a fingerprint; divergence test is vacuous")
	}
	if err := clus.Nodes[0].Srv.Registry().PublishValueTable(name, ta); err != nil {
		t.Fatal(err)
	}
	if err := clus.Nodes[1].Srv.Registry().PublishValueTable(name, tb); err != nil {
		t.Fatal(err)
	}
	if ok, err := clus.Nodes[0].Node.VTablesAgree(ctx, name); err != nil || ok {
		t.Fatalf("divergent same-version tables agree = %v, %v; want false", ok, err)
	}
	wantFP := ta.Fingerprint()
	if tb.Fingerprint() > wantFP {
		wantFP = tb.Fingerprint()
	}

	for i, cn := range clus.Nodes {
		if _, err := cn.Node.CatchUpVTables(ctx, name); err != nil {
			t.Fatalf("catch-up on node %d: %v", i, err)
		}
	}
	for i, cn := range clus.Nodes {
		st, err := cn.Srv.Registry().ValueTableStatus(name)
		if err != nil {
			t.Fatal(err)
		}
		if !st.HasTable || st.Version != 1 || st.Fingerprint != wantFP {
			t.Errorf("node %d vtable (v%d, %016x), want (v1, %016x)", i, st.Version, st.Fingerprint, wantFP)
		}
		ok, err := cn.Node.VTablesAgree(ctx, name)
		if err != nil || !ok {
			t.Errorf("agreement from node %d after tiebreak = %v, %v; want true", i, ok, err)
		}
	}
}
