package cluster

// Cohort value-table agreement — the database-version machinery of
// versions.go, applied to the shared learning layer. A cohort worker
// publish hot-swaps the value table a cohort's agents are seeded from;
// in a cluster each node's worker aggregates from its node-local
// journal, so two nodes can publish divergent tables under the same
// version number. The cohort worker therefore gates publishing on
// VTablesAgree (every alive peer holds the same table — version AND
// content fingerprint), and CatchUpVTables is the repair path when a
// peer published first: fetch the winner's exact table and adopt it,
// restoring agreement instead of wedging. The (version, fingerprint)
// total order is winsOver — the same deterministic convergence order
// databases use, so all nodes chase the same winner.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"clrdse/internal/runtime"
)

// VTableVersionJSON is one cohort's value-table state as published on
// GET /v1/cluster/vtables. The fingerprint is the table's content hash
// (runtime.ValueTable.Fingerprint): equal version numbers with
// different fingerprints mean divergent tables, not agreement.
type VTableVersionJSON struct {
	Database    string `json:"database"`
	HasTable    bool   `json:"has_table"`
	Version     uint64 `json:"version,omitempty"`
	Epoch       uint64 `json:"epoch,omitempty"`
	Fingerprint uint64 `json:"fingerprint,omitempty"`
}

// VTablesJSON is the body of GET /v1/cluster/vtables.
type VTablesJSON struct {
	Node      string              `json:"node"`
	Databases []VTableVersionJSON `json:"databases"`
}

// VTablesInfo snapshots this node's per-cohort value-table state.
func (n *Node) VTablesInfo() VTablesJSON {
	doc := VTablesJSON{Node: n.self}
	for _, st := range n.reg.ValueTableStatuses() {
		doc.Databases = append(doc.Databases, VTableVersionJSON{
			Database:    st.Database,
			HasTable:    st.HasTable,
			Version:     st.Version,
			Epoch:       st.Epoch,
			Fingerprint: st.Fingerprint,
		})
	}
	return doc
}

func (n *Node) handleVTables(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, n.VTablesInfo())
}

// VTablesAgree reports whether every alive peer holds the named
// cohort's value table at this node's state — presence, version and
// content fingerprint. An unreachable peer or a malformed document is
// an error, not a disagreement: the caller cannot distinguish "behind"
// from "down", so it should defer the publish rather than conclude
// anything.
func (n *Node) VTablesAgree(ctx context.Context, database string) (bool, error) {
	local, err := n.reg.ValueTableStatus(database)
	if err != nil {
		return false, err
	}

	n.mu.Lock()
	peers := n.aliveMembersLocked()
	urls := n.urls
	n.mu.Unlock()

	for _, id := range peers {
		if id == n.self {
			continue
		}
		doc, err := n.fetchVTables(ctx, urls[id])
		if err != nil {
			return false, fmt.Errorf("cluster: vtables from %s: %w", id, err)
		}
		found := false
		for _, d := range doc.Databases {
			if d.Database != database {
				continue
			}
			found = true
			if d.HasTable != local.HasTable ||
				d.Version != local.Version || d.Fingerprint != local.Fingerprint {
				return false, nil
			}
		}
		if !found {
			return false, nil
		}
	}
	return true, nil
}

// fetchVTables GETs one peer's value-table version document.
func (n *Node) fetchVTables(ctx context.Context, url string) (*VTablesJSON, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/cluster/vtables", nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var doc VTablesJSON
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// VTableJSON is the body of GET /v1/cluster/vtable/{name}: the node's
// active value table for one cohort, with the version/fingerprint pair
// the catch-up path verifies before adopting it.
type VTableJSON struct {
	Node        string              `json:"node"`
	Database    string              `json:"database"`
	Version     uint64              `json:"version"`
	Fingerprint uint64              `json:"fingerprint"`
	Table       *runtime.ValueTable `json:"table"`
}

func (n *Node) handleVTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	vt, err := n.reg.ValueTable(name)
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	if vt == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no value table published"})
		return
	}
	writeJSON(w, http.StatusOK, VTableJSON{
		Node: n.self, Database: name, Version: vt.Version, Fingerprint: vt.Fingerprint(), Table: vt,
	})
}

// fetchVTable GETs one peer's active value table for the cohort.
func (n *Node) fetchVTable(ctx context.Context, url, name string) (*VTableJSON, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/cluster/vtable/"+name, nil)
	if err != nil {
		return nil, err
	}
	if n.token != "" {
		req.Header.Set(TokenHeader, n.token)
	}
	resp, err := n.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var doc VTableJSON
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// CatchUpVTables reconverges this node's value table for the named
// cohort with the cluster — the cohort worker's Reconcile hook,
// mirroring CatchUpVersions: when any alive peer's table wins the
// convergence order against ours, fetch that exact table from the peer
// and adopt it (see fleet.AdoptValueTable). It reports whether a table
// was adopted. A node with no table treats any peer table as the
// winner. Unreachable peers are skipped, not fatal: catch-up is
// best-effort and re-runs on every cohort tick.
func (n *Node) CatchUpVTables(ctx context.Context, database string) (bool, error) {
	local, err := n.reg.ValueTableStatus(database)
	if err != nil {
		return false, err
	}

	n.mu.Lock()
	peers := n.aliveMembersLocked()
	urls := n.urls
	n.mu.Unlock()

	// A node with no table is behind any node with one: local (0, 0)
	// loses winsOver against every published (version >= 1) table.
	bestVer, bestFP := local.Version, local.Fingerprint
	bestPeer := ""
	for _, id := range peers {
		if id == n.self {
			continue
		}
		doc, err := n.fetchVTables(ctx, urls[id])
		if err != nil {
			continue
		}
		for _, d := range doc.Databases {
			if d.Database != database || !d.HasTable {
				continue
			}
			if winsOver(d.Version, d.Fingerprint, bestVer, bestFP) {
				bestVer, bestFP, bestPeer = d.Version, d.Fingerprint, id
			}
		}
	}
	if bestPeer == "" {
		return false, nil
	}

	doc, err := n.fetchVTable(ctx, urls[bestPeer], database)
	if err != nil {
		return false, fmt.Errorf("cluster: vtable from %s: %w", bestPeer, err)
	}
	if doc.Table == nil {
		return false, fmt.Errorf("cluster: vtable from %s: empty document", bestPeer)
	}
	// The peer may have moved between the two fetches; adopt whatever
	// it holds now as long as it still beats our state.
	if !winsOver(doc.Version, doc.Fingerprint, local.Version, local.Fingerprint) {
		return false, nil
	}
	if err := n.reg.AdoptValueTable(database, doc.Table); err != nil {
		return false, fmt.Errorf("cluster: adopt vtable v%d from %s: %w", doc.Version, bestPeer, err)
	}
	n.log.InfoContext(ctx, "adopted peer value table",
		"db", database, "peer", bestPeer,
		"version", doc.Version, "was", local.Version)
	return true, nil
}
