package cluster

// Batch routing: POST /v1/devices:decide-batch carries events for many
// devices, so the edge cannot route it with one ring lookup the way a
// device-scoped request is routed. Instead it re-buckets the events by
// owning node, serves its own bucket through the local fleet handler,
// forwards each remote bucket as a sub-batch (marked with
// X-Clr-Forwarded, preserving the single-hop guarantee per event), and
// merges the answers back in request order. A sub-batch that fails at
// the transport turns into per-event 502 entries — the rest of the
// batch is unaffected. Batches are always proxied, even in redirect
// mode: a 307 can point at only one owner, and a batch has many.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"clrdse/internal/fleet"
	"clrdse/internal/obs"
)

// batchPath is the batch decide endpoint (":" is a literal path byte,
// so deviceFor's /v1/devices/{id} parsing must never see it).
const batchPath = "/v1/devices:decide-batch"

// batchBucket is one owning node's slice of a batch: the events bound
// for it and their indices in the original request.
type batchBucket struct {
	owner  string
	idx    []int
	events []fleet.BatchEventJSON
}

// routeBatch handles a decide-batch request at the cluster edge.
func (n *Node) routeBatch(w http.ResponseWriter, r *http.Request, next http.Handler) {
	w.Header().Set(NodeHeader, n.self)
	// A forwarded sub-batch was already bucketed by the sender: every
	// event in it is ours (single hop, split views cannot loop it).
	if r.Header.Get(ForwardedHeader) != "" {
		next.ServeHTTP(w, r)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, n.maxBody+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "cluster: reading batch body: " + err.Error()})
		return
	}
	if int64(len(body)) > n.maxBody {
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": fmt.Sprintf("cluster: batch body exceeds %d bytes", n.maxBody)})
		return
	}
	binWire := strings.HasPrefix(r.Header.Get("Content-Type"), fleet.BinContentType)
	var events []fleet.BatchEventJSON
	if binWire {
		events, err = fleet.DecodeBatchRequest(body, nil)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
	} else {
		// Mirror the fleet handler's strict decode (unknown fields and
		// trailing data rejected) so one-node and many-node clusters
		// answer malformed batches identically.
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		var req fleet.BatchRequestJSON
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid request body: " + err.Error()})
			return
		}
		if _, err := dec.Token(); !errors.Is(err, io.EOF) {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid request body: trailing data after JSON value"})
			return
		}
		events = req.Events
	}
	if len(events) > fleet.MaxBatchEvents {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("batch of %d events exceeds the %d-event cap", len(events), fleet.MaxBatchEvents)})
		return
	}

	ring, urls := n.view()
	draining := n.draining.Load()
	byOwner := make(map[string]*batchBucket)
	var buckets []*batchBucket // first-appearance order, not map order
	for i := range events {
		owner := n.self
		if events[i].Device != "" {
			// Per-event drain semantics match the single-event router: a
			// device still registered here during a drain is served
			// locally until its handoff; empty IDs stay local so the
			// fleet handler's validation answers them.
			owner = ring.Owner(events[i].Device)
			if owner != n.self && draining && n.reg.Has(events[i].Device) {
				owner = n.self
			}
		}
		b := byOwner[owner]
		if b == nil {
			b = &batchBucket{owner: owner}
			byOwner[owner] = b
			buckets = append(buckets, b)
		}
		b.idx = append(b.idx, i)
		b.events = append(b.events, events[i])
	}

	// Everything ours: hand the original bytes through unchanged.
	if len(buckets) == 1 && buckets[0].owner == n.self {
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
		next.ServeHTTP(w, r)
		return
	}

	// Fan out one sub-batch per owner; each writes a disjoint set of
	// result slots, so no synchronisation beyond the join is needed.
	results := make([]fleet.BatchResultJSON, len(events))
	var wg sync.WaitGroup
	for _, b := range buckets {
		wg.Add(1)
		go func(b *batchBucket) {
			defer wg.Done()
			n.decideSubBatch(r, next, binWire, b, urls[b.owner], results)
		}(b)
	}
	wg.Wait()

	if binWire {
		out, err := fleet.AppendBatchResponse(nil, results)
		if err != nil {
			writeJSON(w, http.StatusBadGateway, map[string]string{"error": "cluster: encoding batch response: " + err.Error()})
			return
		}
		w.Header().Set("Content-Type", fleet.BinContentType)
		w.Header().Set("Content-Length", strconv.Itoa(len(out)))
		w.WriteHeader(http.StatusOK)
		//lint:allow errdrop a response-write failure means the client is gone; there is no one left to tell
		_, _ = w.Write(out)
		return
	}
	writeJSON(w, http.StatusOK, fleet.BatchResponseJSON{Results: results})
}

// failBucket fills a bucket's result slots with one error.
func failBucket(results []fleet.BatchResultJSON, idx []int, status int, msg string) {
	for _, i := range idx {
		results[i] = fleet.BatchResultJSON{Status: status, Error: msg}
	}
}

// decideSubBatch scores one bucket — through the local handler for our
// own bucket, over one forward hop for a peer's — and scatters its
// results into the full batch's slots.
func (n *Node) decideSubBatch(r *http.Request, next http.Handler, binWire bool, b *batchBucket, ownerURL string, results []fleet.BatchResultJSON) {
	var sub []byte
	var err error
	if binWire {
		sub, err = fleet.AppendBatchRequest(nil, b.events)
	} else {
		sub, err = json.Marshal(fleet.BatchRequestJSON{Events: b.events})
	}
	if err != nil {
		failBucket(results, b.idx, http.StatusBadGateway, "cluster: encoding sub-batch: "+err.Error())
		return
	}
	ct := "application/json"
	if binWire {
		ct = fleet.BinContentType
	}

	var status int
	var respBody []byte
	if b.owner == n.self {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, batchPath, bytes.NewReader(sub))
		if err != nil {
			failBucket(results, b.idx, http.StatusBadGateway, "cluster: building local sub-batch: "+err.Error())
			return
		}
		req.Header.Set("Content-Type", ct)
		req.Header.Set(obs.TraceHeader, r.Header.Get(obs.TraceHeader))
		rec := &bufResponseWriter{h: make(http.Header), status: http.StatusOK}
		next.ServeHTTP(rec, req)
		status, respBody = rec.status, rec.buf.Bytes()
	} else {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, ownerURL+batchPath, bytes.NewReader(sub))
		if err != nil {
			failBucket(results, b.idx, http.StatusBadGateway, "cluster: building sub-batch forward: "+err.Error())
			return
		}
		req.Header.Set("Content-Type", ct)
		req.Header.Set(obs.TraceHeader, r.Header.Get(obs.TraceHeader))
		req.Header.Set(ForwardedHeader, n.self)
		resp, err := n.httpc.Do(req)
		if err != nil {
			n.forwardErrs.Inc()
			failBucket(results, b.idx, http.StatusBadGateway, "cluster: forward to owner failed: "+err.Error())
			return
		}
		respBody, err = io.ReadAll(resp.Body)
		//lint:allow errdrop close after a full read; drain errors already surfaced via ReadAll
		resp.Body.Close()
		if err != nil {
			n.forwardErrs.Inc()
			failBucket(results, b.idx, http.StatusBadGateway, "cluster: reading owner response: "+err.Error())
			return
		}
		n.forwards.Inc()
		status = resp.StatusCode
	}
	if status != http.StatusOK {
		failBucket(results, b.idx, http.StatusBadGateway,
			fmt.Sprintf("cluster: owner %s rejected sub-batch (status %d): %s", b.owner, status, strings.TrimSpace(string(respBody))))
		return
	}
	var subResults []fleet.BatchResultJSON
	if binWire {
		subResults, err = fleet.DecodeBatchResponse(respBody, nil)
	} else {
		var br fleet.BatchResponseJSON
		err = json.Unmarshal(respBody, &br)
		subResults = br.Results
	}
	if err != nil || len(subResults) != len(b.idx) {
		failBucket(results, b.idx, http.StatusBadGateway, "cluster: undecodable sub-batch response from "+b.owner)
		return
	}
	for j, i := range b.idx {
		results[i] = subResults[j]
	}
}

// bufResponseWriter captures a local sub-batch response in memory.
type bufResponseWriter struct {
	h      http.Header
	buf    bytes.Buffer
	status int
}

func (b *bufResponseWriter) Header() http.Header { return b.h }

func (b *bufResponseWriter) WriteHeader(code int) { b.status = code }

func (b *bufResponseWriter) Write(p []byte) (int, error) { return b.buf.Write(p) }
