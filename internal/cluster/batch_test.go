package cluster_test

// Batch routing through the cluster edge: a multi-device batch sent to
// any node must answer exactly what a single fleet server would (the
// re-bucketing fan-out is invisible on the wire), redirect mode must
// proxy batches rather than 307 them, and a dead owner must fail only
// its own bucket's slots.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"clrdse/internal/cluster"
	"clrdse/internal/fleet"
	"clrdse/internal/fleet/fleettest"
	"clrdse/internal/runtime"
)

// postBatch submits a batch in either encoding and decodes the result
// set; a non-200 answer returns nil results.
func postBatch(t *testing.T, client *http.Client, base string, events []fleet.BatchEventJSON, binary bool) (int, []fleet.BatchResultJSON) {
	t.Helper()
	var body []byte
	var ct string
	var err error
	if binary {
		ct = fleet.BinContentType
		body, err = fleet.AppendBatchRequest(nil, events)
		if err != nil {
			t.Fatalf("encoding batch: %v", err)
		}
	} else {
		ct = "application/json"
		body, err = json.Marshal(fleet.BatchRequestJSON{Events: events})
		if err != nil {
			t.Fatalf("encoding batch: %v", err)
		}
	}
	resp, err := client.Post(base+"/v1/devices:decide-batch", ct, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("posting batch: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading batch response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	if binary {
		results, err := fleet.DecodeBatchResponse(raw, nil)
		if err != nil {
			t.Fatalf("decoding binary batch response: %v", err)
		}
		return resp.StatusCode, results
	}
	var br fleet.BatchResponseJSON
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatalf("decoding batch response: %v", err)
	}
	return resp.StatusCode, br.Results
}

// clusterBatchScript builds a batch spanning the given devices: a
// tight round, a loose round, then a replay, a stale seq, a ghost
// device and an empty ID, in one request.
func clusterBatchScript(t *testing.T, devices []string) []fleet.BatchEventJSON {
	t.Helper()
	dbs := fleettest.Databases(t)
	q := runtime.ModelFromDatabase(dbs[0].DB)
	loose := fleettest.LooseSpec(dbs[0].DB)
	tightJ := fleet.QoSSpecJSON{SMaxMs: q.HiS, FMin: q.HiF}
	looseJ := fleet.QoSSpecJSON{SMaxMs: loose.SMaxMs, FMin: loose.FMin}
	var events []fleet.BatchEventJSON
	for _, dev := range devices {
		events = append(events, fleet.BatchEventJSON{Device: dev, Seq: 1, QoSSpecJSON: tightJ})
	}
	for _, dev := range devices {
		events = append(events, fleet.BatchEventJSON{Device: dev, Seq: 2, QoSSpecJSON: looseJ})
	}
	events = append(events,
		fleet.BatchEventJSON{Device: devices[0], Seq: 2, QoSSpecJSON: looseJ}, // replay
		fleet.BatchEventJSON{Device: devices[1], Seq: 1, QoSSpecJSON: tightJ}, // stale
		fleet.BatchEventJSON{Device: "ghost", Seq: 1, QoSSpecJSON: looseJ},    // 404
		fleet.BatchEventJSON{Device: "", Seq: 1, QoSSpecJSON: looseJ},         // invalid
	)
	return events
}

// TestClusterBatchEquivalence registers one device per owner on a
// three-node cluster and on a standalone fleet server, drives the same
// batch through both, and expects identical result sets — first over
// JSON through node 0, then the same batch again over the binary wire
// through node 1 (all replays and stales by then, on both sides).
func TestClusterBatchEquivalence(t *testing.T) {
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{Nodes: 3, TraceSeed: 61})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(clus.Close)
	ref := newFleetServer(t)
	rs := httptest.NewServer(ref.Handler())
	t.Cleanup(rs.Close)

	members := []string{"node-0", "node-1", "node-2"}
	ring, err := cluster.NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	devices := make([]string, len(members))
	for i, m := range members {
		devices[i] = deviceOwnedBy(t, ring, "bdev", m)
	}
	for _, dev := range devices {
		for _, base := range []string{clus.URLs()[0], rs.URL} {
			resp, err := http.Post(base+"/v1/devices", "application/json", bytes.NewReader(registerBody(t, dev)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("registering %s at %s: status %d", dev, base, resp.StatusCode)
			}
		}
	}

	events := clusterBatchScript(t, devices)
	status, got := postBatch(t, http.DefaultClient, clus.URLs()[0], events, false)
	if status != http.StatusOK {
		t.Fatalf("cluster batch: status %d", status)
	}
	status, want := postBatch(t, http.DefaultClient, rs.URL, events, false)
	if status != http.StatusOK {
		t.Fatalf("reference batch: status %d", status)
	}
	if len(got) != len(events) || !reflect.DeepEqual(got, want) {
		t.Fatalf("cluster batch diverged from standalone server:\n got %+v\nwant %+v", got, want)
	}

	// Same batch again, binary, through a different edge node: replays
	// and stales now, but still byte-level agreement with standalone.
	status, got = postBatch(t, http.DefaultClient, clus.URLs()[1], events, true)
	if status != http.StatusOK {
		t.Fatalf("cluster binary batch: status %d", status)
	}
	status, want = postBatch(t, http.DefaultClient, rs.URL, events, true)
	if status != http.StatusOK {
		t.Fatalf("reference binary batch: status %d", status)
	}
	if !reflect.DeepEqual(got, want) {
		gj, _ := json.Marshal(fleet.BatchResponseJSON{Results: got})
		wj, _ := json.Marshal(fleet.BatchResponseJSON{Results: want})
		t.Fatalf("binary cluster batch diverged from standalone server:\n got %s\nwant %s", gj, wj)
	}
}

// TestClusterBatchRedirectStillProxies pins the redirect-mode carve-
// out: a 307 can name only one owner, so a batch is proxied even when
// single-device traffic would be redirected.
func TestClusterBatchRedirectStillProxies(t *testing.T) {
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{Nodes: 2, Redirect: true, TraceSeed: 67})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(clus.Close)
	ring, err := cluster.NewRing([]string{"node-0", "node-1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	dev := deviceOwnedBy(t, ring, "rdev", "node-1")
	// Register at the owner directly — redirect mode would 307 this.
	resp, err := http.Post(clus.URLs()[1]+"/v1/devices", "application/json", bytes.NewReader(registerBody(t, dev)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("registering %s: status %d", dev, resp.StatusCode)
	}

	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	loose := fleettest.LooseSpec(fleettest.Databases(t)[0].DB)
	events := []fleet.BatchEventJSON{{Device: dev, Seq: 1, QoSSpecJSON: fleet.QoSSpecJSON{SMaxMs: loose.SMaxMs, FMin: loose.FMin}}}
	status, results := postBatch(t, noFollow, clus.URLs()[0], events, false)
	if status != http.StatusOK {
		t.Fatalf("redirect-mode batch: status %d, want 200 (batches must proxy, not 307)", status)
	}
	if len(results) != 1 || results[0].Status != http.StatusOK || results[0].Decision == nil {
		t.Fatalf("redirect-mode batch result: %+v", results)
	}
}

// TestClusterBatchPartialFailure routes a batch through a node whose
// ring includes a dead peer: the dead owner's slots answer 502, the
// local slots decide normally, and order is preserved.
func TestClusterBatchPartialFailure(t *testing.T) {
	node, _, url := ghostCluster(t)
	alive := deviceOwnedBy(t, node.Ring(), "live", "a")
	dead := deviceOwnedBy(t, node.Ring(), "dead", "b")
	resp, err := http.Post(url+"/v1/devices", "application/json", bytes.NewReader(registerBody(t, alive)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("registering %s: status %d", alive, resp.StatusCode)
	}

	loose := fleettest.LooseSpec(fleettest.Databases(t)[0].DB)
	looseJ := fleet.QoSSpecJSON{SMaxMs: loose.SMaxMs, FMin: loose.FMin}
	events := []fleet.BatchEventJSON{
		{Device: alive, Seq: 1, QoSSpecJSON: looseJ},
		{Device: dead, Seq: 1, QoSSpecJSON: looseJ},
		{Device: alive, Seq: 2, QoSSpecJSON: looseJ},
	}
	status, results := postBatch(t, http.DefaultClient, url, events, false)
	if status != http.StatusOK {
		t.Fatalf("partial-failure batch: status %d", status)
	}
	if len(results) != len(events) {
		t.Fatalf("got %d results for %d events", len(results), len(events))
	}
	for _, i := range []int{0, 2} {
		if results[i].Status != http.StatusOK || results[i].Decision == nil {
			t.Errorf("local slot %d: %+v, want a 200 decision", i, results[i])
		} else if results[i].Decision.Seq != events[i].Seq {
			t.Errorf("local slot %d: seq %d, want %d", i, results[i].Decision.Seq, events[i].Seq)
		}
	}
	if results[1].Status != http.StatusBadGateway || !strings.Contains(results[1].Error, "forward to owner failed") {
		t.Errorf("dead-owner slot: %+v, want 502 forward failure", results[1])
	}
}
