package pareto

// Multi-objective quality indicators, used to judge DSE convergence
// and compare fronts between runs (e.g. the GA-budget ablations and
// the "did the optimisation converge" analysis behind the paper's
// Table 7 caveat).

import (
	"fmt"
	"math"
)

// IGD returns the inverted generational distance of a front to a
// reference set: the mean Euclidean distance from each reference point
// to its nearest front member. Lower is better; 0 means the front
// covers the reference set exactly.
func IGD(front, ref [][]float64) float64 {
	if len(ref) == 0 {
		panic("pareto: IGD with empty reference set")
	}
	if len(front) == 0 {
		return math.Inf(1)
	}
	sum := 0.0
	for _, r := range ref {
		best := math.Inf(1)
		for _, f := range front {
			best = math.Min(best, dist(r, f))
		}
		sum += best
	}
	return sum / float64(len(ref))
}

// Spread returns a distribution-uniformity indicator: the coefficient
// of variation of nearest-neighbour distances within the front. 0
// means perfectly even spacing; larger values mean clustered points
// with gaps. Fronts with fewer than 3 points return 0.
func Spread(front [][]float64) float64 {
	n := len(front)
	if n < 3 {
		return 0
	}
	nn := make([]float64, n)
	for i := range front {
		best := math.Inf(1)
		for j := range front {
			if i != j {
				best = math.Min(best, dist(front[i], front[j]))
			}
		}
		nn[i] = best
	}
	mean := 0.0
	for _, d := range nn {
		mean += d
	}
	mean /= float64(n)
	if mean == 0 {
		return 0
	}
	varSum := 0.0
	for _, d := range nn {
		varSum += (d - mean) * (d - mean)
	}
	return math.Sqrt(varSum/float64(n)) / mean
}

// Coverage returns Zitzler's C(A,B): the fraction of points in b that
// are weakly dominated by (dominated by or equal to) at least one
// point in a. C(A,B)=1 means A entirely covers B; note C is not
// symmetric.
func Coverage(a, b [][]float64) float64 {
	if len(b) == 0 {
		panic("pareto: Coverage with empty B")
	}
	covered := 0
	for _, pb := range b {
		for _, pa := range a {
			if Dominates(pa, pb) || equal(pa, pb) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(b))
}

// Normalize maps each objective of the points onto [0,1] using the
// set's own extent (degenerate dimensions map to 0). Indicators that
// mix objectives of different units (ms vs mJ) should operate on
// normalised copies.
func Normalize(points [][]float64) [][]float64 {
	if len(points) == 0 {
		return nil
	}
	d := len(points[0])
	lo := make([]float64, d)
	hi := make([]float64, d)
	for k := 0; k < d; k++ {
		lo[k], hi[k] = math.Inf(1), math.Inf(-1)
	}
	for _, p := range points {
		if len(p) != d {
			panic(fmt.Sprintf("pareto: Normalize with mixed dimensions %d vs %d", len(p), d))
		}
		for k, v := range p {
			lo[k] = math.Min(lo[k], v)
			hi[k] = math.Max(hi[k], v)
		}
	}
	out := make([][]float64, len(points))
	for i, p := range points {
		q := make([]float64, d)
		for k, v := range p {
			if hi[k] > lo[k] {
				q[k] = (v - lo[k]) / (hi[k] - lo[k])
			}
		}
		out[i] = q
	}
	return out
}

func dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("pareto: dimension mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
