// Package pareto provides the multi-objective machinery used by the
// design-time DSE: Pareto dominance, fast non-dominated sorting,
// crowding distance, a non-dominated archive, and hyper-volume
// computation (exact 2-D sweep and an n-D recursive slicing method).
//
// All objectives are minimised by convention; callers negate
// maximisation objectives (the paper maximises R(X) = -J_app, i.e.
// minimises energy). Infeasible points are handled per Figure 4a: a
// feasible point's fitness is the (positive) hyper-volume it sweeps
// against the reference point R (the constraint vector), while an
// infeasible point's fitness is the negative of the volume between R
// and the point — the further outside the constraints, the worse.
package pareto

import (
	"fmt"
	"math"
	"sort"
)

// Dominates reports whether objective vector a Pareto-dominates b:
// a is no worse in every objective and strictly better in at least
// one. Both vectors are minimised and must have equal length.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		panic(fmt.Sprintf("pareto: dimension mismatch %d vs %d", len(a), len(b)))
	}
	strictly := false
	for i := range a {
		switch {
		case a[i] > b[i]:
			return false
		case a[i] < b[i]:
			strictly = true
		}
	}
	return strictly
}

// NonDominated returns the indices of points whose objective vectors
// are not dominated by any other point. Duplicate vectors are all
// kept. The result preserves input order.
func NonDominated(objs [][]float64) []int {
	var front []int
	for i := range objs {
		dominated := false
		for j := range objs {
			if i != j && Dominates(objs[j], objs[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// Sort performs fast non-dominated sorting (Deb's NSGA-II algorithm)
// and returns the fronts as slices of indices: fronts[0] is the Pareto
// front, fronts[1] the points dominated only by front 0, and so on.
func Sort(objs [][]float64) [][]int {
	n := len(objs)
	domCount := make([]int, n)    // how many points dominate i
	dominated := make([][]int, n) // points that i dominates
	var fronts [][]int
	var current []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if Dominates(objs[i], objs[j]) {
				dominated[i] = append(dominated[i], j)
			} else if Dominates(objs[j], objs[i]) {
				domCount[i]++
			}
		}
		if domCount[i] == 0 {
			current = append(current, i)
		}
	}
	for len(current) > 0 {
		fronts = append(fronts, current)
		var next []int
		for _, i := range current {
			for _, j := range dominated[i] {
				domCount[j]--
				if domCount[j] == 0 {
					next = append(next, j)
				}
			}
		}
		current = next
	}
	return fronts
}

// Crowding returns the NSGA-II crowding distance of each point within
// the given front (indices into objs). Boundary points in any
// objective get +Inf. Larger is less crowded, i.e. preferred.
func Crowding(objs [][]float64, front []int) map[int]float64 {
	dist := make(map[int]float64, len(front))
	for _, i := range front {
		dist[i] = 0
	}
	if len(front) == 0 {
		return dist
	}
	m := len(objs[front[0]])
	order := make([]int, len(front))
	for k := range m {
		copy(order, front)
		sort.SliceStable(order, func(a, b int) bool {
			return objs[order[a]][k] < objs[order[b]][k]
		})
		lo, hi := order[0], order[len(order)-1]
		dist[lo] = math.Inf(1)
		dist[hi] = math.Inf(1)
		span := objs[hi][k] - objs[lo][k]
		if span == 0 {
			continue
		}
		for p := 1; p < len(order)-1; p++ {
			dist[order[p]] += (objs[order[p+1]][k] - objs[order[p-1]][k]) / span
		}
	}
	return dist
}

// Hypervolume computes the volume of objective space dominated by the
// given (minimised) points and bounded above by the reference point
// ref. Points outside the reference box contribute only their clipped
// part; fully-outside points contribute zero. The implementation is
// an exact sweep for 1-D/2-D and recursive objective slicing (HSO) for
// higher dimensions — exponential in the number of objectives but the
// DSE uses 2-4 objectives, where it is fast.
func Hypervolume(points [][]float64, ref []float64) float64 {
	var inside [][]float64
	for _, p := range points {
		if len(p) != len(ref) {
			panic(fmt.Sprintf("pareto: point dim %d != ref dim %d", len(p), len(ref)))
		}
		q := make([]float64, len(p))
		ok := true
		for i := range p {
			if p[i] >= ref[i] {
				ok = false
				break
			}
			q[i] = p[i]
		}
		if ok {
			inside = append(inside, q)
		}
	}
	if len(inside) == 0 {
		return 0
	}
	return hv(inside, ref)
}

func hv(points [][]float64, ref []float64) float64 {
	d := len(ref)
	switch d {
	case 1:
		best := math.Inf(1)
		for _, p := range points {
			best = math.Min(best, p[0])
		}
		return ref[0] - best
	case 2:
		return hv2(points, ref)
	}
	// HSO: sort by the last objective and sweep slices.
	idx := NonDominated(points)
	pts := make([][]float64, len(idx))
	for i, j := range idx {
		pts[i] = points[j]
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a][d-1] < pts[b][d-1] })
	total := 0.0
	for i := range pts {
		var hi float64
		if i+1 < len(pts) {
			hi = pts[i+1][d-1]
		} else {
			hi = ref[d-1]
		}
		depth := hi - pts[i][d-1]
		if depth <= 0 {
			continue
		}
		// Points at or below this slice project into d-1 dims.
		var slice [][]float64
		for j := 0; j <= i; j++ {
			slice = append(slice, pts[j][:d-1])
		}
		total += depth * hv(slice, ref[:d-1])
	}
	return total
}

func hv2(points [][]float64, ref []float64) float64 {
	pts := make([][]float64, len(points))
	copy(pts, points)
	sort.Slice(pts, func(a, b int) bool {
		if pts[a][0] != pts[b][0] {
			return pts[a][0] < pts[b][0]
		}
		return pts[a][1] < pts[b][1]
	})
	area := 0.0
	yBound := ref[1]
	for _, p := range pts {
		if p[1] < yBound {
			area += (ref[0] - p[0]) * (yBound - p[1])
			yBound = p[1]
		}
	}
	return area
}

// Contribution returns the exclusive hyper-volume contribution of each
// point: the loss in total hyper-volume if that point were removed.
func Contribution(points [][]float64, ref []float64) []float64 {
	total := Hypervolume(points, ref)
	contrib := make([]float64, len(points))
	if len(points) == 1 {
		contrib[0] = total
		return contrib
	}
	rest := make([][]float64, 0, len(points)-1)
	for i := range points {
		rest = rest[:0]
		for j := range points {
			if j != i {
				rest = append(rest, points[j])
			}
		}
		contrib[i] = total - Hypervolume(rest, ref)
	}
	return contrib
}

// Fitness implements the constraint-aware hyper-volume fitness of the
// paper's Figure 4a for a single point: a feasible point (inside the
// reference box) scores the positive volume it sweeps to the reference
// point; an infeasible point scores the negative volume of the box
// spanned between the reference point and the point's clipped excess.
func Fitness(point, ref []float64) float64 {
	if len(point) != len(ref) {
		panic(fmt.Sprintf("pareto: point dim %d != ref dim %d", len(point), len(ref)))
	}
	feasible := true
	for i := range point {
		if point[i] > ref[i] {
			feasible = false
			break
		}
	}
	if feasible {
		v := 1.0
		for i := range point {
			v *= ref[i] - point[i]
		}
		return v
	}
	// Negative fitness: volume between R and the point in the violated
	// dimensions, so deeper violations score worse (red areas in
	// Figure 4a).
	v := 1.0
	for i := range point {
		if point[i] > ref[i] {
			v *= point[i] - ref[i]
		}
	}
	return -v
}

// Archive maintains a bounded set of mutually non-dominated points.
// Inserting a dominated point is a no-op; inserting a dominating point
// evicts everything it dominates. When the archive exceeds its
// capacity, the most crowded member is dropped (boundary points are
// always kept). A capacity of 0 means unbounded.
type Archive struct {
	capacity int
	objs     [][]float64
	payload  []any
}

// NewArchive returns an empty archive with the given capacity
// (0 = unbounded).
func NewArchive(capacity int) *Archive {
	return &Archive{capacity: capacity}
}

// Len returns the number of stored points.
func (a *Archive) Len() int { return len(a.objs) }

// Objectives returns the stored objective vectors (not copied).
func (a *Archive) Objectives() [][]float64 { return a.objs }

// Payloads returns the stored payloads, parallel to Objectives.
func (a *Archive) Payloads() []any { return a.payload }

// Add inserts a point with its payload. It returns true if the point
// was accepted (non-dominated at insertion time).
func (a *Archive) Add(obj []float64, payload any) bool {
	for _, o := range a.objs {
		if Dominates(o, obj) || equal(o, obj) {
			return false
		}
	}
	keepObjs := a.objs[:0]
	keepPay := a.payload[:0]
	for i, o := range a.objs {
		if !Dominates(obj, o) {
			keepObjs = append(keepObjs, o)
			keepPay = append(keepPay, a.payload[i])
		}
	}
	a.objs = append(keepObjs, append([]float64(nil), obj...))
	a.payload = append(keepPay, payload)
	if a.capacity > 0 && len(a.objs) > a.capacity {
		a.evictMostCrowded()
	}
	return true
}

func (a *Archive) evictMostCrowded() {
	front := make([]int, len(a.objs))
	for i := range front {
		front[i] = i
	}
	crowd := Crowding(a.objs, front)
	worst, worstDist := -1, math.Inf(1)
	for i, d := range crowd {
		if d < worstDist {
			worst, worstDist = i, d
		}
	}
	if worst < 0 {
		worst = len(a.objs) - 1 // all boundary: drop the newest
	}
	a.objs = append(a.objs[:worst], a.objs[worst+1:]...)
	a.payload = append(a.payload[:worst], a.payload[worst+1:]...)
}

func equal(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
