package pareto

import (
	"math"
	"testing"

	"clrdse/internal/rng"
)

func TestIGDZeroWhenCovering(t *testing.T) {
	ref := [][]float64{{0, 1}, {1, 0}, {0.5, 0.5}}
	if got := IGD(ref, ref); got != 0 {
		t.Errorf("IGD(self) = %v, want 0", got)
	}
}

func TestIGDDistance(t *testing.T) {
	ref := [][]float64{{0, 0}, {1, 0}}
	front := [][]float64{{0, 1}} // distance 1 to (0,0), sqrt(2) to (1,0)
	want := (1 + math.Sqrt2) / 2
	if got := IGD(front, ref); math.Abs(got-want) > 1e-12 {
		t.Errorf("IGD = %v, want %v", got, want)
	}
}

func TestIGDEmptyFront(t *testing.T) {
	if !math.IsInf(IGD(nil, [][]float64{{0}}), 1) {
		t.Error("IGD of empty front should be +Inf")
	}
}

func TestIGDPanicsOnEmptyRef(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	IGD([][]float64{{0}}, nil)
}

func TestIGDImprovesWithBetterFront(t *testing.T) {
	r := rng.New(1)
	ref := make([][]float64, 20)
	for i := range ref {
		x := float64(i) / 19
		ref[i] = []float64{x, 1 - x}
	}
	near := make([][]float64, 20)
	far := make([][]float64, 20)
	for i := range ref {
		near[i] = []float64{ref[i][0] + 0.01*r.Float64(), ref[i][1] + 0.01*r.Float64()}
		far[i] = []float64{ref[i][0] + 0.3, ref[i][1] + 0.3}
	}
	if IGD(near, ref) >= IGD(far, ref) {
		t.Error("closer front should have lower IGD")
	}
}

func TestSpreadUniformVsClustered(t *testing.T) {
	uniform := [][]float64{{0, 4}, {1, 3}, {2, 2}, {3, 1}, {4, 0}}
	if got := Spread(uniform); got > 1e-9 {
		t.Errorf("uniform spacing spread = %v, want ~0", got)
	}
	clustered := [][]float64{{0, 4}, {0.05, 3.95}, {0.1, 3.9}, {3.9, 0.1}, {4, 0}}
	if Spread(clustered) <= Spread(uniform) {
		t.Error("clustered front should have larger spread")
	}
}

func TestSpreadSmallFronts(t *testing.T) {
	if Spread(nil) != 0 || Spread([][]float64{{1, 2}, {3, 4}}) != 0 {
		t.Error("tiny fronts should report spread 0")
	}
}

func TestCoverage(t *testing.T) {
	a := [][]float64{{0, 0}}
	b := [][]float64{{1, 1}, {2, 2}}
	if got := Coverage(a, b); got != 1 {
		t.Errorf("C(A,B) = %v, want 1 (A dominates everything)", got)
	}
	if got := Coverage(b, a); got != 0 {
		t.Errorf("C(B,A) = %v, want 0", got)
	}
	// Equal points are weakly dominated.
	if got := Coverage(a, a); got != 1 {
		t.Errorf("C(A,A) = %v, want 1", got)
	}
	// Partial coverage.
	c := [][]float64{{0.5, 0.5}}
	d := [][]float64{{1, 1}, {0, 2}}
	if got := Coverage(c, d); got != 0.5 {
		t.Errorf("partial coverage = %v, want 0.5", got)
	}
}

func TestCoveragePanicsOnEmptyB(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Coverage([][]float64{{1}}, nil)
}

func TestNormalize(t *testing.T) {
	pts := [][]float64{{10, 200}, {20, 100}, {15, 150}}
	n := Normalize(pts)
	if n[0][0] != 0 || n[1][0] != 1 || n[0][1] != 1 || n[1][1] != 0 {
		t.Errorf("Normalize extremes wrong: %v", n)
	}
	if math.Abs(n[2][0]-0.5) > 1e-12 || math.Abs(n[2][1]-0.5) > 1e-12 {
		t.Errorf("Normalize midpoint wrong: %v", n[2])
	}
	// Degenerate dimension maps to 0.
	d := Normalize([][]float64{{5, 1}, {5, 2}})
	if d[0][0] != 0 || d[1][0] != 0 {
		t.Errorf("degenerate dimension should map to 0: %v", d)
	}
	// Original untouched.
	if pts[0][0] != 10 {
		t.Error("Normalize mutated input")
	}
	if Normalize(nil) != nil {
		t.Error("Normalize(nil) should be nil")
	}
}
