package pareto

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"clrdse/internal/rng"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict improvement
		{[]float64{1, 1}, []float64{1, 2}, true},
		{[]float64{2, 2}, []float64{1, 1}, false},
		{[]float64{0}, []float64{1}, true},
	}
	for _, tc := range cases {
		if got := Dominates(tc.a, tc.b); got != tc.want {
			t.Errorf("Dominates(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDominatesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Dominates([]float64{1}, []float64{1, 2})
}

func TestNonDominated(t *testing.T) {
	objs := [][]float64{
		{1, 5}, // front
		{2, 4}, // front
		{3, 3}, // front
		{3, 5}, // dominated by {1,5}? no: 3>1, 5==5 -> dominated by (1,5)? (1,5) vs (3,5): 1<3,5<=5 yes dominated
		{4, 4}, // dominated by (3,3) and (2,4)
	}
	got := NonDominated(objs)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("NonDominated = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NonDominated = %v, want %v", got, want)
		}
	}
}

func TestSortFronts(t *testing.T) {
	objs := [][]float64{
		{1, 1}, // front 0, dominates everything
		{2, 2}, // front 1, dominated only by (1,1)
		{3, 3}, // front 3: dominated by (1,1), (2,2) and (2,3)
		{2, 3}, // front 2: dominated by (1,1) and (2,2)
	}
	fronts := Sort(objs)
	want := [][]int{{0}, {1}, {3}, {2}}
	if len(fronts) != len(want) {
		t.Fatalf("fronts = %v, want %v", fronts, want)
	}
	for k := range want {
		sort.Ints(fronts[k])
		if len(fronts[k]) != len(want[k]) || fronts[k][0] != want[k][0] {
			t.Errorf("front %d = %v, want %v", k, fronts[k], want[k])
		}
	}
}

func TestSortPartitionsAllPoints(t *testing.T) {
	r := rng.New(1)
	objs := make([][]float64, 60)
	for i := range objs {
		objs[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
	}
	fronts := Sort(objs)
	seen := map[int]bool{}
	for _, f := range fronts {
		for _, i := range f {
			if seen[i] {
				t.Fatalf("point %d in two fronts", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != len(objs) {
		t.Fatalf("fronts cover %d of %d points", len(seen), len(objs))
	}
	// No point in front k may dominate a point in front j<k, and every
	// front must be internally non-dominated.
	for k, f := range fronts {
		for _, i := range f {
			for _, j := range f {
				if i != j && Dominates(objs[i], objs[j]) {
					t.Fatalf("front %d not mutually non-dominated", k)
				}
			}
		}
	}
}

func TestCrowdingBoundariesInfinite(t *testing.T) {
	objs := [][]float64{{1, 4}, {2, 3}, {3, 2}, {4, 1}}
	front := []int{0, 1, 2, 3}
	d := Crowding(objs, front)
	if !math.IsInf(d[0], 1) || !math.IsInf(d[3], 1) {
		t.Errorf("boundary crowding = %v, want +Inf at ends", d)
	}
	if math.IsInf(d[1], 1) || d[1] <= 0 {
		t.Errorf("interior crowding = %v, want finite positive", d[1])
	}
}

func TestCrowdingUniformSpacingEqual(t *testing.T) {
	objs := [][]float64{{0, 4}, {1, 3}, {2, 2}, {3, 1}, {4, 0}}
	d := Crowding(objs, []int{0, 1, 2, 3, 4})
	if math.Abs(d[1]-d[2]) > 1e-12 || math.Abs(d[2]-d[3]) > 1e-12 {
		t.Errorf("uniform spacing should give equal interior crowding: %v", d)
	}
}

func TestCrowdingEmptyFront(t *testing.T) {
	if d := Crowding(nil, nil); len(d) != 0 {
		t.Errorf("empty front crowding = %v", d)
	}
}

func TestHypervolume2D(t *testing.T) {
	ref := []float64{4, 4}
	// Single point: rectangle area.
	if got := Hypervolume([][]float64{{2, 2}}, ref); got != 4 {
		t.Errorf("HV single = %v, want 4", got)
	}
	// Two staircase points: union area = 2x1 + 1x2 joint handling.
	pts := [][]float64{{1, 3}, {3, 1}}
	// Union: (4-1)*(4-3)=3 plus (4-3)*(3-1)=2 -> 5
	if got := Hypervolume(pts, ref); got != 5 {
		t.Errorf("HV staircase = %v, want 5", got)
	}
	// Dominated point adds nothing.
	if got := Hypervolume(append(pts, []float64{3, 3}), ref); got != 5 {
		t.Errorf("HV with dominated = %v, want 5", got)
	}
	// Point outside the reference box contributes nothing.
	if got := Hypervolume([][]float64{{5, 5}}, ref); got != 0 {
		t.Errorf("HV outside = %v, want 0", got)
	}
}

func TestHypervolume1D(t *testing.T) {
	if got := Hypervolume([][]float64{{2}, {3}}, []float64{10}); got != 8 {
		t.Errorf("HV 1D = %v, want 8", got)
	}
}

func TestHypervolume3DBox(t *testing.T) {
	ref := []float64{2, 2, 2}
	if got := Hypervolume([][]float64{{0, 0, 0}}, ref); math.Abs(got-8) > 1e-12 {
		t.Errorf("HV cube = %v, want 8", got)
	}
	// Two disjoint-ish boxes: exact union of {1,0,0} and {0,1,1}:
	// vol(A)= (2-1)*2*2 = 4; vol(B)= 2*1*1 = 2; intersection = 1*1*1 = 1
	got := Hypervolume([][]float64{{1, 0, 0}, {0, 1, 1}}, ref)
	if math.Abs(got-5) > 1e-12 {
		t.Errorf("HV union = %v, want 5", got)
	}
}

func TestHypervolume3DMatchesMonteCarlo(t *testing.T) {
	r := rng.New(7)
	pts := make([][]float64, 8)
	for i := range pts {
		pts[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
	}
	ref := []float64{1, 1, 1}
	exact := Hypervolume(pts, ref)
	const n = 200000
	hit := 0
	for i := 0; i < n; i++ {
		x := []float64{r.Float64(), r.Float64(), r.Float64()}
		for _, p := range pts {
			if p[0] <= x[0] && p[1] <= x[1] && p[2] <= x[2] {
				hit++
				break
			}
		}
	}
	mc := float64(hit) / n
	if math.Abs(exact-mc) > 0.01 {
		t.Errorf("HV exact %v vs Monte-Carlo %v", exact, mc)
	}
}

func TestContribution(t *testing.T) {
	ref := []float64{4, 4}
	pts := [][]float64{{1, 3}, {3, 1}}
	c := Contribution(pts, ref)
	// Each exclusive region is 5 - area(other alone) = 5-3 = 2... area
	// of {1,3} alone = 3, {3,1} alone = 3; contributions 2 each.
	if math.Abs(c[0]-2) > 1e-12 || math.Abs(c[1]-2) > 1e-12 {
		t.Errorf("contributions = %v, want [2 2]", c)
	}
	// A dominated point contributes zero.
	c = Contribution([][]float64{{1, 1}, {2, 2}}, ref)
	if c[1] != 0 {
		t.Errorf("dominated contribution = %v, want 0", c[1])
	}
	// Singleton: full volume.
	c = Contribution([][]float64{{2, 2}}, ref)
	if c[0] != 4 {
		t.Errorf("singleton contribution = %v, want 4", c[0])
	}
}

func TestFitnessFeasibleVsInfeasible(t *testing.T) {
	ref := []float64{4, 4}
	if got := Fitness([]float64{2, 2}, ref); got != 4 {
		t.Errorf("feasible fitness = %v, want 4", got)
	}
	// One dimension violated: negative area of the excess.
	if got := Fitness([]float64{6, 2}, ref); got != -2 {
		t.Errorf("infeasible fitness = %v, want -2", got)
	}
	// Both violated: product of excesses, negative.
	if got := Fitness([]float64{6, 5}, ref); got != -2 {
		t.Errorf("doubly infeasible fitness = %v, want -2", got)
	}
	// Deeper violation scores worse.
	if Fitness([]float64{8, 2}, ref) >= Fitness([]float64{5, 2}, ref) {
		t.Error("deeper violation should score worse")
	}
}

func TestArchiveBasics(t *testing.T) {
	a := NewArchive(0)
	if !a.Add([]float64{2, 2}, "p1") {
		t.Fatal("first add rejected")
	}
	if a.Add([]float64{3, 3}, "p2") {
		t.Error("dominated point accepted")
	}
	if a.Add([]float64{2, 2}, "dup") {
		t.Error("duplicate point accepted")
	}
	if !a.Add([]float64{1, 3}, "p3") {
		t.Error("non-dominated point rejected")
	}
	if !a.Add([]float64{1, 1}, "p4") {
		t.Error("dominating point rejected")
	}
	// p4 dominates both remaining points.
	if a.Len() != 1 {
		t.Errorf("archive len = %d, want 1", a.Len())
	}
	if a.Payloads()[0] != "p4" {
		t.Errorf("payload = %v, want p4", a.Payloads()[0])
	}
}

func TestArchiveCapacityEviction(t *testing.T) {
	a := NewArchive(3)
	// Insert 5 mutually non-dominated points.
	pts := [][]float64{{0, 10}, {10, 0}, {5, 5}, {2, 8}, {8, 2}}
	for i, p := range pts {
		a.Add(p, i)
	}
	if a.Len() != 3 {
		t.Fatalf("archive len = %d, want capacity 3", a.Len())
	}
	// The extreme points (0,10) and (10,0) must survive (infinite
	// crowding distance).
	hasExtreme := func(want []float64) bool {
		for _, o := range a.Objectives() {
			if o[0] == want[0] && o[1] == want[1] {
				return true
			}
		}
		return false
	}
	if !hasExtreme([]float64{0, 10}) || !hasExtreme([]float64{10, 0}) {
		t.Errorf("boundary points evicted: %v", a.Objectives())
	}
}

func TestArchiveStoresCopies(t *testing.T) {
	a := NewArchive(0)
	obj := []float64{1, 2}
	a.Add(obj, nil)
	obj[0] = 99
	if a.Objectives()[0][0] != 1 {
		t.Error("archive must copy objective vectors")
	}
}

// Property: the Pareto front returned by NonDominated is internally
// non-dominated and every excluded point is dominated by some member.
func TestQuickNonDominatedCorrect(t *testing.T) {
	r := rng.New(3)
	f := func(n uint8) bool {
		m := int(n%40) + 1
		objs := make([][]float64, m)
		for i := range objs {
			objs[i] = []float64{r.Float64(), r.Float64()}
		}
		front := NonDominated(objs)
		inFront := map[int]bool{}
		for _, i := range front {
			inFront[i] = true
		}
		for _, i := range front {
			for _, j := range front {
				if i != j && Dominates(objs[i], objs[j]) {
					return false
				}
			}
		}
		for i := range objs {
			if inFront[i] {
				continue
			}
			dominated := false
			for _, j := range front {
				if Dominates(objs[j], objs[i]) {
					dominated = true
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: hyper-volume is monotone — adding a point never decreases
// it — and bounded by the reference box volume.
func TestQuickHypervolumeMonotone(t *testing.T) {
	r := rng.New(4)
	f := func(n uint8) bool {
		m := int(n%10) + 1
		ref := []float64{1, 1, 1}
		var pts [][]float64
		prev := 0.0
		for i := 0; i < m; i++ {
			pts = append(pts, []float64{r.Float64(), r.Float64(), r.Float64()})
			cur := Hypervolume(pts, ref)
			if cur+1e-12 < prev || cur > 1+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: HV computed in 2-D equals HV computed by embedding the
// same points in 3-D with a dummy dimension.
func TestQuickHypervolumeDimensionConsistency(t *testing.T) {
	r := rng.New(5)
	f := func(n uint8) bool {
		m := int(n%8) + 1
		pts2 := make([][]float64, m)
		pts3 := make([][]float64, m)
		for i := range pts2 {
			x, y := r.Float64(), r.Float64()
			pts2[i] = []float64{x, y}
			pts3[i] = []float64{x, y, 0}
		}
		a := Hypervolume(pts2, []float64{1, 1})
		b := Hypervolume(pts3, []float64{1, 1, 1})
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
