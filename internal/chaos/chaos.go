// Package chaos is a deterministic fault-injection layer for the
// fleet decision service. The paper's premise is that reliability must
// be designed in across layers; chaos closes the loop on our own
// serving stack by making the faults the fleet layer is supposed to
// mask — dropped requests, latency spikes, truncated or malformed
// JSON bodies, stalled per-device decision paths, corrupted database
// entries — injectable, seeded and reproducible.
//
// Fault decisions are a pure function of (seed, scope, key, ordinal):
// every injection point derives its verdict from the configured seed,
// the injection scope (transport, server, decide), a stable key (the
// request path or device ID) and a per-key ordinal that counts
// operations on that key. Two runs with the same seed and the same
// per-key operation order therefore inject the identical fault
// schedule, which is what lets the soak test assert that retry-masked
// faults leave decisions byte-identical to a fault-free run.
package chaos

import (
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"clrdse/internal/rng"
)

// Kind enumerates the injectable fault classes across the stack's
// layers: the client transport, the server's HTTP front, and the
// per-device decision path.
type Kind int

const (
	// None means the operation proceeds unfaulted.
	None Kind = iota
	// DropRequest fails a client request before it is sent; the
	// server never sees it, so a retry is always safe.
	DropRequest
	// Latency delays a client request before it is sent.
	Latency
	// DropResponse sends the request, then discards the response —
	// the server has processed the event, so only sequence-number
	// deduplication makes the retry safe.
	DropResponse
	// TruncateResponse cuts the response body in half, yielding an
	// undecodable JSON document.
	TruncateResponse
	// MangleResponse overwrites the response body's first byte,
	// yielding a malformed JSON document.
	MangleResponse
	// Reject answers a request with 503 before the handler runs.
	Reject
	// ServerLatency delays a request server-side before the handler.
	ServerLatency
	// Stall sleeps inside the device's decision path while holding
	// the device lock (a wedged manager); when the sleep outlives the
	// decision deadline the server degrades to last known-good.
	Stall
	// Corrupt simulates reading a corrupted stored database entry in
	// the decision path; the server degrades to last known-good.
	Corrupt
	numKinds int = iota
)

// String names the fault kind for logs and reports.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case DropRequest:
		return "drop-request"
	case Latency:
		return "latency"
	case DropResponse:
		return "drop-response"
	case TruncateResponse:
		return "truncate-response"
	case MangleResponse:
		return "mangle-response"
	case Reject:
		return "reject"
	case ServerLatency:
		return "server-latency"
	case Stall:
		return "stall"
	case Corrupt:
		return "corrupt"
	}
	return "unknown"
}

// Scope identifies the layer an injection point lives in; each scope
// samples only its own fault kinds, with its own ordinal space.
type Scope int

const (
	// ScopeTransport faults client-side HTTP round trips.
	ScopeTransport Scope = iota
	// ScopeServer faults the server's HTTP front.
	ScopeServer
	// ScopeDecide faults the per-device decision path.
	ScopeDecide
)

func (s Scope) String() string {
	switch s {
	case ScopeTransport:
		return "transport"
	case ScopeServer:
		return "server"
	case ScopeDecide:
		return "decide"
	}
	return "unknown"
}

// ErrCorruptEntry is the decision-path error simulating a corrupted
// stored database entry.
var ErrCorruptEntry = errors.New("chaos: corrupted database entry")

// Fault is one sampled injection verdict.
type Fault struct {
	// Kind selects the failure; None means proceed.
	Kind Kind
	// Delay is the injected delay for Latency, ServerLatency and
	// Stall faults.
	Delay time.Duration
}

// Config sets the per-kind injection probabilities. Within one scope
// the probabilities must sum to at most 1 (at most one fault per
// operation); a zero Config injects nothing.
type Config struct {
	// Seed drives every fault decision; equal seeds reproduce the
	// identical schedule.
	Seed int64

	// Transport-scope probabilities.
	PDropRequest, PLatency, PDropResponse float64
	PTruncateResponse, PMangleResponse    float64
	// LatencyMin/Max bound injected transport and server delays.
	LatencyMin, LatencyMax time.Duration

	// Server-scope probabilities.
	PReject, PServerLatency float64

	// Decide-scope probabilities.
	PStall, PCorrupt float64
	// StallMin/Max bound the injected decision-path stall.
	StallMin, StallMax time.Duration
}

// Injector samples faults deterministically and counts what it
// injected. It is safe for concurrent use.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	ordinals map[string]uint64

	counts [numKinds]atomic.Uint64
}

// New returns an injector for the configuration.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, ordinals: make(map[string]uint64)}
}

// Sample draws the fault verdict for the next operation on (scope,
// key), advancing the key's ordinal. The verdict for ordinal n is a
// pure function of (seed, scope, key, n).
func (in *Injector) Sample(scope Scope, key string) Fault {
	full := scope.String() + "|" + key
	in.mu.Lock()
	n := in.ordinals[full]
	in.ordinals[full] = n + 1
	in.mu.Unlock()
	f := in.FaultAt(scope, key, n)
	in.counts[f.Kind].Add(1)
	return f
}

// FaultAt returns the verdict for the n-th operation on (scope, key)
// without advancing any state.
func (in *Injector) FaultAt(scope Scope, key string, n uint64) Fault {
	h := fnv.New64a()
	h.Write([]byte(scope.String()))
	h.Write([]byte{'|'})
	h.Write([]byte(key))
	src := rng.New(in.cfg.Seed ^ int64(h.Sum64()>>1)).Split(int64(n))
	u := src.Float64()

	pick := func(kinds []Kind, probs []float64) Kind {
		for i, p := range probs {
			if u < p {
				return kinds[i]
			}
			u -= p
		}
		return None
	}
	var k Kind
	switch scope {
	case ScopeTransport:
		k = pick(
			[]Kind{DropRequest, Latency, DropResponse, TruncateResponse, MangleResponse},
			[]float64{in.cfg.PDropRequest, in.cfg.PLatency, in.cfg.PDropResponse,
				in.cfg.PTruncateResponse, in.cfg.PMangleResponse})
	case ScopeServer:
		k = pick([]Kind{Reject, ServerLatency}, []float64{in.cfg.PReject, in.cfg.PServerLatency})
	case ScopeDecide:
		k = pick([]Kind{Stall, Corrupt}, []float64{in.cfg.PStall, in.cfg.PCorrupt})
	}
	f := Fault{Kind: k}
	switch k {
	case Latency, ServerLatency:
		f.Delay = sampleDelay(src, in.cfg.LatencyMin, in.cfg.LatencyMax)
	case Stall:
		f.Delay = sampleDelay(src, in.cfg.StallMin, in.cfg.StallMax)
	}
	return f
}

func sampleDelay(src *rng.Source, min, max time.Duration) time.Duration {
	if max <= min {
		return min
	}
	return min + time.Duration(src.Range(0, float64(max-min)))
}

// Count reports how many faults of the kind have been injected.
func (in *Injector) Count(k Kind) uint64 { return in.counts[k].Load() }

// Injected reports the total number of non-None faults injected.
func (in *Injector) Injected() uint64 {
	var total uint64
	for k := 1; k < numKinds; k++ {
		total += in.counts[k].Load()
	}
	return total
}
