package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestInjectorDeterministic: equal seeds must reproduce the identical
// fault schedule — the property the soak test's byte-identical
// assertion rests on.
func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{
		Seed:         42,
		PDropRequest: 0.2, PLatency: 0.2, PDropResponse: 0.1,
		PTruncateResponse: 0.1, PMangleResponse: 0.1,
		LatencyMin: time.Millisecond, LatencyMax: 5 * time.Millisecond,
		PReject: 0.3, PServerLatency: 0.2,
		PStall: 0.3, PCorrupt: 0.3,
		StallMin: time.Millisecond, StallMax: 2 * time.Millisecond,
	}
	a, b := New(cfg), New(cfg)
	for _, scope := range []Scope{ScopeTransport, ScopeServer, ScopeDecide} {
		for _, key := range []string{"dev-0", "dev-1", "POST /v1/devices/x/qos"} {
			for n := 0; n < 200; n++ {
				fa, fb := a.Sample(scope, key), b.Sample(scope, key)
				if fa != fb {
					t.Fatalf("%v/%s/#%d: %v != %v", scope, key, n, fa, fb)
				}
			}
		}
	}
	if a.Injected() != b.Injected() {
		t.Fatalf("injected counts diverge: %d != %d", a.Injected(), b.Injected())
	}
	if a.Injected() == 0 {
		t.Fatal("no faults injected at these probabilities")
	}
}

// TestInjectorFaultAtPure: FaultAt must not advance state, and must
// agree with what Sample returned for the same ordinal.
func TestInjectorFaultAtPure(t *testing.T) {
	in := New(Config{Seed: 7, PStall: 0.5, PCorrupt: 0.3,
		StallMin: time.Millisecond, StallMax: time.Millisecond})
	var sampled []Fault
	for n := 0; n < 50; n++ {
		sampled = append(sampled, in.Sample(ScopeDecide, "dev"))
	}
	for n, want := range sampled {
		for rep := 0; rep < 3; rep++ { // idempotent
			if got := in.FaultAt(ScopeDecide, "dev", uint64(n)); got != want {
				t.Fatalf("FaultAt(#%d) = %v, Sample gave %v", n, got, want)
			}
		}
	}
}

// TestInjectorKeyIsolation: distinct keys draw from independent
// streams; one key's schedule is unchanged by traffic on another.
func TestInjectorKeyIsolation(t *testing.T) {
	cfg := Config{Seed: 3, PCorrupt: 0.5}
	solo := New(cfg)
	var want []Fault
	for n := 0; n < 100; n++ {
		want = append(want, solo.Sample(ScopeDecide, "dev-a"))
	}
	mixed := New(cfg)
	for n := 0; n < 100; n++ {
		mixed.Sample(ScopeDecide, "dev-b") // interleaved foreign traffic
		if got := mixed.Sample(ScopeDecide, "dev-a"); got != want[n] {
			t.Fatalf("dev-a #%d perturbed by dev-b traffic: %v != %v", n, got, want[n])
		}
	}
}

// TestInjectorProbabilityBounds: p=0 never fires, p=1 always fires.
func TestInjectorProbabilityBounds(t *testing.T) {
	never := New(Config{Seed: 1})
	for n := 0; n < 500; n++ {
		if f := never.Sample(ScopeTransport, "k"); f.Kind != None {
			t.Fatalf("zero config injected %v", f.Kind)
		}
	}
	always := New(Config{Seed: 1, PReject: 1})
	for n := 0; n < 500; n++ {
		if f := always.Sample(ScopeServer, "k"); f.Kind != Reject {
			t.Fatalf("p=1 sampled %v", f.Kind)
		}
	}
	if got := always.Count(Reject); got != 500 {
		t.Fatalf("Count(Reject) = %d, want 500", got)
	}
}

// fakeRT answers every request with a fixed JSON body.
type fakeRT struct {
	calls int
	body  string
}

func (f *fakeRT) RoundTrip(*http.Request) (*http.Response, error) {
	f.calls++
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader(f.body)),
		Header:     make(http.Header),
	}, nil
}

func transportFault(t *testing.T, kind Kind) (*fakeRT, *http.Response, error) {
	t.Helper()
	cfg := Config{Seed: 1}
	switch kind {
	case DropRequest:
		cfg.PDropRequest = 1
	case DropResponse:
		cfg.PDropResponse = 1
	case TruncateResponse:
		cfg.PTruncateResponse = 1
	case MangleResponse:
		cfg.PMangleResponse = 1
	}
	base := &fakeRT{body: `{"from":1,"to":2}`}
	tr := &Transport{Injector: New(cfg), Base: base}
	req, _ := http.NewRequest(http.MethodPost, "http://x/v1/devices/d/qos", nil)
	resp, err := tr.RoundTrip(req)
	return base, resp, err
}

func TestTransportDropRequest(t *testing.T) {
	base, _, err := transportFault(t, DropRequest)
	if err == nil {
		t.Fatal("dropped request returned no error")
	}
	if base.calls != 0 {
		t.Fatalf("dropped request reached the server (%d calls)", base.calls)
	}
}

func TestTransportDropResponse(t *testing.T) {
	base, _, err := transportFault(t, DropResponse)
	if err == nil {
		t.Fatal("dropped response returned no error")
	}
	if base.calls != 1 {
		t.Fatalf("server saw %d calls, want 1 (the server did process it)", base.calls)
	}
}

func TestTransportCorruptsBody(t *testing.T) {
	for _, kind := range []Kind{TruncateResponse, MangleResponse} {
		_, resp, err := transportFault(t, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var v struct{ From, To int }
		if jerr := json.Unmarshal(body, &v); jerr == nil {
			t.Fatalf("%v: body still decodes: %q", kind, body)
		}
	}
}

func TestMiddlewareReject(t *testing.T) {
	in := New(Config{Seed: 1, PReject: 1})
	inner := 0
	h := in.Middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) { inner++ }))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/databases", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if inner != 0 {
		t.Fatal("rejected request reached the handler")
	}
}

func TestDecideHookCorrupt(t *testing.T) {
	hook := New(Config{Seed: 1, PCorrupt: 1}).DecideHook()
	if err := hook(context.Background(), "dev", 1); !errors.Is(err, ErrCorruptEntry) {
		t.Fatalf("err = %v, want ErrCorruptEntry", err)
	}
}

func TestDecideHookStallRespectsDeadline(t *testing.T) {
	hook := New(Config{Seed: 1, PStall: 1,
		StallMin: time.Minute, StallMax: time.Minute}).DecideHook()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := hook(ctx, "dev", 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall ignored the deadline (%v)", elapsed)
	}
}
