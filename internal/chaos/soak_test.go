package chaos_test

// The chaos soak: the same fleet of devices replays the same QoS event
// scripts twice — once fault-free, once under the full fault schedule
// (transport drops, corrupted bodies, server rejections, stalled and
// corrupted decision paths) — and the resilience invariants must hold:
//
//  1. no device state is lost: every device is still registered and
//     its manager processed exactly its events,
//  2. every QoS event is eventually answered with a real decision,
//  3. the accepted decisions are byte-identical to the fault-free run
//     (retries mask faults; they never change outcomes),
//  4. the decision journal is complete: every (device, seq) decided
//     appears exactly once as a non-degraded entry, under a valid
//     trace ID — at-least-once delivery, exactly-once explanation.
//
// On failure the journal is dumped as JSON to the path named by the
// OBS_JOURNAL_ARTIFACT environment variable (CI uploads it).
//
// Everything is seeded: the event scripts, the client's retry jitter
// and the fault schedule, so a failure reproduces exactly.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"clrdse/internal/chaos"
	"clrdse/internal/fleet"
	"clrdse/internal/fleet/client"
	"clrdse/internal/fleet/fleettest"
	"clrdse/internal/obs"
	"clrdse/internal/rng"
	"clrdse/internal/runtime"
)

type soakSize struct {
	devices, events int
}

func soakDims(t *testing.T) soakSize {
	if testing.Short() {
		return soakSize{devices: 4, events: 12}
	}
	return soakSize{devices: 8, events: 30}
}

const (
	soakSpecSeed  = 7
	soakChaosSeed = 99
	soakDecideTO  = 200 * time.Millisecond
	soakRounds    = 64
)

// soakPass drives every device through its script against a fresh
// server, injecting faults when inj is non-nil, and returns the
// accepted decisions, the per-device server-side stats and the
// server's decision-journal snapshot.
func soakPass(t *testing.T, dims soakSize, inj *chaos.Injector) ([][]string, []*fleet.DeviceInfo, []obs.Entry) {
	t.Helper()
	cfg := fleet.ServerConfig{
		Databases:     fleettest.Databases(t),
		DecideTimeout: soakDecideTO,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	if inj != nil {
		cfg.DecideHook = inj.DecideHook()
	}
	srv, err := fleet.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	handler := srv.Handler()
	if inj != nil {
		handler = inj.Middleware(handler)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	var rt http.RoundTripper = ts.Client().Transport
	if inj != nil {
		rt = &chaos.Transport{Injector: inj, Base: rt}
	}
	c := client.New(client.Config{
		BaseURL:        ts.URL,
		Transport:      rt,
		MaxAttempts:    6,
		AttemptTimeout: 2 * time.Second,
		JitterSeed:     soakSpecSeed,
		RetryDegraded:  true,
		// The soak injects 503s on purpose; an eager breaker would only
		// add rejection noise between retries.
		BreakerThreshold: 1 << 20,
	})
	ctx := context.Background()

	dbs := cfg.Databases
	db := dbs[0]
	boot := fleettest.LooseSpec(db.DB)
	for d := 0; d < dims.devices; d++ {
		_, err := c.Register(ctx, fleet.RegisterRequest{
			ID:       fmt.Sprintf("soak-%d", d),
			Database: db.Name,
			PRC:      0.5,
			Trigger:  "on-violation",
			Initial:  fleet.QoSSpecJSON{SMaxMs: boot.SMaxMs, FMin: boot.FMin},
		})
		if err != nil {
			t.Fatalf("register soak-%d: %v", d, err)
		}
	}

	// Per-device deterministic scripts, derived before the workers
	// start so they are a pure function of the seed.
	root := rng.New(soakSpecSeed)
	scripts := make([][]runtime.QoSSpec, dims.devices)
	for d := range scripts {
		src := root.Split(int64(d))
		model := runtime.ModelFromDatabase(db.DB)
		stream := model.Stream()
		scripts[d] = make([]runtime.QoSSpec, dims.events)
		for i := range scripts[d] {
			scripts[d][i] = stream.Next(src)
		}
	}

	decisions := make([][]string, dims.devices)
	errs := make([]error, dims.devices)
	var wg sync.WaitGroup
	for d := 0; d < dims.devices; d++ {
		decisions[d] = make([]string, dims.events)
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			id := fmt.Sprintf("soak-%d", d)
			for i, spec := range scripts[d] {
				wire := fleet.QoSSpecJSON{SMaxMs: spec.SMaxMs, FMin: spec.FMin}
				var dec *fleet.DecisionJSON
				var err error
				// Re-submit with the same sequence number until a real
				// decision lands; the server decides each seq at most
				// once, so this is at-least-once delivery with
				// exactly-once decisions.
				for round := 0; round < soakRounds; round++ {
					dec, err = c.QoS(ctx, id, uint64(i+1), wire)
					if err == nil {
						break
					}
				}
				if err != nil {
					errs[d] = fmt.Errorf("%s event %d: %w", id, i+1, err)
					return
				}
				b, merr := json.Marshal(dec)
				if merr != nil {
					errs[d] = merr
					return
				}
				decisions[d][i] = string(b)
			}
		}(d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	infos := make([]*fleet.DeviceInfo, dims.devices)
	for d := range infos {
		info, err := srv.Registry().Get(fmt.Sprintf("soak-%d", d))
		if err != nil {
			t.Fatalf("device soak-%d lost: %v", d, err)
		}
		infos[d] = info
	}
	return decisions, infos, srv.Registry().Decisions("", 0)
}

// checkJournal asserts soak invariant 4 over one pass's journal.
// wantDegraded bounds the degraded entries: the fault-free pass must
// have none.
func checkJournal(t *testing.T, name string, dims soakSize, entries []obs.Entry, wantDegraded bool) {
	t.Helper()
	type key struct {
		dev string
		seq uint64
	}
	decided := make(map[key]int)
	degraded := 0
	for _, e := range entries {
		if !e.TraceID.IsValid() {
			t.Errorf("%s: journal entry %s/%d carries invalid trace ID %q",
				name, e.Device, e.Seq, e.TraceID)
		}
		if e.Degraded {
			degraded++
			continue
		}
		decided[key{e.Device, e.Seq}]++
	}
	for d := 0; d < dims.devices; d++ {
		id := fmt.Sprintf("soak-%d", d)
		for i := 1; i <= dims.events; i++ {
			if n := decided[key{id, uint64(i)}]; n != 1 {
				t.Errorf("%s: decision %s seq %d journaled %d times, want exactly once", name, id, i, n)
			}
		}
	}
	if extra := len(decided) - dims.devices*dims.events; extra > 0 {
		t.Errorf("%s: journal holds %d decisions beyond the script", name, extra)
	}
	if !wantDegraded && degraded > 0 {
		t.Errorf("%s: fault-free journal holds %d degraded entries", name, degraded)
	}
}

// dumpJournal writes the journal to OBS_JOURNAL_ARTIFACT (when set)
// so CI can attach it to a failing run.
func dumpJournal(t *testing.T, entries []obs.Entry) {
	path := os.Getenv("OBS_JOURNAL_ARTIFACT")
	if path == "" {
		return
	}
	b, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Errorf("marshalling journal artifact: %v", err)
		return
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Errorf("writing journal artifact: %v", err)
		return
	}
	t.Logf("decision journal (%d entries) written to %s", len(entries), path)
}

func TestChaosSoak(t *testing.T) {
	dims := soakDims(t)

	ref, _, refJournal := soakPass(t, dims, nil)

	inj := chaos.New(chaos.Config{
		Seed:              soakChaosSeed,
		PDropRequest:      0.05,
		PLatency:          0.05,
		PDropResponse:     0.05,
		PTruncateResponse: 0.04,
		PMangleResponse:   0.04,
		LatencyMin:        time.Millisecond,
		LatencyMax:        5 * time.Millisecond,
		PReject:           0.06,
		PServerLatency:    0.05,
		PStall:            0.05,
		PCorrupt:          0.05,
		StallMin:          2 * soakDecideTO,
		StallMax:          3 * soakDecideTO,
	})
	cha, infos, chaJournal := soakPass(t, dims, inj)

	if inj.Injected() == 0 {
		t.Fatal("chaos pass injected no faults; the soak tested nothing")
	}

	// Invariant 1: no lost device state — each device's manager
	// processed exactly its events, every sequence number once.
	var replays, degraded int64
	for d, info := range infos {
		if info.Stats.Decisions != int64(dims.events) {
			t.Errorf("device %d decided %d events, want %d",
				d, info.Stats.Decisions, dims.events)
		}
		replays += info.Stats.Replays
		degraded += info.Stats.Degraded
	}

	// Invariants 2 and 3: every event answered, byte-identical to the
	// fault-free reference.
	for d := 0; d < dims.devices; d++ {
		for i := 0; i < dims.events; i++ {
			if cha[d][i] == "" {
				t.Errorf("device %d event %d never answered", d, i+1)
				continue
			}
			if ref[d][i] != cha[d][i] {
				t.Errorf("device %d event %d diverged under chaos:\nref:   %s\nchaos: %s",
					d, i+1, ref[d][i], cha[d][i])
			}
		}
	}

	// Invariant 4: both journals are complete — and under chaos, the
	// journal explains every decision exactly once even though the
	// wire saw retries, replays and degraded answers.
	checkJournal(t, "fault-free", dims, refJournal, false)
	checkJournal(t, "chaos", dims, chaJournal, true)
	if t.Failed() {
		dumpJournal(t, chaJournal)
	}

	t.Logf("faults=%d replays=%d degraded=%d journal=%d",
		inj.Injected(), replays, degraded, len(chaJournal))
}

// TestChaosSoakReproducible: the fault schedule itself is seeded — two
// injectors with the soak's configuration must report identical
// per-kind counts after identical traffic. (The full soak is too
// timing-dependent for exact count equality across passes, but the
// verdict function must be pure; see TestInjectorDeterministic for the
// stream-level property.)
func TestChaosSoakReproducible(t *testing.T) {
	cfg := chaos.Config{Seed: soakChaosSeed, PReject: 0.3, PServerLatency: 0.1}
	a, b := chaos.New(cfg), chaos.New(cfg)
	for n := 0; n < 1000; n++ {
		fa := a.Sample(chaos.ScopeServer, "POST /v1/devices/soak-0/qos")
		fb := b.Sample(chaos.ScopeServer, "POST /v1/devices/soak-0/qos")
		if fa != fb {
			t.Fatalf("fault schedule not reproducible at #%d: %v != %v", n, fa, fb)
		}
	}
}
