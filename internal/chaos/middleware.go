package chaos

// Server-side fault injection: an HTTP middleware that rejects or
// delays requests before the handler runs, and a decision-path hook
// that stalls or corrupts a device's decision inside the registry.
// Both fault points sit *before* any device state changes, so a
// faulted operation never half-applies: the server either processed an
// event exactly once or not at all.

import (
	"context"
	"net/http"
	"time"
)

// Middleware wraps an HTTP handler with server-scope fault injection
// keyed by the request's method and path.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f := in.Sample(ScopeServer, r.Method+" "+r.URL.Path)
		switch f.Kind {
		case Reject:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"chaos: rejected"}`))
			return
		case ServerLatency:
			select {
			case <-time.After(f.Delay):
			case <-r.Context().Done():
				return // client gone; nothing to answer
			}
		}
		next.ServeHTTP(w, r)
	})
}

// DecideHook returns a fault hook for the fleet registry's decision
// path (fleet.DecideHook-shaped). Stalls sleep while respecting the
// decision deadline — a stall that outlives ctx surfaces as ctx.Err(),
// which the registry answers with its last known-good configuration.
// Corruptions surface as ErrCorruptEntry. Faults are keyed per device,
// so one wedged device never perturbs another device's schedule.
func (in *Injector) DecideHook() func(ctx context.Context, device string, seq uint64) error {
	return func(ctx context.Context, device string, _ uint64) error {
		f := in.Sample(ScopeDecide, device)
		switch f.Kind {
		case Stall:
			select {
			case <-time.After(f.Delay):
			case <-ctx.Done():
				return ctx.Err()
			}
		case Corrupt:
			return ErrCorruptEntry
		}
		return nil
	}
}
