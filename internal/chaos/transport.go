package chaos

// Client-side fault injection: an http.RoundTripper that wraps a real
// transport and, per request, may drop the request before it is sent,
// delay it, discard the response after the server has processed it, or
// corrupt the response body (truncation, malformed JSON). Requests on
// the same path draw from the same deterministic fault stream, so a
// client that issues its requests for one path sequentially sees a
// reproducible schedule.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Transport injects transport-scope faults around base. A nil base
// selects http.DefaultTransport.
type Transport struct {
	Injector *Injector
	Base     http.RoundTripper
}

// RoundTrip implements http.RoundTripper with fault injection keyed by
// the request's method and path.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	f := t.Injector.Sample(ScopeTransport, req.Method+" "+req.URL.Path)
	switch f.Kind {
	case DropRequest:
		return nil, fmt.Errorf("chaos: request dropped (%s %s)", req.Method, req.URL.Path)
	case Latency:
		select {
		case <-time.After(f.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	resp, err := base.RoundTrip(req)
	if err != nil || f.Kind == None || f.Kind == DropRequest || f.Kind == Latency {
		return resp, err
	}
	switch f.Kind {
	case DropResponse:
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("chaos: response dropped (%s %s)", req.Method, req.URL.Path)
	case TruncateResponse, MangleResponse:
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if f.Kind == TruncateResponse {
			// A JSON document cut anywhere before its closing brace is
			// undecodable, so the client's decode-and-retry path fires.
			body = body[:len(body)/2]
		} else if len(body) > 0 {
			body[0] = 'X' // guaranteed-invalid JSON start
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}
