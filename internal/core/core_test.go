package core

import (
	"sync"
	"testing"

	"clrdse/internal/dse"
	"clrdse/internal/ga"
	"clrdse/internal/platform"
	"clrdse/internal/relmodel"
	"clrdse/internal/runtime"
	"clrdse/internal/taskgraph"
)

func smallOpts(seed int64) Options {
	return Options{
		Seed:     seed,
		StageOne: ga.Params{PopSize: 24, Generations: 10},
		ReD:      dse.ReDParams{GA: ga.Params{PopSize: 16, Generations: 8}, MaxExtraPerSeed: 2},
	}
}

var (
	sysOnce sync.Once
	sysFix  *System
	sysErr  error
)

func builtSystem(t *testing.T) *System {
	t.Helper()
	sysOnce.Do(func() {
		app, err := taskgraph.Generate(taskgraph.GenParams{Seed: 61, NumTasks: 20}, platform.Default())
		if err != nil {
			sysErr = err
			return
		}
		sysFix, sysErr = Build(app, smallOpts(1))
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysFix
}

func TestBuildFullFlow(t *testing.T) {
	sys := builtSystem(t)
	if sys.BaseD.Len() == 0 {
		t.Fatal("empty BaseD")
	}
	if sys.ReD == nil {
		t.Fatal("ReD stage skipped unexpectedly")
	}
	if sys.ReD.Len() < sys.BaseD.Len() {
		t.Error("ReD smaller than BaseD")
	}
	if sys.Database() != sys.ReD {
		t.Error("Database() should prefer ReD")
	}
	if sys.Problem.SMaxMs != sys.App.PeriodMs {
		t.Errorf("default SMax = %v, want period %v", sys.Problem.SMaxMs, sys.App.PeriodMs)
	}
	if sys.Problem.FMin != 0.90 {
		t.Errorf("default FMin = %v, want 0.90", sys.Problem.FMin)
	}
}

func TestBuildSkipReD(t *testing.T) {
	app, err := taskgraph.Generate(taskgraph.GenParams{Seed: 62, NumTasks: 12}, platform.Default())
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts(2)
	opts.SkipReD = true
	sys, err := Build(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sys.ReD != nil {
		t.Error("ReD built despite SkipReD")
	}
	if sys.Database() != sys.BaseD {
		t.Error("Database() should fall back to BaseD")
	}
}

func TestBuildRejectsBadApp(t *testing.T) {
	if _, err := Build(nil, smallOpts(3)); err == nil {
		t.Error("Build accepted nil app")
	}
	bad := &taskgraph.Graph{Name: "bad"}
	if _, err := Build(bad, smallOpts(3)); err == nil {
		t.Error("Build accepted invalid app")
	}
}

func TestRuntimeParamsWired(t *testing.T) {
	sys := builtSystem(t)
	p := sys.RuntimeParams(sys.Database(), 0.5, 9)
	p.Cycles = 20_000
	m, err := runtime.Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.Events == 0 {
		t.Error("no events simulated")
	}
}

func TestEndToEndAuRA(t *testing.T) {
	sys := builtSystem(t)
	db := sys.Database()
	ag, err := sys.PretrainedAgent(db, 0.8, 0.5, 10_000, 77)
	if err != nil {
		t.Fatal(err)
	}
	if ag.Episodes == 0 {
		t.Fatal("pretraining produced no episodes")
	}
	p := sys.RuntimeParams(db, 0.5, 78)
	p.Cycles = 20_000
	p.Agent = ag
	if _, err := runtime.Simulate(p); err != nil {
		t.Fatal(err)
	}
}

func TestRebuildWithoutPE(t *testing.T) {
	sys := builtSystem(t)
	reduced, err := sys.RebuildWithoutPE(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := reduced.Problem.Space.Platform.NumPEs(); got != platform.Default().NumPEs()-1 {
		t.Errorf("reduced platform has %d PEs", got)
	}
	if reduced.BaseD.Len() == 0 {
		t.Error("no design points on reduced platform")
	}
	for _, pt := range reduced.BaseD.Points {
		if err := reduced.Problem.Space.Validate(pt.M); err != nil {
			t.Errorf("reduced design point invalid: %v", err)
		}
	}
}

func TestRebuildWithEnv(t *testing.T) {
	sys := builtSystem(t)
	env := relmodel.DefaultEnv()
	env.LambdaSEUPerMs *= 4 // harsher radiation environment
	harsh, err := sys.RebuildWithEnv(env)
	if err != nil {
		t.Fatal(err)
	}
	// Under 4x the SEU rate the best achievable reliability drops.
	bestOld, bestNew := 0.0, 0.0
	for _, pt := range sys.BaseD.Points {
		if pt.Reliability > bestOld {
			bestOld = pt.Reliability
		}
	}
	for _, pt := range harsh.BaseD.Points {
		if pt.Reliability > bestNew {
			bestNew = pt.Reliability
		}
	}
	if bestNew >= bestOld {
		t.Errorf("best reliability should drop under 4x SEU: %v vs %v", bestNew, bestOld)
	}
}

func TestBuildDeterministic(t *testing.T) {
	app, err := taskgraph.Generate(taskgraph.GenParams{Seed: 63, NumTasks: 12}, platform.Default())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Build(app, smallOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(app, smallOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Database().Len() != b.Database().Len() {
		t.Fatal("same seed produced different databases")
	}
	for i := range a.Database().Points {
		if !a.Database().Points[i].M.Equal(b.Database().Points[i].M) {
			t.Fatal("same seed produced different design points")
		}
	}
}

func TestHeuristicSeedsImproveOrMatchFront(t *testing.T) {
	app, err := taskgraph.Generate(taskgraph.GenParams{Seed: 64, NumTasks: 25}, platform.Default())
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts(9)
	opts.SkipReD = true
	plain, err := Build(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.HeuristicSeeds = true
	seeded, err := Build(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	best := func(s *System) float64 {
		b := 0.0
		for _, p := range s.BaseD.Points {
			if b == 0 || p.EnergyMJ < b {
				b = p.EnergyMJ
			}
		}
		return b
	}
	// Seeding must not hurt the best energy found at equal budget
	// (allow a sliver of stochastic slack).
	if best(seeded) > best(plain)*1.02 {
		t.Errorf("heuristic seeding worsened best energy: %v vs %v", best(seeded), best(plain))
	}
}

func TestBuildWithExtendedCatalogue(t *testing.T) {
	// The larger method space must flow through the whole design-time
	// pipeline unchanged.
	app, err := taskgraph.Generate(taskgraph.GenParams{Seed: 65, NumTasks: 12}, platform.Default())
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts(11)
	opts.Catalogue = relmodel.ExtendedCatalogue()
	opts.SkipReD = true
	sys, err := Build(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sys.BaseD.Len() == 0 {
		t.Fatal("no points with extended catalogue")
	}
	for _, p := range sys.BaseD.Points {
		if err := sys.Problem.Space.Validate(p.M); err != nil {
			t.Fatalf("invalid point under extended catalogue: %v", err)
		}
	}
}

func TestBuildOnLargePlatform(t *testing.T) {
	plat := platform.Large()
	app, err := taskgraph.Generate(taskgraph.GenParams{Seed: 66, NumTasks: 20}, plat)
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts(12)
	opts.Platform = plat
	opts.SkipReD = true
	sys, err := Build(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sys.BaseD.Len() == 0 {
		t.Fatal("no points on the large platform")
	}
	// The larger platform's extra parallelism should allow a faster
	// best makespan than the default platform at equal budget.
	base, err := Build(app, func() Options { o := smallOpts(12); o.SkipReD = true; return o }())
	if err != nil {
		t.Fatal(err)
	}
	best := func(s *System) float64 {
		b := 0.0
		for _, p := range s.BaseD.Points {
			if b == 0 || p.MakespanMs < b {
				b = p.MakespanMs
			}
		}
		return b
	}
	if best(sys) > best(base)*1.05 {
		t.Errorf("large platform best makespan %v should not trail default %v", best(sys), best(base))
	}
}

func TestBuildReportsStats(t *testing.T) {
	app, err := taskgraph.Generate(taskgraph.GenParams{Seed: 67, NumTasks: 12}, platform.Default())
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts(13)
	stats := &dse.Stats{}
	opts.Stats = stats
	sys, err := Build(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stage1Evals == 0 || stats.Stage1Front != sys.BaseD.Len() {
		t.Errorf("stage-1 stats not populated: %+v", stats)
	}
	if stats.ReDEvals == 0 || stats.ReDExtras != len(sys.ReD.ReDPoints()) {
		t.Errorf("ReD stats not populated: %+v", stats)
	}
}
