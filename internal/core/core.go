// Package core assembles the paper's hybrid design methodology
// (Figure 3): the design/compile-time exploration — system-level MOEA
// plus reconfiguration-cost-aware MOEA (ReD) — produces a design-point
// database, which the run-time stage consumes for discrete-event
// adaptation (uRA) optionally augmented with an RL agent whose value
// functions are initialised by offline Monte-Carlo simulation (AuRA).
//
// A System is the deployable artefact: the problem instance, the
// stored databases and convenience constructors for run-time
// simulations and agents. Internal changes of the operating scenario —
// a permanent PE failure, a shift of the SEU rate — are handled as the
// paper prescribes: as separate instances of the methodology with a
// reduced platform or a different environment (see Rebuild helpers).
package core

import (
	"fmt"

	"clrdse/internal/dse"
	"clrdse/internal/ga"
	"clrdse/internal/mapping"
	"clrdse/internal/platform"
	"clrdse/internal/relmodel"
	"clrdse/internal/runtime"
	"clrdse/internal/taskgraph"
)

// Options configures the design-time stage. Zero values select the
// paper's defaults throughout.
type Options struct {
	// Seed drives every stochastic component deterministically.
	Seed int64
	// Platform is the target HMPSoC (nil selects platform.Default:
	// 5 PEs of 3 types + 3 PRRs).
	Platform *platform.Platform
	// Catalogue is the CLR method catalogue (nil selects
	// relmodel.DefaultCatalogue, the fine-grained CLR2 space).
	Catalogue *relmodel.Catalogue
	// Env is the fault/aging environment (zero selects
	// relmodel.DefaultEnv).
	Env relmodel.Env
	// SMaxMs is the loosest makespan bound; 0 selects the
	// application's period.
	SMaxMs float64
	// FMin is the tightest reliability lower bound; 0 selects 0.90.
	FMin float64
	// CSP selects the constraint-satisfaction variant (R(X_i)=0).
	CSP bool
	// StageOne configures the system-level MOEA (zero = ga defaults
	// with the paper's operator probabilities).
	StageOne ga.Params
	// HeuristicSeeds injects the constructive heuristics (EFT,
	// min-energy, max-reliability) into the initial GA population, on
	// top of any seeds already present in StageOne.
	HeuristicSeeds bool
	// ReD configures the reconfiguration-cost-aware stage.
	ReD dse.ReDParams
	// SkipReD, when true, stops after stage 1 (BaseD only).
	SkipReD bool
	// Stats, when non-nil, receives the exploration effort figures
	// (distinct evaluations, front sizes) from both stages.
	Stats *dse.Stats
}

// System is a built instance of the methodology.
type System struct {
	// App is the application.
	App *taskgraph.Graph
	// Problem is the design-time DSE instance.
	Problem *dse.Problem
	// BaseD is the stage-1 Pareto database.
	BaseD *dse.Database
	// ReD is the reconfiguration-cost-aware database (nil if the
	// stage was skipped).
	ReD *dse.Database

	opts Options
}

// Build runs the full design-time flow for the application.
func Build(app *taskgraph.Graph, opts Options) (*System, error) {
	if app == nil {
		return nil, fmt.Errorf("core: nil application")
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if opts.Platform == nil {
		opts.Platform = platform.Default()
	}
	if opts.Catalogue == nil {
		opts.Catalogue = relmodel.DefaultCatalogue()
	}
	if (opts.Env == relmodel.Env{}) {
		opts.Env = relmodel.DefaultEnv()
	}
	if opts.SMaxMs == 0 {
		opts.SMaxMs = app.PeriodMs
	}
	if opts.FMin == 0 {
		opts.FMin = 0.90
	}
	prob := &dse.Problem{
		Space: &mapping.Space{
			Graph:     app,
			Platform:  opts.Platform,
			Catalogue: opts.Catalogue,
		},
		Env:    opts.Env,
		SMaxMs: opts.SMaxMs,
		FMin:   opts.FMin,
		CSP:    opts.CSP,
		Stats:  opts.Stats,
	}
	stage1 := opts.StageOne
	if stage1.Seed == 0 {
		stage1.Seed = opts.Seed
	}
	if opts.HeuristicSeeds {
		stage1.Seeds = append(append([]*mapping.Mapping(nil), stage1.Seeds...),
			prob.Space.HeuristicEFT(opts.Env),
			prob.Space.HeuristicMinEnergy(opts.Env),
			prob.Space.HeuristicMaxRel(opts.Env),
		)
	}
	base, err := dse.RunBase(prob, stage1)
	if err != nil {
		return nil, fmt.Errorf("core: stage-1 DSE: %w", err)
	}
	sys := &System{App: app, Problem: prob, BaseD: base, opts: opts}
	if !opts.SkipReD {
		rp := opts.ReD
		if rp.GA.Seed == 0 {
			rp.GA.Seed = opts.Seed + 1
		}
		red, err := dse.RunReD(prob, base, rp)
		if err != nil {
			return nil, fmt.Errorf("core: ReD stage: %w", err)
		}
		sys.ReD = red
	}
	return sys, nil
}

// Database returns the richest database built: ReD when available,
// otherwise BaseD.
func (s *System) Database() *dse.Database {
	if s.ReD != nil {
		return s.ReD
	}
	return s.BaseD
}

// RuntimeParams returns run-time simulation parameters for the given
// database with the system's space pre-wired. Callers adjust pRC,
// cycles, trigger and agent as needed.
func (s *System) RuntimeParams(db *dse.Database, prc float64, seed int64) runtime.Params {
	return runtime.Params{
		DB:    db,
		Space: s.Problem.Space,
		PRC:   prc,
		Seed:  seed,
	}
}

// NewAgent returns an AuRA agent for the database, value functions
// initialised with the stay-put prior (see runtime.NewAgentForDB).
func (s *System) NewAgent(db *dse.Database, gamma float64) *runtime.Agent {
	return runtime.NewAgentForDB(db, gamma, 0)
}

// PretrainedAgent builds an agent and injects prior knowledge about
// the QoS-variation distribution by offline Monte-Carlo simulation
// over the given cycle horizon.
func (s *System) PretrainedAgent(db *dse.Database, gamma float64, prc float64, cycles float64, seed int64) (*runtime.Agent, error) {
	ag := s.NewAgent(db, gamma)
	if err := ag.Pretrain(s.RuntimeParams(db, prc, seed), cycles, seed); err != nil {
		return nil, fmt.Errorf("core: pretraining: %w", err)
	}
	return ag, nil
}

// RebuildWithoutPE re-runs the design-time flow on a platform with the
// given PE removed — the paper's internal-change scenario (a permanent
// fault reducing resource availability is a separate instance of the
// methodology with fewer PEs).
func (s *System) RebuildWithoutPE(peID int) (*System, error) {
	reduced, err := platform.RemovePE(s.opts.Platform, peID)
	if err != nil {
		return nil, err
	}
	opts := s.opts
	opts.Platform = reduced
	return Build(s.App, opts)
}

// RebuildWithEnv re-runs the design-time flow under a different
// fault/aging environment — the paper's external-change scenario (a
// new SEU rate is a separate instance with a different lambda_SEU).
func (s *System) RebuildWithEnv(env relmodel.Env) (*System, error) {
	opts := s.opts
	opts.Env = env
	return Build(s.App, opts)
}
