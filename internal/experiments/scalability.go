package experiments

// Scalability experiment (beyond the paper's tables): how the
// design-time exploration effort and the stored-database footprint
// grow with application size. The joint optimisation's design-space
// explosion is the paper's core motivation for the hybrid approach, so
// the reproduction reports the effort figures its own DSE incurs:
// genome-space size, distinct schedule evaluations per stage, and the
// resulting database sizes.

import (
	"fmt"
	"math"
	"strings"

	"clrdse/internal/dse"
	"clrdse/internal/ga"
	"clrdse/internal/mapping"
	"clrdse/internal/platform"
	"clrdse/internal/relmodel"
)

// ScalabilityRow is one application size's effort figures.
type ScalabilityRow struct {
	Tasks int
	// Log10Space is log10 of the CLR-integrated mapping-space size
	// |X_app| = prod_t |M_t x C_t| (priorities excluded).
	Log10Space float64
	// Stage1Evals / ReDEvals are distinct schedule evaluations.
	Stage1Evals, ReDEvals int
	// FrontSize / ReDExtras are the database contributions.
	FrontSize, ReDExtras int
}

// ScalabilityResult is the sweep.
type ScalabilityResult struct {
	Rows []ScalabilityRow
}

// Scalability runs instrumented DSE builds across the size sweep.
func (l *Lab) Scalability() (*ScalabilityResult, error) {
	res := &ScalabilityResult{}
	for _, n := range l.Scale.TaskSizes {
		app, err := l.App(n)
		if err != nil {
			return nil, err
		}
		stats := &dse.Stats{}
		prob := &dse.Problem{
			Space: &mapping.Space{
				Graph:     app,
				Platform:  platform.Default(),
				Catalogue: relmodel.DefaultCatalogue(),
			},
			Env:    relmodel.DefaultEnv(),
			SMaxMs: app.PeriodMs,
			FMin:   0.90,
			Stats:  stats,
		}
		base, err := dse.RunBase(prob, ga.Params{
			PopSize:     l.Scale.GAPop,
			Generations: l.Scale.GAGens,
			Seed:        l.Scale.Seed*883 + int64(n),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: scalability n=%d: %w", n, err)
		}
		if _, err := dse.RunReD(prob, base, dse.ReDParams{
			GA: ga.Params{
				PopSize:     l.Scale.ReDPop,
				Generations: l.Scale.ReDGens,
				Seed:        l.Scale.Seed*887 + int64(n),
			},
			MaxExtraPerSeed: l.Scale.MaxExtraPerSeed,
		}); err != nil {
			return nil, fmt.Errorf("experiments: scalability ReD n=%d: %w", n, err)
		}
		res.Rows = append(res.Rows, ScalabilityRow{
			Tasks:       n,
			Log10Space:  log10SpaceSize(prob.Space),
			Stage1Evals: stats.Stage1Evals,
			ReDEvals:    stats.ReDEvals,
			FrontSize:   stats.Stage1Front,
			ReDExtras:   stats.ReDExtras,
		})
	}
	return res, nil
}

// log10SpaceSize computes log10 of prod_t (#runnable (impl,PE) pairs x
// #CLR configs) — the per-task decision space of Eq. (4) without the
// ordering component.
func log10SpaceSize(s *mapping.Space) float64 {
	total := 0.0
	configs := float64(s.Catalogue.NumConfigs())
	for t := range s.Graph.Tasks {
		options := 0
		for _, impl := range s.RunnableImpls(t) {
			options += len(s.CompatiblePEs(t, impl))
		}
		total += math.Log10(float64(options) * configs)
	}
	return total
}

// Render prints the sweep.
func (r *ScalabilityResult) Render() string {
	var b strings.Builder
	b.WriteString("DSE scalability: exploration effort vs application size\n")
	fmt.Fprintf(&b, "%-8s %14s %14s %12s %10s %10s\n",
		"tasks", "log10|X_app|", "stage1 evals", "ReD evals", "front", "extras")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d %14.1f %14d %12d %10d %10d\n",
			row.Tasks, row.Log10Space, row.Stage1Evals, row.ReDEvals, row.FrontSize, row.ReDExtras)
	}
	return b.String()
}
