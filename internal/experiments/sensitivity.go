package experiments

// SEU-rate sensitivity experiment. The paper treats external changes —
// "a change in QoS requirements or Single Event Upset rate lambda_SEU"
// — as separate instances of the methodology; this sweep quantifies
// that: the same application is re-explored under scaled fault rates,
// and the achievable QoS envelope plus the cost of holding a fixed
// reliability target are reported.

import (
	"fmt"
	"math"
	"strings"

	"clrdse/internal/core"
	"clrdse/internal/ga"
	"clrdse/internal/relmodel"
)

// SensitivityRow is one fault-rate level.
type SensitivityRow struct {
	// LambdaFactor scales relmodel.DefaultEnv's SEU rate.
	LambdaFactor float64
	// BestF is the highest functional reliability on the front.
	BestF float64
	// MinJ is the lowest energy on the front (the floor under no
	// reliability pressure).
	MinJ float64
	// JAtTarget is the cheapest energy meeting F >= FTarget, or 0 if
	// the target is unreachable at this rate.
	JAtTarget float64
	// Points is the database size.
	Points int
}

// SensitivityResult is the sweep.
type SensitivityResult struct {
	Tasks   int
	FTarget float64
	Rows    []SensitivityRow
}

// Sensitivity explores one mid-sized application under 1x/2x/4x/8x the
// default SEU rate.
func (l *Lab) Sensitivity() (*SensitivityResult, error) {
	n := l.Scale.TaskSizes[len(l.Scale.TaskSizes)/2]
	app, err := l.App(n)
	if err != nil {
		return nil, err
	}
	const fTarget = 0.999
	res := &SensitivityResult{Tasks: n, FTarget: fTarget}
	for _, factor := range []float64{1, 2, 4, 8} {
		env := relmodel.DefaultEnv()
		env.LambdaSEUPerMs *= factor
		sys, err := core.Build(app, core.Options{
			Seed: l.Scale.Seed*907 + int64(factor),
			Env:  env,
			FMin: 0.80,
			StageOne: ga.Params{
				PopSize:     l.Scale.GAPop,
				Generations: l.Scale.GAGens,
			},
			SkipReD: true,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: sensitivity %gx: %w", factor, err)
		}
		row := SensitivityRow{LambdaFactor: factor, MinJ: math.Inf(1), Points: sys.BaseD.Len()}
		for _, p := range sys.BaseD.Points {
			row.BestF = math.Max(row.BestF, p.Reliability)
			row.MinJ = math.Min(row.MinJ, p.EnergyMJ)
			if p.Reliability >= fTarget && (row.JAtTarget == 0 || p.EnergyMJ < row.JAtTarget) {
				row.JAtTarget = p.EnergyMJ
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the sweep.
func (r *SensitivityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SEU-rate sensitivity (n=%d tasks, target F >= %.3f)\n", r.Tasks, r.FTarget)
	fmt.Fprintf(&b, "%-10s %10s %12s %16s %8s\n", "lambda", "best F", "min J (mJ)", "J @ target (mJ)", "points")
	for _, row := range r.Rows {
		target := "unreachable"
		if row.JAtTarget > 0 {
			target = fmt.Sprintf("%.2f", row.JAtTarget)
		}
		fmt.Fprintf(&b, "%-10s %10.5f %12.2f %16s %8d\n",
			fmt.Sprintf("%gx", row.LambdaFactor), row.BestF, row.MinJ, target, row.Points)
	}
	return b.String()
}
