package experiments

import (
	"strings"
	"sync"
	"testing"

	"clrdse/internal/runtime"
)

// One quick-scale lab shared across the experiment tests; the builds
// inside are cached, so order does not matter.
var (
	labOnce sync.Once
	lab     *Lab
)

func quickLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		s := QuickScale()
		s.TaskSizes = []int{10, 20} // keep the sweep tight for tests
		lab = NewLab(s)
	})
	return lab
}

func TestScalesSane(t *testing.T) {
	for _, s := range []Scale{QuickScale(), FullScale()} {
		if len(s.TaskSizes) == 0 || s.GAPop < 2 || s.SimCycles <= 0 {
			t.Errorf("scale %q malformed: %+v", s.Name, s)
		}
	}
	full := FullScale()
	if full.TaskSizes[0] != 10 || full.TaskSizes[len(full.TaskSizes)-1] != 100 {
		t.Error("full scale should sweep 10..100 tasks like the paper")
	}
	if full.SimCycles != 1_000_000 {
		t.Error("full scale should simulate 1e6 cycles like the paper")
	}
}

func TestLabCachesSystems(t *testing.T) {
	l := quickLab(t)
	a, err := l.System(10, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.System(10, false)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("System(10) not cached")
	}
	c, err := l.System(10, true)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("CSP variant should be a distinct build")
	}
}

func TestFig1(t *testing.T) {
	l := quickLab(t)
	r, err := l.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Systems) != 3 {
		t.Fatalf("systems = %d, want 3", len(r.Systems))
	}
	byName := map[string]Fig1System{}
	for _, s := range r.Systems {
		byName[s.Name] = s
		if len(s.Front) == 0 {
			t.Errorf("%s: empty front", s.Name)
		}
		if s.AvgEnergyMJ <= 0 {
			t.Errorf("%s: no dynamic J_avg", s.Name)
		}
	}
	// The motivation claim: dynamic CLR beats the fixed worst-case
	// configuration, and the finer CLR2 space does not lose to CLR1.
	clr2 := byName["CLR2"]
	if clr2.FixedEnergyMJ > 0 && clr2.AvgEnergyMJ > clr2.FixedEnergyMJ {
		t.Errorf("CLR2 dynamic J_avg %v should be <= fixed %v", clr2.AvgEnergyMJ, clr2.FixedEnergyMJ)
	}
	// CLR spaces should offer at least as many adaptation points as
	// HW-only.
	if len(byName["CLR2"].Front) < len(byName["HW-Only"].Front) {
		t.Error("CLR2 should store at least as many points as HW-Only")
	}
	out := r.Render()
	for _, want := range []string{"Figure 1", "HW-Only", "CLR1", "CLR2", "J_avg"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable4(t *testing.T) {
	l := quickLab(t)
	r, err := l.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(l.Scale.TaskSizes) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(l.Scale.TaskSizes))
	}
	for _, row := range r.Rows {
		if len(row.Values) != 1 {
			t.Fatalf("row %d has %d values", row.Tasks, len(row.Values))
		}
		// ReD must not cost more than BaseD: reduction >= 0 (the
		// paper reports 23..56%).
		if row.Values[0] < 0 {
			t.Errorf("n=%d: negative migration-cost reduction %v", row.Tasks, row.Values[0])
		}
		if row.Values[0] > 100 {
			t.Errorf("n=%d: reduction over 100%%: %v", row.Tasks, row.Values[0])
		}
	}
	if !strings.Contains(r.Render(), "Table 4") {
		t.Error("render missing title")
	}
}

func TestTable5(t *testing.T) {
	l := quickLab(t)
	r, err := l.Table5()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		redDRC, incJ := row.Values[0], row.Values[1]
		// pRC=0 must not reconfigure more expensively than pRC=1.
		if redDRC < 0 {
			t.Errorf("n=%d: pRC=0 raised reconfiguration cost (%v%%)", row.Tasks, redDRC)
		}
		// And the energy increase is the price paid — never a gain.
		if incJ < -1e-9 {
			t.Errorf("n=%d: pRC=0 reduced energy (%v%%), impossible for argmax-RET", row.Tasks, incJ)
		}
	}
}

func TestTable6(t *testing.T) {
	l := quickLab(t)
	r, err := l.Table6()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if len(row.Values) != 2 {
			t.Fatalf("row %d has %d values", row.Tasks, len(row.Values))
		}
		// ReD adds points, so at pRC=0 it should roughly match or
		// improve reconfiguration cost (paper: 0.1..26%). The greedy
		// policy is path-dependent, so allow a small regression.
		if row.Values[0] < -5 {
			t.Errorf("n=%d: ReD raised reconfiguration cost at pRC=0 by %v%%", row.Tasks, -row.Values[0])
		}
	}
}

func TestTable7(t *testing.T) {
	l := quickLab(t)
	r, err := l.Table7()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if len(row.Values) != 2 {
			t.Fatalf("row %d has %d values", row.Tasks, len(row.Values))
		}
		// AuRA may win or slightly lose (the paper's Table 7 has
		// negative entries too); just require sane magnitudes.
		for _, v := range row.Values {
			if v < -100 || v > 100 {
				t.Errorf("n=%d: improvement %v%% out of range", row.Tasks, v)
			}
		}
	}
}

func TestFig5(t *testing.T) {
	l := quickLab(t)
	r, err := l.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no design points")
	}
	pareto, extra := 0, 0
	for _, p := range r.Points {
		if p.FromReD {
			extra++
		} else {
			pareto++
		}
		if p.MakespanMs <= 0 || p.EnergyMJ <= 0 || p.Reliability <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}
	if pareto == 0 {
		t.Error("no Pareto points in Fig5")
	}
	out := r.Render()
	if extra > 0 && !strings.Contains(out, ">") {
		t.Error("render should mark ReD points with '>'")
	}
}

func TestFig6(t *testing.T) {
	l := quickLab(t)
	r, err := l.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.BaseD.Costs) == 0 || len(r.ReD.Costs) == 0 {
		t.Fatal("empty traces")
	}
	// The paper's observation: the Pareto-performance approach adapts
	// more often than the reconfiguration-cost-aware one (31 vs 24 in
	// the paper's window).
	if r.ReD.Reconfigs > r.BaseD.Reconfigs {
		t.Errorf("ReD reconfigs %d > BaseD %d", r.ReD.Reconfigs, r.BaseD.Reconfigs)
	}
	out := r.Render()
	for _, want := range []string{"Figure 6", "reconfigurations", "max dRC"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig7(t *testing.T) {
	l := quickLab(t)
	r, err := l.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) == 0 {
		t.Fatal("no series")
	}
	for _, s := range r.Series {
		if len(s.PRC) != 11 {
			t.Fatalf("n=%d: %d sweep points, want 11", s.Tasks, len(s.PRC))
		}
		// Endpoints: energy normalised to pRC=0 (first = 1), dRC
		// normalised to pRC=1 (last = 1 if any reconfig happens).
		if s.RelEnergy[0] != 1 {
			t.Errorf("n=%d: RelEnergy[0] = %v, want 1", s.Tasks, s.RelEnergy[0])
		}
		// Energy at pRC=1 must be <= energy at pRC=0.
		if last := s.RelEnergy[len(s.RelEnergy)-1]; last > 1+1e-9 {
			t.Errorf("n=%d: energy should not rise with pRC: rel=%v", s.Tasks, last)
		}
		// dRC at pRC=0 must be <= dRC at pRC=1.
		if s.RelDRC[0] > s.RelDRC[len(s.RelDRC)-1]+1e-9 {
			t.Errorf("n=%d: dRC at pRC=0 (%v) exceeds pRC=1 (%v)", s.Tasks, s.RelDRC[0], s.RelDRC[len(s.RelDRC)-1])
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := &TableResult{
		Title:   "T",
		Columns: []string{"a", "b"},
		Rows: []TableRow{
			{Tasks: 10, Values: []float64{1.25, -2}},
			{Tasks: 20, Values: []float64{3, 4}},
		},
	}
	out := tbl.Render()
	for _, want := range []string{"T", "Number of Tasks", "10", "20", "1.2", "-2.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPctHelpers(t *testing.T) {
	if pct(100, 60) != 40 {
		t.Errorf("pct(100,60) = %v", pct(100, 60))
	}
	if pct(0, 5) != 0 {
		t.Error("pct with zero base should be 0")
	}
	if pctIncrease(100, 110) != 10 {
		t.Errorf("pctIncrease(100,110) = %v", pctIncrease(100, 110))
	}
	if pctIncrease(0, 5) != 0 {
		t.Error("pctIncrease with zero base should be 0")
	}
}

func TestFigureCharts(t *testing.T) {
	l := quickLab(t)
	f1, err := l.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if svg := f1.Chart().SVG(); !strings.Contains(svg, "Figure 1") {
		t.Error("fig1 chart missing title")
	}
	f5, err := l.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if svg := f5.Chart().SVG(); !strings.Contains(svg, "Pareto front") {
		t.Error("fig5 chart missing legend")
	}
	f6, err := l.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if svg := f6.Chart().SVG(); !strings.Contains(svg, "reconfigs") {
		t.Error("fig6 chart missing reconfig counts")
	}
	f7, err := l.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	e, d := f7.Charts()
	if !strings.Contains(e.SVG(), "7a") || !strings.Contains(d.SVG(), "7b") {
		t.Error("fig7 charts missing titles")
	}
}

func TestValidate(t *testing.T) {
	l := quickLab(t)
	r, err := l.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(l.Scale.TaskSizes) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Points == 0 {
			t.Fatalf("n=%d: no points injected", row.Tasks)
		}
		// The analytic models must track the injected behaviour: the
		// error-probability gap is bounded by sampling noise and the
		// time/energy gaps stay within a couple of percent.
		if row.MaxErrProbGap > 0.02 {
			t.Errorf("n=%d: ErrProb gap %v too large", row.Tasks, row.MaxErrProbGap)
		}
		if row.MaxTimeGapPct > 3 {
			t.Errorf("n=%d: AvgExT gap %v%% too large", row.Tasks, row.MaxTimeGapPct)
		}
		if row.MaxRelGap > 0.01 {
			t.Errorf("n=%d: F_app gap %v too large", row.Tasks, row.MaxRelGap)
		}
		if row.MaxEnergyGapPct > 3 {
			t.Errorf("n=%d: J_app gap %v%% too large", row.Tasks, row.MaxEnergyGapPct)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "Model validation") {
		t.Error("render missing title")
	}
}

func TestScalability(t *testing.T) {
	l := quickLab(t)
	r, err := l.Scalability()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(l.Scale.TaskSizes) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	prevSpace := 0.0
	for _, row := range r.Rows {
		if row.Log10Space <= prevSpace {
			t.Errorf("n=%d: design space log10 %v should grow with size", row.Tasks, row.Log10Space)
		}
		prevSpace = row.Log10Space
		if row.Stage1Evals <= 0 || row.ReDEvals <= 0 {
			t.Errorf("n=%d: missing eval counts %+v", row.Tasks, row)
		}
		if row.FrontSize <= 0 {
			t.Errorf("n=%d: empty front", row.Tasks)
		}
	}
	if !strings.Contains(r.Render(), "scalability") {
		t.Error("render missing title")
	}
}

func TestSensitivity(t *testing.T) {
	l := quickLab(t)
	r, err := l.Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 rate levels", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		// Harsher radiation can only shrink the achievable reliability.
		if r.Rows[i].BestF > r.Rows[i-1].BestF+1e-6 {
			t.Errorf("best F rose with fault rate: %v -> %v",
				r.Rows[i-1].BestF, r.Rows[i].BestF)
		}
	}
	// At some rate the fixed target becomes more expensive (or
	// unreachable) than at the base rate.
	base, harshest := r.Rows[0], r.Rows[len(r.Rows)-1]
	if base.JAtTarget > 0 && harshest.JAtTarget > 0 && harshest.JAtTarget < base.JAtTarget*0.98 {
		t.Errorf("target got cheaper under 8x radiation: %v vs %v", harshest.JAtTarget, base.JAtTarget)
	}
	if !strings.Contains(r.Render(), "sensitivity") {
		t.Error("render missing title")
	}
}

func TestStorage(t *testing.T) {
	l := quickLab(t)
	r, err := l.Storage()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0].Budget != r.FullSize {
		t.Errorf("first row should be the full database")
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Budget > r.Rows[i-1].Budget {
			t.Errorf("budgets should shrink: %v", r.Rows)
		}
		// Decision latency scales with the stored set.
		if r.Rows[i].ChecksPerEvent > r.Rows[i-1].ChecksPerEvent+1e-9 {
			t.Errorf("checks/event should not grow as the database shrinks: %v", r.Rows)
		}
		// A smaller database can only satisfy fewer specs.
		if r.Rows[i].ViolationEvents < r.Rows[i-1].ViolationEvents {
			t.Errorf("violations should not drop with fewer points: %v", r.Rows)
		}
	}
	if !strings.Contains(r.Render(), "Storage budget") {
		t.Error("render missing title")
	}
}

func TestFig1BarChart(t *testing.T) {
	l := quickLab(t)
	r, err := l.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	fronts, bars := r.Charts()
	if !strings.Contains(fronts.SVG(), "error rate") {
		t.Error("fronts chart missing axis label")
	}
	svg := bars.SVG()
	for _, want := range []string{"J_avg", "HW-Only", "dynamic CLR"} {
		if !strings.Contains(svg, want) {
			t.Errorf("bar chart missing %q", want)
		}
	}
}

func TestConvergence(t *testing.T) {
	l := quickLab(t)
	r, err := l.Convergence()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.HV) != l.Scale.GAGens {
			t.Fatalf("n=%d: %d generations tracked", s.Tasks, len(s.HV))
		}
		last := s.HV[len(s.HV)-1]
		if last < 0.999 || last > 1.001 {
			t.Errorf("n=%d: final normalised HV = %v, want 1", s.Tasks, last)
		}
		// Elitism: normalised HV never exceeds ~1 and ends at max.
		for g, v := range s.HV {
			if v > 1.0001 {
				t.Errorf("n=%d gen %d: HV %v above final", s.Tasks, g, v)
			}
		}
		if s.SaturationGen < 0 || s.SaturationGen >= len(s.HV) {
			t.Errorf("n=%d: saturation gen %d out of range", s.Tasks, s.SaturationGen)
		}
	}
	if !strings.Contains(r.Render(), "convergence") {
		t.Error("render missing title")
	}
	if !strings.Contains(r.Chart().SVG(), "generation") {
		t.Error("chart missing axis")
	}
}

func TestSimulatePolicyHonoursHypervolume(t *testing.T) {
	// The Table 4 baseline path must genuinely run the hypervolume
	// policy: at identical settings it reconfigures more than lazy RET.
	l := quickLab(t)
	sys, err := l.System(10, true)
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(991)
	hv, err := l.simulatePolicy(sys, sys.BaseD, 0, runtime.TriggerAlways, runtime.PolicyHypervolume, nil, seed)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := l.simulatePolicy(sys, sys.BaseD, 0, runtime.TriggerAlways, runtime.PolicyRET, nil, seed)
	if err != nil {
		t.Fatal(err)
	}
	if hv.Reconfigs <= ret.Reconfigs {
		t.Errorf("hypervolume policy reconfigs %d <= RET %d", hv.Reconfigs, ret.Reconfigs)
	}
}
