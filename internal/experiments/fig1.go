package experiments

// Figure 1 — Motivation for dynamic CLR. Three systems are compared on
// the same application: HW-Only (all mitigation at the hardware
// layer), CLR1 (coarse cross-layer space) and CLR2 (fine cross-layer
// space). For each, the design-time DSE produces a Pareto front in the
// (application error rate, energy) plane; the bar chart compares
//
//   - the fixed worst-case configuration (guaranteeing <= 2% error at
//     all times, as the paper's baseline does), against
//   - dynamic adaptation: the acceptable error rate varies with a
//     Normal distribution and the system always runs the lowest-energy
//     stored point meeting the current bound, giving the average
//     energy J_avg.
//
// The expected shape: J_avg(HW-Only fixed) > J_avg(CLR1) > J_avg(CLR2),
// with CLR2's finer granularity (more stored points) enabling the
// extra saving.

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"clrdse/internal/core"
	"clrdse/internal/dse"
	"clrdse/internal/ga"
	"clrdse/internal/platform"
	"clrdse/internal/relmodel"
	"clrdse/internal/rng"
	"clrdse/internal/taskgraph"
)

// Fig1Point is one design point in the (error rate, energy) plane.
type Fig1Point struct {
	ErrorRate float64
	EnergyMJ  float64
}

// Fig1System is one bar/curve of the figure.
type Fig1System struct {
	Name string
	// Front is the stored Pareto front, sorted by error rate.
	Front []Fig1Point
	// FixedEnergyMJ is the energy of the fixed worst-case
	// configuration (<= MaxErrorRate at all times), or of the most
	// reliable stored point when the space cannot reach the bound.
	FixedEnergyMJ float64
	// FixedMeets reports whether the fixed configuration actually
	// satisfies MaxErrorRate (single-layer spaces may not).
	FixedMeets bool
	// AvgEnergyMJ is J_avg under the Normal distribution of the
	// acceptable error rate with dynamic adaptation.
	AvgEnergyMJ float64
	// ViolationRate is the fraction of sampled bounds the system's
	// stored points could not satisfy (it then runs its most reliable
	// point best-effort). Non-zero rates flag that the space cannot
	// deliver the QoS — the single-layer infeasibility the paper's
	// introduction argues from.
	ViolationRate float64
}

// Fig1Result is the full figure.
type Fig1Result struct {
	// MaxErrorRate is the worst-case bound used for the fixed
	// configuration (the paper uses 2%).
	MaxErrorRate float64
	Systems      []Fig1System
}

// Fig1 regenerates the motivation study on the JPEG-encoder
// application of Figure 2b. The environment uses a 10x SEU rate so the
// unprotected configurations reach the multi-percent error regime the
// paper's Figure 1 spans (0-10%); at the default rate every point of
// this small application already meets the 2% worst-case bound and the
// motivation trade-off cannot appear.
func (l *Lab) Fig1() (*Fig1Result, error) {
	app := taskgraph.JPEGEncoder(corePlatform())
	const maxErr = 0.02
	env := relmodel.DefaultEnv()
	env.LambdaSEUPerMs *= 10

	cats := []struct {
		name string
		cat  *relmodel.Catalogue
	}{
		{"HW-Only", relmodel.HWOnlyCatalogue()},
		{"CLR1", relmodel.CoarseCatalogue()},
		{"CLR2", relmodel.DefaultCatalogue()},
	}

	res := &Fig1Result{MaxErrorRate: maxErr}
	var fronts [][]*dse.DesignPoint
	for i, c := range cats {
		sys, err := core.Build(app, core.Options{
			Seed:      l.Scale.Seed*577 + int64(i),
			Catalogue: c.cat,
			Env:       env,
			FMin:      0.80, // explore a broad error-rate range
			StageOne: ga.Params{
				PopSize:     l.Scale.GAPop,
				Generations: l.Scale.GAGens,
			},
			SkipReD: true,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig1 %s: %w", c.name, err)
		}
		fronts = append(fronts, sys.BaseD.Points)
		out := Fig1System{Name: c.name}
		for _, p := range sys.BaseD.Points {
			out.Front = append(out.Front, Fig1Point{ErrorRate: 1 - p.Reliability, EnergyMJ: p.EnergyMJ})
		}
		sort.Slice(out.Front, func(a, b int) bool { return out.Front[a].ErrorRate < out.Front[b].ErrorRate })
		// Fixed worst-case configuration: cheapest point with error
		// <= 2% — or, if the space cannot reach 2% at all, the most
		// reliable point it has (best effort, flagged by FixedMeets).
		out.FixedEnergyMJ, out.FixedMeets = fixedConfig(sys.BaseD.Points, maxErr)
		res.Systems = append(res.Systems, out)
	}

	// Dynamic adaptation: the acceptable error rate varies with a
	// truncated Normal over the union of the achievable ranges, and
	// all three systems face the *same* sample stream. A system whose
	// stored points cannot meet a bound runs its most reliable point.
	hi := maxErr
	for _, pts := range fronts {
		for _, p := range pts {
			hi = math.Max(hi, 1-p.Reliability)
		}
	}
	if hi <= maxErr {
		hi = maxErr * 1.5
	}
	r := rng.New(l.Scale.Seed * 7919)
	const samples = 4000
	totals := make([]float64, len(fronts))
	violations := make([]int, len(fronts))
	for i := 0; i < samples; i++ {
		bound := r.TruncNormal((maxErr+hi)/2, (hi-maxErr)/4, maxErr, hi)
		for k, pts := range fronts {
			if e := cheapestMeeting(pts, bound); e > 0 {
				totals[k] += e
			} else {
				e, _ := fixedConfig(pts, bound)
				totals[k] += e
				violations[k]++
			}
		}
	}
	for k := range res.Systems {
		res.Systems[k].AvgEnergyMJ = totals[k] / samples
		res.Systems[k].ViolationRate = float64(violations[k]) / samples
	}
	return res, nil
}

// fixedConfig returns the energy of the cheapest point meeting the
// bound and true, or the energy of the most reliable point and false
// when no point qualifies.
func fixedConfig(pts []*dse.DesignPoint, bound float64) (float64, bool) {
	if e := cheapestMeeting(pts, bound); e > 0 {
		return e, true
	}
	best := pts[0]
	for _, p := range pts {
		if p.Reliability > best.Reliability {
			best = p
		}
	}
	return best.EnergyMJ, false
}

// cheapestMeeting returns the lowest energy among points whose error
// rate is at most bound, or 0 if none qualifies.
func cheapestMeeting(pts []*dse.DesignPoint, bound float64) float64 {
	best := 0.0
	for _, p := range pts {
		if 1-p.Reliability <= bound && (best == 0 || p.EnergyMJ < best) {
			best = p.EnergyMJ
		}
	}
	return best
}

// Render prints the figure as text: per system the front and the
// J_avg bars.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — Motivation for Dynamic CLR (worst-case error <= %.1f%%)\n", 100*r.MaxErrorRate)
	for _, s := range r.Systems {
		fmt.Fprintf(&b, "\n%s: %d stored design points\n", s.Name, len(s.Front))
		for _, p := range s.Front {
			fmt.Fprintf(&b, "  err=%6.3f%%  J=%8.2f mJ\n", 100*p.ErrorRate, p.EnergyMJ)
		}
	}
	b.WriteString("\nAverage energy J_avg (mJ):\n")
	fmt.Fprintf(&b, "  %-8s %22s %12s %14s\n", "system", "fixed(2%)", "dynamic", "QoS violations")
	for _, s := range r.Systems {
		fixed := fmt.Sprintf("%.2f", s.FixedEnergyMJ)
		if !s.FixedMeets {
			fixed += " (bound unreachable)"
		}
		fmt.Fprintf(&b, "  %-8s %22s %12.2f %13.1f%%\n", s.Name, fixed, s.AvgEnergyMJ, 100*s.ViolationRate)
	}
	return b.String()
}

// corePlatform returns the default evaluation platform; isolated here
// so fig1 reads clearly.
func corePlatform() *platform.Platform { return platform.Default() }
