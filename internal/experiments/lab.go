// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 5). Each experiment is a function on a
// Lab — a cache of built design-time systems — returning a structured
// result with a Render method that prints rows shaped like the
// paper's.
//
// Two scales are provided: QuickScale for tests and benchmarks
// (small GA budgets, short simulations) and FullScale approximating
// the paper's setup (applications of 10-100 tasks, one-million-cycle
// Monte-Carlo runs). Absolute numbers differ from the paper's testbed;
// EXPERIMENTS.md records the shape comparison.
package experiments

import (
	"fmt"
	"sync"

	"clrdse/internal/core"
	"clrdse/internal/dse"
	"clrdse/internal/ga"
	"clrdse/internal/platform"
	"clrdse/internal/taskgraph"
)

// Scale bundles every knob that trades fidelity for runtime.
type Scale struct {
	// Name labels the scale in reports.
	Name string
	// TaskSizes are the synthetic application sizes (the paper sweeps
	// 10..100).
	TaskSizes []int
	// GAPop/GAGens configure the stage-1 MOEA.
	GAPop, GAGens int
	// ReDPop/ReDGens configure each per-seed ReD sub-optimisation.
	ReDPop, ReDGens int
	// MaxExtraPerSeed bounds ReD database growth.
	MaxExtraPerSeed int
	// SimCycles is the Monte-Carlo horizon in application execution
	// cycles (the paper uses 1e6).
	SimCycles float64
	// PretrainCycles is AuRA's offline prior-knowledge horizon.
	PretrainCycles float64
	// Reps is the number of independent event streams each table
	// entry is averaged over (0 selects 1). The paper reports single
	// runs; averaging denoises the small percentage differences.
	Reps int
	// Seed roots all randomness.
	Seed int64
}

// QuickScale returns the reduced setup used by unit tests and
// benchmarks.
func QuickScale() Scale {
	return Scale{
		Name:            "quick",
		TaskSizes:       []int{10, 20, 30},
		GAPop:           24,
		GAGens:          10,
		ReDPop:          16,
		ReDGens:         8,
		MaxExtraPerSeed: 2,
		SimCycles:       50_000,
		PretrainCycles:  100_000,
		Reps:            3,
		Seed:            1,
	}
}

// FullScale approximates the paper's experimental setup.
func FullScale() Scale {
	return Scale{
		Name:            "full",
		TaskSizes:       []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
		GAPop:           80,
		GAGens:          60,
		ReDPop:          40,
		ReDGens:         25,
		MaxExtraPerSeed: 3,
		SimCycles:       1_000_000,
		PretrainCycles:  500_000,
		Reps:            5,
		Seed:            1,
	}
}

// sysKey identifies a cached system build.
type sysKey struct {
	n   int
	csp bool
}

// Lab caches design-time builds so several experiments can share them.
type Lab struct {
	Scale Scale

	mu      sync.Mutex
	systems map[sysKey]*core.System
}

// NewLab returns a lab at the given scale.
func NewLab(s Scale) *Lab {
	return &Lab{Scale: s, systems: make(map[sysKey]*core.System)}
}

// App generates the synthetic application of the given size,
// deterministic in the lab seed.
func (l *Lab) App(n int) (*taskgraph.Graph, error) {
	return taskgraph.Generate(taskgraph.GenParams{
		Seed:     l.Scale.Seed*101 + int64(n),
		NumTasks: n,
	}, platform.Default())
}

// System builds (or returns the cached) full design-time result for
// the given application size.
func (l *Lab) System(n int, csp bool) (*core.System, error) {
	key := sysKey{n: n, csp: csp}
	l.mu.Lock()
	if sys, ok := l.systems[key]; ok {
		l.mu.Unlock()
		return sys, nil
	}
	l.mu.Unlock()

	app, err := l.App(n)
	if err != nil {
		return nil, err
	}
	sys, err := core.Build(app, core.Options{
		Seed: l.Scale.Seed*1009 + int64(n),
		CSP:  csp,
		StageOne: ga.Params{
			PopSize:     l.Scale.GAPop,
			Generations: l.Scale.GAGens,
		},
		ReD: dse.ReDParams{
			GA: ga.Params{
				PopSize:     l.Scale.ReDPop,
				Generations: l.Scale.ReDGens,
			},
			MaxExtraPerSeed: l.Scale.MaxExtraPerSeed,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: build n=%d: %w", n, err)
	}
	l.mu.Lock()
	l.systems[key] = sys
	l.mu.Unlock()
	return sys, nil
}

// pct returns the percentage reduction of got versus base:
// positive = got is lower (better), matching the paper's
// "% Reduction" rows. A zero base yields 0.
func pct(base, got float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - got) / base
}

// pctIncrease returns the percentage increase of got over base.
func pctIncrease(base, got float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (got - base) / base
}
