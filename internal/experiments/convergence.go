package experiments

// DSE convergence experiment: per-generation hyper-volume and front
// size of the stage-1 MOEA for a small/medium/large application. The
// paper's Table 7 caveat ("in some cases the value functions did not
// converge") has a design-time sibling — knowing where the GA budget
// saturates is what justifies the paper's pop/generation choices.

import (
	"fmt"
	"strings"

	"clrdse/internal/dse"
	"clrdse/internal/ga"
	"clrdse/internal/mapping"
	"clrdse/internal/pareto"
	"clrdse/internal/platform"
	"clrdse/internal/plot"
	"clrdse/internal/relmodel"
)

// ConvergenceSeries is one application's optimisation trajectory.
type ConvergenceSeries struct {
	Tasks int
	// HV is the feasible-front hyper-volume per generation, normalised
	// to the final generation's value.
	HV []float64
	// FrontSize is the feasible first-front cardinality per generation.
	FrontSize []int
	// SaturationGen is the first generation reaching 99% of the final
	// hyper-volume.
	SaturationGen int
}

// ConvergenceResult is the sweep.
type ConvergenceResult struct {
	Generations int
	Series      []ConvergenceSeries
}

// Convergence tracks stage-1 GA progress on the smallest, middle and
// largest application of the sweep.
func (l *Lab) Convergence() (*ConvergenceResult, error) {
	sizes := []int{
		l.Scale.TaskSizes[0],
		l.Scale.TaskSizes[len(l.Scale.TaskSizes)/2],
		l.Scale.TaskSizes[len(l.Scale.TaskSizes)-1],
	}
	res := &ConvergenceResult{Generations: l.Scale.GAGens}
	for _, n := range sizes {
		app, err := l.App(n)
		if err != nil {
			return nil, err
		}
		prob := &dse.Problem{
			Space: &mapping.Space{
				Graph:     app,
				Platform:  platform.Default(),
				Catalogue: relmodel.DefaultCatalogue(),
			},
			Env:    relmodel.DefaultEnv(),
			SMaxMs: app.PeriodMs,
			FMin:   0.90,
		}
		ev := dse.NewEvaluator(prob)
		var gens [][][]float64
		var fronts []int
		engine := &ga.Engine{
			Space: prob.Space,
			Eval: func(m *mapping.Mapping) ([]float64, float64, any) {
				r, err := ev.Evaluate(m)
				if err != nil {
					panic(err)
				}
				v := 0.0
				if r.MakespanMs > prob.SMaxMs {
					v += (r.MakespanMs - prob.SMaxMs) / prob.SMaxMs
				}
				if r.Reliability < prob.FMin {
					v += prob.FMin - r.Reliability
				}
				return []float64{r.EnergyMJ, r.MakespanMs, 1 - r.Reliability}, v, r
			},
			Params: ga.Params{
				PopSize:     l.Scale.GAPop,
				Generations: l.Scale.GAGens,
				Seed:        l.Scale.Seed*919 + int64(n),
			},
			OnGeneration: func(s ga.GenStats) {
				cp := make([][]float64, len(s.FrontObjs))
				for i, o := range s.FrontObjs {
					cp[i] = append([]float64(nil), o...)
				}
				gens = append(gens, cp)
				fronts = append(fronts, s.FrontSize)
			},
		}
		if _, err := engine.Run(); err != nil {
			return nil, fmt.Errorf("experiments: convergence n=%d: %w", n, err)
		}
		// Reference just outside the union of every generation's front,
		// so the hyper-volume scale reflects the explored region rather
		// than an arbitrary loose box.
		ref := []float64{0, 0, 0}
		for _, front := range gens {
			for _, o := range front {
				for d := range ref {
					if o[d] > ref[d] {
						ref[d] = o[d]
					}
				}
			}
		}
		for d := range ref {
			ref[d] *= 1.01
			if ref[d] == 0 {
				ref[d] = 1e-9
			}
		}
		hv := make([]float64, len(gens))
		for g, front := range gens {
			hv[g] = pareto.Hypervolume(front, ref)
		}
		final := hv[len(hv)-1]
		series := ConvergenceSeries{Tasks: n, FrontSize: fronts, SaturationGen: len(hv) - 1}
		for g, v := range hv {
			norm := 0.0
			if final > 0 {
				norm = v / final
			}
			series.HV = append(series.HV, norm)
			if series.SaturationGen == len(hv)-1 && norm >= 0.99 {
				series.SaturationGen = g
			}
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Render prints the trajectories.
func (r *ConvergenceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stage-1 MOEA convergence (%d generations)\n", r.Generations)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "\nn=%d tasks: 99%% of final hyper-volume reached at generation %d/%d\n",
			s.Tasks, s.SaturationGen, len(s.HV)-1)
		fmt.Fprintf(&b, "%-6s %14s %10s\n", "gen", "rel HV", "front")
		step := max(1, len(s.HV)/12)
		for g := 0; g < len(s.HV); g += step {
			fmt.Fprintf(&b, "%-6d %14.4f %10d\n", g, s.HV[g], s.FrontSize[g])
		}
	}
	return b.String()
}

// Chart renders the normalised hyper-volume curves.
func (r *ConvergenceResult) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  "Stage-1 MOEA convergence",
		XLabel: "generation",
		YLabel: "hyper-volume relative to final",
	}
	for _, s := range r.Series {
		series := plot.Series{Name: fmt.Sprintf("n=%d", s.Tasks), Line: true, Marker: "none"}
		for g, v := range s.HV {
			series.X = append(series.X, float64(g))
			series.Y = append(series.Y, v)
		}
		c.Series = append(c.Series, series)
	}
	return c
}
