package experiments

// Storage-constraint experiment (the paper's concluding concern:
// "storing multiple design points ... can lead to inadequate storage
// and longer run-time DSE"). The stored database is pruned to a sweep
// of budgets and the run-time consequences are measured: energy,
// adaptation cost, unsatisfiable events, and the decision-latency
// proxy (stored-point inspections per event).

import (
	"fmt"
	"strings"

	"clrdse/internal/dse"
	"clrdse/internal/runtime"
)

// StorageRow is one budget level.
type StorageRow struct {
	// Budget is the stored-point cap (the full database on the first
	// row).
	Budget int
	// AvgEnergyMJ, AvgDRC and ViolationEvents are the run-time
	// outcomes under the pruned database.
	AvgEnergyMJ     float64
	AvgDRC          float64
	ViolationEvents int
	// ChecksPerEvent is the mean number of stored-point inspections
	// per QoS event.
	ChecksPerEvent float64
}

// StorageResult is the sweep.
type StorageResult struct {
	Tasks    int
	FullSize int
	Rows     []StorageRow
}

// Storage prunes the largest application's database to 100%, 50%, 25%
// and 12.5% of its points and replays the same event stream.
func (l *Lab) Storage() (*StorageResult, error) {
	n := l.Scale.TaskSizes[len(l.Scale.TaskSizes)-1]
	sys, err := l.System(n, false)
	if err != nil {
		return nil, err
	}
	full := sys.Database()
	res := &StorageResult{Tasks: n, FullSize: full.Len()}
	seed := l.Scale.Seed*911 + int64(n)

	budgets := []int{full.Len(), full.Len() / 2, full.Len() / 4, full.Len() / 8}
	for _, budget := range budgets {
		if budget < 2 {
			budget = 2
		}
		db := full
		if budget < full.Len() {
			db, err = dse.Prune(full, budget, false)
			if err != nil {
				return nil, fmt.Errorf("experiments: storage prune to %d: %w", budget, err)
			}
		}
		p := sys.RuntimeParams(db, 0.5, seed)
		p.Cycles = l.Scale.SimCycles
		p.QoS = runtime.ModelFromDatabase(full) // identical stream at all budgets
		m, err := runtime.Simulate(p)
		if err != nil {
			return nil, err
		}
		row := StorageRow{
			Budget:          db.Len(),
			AvgEnergyMJ:     m.AvgEnergyMJ,
			AvgDRC:          m.AvgDRC,
			ViolationEvents: m.ViolationEvents,
		}
		if m.Events > 0 {
			row.ChecksPerEvent = float64(m.FeasibilityChecks) / float64(m.Events)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the sweep.
func (r *StorageResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Storage budget vs run-time quality (n=%d tasks, full database %d points)\n", r.Tasks, r.FullSize)
	fmt.Fprintf(&b, "%-8s %14s %12s %12s %16s\n", "points", "avg J (mJ)", "avg dRC", "violations", "checks/event")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d %14.2f %12.4f %12d %16.1f\n",
			row.Budget, row.AvgEnergyMJ, row.AvgDRC, row.ViolationEvents, row.ChecksPerEvent)
	}
	return b.String()
}
