package experiments

// Tables 4, 5, 6 and 7 of the paper's evaluation. All four share the
// same skeleton — sweep the application sizes, run Monte-Carlo
// simulations of the run-time DSE against stored databases, and report
// percentage improvements — so they live together here.

import (
	"fmt"
	"strings"

	"clrdse/internal/core"
	"clrdse/internal/dse"
	"clrdse/internal/runtime"
)

// TableRow is one column of a paper table (the paper lays sizes out
// horizontally; we keep one row per application size).
type TableRow struct {
	Tasks  int
	Values []float64
}

// TableResult is a rendered-comparable table.
type TableResult struct {
	Title   string
	Columns []string
	Rows    []TableRow
}

// Render prints the table with the paper's orientation: one line per
// measure, application sizes across.
func (t *TableResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-44s", "Number of Tasks")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%8d", r.Tasks)
	}
	b.WriteString("\n")
	for c, name := range t.Columns {
		fmt.Fprintf(&b, "%-44s", name)
		for _, r := range t.Rows {
			fmt.Fprintf(&b, "%8.1f", r.Values[c])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// simulate runs one run-time Monte-Carlo simulation at the lab scale.
func (l *Lab) simulate(sys *core.System, db *dse.Database, prc float64, trig runtime.Trigger, ag *runtime.Agent, seed int64) (*runtime.Metrics, error) {
	return l.simulatePolicy(sys, db, prc, trig, runtime.PolicyRET, ag, seed)
}

func (l *Lab) simulatePolicy(sys *core.System, db *dse.Database, prc float64, trig runtime.Trigger, pol runtime.Policy, ag *runtime.Agent, seed int64) (*runtime.Metrics, error) {
	p := sys.RuntimeParams(db, prc, seed)
	p.Cycles = l.Scale.SimCycles
	p.Trigger = trig
	p.Policy = pol
	p.Agent = ag
	// Both databases must face the identical QoS event stream for a
	// fair comparison, so derive the model from BaseD in every run.
	p.QoS = runtime.ModelFromDatabase(sys.BaseD)
	return runtime.Simulate(p)
}

// simSummary holds rep-averaged run-time metrics.
type simSummary struct {
	AvgDRC      float64
	AvgEnergyMJ float64
	TotalDRC    float64
}

// simAvg averages the metrics of Scale.Reps independent event streams.
// agent, when non-nil, builds a fresh (pre-trained) agent per rep so
// learning state never leaks between streams.
func (l *Lab) simAvg(sys *core.System, db *dse.Database, prc float64, trig runtime.Trigger, agent func(rep int) (*runtime.Agent, error), baseSeed int64) (simSummary, error) {
	return l.simAvgPolicy(sys, db, prc, trig, runtime.PolicyRET, agent, baseSeed)
}

func (l *Lab) simAvgPolicy(sys *core.System, db *dse.Database, prc float64, trig runtime.Trigger, pol runtime.Policy, agent func(rep int) (*runtime.Agent, error), baseSeed int64) (simSummary, error) {
	reps := l.Scale.Reps
	if reps < 1 {
		reps = 1
	}
	var sum simSummary
	for rep := 0; rep < reps; rep++ {
		var ag *runtime.Agent
		if agent != nil {
			var err error
			if ag, err = agent(rep); err != nil {
				return simSummary{}, err
			}
		}
		m, err := l.simulatePolicy(sys, db, prc, trig, pol, ag, baseSeed+int64(rep)*7919)
		if err != nil {
			return simSummary{}, err
		}
		sum.AvgDRC += m.AvgDRC
		sum.AvgEnergyMJ += m.AvgEnergyMJ
		sum.TotalDRC += m.TotalDRC
	}
	sum.AvgDRC /= float64(reps)
	sum.AvgEnergyMJ /= float64(reps)
	sum.TotalDRC /= float64(reps)
	return sum, nil
}

// Table4 — percentage reduction in task-migration cost using ReD over
// BaseD for a constraint-satisfaction problem (R(X_i)=0) w.r.t. the
// QoS metrics. The BaseD manager is the purely performance-oriented
// baseline of Section 5.2: it hunts the best hyper-volume design point
// for every change in QoS requirements. The ReD manager adapts only on
// violation, preferring cheap moves (pRC=0).
func (l *Lab) Table4() (*TableResult, error) {
	res := &TableResult{
		Title:   "Table 4: % reduction in task-migration cost using ReD over BaseD (CSP)",
		Columns: []string{"% Reduction over BaseD"},
	}
	for _, n := range l.Scale.TaskSizes {
		sys, err := l.System(n, true)
		if err != nil {
			return nil, err
		}
		seed := l.Scale.Seed*31 + int64(n)
		mBase, err := l.simAvgPolicy(sys, sys.BaseD, 0, runtime.TriggerAlways, runtime.PolicyHypervolume, nil, seed)
		if err != nil {
			return nil, err
		}
		mReD, err := l.simAvg(sys, sys.ReD, 0, runtime.TriggerOnViolation, nil, seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, TableRow{
			Tasks:  n,
			Values: []float64{pct(mBase.TotalDRC, mReD.TotalDRC)},
		})
	}
	return res, nil
}

// Table5 — on a single set of design points (the ReD database), the
// effect of minimising reconfiguration cost (pRC=0) versus maximising
// performance (pRC=1): percentage reduction in average reconfiguration
// cost, and the percentage increase in average energy paid for it.
func (l *Lab) Table5() (*TableResult, error) {
	res := &TableResult{
		Title: "Table 5: reconfiguration-cost minimisation on a single set of design points",
		Columns: []string{
			"% Reduction in Average Reconfiguration cost",
			"% Increase in Average Energy Consumption",
		},
	}
	for _, n := range l.Scale.TaskSizes {
		sys, err := l.System(n, false)
		if err != nil {
			return nil, err
		}
		db := sys.Database()
		seed := l.Scale.Seed*37 + int64(n)
		perf, err := l.simAvg(sys, db, 1, runtime.TriggerAlways, nil, seed)
		if err != nil {
			return nil, err
		}
		cheap, err := l.simAvg(sys, db, 0, runtime.TriggerAlways, nil, seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, TableRow{
			Tasks: n,
			Values: []float64{
				pct(perf.AvgDRC, cheap.AvgDRC),
				pctIncrease(perf.AvgEnergyMJ, cheap.AvgEnergyMJ),
			},
		})
	}
	return res, nil
}

// Table6 — percentage improvements using ReD compared to BaseD with
// the relevant extremes of pRC: reconfiguration cost at pRC=0 and
// energy at pRC=1.
func (l *Lab) Table6() (*TableResult, error) {
	res := &TableResult{
		Title: "Table 6: % improvements using ReD compared to BaseD",
		Columns: []string{
			"% Reduction in Avg Reconfiguration cost (pRC=0)",
			"% Reduction in Avg Energy Consumption (pRC=1)",
		},
	}
	for _, n := range l.Scale.TaskSizes {
		sys, err := l.System(n, false)
		if err != nil {
			return nil, err
		}
		seed := l.Scale.Seed*41 + int64(n)
		baseD0, err := l.simAvg(sys, sys.BaseD, 0, runtime.TriggerAlways, nil, seed)
		if err != nil {
			return nil, err
		}
		reD0, err := l.simAvg(sys, sys.ReD, 0, runtime.TriggerAlways, nil, seed)
		if err != nil {
			return nil, err
		}
		baseD1, err := l.simAvg(sys, sys.BaseD, 1, runtime.TriggerAlways, nil, seed)
		if err != nil {
			return nil, err
		}
		reD1, err := l.simAvg(sys, sys.ReD, 1, runtime.TriggerAlways, nil, seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, TableRow{
			Tasks: n,
			Values: []float64{
				pct(baseD0.AvgDRC, reD0.AvgDRC),
				pct(baseD1.AvgEnergyMJ, reD1.AvgEnergyMJ),
			},
		})
	}
	return res, nil
}

// Table7 — percentage improvements using AuRA compared to uRA with the
// relevant extremes of pRC. AuRA uses a discounted agent whose value
// functions are initialised by offline Monte-Carlo simulation (prior
// knowledge of the QoS-variation distribution). As in the paper,
// entries can go slightly negative when the value functions have not
// converged for large design-point databases.
func (l *Lab) Table7() (*TableResult, error) {
	res := &TableResult{
		Title: "Table 7: % improvements using AuRA compared to uRA",
		Columns: []string{
			"% Reduction in Avg Reconfiguration cost (pRC=0)",
			"% Reduction in Avg Energy Consumption (pRC=1)",
		},
	}
	// Both managers adapt on violation — the deployment regime in
	// which landing-point choices are path-dependent, so learned value
	// functions can beat the myopic choice. (Under per-event
	// re-optimisation, uRA is pointwise optimal for the metric it
	// scores and AuRA could only lose.)
	const gamma = 0.9
	for _, n := range l.Scale.TaskSizes {
		sys, err := l.System(n, false)
		if err != nil {
			return nil, err
		}
		db := sys.Database()
		seed := l.Scale.Seed*43 + int64(n)
		row := TableRow{Tasks: n}
		for _, prc := range []float64{0, 1} {
			u, err := l.simAvg(sys, db, prc, runtime.TriggerOnViolation, nil, seed)
			if err != nil {
				return nil, err
			}
			agent := func(rep int) (*runtime.Agent, error) {
				ag := sys.NewAgent(db, gamma)
				pp := sys.RuntimeParams(db, prc, 0)
				pp.Trigger = runtime.TriggerOnViolation
				pp.QoS = runtime.ModelFromDatabase(sys.BaseD)
				err := ag.Pretrain(pp, l.Scale.PretrainCycles, seed*13+int64(100*prc)+int64(rep)*104729)
				return ag, err
			}
			a, err := l.simAvg(sys, db, prc, runtime.TriggerOnViolation, agent, seed)
			if err != nil {
				return nil, err
			}
			if prc == 0 {
				row.Values = append(row.Values, pct(u.AvgDRC, a.AvgDRC))
			} else {
				row.Values = append(row.Values, pct(u.AvgEnergyMJ, a.AvgEnergyMJ))
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
