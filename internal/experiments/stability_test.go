package experiments

import "testing"

// TestFig1ByteStability is the golden byte-stability check behind the
// maporder contract: two independent labs at the same scale must
// produce byte-identical rendered tables and SVG charts. Any map-order
// leak into the serialized output (or any unseeded randomness in the
// DSE underneath) shows up here as a flaky diff.
func TestFig1ByteStability(t *testing.T) {
	s := QuickScale()
	s.TaskSizes = []int{10} // the sweep is irrelevant to Fig1; keep setup tight

	run := func() (string, string, string) {
		t.Helper()
		r, err := NewLab(s).Fig1()
		if err != nil {
			t.Fatal(err)
		}
		fronts, bars := r.Charts()
		return r.Render(), fronts.SVG(), bars.SVG()
	}

	text1, fronts1, bars1 := run()
	text2, fronts2, bars2 := run()
	if text1 != text2 {
		t.Error("Fig1 Render() differs between identically-seeded runs")
	}
	if fronts1 != fronts2 {
		t.Error("Fig1 fronts chart SVG differs between identically-seeded runs")
	}
	if bars1 != bars2 {
		t.Error("Fig1 bars chart SVG differs between identically-seeded runs")
	}
	if len(fronts1) == 0 || len(bars1) == 0 {
		t.Error("Fig1 charts rendered empty SVG")
	}
}
