package experiments

// Figures 5, 6 and 7 of the paper's evaluation.

import (
	"fmt"
	"strings"

	"clrdse/internal/dse"
	"clrdse/internal/runtime"
)

// --- Figure 5 -------------------------------------------------------

// Fig5Point is one stored design point in the (makespan, energy)
// plane; FromReD marks the additional non-dominant points ('>' in the
// paper's plot).
type Fig5Point struct {
	MakespanMs  float64
	EnergyMJ    float64
	Reliability float64
	FromReD     bool
}

// Fig5Result is the design-point scatter for the largest application.
type Fig5Result struct {
	Tasks  int
	Points []Fig5Point
}

// Fig5 regenerates the Pareto-front-plus-additional-points plot. As in
// the paper, the points come from the constraint-satisfaction problem
// (R(X_i)=0); the paper shows the 80-task application, we use the
// largest size the scale sweeps.
func (l *Lab) Fig5() (*Fig5Result, error) {
	n := l.Scale.TaskSizes[len(l.Scale.TaskSizes)-1]
	sys, err := l.System(n, true)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{Tasks: n}
	for _, p := range sys.ReD.Points {
		res.Points = append(res.Points, Fig5Point{
			MakespanMs:  p.MakespanMs,
			EnergyMJ:    p.EnergyMJ,
			Reliability: p.Reliability,
			FromReD:     p.FromReD,
		})
	}
	return res, nil
}

// Render prints the scatter as rows; ReD additions carry the paper's
// '>' marker.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: Pareto front and additional reconfiguration-cost-aware points (n=%d)\n", r.Tasks)
	fmt.Fprintf(&b, "%-2s %12s %12s %12s\n", "", "makespan/ms", "energy/mJ", "reliability")
	for _, p := range r.Points {
		marker := " "
		if p.FromReD {
			marker = ">"
		}
		fmt.Fprintf(&b, "%-2s %12.2f %12.2f %12.4f\n", marker, p.MakespanMs, p.EnergyMJ, p.Reliability)
	}
	return b.String()
}

// --- Figure 6 -------------------------------------------------------

// Fig6Trace is one manager's reaction to the first events of the
// shared QoS sequence.
type Fig6Trace struct {
	Name      string
	Costs     []float64 // dRC per event (0 = no adaptation)
	Reconfigs int
	MaxDRC    float64
}

// Fig6Result compares the reconfiguration-cost traces of the two
// databases over the same sequence of QoS requirement changes.
type Fig6Result struct {
	Tasks  int
	Events int
	BaseD  Fig6Trace
	ReD    Fig6Trace
}

// Fig6 regenerates the 50-event reconfiguration-cost trace comparison
// on the CSP problem (as in the paper). BaseD hunts the best
// hyper-volume point at every change (region-A behaviour); ReD adapts
// only on violation, preferring cheap moves.
func (l *Lab) Fig6() (*Fig6Result, error) {
	n := l.Scale.TaskSizes[len(l.Scale.TaskSizes)-1]
	const events = 50
	sys, err := l.System(n, true)
	if err != nil {
		return nil, err
	}
	seed := l.Scale.Seed*47 + int64(n)
	run := func(name string, db *dse.Database, trig runtime.Trigger, pol runtime.Policy) (Fig6Trace, error) {
		p := sys.RuntimeParams(db, 0, seed)
		p.Cycles = l.Scale.SimCycles
		p.Trigger = trig
		p.Policy = pol
		p.TraceLen = events
		p.QoS = runtime.ModelFromDatabase(sys.BaseD)
		m, err := runtime.Simulate(p)
		if err != nil {
			return Fig6Trace{}, err
		}
		tr := Fig6Trace{Name: name}
		for _, e := range m.Trace {
			tr.Costs = append(tr.Costs, e.DRC)
			if e.Reconfigured {
				tr.Reconfigs++
			}
			if e.DRC > tr.MaxDRC {
				tr.MaxDRC = e.DRC
			}
		}
		return tr, nil
	}
	baseTr, err := run("BaseD", sys.BaseD, runtime.TriggerAlways, runtime.PolicyHypervolume)
	if err != nil {
		return nil, err
	}
	redTr, err := run("ReD", sys.ReD, runtime.TriggerOnViolation, runtime.PolicyRET)
	if err != nil {
		return nil, err
	}
	return &Fig6Result{Tasks: n, Events: events, BaseD: baseTr, ReD: redTr}, nil
}

// Render prints both traces side by side plus the summary counts.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: reconfiguration cost trace over %d QoS changes (n=%d)\n", r.Events, r.Tasks)
	fmt.Fprintf(&b, "%-6s %12s %12s\n", "event", "BaseD dRC", "ReD dRC")
	for i := 0; i < len(r.BaseD.Costs) || i < len(r.ReD.Costs); i++ {
		bc, rc := 0.0, 0.0
		if i < len(r.BaseD.Costs) {
			bc = r.BaseD.Costs[i]
		}
		if i < len(r.ReD.Costs) {
			rc = r.ReD.Costs[i]
		}
		fmt.Fprintf(&b, "%-6d %12.3f %12.3f\n", i, bc, rc)
	}
	fmt.Fprintf(&b, "reconfigurations: BaseD=%d ReD=%d\n", r.BaseD.Reconfigs, r.ReD.Reconfigs)
	fmt.Fprintf(&b, "max dRC:          BaseD=%.3f ReD=%.3f\n", r.BaseD.MaxDRC, r.ReD.MaxDRC)
	return b.String()
}

// --- Figure 7 -------------------------------------------------------

// Fig7Series is one application's sweep over pRC.
type Fig7Series struct {
	Tasks int
	// PRC holds the sweep grid.
	PRC []float64
	// RelEnergy is average energy normalised to the pRC=0 value
	// (green curves: decreasing towards pRC=1).
	RelEnergy []float64
	// RelDRC is average reconfiguration cost normalised to the pRC=1
	// value (red curves: maximum at pRC=1).
	RelDRC []float64
}

// Fig7Result is the pRC-sweep figure over several applications.
type Fig7Result struct {
	Series []Fig7Series
}

// Fig7 sweeps pRC from 0 to 1 in steps of 0.1 for up to five
// applications and reports the relative variation of average energy
// and average reconfiguration cost.
func (l *Lab) Fig7() (*Fig7Result, error) {
	sizes := l.Scale.TaskSizes
	if len(sizes) > 5 {
		// The paper plots five applications; take every other size.
		var picked []int
		for i := 1; i < len(sizes); i += 2 {
			picked = append(picked, sizes[i])
		}
		sizes = picked
	}
	res := &Fig7Result{}
	for _, n := range sizes {
		sys, err := l.System(n, false)
		if err != nil {
			return nil, err
		}
		db := sys.Database()
		seed := l.Scale.Seed*53 + int64(n)
		s := Fig7Series{Tasks: n}
		var energies, drcs []float64
		for i := 0; i <= 10; i++ {
			prc := float64(i) / 10
			m, err := l.simulate(sys, db, prc, runtime.TriggerAlways, nil, seed)
			if err != nil {
				return nil, err
			}
			s.PRC = append(s.PRC, prc)
			energies = append(energies, m.AvgEnergyMJ)
			drcs = append(drcs, m.AvgDRC)
		}
		e0 := energies[0]
		d1 := drcs[len(drcs)-1]
		for i := range energies {
			if e0 > 0 {
				s.RelEnergy = append(s.RelEnergy, energies[i]/e0)
			} else {
				s.RelEnergy = append(s.RelEnergy, 1)
			}
			if d1 > 0 {
				s.RelDRC = append(s.RelDRC, drcs[i]/d1)
			} else {
				s.RelDRC = append(s.RelDRC, 0)
			}
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Render prints one block per application.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: relative variation of average energy and reconfiguration cost with pRC\n")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "\nn=%d tasks\n%-6s %12s %12s\n", s.Tasks, "pRC", "rel energy", "rel dRC")
		for i := range s.PRC {
			fmt.Fprintf(&b, "%-6.1f %12.4f %12.4f\n", s.PRC[i], s.RelEnergy[i], s.RelDRC[i])
		}
	}
	return b.String()
}
