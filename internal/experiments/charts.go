package experiments

// Chart constructors: each figure result can render itself as an SVG
// chart via internal/plot, so cmd/experiments -svg emits graphics
// alongside the textual rows.

import (
	"fmt"

	"clrdse/internal/plot"
)

// Charts renders Figure 1 as the paper presents it: the Pareto fronts
// in the (error rate %, energy) plane, and the J_avg bar comparison of
// fixed worst-case versus dynamic adaptation per reliability space.
func (r *Fig1Result) Charts() (*plot.Chart, *plot.BarChart) {
	bars := &plot.BarChart{
		Title:       "Figure 1: average energy, fixed vs dynamic",
		YLabel:      "J_avg (mJ)",
		SeriesNames: []string{"fixed worst-case", "dynamic CLR"},
	}
	for _, s := range r.Systems {
		bars.Groups = append(bars.Groups, plot.BarGroup{
			Label:  s.Name,
			Values: []float64{s.FixedEnergyMJ, s.AvgEnergyMJ},
		})
	}
	return r.Chart(), bars
}

// Chart renders the Figure 1 Pareto fronts in the (error rate %,
// energy) plane, one series per reliability space.
func (r *Fig1Result) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  "Figure 1: energy vs application error rate",
		XLabel: "application error rate (%)",
		YLabel: "energy (mJ)",
	}
	for _, s := range r.Systems {
		series := plot.Series{Name: s.Name, Line: true}
		for _, p := range s.Front {
			series.X = append(series.X, 100*p.ErrorRate)
			series.Y = append(series.Y, p.EnergyMJ)
		}
		c.Series = append(c.Series, series)
	}
	return c
}

// Chart renders the Figure 5 design-point scatter: Pareto points as
// circles, ReD additions as triangles (the paper's '>' markers).
func (r *Fig5Result) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  fmt.Sprintf("Figure 5: stored design points (n=%d)", r.Tasks),
		XLabel: "average makespan (ms)",
		YLabel: "energy (mJ)",
	}
	pareto := plot.Series{Name: "Pareto front"}
	red := plot.Series{Name: "ReD additions", Marker: "triangle"}
	for _, p := range r.Points {
		if p.FromReD {
			red.X = append(red.X, p.MakespanMs)
			red.Y = append(red.Y, p.EnergyMJ)
		} else {
			pareto.X = append(pareto.X, p.MakespanMs)
			pareto.Y = append(pareto.Y, p.EnergyMJ)
		}
	}
	c.Series = append(c.Series, pareto, red)
	return c
}

// Chart renders the Figure 6 reconfiguration-cost traces.
func (r *Fig6Result) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  fmt.Sprintf("Figure 6: dRC per QoS change (n=%d)", r.Tasks),
		XLabel: "QoS requirement change",
		YLabel: "reconfiguration cost (ms)",
	}
	for _, tr := range []Fig6Trace{r.BaseD, r.ReD} {
		s := plot.Series{Name: fmt.Sprintf("%s (%d reconfigs)", tr.Name, tr.Reconfigs), Line: true}
		for i, cost := range tr.Costs {
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, cost)
		}
		c.Series = append(c.Series, s)
	}
	return c
}

// Charts renders the Figure 7 sweep as two charts (relative energy and
// relative reconfiguration cost vs pRC), one series per application.
func (r *Fig7Result) Charts() (*plot.Chart, *plot.Chart) {
	energy := &plot.Chart{
		Title:  "Figure 7a: relative average energy vs pRC",
		XLabel: "pRC",
		YLabel: "energy relative to pRC=0",
	}
	drc := &plot.Chart{
		Title:  "Figure 7b: relative reconfiguration cost vs pRC",
		XLabel: "pRC",
		YLabel: "avg dRC relative to pRC=1",
	}
	for _, s := range r.Series {
		name := fmt.Sprintf("n=%d", s.Tasks)
		energy.Series = append(energy.Series, plot.Series{Name: name, X: s.PRC, Y: s.RelEnergy, Line: true})
		drc.Series = append(drc.Series, plot.Series{Name: name, X: s.PRC, Y: s.RelDRC, Line: true})
	}
	return energy, drc
}
