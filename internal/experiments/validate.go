package experiments

// Model-validation experiment (beyond the paper's own evaluation): the
// whole methodology rests on the closed-form task metrics of Table 2;
// this harness fault-injects actual executions (internal/faultsim) for
// design points drawn from real DSE runs across the application sweep
// and reports how closely the empirical behaviour tracks the analytic
// models.

import (
	"fmt"
	"strings"

	"clrdse/internal/faultsim"
	"clrdse/internal/relmodel"
)

// ValidateRow is one application size's comparison.
type ValidateRow struct {
	Tasks int
	// Points is how many design points were injected.
	Points int
	// Runs is the number of injected executions per point.
	Runs int
	// MaxErrProbGap is the worst absolute gap between empirical and
	// analytic per-task error probability across all points/tasks.
	MaxErrProbGap float64
	// MaxTimeGapPct is the worst relative gap of per-task average
	// execution time, in percent.
	MaxTimeGapPct float64
	// MaxRelGap is the worst absolute gap of application-level
	// functional reliability F_app.
	MaxRelGap float64
	// MaxEnergyGapPct is the worst relative gap of application-level
	// energy J_app, in percent.
	MaxEnergyGapPct float64
}

// ValidateResult is the full validation table.
type ValidateResult struct {
	Rows []ValidateRow
}

// Validate fault-injects up to three representative stored points
// (cheapest, most reliable, median energy) per application size.
func (l *Lab) Validate() (*ValidateResult, error) {
	const runs = 20000
	env := relmodel.DefaultEnv()
	env.LambdaSEUPerMs *= 10 // measurable empirical error rates

	res := &ValidateResult{}
	for _, n := range l.Scale.TaskSizes {
		sys, err := l.System(n, false)
		if err != nil {
			return nil, err
		}
		db := sys.Database()
		picks := representativePoints(db.Len())
		row := ValidateRow{Tasks: n, Runs: runs}
		for _, idx := range picks {
			out, err := faultsim.Run(db.Points[idx].M, faultsim.Params{
				Space: sys.Problem.Space,
				Env:   env,
				Runs:  runs,
				Seed:  l.Scale.Seed*89 + int64(n)*31 + int64(idx),
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: validate n=%d point %d: %w", n, idx, err)
			}
			row.Points++
			if g := out.MaxTaskErrProbGap(); g > row.MaxErrProbGap {
				row.MaxErrProbGap = g
			}
			if g := 100 * out.MaxTaskTimeGapFraction(); g > row.MaxTimeGapPct {
				row.MaxTimeGapPct = g
			}
			if g := abs(out.EmpiricalReliability - out.AnalyticReliability); g > row.MaxRelGap {
				row.MaxRelGap = g
			}
			if out.AnalyticEnergyMJ > 0 {
				if g := 100 * abs(out.EmpiricalEnergyMJ-out.AnalyticEnergyMJ) / out.AnalyticEnergyMJ; g > row.MaxEnergyGapPct {
					row.MaxEnergyGapPct = g
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// representativePoints picks first, middle and last indices of a
// database (IDs are arbitrary but the set spans the stored range).
func representativePoints(n int) []int {
	switch {
	case n <= 0:
		return nil
	case n == 1:
		return []int{0}
	case n == 2:
		return []int{0, 1}
	default:
		return []int{0, n / 2, n - 1}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Render prints the validation table.
func (r *ValidateResult) Render() string {
	var b strings.Builder
	b.WriteString("Model validation: fault-injected executions vs analytical Table 2/3 metrics\n")
	fmt.Fprintf(&b, "%-8s %8s %8s %16s %14s %12s %14s\n",
		"tasks", "points", "runs", "max dErrProb", "max dAvgExT%", "max dF_app", "max dJ_app%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d %8d %8d %16.5f %14.3f %12.5f %14.3f\n",
			row.Tasks, row.Points, row.Runs, row.MaxErrProbGap, row.MaxTimeGapPct, row.MaxRelGap, row.MaxEnergyGapPct)
	}
	return b.String()
}
