package dse

// CSV exporter for stored databases, for external analysis of the
// design-point clouds (Figure 5-style plots in other tooling).

import (
	"encoding/csv"
	"io"
	"strconv"
)

// WriteCSV streams the database's points as CSV with a header row:
// id, makespan_ms, reliability, energy_mj, peak_power_w, mttf_ms, from_red.
func (db *Database) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "makespan_ms", "reliability", "energy_mj", "peak_power_w", "mttf_ms", "from_red"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, p := range db.Points {
		rec := []string{
			strconv.Itoa(p.ID),
			f(p.MakespanMs),
			f(p.Reliability),
			f(p.EnergyMJ),
			f(p.PeakPowerW),
			f(p.MTTFMs),
			strconv.FormatBool(p.FromReD),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
