package dse

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"clrdse/internal/ga"
	"clrdse/internal/mapping"
	"clrdse/internal/pareto"
	"clrdse/internal/platform"
	"clrdse/internal/rng"
)

func TestDatabaseJSONRoundTrip(t *testing.T) {
	p := testProblem(t, 15, false)
	db, err := RunBase(p, smallGA(101))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDatabase(path, p.Space)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() || got.Name != db.Name {
		t.Fatalf("round trip changed shape: %d/%q vs %d/%q", got.Len(), got.Name, db.Len(), db.Name)
	}
	for i := range db.Points {
		a, b := db.Points[i], got.Points[i]
		if !a.M.Equal(b.M) || a.EnergyMJ != b.EnergyMJ || a.Reliability != b.Reliability {
			t.Fatalf("point %d changed in round trip", i)
		}
	}
}

func TestReadDatabaseRejectsWrongPlatform(t *testing.T) {
	p := testProblem(t, 12, false)
	db, err := RunBase(p, smallGA(102))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// A degraded platform invalidates PE bindings beyond its range.
	reduced, err := platform.RemovePE(platform.Default(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if reduced.NumPEs() == 2 {
			break
		}
		reduced, err = platform.RemovePE(reduced, reduced.NumPEs()-1)
		if err != nil {
			t.Fatal(err)
		}
	}
	wrongSpace := &mapping.Space{Graph: p.Space.Graph, Platform: reduced, Catalogue: p.Space.Catalogue}
	if _, err := ReadDatabase(path, wrongSpace); err == nil {
		t.Error("ReadDatabase accepted a database invalid for the platform")
	}
}

func TestReadDatabaseRejectsCorruptFiles(t *testing.T) {
	p := testProblem(t, 10, false)
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDatabase(bad, p.Space); err == nil {
		t.Error("accepted malformed JSON")
	}
	sparse := filepath.Join(dir, "sparse.json")
	if err := writeFile(sparse, `{"Name":"x","Points":[{"ID":5,"M":{"Genes":[]}}]}`); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDatabase(sparse, p.Space); err == nil {
		t.Error("accepted sparse IDs")
	}
	if _, err := ReadDatabase(filepath.Join(dir, "missing.json"), p.Space); err == nil {
		t.Error("accepted missing file")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestReadDatabaseValidatesOnLoad mutates a valid shipped database in
// every way a corrupt artefact could manifest and checks each is
// rejected at load time with a descriptive error, instead of panicking
// (or silently misdeciding) on the embedded target at decision time.
func TestReadDatabaseValidatesOnLoad(t *testing.T) {
	p := testProblem(t, 10, false)
	valid := func() *Database {
		r := rng.New(7)
		db := &Database{Name: "ship"}
		for i := 0; i < 4; i++ {
			db.Points = append(db.Points, &DesignPoint{
				ID: i, M: p.Space.Random(r),
				MakespanMs: 10 + float64(i), Reliability: 0.95,
				EnergyMJ: 100, PeakPowerW: 2, MTTFMs: 1e9,
			})
		}
		return db
	}
	nan := math.NaN()
	cases := []struct {
		name    string
		mutate  func(db *Database)
		wantErr string
	}{
		{"empty point set", func(db *Database) { db.Points = nil }, "no stored design points"},
		{"null point", func(db *Database) { db.Points[2] = nil }, "null"},
		{"missing mapping", func(db *Database) { db.Points[1].M = nil }, "no mapping"},
		{"sparse IDs", func(db *Database) { db.Points[3].ID = 9 }, "dense"},
		{"duplicate IDs", func(db *Database) { db.Points[1].ID = 0 }, "dense"},
		{"NaN makespan", func(db *Database) { db.Points[0].MakespanMs = nan }, "non-finite makespan"},
		{"infinite energy", func(db *Database) { db.Points[0].EnergyMJ = math.Inf(1) }, "non-finite energy"},
		{"NaN reliability", func(db *Database) { db.Points[2].Reliability = nan }, "non-finite reliability"},
		{"non-finite MTTF", func(db *Database) { db.Points[1].MTTFMs = math.Inf(1) }, "non-finite MTTF"},
		{"negative makespan", func(db *Database) { db.Points[0].MakespanMs = -1 }, "makespan must be positive"},
		{"reliability above one", func(db *Database) { db.Points[0].Reliability = 1.5 }, "reliability must be in [0,1]"},
		{"negative energy", func(db *Database) { db.Points[0].EnergyMJ = -3 }, "energy must be non-negative"},
		{"mapping outside space", func(db *Database) { db.Points[0].M.Genes[0].PE = 99 }, "point 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := valid()
			tc.mutate(db)
			// Non-finite values cannot round-trip through JSON (the
			// encoder rejects them), so exercise Validate directly —
			// it is the same check ReadDatabase applies after parsing.
			err := db.Validate(p.Space)
			if err == nil {
				t.Fatalf("Validate accepted a database with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	// The unmutated database passes validation and survives the full
	// write/read cycle.
	db := valid()
	if err := db.Validate(p.Space); err != nil {
		t.Errorf("valid database rejected: %v", err)
	}
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDatabase(path, p.Space); err != nil {
		t.Errorf("valid database failed the read path: %v", err)
	}
}

func TestPruneKeepsEnvelopeAndBudget(t *testing.T) {
	p := testProblem(t, 20, false)
	base, err := RunBase(p, smallGA(103))
	if err != nil {
		t.Fatal(err)
	}
	red, err := RunReD(p, base, smallReD(104))
	if err != nil {
		t.Fatal(err)
	}
	if red.Len() < 6 {
		t.Skip("database too small to exercise pruning")
	}
	budget := red.Len() / 2
	pruned, err := Prune(red, budget, false)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Len() != budget {
		t.Fatalf("pruned to %d, want %d", pruned.Len(), budget)
	}
	// Envelope preserved: best makespan / reliability / energy values
	// survive exactly.
	extreme := func(db *Database, f func(*DesignPoint) float64, min bool) float64 {
		best := f(db.Points[0])
		for _, q := range db.Points {
			v := f(q)
			if (min && v < best) || (!min && v > best) {
				best = v
			}
		}
		return best
	}
	type ext struct {
		f   func(*DesignPoint) float64
		min bool
	}
	for name, e := range map[string]ext{
		"makespan":    {func(d *DesignPoint) float64 { return d.MakespanMs }, true},
		"reliability": {func(d *DesignPoint) float64 { return d.Reliability }, false},
		"energy":      {func(d *DesignPoint) float64 { return d.EnergyMJ }, true},
	} {
		if extreme(red, e.f, e.min) != extreme(pruned, e.f, e.min) {
			t.Errorf("pruning lost the %s extreme", name)
		}
	}
	// IDs re-densified.
	for i, q := range pruned.Points {
		if q.ID != i {
			t.Errorf("pruned point at %d has ID %d", i, q.ID)
		}
	}
}

func TestPruneNoopWhenWithinBudget(t *testing.T) {
	p := testProblem(t, 12, false)
	base, err := RunBase(p, smallGA(105))
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Prune(base, base.Len()+10, false)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Len() != base.Len() {
		t.Errorf("no-op prune changed size: %d vs %d", pruned.Len(), base.Len())
	}
	// Copies, not shared pointers.
	pruned.Points[0].EnergyMJ = -1
	if base.Points[0].EnergyMJ == -1 {
		t.Error("Prune shares point storage with the input")
	}
}

func TestPruneRejectsTinyBudget(t *testing.T) {
	if _, err := Prune(&Database{}, 2, false); err == nil {
		t.Error("Prune accepted budget 2 with three pinned extremes")
	}
	if _, err := Prune(&Database{}, 1, true); err == nil {
		t.Error("Prune accepted budget 1 in CSP mode")
	}
}

func TestPrunePreservesHypervolumeBetterThanPrefix(t *testing.T) {
	p := testProblem(t, 20, false)
	base, err := RunBase(p, ga.Params{PopSize: 40, Generations: 15, Seed: 106})
	if err != nil {
		t.Fatal(err)
	}
	if base.Len() < 8 {
		t.Skip("front too small")
	}
	budget := base.Len() / 2
	pruned, err := Prune(base, budget, false)
	if err != nil {
		t.Fatal(err)
	}
	objs := func(db *Database, n int) [][]float64 {
		var out [][]float64
		for _, q := range db.Points[:n] {
			out = append(out, q.QoSObjs(false))
		}
		return out
	}
	ref := make([]float64, 3)
	for d := range ref {
		for _, o := range objs(base, base.Len()) {
			if o[d] > ref[d] {
				ref[d] = o[d]
			}
		}
		ref[d] *= 1.01
	}
	hvPruned := pareto.Hypervolume(objs(pruned, pruned.Len()), ref)
	hvPrefix := pareto.Hypervolume(objs(base, budget), ref)
	if hvPruned < hvPrefix {
		t.Errorf("contribution-aware pruning HV %v < naive prefix HV %v", hvPruned, hvPrefix)
	}
}

func TestLifetimeObjectiveImprovesMTTF(t *testing.T) {
	plain := testProblem(t, 15, false)
	life := testProblem(t, 15, false)
	life.Lifetime = true
	a, err := RunBase(plain, smallGA(107))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBase(life, smallGA(107))
	if err != nil {
		t.Fatal(err)
	}
	best := func(db *Database) float64 {
		m := 0.0
		for _, q := range db.Points {
			if q.MTTFMs > m {
				m = q.MTTFMs
			}
		}
		return m
	}
	if best(b) < best(a) {
		t.Errorf("lifetime-aware DSE best MTTF %v < plain %v", best(b), best(a))
	}
}

func TestDatabaseCSVExport(t *testing.T) {
	p := testProblem(t, 12, false)
	db, err := RunBase(p, smallGA(131))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := db.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != db.Len()+1 {
		t.Fatalf("csv lines = %d, want header + %d points", len(lines), db.Len())
	}
	if !strings.HasPrefix(lines[0], "id,makespan_ms") {
		t.Errorf("bad header %q", lines[0])
	}
}

// Property: pruning random synthetic databases always preserves the
// per-metric extremes and the budget.
func TestQuickPrunePreservesEnvelope(t *testing.T) {
	f := func(seed uint32, nRaw, budgetRaw uint8) bool {
		n := int(nRaw%30) + 5
		budget := int(budgetRaw%uint8(n-3)) + 3
		r := rng.New(int64(seed))
		db := &Database{Name: "synth"}
		for i := 0; i < n; i++ {
			db.Points = append(db.Points, &DesignPoint{
				ID:          i,
				M:           &mapping.Mapping{},
				MakespanMs:  r.Range(10, 1000),
				Reliability: r.Range(0.8, 0.9999),
				EnergyMJ:    r.Range(50, 5000),
				FromReD:     r.Bool(0.5),
			})
		}
		pruned, err := Prune(db, budget, false)
		if err != nil {
			return false
		}
		if pruned.Len() > db.Len() || (db.Len() > budget && pruned.Len() != budget) {
			return false
		}
		ext := func(ps []*DesignPoint, f func(*DesignPoint) float64, min bool) float64 {
			best := f(ps[0])
			for _, p := range ps {
				v := f(p)
				if (min && v < best) || (!min && v > best) {
					best = v
				}
			}
			return best
		}
		type sel struct {
			f   func(*DesignPoint) float64
			min bool
		}
		for _, e := range []sel{
			{func(d *DesignPoint) float64 { return d.MakespanMs }, true},
			{func(d *DesignPoint) float64 { return d.Reliability }, false},
			{func(d *DesignPoint) float64 { return d.EnergyMJ }, true},
		} {
			if ext(db.Points, e.f, e.min) != ext(pruned.Points, e.f, e.min) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: ReadDatabase(WriteFile(db)) round-trips arbitrary valid
// databases built from random valid mappings.
func TestQuickDatabaseRoundTrip(t *testing.T) {
	p := testProblem(t, 10, false)
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%6) + 1
		r := rng.New(int64(seed))
		db := &Database{Name: "rt"}
		for i := 0; i < n; i++ {
			db.Points = append(db.Points, &DesignPoint{
				ID: i, M: p.Space.Random(r),
				MakespanMs: r.Range(1, 100), Reliability: r.Range(0.9, 1),
				EnergyMJ: r.Range(10, 500),
			})
		}
		path := filepath.Join(t.TempDir(), "db.json")
		if err := db.WriteFile(path); err != nil {
			return false
		}
		got, err := ReadDatabase(path, p.Space)
		if err != nil {
			return false
		}
		if got.Len() != db.Len() {
			return false
		}
		for i := range db.Points {
			if !got.Points[i].M.Equal(db.Points[i].M) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
