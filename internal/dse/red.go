package dse

// This file implements the run-time reconfiguration-cost-aware DSE of
// Section 4.2.1 (ReD). For each design point in the stage-1 solution
// set, the point seeds a secondary multi-objective optimisation whose
// additional objective is the average reconfiguration distance dRC of
// a candidate from the stored optimal set, and whose constraints bound
// the candidate's QoS/performance degradation relative to its seed by
// a tolerance. The non-dominated candidates (with dRC included as an
// objective) that genuinely reduce reconfiguration distance are added
// to the database as "additional non-dominant design points" — the
// '>'-marked points of Figure 5 that let the run-time manager satisfy
// a new QoS specification with cheaper task migration (F''_Op instead
// of F'_Op in Figure 4b).

import (
	"fmt"
	gort "runtime"
	"sync"

	"clrdse/internal/ga"
	"clrdse/internal/mapping"
	"clrdse/internal/schedule"
)

// ReDParams configures the reconfiguration-cost-aware stage.
type ReDParams struct {
	// Tolerance bounds the relative degradation of each metric of a
	// candidate versus its seed point: energy and makespan may grow by
	// at most Tolerance (fraction), reliability may drop by at most
	// Tolerance (absolute, scaled by 1-F headroom). 0 selects 0.10.
	Tolerance float64
	// GA configures each per-seed sub-optimisation; PopSize and
	// Generations default smaller than stage 1 (0 selects 40/25).
	GA ga.Params
	// MaxExtraPerSeed bounds how many additional points one seed may
	// contribute (0 selects 3) so the database stays within the
	// paper's storage constraints.
	MaxExtraPerSeed int
	// Workers is the number of per-seed sub-optimisations run
	// concurrently (0 selects GOMAXPROCS, 1 runs serially). Every
	// sub-GA draws from its own seed-indexed random stream and the
	// fronts are merged in seed order, so the resulting database is
	// byte-identical for any worker count.
	Workers int
}

func (p ReDParams) withDefaults() ReDParams {
	if p.Tolerance == 0 {
		p.Tolerance = 0.10
	}
	if p.GA.PopSize == 0 {
		p.GA.PopSize = 40
	}
	if p.GA.Generations == 0 {
		p.GA.Generations = 25
	}
	if p.MaxExtraPerSeed == 0 {
		p.MaxExtraPerSeed = 3
	}
	return p
}

// RunReD executes the stage-2 optimisation and returns a new database
// containing every BaseD point plus the additional non-dominant,
// reconfiguration-cheap points. The input database is not modified.
func RunReD(p *Problem, base *Database, rp ReDParams) (*Database, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if base.Len() == 0 {
		return nil, fmt.Errorf("dse: ReD needs a non-empty base database")
	}
	rp = rp.withDefaults()
	if rp.Tolerance < 0 || rp.Tolerance >= 1 {
		return nil, fmt.Errorf("dse: ReD tolerance must be in [0,1), got %v", rp.Tolerance)
	}
	ev := NewEvaluator(p)
	baseMaps := base.Mappings()

	out := &Database{Name: "ReD"}
	seen := map[string]bool{}
	for _, bp := range base.Points {
		out.Points = append(out.Points, &DesignPoint{
			ID:          len(out.Points),
			M:           bp.M,
			MakespanMs:  bp.MakespanMs,
			Reliability: bp.Reliability,
			EnergyMJ:    bp.EnergyMJ,
			PeakPowerW:  bp.PeakPowerW,
			MTTFMs:      bp.MTTFMs,
		})
		seen[bp.M.Key()] = true
	}

	// The per-seed sub-optimisations are independent: each draws from
	// its own seed-indexed random stream and only shares the memoising
	// evaluator (whose results do not depend on scheduling order). Run
	// them across a worker pool and merge the fronts serially in seed
	// order, so the output database is byte-identical to a serial run.
	workers := rp.Workers
	if workers <= 0 {
		workers = gort.GOMAXPROCS(0)
	}
	if workers > len(base.Points) {
		workers = len(base.Points)
	}
	type seedResult struct {
		front []redCandidate
		err   error
	}
	results := make([]seedResult, len(base.Points))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				front, err := redForSeed(p, ev, base.Points[i], baseMaps, rp, int64(i))
				results[i] = seedResult{front: front, err: err}
			}
		}()
	}
	for i := range base.Points {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	for seedIdx, seed := range base.Points {
		if results[seedIdx].err != nil {
			return nil, results[seedIdx].err
		}
		// Only keep candidates that are strictly cheaper to reach than
		// the seed itself; a point as expensive as the seed adds
		// storage without adaptation benefit. The threshold depends on
		// the seed alone, so compute it once per seed, not per
		// candidate.
		seedDist := p.Space.AvgDRCTo(seed.M, baseMaps)
		added := 0
		for _, cand := range results[seedIdx].front {
			if added >= rp.MaxExtraPerSeed {
				break
			}
			key := cand.M.Key()
			if seen[key] {
				continue
			}
			if cand.avgDRC >= seedDist {
				continue
			}
			seen[key] = true
			out.Points = append(out.Points, &DesignPoint{
				ID:          len(out.Points),
				M:           cand.M,
				MakespanMs:  cand.res.MakespanMs,
				Reliability: cand.res.Reliability,
				EnergyMJ:    cand.res.EnergyMJ,
				PeakPowerW:  cand.res.PeakPowerW,
				MTTFMs:      cand.res.MTTFMs,
				FromReD:     true,
			})
			added++
		}
	}
	if p.Stats != nil {
		p.Stats.ReDEvals = ev.Evals
		p.Stats.ReDExtras = len(out.ReDPoints())
	}
	return out, nil
}

type redCandidate struct {
	M      *mapping.Mapping
	res    *schedule.Result
	avgDRC float64
}

// redForSeed runs one per-seed sub-optimisation. Objectives:
// (avgDRC to stored set, energy or makespan) minimised; constraints:
// global feasibility plus bounded degradation versus the seed.
func redForSeed(p *Problem, ev *Evaluator, seed *DesignPoint, baseMaps []*mapping.Mapping, rp ReDParams, seedIdx int64) ([]redCandidate, error) {
	tol := rp.Tolerance
	sBound := seed.MakespanMs * (1 + tol)
	if sBound > p.SMaxMs {
		sBound = p.SMaxMs
	}
	jBound := seed.EnergyMJ * (1 + tol)
	fBound := seed.Reliability - tol*(1-p.FMin)
	if fBound < p.FMin {
		fBound = p.FMin
	}

	// GAs re-evaluate cloned genomes every generation; memoise the
	// average reconfiguration distance per distinct genome for the
	// lifetime of this sub-optimisation.
	drc := mapping.NewDRCCache(p.Space, baseMaps)
	obj := func(m *mapping.Mapping) ([]float64, float64, any) {
		res, err := ev.Evaluate(m)
		if err != nil {
			panic("dse: ReD objective on invalid genome: " + err.Error())
		}
		violation := 0.0
		if res.MakespanMs > sBound {
			violation += (res.MakespanMs - sBound) / sBound
		}
		if !p.CSP && res.EnergyMJ > jBound {
			violation += (res.EnergyMJ - jBound) / jBound
		}
		if res.Reliability < fBound {
			violation += fBound - res.Reliability
		}
		avg := drc.AvgDRC(m)
		perf := res.EnergyMJ
		if p.CSP {
			perf = res.MakespanMs
		}
		return []float64{avg, perf}, violation, res
	}

	params := rp.GA
	params.Seed = rp.GA.Seed*1000003 + seedIdx // distinct stream per seed
	params.Seeds = []*mapping.Mapping{seed.M}
	if params.Workers == 0 {
		params.Workers = gort.GOMAXPROCS(0)
	}
	engine := &ga.Engine{Space: p.Space, Eval: obj, Params: params}
	pop, err := engine.Run()
	if err != nil {
		return nil, err
	}
	var out []redCandidate
	for _, ind := range pop.ParetoFront() {
		out = append(out, redCandidate{
			M:      ind.M,
			res:    ind.Payload.(*schedule.Result),
			avgDRC: ind.Objs[0],
		})
	}
	// Cheapest-to-reach candidates first.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].avgDRC < out[j-1].avgDRC; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}
