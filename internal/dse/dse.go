// Package dse implements the design/compile-time exploration of the
// paper's Section 4.2: the system-level multi-objective optimisation
// that produces the stored design-point database used by the run-time
// manager.
//
// Two databases are produced:
//
//   - BaseD — the purely performance-oriented Pareto front w.r.t.
//     (energy J_app, makespan S_app, functional reliability F_app)
//     under the worst-case QoS constraints of Eq. (5). This mirrors
//     the hybrid task-remapping baseline of Rehman et al. [11].
//   - ReD — BaseD plus additional non-dominant design points from the
//     reconfiguration-cost-aware stage of Section 4.2.1: each Pareto
//     point seeds a secondary MOEA that minimises the average
//     reconfiguration distance dRC to the stored set, subject to a
//     bounded degradation of the seed's QoS metrics.
//
// Setting Problem.CSP selects the constraint-satisfaction variant used
// for Table 4 (R(X_i) = 0): the DSE spreads points over the
// (makespan, reliability) QoS plane without optimising energy.
package dse

import (
	"fmt"
	gort "runtime"
	"sync"

	"clrdse/internal/ga"
	"clrdse/internal/mapping"
	"clrdse/internal/relmodel"
	"clrdse/internal/schedule"
)

// Problem is one design-time DSE instance.
type Problem struct {
	// Space is the mapping problem (graph, platform, catalogue).
	Space *mapping.Space
	// Env is the fault/aging environment.
	Env relmodel.Env
	// SMaxMs is the loosest makespan bound the system must ever meet:
	// max(S_SPEC) in Eq. (5). Points above it are infeasible.
	SMaxMs float64
	// FMin is the tightest reliability bound's lower end: min(F_SPEC).
	// Points below it are infeasible.
	FMin float64
	// WMaxW, when positive, caps the peak power W_app of Table 3 —
	// thermal/power-delivery envelopes make instantaneous power a hard
	// platform constraint even where energy is only an objective.
	WMaxW float64
	// ContentionAware selects the shared-interconnect scheduling model
	// (schedule.Evaluator.ContentionAware) for every evaluation in the
	// exploration; the default is the paper's additive-latency model.
	ContentionAware bool
	// CSP, when true, drops the energy objective (R(X_i) = 0),
	// exploring the QoS plane only (the Table 4 setting).
	CSP bool
	// Lifetime, when true, adds system MTTF as a further maximised
	// objective — the extension the paper sketches in Section 4.1
	// ("other metrics such as MTTF can be added to R(X_i) for
	// optimization of system lifetime").
	Lifetime bool
	// Stats, when non-nil, receives exploration statistics from
	// RunBase and RunReD (distinct-genome evaluation counts and result
	// sizes) for scalability reporting.
	Stats *Stats
}

// Stats collects design-time exploration effort figures.
type Stats struct {
	// Stage1Evals counts distinct genomes scheduled by the stage-1
	// MOEA (cache misses, i.e. real schedule evaluations).
	Stage1Evals int
	// Stage1Front is the BaseD size.
	Stage1Front int
	// ReDEvals counts distinct genomes scheduled across all per-seed
	// ReD sub-optimisations.
	ReDEvals int
	// ReDExtras is the number of additional points ReD contributed.
	ReDExtras int
}

// Validate checks the problem definition.
func (p *Problem) Validate() error {
	switch {
	case p.Space == nil:
		return fmt.Errorf("dse: nil Space")
	case p.SMaxMs <= 0:
		return fmt.Errorf("dse: SMaxMs must be positive, got %v", p.SMaxMs)
	case p.FMin < 0 || p.FMin >= 1:
		return fmt.Errorf("dse: FMin must be in [0,1), got %v", p.FMin)
	case p.WMaxW < 0:
		return fmt.Errorf("dse: WMaxW must be non-negative, got %v", p.WMaxW)
	}
	return p.Space.Check()
}

// DesignPoint is one stored configuration with its evaluated metrics.
type DesignPoint struct {
	// ID is the point's index in its database.
	ID int
	// M is the configuration.
	M *mapping.Mapping
	// MakespanMs, Reliability, EnergyMJ, PeakPowerW, MTTFMs are the
	// Table 3 system metrics of the configuration.
	MakespanMs  float64
	Reliability float64
	EnergyMJ    float64
	PeakPowerW  float64
	MTTFMs      float64
	// FromReD marks additional non-dominant points contributed by the
	// reconfiguration-cost-aware stage (the '>' markers in Figure 5).
	FromReD bool
}

// Feasible reports whether the point satisfies a QoS specification
// (S_app <= sSpec and F_app >= fSpec) — the filtering step of
// Algorithm 1, line 3.
func (d *DesignPoint) Feasible(sSpecMs, fSpec float64) bool {
	return d.MakespanMs <= sSpecMs && d.Reliability >= fSpec
}

// QoSObjs returns the minimised QoS-space objective vector used for
// dominance comparisons between stored points: (J, S, 1-F), or (S,
// 1-F) in CSP mode.
func (d *DesignPoint) QoSObjs(csp bool) []float64 {
	if csp {
		return []float64{d.MakespanMs, 1 - d.Reliability}
	}
	return []float64{d.EnergyMJ, d.MakespanMs, 1 - d.Reliability}
}

// Database is an ordered set of stored design points.
type Database struct {
	// Name labels the database ("BaseD", "ReD", ...).
	Name string
	// Version numbers the database's evolution generation. The
	// design-time flow produces version 0; each online re-search
	// (Continuous ReD) proposes active version + 1. Decisions journal
	// the version that produced them, so a fleet's history stays
	// attributable across hot swaps.
	Version uint64 `json:",omitempty"`
	// Points are the stored configurations, ID-dense.
	Points []*DesignPoint
}

// Len returns the number of stored points.
func (db *Database) Len() int { return len(db.Points) }

// ParetoPoints returns the points not contributed by the ReD stage.
func (db *Database) ParetoPoints() []*DesignPoint {
	var ps []*DesignPoint
	for _, p := range db.Points {
		if !p.FromReD {
			ps = append(ps, p)
		}
	}
	return ps
}

// ReDPoints returns the additional points contributed by the ReD
// stage.
func (db *Database) ReDPoints() []*DesignPoint {
	var ps []*DesignPoint
	for _, p := range db.Points {
		if p.FromReD {
			ps = append(ps, p)
		}
	}
	return ps
}

// Mappings returns the stored configurations in ID order.
func (db *Database) Mappings() []*mapping.Mapping {
	ms := make([]*mapping.Mapping, len(db.Points))
	for i, p := range db.Points {
		ms[i] = p.M
	}
	return ms
}

// Evaluator wraps the schedule evaluator with a memoisation cache so
// the GA never schedules the same genome twice.
type Evaluator struct {
	inner *schedule.Evaluator
	mu    sync.Mutex
	cache map[string]*schedule.Result
	// Evals counts distinct evaluations (cache misses).
	Evals int
}

// NewEvaluator builds a caching evaluator for the problem.
func NewEvaluator(p *Problem) *Evaluator {
	return &Evaluator{
		inner: &schedule.Evaluator{Space: p.Space, Env: p.Env, ContentionAware: p.ContentionAware},
		cache: make(map[string]*schedule.Result),
	}
}

// Evaluate returns the schedule result for m, computing it at most
// once per distinct genome.
func (e *Evaluator) Evaluate(m *mapping.Mapping) (*schedule.Result, error) {
	key := m.Key()
	e.mu.Lock()
	if r, ok := e.cache[key]; ok {
		e.mu.Unlock()
		return r, nil
	}
	e.mu.Unlock()
	r, err := e.inner.Evaluate(m)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	// Concurrent callers may race to evaluate the same fresh genome;
	// count the key once so Evals equals the number of distinct
	// genomes regardless of worker interleaving.
	if _, ok := e.cache[key]; !ok {
		e.cache[key] = r
		e.Evals++
	}
	e.mu.Unlock()
	return r, nil
}

// objective builds the stage-1 GA objective for the problem:
// minimise (J, S, 1-F) — or (S, 1-F) in CSP mode — under the
// worst-case constraints of Eq. (5).
func (p *Problem) objective(ev *Evaluator) ga.Objective {
	return func(m *mapping.Mapping) ([]float64, float64, any) {
		res, err := ev.Evaluate(m)
		if err != nil {
			// Engine-produced genomes are always repaired/valid; an
			// error here is a programming bug.
			panic("dse: objective on invalid genome: " + err.Error())
		}
		violation := 0.0
		if res.MakespanMs > p.SMaxMs {
			violation += (res.MakespanMs - p.SMaxMs) / p.SMaxMs
		}
		if res.Reliability < p.FMin {
			violation += p.FMin - res.Reliability
		}
		if p.WMaxW > 0 && res.PeakPowerW > p.WMaxW {
			violation += (res.PeakPowerW - p.WMaxW) / p.WMaxW
		}
		var objs []float64
		if p.CSP {
			objs = []float64{res.MakespanMs, 1 - res.Reliability}
		} else {
			objs = []float64{res.EnergyMJ, res.MakespanMs, 1 - res.Reliability}
		}
		if p.Lifetime {
			objs = append(objs, -res.MTTFMs)
		}
		return objs, violation, res
	}
}

// RunBase executes the stage-1 system-level MOEA and returns the BaseD
// database: the feasible Pareto front w.r.t. the problem's objectives.
func RunBase(p *Problem, params ga.Params) (*Database, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ev := NewEvaluator(p)
	if params.Workers == 0 {
		// The internal objective is thread-safe; use every core.
		params.Workers = gort.GOMAXPROCS(0)
	}
	engine := &ga.Engine{Space: p.Space, Eval: p.objective(ev), Params: params}
	pop, err := engine.Run()
	if err != nil {
		return nil, err
	}
	db := &Database{Name: "BaseD"}
	for _, ind := range pop.ParetoFront() {
		res := ind.Payload.(*schedule.Result)
		db.Points = append(db.Points, &DesignPoint{
			ID:          len(db.Points),
			M:           ind.M,
			MakespanMs:  res.MakespanMs,
			Reliability: res.Reliability,
			EnergyMJ:    res.EnergyMJ,
			PeakPowerW:  res.PeakPowerW,
			MTTFMs:      res.MTTFMs,
		})
	}
	if len(db.Points) == 0 {
		return nil, fmt.Errorf("dse: stage-1 MOEA found no feasible design point (SMax=%v, FMin=%v)", p.SMaxMs, p.FMin)
	}
	if p.Stats != nil {
		p.Stats.Stage1Evals = ev.Evals
		p.Stats.Stage1Front = len(db.Points)
	}
	return db, nil
}
