package dse

// Database persistence. The design-time exploration runs at
// compile time on a workstation; the resulting database ships to the
// embedded target, so it must round-trip losslessly through a
// deployable format. Plain JSON keeps the artefact inspectable.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"clrdse/internal/mapping"
)

// WriteFile stores the database as indented JSON.
func (db *Database) WriteFile(path string) error {
	data, err := json.MarshalIndent(db, "", "  ")
	if err != nil {
		return fmt.Errorf("dse: marshal database %q: %w", db.Name, err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Validate checks that the database is a deployable decision basis:
// non-empty, ID-dense, every point carrying a mapping valid for the
// space and finite, plausible metric values. A corrupt or truncated
// shipped database fails here with a descriptive error instead of
// panicking (or silently misdeciding) at decision time.
func (db *Database) Validate(space *mapping.Space) error {
	if space == nil {
		return fmt.Errorf("dse: database %q: nil space", db.Name)
	}
	if len(db.Points) == 0 {
		return fmt.Errorf("dse: database %q has no stored design points", db.Name)
	}
	for i, p := range db.Points {
		if p == nil {
			return fmt.Errorf("dse: database %q: point at index %d is null", db.Name, i)
		}
		if p.M == nil {
			return fmt.Errorf("dse: database %q: point %d has no mapping", db.Name, i)
		}
		if p.ID != i {
			return fmt.Errorf("dse: database %q: point at index %d has ID %d (IDs must be dense)", db.Name, i, p.ID)
		}
		if err := space.Validate(p.M); err != nil {
			return fmt.Errorf("dse: database %q: point %d: %w", db.Name, i, err)
		}
		for _, m := range []struct {
			name string
			v    float64
		}{
			{"makespan", p.MakespanMs},
			{"reliability", p.Reliability},
			{"energy", p.EnergyMJ},
			{"peak power", p.PeakPowerW},
			{"MTTF", p.MTTFMs},
		} {
			if math.IsNaN(m.v) || math.IsInf(m.v, 0) {
				return fmt.Errorf("dse: database %q: point %d: non-finite %s metric %v", db.Name, i, m.name, m.v)
			}
		}
		if p.MakespanMs <= 0 {
			return fmt.Errorf("dse: database %q: point %d: makespan must be positive, got %v", db.Name, i, p.MakespanMs)
		}
		if p.Reliability < 0 || p.Reliability > 1 {
			return fmt.Errorf("dse: database %q: point %d: reliability must be in [0,1], got %v", db.Name, i, p.Reliability)
		}
		if p.EnergyMJ < 0 {
			return fmt.Errorf("dse: database %q: point %d: energy must be non-negative, got %v", db.Name, i, p.EnergyMJ)
		}
	}
	return nil
}

// ReadDatabase loads a database from JSON and validates every stored
// configuration against the space (the deployment platform must match
// the one the database was built for). See Validate for the checks.
func ReadDatabase(path string, space *mapping.Space) (*Database, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var db Database
	if err := json.Unmarshal(data, &db); err != nil {
		return nil, fmt.Errorf("dse: parse %s: %w", path, err)
	}
	if err := db.Validate(space); err != nil {
		return nil, fmt.Errorf("dse: %s: %w", path, err)
	}
	return &db, nil
}
