package dse

// Database persistence. The design-time exploration runs at
// compile time on a workstation; the resulting database ships to the
// embedded target, so it must round-trip losslessly through a
// deployable format. Plain JSON keeps the artefact inspectable.

import (
	"encoding/json"
	"fmt"
	"os"

	"clrdse/internal/mapping"
)

// WriteFile stores the database as indented JSON.
func (db *Database) WriteFile(path string) error {
	data, err := json.MarshalIndent(db, "", "  ")
	if err != nil {
		return fmt.Errorf("dse: marshal database %q: %w", db.Name, err)
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadDatabase loads a database from JSON and validates every stored
// configuration against the space (the deployment platform must match
// the one the database was built for).
func ReadDatabase(path string, space *mapping.Space) (*Database, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var db Database
	if err := json.Unmarshal(data, &db); err != nil {
		return nil, fmt.Errorf("dse: parse %s: %w", path, err)
	}
	for i, p := range db.Points {
		if p == nil || p.M == nil {
			return nil, fmt.Errorf("dse: %s: point %d has no mapping", path, i)
		}
		if p.ID != i {
			return nil, fmt.Errorf("dse: %s: point at index %d has ID %d (IDs must be dense)", path, i, p.ID)
		}
		if err := space.Validate(p.M); err != nil {
			return nil, fmt.Errorf("dse: %s: point %d: %w", path, i, err)
		}
	}
	return &db, nil
}
