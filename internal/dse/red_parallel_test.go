package dse

import (
	"strconv"
	"testing"
)

// sameDatabase requires two databases to be byte-identical: same
// points in the same order with the same metrics and genomes.
func sameDatabase(t *testing.T, label string, a, b *Database) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: %d points vs %d", label, a.Len(), b.Len())
	}
	for i := range a.Points {
		pa, pb := a.Points[i], b.Points[i]
		if pa.ID != pb.ID || pa.FromReD != pb.FromReD ||
			pa.MakespanMs != pb.MakespanMs || pa.Reliability != pb.Reliability ||
			pa.EnergyMJ != pb.EnergyMJ || pa.PeakPowerW != pb.PeakPowerW ||
			pa.MTTFMs != pb.MTTFMs {
			t.Fatalf("%s: point %d metrics differ:\n%+v\n%+v", label, i, pa, pb)
		}
		if !pa.M.Equal(pb.M) {
			t.Fatalf("%s: point %d genome differs", label, i)
		}
	}
}

// TestRunReDParallelMatchesSerial proves the worker-pool ReD stage is
// deterministic: any worker count must produce the byte-identical
// database a serial run does, including the exploration statistics.
func TestRunReDParallelMatchesSerial(t *testing.T) {
	p := testProblem(t, 20, false)
	base, err := RunBase(p, smallGA(1))
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (*Database, Stats) {
		var st Stats
		p.Stats = &st
		rp := smallReD(2)
		rp.Workers = workers
		db, err := RunReD(p, base, rp)
		if err != nil {
			t.Fatal(err)
		}
		p.Stats = nil
		return db, st
	}
	serial, serialStats := run(1)
	for _, workers := range []int{2, 4, 0} {
		par, parStats := run(workers)
		sameDatabase(t, "workers="+strconv.Itoa(workers), serial, par)
		if serialStats.ReDEvals != parStats.ReDEvals || serialStats.ReDExtras != parStats.ReDExtras {
			t.Errorf("workers=%d: stats differ: serial %+v, parallel %+v", workers, serialStats, parStats)
		}
	}
}
