package dse

// Storage-constrained database pruning. The paper's conclusion flags
// that "storing multiple design points for each possible operating
// scenario can lead to inadequate storage and longer run-time DSE":
// the stored database lives in the control unit's limited memory and
// every run-time decision scans it. Prune shrinks a database to a
// point budget while preserving what the run-time manager needs:
//
//   - the QoS envelope — the extreme points in makespan and
//     reliability stay, so the feasible range of specifications does
//     not shrink;
//   - coverage — remaining Pareto points are dropped in ascending
//     order of exclusive hyper-volume contribution (the least a point
//     adds to the dominated region, the first it goes);
//   - reachability — ReD-contributed points are preferentially kept
//     over the Pareto points they shadow only when the budget allows,
//     i.e. Pareto points are pruned last among equals.

import (
	"fmt"
	"math"
	"sort"

	"clrdse/internal/pareto"
)

// Prune returns a copy of the database reduced to at most maxPoints
// stored points (IDs re-densified). The budget must cover the pinned
// QoS-envelope extremes: at least 3 points (fastest, most reliable,
// cheapest), or 2 in CSP mode where energy is not an objective.
func Prune(db *Database, maxPoints int, csp bool) (*Database, error) {
	minBudget := 3
	if csp {
		minBudget = 2
	}
	if maxPoints < minBudget {
		return nil, fmt.Errorf("dse: Prune needs maxPoints >= %d, got %d", minBudget, maxPoints)
	}
	out := &Database{Name: db.Name + "-pruned"}
	if db.Len() <= maxPoints {
		for _, p := range db.Points {
			q := *p
			q.ID = len(out.Points)
			out.Points = append(out.Points, &q)
		}
		return out, nil
	}

	keep := make([]bool, db.Len())
	// Pin the QoS envelope: fastest, most reliable, and cheapest
	// points survive unconditionally.
	pin := func(better func(a, b *DesignPoint) bool) {
		best := 0
		for i, p := range db.Points {
			if better(p, db.Points[best]) {
				best = i
			}
		}
		keep[best] = true
	}
	pin(func(a, b *DesignPoint) bool { return a.MakespanMs < b.MakespanMs })
	pin(func(a, b *DesignPoint) bool { return a.Reliability > b.Reliability })
	if !csp {
		pin(func(a, b *DesignPoint) bool { return a.EnergyMJ < b.EnergyMJ })
	}

	// Rank the rest by exclusive hyper-volume contribution in the QoS
	// objective space, with the reference point just outside the
	// database's own envelope.
	objs := make([][]float64, db.Len())
	for i, p := range db.Points {
		objs[i] = p.QoSObjs(csp)
	}
	ref := make([]float64, len(objs[0]))
	for d := range ref {
		worst := math.Inf(-1)
		for _, o := range objs {
			worst = math.Max(worst, o[d])
		}
		ref[d] = worst * 1.01
		if ref[d] == 0 {
			ref[d] = 1e-9
		}
	}
	contrib := pareto.Contribution(objs, ref)

	type cand struct {
		idx   int
		score float64
	}
	var cands []cand
	for i := range db.Points {
		if keep[i] {
			continue
		}
		// Pareto points outrank ReD additions at equal contribution;
		// ReD points are recoverable by re-running the ReD stage,
		// while losing Pareto points shrinks the quality frontier.
		bonus := 0.0
		if !db.Points[i].FromReD {
			bonus = 1e-12
		}
		cands = append(cands, cand{idx: i, score: contrib[i] + bonus})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return cands[a].idx < cands[b].idx
	})
	pinned := 0
	for _, k := range keep {
		if k {
			pinned++
		}
	}
	for _, c := range cands {
		if pinned >= maxPoints {
			break
		}
		keep[c.idx] = true
		pinned++
	}

	for i, p := range db.Points {
		if !keep[i] {
			continue
		}
		q := *p
		q.ID = len(out.Points)
		out.Points = append(out.Points, &q)
	}
	return out, nil
}
