package dse

import (
	"testing"

	"clrdse/internal/ga"
	"clrdse/internal/mapping"
	"clrdse/internal/pareto"
	"clrdse/internal/platform"
	"clrdse/internal/relmodel"
	"clrdse/internal/rng"
	"clrdse/internal/schedule"
	"clrdse/internal/taskgraph"
)

func testProblem(t *testing.T, n int, csp bool) *Problem {
	t.Helper()
	plat := platform.Default()
	g, err := taskgraph.Generate(taskgraph.GenParams{Seed: 41, NumTasks: n}, plat)
	if err != nil {
		t.Fatal(err)
	}
	return &Problem{
		Space:  &mapping.Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()},
		Env:    relmodel.DefaultEnv(),
		SMaxMs: g.PeriodMs,
		FMin:   0.90,
		CSP:    csp,
	}
}

func smallGA(seed int64) ga.Params {
	return ga.Params{PopSize: 24, Generations: 10, Seed: seed}
}

func smallReD(seed int64) ReDParams {
	return ReDParams{GA: ga.Params{PopSize: 16, Generations: 8, Seed: seed}, MaxExtraPerSeed: 2}
}

func TestRunBaseProducesFeasibleFront(t *testing.T) {
	p := testProblem(t, 20, false)
	db, err := RunBase(p, smallGA(1))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 {
		t.Fatal("empty BaseD")
	}
	for _, pt := range db.Points {
		if pt.MakespanMs > p.SMaxMs {
			t.Errorf("point %d violates SMax: %v > %v", pt.ID, pt.MakespanMs, p.SMaxMs)
		}
		if pt.Reliability < p.FMin {
			t.Errorf("point %d violates FMin: %v < %v", pt.ID, pt.Reliability, p.FMin)
		}
		if pt.FromReD {
			t.Errorf("BaseD point %d marked FromReD", pt.ID)
		}
		if err := p.Space.Validate(pt.M); err != nil {
			t.Errorf("point %d invalid: %v", pt.ID, err)
		}
	}
}

func TestRunBaseFrontNonDominated(t *testing.T) {
	p := testProblem(t, 20, false)
	db, err := RunBase(p, smallGA(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range db.Points {
		for j, b := range db.Points {
			if i != j && pareto.Dominates(a.QoSObjs(false), b.QoSObjs(false)) {
				t.Fatalf("point %d dominates point %d in BaseD", i, j)
			}
		}
	}
}

func TestRunBaseCSPDropsEnergyObjective(t *testing.T) {
	p := testProblem(t, 15, true)
	db, err := RunBase(p, smallGA(3))
	if err != nil {
		t.Fatal(err)
	}
	// In CSP mode, QoS objectives are 2-D.
	if got := len(db.Points[0].QoSObjs(true)); got != 2 {
		t.Errorf("CSP objective dim = %d, want 2", got)
	}
	for i, a := range db.Points {
		for j, b := range db.Points {
			if i != j && pareto.Dominates(a.QoSObjs(true), b.QoSObjs(true)) {
				t.Fatalf("CSP front not mutually non-dominated (%d vs %d)", i, j)
			}
		}
	}
}

func TestRunBaseDeterministic(t *testing.T) {
	p := testProblem(t, 15, false)
	a, err := RunBase(p, smallGA(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBase(p, smallGA(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Points {
		if !a.Points[i].M.Equal(b.Points[i].M) {
			t.Fatal("same seed produced different databases")
		}
	}
}

func TestRunBaseInfeasibleProblem(t *testing.T) {
	p := testProblem(t, 15, false)
	p.FMin = 0.999999 // unattainable
	if _, err := RunBase(p, smallGA(5)); err == nil {
		t.Error("RunBase should fail when no feasible point exists")
	}
}

func TestProblemValidate(t *testing.T) {
	p := testProblem(t, 10, false)
	cases := []func(*Problem){
		func(q *Problem) { q.Space = nil },
		func(q *Problem) { q.SMaxMs = 0 },
		func(q *Problem) { q.FMin = 1 },
		func(q *Problem) { q.FMin = -0.1 },
	}
	for i, mut := range cases {
		q := *p
		mut(&q)
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad problem", i)
		}
	}
}

func TestRunReDAddsCheaperPoints(t *testing.T) {
	p := testProblem(t, 25, false)
	base, err := RunBase(p, smallGA(6))
	if err != nil {
		t.Fatal(err)
	}
	red, err := RunReD(p, base, smallReD(7))
	if err != nil {
		t.Fatal(err)
	}
	if red.Len() < base.Len() {
		t.Fatalf("ReD lost points: %d < %d", red.Len(), base.Len())
	}
	// Every base point is preserved, in order, at the head.
	for i, bp := range base.Points {
		if !red.Points[i].M.Equal(bp.M) {
			t.Fatalf("ReD reordered base point %d", i)
		}
	}
	extra := red.ReDPoints()
	if len(extra)+len(red.ParetoPoints()) != red.Len() {
		t.Error("ReD/Pareto partition inconsistent")
	}
	baseMaps := base.Mappings()
	for _, ep := range extra {
		if !ep.FromReD {
			t.Error("extra point not flagged FromReD")
		}
		// The whole purpose: extra points are cheaper to reach from
		// the stored set than at least the global average.
		if err := p.Space.Validate(ep.M); err != nil {
			t.Errorf("extra point invalid: %v", err)
		}
		// And they satisfy the global constraints.
		if ep.MakespanMs > p.SMaxMs || ep.Reliability < p.FMin {
			t.Errorf("extra point violates global constraints: S=%v F=%v", ep.MakespanMs, ep.Reliability)
		}
		_ = baseMaps
	}
}

func TestRunReDExtrasAreCheaperThanTheirSeeds(t *testing.T) {
	p := testProblem(t, 25, false)
	base, err := RunBase(p, smallGA(8))
	if err != nil {
		t.Fatal(err)
	}
	red, err := RunReD(p, base, smallReD(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(red.ReDPoints()) == 0 {
		t.Skip("no extra points found at this scale")
	}
	baseMaps := base.Mappings()
	maxSeedDist := 0.0
	for _, bp := range base.Points {
		if d := p.Space.AvgDRCTo(bp.M, baseMaps); d > maxSeedDist {
			maxSeedDist = d
		}
	}
	for _, ep := range red.ReDPoints() {
		if d := p.Space.AvgDRCTo(ep.M, baseMaps); d >= maxSeedDist {
			t.Errorf("extra point avg dRC %v >= worst seed %v", d, maxSeedDist)
		}
	}
}

func TestRunReDRespectsMaxExtraPerSeed(t *testing.T) {
	p := testProblem(t, 20, false)
	base, err := RunBase(p, smallGA(10))
	if err != nil {
		t.Fatal(err)
	}
	rp := smallReD(11)
	rp.MaxExtraPerSeed = 1
	red, err := RunReD(p, base, rp)
	if err != nil {
		t.Fatal(err)
	}
	if got, max := len(red.ReDPoints()), base.Len(); got > max {
		t.Errorf("extras = %d, want <= %d (1 per seed)", got, max)
	}
}

func TestRunReDRejectsBadInputs(t *testing.T) {
	p := testProblem(t, 10, false)
	if _, err := RunReD(p, &Database{}, smallReD(12)); err == nil {
		t.Error("RunReD accepted empty base")
	}
	base, err := RunBase(p, smallGA(13))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunReD(p, base, ReDParams{Tolerance: 2, GA: smallGA(13)}); err == nil {
		t.Error("RunReD accepted tolerance 2")
	}
}

func TestEvaluatorCaches(t *testing.T) {
	p := testProblem(t, 15, false)
	ev := NewEvaluator(p)
	m := p.Space.Random(rng.New(14))
	a, err := ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ev.Evaluate(m.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache miss for identical genome")
	}
	if ev.Evals != 1 {
		t.Errorf("Evals = %d, want 1", ev.Evals)
	}
}

func TestFeasibleFilter(t *testing.T) {
	d := &DesignPoint{MakespanMs: 100, Reliability: 0.95}
	if !d.Feasible(100, 0.95) {
		t.Error("boundary spec should be feasible")
	}
	if d.Feasible(99, 0.95) {
		t.Error("tighter makespan should be infeasible")
	}
	if d.Feasible(100, 0.96) {
		t.Error("tighter reliability should be infeasible")
	}
}

func TestDatabaseAccessors(t *testing.T) {
	db := &Database{Name: "x", Points: []*DesignPoint{
		{ID: 0, M: &mapping.Mapping{}},
		{ID: 1, M: &mapping.Mapping{}, FromReD: true},
	}}
	if db.Len() != 2 || len(db.ParetoPoints()) != 1 || len(db.ReDPoints()) != 1 {
		t.Error("accessor counts wrong")
	}
	if len(db.Mappings()) != 2 {
		t.Error("Mappings length wrong")
	}
}

func TestPeakPowerConstraint(t *testing.T) {
	// An unconstrained run establishes the peak-power range; a capped
	// run must keep every stored point under the cap.
	free := testProblem(t, 20, false)
	base, err := RunBase(free, smallGA(141))
	if err != nil {
		t.Fatal(err)
	}
	minW, maxW := 1e18, 0.0
	for _, p := range base.Points {
		if p.PeakPowerW < minW {
			minW = p.PeakPowerW
		}
		if p.PeakPowerW > maxW {
			maxW = p.PeakPowerW
		}
	}
	if maxW <= minW {
		t.Skip("no peak-power spread to constrain")
	}
	cap := (minW + maxW) / 2
	capped := testProblem(t, 20, false)
	capped.WMaxW = cap
	db, err := RunBase(capped, smallGA(141))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range db.Points {
		if p.PeakPowerW > cap+1e-9 {
			t.Errorf("point %d peak power %v exceeds cap %v", p.ID, p.PeakPowerW, cap)
		}
	}
	bad := testProblem(t, 10, false)
	bad.WMaxW = -1
	if err := bad.Validate(); err == nil {
		t.Error("accepted negative WMaxW")
	}
}

func TestContentionAwareDSE(t *testing.T) {
	// A contention-aware exploration must produce points whose stored
	// makespans reflect serialised transfers: re-evaluating them with
	// the contention model reproduces the stored values exactly, while
	// the additive model can only be equal or faster.
	p := testProblem(t, 20, false)
	p.ContentionAware = true
	db, err := RunBase(p, smallGA(151))
	if err != nil {
		t.Fatal(err)
	}
	bus := &schedule.Evaluator{Space: p.Space, Env: p.Env, ContentionAware: true}
	plain := &schedule.Evaluator{Space: p.Space, Env: p.Env}
	for _, pt := range db.Points {
		rb, err := bus.Evaluate(pt.M)
		if err != nil {
			t.Fatal(err)
		}
		if rb.MakespanMs != pt.MakespanMs {
			t.Fatalf("stored makespan %v != contention re-evaluation %v", pt.MakespanMs, rb.MakespanMs)
		}
		rp, err := plain.Evaluate(pt.M)
		if err != nil {
			t.Fatal(err)
		}
		if rp.MakespanMs > rb.MakespanMs+1e-9 {
			t.Fatalf("additive model slower than contention model: %v > %v", rp.MakespanMs, rb.MakespanMs)
		}
	}
}
