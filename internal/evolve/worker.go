package evolve

// The background evolution loop. A Worker drives one database cohort
// through the Continuous-ReD state machine:
//
//	no candidate  --propose-->  shadow window  --agree-->  cutover
//	                                 |
//	                                 +-------diverge-----> drop
//
// Each Step is one transition attempt: with no candidate installed it
// folds the cohort's journal and proposes the next version; with a
// candidate whose shadow window has accumulated enough dual-served
// events it cuts over (agreement at or above threshold, and — in a
// cluster — every alive peer active on the same version) or withdraws
// the candidate. Cutover and rollback themselves live in the fleet
// registry; the worker only decides when to invoke them.

import (
	"context"
	"errors"
	"log/slog"
	"time"

	"clrdse/internal/dse"
	"clrdse/internal/fleet"
	"clrdse/internal/obs"
)

// Registry is the slice of *fleet.Registry the worker drives. An
// interface so tests can script cohort state without a full fleet.
type Registry interface {
	ActiveDatabase(name string) (*dse.Database, error)
	DecisionsForDatabase(name string, limit int) []obs.Entry
	ProposeDatabase(name string, db *dse.Database) error
	CutoverDatabase(name string) error
	DropCandidate(name string) error
	EvolveStatus(name string) (fleet.EvolveStatus, error)
}

// Worker periodically evolves one database cohort.
type Worker struct {
	// Registry is the fleet being served; Database names the cohort.
	Registry Registry
	Database string
	// Proposer re-runs the search. Its determinism contract is what
	// makes the whole loop reproducible.
	Proposer *Proposer
	// Interval is the tick period of Run (0 selects 1 minute).
	Interval time.Duration
	// Threshold is the shadow-window agreement fraction at or above
	// which a candidate is cut over (0 selects 0.95).
	Threshold float64
	// MinShadow is how many dual-served events the shadow window must
	// accumulate before the candidate is judged (0 selects 256).
	MinShadow uint64
	// Agreement, when non-nil, gates cutover on external consensus —
	// the cluster layer's "every alive peer is active on the same
	// version" check. Returning false defers the cutover to a later
	// tick; an error is logged and also defers.
	Agreement func(ctx context.Context, database string) (bool, error)
	// Reconcile, when non-nil, runs first on every Step — the cluster
	// layer's catch-up hook (CatchUpVersions): the cutover gate is not
	// atomic across nodes, so a peer can cut over first, after which
	// this node's Agreement stays false forever unless it adopts the
	// winner's database. Reconcile returning true means a database was
	// adopted; the step then ends (cohort state just changed under us)
	// and the next tick resumes from the adopted version. An error is
	// logged, never fatal.
	Reconcile func(ctx context.Context, database string) (bool, error)
	// Logger receives state-transition lines (nil selects the default).
	Logger *slog.Logger
}

func (w *Worker) log() *slog.Logger {
	if w.Logger != nil {
		return w.Logger
	}
	return slog.Default()
}

func (w *Worker) threshold() float64 {
	if w.Threshold <= 0 {
		return 0.95
	}
	return w.Threshold
}

func (w *Worker) minShadow() uint64 {
	if w.MinShadow == 0 {
		return 256
	}
	return w.MinShadow
}

// Step attempts one state-machine transition for the cohort and
// reports what it did. Expected non-transitions (not enough evidence,
// search converged onto the active set, shadow window still filling,
// cluster not yet in agreement) return a nil error.
func (w *Worker) Step(ctx context.Context) error {
	if w.Reconcile != nil {
		adopted, err := w.Reconcile(ctx, w.Database)
		switch {
		case err != nil:
			w.log().WarnContext(ctx, "evolve: version catch-up failed", "db", w.Database, "err", err)
		case adopted:
			w.log().InfoContext(ctx, "evolve: adopted a peer's database; resuming from it next tick",
				"db", w.Database)
			return nil
		}
	}
	st, err := w.Registry.EvolveStatus(w.Database)
	if err != nil {
		return err
	}
	if !st.HasCandidate {
		return w.propose(ctx)
	}
	if st.ShadowEvents < w.minShadow() {
		return nil // window still filling
	}
	if st.Agreement < w.threshold() {
		w.log().InfoContext(ctx, "evolve: candidate rejected by shadow window",
			"db", w.Database, "candidate_version", st.CandidateVersion,
			"agreement", st.Agreement, "threshold", w.threshold(),
			"shadow_events", st.ShadowEvents, "divergences", st.Divergences)
		return w.Registry.DropCandidate(w.Database)
	}
	if w.Agreement != nil {
		ok, err := w.Agreement(ctx, w.Database)
		if err != nil {
			w.log().WarnContext(ctx, "evolve: cluster version agreement check failed; deferring cutover",
				"db", w.Database, "err", err)
			return nil
		}
		if !ok {
			w.log().InfoContext(ctx, "evolve: cluster not in version agreement; deferring cutover",
				"db", w.Database, "candidate_version", st.CandidateVersion)
			return nil
		}
	}
	if err := w.Registry.CutoverDatabase(w.Database); err != nil {
		return err
	}
	w.log().InfoContext(ctx, "evolve: cutover",
		"db", w.Database, "version", st.CandidateVersion,
		"agreement", st.Agreement, "shadow_events", st.ShadowEvents)
	return nil
}

// propose folds the cohort's journal and installs the re-search result
// as the candidate.
func (w *Worker) propose(ctx context.Context) error {
	active, err := w.Registry.ActiveDatabase(w.Database)
	if err != nil {
		return err
	}
	entries := w.Registry.DecisionsForDatabase(w.Database, 0)
	cand, err := w.Proposer.Propose(active, entries)
	switch {
	case errors.Is(err, ErrInsufficientEvidence), errors.Is(err, ErrNoChange):
		w.log().DebugContext(ctx, "evolve: no proposal", "db", w.Database, "reason", err)
		return nil
	case err != nil:
		return err
	}
	if err := w.Registry.ProposeDatabase(w.Database, cand); err != nil {
		// A concurrent cutover can outdate the proposal between the
		// search and the install; the next tick re-proposes against the
		// new active version.
		if errors.Is(err, fleet.ErrCandidateVersion) {
			w.log().InfoContext(ctx, "evolve: proposal outdated by concurrent cutover", "db", w.Database)
			return nil
		}
		return err
	}
	w.log().InfoContext(ctx, "evolve: candidate proposed",
		"db", w.Database, "version", cand.Version, "points", cand.Len(),
		"active_points", active.Len())
	return nil
}

// Run steps the worker every Interval until ctx is cancelled. Step
// errors are logged, never fatal: the loop is a background optimiser,
// and serving must not depend on it.
func (w *Worker) Run(ctx context.Context) {
	interval := w.Interval
	if interval <= 0 {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := w.Step(ctx); err != nil {
				w.log().WarnContext(ctx, "evolve: step failed", "db", w.Database, "err", err)
			}
		}
	}
}
