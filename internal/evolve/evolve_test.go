package evolve

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"clrdse/internal/dse"
	"clrdse/internal/fleet"
	"clrdse/internal/ga"
	"clrdse/internal/mapping"
	"clrdse/internal/obs"
	"clrdse/internal/platform"
	"clrdse/internal/relmodel"
	"clrdse/internal/rng"
	"clrdse/internal/runtime"
	"clrdse/internal/taskgraph"
)

// fixture is one small design-time result shared across the package's
// tests (the re-search dominates runtime, so it is built once).
type fixture struct {
	problem *dse.Problem
	active  *dse.Database
}

var (
	fixOnce sync.Once
	fix     fixture
	fixErr  error
)

func getFixture(t testing.TB) fixture {
	t.Helper()
	fixOnce.Do(func() {
		plat := platform.Default()
		g, err := taskgraph.Generate(taskgraph.GenParams{Seed: 17, NumTasks: 16}, plat)
		if err != nil {
			fixErr = err
			return
		}
		prob := &dse.Problem{
			Space:  &mapping.Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()},
			Env:    relmodel.DefaultEnv(),
			SMaxMs: g.PeriodMs,
			FMin:   0.90,
		}
		base, err := dse.RunBase(prob, ga.Params{PopSize: 20, Generations: 8, Seed: 3})
		if err != nil {
			fixErr = err
			return
		}
		active, err := dse.RunReD(prob, base, dse.ReDParams{
			GA: ga.Params{PopSize: 12, Generations: 6, Seed: 4}, MaxExtraPerSeed: 2,
		})
		if err != nil {
			fixErr = err
			return
		}
		fix = fixture{problem: prob, active: active}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

// journalFor synthesises n observed-decision entries whose specs are
// drawn from the database's own QoS model — the shape a real serving
// journal has.
func journalFor(db *dse.Database, seed int64, n int) []obs.Entry {
	q := runtime.ModelFromDatabase(db)
	stream := q.Stream()
	src := rng.New(seed)
	entries := make([]obs.Entry, n)
	for i := range entries {
		spec := stream.Next(src)
		entries[i] = obs.Entry{
			Device: "dev-0", Seq: uint64(i + 1),
			SpecSMaxMs: spec.SMaxMs, SpecFMin: spec.FMin,
		}
	}
	return entries
}

func TestObserveOrderIndependent(t *testing.T) {
	f := getFixture(t)
	entries := journalFor(f.active, 21, 100)
	// Degraded answers and pre-spec-recording entries must be skipped.
	entries = append(entries,
		obs.Entry{Device: "dev-1", Seq: 1, Degraded: true, SpecSMaxMs: 5, SpecFMin: 0.95},
		obs.Entry{Device: "dev-2", Seq: 1},
	)
	fwd := Observe(entries)
	if fwd.Events != 100 {
		t.Errorf("Events = %d, want 100 (degraded and spec-less entries skipped)", fwd.Events)
	}

	rev := make([]obs.Entry, len(entries))
	for i, e := range entries {
		rev[len(entries)-1-i] = e
	}
	bwd := Observe(rev)
	a, err := json.Marshal(fwd)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(bwd)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("distribution depends on entry order:\n  fwd %s\n  bwd %s", a, b)
	}
	if fwd.Fingerprint() != bwd.Fingerprint() {
		t.Errorf("fingerprint depends on entry order: %x vs %x", fwd.Fingerprint(), bwd.Fingerprint())
	}

	total := 0
	for _, bkt := range fwd.Buckets {
		total += bkt.Count
	}
	if total != fwd.Events {
		t.Errorf("bucket counts sum to %d, want %d", total, fwd.Events)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	f := getFixture(t)
	entries := journalFor(f.active, 22, 64)
	base := Observe(entries)
	grown := Observe(append(entries, obs.Entry{SpecSMaxMs: 123.456, SpecFMin: 0.91}))
	if base.Fingerprint() == grown.Fingerprint() {
		t.Error("fingerprint unchanged by an extra observed event")
	}
	if empty := (Observe(nil)); empty.Events != 0 || len(empty.Buckets) != 0 {
		t.Errorf("empty journal folded to %+v", empty)
	}
}

func proposerFor(f fixture) *Proposer {
	return &Proposer{
		Problem:   f.problem,
		StageOne:  ga.Params{PopSize: 16, Generations: 6},
		ReD:       dse.ReDParams{GA: ga.Params{PopSize: 10, Generations: 4}, MaxExtraPerSeed: 1},
		Seed:      42,
		MinEvents: 32,
	}
}

// TestProposeDeterministic is the tentpole's reproducibility claim:
// the same (seed, active database, journal state) must propose the
// byte-identical candidate database, however many times and in
// whatever process it runs.
func TestProposeDeterministic(t *testing.T) {
	f := getFixture(t)
	entries := journalFor(f.active, 23, 120)

	first, err := proposerFor(f).Propose(f.active, entries)
	if err != nil {
		t.Fatal(err)
	}
	if first.Version != f.active.Version+1 {
		t.Errorf("proposed version %d, want %d", first.Version, f.active.Version+1)
	}
	if first.Name != f.active.Name {
		t.Errorf("proposed name %q, want %q", first.Name, f.active.Name)
	}
	if first.Len() == 0 {
		t.Fatal("proposed an empty database")
	}
	if err := first.Validate(f.problem.Space); err != nil {
		t.Fatalf("proposed database fails validation: %v", err)
	}

	// A fresh proposer over a reordered journal: byte-identical result.
	rev := make([]obs.Entry, len(entries))
	for i, e := range entries {
		rev[len(entries)-1-i] = e
	}
	second, err := proposerFor(f).Propose(f.active, rev)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(second)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("same journal state and seed proposed different databases")
	}

	// A different root seed explores differently (the counter-claim
	// that makes the determinism assertion meaningful). Different
	// search seeds may still converge, so only warn when they do.
	p := proposerFor(f)
	p.Seed = 43
	other, err := p.Propose(f.active, entries)
	if err != nil && !errors.Is(err, ErrNoChange) {
		t.Fatal(err)
	}
	if err == nil {
		if c, _ := json.Marshal(other); string(c) == string(a) {
			t.Log("note: different seeds converged onto the same proposal")
		}
	}
}

func TestProposeErrors(t *testing.T) {
	f := getFixture(t)
	p := proposerFor(f)
	if _, err := p.Propose(f.active, journalFor(f.active, 24, 10)); !errors.Is(err, ErrInsufficientEvidence) {
		t.Errorf("10 events under a 32-event floor: %v, want ErrInsufficientEvidence", err)
	}
	if _, err := (&Proposer{}).Propose(f.active, nil); err == nil {
		t.Error("nil problem accepted")
	}
	if _, err := p.Propose(&dse.Database{}, journalFor(f.active, 25, 64)); err == nil {
		t.Error("empty active database accepted")
	}
	// The envelope must only ever tighten: a margin cannot push the
	// re-search beyond the design-time worst case.
	loose := journalFor(f.active, 26, 64)
	for i := range loose {
		loose[i].SpecSMaxMs = f.problem.SMaxMs * 10
		loose[i].SpecFMin = f.problem.FMin / 2
	}
	got, err := p.Propose(f.active, loose)
	if err != nil && !errors.Is(err, ErrNoChange) {
		t.Fatalf("loose journal: %v", err)
	}
	if err == nil {
		for _, pt := range got.Points {
			if pt.MakespanMs > f.problem.SMaxMs || pt.Reliability < f.problem.FMin {
				t.Errorf("point outside the design-time envelope: S %.3f F %.5f", pt.MakespanMs, pt.Reliability)
			}
		}
	}
}

// fakeRegistry scripts cohort state for the worker's state machine.
type fakeRegistry struct {
	status   fleet.EvolveStatus
	active   *dse.Database
	entries  []obs.Entry
	proposed *dse.Database
	propErr  error
	cutovers int
	drops    int
}

func (f *fakeRegistry) ActiveDatabase(string) (*dse.Database, error) { return f.active, nil }
func (f *fakeRegistry) DecisionsForDatabase(string, int) []obs.Entry { return f.entries }
func (f *fakeRegistry) ProposeDatabase(_ string, db *dse.Database) error {
	if f.propErr != nil {
		return f.propErr
	}
	f.proposed = db
	return nil
}
func (f *fakeRegistry) CutoverDatabase(string) error { f.cutovers++; return nil }
func (f *fakeRegistry) DropCandidate(string) error   { f.drops++; return nil }
func (f *fakeRegistry) EvolveStatus(string) (fleet.EvolveStatus, error) {
	return f.status, nil
}

func workerOn(f fixture, reg *fakeRegistry) *Worker {
	return &Worker{
		Registry:  reg,
		Database:  "red",
		Proposer:  proposerFor(f),
		Threshold: 0.9,
		MinShadow: 16,
	}
}

func TestWorkerProposes(t *testing.T) {
	f := getFixture(t)
	ctx := context.Background()

	// Too little evidence: benign no-op, not an error.
	reg := &fakeRegistry{active: f.active, entries: journalFor(f.active, 31, 4)}
	if err := workerOn(f, reg).Step(ctx); err != nil {
		t.Fatalf("insufficient evidence surfaced as error: %v", err)
	}
	if reg.proposed != nil {
		t.Fatal("proposed despite insufficient evidence")
	}

	// Enough evidence: the worker installs a version-advanced candidate.
	reg = &fakeRegistry{active: f.active, entries: journalFor(f.active, 32, 80)}
	if err := workerOn(f, reg).Step(ctx); err != nil {
		t.Fatal(err)
	}
	if reg.proposed == nil {
		t.Fatal("no candidate proposed")
	}
	if reg.proposed.Version != f.active.Version+1 {
		t.Errorf("candidate version %d, want %d", reg.proposed.Version, f.active.Version+1)
	}

	// A proposal outdated by a concurrent cutover is benign.
	reg = &fakeRegistry{active: f.active, entries: journalFor(f.active, 32, 80), propErr: fleet.ErrCandidateVersion}
	if err := workerOn(f, reg).Step(ctx); err != nil {
		t.Fatalf("outdated proposal surfaced as error: %v", err)
	}
}

func TestWorkerJudgesShadowWindow(t *testing.T) {
	f := getFixture(t)
	ctx := context.Background()
	candidate := fleet.EvolveStatus{
		Database: "red", HasCandidate: true, CandidateVersion: 1,
	}

	// Window still filling: no transition.
	reg := &fakeRegistry{status: candidate}
	reg.status.ShadowEvents, reg.status.Agreement = 8, 1.0
	if err := workerOn(f, reg).Step(ctx); err != nil || reg.cutovers+reg.drops != 0 {
		t.Fatalf("acted on a filling window: cutovers=%d drops=%d err=%v", reg.cutovers, reg.drops, err)
	}

	// Full window, poor agreement: candidate dropped.
	reg = &fakeRegistry{status: candidate}
	reg.status.ShadowEvents, reg.status.Agreement = 32, 0.5
	if err := workerOn(f, reg).Step(ctx); err != nil || reg.drops != 1 || reg.cutovers != 0 {
		t.Fatalf("divergent candidate not dropped: cutovers=%d drops=%d err=%v", reg.cutovers, reg.drops, err)
	}

	// Full window, good agreement: cutover.
	reg = &fakeRegistry{status: candidate}
	reg.status.ShadowEvents, reg.status.Agreement = 32, 0.97
	if err := workerOn(f, reg).Step(ctx); err != nil || reg.cutovers != 1 || reg.drops != 0 {
		t.Fatalf("agreeing candidate not cut over: cutovers=%d drops=%d err=%v", reg.cutovers, reg.drops, err)
	}
}

func TestWorkerDefersToClusterAgreement(t *testing.T) {
	f := getFixture(t)
	ctx := context.Background()
	reg := &fakeRegistry{status: fleet.EvolveStatus{
		Database: "red", HasCandidate: true, CandidateVersion: 1,
		ShadowEvents: 32, Agreement: 1.0,
	}}
	w := workerOn(f, reg)

	agree := false
	w.Agreement = func(context.Context, string) (bool, error) { return agree, nil }
	if err := w.Step(ctx); err != nil || reg.cutovers != 0 {
		t.Fatalf("cut over without cluster agreement: cutovers=%d err=%v", reg.cutovers, err)
	}
	agree = true
	if err := w.Step(ctx); err != nil || reg.cutovers != 1 {
		t.Fatalf("agreed cluster did not cut over: cutovers=%d err=%v", reg.cutovers, err)
	}

	// An agreement-check failure defers, never drops or cuts over.
	reg.cutovers, reg.drops = 0, 0
	w.Agreement = func(context.Context, string) (bool, error) {
		return false, errors.New("peer unreachable")
	}
	if err := w.Step(ctx); err != nil || reg.cutovers+reg.drops != 0 {
		t.Fatalf("failed agreement check acted: cutovers=%d drops=%d err=%v", reg.cutovers, reg.drops, err)
	}
}

// TestWorkerReconciles pins the catch-up hook's contract: it runs
// before anything else each tick; an adoption ends the step (the
// cohort just changed under the worker); a reconcile error or a
// no-adoption verdict lets the normal state machine proceed.
func TestWorkerReconciles(t *testing.T) {
	f := getFixture(t)
	ctx := context.Background()
	candidate := fleet.EvolveStatus{
		Database: "red", HasCandidate: true, CandidateVersion: 1,
		ShadowEvents: 32, Agreement: 1.0,
	}

	// Adoption short-circuits the step: the passing shadow window must
	// NOT cut over this tick — the candidate it judged is gone.
	reg := &fakeRegistry{status: candidate}
	w := workerOn(f, reg)
	calls := 0
	w.Reconcile = func(context.Context, string) (bool, error) { calls++; return true, nil }
	if err := w.Step(ctx); err != nil || reg.cutovers+reg.drops != 0 {
		t.Fatalf("step acted after an adoption: cutovers=%d drops=%d err=%v", reg.cutovers, reg.drops, err)
	}
	if calls != 1 {
		t.Fatalf("reconcile ran %d times, want 1", calls)
	}

	// No adoption: the state machine proceeds normally (here, cutover).
	w.Reconcile = func(context.Context, string) (bool, error) { return false, nil }
	if err := w.Step(ctx); err != nil || reg.cutovers != 1 {
		t.Fatalf("converged cluster did not proceed: cutovers=%d err=%v", reg.cutovers, err)
	}

	// A reconcile error is logged, never fatal, and does not block the
	// step.
	reg.cutovers = 0
	w.Reconcile = func(context.Context, string) (bool, error) {
		return false, errors.New("peer unreachable")
	}
	if err := w.Step(ctx); err != nil || reg.cutovers != 1 {
		t.Fatalf("reconcile error blocked the step: cutovers=%d err=%v", reg.cutovers, err)
	}
}

// TestWorkerDrivesRealRegistry runs the full loop against a live fleet
// registry: propose from journal evidence, shadow-serve, cut over.
func TestWorkerDrivesRealRegistry(t *testing.T) {
	f := getFixture(t)
	reg, err := fleet.NewRegistry([]fleet.NamedDatabase{
		{Name: "red", DB: f.active, Space: f.problem.Space},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := fleet.NamedDatabase{DB: f.active}
	_, maxS, minF, _ := n.Envelope()
	if _, err := reg.Register(fleet.DeviceParams{
		ID: "w-0", Database: "red", PRC: 0.5,
		Trigger: runtime.TriggerAlways,
		Initial: runtime.QoSSpec{SMaxMs: maxS, FMin: minF},
	}); err != nil {
		t.Fatal(err)
	}
	drive := func(seed int64, n int) {
		t.Helper()
		q := runtime.ModelFromDatabase(f.active)
		stream := q.Stream()
		src := rng.New(seed)
		for i := 0; i < n; i++ {
			if _, err := reg.Decide("w-0", stream.Next(src)); err != nil {
				t.Fatal(err)
			}
		}
	}
	w := &Worker{
		Registry: reg, Database: "red", Proposer: proposerFor(f),
		Threshold: 0.0001, // any agreement passes; the mechanics are under test
		MinShadow: 16,
	}
	ctx := context.Background()

	drive(61, 40)
	if err := w.Step(ctx); err != nil { // proposes
		t.Fatal(err)
	}
	st, err := reg.EvolveStatus("red")
	if err != nil {
		t.Fatal(err)
	}
	if !st.HasCandidate {
		t.Skip("re-search converged onto the active database; no candidate to validate")
	}
	drive(62, 32) // shadow window
	if err := w.Step(ctx); err != nil {
		t.Fatal(err)
	}
	st, _ = reg.EvolveStatus("red")
	if st.ActiveVersion != 1 || st.HasCandidate {
		t.Fatalf("worker did not cut over: %+v", st)
	}
	drive(63, 8) // devices migrate and keep serving
	for _, e := range reg.Decisions("w-0", 8) {
		if e.DBVersion != 1 {
			t.Errorf("post-cutover decision at v%d, want 1", e.DBVersion)
		}
	}
}
