// Package evolve closes the paper's design-time/run-time loop:
// Continuous ReD. The design-time flow freezes a reconfiguration-cost-
// aware database under worst-case QoS assumptions; once a fleet is
// serving, the decision journal records the QoS-event distribution the
// fleet actually observes. This package folds that journal into an
// empirical distribution, re-runs the two-stage search of Section 4.2
// against the observed envelope — seeded from the live database so the
// search refines rather than restarts — and proposes the result as the
// next database version for shadow-serve validation and hot swap (see
// internal/fleet's evolve support).
//
// Everything here is deterministic: the proposal is a pure function of
// (active database, journal entries, configuration). The observation
// stream is reduced to a quantised histogram whose fingerprint seeds
// the search via internal/rng, so the same journal state and seed
// always propose the byte-identical candidate database, no matter when
// or on which node the worker runs.
package evolve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"clrdse/internal/dse"
	"clrdse/internal/ga"
	"clrdse/internal/obs"
	"clrdse/internal/rng"
)

// specQuantum is the grid the observed (S_SPEC, F_SPEC) samples are
// quantised onto before histogramming: fine enough that no two
// meaningfully different specifications share a cell, coarse enough
// that float noise does not split one.
const specQuantum = 1e-6

// Bucket is one cell of the empirical QoS-event histogram: a quantised
// (S_SPEC, F_SPEC) pair and how often the fleet observed it.
type Bucket struct {
	SMaxMs float64 `json:"s_max_ms"`
	FMin   float64 `json:"f_min"`
	Count  int     `json:"count"`
}

// Distribution is the empirical QoS-event distribution folded from a
// journal snapshot: the observed envelope plus the per-cell counts,
// in deterministic (S, F) order.
type Distribution struct {
	// Events is the number of observed decisions folded in.
	Events int `json:"events"`
	// MinS/MaxS and MinF/MaxF span the observed specification
	// envelope (meaningless when Events == 0).
	MinS, MaxS float64 `json:"-"`
	MinF, MaxF float64 `json:"-"`
	// Buckets is the quantised histogram, sorted by (SMaxMs, FMin).
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Observe folds a journal snapshot into the empirical distribution.
// Only real decisions count: degraded answers are skipped (their spec
// was never scored), as are entries journaled before spec recording
// existed (both spec fields zero). The result is independent of entry
// order.
func Observe(entries []obs.Entry) Distribution {
	d := Distribution{
		MinS: math.Inf(1), MaxS: math.Inf(-1),
		MinF: math.Inf(1), MaxF: math.Inf(-1),
	}
	type cell struct{ s, f int64 }
	counts := make(map[cell]int)
	for _, e := range entries {
		if e.Degraded || (e.SpecSMaxMs == 0 && e.SpecFMin == 0) {
			continue
		}
		d.Events++
		d.MinS = math.Min(d.MinS, e.SpecSMaxMs)
		d.MaxS = math.Max(d.MaxS, e.SpecSMaxMs)
		d.MinF = math.Min(d.MinF, e.SpecFMin)
		d.MaxF = math.Max(d.MaxF, e.SpecFMin)
		counts[cell{quantise(e.SpecSMaxMs), quantise(e.SpecFMin)}]++
	}
	cells := make([]cell, 0, len(counts))
	for c := range counts {
		cells = append(cells, c)
	}
	// Sorted cells make the histogram — and everything derived from
	// it, fingerprint included — independent of map iteration order.
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].s != cells[j].s {
			return cells[i].s < cells[j].s
		}
		return cells[i].f < cells[j].f
	})
	for _, c := range cells {
		d.Buckets = append(d.Buckets, Bucket{
			SMaxMs: float64(c.s) * specQuantum,
			FMin:   float64(c.f) * specQuantum,
			Count:  counts[c],
		})
	}
	return d
}

func quantise(v float64) int64 { return int64(math.Round(v / specQuantum)) }

// Quantise maps an observed specification value onto the package's
// histogram grid. Exported so the cohort layer fingerprints observed
// QoS distributions on the exact same grid the evolution loop
// histograms them — one quantiser, one notion of "same specification".
func Quantise(v float64) int64 { return quantise(v) }

// SpecQuantum is the grid step Quantise rounds onto.
const SpecQuantum = specQuantum

// Fingerprint hashes the distribution into a 64-bit value (FNV-1a over
// the sorted quantised buckets). Two journal states that fold into the
// same histogram — regardless of entry order — fingerprint equally,
// and the fingerprint seeds the re-search, making proposals a pure
// function of observed behaviour.
func (d *Distribution) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	word(uint64(d.Events))
	for _, b := range d.Buckets {
		word(uint64(quantise(b.SMaxMs)))
		word(uint64(quantise(b.FMin)))
		word(uint64(b.Count))
	}
	return h.Sum64()
}

// Proposal errors. Both are expected states, not faults: the worker
// logs them and retries on a later tick.
var (
	// ErrInsufficientEvidence reports a journal with too few observed
	// decisions to characterise the event distribution.
	ErrInsufficientEvidence = errors.New("evolve: too few observed events to propose")
	// ErrNoChange reports a re-search that converged onto the active
	// database's exact point set — there is nothing to swap to.
	ErrNoChange = errors.New("evolve: re-search proposes the active database unchanged")
)

// Proposer re-runs the design-time search against the observed event
// distribution and proposes the next database version.
type Proposer struct {
	// Problem is the design-time problem the active database was built
	// from. The proposer never mutates it: the re-search runs on a copy
	// whose QoS envelope is tightened to the observed distribution.
	Problem *dse.Problem
	// StageOne configures the stage-1 MOEA; ReD the per-seed
	// reconfiguration-cost-aware stage. Their Seed fields are ignored —
	// the proposer derives seeds from Seed and the journal fingerprint.
	StageOne ga.Params
	ReD      dse.ReDParams
	// Seed is the root seed. The same (Seed, active database, journal
	// histogram) always proposes the byte-identical candidate.
	Seed int64
	// MinEvents is the evidence floor below which Propose refuses
	// (0 selects 64).
	MinEvents int
	// EnvelopeMargin is the safety margin kept beyond the observed
	// specification envelope when tightening the problem's worst-case
	// bounds, as a fraction (0 selects 0.10). The envelope only ever
	// tightens: bounds never relax past the design-time worst case.
	EnvelopeMargin float64
}

// Propose folds the journal entries and re-runs the two-stage search,
// seeded from the active database's stored configurations, under the
// observed QoS envelope (plus margin). The returned database carries
// the active database's name and Version+1. It fails with
// ErrInsufficientEvidence below the evidence floor and ErrNoChange
// when the re-search reproduces the active point set exactly.
func (p *Proposer) Propose(active *dse.Database, entries []obs.Entry) (*dse.Database, error) {
	if p.Problem == nil {
		return nil, fmt.Errorf("evolve: nil Problem")
	}
	if active == nil || active.Len() == 0 {
		return nil, fmt.Errorf("evolve: empty active database")
	}
	minEvents := p.MinEvents
	if minEvents <= 0 {
		minEvents = 64
	}
	margin := p.EnvelopeMargin
	if margin == 0 {
		margin = 0.10
	}
	dist := Observe(entries)
	if dist.Events < minEvents {
		return nil, fmt.Errorf("%w: %d observed, need %d", ErrInsufficientEvidence, dist.Events, minEvents)
	}

	// Tighten the worst-case envelope of Eq. (5) to what the fleet
	// actually requests, with margin. SMaxMs is the loosest makespan
	// bound that must be satisfiable (max observed S_SPEC); FMin the
	// tightest reliability bound's lower end (min observed F_SPEC).
	// Never loosen past the design-time assumption: points outside it
	// were never validated.
	prob := *p.Problem
	prob.Stats = nil // private run; never race on the caller's Stats
	if s := dist.MaxS * (1 + margin); s < prob.SMaxMs {
		prob.SMaxMs = s
	}
	if f := dist.MinF * (1 - margin); f > prob.FMin && f < 1 {
		prob.FMin = f
	}

	// Derive the search seeds from the root seed and the journal
	// fingerprint: a changed observation stream explores differently,
	// an identical one reproduces the identical proposal.
	src := rng.New(p.Seed ^ int64(dist.Fingerprint()>>1))
	stage1 := p.StageOne
	stage1.Seed = src.Int63()
	// Seed the stage-1 population with the live database: the search
	// refines the serving trade-off front instead of rediscovering it.
	stage1.Seeds = active.Mappings()
	base, err := dse.RunBase(&prob, stage1)
	if err != nil {
		return nil, fmt.Errorf("evolve: stage-1 re-search: %w", err)
	}
	rp := p.ReD
	rp.GA.Seed = src.Int63()
	next, err := dse.RunReD(&prob, base, rp)
	if err != nil {
		return nil, fmt.Errorf("evolve: ReD re-search: %w", err)
	}
	next.Name = active.Name
	next.Version = active.Version + 1
	if samePoints(active, next) {
		return nil, ErrNoChange
	}
	return next, nil
}

// samePoints reports whether the two databases store the same
// configurations in the same order with the same provenance flags.
func samePoints(a, b *dse.Database) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Points {
		if a.Points[i].FromReD != b.Points[i].FromReD {
			return false
		}
		if a.Points[i].M.Key() != b.Points[i].M.Key() {
			return false
		}
	}
	return true
}
