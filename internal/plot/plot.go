// Package plot renders the experiment figures as standalone SVG files
// using only the standard library, so `cmd/experiments -svg` can emit
// graphics alongside the textual tables: scatter plots for the
// design-point clouds (Figures 1 and 5), step/impulse traces for the
// reconfiguration-cost sequences (Figure 6) and line charts for the
// pRC sweeps (Figure 7).
//
// The renderer is deliberately small: linear axes with padded ranges,
// tick labels in %g, a flat colour cycle, and legends stacked in the
// top-right corner. It is not a general plotting library, just enough
// to make the reproduced figures inspectable at a glance.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named set of XY points.
type Series struct {
	// Name appears in the legend.
	Name string
	// X and Y are parallel coordinate slices.
	X, Y []float64
	// Marker selects the point glyph: "circle" (default), "triangle"
	// or "none" (lines only).
	Marker string
	// Line joins consecutive points when true.
	Line bool
}

// Chart is a 2-D figure.
type Chart struct {
	// Title, XLabel and YLabel annotate the axes.
	Title, XLabel, YLabel string
	// Series are drawn in order, cycling through the palette.
	Series []Series
	// Width and Height are the SVG pixel dimensions (0 selects
	// 640x420).
	Width, Height int
}

var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// SVG renders the chart. It never fails: empty charts render as an
// axes-only frame.
func (c *Chart) SVG() string {
	w, h := c.Width, c.Height
	if w == 0 {
		w = 640
	}
	if h == 0 {
		h = 420
	}
	const (
		marginL = 70
		marginR = 20
		marginT = 40
		marginB = 50
	)
	plotW := float64(w - marginL - marginR)
	plotH := float64(h - marginT - marginB)

	xmin, xmax, ymin, ymax := c.bounds()
	sx := func(x float64) float64 { return marginL + (x-xmin)/(xmax-xmin)*plotW }
	sy := func(y float64) float64 { return marginT + plotH - (y-ymin)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, escape(c.Title))

	// Axes frame and ticks.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#444"/>`+"\n",
		marginL, marginT, plotW, plotH)
	for _, t := range ticks(xmin, xmax, 6) {
		x := sx(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#444"/>`+"\n",
			x, marginT+plotH, x, marginT+plotH+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%g</text>`+"\n",
			x, marginT+plotH+18, round3(t))
	}
	for _, t := range ticks(ymin, ymax, 6) {
		y := sy(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#444"/>`+"\n",
			marginL-5, y, marginL, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%g</text>`+"\n",
			marginL-8, y+4, round3(t))
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, h-10, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, escape(c.YLabel))

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		if s.Line && len(s.X) > 1 {
			var pts []string
			for i := range s.X {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(s.X[i]), sy(s.Y[i])))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		if s.Marker != "none" {
			for i := range s.X {
				x, y := sx(s.X[i]), sy(s.Y[i])
				switch s.Marker {
				case "triangle":
					fmt.Fprintf(&b, `<path d="M %.1f %.1f L %.1f %.1f L %.1f %.1f Z" fill="%s"/>`+"\n",
						x, y-4.5, x-4, y+3.5, x+4, y+3.5, color)
				default:
					fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.2" fill="%s"/>`+"\n", x, y, color)
				}
			}
		}
		// Legend entry.
		lx := float64(w - marginR - 150)
		ly := float64(marginT + 14 + 18*si)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n", lx, ly-9, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			lx+15, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// bounds computes padded data ranges, defaulting to the unit square
// for empty charts and padding degenerate (constant) dimensions.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return 0, 1, 0, 1
	}
	pad := func(lo, hi float64) (float64, float64) {
		if hi == lo {
			d := math.Abs(lo) * 0.1
			if d == 0 {
				d = 1
			}
			return lo - d, hi + d
		}
		d := (hi - lo) * 0.06
		return lo - d, hi + d
	}
	xmin, xmax = pad(xmin, xmax)
	ymin, ymax = pad(ymin, ymax)
	return
}

// ticks returns ~n round tick positions covering [lo,hi].
func ticks(lo, hi float64, n int) []float64 {
	if hi <= lo || n < 2 {
		return []float64{lo}
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var ts []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step/1e6; t += step {
		ts = append(ts, t)
	}
	return ts
}

func round3(v float64) float64 {
	if v == 0 {
		return 0
	}
	mag := math.Pow(10, 3-math.Ceil(math.Log10(math.Abs(v))))
	return math.Round(v*mag) / mag
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
