package plot

// Gantt renders an execution schedule: one horizontal lane per
// resource, one labelled bar per task. Used by the documentation and
// debugging flows to inspect what the CLR-integrated list scheduler
// produced for a mapping.

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Bar is one scheduled task occurrence.
type Bar struct {
	// Lane identifies the resource (PE ID).
	Lane int
	// Label is drawn inside the bar when it fits.
	Label string
	// StartMs and EndMs bound the bar.
	StartMs, EndMs float64
}

// GanttChart is a lane/bar schedule figure.
type GanttChart struct {
	// Title heads the figure.
	Title string
	// LaneNames maps lane IDs to labels ("PE0", ...); missing lanes
	// get a numeric default.
	LaneNames map[int]string
	// Bars are the scheduled occurrences.
	Bars []Bar
	// Width and Height are SVG pixel dimensions (0 selects 720 x
	// 60+28*lanes).
	Width, Height int
}

// SVG renders the chart.
func (c *GanttChart) SVG() string {
	lanes := map[int]bool{}
	tMax := 0.0
	for _, bar := range c.Bars {
		lanes[bar.Lane] = true
		tMax = math.Max(tMax, bar.EndMs)
	}
	var laneIDs []int
	for l := range lanes {
		laneIDs = append(laneIDs, l)
	}
	sort.Ints(laneIDs)
	row := map[int]int{}
	for i, l := range laneIDs {
		row[l] = i
	}

	w := c.Width
	if w == 0 {
		w = 720
	}
	h := c.Height
	if h == 0 {
		h = 60 + 28*max(1, len(laneIDs))
	}
	const (
		marginL = 60
		marginR = 16
		marginT = 36
		rowH    = 28.0
	)
	plotW := float64(w - marginL - marginR)
	if tMax == 0 {
		tMax = 1
	}
	sx := func(t float64) float64 { return marginL + t/tMax*plotW }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, escape(c.Title))

	for i, l := range laneIDs {
		y := marginT + float64(i)*rowH
		name := c.LaneNames[l]
		if name == "" {
			name = fmt.Sprintf("lane %d", l)
		}
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+rowH/2+4, escape(name))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y+rowH, marginL+plotW, y+rowH)
	}
	for _, t := range ticks(0, tMax, 8) {
		x := sx(t)
		yBottom := marginT + float64(len(laneIDs))*rowH
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#eee"/>`+"\n", x, marginT, x, yBottom)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%g</text>`+"\n",
			x, yBottom+14, round3(t))
	}
	for i, bar := range c.Bars {
		y := marginT + float64(row[bar.Lane])*rowH + 4
		x0, x1 := sx(bar.StartMs), sx(bar.EndMs)
		color := palette[i%len(palette)]
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.75" stroke="#333" stroke-width="0.5"/>`+"\n",
			x0, y, math.Max(1, x1-x0), rowH-8, color)
		if x1-x0 > float64(8*len(bar.Label)) {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
				(x0+x1)/2, y+(rowH-8)/2+3, escape(bar.Label))
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}
