package plot

// Grouped bar charts, for the Figure 1 J_avg comparison and similar
// categorical summaries.

import (
	"fmt"
	"math"
	"strings"
)

// BarGroup is one category on the x-axis with one value per series.
type BarGroup struct {
	// Label names the category ("HW-Only", ...).
	Label string
	// Values holds one bar height per series, in series order.
	Values []float64
}

// BarChart is a grouped vertical bar figure.
type BarChart struct {
	// Title and YLabel annotate the figure.
	Title, YLabel string
	// SeriesNames label the bars within each group (legend order).
	SeriesNames []string
	// Groups are the categories.
	Groups []BarGroup
	// Width and Height are SVG pixel dimensions (0 selects 560x360).
	Width, Height int
}

// SVG renders the chart. Missing values (NaN) leave a gap.
func (c *BarChart) SVG() string {
	w, h := c.Width, c.Height
	if w == 0 {
		w = 560
	}
	if h == 0 {
		h = 360
	}
	const (
		marginL = 70
		marginR = 20
		marginT = 40
		marginB = 50
	)
	plotW := float64(w - marginL - marginR)
	plotH := float64(h - marginT - marginB)

	yMax := 0.0
	for _, g := range c.Groups {
		for _, v := range g.Values {
			if !math.IsNaN(v) {
				yMax = math.Max(yMax, v)
			}
		}
	}
	if yMax == 0 {
		yMax = 1
	}
	yMax *= 1.08

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, escape(c.Title))
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#444"/>`+"\n", marginL, marginT, plotW, plotH)
	fmt.Fprintf(&b, `<text x="16" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, escape(c.YLabel))
	for _, t := range ticks(0, yMax, 6) {
		y := marginT + plotH - t/yMax*plotH
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#444"/>`+"\n", marginL-5, y, marginL, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%g</text>`+"\n", marginL-8, y+4, round3(t))
	}

	nGroups := len(c.Groups)
	nSeries := max(1, len(c.SeriesNames))
	groupW := plotW / float64(max(1, nGroups))
	barW := groupW * 0.8 / float64(nSeries)
	for gi, g := range c.Groups {
		gx := marginL + float64(gi)*groupW
		for si, v := range g.Values {
			if si >= nSeries || math.IsNaN(v) {
				continue
			}
			x := gx + groupW*0.1 + float64(si)*barW
			barH := v / yMax * plotH
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, marginT+plotH-barH, barW*0.92, barH, palette[si%len(palette)])
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			gx+groupW/2, marginT+plotH+16, escape(g.Label))
	}
	for si, name := range c.SeriesNames {
		lx := float64(w - marginR - 140)
		ly := float64(marginT + 14 + 18*si)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n", lx, ly-9, palette[si%len(palette)])
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="12">%s</text>`+"\n", lx+15, ly, escape(name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}
