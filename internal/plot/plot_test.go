package plot

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "Test & Chart",
		XLabel: "x axis",
		YLabel: "y axis",
		Series: []Series{
			{Name: "a", X: []float64{1, 2, 3}, Y: []float64{4, 5, 6}, Line: true},
			{Name: "b", X: []float64{1, 2, 3}, Y: []float64{6, 5, 4}, Marker: "triangle"},
		},
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg := sampleChart().SVG()
	for _, want := range []string{
		"<svg", "</svg>", "Test &amp; Chart", "x axis", "y axis",
		"<polyline", "<circle", "<path", // line, circle markers, triangle markers
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<svg") != 1 || strings.Count(svg, "</svg>") != 1 {
		t.Error("unbalanced svg tags")
	}
}

func TestSVGLegendEntries(t *testing.T) {
	svg := sampleChart().SVG()
	if !strings.Contains(svg, ">a</text>") || !strings.Contains(svg, ">b</text>") {
		t.Error("legend entries missing")
	}
}

func TestEmptyChartRenders(t *testing.T) {
	c := &Chart{Title: "empty"}
	svg := c.SVG()
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("empty chart failed to render")
	}
}

func TestDegenerateSeriesRenders(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "const", X: []float64{5, 5, 5}, Y: []float64{2, 2, 2}}}}
	svg := c.SVG()
	if !strings.Contains(svg, "<circle") {
		t.Error("constant series lost its markers")
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("degenerate bounds leaked NaN/Inf into coordinates")
	}
}

func TestMarkerNone(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "l", X: []float64{0, 1}, Y: []float64{0, 1}, Marker: "none", Line: true}}}
	svg := c.SVG()
	if strings.Contains(svg, "<circle") {
		t.Error("marker none should suppress circles")
	}
	if !strings.Contains(svg, "<polyline") {
		t.Error("line missing")
	}
}

func TestCustomSize(t *testing.T) {
	c := sampleChart()
	c.Width, c.Height = 300, 200
	if !strings.Contains(c.SVG(), `width="300" height="200"`) {
		t.Error("custom dimensions ignored")
	}
}

func TestTicksCoverRange(t *testing.T) {
	ts := ticks(0, 10, 6)
	if len(ts) < 3 {
		t.Fatalf("too few ticks: %v", ts)
	}
	for _, v := range ts {
		if v < 0 || v > 10 {
			t.Errorf("tick %v outside range", v)
		}
	}
	// Ticks are strictly increasing.
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Errorf("ticks not increasing: %v", ts)
		}
	}
}

func TestTicksDegenerate(t *testing.T) {
	if got := ticks(5, 5, 6); len(got) != 1 || got[0] != 5 {
		t.Errorf("degenerate ticks = %v", got)
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`<a & "b">`); got != "&lt;a &amp; &quot;b&quot;&gt;" {
		t.Errorf("escape = %q", got)
	}
}

// Property: SVG output always contains finite coordinates for
// arbitrary finite inputs.
func TestQuickNoNonFiniteCoordinates(t *testing.T) {
	f := func(xs, ys []int16) bool {
		n := min(len(xs), len(ys))
		if n == 0 {
			return true
		}
		s := Series{Name: "q", Line: true}
		for i := 0; i < n; i++ {
			s.X = append(s.X, float64(xs[i]))
			s.Y = append(s.Y, float64(ys[i]))
		}
		svg := (&Chart{Series: []Series{s}}).SVG()
		return !strings.Contains(svg, "NaN") && !strings.Contains(svg, "Inf")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGanttSVG(t *testing.T) {
	c := &GanttChart{
		Title:     "Schedule",
		LaneNames: map[int]string{0: "PE0", 1: "PE1"},
		Bars: []Bar{
			{Lane: 0, Label: "t0", StartMs: 0, EndMs: 10},
			{Lane: 1, Label: "t1", StartMs: 10, EndMs: 25},
			{Lane: 0, Label: "t2", StartMs: 10, EndMs: 14},
		},
	}
	svg := c.SVG()
	for _, want := range []string{"<svg", "</svg>", "Schedule", "PE0", "PE1", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("gantt missing %q", want)
		}
	}
	if strings.Contains(svg, "NaN") {
		t.Error("gantt produced NaN coordinates")
	}
}

func TestGanttEmpty(t *testing.T) {
	svg := (&GanttChart{Title: "empty"}).SVG()
	if !strings.Contains(svg, "</svg>") {
		t.Error("empty gantt failed to render")
	}
}

func TestBarChartSVG(t *testing.T) {
	c := &BarChart{
		Title:       "J_avg",
		YLabel:      "mJ",
		SeriesNames: []string{"fixed", "dynamic"},
		Groups: []BarGroup{
			{Label: "HW-Only", Values: []float64{176, 128}},
			{Label: "CLR1", Values: []float64{133, 121}},
			{Label: "CLR2", Values: []float64{122, 116}},
		},
	}
	svg := c.SVG()
	for _, want := range []string{"<svg", "J_avg", "HW-Only", "CLR2", "fixed", "dynamic"} {
		if !strings.Contains(svg, want) {
			t.Errorf("bar chart missing %q", want)
		}
	}
	if got := strings.Count(svg, `fill="`+palette[0]+`"`); got != 4 { // 3 bars + legend swatch
		t.Errorf("series-0 rects = %d, want 4", got)
	}
	if strings.Contains(svg, "NaN") {
		t.Error("bar chart emitted NaN")
	}
}

func TestBarChartNaNGap(t *testing.T) {
	c := &BarChart{
		SeriesNames: []string{"a"},
		Groups:      []BarGroup{{Label: "x", Values: []float64{math.NaN()}}},
	}
	if svg := c.SVG(); strings.Contains(svg, "NaN") {
		t.Error("NaN leaked into SVG")
	}
}

func TestBarChartEmpty(t *testing.T) {
	if svg := (&BarChart{Title: "none"}).SVG(); !strings.Contains(svg, "</svg>") {
		t.Error("empty bar chart failed")
	}
}
