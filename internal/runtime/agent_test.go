package runtime

import (
	"math"
	"path/filepath"
	"testing"
)

func agentParams(t *testing.T, prc float64, seed int64, ag *Agent) Params {
	p := baseParams(t, prc, seed)
	p.Agent = ag
	return p
}

func TestGammaZeroAgentSubsumesURA(t *testing.T) {
	// The paper: "the uRA method is subsumed into AuRA by setting the
	// discount factor gamma = 0". With gamma=0 the agent learns but
	// never influences decisions, so metrics must match plain uRA.
	plain, err := Simulate(baseParams(t, 0.6, 21))
	if err != nil {
		t.Fatal(err)
	}
	ag := NewAgent(getFixture(t).base.Len(), 0)
	withAgent, err := Simulate(agentParams(t, 0.6, 21, ag))
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalDRC != withAgent.TotalDRC || plain.AvgEnergyMJ != withAgent.AvgEnergyMJ ||
		plain.Reconfigs != withAgent.Reconfigs {
		t.Errorf("gamma=0 AuRA differs from uRA: %+v vs %+v", withAgent, plain)
	}
}

func TestAgentLearnsValues(t *testing.T) {
	f := getFixture(t)
	ag := NewAgent(f.base.Len(), 0.8)
	if _, err := Simulate(agentParams(t, 0.5, 22, ag)); err != nil {
		t.Fatal(err)
	}
	if ag.Episodes == 0 {
		t.Fatal("no episodes completed over 50k cycles with 1000-cycle episodes")
	}
	visited, nonzero := 0, 0
	for s := range ag.VR {
		if ag.Visits(s) > 0 {
			visited++
			if ag.VR[s] != 0 || ag.VD[s] != 0 {
				nonzero++
			}
		}
	}
	if visited == 0 {
		t.Fatal("agent never visited any state")
	}
	if nonzero == 0 {
		t.Error("visited states have all-zero value functions")
	}
	// VR estimates discounted future -J: must be negative for any
	// visited state (energy is positive).
	for s := range ag.VR {
		if ag.Visits(s) > 0 && ag.VR[s] >= 0 {
			t.Errorf("state %d: VR = %v, want negative", s, ag.VR[s])
		}
		if ag.VD[s] < 0 {
			t.Errorf("state %d: VD = %v, want non-negative", s, ag.VD[s])
		}
	}
}

func TestAgentEpisodeAccounting(t *testing.T) {
	ag := NewAgent(4, 0.5)
	ag.EpisodeCycles = 100
	// Three events inside episode 1, one in episode 2.
	ag.step(0, -1, 0, 10)
	ag.step(1, -2, 5, 50)
	ag.step(0, -1, 0, 90)
	if ag.Episodes != 0 {
		t.Fatalf("episode closed early: %d", ag.Episodes)
	}
	ag.step(2, -3, 1, 150)
	if ag.Episodes != 1 {
		t.Fatalf("episodes = %d, want 1 after crossing boundary", ag.Episodes)
	}
	ag.flush()
	if ag.Episodes != 2 {
		t.Fatalf("episodes = %d, want 2 after flush", ag.Episodes)
	}
	// First episode returns with gamma=0.5, rewards (state, rR, rD):
	// t2: G_R = -1, G_D = 0
	// t1: G_R = -2 + 0.5*(-1) = -2.5 ; G_D = 5 + 0.5*0 = 5
	// t0: G_R = -1 + 0.5*(-2.5) = -2.25 ; G_D = 0 + 0.5*5 = 2.5
	// State 0 visited at t0 and t2 (backward order t2 first):
	// after t2: V = -1 (visit 1); after t0: V = -1 + 1/2*(-2.25+1) = -1.625
	if math.Abs(ag.VR[0]-(-1.625)) > 1e-12 {
		t.Errorf("VR[0] = %v, want -1.625", ag.VR[0])
	}
	if math.Abs(ag.VD[0]-1.25) > 1e-12 {
		t.Errorf("VD[0] = %v, want 1.25", ag.VD[0])
	}
	if math.Abs(ag.VR[1]-(-2.5)) > 1e-12 || math.Abs(ag.VD[1]-5) > 1e-12 {
		t.Errorf("VR[1],VD[1] = %v,%v want -2.5,5", ag.VR[1], ag.VD[1])
	}
	// Second episode: single step, state 2.
	if math.Abs(ag.VR[2]-(-3)) > 1e-12 || math.Abs(ag.VD[2]-1) > 1e-12 {
		t.Errorf("VR[2],VD[2] = %v,%v want -3,1", ag.VR[2], ag.VD[2])
	}
}

func TestAgentFixedAlpha(t *testing.T) {
	ag := NewAgent(2, 0)
	ag.Alpha = 0.5
	ag.EpisodeCycles = 10
	ag.step(0, -4, 0, 1)
	ag.flush()
	if ag.VR[0] != -2 {
		t.Errorf("VR[0] = %v, want -2 with alpha=0.5", ag.VR[0])
	}
	ag.step(0, -4, 0, 11)
	ag.flush()
	if ag.VR[0] != -3 {
		t.Errorf("VR[0] = %v, want -3 after second update", ag.VR[0])
	}
}

func TestPretrainInjectsPriorKnowledge(t *testing.T) {
	f := getFixture(t)
	ag := NewAgent(f.base.Len(), 0.8)
	p := baseParams(t, 0.5, 23)
	if err := ag.Pretrain(p, 20_000, 999); err != nil {
		t.Fatal(err)
	}
	if ag.Episodes == 0 {
		t.Fatal("pretraining ran no episodes")
	}
	trained := 0
	for s := range ag.VR {
		if ag.Visits(s) > 0 {
			trained++
		}
	}
	if trained == 0 {
		t.Error("pretraining visited no states")
	}
}

func TestPretrainedAgentChangesDecisions(t *testing.T) {
	// With gamma > 0 and learned values, AuRA's choices should diverge
	// from myopic uRA on at least one seed.
	f := getFixture(t)
	diverged := false
	for seed := int64(31); seed < 36; seed++ {
		plain, err := Simulate(baseParams(t, 0.5, seed))
		if err != nil {
			t.Fatal(err)
		}
		ag := NewAgent(f.base.Len(), 0.9)
		if err := ag.Pretrain(baseParams(t, 0.5, seed), 20_000, seed*7+1); err != nil {
			t.Fatal(err)
		}
		aura, err := Simulate(agentParams(t, 0.5, seed, ag))
		if err != nil {
			t.Fatal(err)
		}
		if plain.TotalDRC != aura.TotalDRC || plain.Reconfigs != aura.Reconfigs {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("AuRA with gamma=0.9 never diverged from uRA across 5 seeds")
	}
}

func TestNewAgentPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewAgent(0, 0.5) },
		func() { NewAgent(5, -0.1) },
		func() { NewAgent(5, 1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAgentEmptyFlushIsNoop(t *testing.T) {
	ag := NewAgent(3, 0.5)
	ag.flush()
	if ag.Episodes != 0 {
		t.Error("flush on empty buffer should not count an episode")
	}
}

func TestStayPutPriorHorizonMultiplier(t *testing.T) {
	// The prior must use the truncated-episode expected discount sum
	// (1/H) * sum_{j=1..H} (1-g^j)/(1-g), not the infinite-horizon
	// 1/(1-g).
	f := getFixture(t)
	gamma := 0.9
	H := 10
	// Expected multiplier for g=0.9, H=10.
	want := 0.0
	pow := 1.0
	for j := 1; j <= H; j++ {
		pow *= gamma
		want += (1 - pow) / (1 - gamma)
	}
	want /= float64(H)
	ag := NewAgentForDB(f.base, gamma, H)
	for i, p := range f.base.Points {
		if got := ag.VR[i]; math.Abs(got-(-p.EnergyMJ*want)) > 1e-9 {
			t.Fatalf("state %d prior = %v, want %v", i, got, -p.EnergyMJ*want)
		}
		if ag.VD[i] != 0 {
			t.Fatalf("state %d VD prior = %v, want 0", i, ag.VD[i])
		}
	}
	// Multiplier sits strictly between single-step (1) and infinite
	// horizon (10).
	if want <= 1 || want >= 1/(1-gamma) {
		t.Fatalf("multiplier %v outside (1, %v)", want, 1/(1-gamma))
	}
	// Gamma 0: prior disabled entirely.
	zero := NewAgentForDB(f.base, 0, H)
	for i := range zero.VR {
		if zero.VR[i] != 0 {
			t.Fatal("gamma=0 should leave uniform zero priors")
		}
	}
}

func TestAgentPersistence(t *testing.T) {
	f := getFixture(t)
	ag := NewAgentForDB(f.base, 0.8, 0)
	if err := ag.Pretrain(baseParams(t, 0.5, 41), 20_000, 42); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "agent.json")
	if err := ag.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAgent(path, f.base.Len())
	if err != nil {
		t.Fatal(err)
	}
	if got.Gamma != ag.Gamma || got.Episodes != ag.Episodes {
		t.Error("round trip lost scalar fields")
	}
	for i := range ag.VR {
		if got.VR[i] != ag.VR[i] || got.VD[i] != ag.VD[i] || got.Visits(i) != ag.Visits(i) {
			t.Fatalf("state %d changed in round trip", i)
		}
	}
	// A restored agent drives identical decisions.
	p := baseParams(t, 0.5, 43)
	p.Agent = ag
	a, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	ag2, err := ReadAgent(path, f.base.Len())
	if err != nil {
		t.Fatal(err)
	}
	p2 := baseParams(t, 0.5, 43)
	p2.Agent = ag2
	b, err := Simulate(p2)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalDRC != b.TotalDRC || a.AvgEnergyMJ != b.AvgEnergyMJ {
		t.Error("restored agent made different decisions")
	}
}

func TestReadAgentRejectsMismatch(t *testing.T) {
	f := getFixture(t)
	ag := NewAgentForDB(f.base, 0.5, 0)
	path := filepath.Join(t.TempDir(), "agent.json")
	if err := ag.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAgent(path, f.base.Len()+1); err == nil {
		t.Error("accepted size mismatch")
	}
	if _, err := ReadAgent(filepath.Join(t.TempDir(), "missing.json"), 3); err == nil {
		t.Error("accepted missing file")
	}
}
