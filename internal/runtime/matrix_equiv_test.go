package runtime

import (
	"reflect"
	"testing"

	"clrdse/internal/mapping"
	"clrdse/internal/rng"
)

// TestSimulateMatrixEquivalence proves the precomputed-dRC fast path
// is observationally identical to the from-scratch one: a simulation
// handed a shared matrix must reproduce every metric and every trace
// entry byte for byte.
func TestSimulateMatrixEquivalence(t *testing.T) {
	f := getFixture(t)
	run := func(mat *mapping.DRCMatrix, policy Policy, trigger Trigger) *Metrics {
		m, err := Simulate(Params{
			DB:       f.red,
			Space:    f.problem.Space,
			Matrix:   mat,
			PRC:      0.5,
			Cycles:   50_000,
			Seed:     13,
			Trigger:  trigger,
			Policy:   policy,
			TraceLen: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	shared := mapping.NewDRCMatrix(f.problem.Space, f.red.Mappings())
	for _, c := range []struct {
		name    string
		policy  Policy
		trigger Trigger
	}{
		{"ret-always", PolicyRET, TriggerAlways},
		{"ret-on-violation", PolicyRET, TriggerOnViolation},
		{"hypervolume-always", PolicyHypervolume, TriggerAlways},
	} {
		without := run(nil, c.policy, c.trigger)
		with := run(shared, c.policy, c.trigger)
		if !reflect.DeepEqual(without, with) {
			t.Errorf("%s: metrics/trace differ with a shared matrix:\nwithout: %+v\nwith:    %+v", c.name, without, with)
		}
	}
}

// TestManagerMatrixEquivalence drives two managers through the same
// spec sequence, one with a shared precomputed matrix, and requires
// identical decisions and plans at every step.
func TestManagerMatrixEquivalence(t *testing.T) {
	f := getFixture(t)
	model := ModelFromDatabase(f.red)
	stream := model.Stream()
	r := rng.New(3)
	specs := make([]QoSSpec, 200)
	for i := range specs {
		specs[i] = stream.Next(r)
	}
	mk := func(mat *mapping.DRCMatrix) *Manager {
		m, err := NewManager(ManagerParams{
			DB:      f.red,
			Space:   f.problem.Space,
			Matrix:  mat,
			PRC:     0.4,
			Trigger: TriggerAlways,
		}, specs[0])
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := mk(nil)
	b := mk(mapping.NewDRCMatrix(f.problem.Space, f.red.Mappings()))
	if a.Current() != b.Current() {
		t.Fatalf("boot points differ: %d vs %d", a.Current(), b.Current())
	}
	for i, spec := range specs[1:] {
		da := a.OnQoSChange(spec)
		db := b.OnQoSChange(spec)
		if !reflect.DeepEqual(da, db) {
			t.Fatalf("decision %d differs:\nwithout matrix: %+v\nwith matrix:    %+v", i, da, db)
		}
	}
}
