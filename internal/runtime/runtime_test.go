package runtime

import (
	"math"
	"strings"
	"sync"
	"testing"

	"clrdse/internal/dse"
	"clrdse/internal/ga"
	"clrdse/internal/mapping"
	"clrdse/internal/platform"
	"clrdse/internal/relmodel"
	"clrdse/internal/rng"
	"clrdse/internal/taskgraph"
)

// fixture builds one real design-time result shared by the run-time
// tests (building it per test would dominate the suite's runtime).
type fixture struct {
	problem *dse.Problem
	base    *dse.Database
	red     *dse.Database
}

var (
	fixOnce sync.Once
	fix     fixture
	fixErr  error
)

func getFixture(t *testing.T) fixture {
	t.Helper()
	fixOnce.Do(func() {
		plat := platform.Default()
		g, err := taskgraph.Generate(taskgraph.GenParams{Seed: 51, NumTasks: 25}, plat)
		if err != nil {
			fixErr = err
			return
		}
		prob := &dse.Problem{
			Space:  &mapping.Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()},
			Env:    relmodel.DefaultEnv(),
			SMaxMs: g.PeriodMs,
			FMin:   0.90,
		}
		base, err := dse.RunBase(prob, ga.Params{PopSize: 32, Generations: 15, Seed: 1})
		if err != nil {
			fixErr = err
			return
		}
		red, err := dse.RunReD(prob, base, dse.ReDParams{
			GA: ga.Params{PopSize: 20, Generations: 10, Seed: 2}, MaxExtraPerSeed: 2,
		})
		if err != nil {
			fixErr = err
			return
		}
		fix = fixture{problem: prob, base: base, red: red}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

func baseParams(t *testing.T, prc float64, seed int64) Params {
	f := getFixture(t)
	return Params{
		DB:      f.base,
		Space:   f.problem.Space,
		PRC:     prc,
		Cycles:  50_000,
		Seed:    seed,
		Trigger: TriggerAlways,
	}
}

func TestSimulateBasics(t *testing.T) {
	m, err := Simulate(baseParams(t, 0.5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Events < 300 || m.Events > 800 {
		t.Errorf("events = %d, want ~500 for 50k cycles at mean 100", m.Events)
	}
	if m.AvgEnergyMJ <= 0 {
		t.Error("average energy should be positive")
	}
	if m.TotalDRC < 0 || m.MaxDRC < 0 {
		t.Error("negative reconfiguration cost")
	}
	if m.Reconfigs > m.Events {
		t.Error("more reconfigurations than events")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(baseParams(t, 0.5, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(baseParams(t, 0.5, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.TotalDRC != b.TotalDRC || a.AvgEnergyMJ != b.AvgEnergyMJ {
		t.Error("same seed produced different metrics")
	}
	c, err := Simulate(baseParams(t, 0.5, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Events == c.Events && a.TotalDRC == c.TotalDRC && a.AvgEnergyMJ == c.AvgEnergyMJ {
		t.Error("different seeds produced identical metrics (suspicious)")
	}
}

func TestPRCTradeoffEndpoints(t *testing.T) {
	// The Figure 7 endpoints: pRC=0 minimises reconfiguration cost,
	// pRC=1 minimises energy.
	perf, err := Simulate(baseParams(t, 1.0, 3))
	if err != nil {
		t.Fatal(err)
	}
	cheap, err := Simulate(baseParams(t, 0.0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if cheap.AvgDRC >= perf.AvgDRC {
		t.Errorf("pRC=0 avg dRC %v should be < pRC=1 %v", cheap.AvgDRC, perf.AvgDRC)
	}
	if perf.AvgEnergyMJ > cheap.AvgEnergyMJ {
		t.Errorf("pRC=1 energy %v should be <= pRC=0 %v", perf.AvgEnergyMJ, cheap.AvgEnergyMJ)
	}
}

func TestPRCZeroStaysPutWhenFeasible(t *testing.T) {
	// At pRC=0 the manager moves only when forced: every
	// reconfiguration must coincide with the previous point violating
	// the new spec. Equivalently, reconfigs should be rare.
	m0, err := Simulate(baseParams(t, 0.0, 4))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Simulate(baseParams(t, 1.0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if m0.Reconfigs >= m1.Reconfigs {
		t.Errorf("pRC=0 reconfigs %d should be < pRC=1 %d", m0.Reconfigs, m1.Reconfigs)
	}
}

func TestTriggerOnViolationReducesAdaptations(t *testing.T) {
	always := baseParams(t, 1.0, 5)
	onviol := baseParams(t, 1.0, 5)
	onviol.Trigger = TriggerOnViolation
	ma, err := Simulate(always)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := Simulate(onviol)
	if err != nil {
		t.Fatal(err)
	}
	if mv.Reconfigs >= ma.Reconfigs {
		t.Errorf("on-violation reconfigs %d should be < always %d", mv.Reconfigs, ma.Reconfigs)
	}
	if mv.TotalDRC >= ma.TotalDRC {
		t.Errorf("on-violation total dRC %v should be < always %v", mv.TotalDRC, ma.TotalDRC)
	}
}

func TestReDDatabaseCutsReconfigCost(t *testing.T) {
	// The paper's central claim (Tables 4-6): the ReD database lowers
	// average reconfiguration cost versus BaseD under the same event
	// stream, at pRC favouring reconfiguration cost.
	f := getFixture(t)
	if len(f.red.ReDPoints()) == 0 {
		t.Skip("ReD stage added no points at this scale")
	}
	run := func(db *dse.Database) *Metrics {
		p := baseParams(t, 0.0, 6)
		p.DB = db
		p.QoS = ModelFromDatabase(f.base) // identical spec stream for both
		m, err := Simulate(p)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	mBase := run(f.base)
	mReD := run(f.red)
	if mReD.TotalDRC > mBase.TotalDRC {
		t.Errorf("ReD total dRC %v should be <= BaseD %v", mReD.TotalDRC, mBase.TotalDRC)
	}
}

func TestTraceRecording(t *testing.T) {
	p := baseParams(t, 0.5, 9)
	p.TraceLen = 50
	m, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trace) != 50 {
		t.Fatalf("trace length = %d, want 50", len(m.Trace))
	}
	var sum float64
	prev := -1.0
	for i, e := range m.Trace {
		if e.Event != i {
			t.Errorf("trace %d has event %d", i, e.Event)
		}
		if e.CycleTime <= prev {
			t.Error("trace times not increasing")
		}
		prev = e.CycleTime
		if e.DRC > 0 && !e.Reconfigured {
			t.Error("positive dRC without reconfiguration")
		}
		if e.Point < 0 || e.Point >= p.DB.Len() {
			t.Errorf("trace point %d out of range", e.Point)
		}
		sum += e.DRC
	}
	if sum > m.TotalDRC {
		t.Error("trace dRC exceeds total")
	}
}

func TestTraceCoversAllEventsWhenLong(t *testing.T) {
	p := baseParams(t, 0.7, 10)
	p.Cycles = 5000
	p.TraceLen = 1 << 20
	m, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trace) != m.Events {
		t.Fatalf("trace %d entries, events %d", len(m.Trace), m.Events)
	}
	sum, reconfigs := 0.0, 0
	for _, e := range m.Trace {
		sum += e.DRC
		if e.Reconfigured {
			reconfigs++
		}
	}
	if math.Abs(sum-m.TotalDRC) > 1e-9 {
		t.Errorf("trace dRC sum %v != total %v", sum, m.TotalDRC)
	}
	if reconfigs != m.Reconfigs {
		t.Errorf("trace reconfigs %d != metric %d", reconfigs, m.Reconfigs)
	}
}

func TestUnsatisfiableSpecsDegradeGracefully(t *testing.T) {
	p := baseParams(t, 0.5, 11)
	// Demand makespans below anything in the database.
	p.QoS = QoSModel{
		MeanS: 0.001, StdS: 0.0001, LoS: 0.0005, HiS: 0.002,
		MeanF: 0.9, StdF: 0.01, LoF: 0.85, HiF: 0.95,
	}
	m, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.ViolationEvents != m.Events {
		t.Errorf("violations = %d, want all %d events", m.ViolationEvents, m.Events)
	}
}

func TestParamsValidation(t *testing.T) {
	good := baseParams(t, 0.5, 12)
	cases := []func(*Params){
		func(p *Params) { p.DB = nil },
		func(p *Params) { p.DB = &dse.Database{} },
		func(p *Params) { p.Space = nil },
		func(p *Params) { p.PRC = 1.5 },
		func(p *Params) { p.PRC = -0.1 },
		func(p *Params) { p.MeanInterArrivalCycles = -1 },
		func(p *Params) { p.Cycles = -5 },
	}
	for i, mut := range cases {
		p := good
		mut(&p)
		if _, err := Simulate(p); err == nil {
			t.Errorf("case %d: Simulate accepted bad params", i)
		}
	}
}

func TestModelFromDatabaseEnvelope(t *testing.T) {
	f := getFixture(t)
	q := ModelFromDatabase(f.base)
	r := rng.New(13)
	minS, maxS := math.Inf(1), math.Inf(-1)
	for _, pt := range f.base.Points {
		minS = math.Min(minS, pt.MakespanMs)
		maxS = math.Max(maxS, pt.MakespanMs)
	}
	for i := 0; i < 2000; i++ {
		spec := q.Sample(r)
		if spec.SMaxMs < minS || spec.SMaxMs > maxS*1.05 {
			t.Fatalf("sampled SMax %v outside envelope [%v,%v]", spec.SMaxMs, minS, maxS*1.05)
		}
		if spec.FMin < 0 || spec.FMin > 1 {
			t.Fatalf("sampled FMin %v outside [0,1]", spec.FMin)
		}
	}
}

func TestModelFromSinglePointDatabase(t *testing.T) {
	f := getFixture(t)
	db := &dse.Database{Name: "one", Points: f.base.Points[:1]}
	q := ModelFromDatabase(db)
	if q.StdS <= 0 || q.StdF <= 0 {
		t.Errorf("degenerate database model has non-positive spread: %+v", q)
	}
}

func TestTriggerString(t *testing.T) {
	if TriggerAlways.String() != "always" || TriggerOnViolation.String() != "on-violation" {
		t.Error("Trigger.String mismatch")
	}
	if Trigger(9).String() == "" {
		t.Error("unknown trigger string empty")
	}
}

func TestSpecStreamAutocorrelation(t *testing.T) {
	q := QoSModel{
		MeanS: 100, StdS: 10, MeanF: 0.95, StdF: 0.01,
		Rho: -0.3, Persist: 0.8,
		LoS: 0, HiS: 1000, LoF: 0, HiF: 1,
	}
	r := rng.New(41)
	st := q.Stream()
	const n = 50000
	prev := st.Next(r).SMaxMs
	var sx, sxx, sxy float64
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		cur := st.Next(r).SMaxMs
		xs = append(xs, cur)
		sxy += prev * cur
		prev = cur
	}
	for _, x := range xs {
		sx += x
		sxx += x * x
	}
	mean := sx / n
	variance := sxx/n - mean*mean
	lag1 := sxy/n - mean*mean
	rho1 := lag1 / variance
	if math.Abs(rho1-0.8) > 0.03 {
		t.Errorf("lag-1 autocorrelation = %v, want ~0.8", rho1)
	}
	// Stationary marginal preserved despite persistence.
	if math.Abs(mean-100) > 0.5 {
		t.Errorf("stationary mean = %v, want ~100", mean)
	}
	if math.Abs(math.Sqrt(variance)-10) > 0.5 {
		t.Errorf("stationary stddev = %v, want ~10", math.Sqrt(variance))
	}
}

func TestSpecStreamIIDWhenNoPersistence(t *testing.T) {
	q := QoSModel{
		MeanS: 100, StdS: 10, MeanF: 0.95, StdF: 0.01,
		LoS: 0, HiS: 1000, LoF: 0, HiF: 1,
	}
	r := rng.New(42)
	st := q.Stream()
	const n = 50000
	prev := st.Next(r).SMaxMs
	var sx, sxx, sxy float64
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		cur := st.Next(r).SMaxMs
		xs = append(xs, cur)
		sxy += prev * cur
		prev = cur
	}
	for _, x := range xs {
		sx += x
		sxx += x * x
	}
	mean := sx / n
	variance := sxx/n - mean*mean
	rho1 := (sxy/n - mean*mean) / variance
	if math.Abs(rho1) > 0.03 {
		t.Errorf("iid stream lag-1 autocorrelation = %v, want ~0", rho1)
	}
}

func TestSpecStreamClampsToEnvelope(t *testing.T) {
	q := QoSModel{
		MeanS: 100, StdS: 50, MeanF: 0.95, StdF: 0.2,
		Persist: 0.9,
		LoS:     80, HiS: 120, LoF: 0.9, HiF: 0.99,
	}
	r := rng.New(43)
	st := q.Stream()
	for i := 0; i < 10000; i++ {
		spec := st.Next(r)
		if spec.SMaxMs < 80 || spec.SMaxMs > 120 {
			t.Fatalf("SMax %v escaped envelope", spec.SMaxMs)
		}
		if spec.FMin < 0.9 || spec.FMin > 0.99 {
			t.Fatalf("FMin %v escaped envelope", spec.FMin)
		}
	}
}

func TestPrunedDatabaseStillAdapts(t *testing.T) {
	// The storage-constrained database (paper conclusion) must keep
	// the run-time manager functional: same QoS envelope, bounded
	// energy regression.
	f := getFixture(t)
	if f.red.Len() < 8 {
		t.Skip("database too small to prune")
	}
	pruned, err := dse.Prune(f.red, f.red.Len()/2, false)
	if err != nil {
		t.Fatal(err)
	}
	run := func(db *dse.Database) *Metrics {
		p := baseParams(t, 1.0, 31)
		p.DB = db
		p.QoS = ModelFromDatabase(f.base)
		m, err := Simulate(p)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	full := run(f.red)
	half := run(pruned)
	if half.ViolationEvents > full.ViolationEvents {
		t.Errorf("pruning increased unsatisfiable events: %d > %d", half.ViolationEvents, full.ViolationEvents)
	}
	if half.AvgEnergyMJ > full.AvgEnergyMJ*1.25 {
		t.Errorf("pruned database costs %.1f%% more energy", 100*(half.AvgEnergyMJ/full.AvgEnergyMJ-1))
	}
}

func TestHypervolumePolicyReconfiguresMoreThanLazyRET(t *testing.T) {
	// The purely performance-oriented baseline hunts the best
	// hyper-volume point for every change, so it reconfigures far more
	// often than the cost-aware RET policy at pRC=0.
	hv := baseParams(t, 0, 51)
	hv.Policy = PolicyHypervolume
	mh, err := Simulate(hv)
	if err != nil {
		t.Fatal(err)
	}
	ret := baseParams(t, 0, 51)
	mr, err := Simulate(ret)
	if err != nil {
		t.Fatal(err)
	}
	if mh.Reconfigs <= mr.Reconfigs {
		t.Errorf("hypervolume policy reconfigs %d should exceed lazy RET %d", mh.Reconfigs, mr.Reconfigs)
	}
	if mh.TotalDRC <= mr.TotalDRC {
		t.Errorf("hypervolume policy dRC %v should exceed lazy RET %v", mh.TotalDRC, mr.TotalDRC)
	}
}

func TestHypervolumePolicyPicksLargestArea(t *testing.T) {
	f := getFixture(t)
	sim := newSimState(&Params{DB: f.base, Space: f.problem.Space, Policy: PolicyHypervolume})
	var feas []int
	for i := range f.base.Points {
		feas = append(feas, i)
	}
	// Loose spec: every point feasible; the winner must maximise
	// (SSpec-S)*(F-FSpec).
	spec := QoSSpec{SMaxMs: 1e9, FMin: 0}
	got, gotV := sim.selectHypervolume(feas, spec)
	bestV := -1.0
	want := -1
	for _, i := range feas {
		pt := f.base.Points[i]
		v := (spec.SMaxMs - pt.MakespanMs) * (pt.Reliability - spec.FMin)
		if v > bestV {
			bestV, want = v, i
		}
	}
	if got != want {
		t.Errorf("selectHypervolume = %d, want %d", got, want)
	}
	if gotV != bestV {
		t.Errorf("selectHypervolume score = %v, want %v", gotV, bestV)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyRET.String() != "ret" || PolicyHypervolume.String() != "hypervolume" {
		t.Error("Policy.String mismatch")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy string empty")
	}
}

func TestFeasibilityChecksScaleWithDatabase(t *testing.T) {
	f := getFixture(t)
	run := func(db *dse.Database) *Metrics {
		p := baseParams(t, 0.5, 61)
		p.DB = db
		p.QoS = ModelFromDatabase(f.base)
		m, err := Simulate(p)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	small, err := dse.Prune(f.red, max(2, f.red.Len()/3), false)
	if err != nil {
		t.Fatal(err)
	}
	big := run(f.red)
	little := run(small)
	if big.FeasibilityChecks <= little.FeasibilityChecks {
		t.Errorf("larger database should cost more checks: %d vs %d",
			big.FeasibilityChecks, little.FeasibilityChecks)
	}
	// Roughly one database scan per event (plus boot and fallbacks).
	if big.FeasibilityChecks < big.Events*f.red.Len() {
		t.Errorf("checks %d below one scan per event (%d x %d)",
			big.FeasibilityChecks, big.Events, f.red.Len())
	}
}

func TestTraceCSVExport(t *testing.T) {
	p := baseParams(t, 0.5, 81)
	p.Cycles = 5000
	p.TraceLen = 1 << 20
	m, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := m.WriteTraceCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != m.Events+1 {
		t.Fatalf("csv lines = %d, want header + %d events", len(lines), m.Events)
	}
	if !strings.HasPrefix(lines[0], "event,cycle,smax_ms") {
		t.Errorf("bad header %q", lines[0])
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != 7 {
			t.Fatalf("row %q has %d commas, want 7", l, got)
		}
	}
	if s := m.Summary(); !strings.Contains(s, "events=") || !strings.Contains(s, "checks=") {
		t.Errorf("summary = %q", s)
	}
}

func TestReplayDrivesSpecs(t *testing.T) {
	p := baseParams(t, 1.0, 82)
	p.Cycles = 5000
	p.TraceLen = 1 << 20
	q := ModelFromDatabase(p.DB)
	p.Replay = []QoSSpec{
		{SMaxMs: q.HiS, FMin: q.LoF},
		{SMaxMs: q.LoS, FMin: q.LoF},
	}
	m, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Event k's spec is Replay[(k+1) mod 2] (entry 0 boots the system).
	for i, e := range m.Trace {
		want := p.Replay[(i+1)%2]
		if e.Spec != want {
			t.Fatalf("event %d spec %+v, want %+v", i, e.Spec, want)
		}
	}
}

func TestReplayRoundTripThroughCSV(t *testing.T) {
	// Record a run's trace, replay the recorded specs, and observe the
	// identical decision sequence.
	p := baseParams(t, 0.5, 83)
	p.Cycles = 10_000
	p.TraceLen = 1 << 20
	orig, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := orig.WriteTraceCSV(&buf); err != nil {
		t.Fatal(err)
	}
	specs, err := ReadSpecsCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != orig.Events {
		t.Fatalf("parsed %d specs, want %d", len(specs), orig.Events)
	}
	// Replay: boot consumes one spec, so prepend the boot-era spec by
	// replaying with the first recorded spec duplicated.
	p2 := p
	p2.Replay = append([]QoSSpec{specs[0]}, specs...)
	rep, err := Simulate(p2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(rep.Trace) && i < len(orig.Trace); i++ {
		if rep.Trace[i].Spec != orig.Trace[i].Spec {
			t.Fatalf("event %d: replayed spec %+v != recorded %+v",
				i, rep.Trace[i].Spec, orig.Trace[i].Spec)
		}
	}
}

func TestReadSpecsCSVVariants(t *testing.T) {
	// Headerless pairs.
	specs, err := ReadSpecsCSV(strings.NewReader("100,0.9\n200,0.95\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[1].SMaxMs != 200 || specs[1].FMin != 0.95 {
		t.Fatalf("parsed %+v", specs)
	}
	// With header and extra columns.
	specs, err = ReadSpecsCSV(strings.NewReader("event,smax_ms,fmin,extra\n0,50,0.8,zz\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].SMaxMs != 50 {
		t.Fatalf("parsed %+v", specs)
	}
	// Errors.
	for _, bad := range []string{
		"",
		"a,b\n",
		"smax_ms\n1\n",
		"smax_ms,fmin\nxx,0.9\n",
		"smax_ms,fmin\n1,yy\n",
		"smax_ms,fmin\n",
	} {
		if _, err := ReadSpecsCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted bad CSV %q", bad)
		}
	}
}
