package runtime

// Cohort value tables: the shared-learning counterpart of the per-
// device AuRA agent. A ValueTable is a versioned snapshot of the
// per-state value functions (VR, VD) aggregated across a cohort of
// devices that serve the same database under the same observed QoS
// regime. Tables are published on a deterministic epoch schedule (see
// internal/cohort) and injected into agents as prior knowledge, so a
// cold-start device inherits its cohort's learned values instead of
// running offline Monte-Carlo from scratch.
//
// Tables are versioned exactly like fleet.NamedDatabase: the version
// number orders publishes within one cohort, and the content
// fingerprint disambiguates two tables that independently evolved to
// the same number on different nodes. Decisions journal the version of
// the table their agent was last seeded from, so any decision stream
// can be attributed to the value knowledge that produced it and a
// one-step rollback is observable in the flight record.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// ValueTable is a cohort-level snapshot of learned value functions
// over one database version's design points.
type ValueTable struct {
	// Version orders publishes within a cohort; a publish must advance
	// it, a rollback re-installs the displaced (lower) version.
	Version uint64 `json:"version"`
	// Epoch is the deterministic epoch index that produced the table
	// (see cohort.Schedule).
	Epoch uint64 `json:"epoch"`
	// Gamma is the discount factor the values were learned under; a
	// table only seeds agents with the same gamma (the values' meaning
	// depends on it).
	Gamma float64 `json:"gamma"`
	// DBVersion and DBFingerprint pin the database version the state
	// indices refer to: point IDs are only meaningful within one
	// database version, so a table never crosses a database swap.
	DBVersion     uint64 `json:"db_version"`
	DBFingerprint uint64 `json:"db_fingerprint"`
	// QoSFingerprint is the quantised fingerprint of the observed
	// QoS-event distribution the table was aggregated from (the second
	// half of the cohort key; see cohort.Key).
	QoSFingerprint uint64 `json:"qos_fingerprint"`
	// Devices and Events count what was folded in: how many devices
	// contributed episodic returns, over how many journaled decisions.
	Devices int `json:"devices"`
	Events  int `json:"events"`
	// VR and VD are the aggregated per-state value functions
	// (performance and reconfiguration cost), indexed by design-point
	// ID; Visits carries the pooled visit counts so an agent seeded
	// from the table keeps learning at the cohort's effective rate.
	VR     []float64 `json:"vr"`
	VD     []float64 `json:"vd"`
	Visits []int     `json:"visits"`
}

// Len returns the number of states the table covers.
func (t *ValueTable) Len() int { return len(t.VR) }

// Validate checks the table's internal consistency.
func (t *ValueTable) Validate() error {
	if len(t.VR) == 0 {
		return fmt.Errorf("runtime: value table has no states")
	}
	if len(t.VD) != len(t.VR) || len(t.Visits) != len(t.VR) {
		return fmt.Errorf("runtime: value table slices disagree: %d VR, %d VD, %d visits",
			len(t.VR), len(t.VD), len(t.Visits))
	}
	if t.Gamma < 0 || t.Gamma >= 1 {
		return fmt.Errorf("runtime: value table gamma %v outside [0,1)", t.Gamma)
	}
	for i, v := range t.Visits {
		if v < 0 {
			return fmt.Errorf("runtime: value table visits[%d] = %d is negative", i, v)
		}
	}
	return nil
}

// Fingerprint is the table's content hash: FNV-1a over gamma, the
// database binding, and every state's values and visit count, in state
// order. The version number is deliberately excluded — it is compared
// separately, exactly like fleet.NamedDatabase.Fingerprint, so two
// nodes can detect tables that independently evolved to the same
// version number with different content.
func (t *ValueTable) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(math.Float64bits(t.Gamma))
	word(t.DBVersion)
	word(t.DBFingerprint)
	word(t.QoSFingerprint)
	for i := range t.VR {
		word(math.Float64bits(t.VR[i]))
		word(math.Float64bits(t.VD[i]))
		word(uint64(t.Visits[i]))
	}
	return h.Sum64()
}

// ApplyPrior seeds the agent's value functions from a cohort table:
// VR, VD and the visit counts are replaced wholesale (the table was
// aggregated from the cohort's journaled returns, this device's
// included, so blending would double-count). Buffered steps of an open
// episode are untouched and keep updating on top of the injected
// values. It fails if the table does not fit the agent's state space
// or was learned under a different gamma.
func (a *Agent) ApplyPrior(t *ValueTable) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if t.Len() != len(a.VR) {
		return fmt.Errorf("runtime: value table covers %d states, agent has %d", t.Len(), len(a.VR))
	}
	if t.Gamma != a.Gamma {
		return fmt.Errorf("runtime: value table gamma %v, agent gamma %v", t.Gamma, a.Gamma)
	}
	copy(a.VR, t.VR)
	copy(a.VD, t.VD)
	copy(a.visits, t.Visits)
	return nil
}

// Snapshot exports the agent's learned state as an unversioned value
// table (the caller stamps version, epoch and cohort bindings). The
// slices are copies; mutating the result never touches the agent.
func (a *Agent) Snapshot() *ValueTable {
	return &ValueTable{
		Gamma:  a.Gamma,
		VR:     append([]float64(nil), a.VR...),
		VD:     append([]float64(nil), a.VD...),
		Visits: append([]int(nil), a.visits...),
	}
}

// Observe records one discrete event into the agent's episode buffer:
// the state in force after the event, its immediate performance reward
// rR, the reconfiguration cost rD paid entering it, and the cycle
// time. It is the exported form of the step the Manager takes per
// decision, for callers that replay journaled decisions into a
// detached agent (the cohort aggregator).
func (a *Agent) Observe(state int, rR, rD, cycleTime float64) error {
	if state < 0 || state >= len(a.VR) {
		return fmt.Errorf("runtime: observe state %d outside [0,%d)", state, len(a.VR))
	}
	a.step(state, rR, rD, cycleTime)
	return nil
}

// Flush closes the trailing partial episode, applying its Monte-Carlo
// updates. Call it after the last Observe of a replay.
func (a *Agent) Flush() { a.flush() }

// ApplyValuePrior seeds the manager's AuRA agent from a cohort value
// table (see Agent.ApplyPrior). It reports whether a prior was
// applied: false with a nil error means the manager runs uRA (no
// agent) or the table's gamma does not match — both expected states
// for mixed fleets, not faults. The swap happens under the manager
// lock, between decisions.
func (m *Manager) ApplyValuePrior(t *ValueTable) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ag := m.sim.p.Agent
	if ag == nil || ag.Gamma != t.Gamma {
		return false, nil
	}
	if err := ag.ApplyPrior(t); err != nil {
		return false, err
	}
	return true, nil
}
