package runtime

// CSV exporters, so traces and metrics can be analysed with external
// tooling (gnuplot, pandas) without re-running simulations.

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteTraceCSV streams the recorded events as CSV with a header row:
// event, cycle, smax_ms, fmin, point, drc_ms, reconfigured, violated.
func (m *Metrics) WriteTraceCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"event", "cycle", "smax_ms", "fmin", "point", "drc_ms", "reconfigured", "violated"}); err != nil {
		return err
	}
	for _, e := range m.Trace {
		rec := []string{
			strconv.Itoa(e.Event),
			formatF(e.CycleTime),
			formatF(e.Spec.SMaxMs),
			formatF(e.Spec.FMin),
			strconv.Itoa(e.Point),
			formatF(e.DRC),
			strconv.FormatBool(e.Reconfigured),
			strconv.FormatBool(e.Violated),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary renders the headline metrics as a one-line report.
func (m *Metrics) Summary() string {
	return fmt.Sprintf("events=%d reconfigs=%d avg_dRC=%.4fms max_dRC=%.3fms avg_J=%.2fmJ violations=%d checks=%d",
		m.Events, m.Reconfigs, m.AvgDRC, m.MaxDRC, m.AvgEnergyMJ, m.ViolationEvents, m.FeasibilityChecks)
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ReadSpecsCSV parses a specification sequence for Params.Replay. The
// input needs (at least) the columns smax_ms and fmin; a WriteTraceCSV
// output can be fed back directly, replaying the specifications a
// previous run saw. Rows are matched by header name; files without a
// header are read as "smax_ms,fmin" pairs.
func ReadSpecsCSV(r io.Reader) ([]QoSSpec, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("runtime: empty spec CSV")
	}
	sCol, fCol := 0, 1
	start := 0
	if _, err := strconv.ParseFloat(rows[0][0], 64); err != nil {
		// Header row: locate the columns by name.
		sCol, fCol = -1, -1
		for i, name := range rows[0] {
			switch name {
			case "smax_ms":
				sCol = i
			case "fmin":
				fCol = i
			}
		}
		if sCol < 0 || fCol < 0 {
			return nil, fmt.Errorf("runtime: spec CSV header lacks smax_ms/fmin columns")
		}
		start = 1
	}
	var specs []QoSSpec
	for i, row := range rows[start:] {
		if len(row) <= sCol || len(row) <= fCol {
			return nil, fmt.Errorf("runtime: spec CSV row %d too short", i+start+1)
		}
		sv, err := strconv.ParseFloat(row[sCol], 64)
		if err != nil {
			return nil, fmt.Errorf("runtime: spec CSV row %d: bad smax %q", i+start+1, row[sCol])
		}
		fv, err := strconv.ParseFloat(row[fCol], 64)
		if err != nil {
			return nil, fmt.Errorf("runtime: spec CSV row %d: bad fmin %q", i+start+1, row[fCol])
		}
		specs = append(specs, QoSSpec{SMaxMs: sv, FMin: fv})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("runtime: spec CSV has no data rows")
	}
	return specs, nil
}
