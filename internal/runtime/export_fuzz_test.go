package runtime

import (
	"strings"
	"testing"
)

// FuzzReadSpecsCSV asserts the spec parser never panics and that
// successfully parsed sequences are non-empty with finite values.
func FuzzReadSpecsCSV(f *testing.F) {
	f.Add("100,0.9\n200,0.95\n")
	f.Add("event,smax_ms,fmin\n0,50,0.8\n")
	f.Add("smax_ms,fmin\n")
	f.Add("")
	f.Add("a,b,c\n1,2,3\n")
	f.Add("\"quoted\",x\n")
	f.Fuzz(func(t *testing.T, src string) {
		specs, err := ReadSpecsCSV(strings.NewReader(src))
		if err != nil {
			return
		}
		if len(specs) == 0 {
			t.Fatal("nil-error parse returned no specs")
		}
	})
}
