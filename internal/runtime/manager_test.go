package runtime

import (
	"math"
	"strings"
	"sync"
	"testing"

	"clrdse/internal/mapping"
	"clrdse/internal/rng"
)

// newSpecStreamRNG mirrors Simulate's derivation of the specification
// RNG — the event RNG's Split(1) consumes parent state before the spec
// RNG's Split(2) — so tests can replay identical streams.
func newSpecStreamRNG(seed int64) *rng.Source {
	root := rng.New(seed)
	root.Split(1)
	return root.Split(2)
}

func managerParams(t *testing.T) (ManagerParams, QoSSpec) {
	f := getFixture(t)
	q := ModelFromDatabase(f.base)
	return ManagerParams{
		DB:    f.base,
		Space: f.problem.Space,
		PRC:   0.5,
	}, QoSSpec{SMaxMs: q.HiS, FMin: q.LoF}
}

func TestManagerBootsFeasible(t *testing.T) {
	p, spec := managerParams(t)
	m, err := NewManager(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !m.CurrentPoint().Feasible(spec.SMaxMs, spec.FMin) {
		t.Error("boot point infeasible for a loose spec")
	}
}

func TestManagerMatchesSimulatorDecisions(t *testing.T) {
	// Replaying one simulated event stream through the Manager must
	// reproduce the simulator's transition sequence exactly.
	f := getFixture(t)
	p := baseParams(t, 0.5, 71)
	p.Cycles = 20_000
	p.TraceLen = 1 << 20
	p.QoS = ModelFromDatabase(f.base)
	sim, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}

	// Regenerate the identical spec stream the simulator saw.
	// (Same derivation as Simulate: root seed -> Split(2).)
	specRNG := newSpecStreamRNG(p.Seed)
	stream := p.QoS.Stream()
	bootSpec := stream.Next(specRNG)

	mgr, err := NewManager(ManagerParams{
		DB: f.base, Space: f.problem.Space, PRC: 0.5, Trigger: p.Trigger,
	}, bootSpec)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range sim.Trace {
		d := mgr.OnQoSChange(e.Spec)
		if d.To != e.Point {
			t.Fatalf("event %d: manager chose %d, simulator chose %d", i, d.To, e.Point)
		}
		if d.Reconfigured != e.Reconfigured {
			t.Fatalf("event %d: reconfigured mismatch", i)
		}
		if math.Abs(d.Cost.Total()-e.DRC) > 1e-9 {
			t.Fatalf("event %d: cost %v vs %v", i, d.Cost.Total(), e.DRC)
		}
	}
}

func TestManagerPlansRealiseTransitions(t *testing.T) {
	f := getFixture(t)
	p, spec := managerParams(t)
	mgr, err := NewManager(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Force a transition by demanding the most reliable point.
	maxF := 0.0
	for _, pt := range f.base.Points {
		if pt.Reliability > maxF {
			maxF = pt.Reliability
		}
	}
	d := mgr.OnQoSChange(QoSSpec{SMaxMs: spec.SMaxMs, FMin: maxF})
	if d.Reconfigured {
		if mapping.PlanCost(d.Plan) != d.Cost.Total() {
			t.Errorf("plan cost %v != decision cost %v", mapping.PlanCost(d.Plan), d.Cost.Total())
		}
		if !strings.Contains(d.Describe(), "reconfigure") {
			t.Errorf("describe = %q", d.Describe())
		}
	} else if !strings.Contains(d.Describe(), "stay") {
		t.Errorf("describe = %q", d.Describe())
	}
	if mgr.Current() != d.To {
		t.Error("manager state did not advance")
	}
}

func TestManagerValidation(t *testing.T) {
	_, spec := managerParams(t)
	if _, err := NewManager(ManagerParams{}, spec); err == nil {
		t.Error("accepted empty params")
	}
}

func TestManagerWithAgentLearns(t *testing.T) {
	f := getFixture(t)
	p, spec := managerParams(t)
	p.Agent = NewAgentForDB(f.base, 0.8, 0)
	p.Trigger = TriggerOnViolation
	mgr, err := NewManager(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	q := ModelFromDatabase(f.base)
	r := newSpecStreamRNG(91)
	stream := q.Stream()
	for i := 0; i < 300; i++ {
		mgr.OnQoSChange(stream.Next(r))
	}
	if p.Agent.Episodes == 0 {
		t.Error("agent completed no episodes over 300 events")
	}
}

func TestManagerConcurrentUse(t *testing.T) {
	// Hammer one manager from many goroutines; under -race this proves
	// the documented concurrency guarantee, and the event counter must
	// account for every call regardless of interleaving.
	f := getFixture(t)
	p, spec := managerParams(t)
	p.Agent = NewAgentForDB(f.base, 0.8, 0)
	p.Trigger = TriggerOnViolation
	mgr, err := NewManager(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	q := ModelFromDatabase(f.base)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := newSpecStreamRNG(int64(1000 + w))
			stream := q.Stream()
			for i := 0; i < perWorker; i++ {
				d := mgr.OnQoSChange(stream.Next(r))
				if d.To < 0 || d.To >= f.base.Len() {
					t.Errorf("decision to out-of-range point %d", d.To)
					return
				}
				mgr.Current()
				mgr.CurrentPoint()
			}
		}(w)
	}
	wg.Wait()
	if got := mgr.events; got != workers*perWorker {
		t.Errorf("event counter = %d, want %d", got, workers*perWorker)
	}
}

func TestManagerHypervolumePolicy(t *testing.T) {
	f := getFixture(t)
	q := ModelFromDatabase(f.base)
	mgr, err := NewManager(ManagerParams{
		DB:     f.base,
		Space:  f.problem.Space,
		Policy: PolicyHypervolume,
	}, QoSSpec{SMaxMs: q.HiS, FMin: q.LoF})
	if err != nil {
		t.Fatal(err)
	}
	// With the hyper-volume policy the winner shifts with the spec, so
	// a sequence of distinct specs should trigger reconfigurations.
	r := newSpecStreamRNG(97)
	stream := q.Stream()
	moves := 0
	for i := 0; i < 100; i++ {
		if mgr.OnQoSChange(stream.Next(r)).Reconfigured {
			moves++
		}
	}
	if moves == 0 {
		t.Error("hypervolume-policy manager never reconfigured over 100 changes")
	}
}
