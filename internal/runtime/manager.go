package runtime

// Manager is the deployable form of the run-time stage: where Simulate
// drives a Monte-Carlo model of the environment, a Manager is embedded
// in the actual system and *reacts* — the control software calls
// OnQoSChange whenever the operating requirements move, and receives
// the decision together with the imperative reconfiguration plan
// (which binaries to copy, which bitstreams to load). The decision
// logic is byte-for-byte the simulator's: trigger policy, uRA/AuRA
// scoring (with the same pRC semantics), hyper-volume baseline,
// least-violation fallback.

import (
	"fmt"
	"sync"

	"clrdse/internal/dse"
	"clrdse/internal/mapping"
)

// Decision is the manager's reaction to one QoS change.
type Decision struct {
	// From and To are stored design-point IDs; equal when the system
	// stays put.
	From, To int
	// Reconfigured reports whether a transition happens.
	Reconfigured bool
	// Cost is the transition's dRC decomposition (zero when staying).
	Cost mapping.ReconfigCost
	// Plan is the imperative action list realising the transition
	// (empty when staying put).
	Plan []mapping.Action
	// Violated reports that no stored point satisfies the new
	// specification and To is the least-violating fallback.
	Violated bool
}

// Manager tracks the current configuration and decides transitions.
//
// A Manager is safe for concurrent use: OnQoSChange, Current and
// CurrentPoint may be called from multiple goroutines. Decisions are
// serialised internally, so concurrent OnQoSChange calls execute one
// at a time in some order; each decision observes the state left by
// the previous one, exactly as if the same interleaving had been
// replayed through a single control loop. Callers that need a fixed
// decision order (e.g. replaying a recorded trace) must still provide
// events from one goroutine. The optional Agent is stepped under the
// same lock and must not be shared between managers.
type Manager struct {
	mu  sync.Mutex
	sim *simState
	cur int
	// events counts OnQoSChange calls (feeds the agent's episode
	// clock when no cycle timestamps are supplied).
	events int
}

// ManagerParams configures a Manager. The QoS model and Cycles fields
// of Params are unused (the environment is real, not simulated).
type ManagerParams struct {
	// DB is the stored design-point database.
	DB *dse.Database
	// Space prices reconfigurations.
	Space *mapping.Space
	// Matrix, when non-nil, is the precomputed pairwise dRC table for
	// DB. A fleet of managers on the same database should share one
	// matrix (see mapping.NewDRCMatrix); nil builds a private one,
	// which costs |DB|^2 dRC computations per manager.
	Matrix *mapping.DRCMatrix
	// PRC is the user modulation parameter pRC in [0,1].
	PRC float64
	// Trigger selects when to re-optimise.
	Trigger Trigger
	// Policy selects the scoring rule.
	Policy Policy
	// Agent optionally upgrades uRA to AuRA; it keeps learning online
	// from the decisions the manager takes.
	Agent *Agent
	// MeanInterArrivalCycles calibrates the agent's episode clock when
	// the caller does not track cycle time (0 selects 100).
	MeanInterArrivalCycles float64
}

// NewManager boots a manager into the best feasible point for the
// initial specification (or the least-violating point).
func NewManager(p ManagerParams, initial QoSSpec) (*Manager, error) {
	inner := Params{
		DB:                     p.DB,
		Space:                  p.Space,
		Matrix:                 p.Matrix,
		PRC:                    p.PRC,
		Trigger:                p.Trigger,
		Policy:                 p.Policy,
		Agent:                  p.Agent,
		MeanInterArrivalCycles: p.MeanInterArrivalCycles,
	}
	if err := inner.validate(); err != nil {
		return nil, err
	}
	pp := inner.withDefaults()
	// withDefaults derives a QoS model from the database; unused for
	// decisions but keeps the embedded state consistent.
	m := &Manager{sim: newSimState(&pp)}
	m.cur = m.sim.bestBoot(initial)
	return m, nil
}

// Current returns the stored design-point ID in force.
func (m *Manager) Current() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur
}

// CurrentPoint returns the stored design point in force.
func (m *Manager) CurrentPoint() *dse.DesignPoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sim.p.DB.Points[m.cur]
}

// OnQoSChange reacts to a new specification and returns the decision
// with its reconfiguration plan. The manager's state advances to the
// chosen point.
func (m *Manager) OnQoSChange(spec QoSSpec) Decision {
	d, _ := m.OnQoSChangeObserved(spec, nil)
	return d
}

// OnQoSChangeObserved is OnQoSChange with observability: rec (when
// non-nil) receives one span per decide stage — filter, score, switch,
// agent_update — and the returned detail explains the choice
// (candidate counts, selection score). The decision is byte-identical
// to OnQoSChange's for the same state and spec; observation never
// influences the choice.
func (m *Manager) OnQoSChangeObserved(spec QoSSpec, rec StageRecorder) (Decision, DecisionDetail) {
	m.mu.Lock()
	defer m.mu.Unlock()
	next, cost, violated, detail := m.sim.decideObserved(m.cur, spec, rec)
	d := Decision{From: m.cur, To: next, Violated: violated}
	if next != m.cur {
		d.Reconfigured = true
		d.Cost = cost
		endSwitch := startStage(rec, StageSwitch)
		d.Plan = m.sim.p.Space.Diff(m.sim.maps[m.cur], m.sim.maps[next])
		endSwitch()
	}
	m.events++
	if ag := m.sim.p.Agent; ag != nil {
		// Approximate the episode clock by the expected inter-arrival
		// time; callers with real timestamps can manage the agent
		// themselves via Agent.Pretrain / step sequences.
		endAgent := startStage(rec, StageAgent)
		t := float64(m.events) * m.sim.p.MeanInterArrivalCycles
		ag.step(next, -m.sim.p.DB.Points[next].EnergyMJ, cost.Total(), t)
		endAgent()
	}
	m.cur = next
	return d, detail
}

// Events returns how many QoS changes the manager has processed
// (decisions and replayed journal entries both advance it). It feeds
// the AuRA agent's episode clock, so a restored manager must carry it
// over — see Restore.
func (m *Manager) Events() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.events
}

// Replay re-applies one recorded decision without re-deciding: the
// configuration moves to the stored point `to`, the event clock
// advances, and the AuRA agent (when present) re-learns the recorded
// reward — the point's stored energy and the decision's recorded dRC —
// exactly as the original decision did. Replaying a device's full
// journal through a freshly booted manager therefore reconstructs the
// original manager state byte for byte, which is what lets a cluster
// node take over a migrated device and keep deciding identically.
func (m *Manager) Replay(to int, drcTotal float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if to < 0 || to >= len(m.sim.p.DB.Points) {
		return fmt.Errorf("runtime: replay target point %d outside database [0,%d)", to, len(m.sim.p.DB.Points))
	}
	m.events++
	if ag := m.sim.p.Agent; ag != nil {
		t := float64(m.events) * m.sim.p.MeanInterArrivalCycles
		ag.step(to, -m.sim.p.DB.Points[to].EnergyMJ, drcTotal, t)
	}
	m.cur = to
	return nil
}

// Restore forces the manager to a known (point, event-count) state.
// It is the snapshot-based fallback for handoff when a device's
// journal is incomplete (the ring overwrote its oldest entries): the
// configuration and episode clock are exact, while an AuRA agent keeps
// whatever the partial replay taught it. Callers with a complete
// journal should prefer Replay, which restores everything.
func (m *Manager) Restore(cur, events int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur < 0 || cur >= len(m.sim.p.DB.Points) {
		return fmt.Errorf("runtime: restore point %d outside database [0,%d)", cur, len(m.sim.p.DB.Points))
	}
	if events < 0 {
		return fmt.Errorf("runtime: restore event count %d is negative", events)
	}
	m.cur = cur
	m.events = events
	return nil
}

// Describe renders a decision for logs.
func (d Decision) Describe() string {
	if !d.Reconfigured {
		status := "stay"
		if d.Violated {
			status = "stay (spec unsatisfiable)"
		}
		return fmt.Sprintf("%s at point %d", status, d.To)
	}
	return fmt.Sprintf("reconfigure %d -> %d: dRC=%.3f ms, %d actions",
		d.From, d.To, d.Cost.Total(), len(d.Plan))
}
