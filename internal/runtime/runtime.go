// Package runtime implements the run-time adaptation of the paper's
// Section 4.3: a discrete-event Monte-Carlo simulation in which the
// QoS specification (S_SPEC, F_SPEC) changes at random instants and a
// run-time manager switches the system between stored design points.
//
// Discrete events arrive with exponentially distributed inter-arrival
// times (mean 100 application execution cycles in the paper's setup);
// each event draws a new QoS specification from a bivariate Gaussian.
// On each event the manager:
//
//  1. filters the stored design points for feasibility under the new
//     specification (Algorithm 1, line 3),
//  2. scores each feasible point by
//     RET(p) = pRC * norm(R(p)) - (1-pRC) * norm(dRC(p)),
//     where R(p) = -J_app(p) and dRC is the reconfiguration cost from
//     the current configuration (lines 5-9), and
//  3. reconfigures to the argmax (line 11).
//
// The user parameter pRC trades performance (energy) against
// adaptation cost: pRC=1 always chases the lowest-energy feasible
// point (the behaviour of the purely Pareto-oriented baseline), while
// pRC=0 minimises reconfiguration and therefore only moves on a QoS
// violation.
//
// AuRA (agent.go) replaces the instantaneous scores with learned
// per-state value functions; gamma = 0 recovers uRA exactly.
package runtime

import (
	"fmt"
	"math"
	"sort"

	"clrdse/internal/dse"
	"clrdse/internal/mapping"
	"clrdse/internal/rng"
)

// QoSSpec is one quality-of-service requirement: the system must keep
// average makespan at or below SMaxMs and functional reliability at or
// above FMin.
type QoSSpec struct {
	SMaxMs float64
	FMin   float64
}

// QoSModel draws QoS specifications from a bivariate Gaussian, clamped
// to a plausible envelope (the paper emulates QoS variation with a
// bivariate Gaussian distribution).
type QoSModel struct {
	// MeanS/StdS parameterise the makespan-bound marginal (ms).
	MeanS, StdS float64
	// MeanF/StdF parameterise the reliability-bound marginal.
	MeanF, StdF float64
	// Rho is the correlation between the two bounds. Tight deadlines
	// often coincide with relaxed reliability demands and vice versa,
	// so a negative value is typical.
	Rho float64
	// Persist is the AR(1) coefficient of the specification process:
	// 0 draws each event's spec independently, values towards 1 make
	// the operating scenario drift (successive requirements resemble
	// each other, as when a satellite slowly crosses terrain types).
	// Innovations are bivariate Gaussian; the stationary marginal
	// matches (MeanS/StdS, MeanF/StdF) regardless of Persist.
	Persist float64
	// LoS/HiS and LoF/HiF clamp the samples.
	LoS, HiS float64
	LoF, HiF float64
}

// Sample draws one specification from the stationary marginal
// (equivalent to a stream draw with no history).
func (q *QoSModel) Sample(r *rng.Source) QoSSpec {
	s, f := r.BivariateNormal(q.MeanS, q.MeanF, q.StdS, q.StdF, q.Rho)
	return q.clamp(s, f)
}

func (q *QoSModel) clamp(s, f float64) QoSSpec {
	return QoSSpec{
		SMaxMs: math.Min(q.HiS, math.Max(q.LoS, s)),
		FMin:   math.Min(q.HiF, math.Max(q.LoF, f)),
	}
}

// SpecStream generates the autocorrelated specification process.
type SpecStream struct {
	q       *QoSModel
	s, f    float64
	started bool
}

// Stream returns a fresh specification process for one simulation run.
func (q *QoSModel) Stream() *SpecStream { return &SpecStream{q: q} }

// Next draws the next specification of the process.
func (st *SpecStream) Next(r *rng.Source) QoSSpec {
	q := st.q
	if !st.started || q.Persist == 0 {
		st.s, st.f = r.BivariateNormal(q.MeanS, q.MeanF, q.StdS, q.StdF, q.Rho)
		st.started = true
		return q.clamp(st.s, st.f)
	}
	// AR(1): x' = mean + phi*(x - mean) + sqrt(1-phi^2)*innovation,
	// which preserves the stationary variance.
	phi := q.Persist
	scale := math.Sqrt(1 - phi*phi)
	ds, df := r.BivariateNormal(0, 0, q.StdS, q.StdF, q.Rho)
	st.s = q.MeanS + phi*(st.s-q.MeanS) + scale*ds
	st.f = q.MeanF + phi*(st.f-q.MeanF) + scale*df
	return q.clamp(st.s, st.f)
}

// ModelFromDatabase derives a QoS model whose envelope is spanned by
// the database's design points, so that (almost) every sampled
// specification is satisfiable by at least one stored point. The
// spread covers the database's metric ranges; the mild negative
// correlation reflects alternating performance/reliability pressure.
func ModelFromDatabase(db *dse.Database) QoSModel {
	minS, maxS := math.Inf(1), math.Inf(-1)
	minF, maxF := math.Inf(1), math.Inf(-1)
	for _, p := range db.Points {
		minS = math.Min(minS, p.MakespanMs)
		maxS = math.Max(maxS, p.MakespanMs)
		minF = math.Min(minF, p.Reliability)
		maxF = math.Max(maxF, p.Reliability)
	}
	// Degenerate single-point databases still need a usable envelope.
	if maxS == minS {
		maxS = minS * 1.1
	}
	if maxF == minF {
		minF = maxF - 0.01
	}
	return QoSModel{
		MeanS:   (minS + maxS) / 2,
		StdS:    (maxS - minS) / 4,
		MeanF:   (minF + maxF) / 2,
		StdF:    (maxF - minF) / 4,
		Rho:     -0.3,
		Persist: 0.6,
		LoS:     minS, HiS: maxS * 1.05,
		LoF: math.Max(0, minF*0.98), HiF: maxF,
	}
}

// Trigger selects when the manager searches for a new configuration.
type Trigger int

const (
	// TriggerAlways re-evaluates the stored points on every QoS event,
	// as the purely Pareto-oriented baseline does (it hunts the best
	// hyper-volume point for every change — the cause of the
	// continuous adaptations in region A of Figure 6).
	TriggerAlways Trigger = iota
	// TriggerOnViolation searches only when the current configuration
	// violates the new specification — the reconfiguration-cost-aware
	// behaviour.
	TriggerOnViolation
)

func (tr Trigger) String() string {
	switch tr {
	case TriggerAlways:
		return "always"
	case TriggerOnViolation:
		return "on-violation"
	default:
		return fmt.Sprintf("Trigger(%d)", int(tr))
	}
}

// Policy selects how the manager scores feasible candidates.
type Policy int

const (
	// PolicyRET is Algorithm 1's weighted score
	// pRC*norm(R) - (1-pRC)*norm(dRC) (uRA / AuRA).
	PolicyRET Policy = iota
	// PolicyHypervolume is the purely performance-oriented baseline
	// of the paper's Section 5.2: on every event it moves to the
	// feasible point with the best hyper-volume fitness against the
	// new specification's reference point (Figure 4a), ignoring
	// reconfiguration cost entirely. Because the winner shifts with
	// every specification, this policy reconfigures almost every
	// event — the region-A behaviour of Figure 6.
	PolicyHypervolume
)

func (p Policy) String() string {
	switch p {
	case PolicyRET:
		return "ret"
	case PolicyHypervolume:
		return "hypervolume"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Params configures one run-time simulation.
type Params struct {
	// DB is the stored design-point database.
	DB *dse.Database
	// Space prices reconfigurations between stored points.
	Space *mapping.Space
	// Matrix, when non-nil, supplies the precomputed pairwise dRC
	// table for DB (mapping.NewDRCMatrix over DB.Mappings()). It must
	// cover exactly DB's points. Nil computes the table at simulation
	// start; sharing one matrix across runs (or across a fleet of
	// managers on the same database) amortises that precomputation.
	Matrix *mapping.DRCMatrix
	// QoS generates specifications; zero value selects
	// ModelFromDatabase(DB).
	QoS QoSModel
	// PRC is the user modulation parameter pRC in [0,1].
	PRC float64
	// MeanInterArrivalCycles is the mean time between discrete events
	// in application execution cycles (0 selects the paper's 100).
	MeanInterArrivalCycles float64
	// Cycles is the total simulated application execution cycles
	// (0 selects 1e6, the paper's horizon).
	Cycles float64
	// Trigger selects the adaptation trigger policy.
	Trigger Trigger
	// Policy selects the candidate-scoring rule (default PolicyRET).
	Policy Policy
	// Replay, when non-empty, supplies the specification sequence
	// verbatim instead of sampling the QoS model: entry k drives event
	// k (cycling if the simulation outlives the list). Use
	// ReadSpecsCSV to load recorded traces.
	Replay []QoSSpec
	// Agent, when non-nil, upgrades uRA to AuRA using the agent's
	// value functions.
	Agent *Agent
	// Seed drives the event process.
	Seed int64
	// TraceLen bounds how many per-event trace entries are recorded
	// (0 = none).
	TraceLen int
}

func (p *Params) withDefaults() Params {
	q := *p
	if q.MeanInterArrivalCycles == 0 {
		q.MeanInterArrivalCycles = 100
	}
	if q.Cycles == 0 {
		q.Cycles = 1e6
	}
	if (q.QoS == QoSModel{}) {
		q.QoS = ModelFromDatabase(q.DB)
	}
	return q
}

func (p *Params) validate() error {
	switch {
	case p.DB == nil || p.DB.Len() == 0:
		return fmt.Errorf("runtime: empty design-point database")
	case p.Space == nil:
		return fmt.Errorf("runtime: nil Space")
	case p.PRC < 0 || p.PRC > 1:
		return fmt.Errorf("runtime: pRC must be in [0,1], got %v", p.PRC)
	case p.MeanInterArrivalCycles < 0:
		return fmt.Errorf("runtime: MeanInterArrivalCycles must be positive")
	case p.Cycles < 0:
		return fmt.Errorf("runtime: Cycles must be positive")
	case p.Matrix != nil && p.Matrix.Len() != p.DB.Len():
		return fmt.Errorf("runtime: dRC matrix covers %d points, database has %d", p.Matrix.Len(), p.DB.Len())
	}
	return nil
}

// TraceEntry records one discrete event for Figure 6-style plots.
type TraceEntry struct {
	// Event is the event's ordinal (0-based).
	Event int
	// CycleTime is the simulation time of the event in cycles.
	CycleTime float64
	// Spec is the new QoS specification.
	Spec QoSSpec
	// Point is the configuration in force after the event.
	Point int
	// DRC is the reconfiguration cost paid at this event (0 when the
	// system stays put).
	DRC float64
	// Reconfigured reports whether the configuration changed.
	Reconfigured bool
	// Violated reports whether no stored point satisfied the spec.
	Violated bool
}

// Metrics summarises one simulation run.
type Metrics struct {
	// Events is the number of discrete QoS events processed.
	Events int
	// Reconfigs counts events at which the configuration changed.
	Reconfigs int
	// TotalDRC is the accumulated reconfiguration cost (ms).
	TotalDRC float64
	// MaxDRC is the largest single reconfiguration cost.
	MaxDRC float64
	// AvgDRC is TotalDRC / Events — the paper's "average
	// reconfiguration cost".
	AvgDRC float64
	// AvgEnergyMJ is the cycle-weighted average energy per application
	// execution (J_avg of Figure 1).
	AvgEnergyMJ float64
	// TotalMigrations counts migrated task binaries.
	TotalMigrations int
	// ViolationEvents counts events whose specification no stored
	// point satisfied.
	ViolationEvents int
	// FeasibilityChecks counts stored-point inspections performed by
	// the run-time DSE across all events — the decision-latency
	// proxy behind the paper's concern that large databases lead to
	// "longer run-time DSE" (and the motivation for Prune).
	FeasibilityChecks int
	// Trace holds the first TraceLen events.
	Trace []TraceEntry
}

// Simulate runs the discrete-event Monte-Carlo simulation and returns
// its metrics.
func Simulate(p Params) (*Metrics, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	r := rng.New(p.Seed)
	eventRNG := r.Split(1)
	specRNG := r.Split(2)

	sim := newSimState(&p)
	met := &Metrics{}
	if p.Agent != nil {
		p.Agent.resetClock()
	}

	// Initial specification and configuration: best performance among
	// feasible points, ignoring reconfiguration cost (the system boots
	// into it; nothing to migrate from).
	stream := p.QoS.Stream()
	replayIdx := 0
	nextSpec := func() QoSSpec {
		if len(p.Replay) > 0 {
			sp := p.Replay[replayIdx%len(p.Replay)]
			replayIdx++
			return sp
		}
		return stream.Next(specRNG)
	}
	spec := nextSpec()
	cur := sim.bestBoot(spec)

	t := 0.0
	energyCycles := 0.0
	for {
		dt := eventRNG.Exponential(p.MeanInterArrivalCycles)
		if t+dt >= p.Cycles {
			energyCycles += (p.Cycles - t) * p.DB.Points[cur].EnergyMJ
			break
		}
		t += dt
		energyCycles += dt * p.DB.Points[cur].EnergyMJ

		spec = nextSpec()
		next, cost, violated := sim.decide(cur, spec)

		entry := TraceEntry{
			Event:     met.Events,
			CycleTime: t,
			Spec:      spec,
			Point:     next,
			Violated:  violated,
		}
		if next != cur {
			met.Reconfigs++
			met.TotalDRC += cost.Total()
			met.TotalMigrations += cost.MigratedTasks
			if cost.Total() > met.MaxDRC {
				met.MaxDRC = cost.Total()
			}
			entry.DRC = cost.Total()
			entry.Reconfigured = true
			cur = next
		}
		if p.Agent != nil {
			p.Agent.step(cur, -p.DB.Points[cur].EnergyMJ, cost.Total(), t)
		}
		if violated {
			met.ViolationEvents++
		}
		if met.Events < p.TraceLen {
			met.Trace = append(met.Trace, entry)
		}
		met.Events++
	}
	if p.Agent != nil {
		p.Agent.flush()
	}
	if met.Events > 0 {
		met.AvgDRC = met.TotalDRC / float64(met.Events)
	}
	met.AvgEnergyMJ = energyCycles / p.Cycles
	met.FeasibilityChecks = sim.checks
	return met, nil
}

// simState holds the per-run lookup structures: the precomputed dRC
// matrix driving every score, the full-decomposition cache for the
// (rare) realised transitions, the makespan-sorted feasibility index
// and the scratch slices the per-event decision loop reuses instead
// of allocating.
type simState struct {
	p     *Params
	maps  []*mapping.Mapping
	mat   *mapping.DRCMatrix
	costs map[[2]int]mapping.ReconfigCost // full decompositions, realised moves only
	// byMakespan orders point IDs by ascending makespan (ties by ID)
	// so the feasibility filter can stop at the first stored point
	// whose makespan exceeds the specification.
	byMakespan []int
	checks     int // stored-point inspections (decision-latency proxy)
	// Per-event scratch, reused across the whole run.
	feas         []int
	perf, cost   []float64
	normP, normC []float64
}

func newSimState(p *Params) *simState {
	s := &simState{
		p:     p,
		maps:  p.DB.Mappings(),
		mat:   p.Matrix,
		costs: make(map[[2]int]mapping.ReconfigCost),
	}
	if s.mat == nil {
		s.mat = mapping.NewDRCMatrix(p.Space, s.maps)
	}
	s.byMakespan = make([]int, len(s.maps))
	for i := range s.byMakespan {
		s.byMakespan[i] = i
	}
	sort.Slice(s.byMakespan, func(a, b int) bool {
		pa, pb := s.byMakespan[a], s.byMakespan[b]
		ma, mb := s.p.DB.Points[pa].MakespanMs, s.p.DB.Points[pb].MakespanMs
		if ma != mb {
			return ma < mb
		}
		return pa < pb
	})
	return s
}

// fullDRC returns the complete cost decomposition of a transition,
// memoised per pair. Only realised reconfigurations need it; the
// scoring loops read scalar totals straight from the matrix.
func (s *simState) fullDRC(from, to int) mapping.ReconfigCost {
	key := [2]int{from, to}
	if c, ok := s.costs[key]; ok {
		return c
	}
	c := s.p.Space.DRC(s.maps[from], s.maps[to])
	s.costs[key] = c
	return c
}

// feasible fills the scratch feasibility list with the IDs of every
// stored point satisfying the spec. Points are inspected in
// ascending-makespan order so the scan stops at the first one over
// the makespan bound; the list therefore comes back makespan-ordered,
// not ID-ordered, and every consumer's tie-breaking rule is written
// to be order-independent (lowest ID, or the current point for RET).
// The checks counter still accounts one inspection per stored point,
// keeping the decision-latency proxy comparable across
// implementations.
func (s *simState) feasible(spec QoSSpec) []int {
	s.checks += len(s.p.DB.Points)
	feas := s.feas[:0]
	for _, i := range s.byMakespan {
		pt := s.p.DB.Points[i]
		if pt.MakespanMs > spec.SMaxMs {
			break
		}
		if pt.Reliability >= spec.FMin {
			feas = append(feas, i)
		}
	}
	s.feas = feas
	return feas
}

// bestBoot picks the initial configuration: the feasible point with
// the best performance (lowest energy), or the least-violating point
// if the first spec is unsatisfiable.
func (s *simState) bestBoot(spec QoSSpec) int {
	best, bestJ := -1, math.Inf(1)
	for _, i := range s.feasible(spec) {
		pt := s.p.DB.Points[i]
		if pt.EnergyMJ < bestJ || (pt.EnergyMJ == bestJ && i < best) {
			best, bestJ = i, pt.EnergyMJ
		}
	}
	if best >= 0 {
		return best
	}
	return s.leastViolating(spec)
}

// decide applies the trigger policy and the (u/Au)RA scoring to pick
// the configuration for the new specification. It returns the chosen
// point, the reconfiguration cost of moving there (zero cost if
// staying), and whether the spec was unsatisfiable.
func (s *simState) decide(cur int, spec QoSSpec) (int, mapping.ReconfigCost, bool) {
	next, cost, violated, _ := s.decideObserved(cur, spec, nil)
	return next, cost, violated
}

// decideObserved is decide with per-stage spans (rec may be nil) and
// the explained-decision detail the journal records. The decision
// itself is byte-identical to decide's: observation only reads.
func (s *simState) decideObserved(cur int, spec QoSSpec, rec StageRecorder) (int, mapping.ReconfigCost, bool, DecisionDetail) {
	endFilter := startStage(rec, StageFilter)
	curOK := s.p.DB.Points[cur].Feasible(spec.SMaxMs, spec.FMin)
	if s.p.Trigger == TriggerOnViolation && curOK {
		endFilter()
		return cur, mapping.ReconfigCost{}, false, DecisionDetail{
			Candidates: 1, Infeasible: 0, TriggerSkipped: true,
		}
	}
	feas := s.feasible(spec)
	detail := DecisionDetail{
		Candidates: len(feas),
		Infeasible: len(s.p.DB.Points) - len(feas),
	}
	if len(feas) == 0 {
		// No stored point satisfies the spec: degrade gracefully to
		// the least-violating point (and pay its dRC if we move).
		next := s.leastViolating(spec)
		endFilter()
		if next == cur {
			return cur, mapping.ReconfigCost{}, true, detail
		}
		return next, s.fullDRC(cur, next), true, detail
	}
	endFilter()
	endScore := startStage(rec, StageScore)
	var next int
	if s.p.Policy == PolicyHypervolume {
		next, detail.Score = s.selectHypervolume(feas, spec)
	} else {
		next, detail.Score = s.selectRET(cur, feas)
	}
	endScore()
	if next == cur {
		return cur, mapping.ReconfigCost{}, false, detail
	}
	return next, s.fullDRC(cur, next), false, detail
}

// selectHypervolume returns the feasible point sweeping the largest
// QoS-plane area against the specification's reference point
// (S_SPEC, F_SPEC): (S_SPEC - S) * (F - F_SPEC), together with that
// winning area. Ties break towards the lowest point ID for
// determinism, independent of the candidate list's order.
func (s *simState) selectHypervolume(feas []int, spec QoSSpec) (int, float64) {
	best, bestV := -1, math.Inf(-1)
	for _, i := range feas {
		pt := s.p.DB.Points[i]
		v := (spec.SMaxMs - pt.MakespanMs) * (pt.Reliability - spec.FMin)
		if v > bestV || (v == bestV && i < best) {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// selectRET implements Algorithm 1 lines 4-11 (and its AuRA variant):
// score each feasible point by the weighted, normalised combination of
// performance and reconfiguration cost and return the argmax with its
// winning RET score.
func (s *simState) selectRET(cur int, feas []int) (int, float64) {
	n := len(feas)
	s.perf = growFloats(s.perf, n) // R(p) = -J_app(p), higher better
	s.cost = growFloats(s.cost, n) // dRC from current config
	perf, cost := s.perf, s.cost
	for k, i := range feas {
		perf[k] = -s.p.DB.Points[i].EnergyMJ
		cost[k] = s.mat.Total(cur, i)
		if ag := s.p.Agent; ag != nil && ag.Gamma > 0 {
			// One-step lookahead with learned continuation values:
			// gamma = 0 reduces to the instantaneous uRA scores.
			perf[k] += ag.Gamma * ag.VR[i]
			cost[k] += ag.Gamma * ag.VD[i]
		}
	}
	s.normP = growFloats(s.normP, n)
	s.normC = growFloats(s.normC, n)
	normalizeInto(s.normP, perf)
	normalizeInto(s.normC, cost)
	// Argmax with order-independent tie-breaking: among equal-score
	// maxima, prefer staying at the current point (a free transition),
	// otherwise the lowest point ID — exactly the winner an
	// ascending-ID scan with the classic "strictly greater, or equal
	// and current" update would pick.
	best, bestRET := -1, math.Inf(-1)
	for k, i := range feas {
		ret := s.p.PRC*s.normP[k] - (1-s.p.PRC)*s.normC[k]
		switch {
		case ret > bestRET:
			best, bestRET = i, ret
		case ret == bestRET && best != cur && (i == cur || i < best):
			best = i
		}
	}
	return best, bestRET
}

// leastViolating returns the stored point with the smallest relative
// constraint violation for the spec.
func (s *simState) leastViolating(spec QoSSpec) int {
	best, bestV := 0, math.Inf(1)
	s.checks += len(s.p.DB.Points)
	for i, pt := range s.p.DB.Points {
		v := 0.0
		if pt.MakespanMs > spec.SMaxMs {
			v += (pt.MakespanMs - spec.SMaxMs) / spec.SMaxMs
		}
		if pt.Reliability < spec.FMin {
			v += spec.FMin - pt.Reliability
		}
		if v < bestV {
			best, bestV = i, v
		}
	}
	return best
}

// growFloats returns a slice of length n backed by s's storage when it
// fits, so per-event scoring reuses one allocation across a whole run.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// normalizeInto maps xs to [0,1] by min-max scaling into dst (same
// length); a constant vector maps to all zeros.
func normalizeInto(dst, xs []float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if hi == lo {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	for i, x := range xs {
		dst[i] = (x - lo) / (hi - lo)
	}
}
