package runtime

import (
	"reflect"
	"testing"

	"clrdse/internal/rng"
)

// countRecorder counts starts and ends per stage, proving pairing
// without needing a clock.
type countRecorder struct {
	started map[string]int
	ended   map[string]int
	order   []string
}

func newCountRecorder() *countRecorder {
	return &countRecorder{started: map[string]int{}, ended: map[string]int{}}
}

func (r *countRecorder) Stage(name string) func() {
	r.started[name]++
	r.order = append(r.order, name)
	return func() { r.ended[name]++ }
}

// TestObservedDecisionsIdentical replays the same spec stream through
// an observed and an unobserved manager: the decision sequences must
// be byte-identical — observation never influences the choice.
func TestObservedDecisionsIdentical(t *testing.T) {
	for _, gamma := range []float64{0, 0.9} {
		p, boot := managerParams(t)
		if gamma > 0 {
			p.Agent = NewAgentForDB(p.DB, gamma, 0)
		}
		plain, err := NewManager(p, boot)
		if err != nil {
			t.Fatal(err)
		}
		p2 := p
		if gamma > 0 {
			p2.Agent = NewAgentForDB(p.DB, gamma, 0)
		}
		observed, err := NewManager(p2, boot)
		if err != nil {
			t.Fatal(err)
		}

		model := ModelFromDatabase(p.DB)
		src := rng.New(17)
		stream := model.Stream()
		rec := newCountRecorder()
		for i := 0; i < 200; i++ {
			spec := stream.Next(src)
			want := plain.OnQoSChange(spec)
			got, detail := observed.OnQoSChangeObserved(spec, rec)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("gamma=%v event %d: observed decision diverged:\nplain:    %+v\nobserved: %+v",
					gamma, i, want, got)
			}
			if detail.Candidates < 0 || detail.Infeasible < 0 ||
				detail.Candidates+detail.Infeasible > len(p.DB.Points) {
				t.Fatalf("event %d: implausible detail %+v", i, detail)
			}
		}
		// Every started span ended (the recorder ran under the lock).
		for name, n := range rec.started {
			if rec.ended[name] != n {
				t.Errorf("gamma=%v stage %q: %d starts, %d ends", gamma, name, n, rec.ended[name])
			}
		}
		if rec.started[StageFilter] == 0 {
			t.Error("filter stage never recorded")
		}
		if gamma > 0 && rec.started[StageAgent] == 0 {
			t.Error("agent_update stage never recorded for AuRA")
		}
		if gamma == 0 && rec.started[StageAgent] != 0 {
			t.Error("agent_update stage recorded without an agent")
		}
	}
}

// TestObservedDetailFields pins the detail semantics on crafted specs:
// a satisfiable spec scores candidates; an unsatisfiable one reports
// every point infeasible with no score; the on-violation fast path
// reports TriggerSkipped.
func TestObservedDetailFields(t *testing.T) {
	p, boot := managerParams(t)
	m, err := NewManager(p, boot)
	if err != nil {
		t.Fatal(err)
	}

	_, detail := m.OnQoSChangeObserved(boot, nil)
	if detail.Candidates == 0 || detail.TriggerSkipped {
		t.Errorf("loose spec: detail = %+v, want scored candidates", detail)
	}
	if detail.Candidates+detail.Infeasible != len(p.DB.Points) {
		t.Errorf("candidates+infeasible = %d, want %d",
			detail.Candidates+detail.Infeasible, len(p.DB.Points))
	}

	impossible := QoSSpec{SMaxMs: 1e-9, FMin: 1}
	_, detail = m.OnQoSChangeObserved(impossible, nil)
	if detail.Candidates != 0 || detail.Infeasible != len(p.DB.Points) || detail.Score != 0 {
		t.Errorf("impossible spec: detail = %+v, want all infeasible, zero score", detail)
	}

	pv := p
	pv.Trigger = TriggerOnViolation
	mv, err := NewManager(pv, boot)
	if err != nil {
		t.Fatal(err)
	}
	rec := newCountRecorder()
	dec, detail := mv.OnQoSChangeObserved(boot, rec)
	if !detail.TriggerSkipped || dec.Reconfigured {
		t.Errorf("on-violation with satisfied spec: detail = %+v dec = %+v, want trigger skip", detail, dec)
	}
	if rec.started[StageScore] != 0 {
		t.Error("score stage recorded on the trigger-skip fast path")
	}
	if rec.started[StageFilter] != 1 || rec.ended[StageFilter] != 1 {
		t.Errorf("filter stage starts/ends = %d/%d, want 1/1",
			rec.started[StageFilter], rec.ended[StageFilter])
	}
}
