package runtime

// This file implements the reinforcement-learning agent of the
// paper's Section 4.3.2 (AuRA — Agent-based uRA):
//
//   - State space: each stored design point is one state.
//   - Policy: fixed, uRA-shaped — but the next-state evaluation
//     (Algorithm 1, lines 5-9) augments the instantaneous R(p) and
//     dRC(p) with the states' learned value functions. Setting the
//     discount factor gamma to 0 recovers uRA exactly.
//   - Value optimisation: with the fixed policy, the returns from
//     each episode (1000 application execution cycles by default)
//     update the per-state value functions by every-visit Monte-Carlo.
//   - Prior knowledge: Pretrain runs an offline Monte-Carlo
//     simulation of the fixed policy against the expected QoS-variation
//     distribution to initialise the value functions before deployment.
//
// Two value functions are learned per state: VR estimates the
// discounted future performance (R = -J_app) of residing in a state,
// and VD the discounted future reconfiguration cost it leads to. The
// run-time selection maximises
//
//	pRC * norm(R(p) + gamma*VR(p)) - (1-pRC) * norm(dRC(p) + gamma*VD(p))
//
// over the feasible states p.

import (
	"encoding/json"
	"fmt"
	"os"

	"clrdse/internal/dse"
)

// Agent carries AuRA's learned state.
type Agent struct {
	// Gamma is the discount factor; 0 disables the lookahead and
	// reduces AuRA to uRA.
	Gamma float64
	// Alpha is the learning rate; 0 selects the incremental sample
	// mean (1/N(s)), the textbook Monte-Carlo policy-evaluation rule.
	Alpha float64
	// EpisodeCycles is the episode length in application execution
	// cycles (0 selects the paper's "typically a thousand").
	EpisodeCycles float64

	// VR and VD are the per-state value functions (performance and
	// reconfiguration cost), indexed by design-point ID.
	VR, VD []float64

	visits []int
	// Episode buffer: one entry per discrete event.
	states   []int
	rR, rD   []float64
	boundary float64
	// Episodes counts completed episodes (for diagnostics and tests).
	Episodes int
}

// NewAgent returns an agent for a database of n design points. Value
// functions start uniform (all zero), the purely-online cold start the
// paper describes.
func NewAgent(n int, gamma float64) *Agent {
	if n <= 0 {
		panic(fmt.Sprintf("runtime: NewAgent with %d states", n))
	}
	if gamma < 0 || gamma >= 1 {
		panic(fmt.Sprintf("runtime: NewAgent with gamma %v outside [0,1)", gamma))
	}
	return &Agent{
		Gamma:         gamma,
		EpisodeCycles: 1000,
		VR:            make([]float64, n),
		VD:            make([]float64, n),
		visits:        make([]int, n),
	}
}

// NewAgentForDB returns an agent whose value functions start from a
// stay-put prior instead of zero: residing in state s yields per-event
// reward R(s) = -J(s) and no reconfiguration cost (VD = 0). Without a
// prior, states never visited during (pre)training keep the optimistic
// value 0 — far above any visited state's negative VR — and the agent
// chases unexplored high-energy points.
//
// Because Monte-Carlo returns are truncated at episode boundaries, the
// prior must use the same effective horizon as the learned estimates,
// not the infinite-horizon 1/(1-gamma): a state visited at a uniformly
// random position in an episode of H events sees the expected discount
// sum (1/H) * sum_{j=1..H} (1-gamma^j)/(1-gamma). eventsPerEpisode
// supplies H (0 selects 10, the paper's 1000-cycle episode at the
// 100-cycle mean inter-arrival).
func NewAgentForDB(db *dse.Database, gamma float64, eventsPerEpisode int) *Agent {
	a := NewAgent(db.Len(), gamma)
	if gamma > 0 {
		if eventsPerEpisode <= 0 {
			eventsPerEpisode = 10
		}
		// Expected truncated discount multiplier.
		mult := 0.0
		pow := 1.0
		for j := 1; j <= eventsPerEpisode; j++ {
			pow *= gamma
			mult += (1 - pow) / (1 - gamma)
		}
		mult /= float64(eventsPerEpisode)
		for i, p := range db.Points {
			a.VR[i] = -p.EnergyMJ * mult
		}
	}
	return a
}

// step records one discrete event: the state in force after the event,
// its immediate performance reward rR = R(state), the reconfiguration
// cost paid entering it, and the simulation time. Episodes close on
// the configured cycle boundaries.
func (a *Agent) step(state int, rR, rD, cycleTime float64) {
	ep := a.EpisodeCycles
	if ep <= 0 {
		ep = 1000
	}
	if a.boundary == 0 {
		a.boundary = ep
	}
	for cycleTime >= a.boundary {
		a.endEpisode()
		a.boundary += ep
	}
	a.states = append(a.states, state)
	a.rR = append(a.rR, rR)
	a.rD = append(a.rD, rD)
}

// flush closes the trailing partial episode at the end of a run.
func (a *Agent) flush() {
	a.endEpisode()
}

// resetClock starts a fresh episode clock for a new simulation run
// (whose cycle time restarts at zero), flushing any stale buffer.
// Learned value functions and visit counts are untouched.
func (a *Agent) resetClock() {
	a.endEpisode()
	a.boundary = 0
}

// endEpisode computes backward discounted returns over the buffered
// steps and applies every-visit Monte-Carlo updates to VR and VD.
func (a *Agent) endEpisode() {
	n := len(a.states)
	if n == 0 {
		return
	}
	gR, gD := 0.0, 0.0
	for t := n - 1; t >= 0; t-- {
		gR = a.rR[t] + a.Gamma*gR
		gD = a.rD[t] + a.Gamma*gD
		s := a.states[t]
		a.visits[s]++
		alpha := a.Alpha
		if alpha == 0 {
			alpha = 1 / float64(a.visits[s])
		}
		a.VR[s] += alpha * (gR - a.VR[s])
		a.VD[s] += alpha * (gD - a.VD[s])
	}
	a.states = a.states[:0]
	a.rR = a.rR[:0]
	a.rD = a.rD[:0]
	a.Episodes++
}

// Visits returns how many value updates state s has received.
func (a *Agent) Visits(s int) int { return a.visits[s] }

// Pretrain injects prior knowledge about the operating environment:
// it runs an offline Monte-Carlo simulation of the fixed policy over
// the given cycle horizon (with its own seed, so the online run sees a
// different event realisation) and leaves the learned value functions
// in the agent. The params' Agent field is overridden with a; all
// other fields are used as-is.
func (a *Agent) Pretrain(p Params, cycles float64, seed int64) error {
	p.Agent = a
	p.Cycles = cycles
	p.Seed = seed
	p.TraceLen = 0
	_, err := Simulate(p)
	return err
}

// agentState is the serialised form of an agent's learned knowledge.
type agentState struct {
	Gamma         float64
	Alpha         float64
	EpisodeCycles float64
	VR, VD        []float64
	Visits        []int
	Episodes      int
}

// WriteFile persists the agent's value functions and visit counts as
// JSON, so offline pretraining on a workstation can ship its prior
// knowledge to the deployed target. Unflushed episode buffers are not
// persisted; call flush-inducing Simulate/Pretrain first.
func (a *Agent) WriteFile(path string) error {
	data, err := json.MarshalIndent(agentState{
		Gamma:         a.Gamma,
		Alpha:         a.Alpha,
		EpisodeCycles: a.EpisodeCycles,
		VR:            a.VR,
		VD:            a.VD,
		Visits:        a.visits,
		Episodes:      a.Episodes,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("runtime: marshal agent: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadAgent loads a persisted agent for a database of n design points.
func ReadAgent(path string, n int) (*Agent, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st agentState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("runtime: parse agent %s: %w", path, err)
	}
	if len(st.VR) != n || len(st.VD) != n || len(st.Visits) != n {
		return nil, fmt.Errorf("runtime: agent %s sized for %d states, database has %d", path, len(st.VR), n)
	}
	if st.Gamma < 0 || st.Gamma >= 1 {
		return nil, fmt.Errorf("runtime: agent %s has gamma %v outside [0,1)", path, st.Gamma)
	}
	a := NewAgent(n, st.Gamma)
	a.Alpha = st.Alpha
	a.EpisodeCycles = st.EpisodeCycles
	copy(a.VR, st.VR)
	copy(a.VD, st.VD)
	copy(a.visits, st.Visits)
	a.Episodes = st.Episodes
	return a, nil
}
