package runtime

import (
	"strings"
	"testing"
)

func validTable(n int) *ValueTable {
	t := &ValueTable{
		Version: 3, Epoch: 2, Gamma: 0.8,
		DBVersion: 1, DBFingerprint: 0xfeed, QoSFingerprint: 0xbeef,
		Devices: 4, Events: 400,
		VR:     make([]float64, n),
		VD:     make([]float64, n),
		Visits: make([]int, n),
	}
	for i := 0; i < n; i++ {
		t.VR[i] = -float64(i+1) * 0.5
		t.VD[i] = float64(i) * 0.25
		t.Visits[i] = i * 3
	}
	return t
}

func TestValueTableValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*ValueTable)
		wantErr string
	}{
		{"valid", func(*ValueTable) {}, ""},
		{"empty", func(v *ValueTable) { v.VR = nil }, "no states"},
		{"vd mismatch", func(v *ValueTable) { v.VD = v.VD[:2] }, "disagree"},
		{"visits mismatch", func(v *ValueTable) { v.Visits = append(v.Visits, 1) }, "disagree"},
		{"gamma negative", func(v *ValueTable) { v.Gamma = -0.1 }, "gamma"},
		{"gamma one", func(v *ValueTable) { v.Gamma = 1.0 }, "gamma"},
		{"negative visits", func(v *ValueTable) { v.Visits[1] = -1 }, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vt := validTable(5)
			tc.mutate(vt)
			err := vt.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid table rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestValueTableFingerprintSensitivity(t *testing.T) {
	base := validTable(6).Fingerprint()
	if validTable(6).Fingerprint() != base {
		t.Fatal("identical tables fingerprint differently")
	}
	// The version number is ordering metadata, not content: two nodes
	// must be able to detect same-version/different-content divergence,
	// so Fingerprint excludes Version (and Epoch/Devices/Events, which
	// are provenance, not values).
	vt := validTable(6)
	vt.Version, vt.Epoch, vt.Devices, vt.Events = 99, 98, 97, 96
	if vt.Fingerprint() != base {
		t.Error("version/provenance metadata leaked into the fingerprint")
	}
	mutations := map[string]func(*ValueTable){
		"gamma":  func(v *ValueTable) { v.Gamma = 0.81 },
		"dbver":  func(v *ValueTable) { v.DBVersion++ },
		"dbfp":   func(v *ValueTable) { v.DBFingerprint++ },
		"qosfp":  func(v *ValueTable) { v.QoSFingerprint++ },
		"vr":     func(v *ValueTable) { v.VR[3] += 1e-9 },
		"vd":     func(v *ValueTable) { v.VD[0] -= 1e-9 },
		"visits": func(v *ValueTable) { v.Visits[5]++ },
	}
	for name, mutate := range mutations {
		vt := validTable(6)
		mutate(vt)
		if vt.Fingerprint() == base {
			t.Errorf("%s change did not alter the fingerprint", name)
		}
	}
}

func TestApplyPrior(t *testing.T) {
	ag := NewAgent(5, 0.8)
	vt := validTable(5)
	if err := ag.ApplyPrior(vt); err != nil {
		t.Fatal(err)
	}
	for i := range vt.VR {
		if ag.VR[i] != vt.VR[i] || ag.VD[i] != vt.VD[i] || ag.Visits(i) != vt.Visits[i] {
			t.Fatalf("state %d not seeded from the table", i)
		}
	}
	// Mutating the table afterwards must not reach the agent.
	vt.VR[0] = 1234
	if ag.VR[0] == 1234 {
		t.Error("ApplyPrior aliased the table's slices")
	}
	if err := NewAgent(4, 0.8).ApplyPrior(validTable(5)); err == nil {
		t.Error("accepted a size mismatch")
	}
	if err := NewAgent(5, 0.9).ApplyPrior(validTable(5)); err == nil {
		t.Error("accepted a gamma mismatch")
	}
	bad := validTable(5)
	bad.Visits[0] = -3
	if err := NewAgent(5, 0.8).ApplyPrior(bad); err == nil {
		t.Error("accepted an invalid table")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	f := getFixture(t)
	ag := NewAgent(f.base.Len(), 0.7)
	if _, err := Simulate(agentParams(t, 0.5, 77, ag)); err != nil {
		t.Fatal(err)
	}
	snap := ag.Snapshot()
	if snap.Gamma != ag.Gamma || snap.Len() != f.base.Len() {
		t.Fatal("snapshot lost shape")
	}
	clone := NewAgent(f.base.Len(), 0.7)
	if err := clone.ApplyPrior(snap); err != nil {
		t.Fatal(err)
	}
	for i := range ag.VR {
		if clone.VR[i] != ag.VR[i] || clone.VD[i] != ag.VD[i] || clone.Visits(i) != ag.Visits(i) {
			t.Fatalf("state %d lost in snapshot round trip", i)
		}
	}
	// Snapshot copies: later learning must not mutate the snapshot.
	before := snap.VR[0]
	ag.step(0, -100, 0, 1)
	ag.flush()
	if snap.VR[0] != before {
		t.Error("snapshot aliased the agent's slices")
	}
}

func TestObserveMatchesStep(t *testing.T) {
	// Observe/Flush is the exported replay surface the cohort
	// aggregator drives; it must reproduce the internal step/flush
	// path bit-for-bit.
	a, b := NewAgent(4, 0.6), NewAgent(4, 0.6)
	seq := []struct {
		s      int
		rR, rD float64
		cycle  float64
	}{{0, -1, 0, 10}, {1, -2, 5, 500}, {2, -3, 1, 1100}, {0, -1, 0, 2100}}
	for _, e := range seq {
		a.step(e.s, e.rR, e.rD, e.cycle)
		if err := b.Observe(e.s, e.rR, e.rD, e.cycle); err != nil {
			t.Fatal(err)
		}
	}
	a.flush()
	b.Flush()
	if a.Episodes != b.Episodes {
		t.Fatalf("episodes %d vs %d", a.Episodes, b.Episodes)
	}
	for i := range a.VR {
		if a.VR[i] != b.VR[i] || a.VD[i] != b.VD[i] || a.Visits(i) != b.Visits(i) {
			t.Fatalf("state %d diverged between step and Observe", i)
		}
	}
	if err := b.Observe(4, 0, 0, 0); err == nil {
		t.Error("accepted out-of-range state")
	}
	if err := b.Observe(-1, 0, 0, 0); err == nil {
		t.Error("accepted negative state")
	}
}

func TestGammaZeroPriorPreservesURADecisions(t *testing.T) {
	// The inherited-prior counterpart of TestGammaZeroAgentSubsumesURA:
	// at gamma=0 the scorer ignores value terms entirely, so seeding an
	// agent with an arbitrary cohort prior must leave the decision
	// stream byte-identical to plain uRA. This is the identity the
	// cohort-soak CI job pins fleet-wide.
	plain, err := Simulate(baseParams(t, 0.6, 21))
	if err != nil {
		t.Fatal(err)
	}
	f := getFixture(t)
	ag := NewAgent(f.base.Len(), 0)
	prior := validTable(f.base.Len())
	prior.Gamma = 0
	if err := ag.ApplyPrior(prior); err != nil {
		t.Fatal(err)
	}
	seeded, err := Simulate(agentParams(t, 0.6, 21, ag))
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalDRC != seeded.TotalDRC || plain.AvgEnergyMJ != seeded.AvgEnergyMJ ||
		plain.Reconfigs != seeded.Reconfigs {
		t.Errorf("gamma=0 with injected prior differs from uRA: %+v vs %+v", seeded, plain)
	}
}

func TestManagerApplyValuePrior(t *testing.T) {
	p, spec := managerParams(t)

	// No agent: uRA manager reports "not applied", no error.
	m, err := NewManager(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	vt := validTable(p.DB.Len())
	if applied, err := m.ApplyValuePrior(vt); applied || err != nil {
		t.Fatalf("uRA manager: applied=%v err=%v, want false,nil", applied, err)
	}

	// Gamma mismatch: expected in mixed fleets, also "not applied".
	p.Agent = NewAgent(p.DB.Len(), 0.5)
	m, err = NewManager(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if applied, err := m.ApplyValuePrior(vt); applied || err != nil {
		t.Fatalf("gamma mismatch: applied=%v err=%v, want false,nil", applied, err)
	}

	// Matching gamma: values land in the live agent.
	vt.Gamma = 0.5
	applied, err := m.ApplyValuePrior(vt)
	if err != nil || !applied {
		t.Fatalf("applied=%v err=%v, want true,nil", applied, err)
	}
	for i := range vt.VR {
		if p.Agent.VR[i] != vt.VR[i] || p.Agent.VD[i] != vt.VD[i] {
			t.Fatalf("state %d prior not applied through the manager", i)
		}
	}

	// A broken table is a real error even with a matching agent.
	bad := validTable(p.DB.Len())
	bad.Gamma = 0.5
	bad.Visits[0] = -1
	if applied, err := m.ApplyValuePrior(bad); applied || err == nil {
		t.Fatal("invalid table should fail loudly")
	}
}
