package runtime

// Observability contract of the decide path. The runtime layer is
// deterministic — it never reads the wall clock (see the detrand
// analyzer) — so stage timing is delegated to a caller-supplied
// StageRecorder whose clock lives outside this package; obs.Trace is
// the production implementation. A nil recorder costs nothing, which
// keeps the simulator and the Decide microbenchmark on the exact
// pre-observability hot path.

import "clrdse/internal/obs"

// Decide-path stage names, re-exported from obs so callers and the
// runtime agree on span vocabulary.
const (
	// StageFilter is the feasibility filter over the stored database.
	StageFilter = obs.StageFilter
	// StageScore is the uRA/AuRA (or hypervolume) scoring pass.
	StageScore = obs.StageScore
	// StageSwitch is building the imperative reconfiguration plan.
	StageSwitch = obs.StageSwitch
	// StageAgent is the AuRA agent's online value update.
	StageAgent = obs.StageAgent
)

// StageRecorder times the decide path's stages: Stage opens a span
// and returns the closure that closes it. Implementations must be
// cheap — the recorder runs under the manager's lock. obs.Trace
// satisfies the contract.
type StageRecorder interface {
	Stage(name string) func()
}

// startStage opens a span on rec, tolerating a nil recorder.
func startStage(rec StageRecorder, name string) func() {
	if rec == nil {
		return func() {}
	}
	return rec.Stage(name)
}

// DecisionDetail explains how a decision was produced — the journal's
// raw material. It is observational only: two runs that decide
// identically report identical details.
type DecisionDetail struct {
	// Candidates is how many stored points survived the feasibility
	// filter and were scored (1 on the trigger-skip fast path: the
	// current point satisfied the spec and no re-optimisation ran).
	Candidates int
	// Infeasible is how many stored points the filter rejected.
	Infeasible int
	// Score is the chosen point's selection score: RET for the RET
	// policy, swept QoS-plane area for hypervolume, 0 when no scoring
	// ran (trigger skip or unsatisfiable spec).
	Score float64
	// TriggerSkipped reports the on-violation fast path: the current
	// configuration already satisfied the spec.
	TriggerSkipped bool
}
