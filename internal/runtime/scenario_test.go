package runtime

import (
	"math"
	"testing"
)

// tightQoS returns a near-deterministic spec model around the given
// bounds.
func tightQoS(sMax, fMin float64) QoSModel {
	return QoSModel{
		MeanS: sMax, StdS: sMax / 100, MeanF: fMin, StdF: 0.0005,
		LoS: sMax * 0.9, HiS: sMax * 1.1, LoF: fMin - 0.002, HiF: fMin + 0.002,
	}
}

// orbitScenario builds a two-regime loop whose demands are derived
// from the fixture's database envelope.
func orbitScenario(t *testing.T) (Scenario, Params) {
	f := getFixture(t)
	minF, maxF := 1.0, 0.0
	maxS := 0.0
	for _, p := range f.base.Points {
		minF = math.Min(minF, p.Reliability)
		maxF = math.Max(maxF, p.Reliability)
		maxS = math.Max(maxS, p.MakespanMs)
	}
	sc := Scenario{
		Repeat: true,
		Regimes: []Regime{
			{Name: "relaxed", DurationCycles: 5000, QoS: tightQoS(maxS, minF), HarvestMJPerCycle: 2000},
			{Name: "strict", DurationCycles: 5000, QoS: tightQoS(maxS, maxF*0.9995), HarvestMJPerCycle: 0},
		},
	}
	p := Params{
		DB:     f.base,
		Space:  f.problem.Space,
		PRC:    0.5,
		Cycles: 60_000,
		Seed:   1,
	}
	return sc, p
}

func TestScenarioBasics(t *testing.T) {
	sc, p := orbitScenario(t)
	m, err := SimulateScenario(ScenarioParams{Params: p, Scenario: sc})
	if err != nil {
		t.Fatal(err)
	}
	if m.Events == 0 || m.AvgEnergyMJ <= 0 {
		t.Fatalf("degenerate metrics: %+v", m.Metrics)
	}
	if len(m.PerRegime) != 2 {
		t.Fatalf("per-regime entries = %d, want 2", len(m.PerRegime))
	}
	totalCycles, totalEvents := 0.0, 0
	for _, rm := range m.PerRegime {
		totalCycles += rm.Cycles
		totalEvents += rm.Events
	}
	if math.Abs(totalCycles-p.Cycles) > 1e-6 {
		t.Errorf("regime cycles sum %v != total %v", totalCycles, p.Cycles)
	}
	if totalEvents != m.Events {
		t.Errorf("regime events sum %d != total %d", totalEvents, m.Events)
	}
	// Both regimes should see roughly equal time in a 50/50 loop.
	if r := m.PerRegime[0].Cycles / m.PerRegime[1].Cycles; r < 0.9 || r > 1.1 {
		t.Errorf("regime time split %v, want ~1.0", r)
	}
	// No battery: SoC fields stay at their neutral values.
	if m.MinSoC != 1 || m.FinalSoC != 1 || m.LowPowerEvents != 0 {
		t.Errorf("battery fields active without battery: %+v", m)
	}
}

func TestScenarioRegimesDriveSelection(t *testing.T) {
	sc, p := orbitScenario(t)
	m, err := SimulateScenario(ScenarioParams{Params: p, Scenario: sc})
	if err != nil {
		t.Fatal(err)
	}
	relaxed, strict := m.PerRegime[0], m.PerRegime[1]
	// The strict regime demands near-maximum reliability, which costs
	// more energy per cycle than the relaxed regime allows saving.
	if strict.EnergyMJ/strict.Cycles <= relaxed.EnergyMJ/relaxed.Cycles {
		t.Errorf("strict regime energy rate %.3f should exceed relaxed %.3f",
			strict.EnergyMJ/strict.Cycles, relaxed.EnergyMJ/relaxed.Cycles)
	}
}

func TestScenarioDeterministic(t *testing.T) {
	sc, p := orbitScenario(t)
	a, err := SimulateScenario(ScenarioParams{Params: p, Scenario: sc})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateScenario(ScenarioParams{Params: p, Scenario: sc})
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.TotalDRC != b.TotalDRC || a.AvgEnergyMJ != b.AvgEnergyMJ {
		t.Error("same seed produced different scenario runs")
	}
}

func TestScenarioNonRepeatingTailRegime(t *testing.T) {
	sc, p := orbitScenario(t)
	sc.Repeat = false
	sc.Regimes[0].DurationCycles = 1000
	sc.Regimes[1].DurationCycles = 1000
	// Total 60k cycles: the final regime persists for the tail 58k.
	m, err := SimulateScenario(ScenarioParams{Params: p, Scenario: sc})
	if err != nil {
		t.Fatal(err)
	}
	if m.PerRegime[1].Cycles < 50_000 {
		t.Errorf("tail regime cycles = %v, want ~59000", m.PerRegime[1].Cycles)
	}
}

func TestScenarioBatteryLowPowerMode(t *testing.T) {
	sc, p := orbitScenario(t)
	// Find the database's energy band to size a battery that must sag.
	minJ, maxJ := math.Inf(1), 0.0
	for _, pt := range p.DB.Points {
		minJ = math.Min(minJ, pt.EnergyMJ)
		maxJ = math.Max(maxJ, pt.EnergyMJ)
	}
	// Harvest covers the cheapest point only; the strict regime's
	// expensive points drain the battery.
	sc.Regimes[0].HarvestMJPerCycle = minJ * 1.2
	sc.Regimes[1].HarvestMJPerCycle = minJ * 0.8
	bat := &Battery{CapacityMJ: maxJ * 2000, RelaxF: 0.05}
	m, err := SimulateScenario(ScenarioParams{Params: p, Scenario: sc, Battery: bat})
	if err != nil {
		t.Fatal(err)
	}
	if m.MinSoC >= 1 {
		t.Error("battery never discharged")
	}
	if m.LowPowerEvents == 0 {
		t.Error("low-power mode never engaged despite under-provisioned harvest")
	}
	// Low-power mode conserves energy: with battery coupling the
	// average energy must not exceed the uncoupled run's.
	un, err := SimulateScenario(ScenarioParams{Params: p, Scenario: sc})
	if err != nil {
		t.Fatal(err)
	}
	if m.AvgEnergyMJ > un.AvgEnergyMJ {
		t.Errorf("battery-coupled energy %.2f > uncoupled %.2f", m.AvgEnergyMJ, un.AvgEnergyMJ)
	}
	if m.FinalSoC < 0 || m.FinalSoC > 1 || m.MinSoC < 0 {
		t.Errorf("SoC out of range: min=%v final=%v", m.MinSoC, m.FinalSoC)
	}
}

func TestScenarioBatteryAmpleHarvestNeverLowPower(t *testing.T) {
	sc, p := orbitScenario(t)
	maxJ := 0.0
	for _, pt := range p.DB.Points {
		maxJ = math.Max(maxJ, pt.EnergyMJ)
	}
	for i := range sc.Regimes {
		sc.Regimes[i].HarvestMJPerCycle = maxJ * 2
	}
	bat := &Battery{CapacityMJ: maxJ * 1000}
	m, err := SimulateScenario(ScenarioParams{Params: p, Scenario: sc, Battery: bat})
	if err != nil {
		t.Fatal(err)
	}
	if m.LowPowerEvents != 0 {
		t.Errorf("low-power engaged %d times despite surplus harvest", m.LowPowerEvents)
	}
	if m.FinalSoC < 0.99 {
		t.Errorf("final SoC = %v, want ~1 with surplus harvest", m.FinalSoC)
	}
	if m.DepletedCycles != 0 {
		t.Errorf("depleted cycles = %v with surplus harvest", m.DepletedCycles)
	}
}

func TestScenarioValidation(t *testing.T) {
	sc, p := orbitScenario(t)
	if _, err := SimulateScenario(ScenarioParams{Params: p}); err == nil {
		t.Error("accepted empty scenario")
	}
	bad := sc
	bad.Regimes = append([]Regime(nil), sc.Regimes...)
	bad.Regimes[0].DurationCycles = 0
	if _, err := SimulateScenario(ScenarioParams{Params: p, Scenario: bad}); err == nil {
		t.Error("accepted zero-duration regime")
	}
	bad = sc
	bad.Regimes = append([]Regime(nil), sc.Regimes...)
	bad.Regimes[1].HarvestMJPerCycle = -1
	if _, err := SimulateScenario(ScenarioParams{Params: p, Scenario: bad}); err == nil {
		t.Error("accepted negative harvest")
	}
	for _, b := range []*Battery{
		{CapacityMJ: 0},
		{CapacityMJ: 10, InitialMJ: 20},
		{CapacityMJ: 10, LowWatermark: 0.8, HighWatermark: 0.5},
		{CapacityMJ: 10, RelaxF: 1.5},
	} {
		if _, err := SimulateScenario(ScenarioParams{Params: p, Scenario: sc, Battery: b}); err == nil {
			t.Errorf("accepted bad battery %+v", b)
		}
	}
}

func TestRegimeAtMapping(t *testing.T) {
	sc := Scenario{
		Repeat: true,
		Regimes: []Regime{
			{Name: "a", DurationCycles: 100},
			{Name: "b", DurationCycles: 50},
		},
	}
	cases := []struct {
		t    float64
		want string
	}{
		{0, "a"}, {99, "a"}, {100, "b"}, {149, "b"}, {150, "a"}, {250, "b"}, {325, "a"},
	}
	for _, tc := range cases {
		if got := sc.regimeAt(tc.t, 1000).Name; got != tc.want {
			t.Errorf("regimeAt(%v) = %s, want %s", tc.t, got, tc.want)
		}
	}
	sc.Repeat = false
	if got := sc.regimeAt(500, 1000).Name; got != "b" {
		t.Errorf("non-repeat tail regime = %s, want b", got)
	}
}
