package runtime

// Scenario-driven simulation: the paper's introductory example — a
// satellite whose acceptable error rate varies with the terrain under
// surveillance and whose battery level, a function of sunlight
// exposure and prior processing, forces the system to conserve energy
// at the cost of higher application error rate to keep processing
// perpetual. This file turns that story into a library feature:
//
//   - a Scenario scripts a timeline of operating regimes, each with
//     its own QoS-variation model and energy-harvest rate;
//   - an optional Battery couples consumption to the QoS process: when
//     the state of charge falls below the low watermark the manager
//     enters a low-power mode — it relaxes the reliability requirement
//     by the configured margin and switches to the most energy-frugal
//     feasible point — until the charge recovers past the high
//     watermark.
//
// The discrete-event mechanics (exponential inter-arrival, uRA/AuRA
// selection, dRC accounting) are identical to Simulate.

import (
	"fmt"
	"math"

	"clrdse/internal/rng"
)

// Regime is one phase of a scripted scenario.
type Regime struct {
	// Name labels the regime in per-regime metrics.
	Name string
	// DurationCycles is the phase length in application execution
	// cycles.
	DurationCycles float64
	// QoS is the specification process in force during the phase.
	QoS QoSModel
	// HarvestMJPerCycle is the energy income while in this phase
	// (solar panels in sunlight, ~0 in eclipse). Ignored without a
	// battery.
	HarvestMJPerCycle float64
}

// Scenario is a timeline of regimes, optionally repeating.
type Scenario struct {
	Regimes []Regime
	// Repeat loops the timeline (an orbit); otherwise the last regime
	// persists to the end of the simulation.
	Repeat bool
}

// Validate checks the scenario.
func (s *Scenario) Validate() error {
	if len(s.Regimes) == 0 {
		return fmt.Errorf("runtime: scenario without regimes")
	}
	for i, r := range s.Regimes {
		if r.DurationCycles <= 0 {
			return fmt.Errorf("runtime: regime %d (%q) has non-positive duration", i, r.Name)
		}
		if r.HarvestMJPerCycle < 0 {
			return fmt.Errorf("runtime: regime %d (%q) has negative harvest", i, r.Name)
		}
	}
	return nil
}

// regimeAt maps a cycle time to the regime in force.
func (s *Scenario) regimeAt(t, total float64) *Regime {
	period := 0.0
	for i := range s.Regimes {
		period += s.Regimes[i].DurationCycles
	}
	x := t
	if s.Repeat {
		x = math.Mod(t, period)
	} else if x >= period {
		return &s.Regimes[len(s.Regimes)-1]
	}
	for i := range s.Regimes {
		if x < s.Regimes[i].DurationCycles {
			return &s.Regimes[i]
		}
		x -= s.Regimes[i].DurationCycles
	}
	_ = total
	return &s.Regimes[len(s.Regimes)-1]
}

// Battery models the energy store coupling consumption to policy.
type Battery struct {
	// CapacityMJ is the full charge (in mJ-per-cycle units times
	// cycles, matching J_app integration).
	CapacityMJ float64
	// InitialMJ is the boot charge (0 selects full).
	InitialMJ float64
	// LowWatermark and HighWatermark are state-of-charge fractions
	// bounding the low-power-mode hysteresis (0 selects 0.2/0.5).
	LowWatermark, HighWatermark float64
	// RelaxF is how much the reliability lower bound is loosened in
	// low-power mode (absolute, 0 selects 0.05): the paper's
	// "conserve energy at the cost of higher application error rate".
	RelaxF float64
}

func (b *Battery) withDefaults() Battery {
	q := *b
	if q.InitialMJ == 0 {
		q.InitialMJ = q.CapacityMJ
	}
	if q.LowWatermark == 0 {
		q.LowWatermark = 0.2
	}
	if q.HighWatermark == 0 {
		q.HighWatermark = 0.5
	}
	if q.RelaxF == 0 {
		q.RelaxF = 0.05
	}
	return q
}

func (b *Battery) validate() error {
	switch {
	case b.CapacityMJ <= 0:
		return fmt.Errorf("runtime: battery capacity must be positive")
	case b.InitialMJ < 0 || b.InitialMJ > b.CapacityMJ:
		return fmt.Errorf("runtime: initial charge outside [0, capacity]")
	case b.LowWatermark <= 0 || b.HighWatermark <= b.LowWatermark || b.HighWatermark > 1:
		return fmt.Errorf("runtime: watermarks must satisfy 0 < low < high <= 1")
	case b.RelaxF < 0 || b.RelaxF >= 1:
		return fmt.Errorf("runtime: RelaxF outside [0,1)")
	}
	return nil
}

// RegimeMetrics aggregates one regime's share of a scenario run.
type RegimeMetrics struct {
	Name            string
	Cycles          float64
	Events          int
	Reconfigs       int
	TotalDRC        float64
	EnergyMJ        float64 // cycle-integrated consumption
	ViolationEvents int
}

// ScenarioMetrics extends the flat metrics with scenario-specific
// accounting.
type ScenarioMetrics struct {
	Metrics
	// PerRegime holds one entry per scripted regime (merged across
	// repeats), in timeline order.
	PerRegime []RegimeMetrics
	// MinSoC and FinalSoC describe the battery trajectory (fractions
	// of capacity); both are 1 when no battery is configured.
	MinSoC, FinalSoC float64
	// DepletedCycles counts cycles spent at exactly zero charge.
	DepletedCycles float64
	// LowPowerEvents counts events handled in low-power mode.
	LowPowerEvents int
}

// ScenarioParams configures a scripted run. QoS inside Params is
// ignored; the scenario's regimes provide the specification process.
type ScenarioParams struct {
	// Params carries the database, space, pRC, trigger, policy, agent
	// and seed, exactly as for Simulate.
	Params
	// Scenario is the regime timeline.
	Scenario Scenario
	// Battery optionally couples energy to policy.
	Battery *Battery
}

// SimulateScenario runs the scripted discrete-event simulation.
func SimulateScenario(p ScenarioParams) (*ScenarioMetrics, error) {
	if err := p.Params.validate(); err != nil {
		return nil, err
	}
	if err := p.Scenario.Validate(); err != nil {
		return nil, err
	}
	var bat Battery
	if p.Battery != nil {
		bat = p.Battery.withDefaults()
		if err := bat.validate(); err != nil {
			return nil, err
		}
	}
	pp := p.Params.withDefaults()
	pp.QoS = p.Scenario.Regimes[0].QoS // placeholder; regimes supply specs

	r := rng.New(pp.Seed)
	eventRNG := r.Split(1)
	specRNG := r.Split(2)

	sim := newSimState(&pp)
	if pp.Agent != nil {
		pp.Agent.resetClock()
	}
	met := &ScenarioMetrics{MinSoC: 1, FinalSoC: 1}
	regimeIdx := map[string]int{}
	for _, reg := range p.Scenario.Regimes {
		if _, ok := regimeIdx[reg.Name]; !ok {
			regimeIdx[reg.Name] = len(met.PerRegime)
			met.PerRegime = append(met.PerRegime, RegimeMetrics{Name: reg.Name})
		}
	}
	// Each regime keeps its own AR(1) stream state so re-entering a
	// regime resumes its process.
	streams := map[string]*SpecStream{}
	streamFor := func(reg *Regime) *SpecStream {
		if st, ok := streams[reg.Name]; ok {
			return st
		}
		st := reg.QoS.Stream()
		streams[reg.Name] = st
		return st
	}

	soc := bat.InitialMJ
	lowPower := false

	reg := p.Scenario.regimeAt(0, pp.Cycles)
	spec := streamFor(reg).Next(specRNG)
	cur := sim.bestBoot(spec)

	t := 0.0
	for {
		dt := eventRNG.Exponential(pp.MeanInterArrivalCycles)
		end := false
		if t+dt >= pp.Cycles {
			dt = pp.Cycles - t
			end = true
		}
		// Integrate consumption and harvest over [t, t+dt) in the
		// current regime. Regime boundaries within the interval are
		// resolved at sub-interval granularity.
		remaining := dt
		for remaining > 0 {
			rNow := p.Scenario.regimeAt(t, pp.Cycles)
			step := remaining
			// Advance at most to the end of the current regime slice.
			if left := regimeLeft(&p.Scenario, t); left > 0 && left < step {
				step = left
			}
			consume := step * pp.DB.Points[cur].EnergyMJ
			rm := &met.PerRegime[regimeIdx[rNow.Name]]
			rm.Cycles += step
			rm.EnergyMJ += consume
			if p.Battery != nil {
				soc += step*rNow.HarvestMJPerCycle - consume
				if soc <= 0 {
					// Approximate the unpowered tail of the interval
					// by the deficit's share of the net drain.
					met.DepletedCycles += math.Min(step, step*(-soc)/math.Max(consume, 1e-12))
					soc = 0
				}
				if soc > bat.CapacityMJ {
					soc = bat.CapacityMJ
				}
				frac := soc / bat.CapacityMJ
				if frac < met.MinSoC {
					met.MinSoC = frac
				}
			}
			t += step
			remaining -= step
		}
		if end {
			break
		}

		reg = p.Scenario.regimeAt(t, pp.Cycles)
		spec = streamFor(reg).Next(specRNG)

		// Battery hysteresis: low-power mode relaxes the reliability
		// bound and pins selection to minimum energy.
		if p.Battery != nil {
			frac := soc / bat.CapacityMJ
			if lowPower && frac >= bat.HighWatermark {
				lowPower = false
			} else if !lowPower && frac < bat.LowWatermark {
				lowPower = true
			}
		}
		effSpec := spec
		var next int
		var violated bool
		if lowPower {
			effSpec.FMin = math.Max(0, spec.FMin-bat.RelaxF)
			next, violated = sim.cheapestFeasible(effSpec)
			met.LowPowerEvents++
		} else {
			next, _, violated = sim.decide(cur, effSpec)
		}
		if next != cur {
			cost := sim.fullDRC(cur, next)
			met.Reconfigs++
			met.TotalDRC += cost.Total()
			met.TotalMigrations += cost.MigratedTasks
			if cost.Total() > met.MaxDRC {
				met.MaxDRC = cost.Total()
			}
			rm := &met.PerRegime[regimeIdx[reg.Name]]
			rm.Reconfigs++
			rm.TotalDRC += cost.Total()
			cur = next
			if pp.Agent != nil {
				pp.Agent.step(cur, -pp.DB.Points[cur].EnergyMJ, cost.Total(), t)
			}
		} else if pp.Agent != nil {
			pp.Agent.step(cur, -pp.DB.Points[cur].EnergyMJ, 0, t)
		}
		if violated {
			met.ViolationEvents++
			met.PerRegime[regimeIdx[reg.Name]].ViolationEvents++
		}
		met.Events++
		met.PerRegime[regimeIdx[reg.Name]].Events++
	}
	if pp.Agent != nil {
		pp.Agent.flush()
	}

	total := 0.0
	for i := range met.PerRegime {
		total += met.PerRegime[i].EnergyMJ
	}
	met.AvgEnergyMJ = total / pp.Cycles
	if met.Events > 0 {
		met.AvgDRC = met.TotalDRC / float64(met.Events)
	}
	if p.Battery != nil {
		met.FinalSoC = soc / bat.CapacityMJ
	}
	met.FeasibilityChecks = sim.checks
	return met, nil
}

// regimeLeft returns how many cycles remain in the regime slice active
// at time t (Inf when the final regime persists).
func regimeLeft(s *Scenario, t float64) float64 {
	period := 0.0
	for i := range s.Regimes {
		period += s.Regimes[i].DurationCycles
	}
	x := t
	if s.Repeat {
		x = math.Mod(t, period)
	} else if x >= period {
		return math.Inf(1)
	}
	for i := range s.Regimes {
		if x < s.Regimes[i].DurationCycles {
			return s.Regimes[i].DurationCycles - x
		}
		x -= s.Regimes[i].DurationCycles
	}
	return math.Inf(1)
}

// cheapestFeasible returns the minimum-energy point satisfying the
// spec, or the least-violating point (flagged) when none does.
func (s *simState) cheapestFeasible(spec QoSSpec) (int, bool) {
	best, bestJ := -1, math.Inf(1)
	for _, i := range s.feasible(spec) {
		pt := s.p.DB.Points[i]
		if pt.EnergyMJ < bestJ || (pt.EnergyMJ == bestJ && i < best) {
			best, bestJ = i, pt.EnergyMJ
		}
	}
	if best >= 0 {
		return best, false
	}
	return s.leastViolating(spec), true
}
