// Package report assembles experiment outputs into a single Markdown
// document, so one `cmd/experiments -report` invocation leaves a
// reviewable artefact (REPORT.md + SVGs) instead of a directory of
// loose text files.
package report

import (
	"fmt"
	"strings"
)

// Section is one experiment's contribution to the report.
type Section struct {
	// ID is the experiment identifier ("table4", "fig6", ...).
	ID string
	// Title is the human heading.
	Title string
	// Body is the experiment's rendered text (verbatim, fenced).
	Body string
	// SVGs are chart file names (relative to the report) to embed.
	SVGs []string
}

// Markdown renders the full report.
func Markdown(title, scaleName string, sections []Section) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n\n", title)
	fmt.Fprintf(&b, "Scale: `%s`. Regenerate with `go run ./cmd/experiments -run all -scale %s -out <dir> -svg -report`.\n\n", scaleName, scaleName)

	b.WriteString("## Contents\n\n")
	for _, s := range sections {
		fmt.Fprintf(&b, "- [%s](#%s)\n", s.Title, anchor(s.Title))
	}
	b.WriteString("\n")

	for _, s := range sections {
		fmt.Fprintf(&b, "## %s\n\n", s.Title)
		for _, svg := range s.SVGs {
			fmt.Fprintf(&b, "![%s](%s)\n\n", s.ID, svg)
		}
		b.WriteString("```text\n")
		b.WriteString(strings.TrimRight(s.Body, "\n"))
		b.WriteString("\n```\n\n")
	}
	return b.String()
}

// anchor converts a heading into a GitHub-style anchor.
func anchor(title string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// Titles maps experiment IDs to report headings.
var Titles = map[string]string{
	"fig1":        "Figure 1 — Motivation for dynamic CLR",
	"table4":      "Table 4 — Task-migration cost, ReD vs BaseD (CSP)",
	"fig5":        "Figure 5 — Pareto front and ReD additions",
	"fig6":        "Figure 6 — Reconfiguration-cost trace",
	"table5":      "Table 5 — Cost of reconfiguration minimisation",
	"fig7":        "Figure 7 — pRC trade-off sweep",
	"table6":      "Table 6 — ReD vs BaseD at matched pRC",
	"table7":      "Table 7 — AuRA vs uRA",
	"validate":    "Model validation — fault injection vs analytics",
	"scalability": "DSE scalability",
	"sensitivity": "SEU-rate sensitivity",
	"storage":     "Storage budget",
	"convergence": "Stage-1 MOEA convergence",
	"cohortab":    "Cohort A/B — uRA vs per-device AuRA vs cohort AuRA",
}
