package report

import (
	"strings"
	"testing"
)

func TestMarkdownStructure(t *testing.T) {
	out := Markdown("Repro Report", "full", []Section{
		{ID: "table4", Title: "Table 4 — Stuff", Body: "row1\nrow2\n"},
		{ID: "fig6", Title: "Figure 6", Body: "trace", SVGs: []string{"fig6.svg"}},
	})
	for _, want := range []string{
		"# Repro Report",
		"Scale: `full`",
		"## Contents",
		"- [Table 4 — Stuff](#table-4--stuff)",
		"## Table 4 — Stuff",
		"```text\nrow1\nrow2\n```",
		"![fig6](fig6.svg)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n---\n%s", want, out)
		}
	}
}

func TestAnchor(t *testing.T) {
	cases := map[string]string{
		"Table 4 — Stuff":  "table-4--stuff",
		"Figure 6":         "figure-6",
		"ALL CAPS & More!": "all-caps--more",
	}
	for in, want := range cases {
		if got := anchor(in); got != want {
			t.Errorf("anchor(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTitlesCoverAllExperiments(t *testing.T) {
	for _, id := range []string{"fig1", "table4", "fig5", "fig6", "table5", "fig7", "table6", "table7", "validate", "scalability", "sensitivity", "storage", "convergence", "cohortab"} {
		if Titles[id] == "" {
			t.Errorf("no title for experiment %q", id)
		}
	}
}
