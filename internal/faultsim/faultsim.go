// Package faultsim is a Monte-Carlo fault-injection simulator that
// executes a mapped application under sampled single-event upsets and
// measures the empirical behaviour of every cross-layer reliability
// mechanism — raw strikes, hardware masking, information-redundancy
// correction, temporal detection and re-execution — event by event.
//
// Its purpose is validation: the design-time exploration and the
// run-time manager both trust the closed-form task metrics of
// internal/relmodel (Table 2). The injector samples the *mechanisms*
// those formulas summarise and checks that the observed error rates,
// execution times and energies converge to the analytical values. The
// `cmd/experiments -run validate` harness and the package tests run
// this comparison automatically.
//
// The per-attempt fault process mirrors the analytical composition
// exactly, so agreement is a consistency check of the derivation (and
// of both implementations), not a tautology: the simulator samples
// Bernoulli outcomes per layer and accounts re-execution time
// explicitly, while the formulas sum the geometric series.
package faultsim

import (
	"fmt"
	"math"
	"sort"

	"clrdse/internal/mapping"
	"clrdse/internal/relmodel"
	"clrdse/internal/rng"
	"clrdse/internal/schedule"
)

// Params configures a fault-injection campaign.
type Params struct {
	// Space is the problem instance the mapping belongs to.
	Space *mapping.Space
	// Env is the fault/aging environment (zero selects
	// relmodel.DefaultEnv).
	Env relmodel.Env
	// Runs is the number of complete application executions to
	// simulate (0 selects 10000).
	Runs int
	// Seed drives the fault sampling.
	Seed int64
}

// TaskOutcome aggregates the injection statistics of one task.
type TaskOutcome struct {
	// Task is the task ID.
	Task int
	// Executions counts application runs (= samples).
	Executions int
	// Attempts counts execution attempts including re-executions.
	Attempts int
	// RawUpsets counts attempts struck by an un-masked upset.
	RawUpsets int
	// MaskedHW and CorrectedASW count upsets neutralised by the
	// hardware and information layers respectively.
	MaskedHW     int
	CorrectedASW int
	// Detected counts erroneous attempts caught by the temporal layer.
	Detected int
	// Errors counts runs that ended with an erroneous result.
	Errors int
	// TotalTimeMs accumulates execution time including re-execution.
	TotalTimeMs float64

	// EmpiricalErrProb and EmpiricalAvgExTMs are the measured
	// counterparts of the analytical Table 2 metrics.
	EmpiricalErrProb  float64
	EmpiricalAvgExTMs float64
	// Analytic holds the closed-form metrics for comparison.
	Analytic relmodel.TaskMetrics
}

// Result is the outcome of a campaign.
type Result struct {
	// Runs is the number of simulated application executions.
	Runs int
	// Tasks holds per-task statistics, indexed by task ID.
	Tasks []TaskOutcome
	// EmpiricalReliability is the criticality-weighted mean task
	// correctness (the measured F_app of Table 3).
	EmpiricalReliability float64
	// AnalyticReliability is the scheduler's closed-form F_app.
	AnalyticReliability float64
	// EmpiricalEnergyMJ and AnalyticEnergyMJ compare J_app.
	EmpiricalEnergyMJ float64
	AnalyticEnergyMJ  float64
	// EmpiricalMeanMakespanMs and P95MakespanMs describe the measured
	// makespan distribution: each run's sampled task durations
	// (including re-executions) are re-scheduled on the platform.
	// AnalyticMakespanMs is the closed-form S_app computed from
	// average execution times; by Jensen's inequality the empirical
	// mean sits at or above it — the gap quantifies how optimistic the
	// "average makespan" abstraction of Table 3 is.
	EmpiricalMeanMakespanMs float64
	P95MakespanMs           float64
	AnalyticMakespanMs      float64
}

// MaxTaskErrProbGap returns the largest absolute gap between the
// empirical and analytical per-task error probabilities.
func (r *Result) MaxTaskErrProbGap() float64 {
	worst := 0.0
	for _, t := range r.Tasks {
		worst = math.Max(worst, math.Abs(t.EmpiricalErrProb-t.Analytic.ErrProb))
	}
	return worst
}

// MaxTaskTimeGapFraction returns the largest relative gap between the
// empirical and analytical per-task average execution times.
func (r *Result) MaxTaskTimeGapFraction() float64 {
	worst := 0.0
	for _, t := range r.Tasks {
		worst = math.Max(worst, math.Abs(t.EmpiricalAvgExTMs-t.Analytic.AvgExTMs)/t.Analytic.AvgExTMs)
	}
	return worst
}

// Run executes the campaign for the given mapping.
func Run(m *mapping.Mapping, p Params) (*Result, error) {
	if p.Space == nil {
		return nil, fmt.Errorf("faultsim: nil Space")
	}
	if err := p.Space.Validate(m); err != nil {
		return nil, err
	}
	if (p.Env == relmodel.Env{}) {
		p.Env = relmodel.DefaultEnv()
	}
	if p.Runs == 0 {
		p.Runs = 10000
	}
	if p.Runs < 0 {
		return nil, fmt.Errorf("faultsim: negative Runs")
	}

	// Analytical reference: the scheduler already aggregates the
	// closed-form task metrics.
	ev := &schedule.Evaluator{Space: p.Space, Env: p.Env}
	sched, err := ev.Evaluate(m)
	if err != nil {
		return nil, err
	}

	g := p.Space.Graph
	cat := p.Space.Catalogue
	res := &Result{
		Runs:                p.Runs,
		Tasks:               make([]TaskOutcome, g.NumTasks()),
		AnalyticReliability: sched.Reliability,
		AnalyticEnergyMJ:    sched.EnergyMJ,
		AnalyticMakespanMs:  sched.MakespanMs,
	}
	r := rng.New(p.Seed)
	// Per-run task durations feed the makespan distribution.
	durations := make([][]float64, p.Runs)
	for run := range durations {
		durations[run] = make([]float64, g.NumTasks())
	}

	for t := range res.Tasks {
		out := &res.Tasks[t]
		out.Task = t
		out.Analytic = sched.Slots[t].Metrics

		gene := m.Genes[t]
		hw := &cat.HW[gene.CLR.HW]
		ssw := &cat.SSW[gene.CLR.SSW]
		asw := &cat.ASW[gene.CLR.ASW]
		metrics := out.Analytic
		taskRNG := r.Split(int64(t) + 1)

		for run := 0; run < p.Runs; run++ {
			out.Executions++
			timeMs := metrics.MinExTMs
			erroneous := false
			for attempt := 0; ; attempt++ {
				out.Attempts++
				if attempt > 0 {
					timeMs += metrics.MinExTMs * ssw.RestartFraction
				}
				errNow := false
				if taskRNG.Bool(metrics.RawErrProb) {
					out.RawUpsets++
					switch {
					case taskRNG.Bool(hw.Coverage):
						out.MaskedHW++ // spatial redundancy masks it
					case taskRNG.Bool(asw.Coverage):
						out.CorrectedASW++ // information redundancy corrects it
					default:
						errNow = true
					}
				}
				if !errNow {
					break // clean attempt: task done
				}
				// Temporal layer: detect and re-execute if budget left.
				if taskRNG.Bool(ssw.DetectCoverage) && attempt < ssw.Retries {
					out.Detected++
					continue
				}
				erroneous = true
				break
			}
			if erroneous {
				out.Errors++
			}
			out.TotalTimeMs += timeMs
			durations[run][t] = timeMs
		}

		out.EmpiricalErrProb = float64(out.Errors) / float64(out.Executions)
		out.EmpiricalAvgExTMs = out.TotalTimeMs / float64(out.Executions)
		res.EmpiricalReliability += g.Tasks[t].Criticality * (1 - out.EmpiricalErrProb)
		res.EmpiricalEnergyMJ += out.EmpiricalAvgExTMs * metrics.PowerW
	}

	// Makespan distribution: re-schedule every run's sampled durations.
	if p.Runs > 0 {
		spans := make([]float64, p.Runs)
		for run := 0; run < p.Runs; run++ {
			tl, err := ev.Timeline(m, durations[run])
			if err != nil {
				return nil, err
			}
			spans[run] = tl.MakespanMs
			res.EmpiricalMeanMakespanMs += tl.MakespanMs
		}
		res.EmpiricalMeanMakespanMs /= float64(p.Runs)
		sort.Float64s(spans)
		res.P95MakespanMs = spans[(len(spans)*95)/100]
	}
	return res, nil
}
