package faultsim

import (
	"math"
	"testing"

	"clrdse/internal/mapping"
	"clrdse/internal/platform"
	"clrdse/internal/relmodel"
	"clrdse/internal/rng"
	"clrdse/internal/schedule"
	"clrdse/internal/taskgraph"
)

// harshEnv raises the SEU rate so empirical error probabilities are
// large enough to compare against the analytics with modest run
// counts.
func harshEnv() relmodel.Env {
	e := relmodel.DefaultEnv()
	e.LambdaSEUPerMs *= 20
	return e
}

func testSpace(t *testing.T, n int) *mapping.Space {
	t.Helper()
	plat := platform.Default()
	g, err := taskgraph.Generate(taskgraph.GenParams{Seed: 91, NumTasks: n}, plat)
	if err != nil {
		t.Fatal(err)
	}
	return &mapping.Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()}
}

func TestInjectionMatchesAnalyticalModel(t *testing.T) {
	space := testSpace(t, 15)
	m := space.Random(rng.New(1))
	res, err := Run(m, Params{Space: space, Env: harshEnv(), Runs: 60000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Per-task error probabilities converge to the closed form.
	for _, task := range res.Tasks {
		p := task.Analytic.ErrProb
		// Binomial standard error; allow 5 sigma plus a small floor.
		tol := 5*math.Sqrt(p*(1-p)/float64(res.Runs)) + 1e-4
		if gap := math.Abs(task.EmpiricalErrProb - p); gap > tol {
			t.Errorf("task %d: empirical ErrProb %.5f vs analytic %.5f (gap %.5f > tol %.5f)",
				task.Task, task.EmpiricalErrProb, p, gap, tol)
		}
	}
	if res.MaxTaskTimeGapFraction() > 0.01 {
		t.Errorf("AvgExT mismatch: worst relative gap %.4f", res.MaxTaskTimeGapFraction())
	}
	if math.Abs(res.EmpiricalReliability-res.AnalyticReliability) > 0.002 {
		t.Errorf("F_app: empirical %.5f vs analytic %.5f", res.EmpiricalReliability, res.AnalyticReliability)
	}
	if math.Abs(res.EmpiricalEnergyMJ-res.AnalyticEnergyMJ)/res.AnalyticEnergyMJ > 0.01 {
		t.Errorf("J_app: empirical %.2f vs analytic %.2f", res.EmpiricalEnergyMJ, res.AnalyticEnergyMJ)
	}
}

func TestInjectionValidatesEveryLayerCombination(t *testing.T) {
	// One task, every CLR configuration: the mechanism sampling must
	// track the closed form across the whole catalogue.
	plat := platform.Default()
	cat := relmodel.DefaultCatalogue()
	g := &taskgraph.Graph{
		Name: "single",
		Tasks: []taskgraph.Task{{
			ID: 0, Name: "t", Criticality: 1,
			Impls: []taskgraph.Impl{{ID: 0, PEType: 1, BaseExTimeMs: 25, BasePowerW: 1, BinaryKB: 16, BitstreamID: -1}},
		}},
		PeriodMs: 1000,
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	space := &mapping.Space{Graph: g, Platform: plat, Catalogue: cat}
	env := harshEnv()
	for idx := 0; idx < cat.NumConfigs(); idx++ {
		cfg := relmodel.ConfigFromIndex(idx, cat)
		m := &mapping.Mapping{Genes: []mapping.Gene{{PE: 1, Impl: 0, CLR: cfg}}}
		res, err := Run(m, Params{Space: space, Env: env, Runs: 40000, Seed: int64(idx) + 10})
		if err != nil {
			t.Fatal(err)
		}
		task := res.Tasks[0]
		p := task.Analytic.ErrProb
		tol := 5*math.Sqrt(p*(1-p)/float64(res.Runs)) + 2e-4
		if gap := math.Abs(task.EmpiricalErrProb - p); gap > tol {
			t.Errorf("config %s: empirical %.5f vs analytic %.5f (gap %.5f)",
				cfg.Describe(cat), task.EmpiricalErrProb, p, gap)
		}
		if rel := math.Abs(task.EmpiricalAvgExTMs-task.Analytic.AvgExTMs) / task.Analytic.AvgExTMs; rel > 0.02 {
			t.Errorf("config %s: AvgExT empirical %.3f vs analytic %.3f",
				cfg.Describe(cat), task.EmpiricalAvgExTMs, task.Analytic.AvgExTMs)
		}
	}
}

func TestInjectionMechanismAccounting(t *testing.T) {
	space := testSpace(t, 10)
	m := space.Random(rng.New(3))
	// Put full protection on every task so all counters engage.
	for i := range m.Genes {
		m.Genes[i].CLR = relmodel.Config{HW: 2, SSW: 2, ASW: 3}
	}
	res, err := Run(m, Params{Space: space, Env: harshEnv(), Runs: 20000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range res.Tasks {
		if task.Executions != res.Runs {
			t.Fatalf("task %d executed %d times, want %d", task.Task, task.Executions, res.Runs)
		}
		if task.Attempts < task.Executions {
			t.Errorf("task %d: attempts %d < executions %d", task.Task, task.Attempts, task.Executions)
		}
		neutralised := task.MaskedHW + task.CorrectedASW
		if neutralised > task.RawUpsets {
			t.Errorf("task %d: neutralised %d > raw upsets %d", task.Task, neutralised, task.RawUpsets)
		}
		// Residual errors + re-executions cannot exceed surviving upsets.
		if task.Detected+task.Errors > task.RawUpsets {
			t.Errorf("task %d: detected %d + errors %d > raw %d",
				task.Task, task.Detected, task.Errors, task.RawUpsets)
		}
		// Re-execution time accounted: attempts beyond the first cost
		// RestartFraction each.
		if task.Attempts > task.Executions && task.EmpiricalAvgExTMs <= task.Analytic.MinExTMs {
			t.Errorf("task %d: retries happened but AvgExT %.4f <= MinExT %.4f",
				task.Task, task.EmpiricalAvgExTMs, task.Analytic.MinExTMs)
		}
	}
}

func TestInjectionDeterministic(t *testing.T) {
	space := testSpace(t, 8)
	m := space.Random(rng.New(5))
	p := Params{Space: space, Runs: 2000, Seed: 6}
	a, err := Run(m, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.EmpiricalReliability != b.EmpiricalReliability || a.EmpiricalEnergyMJ != b.EmpiricalEnergyMJ {
		t.Error("same seed produced different campaigns")
	}
}

func TestInjectionProtectionReducesEmpiricalErrors(t *testing.T) {
	space := testSpace(t, 10)
	env := harshEnv()
	unprot := space.Random(rng.New(7))
	prot := unprot.Clone()
	for i := range unprot.Genes {
		unprot.Genes[i].CLR = relmodel.Config{}
		prot.Genes[i].CLR = relmodel.Config{HW: 2, SSW: 2, ASW: 3}
	}
	a, err := Run(unprot, Params{Space: space, Env: env, Runs: 20000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(prot, Params{Space: space, Env: env, Runs: 20000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if b.EmpiricalReliability <= a.EmpiricalReliability {
		t.Errorf("full CLR empirical reliability %.5f <= unprotected %.5f",
			b.EmpiricalReliability, a.EmpiricalReliability)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	space := testSpace(t, 5)
	m := space.Random(rng.New(9))
	if _, err := Run(m, Params{}); err == nil {
		t.Error("accepted nil space")
	}
	if _, err := Run(m, Params{Space: space, Runs: -1}); err == nil {
		t.Error("accepted negative runs")
	}
	bad := m.Clone()
	bad.Genes[0].PE = 99
	if _, err := Run(bad, Params{Space: space}); err == nil {
		t.Error("accepted invalid mapping")
	}
}

func TestGapHelpers(t *testing.T) {
	r := &Result{Tasks: []TaskOutcome{
		{EmpiricalErrProb: 0.10, EmpiricalAvgExTMs: 11, Analytic: relmodel.TaskMetrics{ErrProb: 0.08, AvgExTMs: 10}},
		{EmpiricalErrProb: 0.01, EmpiricalAvgExTMs: 20, Analytic: relmodel.TaskMetrics{ErrProb: 0.02, AvgExTMs: 20}},
	}}
	if got := r.MaxTaskErrProbGap(); math.Abs(got-0.02) > 1e-12 {
		t.Errorf("MaxTaskErrProbGap = %v", got)
	}
	if got := r.MaxTaskTimeGapFraction(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MaxTaskTimeGapFraction = %v", got)
	}
}

// The scheduler's system-level metrics must agree with a fully
// independent accounting path: evaluating each slot by hand.
func TestScheduleCrossCheck(t *testing.T) {
	space := testSpace(t, 12)
	ev := &schedule.Evaluator{Space: space, Env: relmodel.DefaultEnv()}
	m := space.Random(rng.New(10))
	res, err := ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	energy := 0.0
	for _, s := range res.Slots {
		energy += s.Metrics.AvgExTMs * s.Metrics.PowerW
	}
	if math.Abs(energy-res.EnergyMJ) > 1e-9 {
		t.Errorf("energy cross-check failed: %v vs %v", energy, res.EnergyMJ)
	}
}

func TestMakespanDistribution(t *testing.T) {
	space := testSpace(t, 15)
	m := space.Random(rng.New(31))
	res, err := Run(m, Params{Space: space, Env: harshEnv(), Runs: 10000, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.AnalyticMakespanMs <= 0 {
		t.Fatal("no analytic makespan")
	}
	// Jensen: the mean of the sampled makespans sits at or above the
	// makespan of mean durations (within sampling noise).
	if res.EmpiricalMeanMakespanMs < res.AnalyticMakespanMs*0.999 {
		t.Errorf("empirical mean makespan %v below analytic %v",
			res.EmpiricalMeanMakespanMs, res.AnalyticMakespanMs)
	}
	// The abstraction stays tight at these rates: within a few percent.
	if res.EmpiricalMeanMakespanMs > res.AnalyticMakespanMs*1.10 {
		t.Errorf("empirical mean makespan %v far above analytic %v",
			res.EmpiricalMeanMakespanMs, res.AnalyticMakespanMs)
	}
	if res.P95MakespanMs < res.EmpiricalMeanMakespanMs {
		t.Errorf("p95 %v below mean %v", res.P95MakespanMs, res.EmpiricalMeanMakespanMs)
	}
}

func TestMakespanDistributionDegenerateWithoutRetries(t *testing.T) {
	// With no SSW protection there are no re-executions: every run's
	// durations equal MinExT and the makespan distribution collapses
	// onto a single value equal to the schedule of MinExT durations.
	space := testSpace(t, 10)
	m := space.Random(rng.New(33))
	for i := range m.Genes {
		m.Genes[i].CLR.SSW = 0
	}
	res, err := Run(m, Params{Space: space, Runs: 500, Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P95MakespanMs-res.EmpiricalMeanMakespanMs) > 1e-9 {
		t.Errorf("no-retry makespan should be deterministic: p95 %v vs mean %v",
			res.P95MakespanMs, res.EmpiricalMeanMakespanMs)
	}
	// And it matches the analytic S_app exactly (durations = AvgExT =
	// MinExT for every task).
	if math.Abs(res.EmpiricalMeanMakespanMs-res.AnalyticMakespanMs) > 1e-9 {
		t.Errorf("deterministic makespan %v != analytic %v",
			res.EmpiricalMeanMakespanMs, res.AnalyticMakespanMs)
	}
}
