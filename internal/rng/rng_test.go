package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	// Children with distinct labels from identically seeded parents
	// must be reproducible and mutually distinct.
	p1 := New(7)
	p2 := New(7)
	c1 := p1.Split(1)
	c2 := p2.Split(1)
	for i := 0; i < 100; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatalf("split children not reproducible at draw %d", i)
		}
	}
	d1 := New(7).Split(1)
	d2 := New(7).Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if d1.Float64() == d2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("children with different labels matched %d/100 draws", same)
	}
}

func TestRangeBounds(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Range(2.5, 7.5)
		if v < 2.5 || v >= 7.5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestIntRangeBounds(t *testing.T) {
	s := New(4)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntRange(3, 6)
		if v < 3 || v > 6 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		seen[v] = true
	}
	for want := 3; want <= 6; want++ {
		if !seen[want] {
			t.Errorf("IntRange never produced %d in 1000 draws", want)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(5)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Errorf("Normal stddev = %v, want ~2", sd)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	s := New(6)
	for i := 0; i < 5000; i++ {
		v := s.TruncNormal(0, 10, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestTruncNormalDegenerateInterval(t *testing.T) {
	// An interval far into the tail must still terminate and clamp.
	s := New(61)
	v := s.TruncNormal(0, 0.001, 5, 6)
	if v < 5 || v > 6 {
		t.Fatalf("degenerate TruncNormal out of bounds: %v", v)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(8)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exponential(100)
	}
	mean := sum / n
	if math.Abs(mean-100) > 1.5 {
		t.Errorf("Exponential mean = %v, want ~100", mean)
	}
}

func TestExponentialPositive(t *testing.T) {
	s := New(9)
	for i := 0; i < 5000; i++ {
		if v := s.Exponential(3); v < 0 {
			t.Fatalf("Exponential produced negative value %v", v)
		}
	}
}

func TestWeibullMean(t *testing.T) {
	// For beta=1 the Weibull reduces to Exponential(eta).
	s := New(10)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Weibull(50, 1)
	}
	mean := sum / n
	if math.Abs(mean-50) > 1 {
		t.Errorf("Weibull(50,1) mean = %v, want ~50", mean)
	}
}

func TestWeibullShape(t *testing.T) {
	// For beta=2, mean = eta * Gamma(1.5) = eta * sqrt(pi)/2.
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Weibull(10, 2)
	}
	want := 10 * math.Sqrt(math.Pi) / 2
	if got := sum / n; math.Abs(got-want) > 0.1 {
		t.Errorf("Weibull(10,2) mean = %v, want ~%v", got, want)
	}
}

func TestBivariateNormalCorrelation(t *testing.T) {
	s := New(12)
	const n = 200000
	var sx, sy, sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		x, y := s.BivariateNormal(0, 0, 1, 1, 0.8)
		sx += x
		sy += y
		sxy += x * y
		sxx += x * x
		syy += y * y
	}
	mx, my := sx/n, sy/n
	cov := sxy/n - mx*my
	vx := sxx/n - mx*mx
	vy := syy/n - my*my
	rho := cov / math.Sqrt(vx*vy)
	if math.Abs(rho-0.8) > 0.02 {
		t.Errorf("sample correlation = %v, want ~0.8", rho)
	}
}

func TestBivariateNormalMeans(t *testing.T) {
	s := New(13)
	const n = 100000
	var sx, sy float64
	for i := 0; i < n; i++ {
		x, y := s.BivariateNormal(5, -3, 2, 0.5, -0.4)
		sx += x
		sy += y
	}
	if math.Abs(sx/n-5) > 0.05 {
		t.Errorf("x mean = %v, want ~5", sx/n)
	}
	if math.Abs(sy/n+3) > 0.02 {
		t.Errorf("y mean = %v, want ~-3", sy/n)
	}
}

func TestChoiceProportions(t *testing.T) {
	s := New(14)
	counts := [3]int{}
	const n = 90000
	for i := 0; i < n; i++ {
		counts[s.Choice([]float64{1, 2, 3})]++
	}
	for i, want := range []float64{n / 6.0, n / 3.0, n / 2.0} {
		if math.Abs(float64(counts[i])-want) > 0.05*n {
			t.Errorf("Choice index %d drawn %d times, want ~%v", i, counts[i], want)
		}
	}
}

func TestChoiceZeroWeightNeverChosen(t *testing.T) {
	s := New(15)
	for i := 0; i < 5000; i++ {
		if idx := s.Choice([]float64{0, 1, 0}); idx != 1 {
			t.Fatalf("Choice picked zero-weight index %d", idx)
		}
	}
}

func TestChoicePanics(t *testing.T) {
	s := New(16)
	assertPanics(t, "negative weight", func() { s.Choice([]float64{1, -1}) })
	assertPanics(t, "zero total", func() { s.Choice([]float64{0, 0}) })
}

func TestPanicsOnBadArgs(t *testing.T) {
	s := New(17)
	assertPanics(t, "Range", func() { s.Range(2, 1) })
	assertPanics(t, "IntRange", func() { s.IntRange(2, 1) })
	assertPanics(t, "Exponential", func() { s.Exponential(0) })
	assertPanics(t, "Weibull eta", func() { s.Weibull(0, 1) })
	assertPanics(t, "Weibull beta", func() { s.Weibull(1, 0) })
	assertPanics(t, "TruncNormal", func() { s.TruncNormal(0, 1, 1, 0) })
	assertPanics(t, "BivariateNormal", func() { s.BivariateNormal(0, 0, 1, 1, 1) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(18)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	Shuffle(s, xs)
	seen := map[int]bool{}
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("duplicate %d after shuffle", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(19)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

// Property: Range output always lies within its bounds for arbitrary
// valid bounds.
func TestQuickRangeWithinBounds(t *testing.T) {
	s := New(20)
	f := func(a, b float64) bool {
		lo, hi := a, b
		if math.IsNaN(lo) || math.IsNaN(hi) || math.Abs(lo) > 1e150 || math.Abs(hi) > 1e150 {
			return true // avoid overflow of hi-lo, which is out of scope
		}
		if hi < lo {
			lo, hi = hi, lo
		}
		v := s.Range(lo, hi)
		return v >= lo && (v < hi || lo == hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Weibull samples are always positive.
func TestQuickWeibullPositive(t *testing.T) {
	s := New(21)
	f := func(e, b uint8) bool {
		eta := 0.1 + float64(e)
		beta := 0.1 + float64(b%8)
		return s.Weibull(eta, beta) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Choice always returns an in-range index for arbitrary
// positive weight vectors.
func TestQuickChoiceInRange(t *testing.T) {
	s := New(22)
	f := func(ws []uint8) bool {
		if len(ws) == 0 {
			return true
		}
		weights := make([]float64, len(ws))
		total := 0.0
		for i, w := range ws {
			weights[i] = float64(w)
			total += float64(w)
		}
		if total == 0 {
			return true
		}
		idx := s.Choice(weights)
		return idx >= 0 && idx < len(weights) && weights[idx] > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(23)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if got := float64(hits) / n; got < 0.29 || got > 0.31 {
		t.Errorf("Bool(0.3) frequency = %v", got)
	}
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	hits = 0
	for i := 0; i < 1000; i++ {
		if s.Bool(1) {
			hits++
		}
	}
	if hits != 1000 {
		t.Errorf("Bool(1) true %d/1000 times", hits)
	}
}

func TestIntnAndRangeSingletons(t *testing.T) {
	s := New(24)
	for i := 0; i < 100; i++ {
		if got := s.IntRange(5, 5); got != 5 {
			t.Fatalf("IntRange(5,5) = %d", got)
		}
		if got := s.Intn(1); got != 0 {
			t.Fatalf("Intn(1) = %d", got)
		}
	}
}
